// End-to-end integration tests spanning the module boundaries: synthetic
// trace generation → trace codec → the timed Flow LUT → flow-state
// accounting with housekeeping-driven deletes, cross-checked against
// reference models at every step.
package repro_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trafficgen"
)

// TestEndToEndTraceThroughTimedLUT writes a heavy-tailed trace, reads it
// back, replays it through the timed dual-path Flow LUT, and checks the
// flow accounting against a reference map: the number of NewFlow results
// must equal the trace's distinct-flow count, FIDs must be stable per
// flow, and the measured new-flow ratio must match the trace analyzer's.
func TestEndToEndTraceThroughTimedLUT(t *testing.T) {
	// 1. Generate and serialise a trace.
	zcfg := trafficgen.ZipfConfig{Universe: 100000, Skew: 1.3, HeadOffset: 10, Seed: 99}
	z, err := trafficgen.NewZipfTrace(zcfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(trace.Record{
			Tuple:     z.Next(),
			WireLen:   64,
			TimeNanos: uint64(i) * 17_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// 2. Read it back through the codec and the streaming analyzer.
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	an, err := trace.NewAnalyzer([]int64{n})
	if err != nil {
		t.Fatal(err)
	}
	var tuples []packet.FiveTuple
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		an.Add(rec)
		tuples = append(tuples, rec.Tuple)
	}
	summary := an.Summary(0)
	if int(summary.Packets) != n {
		t.Fatalf("trace round trip lost packets: %d of %d", summary.Packets, n)
	}
	if summary.Distinct != int64(z.Distinct()) {
		t.Fatalf("analyzer distinct %d != generator distinct %d", summary.Distinct, z.Distinct())
	}

	// 3. Replay through the timed Flow LUT.
	cfg := core.DefaultConfig()
	cfg.Buckets = 4096
	f, sched, err := core.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := packet.FiveTupleSpec()
	items := make([]core.WorkItem, len(tuples))
	for i, ft := range tuples {
		items[i] = core.WorkItem{Kind: core.KindLookup, Key: spec.Key(ft)}
	}
	rep, err := core.RunWorkload(f, sched, items, 8, 2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Cross-check: NewFlows == distinct flows; stable FIDs per flow.
	if rep.Stats.NewFlows != summary.Distinct {
		t.Fatalf("timed LUT created %d flows, trace has %d distinct", rep.Stats.NewFlows, summary.Distinct)
	}
	if rep.Stats.Dropped != 0 {
		t.Fatalf("%d drops at %.0f%% occupancy", rep.Stats.Dropped,
			100*float64(summary.Distinct)/float64(cfg.CapacityFlows()))
	}
	fidByKey := make(map[string]uint64)
	bySeq := make([]core.Result, n)
	for _, res := range rep.Results {
		bySeq[res.Seq] = res
	}
	for i, ft := range tuples {
		res := bySeq[i]
		key := string(spec.Key(ft))
		if prev, seen := fidByKey[key]; seen {
			if !res.Hit || res.FID != prev {
				t.Fatalf("packet %d of %v: got %+v, want hit with fid %d", i, ft, res, prev)
			}
		} else {
			if !res.NewFlow {
				t.Fatalf("first packet of %v: %+v", ft, res)
			}
			fidByKey[key] = res.FID
		}
	}
}

// TestTimedLUTWithHousekeepingDeletes drives the timed LUT and the
// netflow engine together: flows that the engine retires by idle timeout
// are deleted from the LUT through the timed KindDelete path, and
// re-appearing tuples re-insert. Table occupancy must track the engine's
// active-flow count exactly.
func TestTimedLUTWithHousekeepingDeletes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 1024
	f, sched, err := core.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nfCfg := netflow.DefaultConfig()
	nfCfg.IdleTimeout = 1000 // nanoseconds: compressed timescale
	engine, err := netflow.NewEngine(nfCfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := packet.FiveTupleSpec()

	// Phase 1: 50 flows, one packet each.
	var items []core.WorkItem
	var now uint64
	for i := uint64(0); i < 50; i++ {
		ft := trafficgen.Flow(i)
		now += 10
		engine.Observe(packet.Packet{Tuple: ft, WireLen: 64}, now)
		items = append(items, core.WorkItem{Kind: core.KindLookup, Key: spec.Key(ft)})
	}
	if _, err := core.RunWorkload(f, sched, items, 8, 1_000_000_000); err != nil {
		t.Fatal(err)
	}

	// Phase 2: idle everything out; delete exported flows from the LUT.
	now += 10_000
	engine.Housekeep(now)
	exports := engine.DrainExports()
	if len(exports) != 50 {
		t.Fatalf("%d exports, want 50", len(exports))
	}
	items = items[:0]
	for _, rec := range exports {
		items = append(items, core.WorkItem{Kind: core.KindDelete, Key: spec.Key(rec.Tuple)})
	}
	rep, err := core.RunWorkload(f, sched, items, 8, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if !res.Hit {
			t.Fatalf("housekeeping delete missed: %+v", res)
		}
	}
	if got := engine.ActiveFlows(); got != 0 {
		t.Fatalf("engine still tracks %d flows", got)
	}

	// Phase 3: the same tuples re-appear — all must re-insert as new.
	items = items[:0]
	for i := uint64(0); i < 50; i++ {
		items = append(items, core.WorkItem{Kind: core.KindLookup, Key: spec.Key(trafficgen.Flow(i))})
	}
	rep, err = core.RunWorkload(f, sched, items, 8, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	reNew := 0
	for _, res := range rep.Results {
		if res.NewFlow {
			reNew++
		}
	}
	if reNew != 50 {
		t.Fatalf("after deletion only %d of 50 tuples re-inserted as new flows", reNew)
	}
}

// TestSustainedChurn subjects the timed LUT to a long insert/hit/delete
// churn and verifies the structure never leaks capacity: after deleting
// everything, occupancy-sensitive behaviour (fresh inserts at stage-miss)
// is fully restored.
func TestSustainedChurn(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 512
	f, sched, err := core.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := packet.FiveTupleSpec()
	rng := sim.NewRand(5)
	live := make(map[uint64]bool)
	for round := 0; round < 6; round++ {
		var items []core.WorkItem
		for i := 0; i < 400; i++ {
			flow := uint64(rng.Intn(600))
			if live[flow] && rng.Intn(4) == 0 {
				items = append(items, core.WorkItem{Kind: core.KindDelete, Key: spec.Key(trafficgen.Flow(flow))})
				live[flow] = false
			} else {
				items = append(items, core.WorkItem{Kind: core.KindLookup, Key: spec.Key(trafficgen.Flow(flow))})
				live[flow] = true
			}
		}
		rep, err := core.RunWorkload(f, sched, items, 8, 2_000_000_000)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Stats.Dropped > 0 {
			t.Fatalf("round %d: %d drops with only %d possible flows", round, rep.Stats.Dropped, 600)
		}
	}
	// Verify final state matches the live set.
	var verify []core.WorkItem
	var expected []bool
	for flow := uint64(0); flow < 600; flow++ {
		verify = append(verify, core.WorkItem{Kind: core.KindSearch, Key: spec.Key(trafficgen.Flow(flow))})
		expected = append(expected, live[flow])
	}
	rep, err := core.RunWorkload(f, sched, verify, 8, 2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := make([]core.Result, len(verify))
	base := rep.Results[0].Seq
	for _, res := range rep.Results {
		if res.Seq < base {
			base = res.Seq // results arrive in resolution order, not seq order
		}
	}
	for _, res := range rep.Results {
		bySeq[res.Seq-base] = res
	}
	for i, want := range expected {
		if bySeq[i].Hit != want {
			t.Fatalf("flow %d: hit=%v, want %v after churn", i, bySeq[i].Hit, want)
		}
	}
}
