// Command flowgen generates a synthetic packet trace with the calibrated
// heavy-tailed flow distribution (the Fig. 6 substitute) and writes it in
// the repository's binary trace format, or summarises an existing trace.
//
// Usage:
//
//	flowgen -out trace.bin -packets 100000 [-seed 2012] [-rate-mpps 59.52]
//	flowgen -summarize trace.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/trafficgen"
)

func main() {
	out := flag.String("out", "", "output trace file")
	packets := flag.Int64("packets", 100000, "packets to generate")
	seed := flag.Uint64("seed", 2012, "generator seed")
	rate := flag.Float64("rate-mpps", 59.52, "packet rate in Mpps (sets timestamps)")
	summarize := flag.String("summarize", "", "summarise an existing trace instead")
	flag.Parse()

	if err := run(*out, *packets, *seed, *rate, *summarize); err != nil {
		fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, packets int64, seed uint64, rateMpps float64, summarize string) error {
	if summarize != "" {
		return summarizeTrace(summarize)
	}
	if out == "" {
		return fmt.Errorf("either -out or -summarize is required")
	}
	if packets <= 0 || rateMpps <= 0 {
		return fmt.Errorf("packets and rate must be positive")
	}
	cfg := trafficgen.DefaultZipfConfig()
	cfg.Seed = seed
	z, err := trafficgen.NewZipfTrace(cfg)
	if err != nil {
		return err
	}
	file, err := os.Create(out)
	if err != nil {
		return err
	}
	defer file.Close()
	w, err := trace.NewWriter(file)
	if err != nil {
		return err
	}
	interNanos := 1e3 / rateMpps // ns between packets at rateMpps
	for i := int64(0); i < packets; i++ {
		rec := trace.Record{
			Tuple:     z.Next(),
			WireLen:   64,
			TimeNanos: uint64(float64(i) * interNanos),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets, %d distinct flows (B/A = %.2f%%) to %s\n",
		z.Emitted(), z.Distinct(), 100*z.NewFlowRatio(), out)
	return nil
}

func summarizeTrace(path string) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	r, err := trace.NewReader(file)
	if err != nil {
		return err
	}
	a, err := trace.NewAnalyzer([]int64{1000, 10000, 100000, 1000000})
	if err != nil {
		return err
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Add(rec)
	}
	s := a.Summary(10)
	fmt.Printf("packets: %d   bytes: %d   distinct flows: %d\n", s.Packets, s.Bytes, s.Distinct)
	for _, p := range s.Curve {
		fmt.Printf("  B/A after %8d packets: %.2f%%\n", p.Packets, 100*p.Ratio)
	}
	fmt.Printf("top flow shares:")
	for _, share := range s.TopShares {
		fmt.Printf(" %.2f%%", 100*share)
	}
	fmt.Println()
	return nil
}
