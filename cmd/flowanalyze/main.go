// Command flowanalyze replays a trace file through the Fig. 7 traffic
// analyzer: flow accounting with timeouts and export, top-k heavy hitters,
// and the event engine.
//
// Usage:
//
//	flowanalyze -trace trace.bin [-topk 10] [-idle 15s]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analyzer"
	"repro/internal/packet"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "input trace file (required)")
	topK := flag.Int("topk", 10, "heavy-hitter table size")
	idle := flag.Duration("idle", 15*time.Second, "flow idle timeout")
	flag.Parse()

	if err := run(*tracePath, *topK, *idle); err != nil {
		fmt.Fprintf(os.Stderr, "flowanalyze: %v\n", err)
		os.Exit(1)
	}
}

func run(tracePath string, topK int, idle time.Duration) error {
	if tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	file, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer file.Close()
	r, err := trace.NewReader(file)
	if err != nil {
		return err
	}
	cfg := analyzer.DefaultConfig()
	cfg.TopK = topK
	cfg.Flow.IdleTimeout = idle
	a, err := analyzer.New(cfg)
	if err != nil {
		return err
	}
	var last uint64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Observe(packet.Packet{Tuple: rec.Tuple, WireLen: int(rec.WireLen)}, rec.TimeNanos)
		last = rec.TimeNanos
	}
	exported := a.Flow().Flush(last)

	st := a.Flow().Stats()
	fmt.Printf("packets: %d   bytes: %d   flows created: %d   flows exported: %d (final flush: %d)\n",
		st.Packets, st.Bytes, st.FlowsCreated, st.FlowsExported, exported)

	fmt.Println("\ntop flows by bytes:")
	for i, h := range a.TopK() {
		fmt.Printf("  %2d. %-46s %8d pkts %10d bytes\n", i+1, h.Tuple, h.Packets, h.Bytes)
	}
	events := a.DrainEvents()
	fmt.Printf("\nevents: %d\n", len(events))
	for _, e := range events {
		fmt.Printf("  t=%-14d %-14s %s\n", e.TimeNanos, e.Kind, e.Detail)
	}
	return nil
}
