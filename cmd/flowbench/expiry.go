package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// expirySweepConfig parameterises the lifecycle churn scenario: Zipf
// arrivals over a flow population larger than the table, with flow
// lifetimes (generation turnover) so old flows stop arriving and must be
// reclaimed by the expiry sweep for inserts to keep succeeding.
type expirySweepConfig struct {
	backends   []string
	shards     []int
	workers    int
	ops        int // packets per worker
	capacity   int
	batch      int
	optimistic bool  // serve lookups via the seqlock lock-free path
	flows      int   // offered flow population (per generation)
	idle       int64 // idle timeout in packets
	active     int64 // active timeout in packets (0 = disabled)
	sweep      int   // sweep budget (slots per shard per Advance)
	lifetime   int64 // generation length in packets (0 = no turnover)
	skew       float64
	jsonPath   string
}

// withExpiryDefaults derives the dependent defaults: the population is 4×
// capacity (the workload class the engine cannot run without expiry), the
// idle window is half the capacity in packets — bounding steady-state
// occupancy near half load regardless of skew, since a window of W
// arrivals contains at most W distinct flows — and generations last eight
// idle windows.
func (c expirySweepConfig) withExpiryDefaults() expirySweepConfig {
	if c.flows <= 0 {
		c.flows = 4 * c.capacity
	}
	if c.idle <= 0 {
		// Floor of 1: at capacity 1 a zero window would silently disable
		// expiry (and zero the derived lifetime, the generation divisor).
		c.idle = max(int64(c.capacity/2), 1)
	}
	if c.sweep <= 0 {
		c.sweep = 2048
	}
	if c.lifetime <= 0 {
		c.lifetime = 8 * c.idle
	}
	if c.skew <= 1 {
		c.skew = 1.2
	}
	return c
}

// expiryJSONResult is one backend×shards measurement of the churn
// scenario in the machine-readable output (BENCH_engine_expiry.json).
// OccupancyEnd/OccupancyRatio are the steady-state columns; EvictedPerSec
// and EvictedPerKPkt the reclaim-rate columns.
type expiryJSONResult struct {
	Backend string `json:"backend"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Batch   int    `json:"batch"`
	// Cpus (GOMAXPROCS) and Optimistic identify the measurement shape,
	// mirroring the engine sweep schema.
	Cpus           int     `json:"cpus"`
	Optimistic     bool    `json:"optimistic"`
	Stripes        int     `json:"stripes"`
	ReadRetries    int64   `json:"read_retries"`
	StripeRetries  int64   `json:"stripe_retries"`
	GlobalRetries  int64   `json:"global_retries"`
	ReadFallbacks  int64   `json:"read_fallbacks"`
	Capacity       int     `json:"capacity"`
	Flows          int     `json:"flow_population"`
	IdleTimeout    int64   `json:"idle_timeout_pkts"`
	ActiveTimeout  int64   `json:"active_timeout_pkts,omitempty"`
	SweepBudget    int     `json:"sweep_budget"`
	Lifetime       int64   `json:"flow_lifetime_pkts"`
	ZipfSkew       float64 `json:"zipf_skew"`
	TotalPkts      int64   `json:"total_pkts"`
	WallNS         int64   `json:"wall_ns"`
	NSPerPkt       float64 `json:"ns_per_pkt"`
	MppsPerSec     float64 `json:"mpkts_per_sec"`
	AllocsPerPkt   float64 `json:"allocs_per_pkt"`
	NewFlows       int64   `json:"new_flows"`
	FailedInserts  int64   `json:"failed_inserts"`
	OccupancyEnd   int     `json:"occupancy_end"`
	OccupancyPeak  int     `json:"occupancy_peak"`
	OccupancyRatio float64 `json:"occupancy_ratio"`
	Evicted        int64   `json:"evicted"`
	IdleEvicted    int64   `json:"idle_evicted"`
	ActiveEvicted  int64   `json:"active_evicted"`
	Sweeps         int64   `json:"sweeps"`
	EvictedPerSec  float64 `json:"evicted_per_sec"`
	EvictedPerKPkt float64 `json:"evicted_per_kpkt"`
}

// expiryJSONReport is the top-level structure of the -expiry -json output.
type expiryJSONReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	OpsPerWkr  int                `json:"ops_per_worker"`
	Results    []expiryJSONResult `json:"results"`
}

// expirySweep runs the lifecycle churn scenario across backend × shard
// combinations: the headline demonstration that a table smaller than the
// offered flow population reaches steady state instead of saturating.
func expirySweep(cfg expirySweepConfig) error {
	cfg = cfg.withExpiryDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Engine expiry churn — %d workers × %d pkts, batch %d, %d flows into %d slots (%.1fx), idle %d pkts, lifetime %d pkts (GOMAXPROCS=%d)",
			cfg.workers, cfg.ops, cfg.batch, cfg.flows, cfg.capacity,
			float64(cfg.flows)/float64(cfg.capacity), cfg.idle, cfg.lifetime, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Mpkts/s", "ns/pkt", "Occupancy (end/peak)", "Load", "New flows", "Failed ins", "Evicted", "Reclaim/s")
	var jsonResults []expiryJSONResult
	for _, backend := range cfg.backends {
		for _, shards := range cfg.shards {
			res, err := runExpiryLoad(backend, shards, cfg)
			if err != nil {
				return fmt.Errorf("expiry %s/%d: %w", backend, shards, err)
			}
			t.AddRow(backend, fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.2f", res.MppsPerSec),
				fmt.Sprintf("%.1f", res.NSPerPkt),
				fmt.Sprintf("%d/%d", res.OccupancyEnd, res.OccupancyPeak),
				fmt.Sprintf("%.2f", res.OccupancyRatio),
				fmt.Sprintf("%d", res.NewFlows),
				fmt.Sprintf("%d", res.FailedInserts),
				fmt.Sprintf("%d", res.Evicted),
				fmt.Sprintf("%.0f", res.EvictedPerSec))
			jsonResults = append(jsonResults, res)
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		rep := expiryJSONReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			OpsPerWkr:  cfg.ops,
			Results:    jsonResults,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("encode expiry results: %w", err)
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write expiry results: %w", err)
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}

// expiryShared is the cross-worker state of one churn run.
type expiryShared struct {
	pkts     atomic.Int64 // global logical clock: packets processed
	newFlows atomic.Int64
	failed   atomic.Int64
	peak     atomic.Int64 // peak sampled occupancy
}

// runExpiryLoad drives one backend/shard configuration.
func runExpiryLoad(backend string, shards int, cfg expirySweepConfig) (expiryJSONResult, error) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		DisableOptimisticReads: !cfg.optimistic,
		Expiry: flowproc.ExpiryConfig{
			IdleTimeout:   cfg.idle,
			ActiveTimeout: cfg.active,
			SweepBudget:   cfg.sweep,
		},
	})
	if err != nil {
		return expiryJSONResult{}, err
	}
	var shared expiryShared
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.workers)
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := expiryWorker(eng, w, cfg, &shared); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	close(errCh)
	for err := range errCh {
		return expiryJSONResult{}, err
	}
	total := shared.pkts.Load()
	st := eng.ExpiryStats()
	occ := eng.Len()
	peak := int(shared.peak.Load())
	if occ > peak {
		peak = occ
	}
	rs := eng.ReadStats()
	return expiryJSONResult{
		Backend:        backend,
		Shards:         shards,
		Workers:        cfg.workers,
		Batch:          cfg.batch,
		Cpus:           runtime.GOMAXPROCS(0),
		Optimistic:     rs.Optimistic,
		Stripes:        eng.Stripes(),
		ReadRetries:    rs.Retries,
		StripeRetries:  rs.StripeRetries,
		GlobalRetries:  rs.GlobalRetries,
		ReadFallbacks:  rs.Fallbacks,
		Capacity:       cfg.capacity,
		Flows:          cfg.flows,
		IdleTimeout:    cfg.idle,
		ActiveTimeout:  cfg.active,
		SweepBudget:    cfg.sweep,
		Lifetime:       cfg.lifetime,
		ZipfSkew:       cfg.skew,
		TotalPkts:      total,
		WallNS:         wall.Nanoseconds(),
		NSPerPkt:       float64(wall.Nanoseconds()) / float64(total),
		MppsPerSec:     float64(total) / wall.Seconds() / 1e6,
		AllocsPerPkt:   float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total),
		NewFlows:       shared.newFlows.Load(),
		FailedInserts:  shared.failed.Load(),
		OccupancyEnd:   occ,
		OccupancyPeak:  peak,
		OccupancyRatio: float64(occ) / float64(cfg.capacity),
		Evicted:        st.Evicted,
		IdleEvicted:    st.IdleEvicted,
		ActiveEvicted:  st.ActiveEvicted,
		Sweeps:         st.Sweeps,
		EvictedPerSec:  float64(st.Evicted) / wall.Seconds(),
		EvictedPerKPkt: float64(st.Evicted) / float64(total) * 1000,
	}, nil
}

// expiryWorker drives one goroutine's share of the churn: per batch it
// draws Zipf-ranked flows from the worker's current generation (flows
// retire when their generation ends — the "flow lifetime"), looks the
// batch up, inserts the misses, and advances the lifecycle clock on a
// rotating schedule — each worker sweeps every workers-th round, so the
// sweep keeps pace with arrivals (~one Advance per batch globally) even
// when workers finish at different times.
func expiryWorker(eng *flowproc.Engine, w int, cfg expirySweepConfig, shared *expiryShared) error {
	trace, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe:   uint64(cfg.flows),
		Skew:       cfg.skew,
		HeadOffset: 16,
		Seed:       uint64(w)*0x9e3779b9 + 1,
	})
	if err != nil {
		return err
	}
	batch := make([]flowproc.FiveTuple, cfg.batch)
	misses := make([]flowproc.FiveTuple, 0, cfg.batch)
	ids := make([]uint64, cfg.batch)
	hits := make([]bool, cfg.batch)
	errs := make([]error, cfg.batch)
	for done, round := 0, 0; done < cfg.ops; done, round = done+len(batch), round+1 {
		now := shared.pkts.Load()
		gen := uint64(now / cfg.lifetime)
		for i := range batch {
			rank := trace.SampleIndex()
			// Generation turnover retires whole flow populations: index
			// spaces of different generations are disjoint, so an old
			// generation's flows simply stop arriving and idle out.
			batch[i] = trafficgen.Flow(gen*uint64(cfg.flows) + rank)
		}
		eng.LookupBatchInto(batch, ids, hits)
		misses = misses[:0]
		for i, hit := range hits {
			if !hit {
				misses = append(misses, batch[i])
			}
		}
		if len(misses) > 0 {
			eng.InsertBatchInto(misses, ids[:len(misses)], errs[:len(misses)])
			inserted := int64(0)
			for _, err := range errs[:len(misses)] {
				switch {
				case err == nil:
					inserted++
				case errors.Is(err, table.ErrTableFull):
					// The saturation outcome the lifecycle layer exists
					// to prevent: counted, reported, not fatal.
					shared.failed.Add(1)
				default:
					return err
				}
			}
			shared.newFlows.Add(inserted)
		}
		now = shared.pkts.Add(int64(len(batch)))
		if round%cfg.workers == w {
			eng.Advance(now)
			occ := int64(eng.Len())
			// CAS loop: a stale check-then-store could overwrite a
			// larger peak recorded by a concurrent worker.
			for {
				p := shared.peak.Load()
				if occ <= p || shared.peak.CompareAndSwap(p, occ) {
					break
				}
			}
		}
	}
	return nil
}
