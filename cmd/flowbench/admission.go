package main

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// This file is the admission-gating sweep: -scenario admission replays a
// mice-heavy Zipf trace (half the packets are one-packet flows, half a
// skewed elephant mix) through the same lookup-then-insert-misses ingest
// loop as the adversarial sweep, once ungated and once per gate
// threshold, over two skews. Each threshold within a skew sees a
// byte-identical trace, so the occupancy and hit-rate columns isolate the
// gate's effect: elephants in the table, mice in the sketch. Rows land in
// the engine JSON format so -compare gates them against the committed
// BENCH_engine_admission.json, and the sweep itself asserts the headline
// claim — at threshold 2 the steady-state occupancy is at least 2x lower
// than ungated with no multi-packet hit-rate loss.

// admissionSeed keys every row's engine (and, derived through the sketch
// domain constant, its counter placement) so the committed baseline is
// reproducible; deployments use the random default instead.
const admissionSeed = 0x20140b

// admissionThresholds are the gate settings swept per skew; 0 is the
// ungated control the others are judged against.
var admissionThresholds = []int{0, 2, 4}

// admissionSkews are the Zipf exponents of the elephant half of the
// trace: a flatter and a steeper head over the same universe.
var admissionSkews = []float64{1.1, 1.3}

// admissionFPRProbes is the never-inserted probe count behind each row's
// sketch false-positive gauge.
const admissionFPRProbes = 20_000

// admissionSweepConfig parameterises the admission sweep. Rows are
// single-threaded: the sweep measures gate policy (occupancy, hit rate,
// sketch precision), not lock scaling.
type admissionSweepConfig struct {
	backends   []string
	shards     []int
	ops        int // packets per row
	capacity   int
	batch      int
	optimistic bool
	jsonPath   string
}

// admissionRowResult carries one measured row plus the derived workload
// figures the in-sweep acceptance check compares.
type admissionRowResult struct {
	engineJSONResult
	wall time.Duration
}

// runAdmissionRow replays the trace for one threshold. The trace is
// regenerated deterministically from (skew, admissionSeed), so every
// threshold row within a skew ingests identical packets: p-even packets
// are fresh mice (a strictly increasing index — each flow appears exactly
// once), p-odd packets sample the Zipf elephant universe. Every packet is
// looked up, misses are inserted (ErrAdmissionDeferred is the gate
// working, not a failure), and the lifecycle clock advances once per
// batch so idle mice age out of the table — and, on a cadence ~8x the
// idle window, out of the sketch, long enough that returning elephants
// never re-earn the threshold.
func runAdmissionRow(backend string, shards, threshold int, skew float64, cfg admissionSweepConfig) (admissionRowResult, error) {
	packets := int64(cfg.ops)
	universe := max(cfg.capacity/4, 16)
	idle := int64(cfg.capacity) // packets; the clock below advances one per packet
	ecfg := flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		HashSeed:               admissionSeed,
		DisableOptimisticReads: !cfg.optimistic,
		Expiry:                 flowproc.ExpiryConfig{IdleTimeout: idle, SweepBudget: 1 << 12},
	}
	if threshold > 0 {
		ecfg.Admission = flowproc.AdmissionConfig{
			Threshold: threshold,
			// Generous width: counter-collision admits are measured by the
			// FPR gauge, not hidden in the occupancy column.
			Width: max(4*cfg.capacity, 1<<16),
			// Sketch memory must comfortably outlast the table's idle
			// window: resident flows never touch the sketch, so a decay
			// period shorter than ~8 idle windows makes returning elephants
			// re-earn the threshold and shed hits.
			DecayEpochs: max(1, 8*cfg.capacity/cfg.batch),
		}
	}
	eng, err := flowproc.NewEngine(ecfg)
	if err != nil {
		return admissionRowResult{}, err
	}
	zipf, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe: uint64(universe), Skew: skew, HeadOffset: 1, Seed: admissionSeed,
	})
	if err != nil {
		return admissionRowResult{}, err
	}
	// Mice live at a disjoint index range above the elephant universe;
	// trafficgen.Flow is a bijection over the full 64-bit index.
	const miceBase = uint64(1) << 32
	var mouseSeq uint64
	occ := make(map[uint64]int32, universe+cfg.ops/2)
	batch := make([]flowproc.FiveTuple, cfg.batch)
	idx := make([]uint64, cfg.batch)
	ids := make([]uint64, cfg.batch)
	hit := make([]bool, cfg.batch)
	miss := make([]flowproc.FiveTuple, cfg.batch)
	mids := make([]uint64, cfg.batch)
	merrs := make([]error, cfg.batch)
	var gatedSeen, failed, multiTotal, multiHits int64
	var occSum, occSamples int64
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for p := int64(0); p < packets; p += int64(cfg.batch) {
		n := cfg.batch
		if rem := packets - p; rem < int64(n) {
			n = int(rem)
		}
		for i := 0; i < n; i++ {
			if (p+int64(i))%2 == 0 {
				idx[i] = miceBase + mouseSeq
				mouseSeq++
			} else {
				idx[i] = zipf.SampleIndex()
			}
			batch[i] = trafficgen.Flow(idx[i])
		}
		eng.LookupBatchInto(batch[:n], ids[:n], hit[:n])
		m := 0
		for i := 0; i < n; i++ {
			occ[idx[i]]++
			if occ[idx[i]] >= 3 {
				multiTotal++
				if hit[i] {
					multiHits++
				}
			}
			if !hit[i] {
				miss[m] = batch[i]
				m++
			}
		}
		if m > 0 {
			eng.InsertBatchInto(miss[:m], mids[:m], merrs[:m])
			for _, e := range merrs[:m] {
				switch {
				case e == nil:
				case errors.Is(e, flowproc.ErrAdmissionDeferred):
					gatedSeen++
				case errors.Is(e, table.ErrTableFull):
					failed++
				default:
					return admissionRowResult{}, e
				}
			}
		}
		eng.Advance(p + int64(n))
		if p >= packets/2 {
			occSum += int64(eng.Len())
			occSamples++
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	st := eng.AdmissionStats()
	if st.Gated != gatedSeen {
		return admissionRowResult{}, fmt.Errorf("admission row t=%d: stats count %d gated inserts, ingest saw %d",
			threshold, st.Gated, gatedSeen)
	}
	var single int64
	for _, c := range occ {
		if c == 1 {
			single++
		}
	}
	rs := eng.ReadStats()
	os := eng.OverloadStats()
	res := admissionRowResult{wall: wall}
	res.engineJSONResult = engineJSONResult{
		Backend:            backend,
		Shards:             shards,
		Workers:            1,
		Batch:              cfg.batch,
		Mix:                fmt.Sprintf("adm:t%d:skew%.1f", threshold, skew),
		Cpus:               runtime.GOMAXPROCS(0),
		Optimistic:         rs.Optimistic,
		Stripes:            eng.Stripes(),
		ReadRetries:        rs.Retries,
		StripeRetries:      rs.StripeRetries,
		GlobalRetries:      rs.GlobalRetries,
		ReadFallbacks:      rs.Fallbacks,
		TotalOps:           packets,
		WallNS:             wall.Nanoseconds(),
		NSPerOp:            float64(wall.Nanoseconds()) / float64(packets),
		MopsPerSec:         float64(packets) / wall.Seconds() / 1e6,
		AllocsPerOp:        float64(msAfter.Mallocs-msBefore.Mallocs) / float64(packets),
		BytesPerOp:         float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(packets),
		Resident:           eng.Len(),
		BytesPerSlot:       eng.BytesPerSlot(),
		FailedInserts:      failed,
		PressureEvictions:  os.PressureEvictions,
		AdmissionThreshold: threshold,
		AdmissionGated:     st.Gated,
		AdmissionAdmitted:  st.Admitted,
		SketchBytes:        st.SketchBytes,
		SketchFPR:          eng.AdmissionFPR(admissionFPRProbes, admissionSeed),
		OccupancyMean:      float64(occSum) / float64(max(occSamples, 1)),
		MultiHitRate:       float64(multiHits) / float64(max(multiTotal, 1)),
		SinglePacketFrac:   float64(single) / float64(max(int64(len(occ)), 1)),
	}
	return res, nil
}

// checkAdmissionClaim asserts the sweep's headline acceptance criterion
// on one backend/shards/skew group: the trace is mice-dominated (>= 60%
// one-packet flows), the threshold-2 row holds steady-state occupancy at
// least 2x below the ungated control, and its multi-packet hit rate gives
// up no more than a point of noise.
func checkAdmissionClaim(rows map[int]admissionRowResult, backend string, shards int, skew float64) error {
	ctl, okCtl := rows[0]
	gated, okGated := rows[2]
	if !okCtl || !okGated {
		return nil // sweep variant without both rows; nothing to judge
	}
	label := fmt.Sprintf("%s/%d skew %.1f", backend, shards, skew)
	if ctl.SinglePacketFrac < 0.6 {
		return fmt.Errorf("%s: trace is only %.0f%% one-packet flows, want >= 60%% for the mice claim",
			label, 100*ctl.SinglePacketFrac)
	}
	if gated.OccupancyMean*2 > ctl.OccupancyMean {
		return fmt.Errorf("%s: gated occupancy %.0f not 2x below ungated %.0f",
			label, gated.OccupancyMean, ctl.OccupancyMean)
	}
	if gated.MultiHitRate < ctl.MultiHitRate-0.01 {
		return fmt.Errorf("%s: gated multi-packet hit rate %.4f lost more than a point vs ungated %.4f",
			label, gated.MultiHitRate, ctl.MultiHitRate)
	}
	return nil
}

// admissionSweep runs threshold x skew rows per backend/shard
// configuration, asserts the occupancy/hit-rate claim per group, and
// writes the shared JSON format for -compare gating.
func admissionSweep(cfg admissionSweepConfig) error {
	t := metrics.NewTable(
		fmt.Sprintf("Admission sweep — %d packets/row, batch %d (GOMAXPROCS=%d)",
			cfg.ops, cfg.batch, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Mix", "ns/pkt", "Occupancy", "Multi-pkt hit", "Gated", "Admitted", "Sketch FPR", "Sketch KiB", "Failed inserts", "Wall time")
	var jsonResults []engineJSONResult
	for _, backend := range cfg.backends {
		for _, shards := range cfg.shards {
			for _, skew := range admissionSkews {
				group := make(map[int]admissionRowResult, len(admissionThresholds))
				for _, threshold := range admissionThresholds {
					res, err := runAdmissionRow(backend, shards, threshold, skew, cfg)
					if err != nil {
						return fmt.Errorf("admission %s/%d skew %.1f: %w", backend, shards, skew, err)
					}
					group[threshold] = res
					t.AddRow(backend, fmt.Sprintf("%d", shards), res.Mix,
						fmt.Sprintf("%.1f", res.NSPerOp),
						fmt.Sprintf("%.0f", res.OccupancyMean),
						fmt.Sprintf("%.4f", res.MultiHitRate),
						fmt.Sprintf("%d", res.AdmissionGated),
						fmt.Sprintf("%d", res.AdmissionAdmitted),
						fmt.Sprintf("%.4f", res.SketchFPR),
						fmt.Sprintf("%d", res.SketchBytes/1024),
						fmt.Sprintf("%d", res.FailedInserts),
						res.wall.Round(time.Millisecond).String())
					jsonResults = append(jsonResults, res.engineJSONResult)
				}
				if err := checkAdmissionClaim(group, backend, shards, skew); err != nil {
					return err
				}
			}
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		rep := engineJSONReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			OpsPerWkr:  cfg.ops,
			Results:    jsonResults,
		}
		if err := writeJSONReport(cfg.jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}
