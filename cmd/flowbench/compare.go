package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/metrics"
)

// compareConfig parameterises the bench regression diff.
type compareConfig struct {
	oldPath, newPath string
	// nsThresholdPct is the ns/op regression (percent, new vs old) above
	// which the diff exits nonzero.
	nsThresholdPct float64
	// allocsThreshold is the absolute allocs/op increase above which the
	// diff exits nonzero (allocations are near-deterministic, so the gate
	// is much tighter than the wall-clock one).
	allocsThreshold float64
}

// rowKey identifies one measurement across two reports. Cpus, Optimistic
// and Stripes are part of the identity: a row measured at GOMAXPROCS=1,
// through the RLock path, or under the 1-stripe control protocol must
// never gate one measured at GOMAXPROCS=4, through the seqlock path, or
// striped — different machines, different cost models.
type rowKey struct {
	Backend    string
	Shards     int
	Workers    int
	Batch      int
	Mix        string
	Cpus       int
	Optimistic bool
	Stripes    int
}

// key derives the compare identity of one measurement row.
func (r engineJSONResult) key() rowKey {
	return rowKey{r.Backend, r.Shards, r.Workers, r.Batch, r.Mix, r.Cpus, r.Optimistic, r.Stripes}
}

// errRegression marks a compare run that found regressions above the
// thresholds; main maps it to a nonzero exit.
type errRegression struct{ count int }

// Error implements error.
func (e errRegression) Error() string {
	return fmt.Sprintf("%d measurement(s) regressed beyond the threshold", e.count)
}

// loadEngineReport reads one engine bench JSON file.
func loadEngineReport(path string) (engineJSONReport, error) {
	var rep engineJSONReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("compare: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("compare: %s: %w", path, err)
	}
	return rep, nil
}

// pctDelta returns the percent change from old to new (positive = new is
// worse for cost metrics).
func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// compareBenchJSON diffs two engine bench JSON reports row by row
// (matched on backend × shards × workers × batch × mix × cpus ×
// optimistic × stripes), prints the
// ns/op and allocs/op deltas, and returns errRegression when any matched
// row regresses beyond the configured thresholds. Rows present in only
// one report are listed but never fail the gate (sweeps legitimately gain
// and lose configurations); zero matched rows is an error — a vacuous
// pass would hide a parameter drift between the committed baseline and
// the fresh run.
func compareBenchJSON(cfg compareConfig) error {
	oldRep, err := loadEngineReport(cfg.oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadEngineReport(cfg.newPath)
	if err != nil {
		return err
	}
	oldRows := map[rowKey]engineJSONResult{}
	for _, r := range oldRep.Results {
		oldRows[r.key()] = r
	}
	t := metrics.NewTable(
		fmt.Sprintf("Bench regression diff — %s → %s (fail: ns/op +%.0f%%, allocs/op +%.2f)",
			cfg.oldPath, cfg.newPath, cfg.nsThresholdPct, cfg.allocsThreshold),
		"Backend", "Shards", "Mix", "ns/op old", "ns/op new", "Δ ns/op", "allocs/op old", "allocs/op new", "Δ allocs", "Verdict")
	matched, regressed := 0, 0
	for _, r := range newRep.Results {
		k := r.key()
		o, ok := oldRows[k]
		if !ok {
			t.AddRow(r.Backend, fmt.Sprintf("%d", r.Shards), r.Mix, "—",
				fmt.Sprintf("%.1f", r.NSPerOp), "new row", "—",
				fmt.Sprintf("%.3f", r.AllocsPerOp), "new row", "info")
			continue
		}
		delete(oldRows, k)
		matched++
		nsPct := pctDelta(o.NSPerOp, r.NSPerOp)
		allocsDelta := r.AllocsPerOp - o.AllocsPerOp
		verdict := "ok"
		if nsPct > cfg.nsThresholdPct || allocsDelta > cfg.allocsThreshold {
			verdict = "REGRESSED"
			regressed++
		}
		t.AddRow(r.Backend, fmt.Sprintf("%d", r.Shards), r.Mix,
			fmt.Sprintf("%.1f", o.NSPerOp), fmt.Sprintf("%.1f", r.NSPerOp),
			fmt.Sprintf("%+.1f%%", nsPct),
			fmt.Sprintf("%.3f", o.AllocsPerOp), fmt.Sprintf("%.3f", r.AllocsPerOp),
			fmt.Sprintf("%+.3f", allocsDelta), verdict)
	}
	for k, o := range oldRows {
		t.AddRow(k.Backend, fmt.Sprintf("%d", k.Shards), k.Mix,
			fmt.Sprintf("%.1f", o.NSPerOp), "—", "dropped row",
			fmt.Sprintf("%.3f", o.AllocsPerOp), "—", "dropped row", "info")
	}
	fmt.Println(t)
	if matched == 0 {
		return fmt.Errorf("compare: no rows matched between %s and %s — "+
			"rows match on backend, shards, workers, batch, mix, cpus, optimistic and stripes; "+
			"check for parameter drift, a runner with a different CPU count, or a baseline recorded "+
			"before the cpus/optimistic/stripes fields existed (the row shape drifted — re-record it)",
			cfg.oldPath, cfg.newPath)
	}
	if regressed > 0 {
		return errRegression{count: regressed}
	}
	fmt.Printf("%d matched row(s), no regression beyond thresholds\n", matched)
	return nil
}
