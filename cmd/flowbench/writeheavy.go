package main

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// This file is the reader/writer contention half of the engine bench:
// -scenario writeheavy sweeps write fraction × seqlock stripe count over
// the concurrent engine. Workers share the engine but own disjoint key
// spans, so one worker's write rounds never touch the keys another
// worker's read rounds probe — under the single-word protocol those
// writes still invalidate the reads (any write bumps the shard's only
// sequence word), while striping confines the invalidation to the
// writer's own buckets. The retry/fallback columns therefore measure
// exactly the false-sharing traffic the striped seqlock exists to
// remove. Rows land in the engine JSON format so -compare gates them
// against the committed BENCH_engine_stripes.json; the stripes=1 rows
// are the pre-striping control, so the baseline file itself records the
// degradation striping prevents.

// writeheavyFracs are the percentages of rounds that write; each
// worker's schedule is a 10-round cycle with frac/10 write rounds.
var writeheavyFracs = []int{10, 50, 90}

// writeheavyStripes are the requested per-shard stripe counts: the
// single-word control, a mid setting, and the cap. Requests clamp to the
// backend's stripe bound; clamped-away duplicates are skipped.
var writeheavyStripes = []int{1, 64, 512}

// writeheavyMinSignal is the single-word contention floor (retries +
// fallbacks) below which the in-sweep claim check abstains: with almost
// no observed conflicts the ordering between settings is noise, not a
// verdict on striping.
const writeheavyMinSignal = 100

// writeheavySweepConfig parameterises the contention sweep.
type writeheavySweepConfig struct {
	backends   []string
	shards     []int
	workers    int
	ops        int // operations per worker per row
	capacity   int
	batch      int
	optimistic bool
	jsonPath   string
}

// writeheavySpan is the per-worker key span: combined steady-state
// residency stays near half the configured capacity (the preloaded spans
// stay resident apart from the one window a writer is cycling).
func writeheavySpan(cfg writeheavySweepConfig) uint64 {
	span := uint64(cfg.capacity / (2 * cfg.workers))
	if span < 1 {
		span = 1
	}
	return span
}

// runWriteheavyRow measures one backend/shards/frac/stripes cell. Every
// worker's span is preloaded before the clock starts, so read rounds
// measure resident-flow lookups — the workload the striping claim is
// about — rather than misses.
func runWriteheavyRow(backend string, shards, frac, reqStripes int, cfg writeheavySweepConfig) (engineLoadResult, error) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		DisableOptimisticReads: !cfg.optimistic,
		SeqlockStripes:         reqStripes,
	})
	if err != nil {
		return engineLoadResult{}, err
	}
	span := writeheavySpan(cfg)
	pre := make([]flowproc.FiveTuple, 0, cfg.batch)
	preIDs := make([]uint64, cfg.batch)
	preErrs := make([]error, cfg.batch)
	for w := 0; w < cfg.workers; w++ {
		base := uint64(w) << 32
		for k := uint64(0); k < span; k += uint64(cfg.batch) {
			pre = pre[:0]
			for i := 0; i < cfg.batch && k+uint64(i) < span; i++ {
				pre = append(pre, trafficgen.Flow(base+k+uint64(i)))
			}
			eng.InsertBatchInto(pre, preIDs[:len(pre)], preErrs[:len(pre)])
			for _, e := range preErrs[:len(pre)] {
				if e != nil && !errors.Is(e, table.ErrTableFull) {
					return engineLoadResult{}, e
				}
			}
		}
	}
	var wg sync.WaitGroup
	var overflows atomic.Int64
	errCh := make(chan error, cfg.workers)
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := writeheavyWorker(eng, w, frac, cfg, &overflows); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	close(errCh)
	for err := range errCh {
		return engineLoadResult{}, err
	}
	totalOps := int64(cfg.workers) * int64(cfg.ops)
	rs := eng.ReadStats()
	return engineLoadResult{
		mops:          float64(totalOps) / wall.Seconds() / 1e6,
		nsPerOp:       float64(wall.Nanoseconds()) / float64(totalOps),
		allocsPerOp:   float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalOps),
		bytesPerOp:    float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(totalOps),
		totalOps:      totalOps,
		wall:          wall,
		resident:      eng.Len(),
		overflows:     overflows.Load(),
		bytesPerSlot:  eng.BytesPerSlot(),
		optimistic:    rs.Optimistic,
		stripes:       eng.Stripes(),
		readRetries:   rs.Retries,
		stripeRetries: rs.StripeRetries,
		globalRetries: rs.GlobalRetries,
		readFallbacks: rs.Fallbacks,
	}, nil
}

// writeheavyWorker runs the 10-round schedule: frac/10 write rounds then
// read rounds, all over the worker's own span on the zero-allocation
// *Into paths. Write rounds cycle one batch-sized window — delete it,
// re-insert it, advance — so the span's residency (and with it the read
// rounds' hit rate) stays stable for the whole run.
func writeheavyWorker(eng *flowproc.Engine, w, frac int, cfg writeheavySweepConfig, overflows *atomic.Int64) error {
	span := writeheavySpan(cfg)
	base := uint64(w) << 32
	writeRounds := frac / 10
	batch := make([]flowproc.FiveTuple, cfg.batch)
	ids := make([]uint64, cfg.batch)
	hits := make([]bool, cfg.batch)
	errs := make([]error, cfg.batch)
	oks := make([]bool, cfg.batch)
	insertNext := false // the preload left the span resident: delete first
	var off uint64
	for done := 0; done < cfg.ops; {
		for phase := 0; phase < 10 && done < cfg.ops; phase++ {
			for i := range batch {
				batch[i] = trafficgen.Flow(base + (off+uint64(i))%span)
			}
			if phase < writeRounds {
				if insertNext {
					eng.InsertBatchInto(batch, ids, errs)
					for _, e := range errs {
						if e == nil {
							continue
						}
						if !errors.Is(e, table.ErrTableFull) {
							return e
						}
						overflows.Add(1)
						break
					}
					// The window is whole again; move to the next one.
					off = (off + uint64(cfg.batch)) % span
				} else {
					eng.DeleteBatchInto(batch, oks)
				}
				insertNext = !insertNext
			} else {
				eng.LookupBatchInto(batch, ids, hits)
			}
			done += cfg.batch
		}
	}
	return nil
}

// checkWriteheavyClaim asserts the sweep's acceptance criterion on one
// backend/shards/frac group (keyed by effective stripe count): at the
// contended write fractions, a striped setting (>= 64) must see strictly
// fewer reader conflicts (retries + fallbacks) than the single-word
// control. The check abstains where the claim is unmeasurable — too few
// procs or workers for real concurrency, fewer than 4 physical CPUs
// (GOMAXPROCS=4 timeshared onto one core never runs a reader and a
// writer simultaneously, so the handful of conflicts it observes are
// preemption artifacts with no ordering meaning), the RLock path, or a
// control row with no contention signal to beat.
func checkWriteheavyClaim(group map[int]engineLoadResult, backend string, shards, frac, workers int) error {
	if frac < 50 || workers < 2 || runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		return nil
	}
	s1, ok := group[1]
	if !ok || !s1.optimistic {
		return nil
	}
	signal := s1.readRetries + s1.readFallbacks
	if signal < writeheavyMinSignal {
		return nil
	}
	for stripes, r := range group {
		if stripes < 64 || !r.optimistic {
			continue
		}
		if got := r.readRetries + r.readFallbacks; got >= signal {
			return fmt.Errorf("writeheavy %s/%d w%d: %d stripes saw %d reader conflicts, not fewer than the single-word control's %d",
				backend, shards, frac, stripes, got, signal)
		}
	}
	return nil
}

// writeheavySweep runs write fraction × stripe count rows per
// backend/shard configuration, asserts the conflict-reduction claim per
// group, and writes the shared JSON format for -compare gating.
func writeheavySweep(cfg writeheavySweepConfig) error {
	t := metrics.NewTable(
		fmt.Sprintf("Write-heavy contention sweep — %d workers × %d ops, batch %d (GOMAXPROCS=%d)",
			cfg.workers, cfg.ops, cfg.batch, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Mix", "Stripes", "ns/op", "Mops/s", "Stripe/global retries", "Fallbacks", "allocs/op", "Wall time")
	var jsonResults []engineJSONResult
	for _, backend := range cfg.backends {
		for _, shards := range cfg.shards {
			for _, frac := range writeheavyFracs {
				group := make(map[int]engineLoadResult, len(writeheavyStripes))
				for _, req := range writeheavyStripes {
					res, err := runWriteheavyRow(backend, shards, frac, req, cfg)
					if err != nil {
						return fmt.Errorf("writeheavy %s/%d w%d stripes %d: %w", backend, shards, frac, req, err)
					}
					if _, dup := group[res.stripes]; dup {
						fmt.Printf("writeheavy: requested %d stripes clamps to %d (already measured) — row skipped\n", req, res.stripes)
						continue
					}
					group[res.stripes] = res
					mix := fmt.Sprintf("wh:w%d", frac)
					t.AddRow(backend, fmt.Sprintf("%d", shards), mix,
						fmt.Sprintf("%d", res.stripes),
						fmt.Sprintf("%.1f", res.nsPerOp),
						fmt.Sprintf("%.2f", res.mops),
						fmt.Sprintf("%d/%d", res.stripeRetries, res.globalRetries),
						fmt.Sprintf("%d", res.readFallbacks),
						fmt.Sprintf("%.3f", res.allocsPerOp),
						res.wall.Round(time.Millisecond).String())
					jsonResults = append(jsonResults, engineJSONResult{
						Backend:       backend,
						Shards:        shards,
						Workers:       cfg.workers,
						Batch:         cfg.batch,
						Mix:           mix,
						Cpus:          runtime.GOMAXPROCS(0),
						Optimistic:    res.optimistic,
						Stripes:       res.stripes,
						ReadRetries:   res.readRetries,
						StripeRetries: res.stripeRetries,
						GlobalRetries: res.globalRetries,
						ReadFallbacks: res.readFallbacks,
						TotalOps:      res.totalOps,
						WallNS:        res.wall.Nanoseconds(),
						NSPerOp:       res.nsPerOp,
						MopsPerSec:    res.mops,
						AllocsPerOp:   res.allocsPerOp,
						BytesPerOp:    res.bytesPerOp,
						Resident:      res.resident,
						Overflows:     res.overflows,
						BytesPerSlot:  res.bytesPerSlot,
					})
					if res.stripes < req {
						// The bound clamps every larger request to the same
						// effective count; further rows would be duplicates.
						break
					}
				}
				if err := checkWriteheavyClaim(group, backend, shards, frac, cfg.workers); err != nil {
					return err
				}
			}
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		rep := engineJSONReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			OpsPerWkr:  cfg.ops,
			Results:    jsonResults,
		}
		if err := writeJSONReport(cfg.jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}
