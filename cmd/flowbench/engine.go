package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// engineSweepConfig parameterises the concurrent engine sweep.
type engineSweepConfig struct {
	backends   []string
	shards     []int
	workers    int
	ops        int
	capacity   int
	batch      int
	writers    bool   // write-heavy mix through the *Into writer pipeline
	optimistic bool   // serve lookups via the seqlock lock-free path
	stripes    int    // seqlock stripes per shard (0 auto, 1 single-word)
	jsonPath   string // non-empty: also write machine-readable results
}

// mixName labels the workload mix in table and JSON output.
func (c engineSweepConfig) mixName() string {
	if c.writers {
		return "write-heavy"
	}
	return "read-mostly"
}

// engineJSONResult is one backend×shards×workers measurement in the
// machine-readable output (BENCH_engine.json), the format CI archives so
// the perf trajectory of the engine is recorded per commit.
type engineJSONResult struct {
	Backend string `json:"backend"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Batch   int    `json:"batch"`
	Mix     string `json:"mix"`
	// Cpus is the GOMAXPROCS the row was measured under. It is part of the
	// row identity in compare mode: a 1-core baseline must never gate a
	// 4-core run (lock-contention profiles differ completely), so rows
	// recorded on differently shaped runners simply do not match.
	Cpus int `json:"cpus"`
	// Optimistic reports whether lookups were served by the seqlock
	// lock-free read path (backend-capable and not disabled by
	// -optimistic=false). Also part of the compare row identity: the two
	// paths are different machines with different cost models.
	Optimistic bool `json:"optimistic"`
	// Stripes is the effective per-shard seqlock stripe count the row ran
	// under (1 = the single-word protocol). Part of the compare row
	// identity: a 1-stripe control and a striped run see completely
	// different invalidation rates, so they must never gate each other.
	Stripes int `json:"stripes"`
	// ReadRetries / ReadFallbacks are the seqlock's cumulative conflict
	// counters over the run: probes invalidated by a concurrent writer and
	// reads that exhausted the retry budget and took the RLock slow path.
	// StripeRetries / GlobalRetries split the retries by which sequence
	// word moved: a stripe covering the key's candidate buckets vs the
	// shard-global word (whole-arena writers and kick-chain escalations) —
	// ReadRetries is always their sum.
	ReadRetries   int64   `json:"read_retries"`
	StripeRetries int64   `json:"stripe_retries"`
	GlobalRetries int64   `json:"global_retries"`
	ReadFallbacks int64   `json:"read_fallbacks"`
	TotalOps      int64   `json:"total_ops"`
	WallNS        int64   `json:"wall_ns"`
	NSPerOp       float64 `json:"ns_per_op"`
	MopsPerSec    float64 `json:"mops_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	Resident      int     `json:"resident_flows"`
	Overflows     int64   `json:"overflow_batches"`
	// BytesPerSlot is the table's slot-storage cost (inline keys,
	// fingerprint tags, hash caches, expiry side-tables) averaged over its
	// slot space, so the memory cost of the layout is tracked alongside
	// speed; 0 when the backend reports no footprint.
	BytesPerSlot float64 `json:"bytes_per_slot"`
	// SpeedupVs1Shard is 0 when the sweep had no shards=1 row to compare
	// against.
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard,omitempty"`
	// HitRate is the fraction of lookups that hit, on rows whose workload
	// tracks it (the adversarial scenarios); 0 on throughput rows.
	HitRate float64 `json:"hit_rate,omitempty"`
	// FailedInserts counts per-key ErrTableFull rejections on adversarial
	// rows (the overflow signature of an unabsorbed attack).
	FailedInserts int64 `json:"failed_inserts,omitempty"`
	// PressureEvictions counts FullEvictIdlest reclamations on adversarial
	// rows running the degradation policy.
	PressureEvictions int64 `json:"pressure_evictions,omitempty"`
	// MigrateSteps / OldArenaReads are the elastic-capacity counters on
	// -grow rows: budgeted migration batches executed during the phase and
	// hit-path reads that had to consult the retiring arena. Zero (and
	// omitted) on rows that never grew.
	MigrateSteps  int64 `json:"migrate_steps,omitempty"`
	OldArenaReads int64 `json:"old_arena_reads,omitempty"`
	// Capacity is the engine's real slot capacity at the end of a -grow
	// phase, so the before/after rows record the resize itself and not just
	// its cost.
	Capacity int64 `json:"capacity,omitempty"`
	// AdmissionThreshold / AdmissionGated / AdmissionAdmitted /
	// SketchBytes / SketchFPR are the admission-sweep columns: the gate
	// setting (0 on the ungated control row), the deferred and admitted
	// insert counts, the sketch footprint, and the fraction of
	// never-inserted probes the sketch would admit on first sight through
	// counter collisions. Zero (and omitted) outside -scenario admission.
	AdmissionThreshold int     `json:"admission_threshold,omitempty"`
	AdmissionGated     int64   `json:"admission_gated,omitempty"`
	AdmissionAdmitted  int64   `json:"admission_admitted,omitempty"`
	SketchBytes        int64   `json:"sketch_bytes,omitempty"`
	SketchFPR          float64 `json:"sketch_fpr,omitempty"`
	// OccupancyMean is the mean resident-flow count sampled per batch over
	// the second half of an admission row — the steady-state table
	// pressure the gate is supposed to relieve.
	OccupancyMean float64 `json:"occupancy_mean,omitempty"`
	// MultiHitRate is the lookup hit rate restricted to third-and-later
	// occurrences of a flow on admission rows: the elephants the gate must
	// not cost anything.
	MultiHitRate float64 `json:"multi_hit_rate,omitempty"`
	// SinglePacketFrac is the fraction of the row's distinct flows seen
	// exactly once — the mice share of the trace the claim depends on.
	SinglePacketFrac float64 `json:"single_packet_frac,omitempty"`
}

// engineJSONReport is the top-level structure of the -json output.
type engineJSONReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	OpsPerWkr  int                `json:"ops_per_worker"`
	Results    []engineJSONResult `json:"results"`
}

// writeEngineJSON writes the sweep results to path.
func writeEngineJSON(path string, cfg engineSweepConfig, results []engineJSONResult) error {
	return writeJSONReport(path, engineJSONReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OpsPerWkr:  cfg.ops,
		Results:    results,
	})
}

// writeJSONReport writes one bench report to path.
func writeJSONReport(path string, rep engineJSONReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("encode engine results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write engine results: %w", err)
	}
	return nil
}

// parseShards parses a comma-separated shard-count list.
func parseShards(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseBackends resolves a comma-separated backend list; "all" expands to
// every registered backend. Empty entries are rejected rather than being
// silently defaulted by the engine (a blank row would mislabel a
// measurement).
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "all" {
		return flowproc.Backends(), nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if name == "" {
			return nil, fmt.Errorf("empty backend name in %q", s)
		}
		out = append(out, name)
	}
	return out, nil
}

// engineSweep measures wall-clock throughput of the concurrent sharded
// engine across backend × shard-count combinations: the software analogue
// of the paper's dual-channel scaling, generalised to N shards. Each
// worker drives a mixed batched workload (insert, lookup, delete) over a
// shared engine.
func engineSweep(cfg engineSweepConfig) error {
	readPath := "optimistic reads"
	if !cfg.optimistic {
		readPath = "locked reads"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Engine sweep — %d workers, %d ops each, batch %d, %s mix, %s (GOMAXPROCS=%d)",
			cfg.workers, cfg.ops, cfg.batch, cfg.mixName(), readPath, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Throughput (Mops/s)", "ns/op", "allocs/op", "B/slot", "Wall time", "Flows resident", "Overflow batches", "Seqlock retry/fb", "Speedup vs 1 shard")
	var jsonResults []engineJSONResult
	for _, backend := range cfg.backends {
		// Run every configuration first, then derive speedups from the
		// shards=1 row wherever it appears in the list (so -shards 8,1
		// still gets a baseline).
		results := make([]engineLoadResult, len(cfg.shards))
		var base float64
		for i, shards := range cfg.shards {
			res, err := runEngineLoad(backend, shards, cfg)
			if err != nil {
				return fmt.Errorf("engine %s/%d: %w", backend, shards, err)
			}
			results[i] = res
			if shards == 1 {
				base = res.mops
			}
		}
		for i, shards := range cfg.shards {
			res := results[i]
			speedup := "—"
			speedupVal := 0.0
			if shards != 1 && base > 0 {
				speedupVal = res.mops / base
				speedup = fmt.Sprintf("%.2fx", speedupVal)
			}
			t.AddRow(backend, fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.2f", res.mops),
				fmt.Sprintf("%.1f", res.nsPerOp),
				fmt.Sprintf("%.3f", res.allocsPerOp),
				fmt.Sprintf("%.1f", res.bytesPerSlot),
				res.wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", res.resident), fmt.Sprintf("%d", res.overflows),
				fmt.Sprintf("%d/%d", res.readRetries, res.readFallbacks), speedup)
			jsonResults = append(jsonResults, engineJSONResult{
				Backend:         backend,
				Shards:          shards,
				Workers:         cfg.workers,
				Batch:           cfg.batch,
				Mix:             cfg.mixName(),
				Cpus:            runtime.GOMAXPROCS(0),
				Optimistic:      res.optimistic,
				Stripes:         res.stripes,
				ReadRetries:     res.readRetries,
				StripeRetries:   res.stripeRetries,
				GlobalRetries:   res.globalRetries,
				ReadFallbacks:   res.readFallbacks,
				TotalOps:        res.totalOps,
				WallNS:          res.wall.Nanoseconds(),
				NSPerOp:         res.nsPerOp,
				MopsPerSec:      res.mops,
				AllocsPerOp:     res.allocsPerOp,
				BytesPerOp:      res.bytesPerOp,
				Resident:        res.resident,
				Overflows:       res.overflows,
				BytesPerSlot:    res.bytesPerSlot,
				SpeedupVs1Shard: speedupVal,
			})
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		if err := writeEngineJSON(cfg.jsonPath, cfg, jsonResults); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}

// engineLoadResult summarises one backend/shard configuration run.
type engineLoadResult struct {
	mops          float64
	nsPerOp       float64
	allocsPerOp   float64
	bytesPerOp    float64
	totalOps      int64
	wall          time.Duration
	resident      int
	overflows     int64
	bytesPerSlot  float64
	optimistic    bool
	stripes       int
	readRetries   int64
	stripeRetries int64
	globalRetries int64
	readFallbacks int64
}

// runEngineLoad drives one backend/shard configuration with cfg.workers
// goroutines.
func runEngineLoad(backend string, shards int, cfg engineSweepConfig) (engineLoadResult, error) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		DisableOptimisticReads: !cfg.optimistic,
		SeqlockStripes:         cfg.stripes,
	})
	if err != nil {
		return engineLoadResult{}, err
	}
	var wg sync.WaitGroup
	var overflows atomic.Int64
	errCh := make(chan error, cfg.workers)
	// Allocation accounting: ReadMemStats deltas around the run, divided
	// by total ops. GC bookkeeping adds noise at tiny op counts but the
	// steady-state engine paths allocate nothing, so the signal (0.0x vs
	// the pre-optimisation ~3) dominates at any realistic -ops.
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := engineWorker(eng, w, cfg, &overflows); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	close(errCh)
	for err := range errCh {
		return engineLoadResult{}, err
	}
	totalOps := int64(cfg.workers) * int64(cfg.ops)
	rs := eng.ReadStats()
	return engineLoadResult{
		mops:          float64(totalOps) / wall.Seconds() / 1e6,
		nsPerOp:       float64(wall.Nanoseconds()) / float64(totalOps),
		allocsPerOp:   float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalOps),
		bytesPerOp:    float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(totalOps),
		totalOps:      totalOps,
		wall:          wall,
		resident:      eng.Len(),
		overflows:     overflows.Load(),
		bytesPerSlot:  eng.BytesPerSlot(),
		optimistic:    rs.Optimistic,
		stripes:       eng.Stripes(),
		readRetries:   rs.Retries,
		stripeRetries: rs.StripeRetries,
		globalRetries: rs.GlobalRetries,
		readFallbacks: rs.Fallbacks,
	}, nil
}

// engineWorker performs cfg.ops operations in batches. The read-mostly
// mix inserts a batch of the worker's own flows, looks the batch up twice,
// and deletes half — roughly 25% inserts, 50% lookups, 25% deletes. The
// write-heavy mix (-writers) drives the zero-allocation writer pipeline
// instead: every round is an InsertBatchInto followed by a full
// DeleteBatchInto over reused caller-owned buffers — 50% inserts, 50%
// deletes, no reads.
func engineWorker(eng *flowproc.Engine, w int, cfg engineSweepConfig, overflows *atomic.Int64) error {
	// Each worker cycles a disjoint key span sized so that the combined
	// steady-state residency of all workers stays under half the
	// configured capacity — the undeleted tail of every round is retained,
	// so an unscaled span would fill the table once workers >= 4.
	span := uint64(cfg.capacity / (2 * cfg.workers))
	if span < 1 {
		span = 1
	}
	batch := make([]flowproc.FiveTuple, cfg.batch)
	done := 0
	base := uint64(w) << 32
	if cfg.writers {
		ids := make([]uint64, cfg.batch)
		errs := make([]error, cfg.batch)
		oks := make([]bool, cfg.batch)
		for round := 0; done < cfg.ops; round++ {
			for i := range batch {
				batch[i] = trafficgen.Flow(base + uint64(round*cfg.batch+i)%span)
			}
			eng.InsertBatchInto(batch, ids, errs)
			for _, err := range errs {
				if err == nil {
					continue
				}
				// A saturated structure dropping flows is a measured
				// outcome, not a sweep failure; anything else is.
				if !errors.Is(err, table.ErrTableFull) {
					return err
				}
				overflows.Add(1)
				break
			}
			done += len(batch)
			if done < cfg.ops {
				eng.DeleteBatchInto(batch, oks)
				done += len(batch)
			}
		}
		return nil
	}
	for round := 0; done < cfg.ops; round++ {
		for i := range batch {
			batch[i] = trafficgen.Flow(base + uint64(round*cfg.batch+i)%span)
		}
		if _, err := eng.InsertBatch(batch); err != nil {
			// A saturated structure dropping flows is a measured outcome
			// (single-hash overflow is the paper's §II motivation), not a
			// sweep failure; anything else is.
			if !errors.Is(err, table.ErrTableFull) {
				return err
			}
			overflows.Add(1)
		}
		done += len(batch)
		for rep := 0; rep < 2 && done < cfg.ops; rep++ {
			eng.LookupBatch(batch)
			done += len(batch)
		}
		if done < cfg.ops {
			eng.DeleteBatch(batch[:len(batch)/2])
			done += len(batch) / 2
		}
	}
	return nil
}
