package main

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// engineSweepConfig parameterises the concurrent engine sweep.
type engineSweepConfig struct {
	backends []string
	shards   []int
	workers  int
	ops      int
	capacity int
	batch    int
}

// parseShards parses a comma-separated shard-count list.
func parseShards(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseBackends resolves a comma-separated backend list; "all" expands to
// every registered backend. Empty entries are rejected rather than being
// silently defaulted by the engine (a blank row would mislabel a
// measurement).
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "all" {
		return flowproc.Backends(), nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if name == "" {
			return nil, fmt.Errorf("empty backend name in %q", s)
		}
		out = append(out, name)
	}
	return out, nil
}

// engineSweep measures wall-clock throughput of the concurrent sharded
// engine across backend × shard-count combinations: the software analogue
// of the paper's dual-channel scaling, generalised to N shards. Each
// worker drives a mixed batched workload (insert, lookup, delete) over a
// shared engine.
func engineSweep(cfg engineSweepConfig) error {
	t := metrics.NewTable(
		fmt.Sprintf("Engine sweep — %d workers, %d ops each, batch %d (GOMAXPROCS=%d)",
			cfg.workers, cfg.ops, cfg.batch, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Throughput (Mops/s)", "Wall time", "Flows resident", "Overflow batches", "Speedup vs 1 shard")
	for _, backend := range cfg.backends {
		// Run every configuration first, then derive speedups from the
		// shards=1 row wherever it appears in the list (so -shards 8,1
		// still gets a baseline).
		results := make([]engineLoadResult, len(cfg.shards))
		var base float64
		for i, shards := range cfg.shards {
			res, err := runEngineLoad(backend, shards, cfg)
			if err != nil {
				return fmt.Errorf("engine %s/%d: %w", backend, shards, err)
			}
			results[i] = res
			if shards == 1 {
				base = res.mops
			}
		}
		for i, shards := range cfg.shards {
			res := results[i]
			speedup := "—"
			if shards != 1 && base > 0 {
				speedup = fmt.Sprintf("%.2fx", res.mops/base)
			}
			t.AddRow(backend, fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.2f", res.mops), res.wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", res.resident), fmt.Sprintf("%d", res.overflows), speedup)
		}
	}
	fmt.Println(t)
	return nil
}

// engineLoadResult summarises one backend/shard configuration run.
type engineLoadResult struct {
	mops      float64
	wall      time.Duration
	resident  int
	overflows int64
}

// runEngineLoad drives one backend/shard configuration with cfg.workers
// goroutines.
func runEngineLoad(backend string, shards int, cfg engineSweepConfig) (engineLoadResult, error) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:  backend,
		Shards:   shards,
		Capacity: cfg.capacity,
	})
	if err != nil {
		return engineLoadResult{}, err
	}
	var wg sync.WaitGroup
	var overflows atomic.Int64
	errCh := make(chan error, cfg.workers)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := engineWorker(eng, w, cfg, &overflows); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return engineLoadResult{}, err
	}
	totalOps := float64(cfg.workers) * float64(cfg.ops)
	return engineLoadResult{
		mops:      totalOps / wall.Seconds() / 1e6,
		wall:      wall,
		resident:  eng.Len(),
		overflows: overflows.Load(),
	}, nil
}

// engineWorker performs cfg.ops operations in batches: each round inserts
// a batch of its own flows, looks the batch up twice (its own plus a
// shared slice of the key space), and deletes half — a steady-state mix
// of roughly 25% inserts, 50% lookups, 25% deletes.
func engineWorker(eng *flowproc.Engine, w int, cfg engineSweepConfig, overflows *atomic.Int64) error {
	// Each worker cycles a disjoint key span sized so that the combined
	// steady-state residency of all workers stays under half the
	// configured capacity — the undeleted tail of every round is retained,
	// so an unscaled span would fill the table once workers >= 4.
	span := uint64(cfg.capacity / (2 * cfg.workers))
	if span < 1 {
		span = 1
	}
	batch := make([]flowproc.FiveTuple, cfg.batch)
	done := 0
	base := uint64(w) << 32
	for round := 0; done < cfg.ops; round++ {
		for i := range batch {
			batch[i] = trafficgen.Flow(base + uint64(round*cfg.batch+i)%span)
		}
		if _, err := eng.InsertBatch(batch); err != nil {
			// A saturated structure dropping flows is a measured outcome
			// (single-hash overflow is the paper's §II motivation), not a
			// sweep failure; anything else is.
			if !errors.Is(err, table.ErrTableFull) {
				return err
			}
			overflows.Add(1)
		}
		done += len(batch)
		for rep := 0; rep < 2 && done < cfg.ops; rep++ {
			eng.LookupBatch(batch)
			done += len(batch)
		}
		if done < cfg.ops {
			eng.DeleteBatch(batch[:len(batch)/2])
			done += len(batch) / 2
		}
	}
	return nil
}
