package main

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/flowproc"
	"repro/internal/metrics"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// This file is the elastic-capacity half of the engine bench: -grow runs
// a capacity ramp — populate to ~70% of the configured capacity and
// measure steady-state lookups, then double the population so the armed
// auto-grow resizes every shard in place while the mixed insert+lookup
// cost is measured (budgeted migration steps piggyback on the writes),
// and finally measure lookups again once migration has converged. The
// three phases land as separate rows (grow:before / grow:during /
// grow:after) in the same JSON format as the throughput sweep, so
// -compare gates the migration-path cost against the committed
// BENCH_engine_grow.json.

const (
	// growMaxLoadFactor arms auto-growth well below saturation so the ramp
	// triggers growth from real occupancy, not from per-bucket overflow
	// alone.
	growMaxLoadFactor = 0.85
	// growStepBudget bounds slots migrated per pumped write — the knob
	// trading migration latency against per-op jitter during the ramp.
	growStepBudget = 256
	// growConvergePasses bounds the unmeasured drain between the during
	// and after phases; a migration still active after this many full
	// passes over the population is a bug, not slowness.
	growConvergePasses = 1024
)

// growSweepConfig parameterises the elastic-capacity ramp. Rows are
// single-threaded: the ramp measures migration cost on the op path, not
// lock scaling (the throughput sweep covers that).
type growSweepConfig struct {
	backends   []string
	shards     []int
	ops        int // lookups per measured steady-state phase
	capacity   int
	batch      int
	optimistic bool
	jsonPath   string
}

// growPhase is one measured window of the ramp: op count, wall time,
// allocation deltas, and the migration-counter deltas attributable to
// the window.
type growPhase struct {
	ops           int64
	wall          time.Duration
	allocsPerOp   float64
	bytesPerOp    float64
	migrateSteps  int64
	oldArenaReads int64
	capacity      int64
	resident      int
	hitRate       float64
	failedInserts int64
}

// growMeter brackets a measured window with MemStats and GrowStats
// snapshots so each phase reports only its own deltas.
type growMeter struct {
	eng      *flowproc.Engine
	msBefore runtime.MemStats
	gsBefore table.GrowStats
	start    time.Time
}

// begin snapshots the counters and starts the clock.
func (m *growMeter) begin() {
	runtime.ReadMemStats(&m.msBefore)
	m.gsBefore = m.eng.GrowStats()
	m.start = time.Now()
}

// end stops the clock and fills the delta-derived fields of p.
func (m *growMeter) end(p *growPhase) {
	p.wall = time.Since(m.start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	gsAfter := m.eng.GrowStats()
	if p.ops > 0 {
		p.allocsPerOp = float64(msAfter.Mallocs-m.msBefore.Mallocs) / float64(p.ops)
		p.bytesPerOp = float64(msAfter.TotalAlloc-m.msBefore.TotalAlloc) / float64(p.ops)
	}
	p.migrateSteps = gsAfter.MigrateSteps - m.gsBefore.MigrateSteps
	p.oldArenaReads = gsAfter.OldArenaReads - m.gsBefore.OldArenaReads
	p.capacity = m.eng.Capacity()
	p.resident = m.eng.Len()
}

// runGrowRamp drives one backend/shard configuration through the three
// ramp phases, returning them in before/during/after order along with
// whether lookups were actually served by the lock-free read path and
// the effective seqlock stripe count (both part of the row identity).
func runGrowRamp(backend string, shards int, cfg growSweepConfig) ([3]growPhase, bool, int, error) {
	var phases [3]growPhase
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		HashSeed:               attackSeed,
		DisableOptimisticReads: !cfg.optimistic,
		Growth:                 table.GrowthConfig{MaxLoadFactor: growMaxLoadFactor, StepBudget: growStepBudget},
	})
	if err != nil {
		return phases, false, 0, err
	}
	// Two equal populations: the first fills ~70% of nominal capacity
	// (under the auto-grow threshold), the second doubles the resident set
	// mid-run and forces the resize.
	pop := max(cfg.capacity*7/10, cfg.batch)
	flows := make([]flowproc.FiveTuple, 2*pop)
	for i := range flows {
		flows[i] = trafficgen.Flow(uint64(i))
	}
	first, second := flows[:pop], flows[pop:]
	ids := make([]uint64, cfg.batch)
	hit := make([]bool, cfg.batch)
	merrs := make([]error, cfg.batch)
	insertAll := func(fts []flowproc.FiveTuple) (failed int64, err error) {
		for off := 0; off < len(fts); off += cfg.batch {
			b := fts[off:min(off+cfg.batch, len(fts))]
			eng.InsertBatchInto(b, ids[:len(b)], merrs[:len(b)])
			for _, e := range merrs[:len(b)] {
				if e == nil {
					continue
				}
				if !errors.Is(e, table.ErrTableFull) {
					return failed, e
				}
				failed++
			}
		}
		return failed, nil
	}
	// lookupOps cycles batched lookups over fts until ops operations are
	// done, returning the hit rate.
	lookupOps := func(fts []flowproc.FiveTuple, ops int) (int64, float64) {
		var done, hits int64
		for off := 0; done < int64(ops); off = (off + cfg.batch) % len(fts) {
			b := fts[off:min(off+cfg.batch, len(fts))]
			eng.LookupBatchInto(b, ids[:len(b)], hit[:len(b)])
			for _, h := range hit[:len(b)] {
				if h {
					hits++
				}
			}
			done += int64(len(b))
		}
		return done, float64(hits) / float64(done)
	}
	meter := growMeter{eng: eng}

	// settle re-inserts fts until a pass is rejection-free and no
	// migration is in flight: per-bucket overflow can reject keys well
	// below the load-factor threshold (the single-hash overflow problem the
	// paper opens with), each rejection arms a grow-on-full resize, and the
	// duplicate passes pump the budgeted migration steps to completion.
	settle := func(fts []flowproc.FiveTuple, what string) error {
		for pass := 0; ; pass++ {
			if pass >= growConvergePasses {
				return fmt.Errorf("%s never converged: %+v", what, eng.GrowStats())
			}
			failed, err := insertAll(fts)
			if err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
			if failed == 0 && eng.GrowStats().ActiveGrows == 0 {
				return nil
			}
		}
	}

	// Phase 1 — grow:before. Populate under the threshold (unmeasured),
	// then measure steady-state lookups at the settled capacity.
	if err := settle(first, "preload"); err != nil {
		return phases, false, 0, err
	}
	meter.begin()
	phases[0].ops, phases[0].hitRate = lookupOps(first, cfg.ops)
	meter.end(&phases[0])

	// Phase 2 — grow:during. Double the population: each insert batch
	// trips the load-factor (or grow-on-full) trigger and pumps budgeted
	// migration steps; a lookup batch over the combined prefix after every
	// insert batch keeps the mixed read cost in the measurement.
	meter.begin()
	var duringHits int64
	for off := 0; off < len(second); off += cfg.batch {
		b := second[off:min(off+cfg.batch, len(second))]
		eng.InsertBatchInto(b, ids[:len(b)], merrs[:len(b)])
		for _, e := range merrs[:len(b)] {
			if e == nil {
				continue
			}
			if !errors.Is(e, table.ErrTableFull) {
				return phases, false, 0, e
			}
			phases[1].failedInserts++
		}
		lb := flows[off : off+len(b)] // settled prefix: inserted in phase 1
		eng.LookupBatchInto(lb, ids[:len(lb)], hit[:len(lb)])
		for _, h := range hit[:len(lb)] {
			if h {
				duringHits++
			}
		}
		phases[1].ops += int64(len(b) + len(lb))
	}
	meter.end(&phases[1])
	phases[1].hitRate = float64(duringHits) / float64(phases[1].ops/2)

	// Drain: settle the doubled population (unmeasured — operational
	// housekeeping, not op-path cost) so the after phase sees a converged
	// table holding every flow.
	if err := settle(flows, "drain"); err != nil {
		return phases, false, 0, err
	}

	// Phase 3 — grow:after. Steady-state lookups over the doubled
	// population at the grown capacity.
	meter.begin()
	phases[2].ops, phases[2].hitRate = lookupOps(flows, cfg.ops)
	meter.end(&phases[2])
	return phases, eng.ReadStats().Optimistic, eng.Stripes(), nil
}

// growSweep runs the capacity ramp across backend × shard configurations
// and writes the same JSON format as the throughput sweep for -compare
// gating.
func growSweep(cfg growSweepConfig) error {
	t := metrics.NewTable(
		fmt.Sprintf("Elastic-capacity ramp — %d lookups/phase, batch %d, capacity %d (GOMAXPROCS=%d)",
			cfg.ops, cfg.batch, cfg.capacity, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Phase", "ns/op", "Mops/s", "Migrate steps", "Old-arena reads", "Capacity", "Resident", "Hit rate", "allocs/op", "Wall time")
	phaseNames := [3]string{"grow:before", "grow:during", "grow:after"}
	var jsonResults []engineJSONResult
	for _, backend := range cfg.backends {
		for _, shards := range cfg.shards {
			phases, optimistic, stripes, err := runGrowRamp(backend, shards, cfg)
			if err != nil {
				return fmt.Errorf("grow ramp %s/%d: %w", backend, shards, err)
			}
			for i, p := range phases {
				nsPerOp := float64(p.wall.Nanoseconds()) / float64(p.ops)
				t.AddRow(backend, fmt.Sprintf("%d", shards), phaseNames[i],
					fmt.Sprintf("%.1f", nsPerOp),
					fmt.Sprintf("%.2f", float64(p.ops)/p.wall.Seconds()/1e6),
					fmt.Sprintf("%d", p.migrateSteps),
					fmt.Sprintf("%d", p.oldArenaReads),
					fmt.Sprintf("%d", p.capacity),
					fmt.Sprintf("%d", p.resident),
					fmt.Sprintf("%.3f", p.hitRate),
					fmt.Sprintf("%.3f", p.allocsPerOp),
					p.wall.Round(time.Millisecond).String())
				jsonResults = append(jsonResults, engineJSONResult{
					Backend:       backend,
					Shards:        shards,
					Workers:       1,
					Batch:         cfg.batch,
					Mix:           phaseNames[i],
					Cpus:          runtime.GOMAXPROCS(0),
					Optimistic:    optimistic,
					Stripes:       stripes,
					TotalOps:      p.ops,
					WallNS:        p.wall.Nanoseconds(),
					NSPerOp:       nsPerOp,
					MopsPerSec:    float64(p.ops) / p.wall.Seconds() / 1e6,
					AllocsPerOp:   p.allocsPerOp,
					BytesPerOp:    p.bytesPerOp,
					Resident:      p.resident,
					HitRate:       p.hitRate,
					FailedInserts: p.failedInserts,
					MigrateSteps:  p.migrateSteps,
					OldArenaReads: p.oldArenaReads,
					Capacity:      p.capacity,
				})
			}
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		rep := engineJSONReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			OpsPerWkr:  cfg.ops,
			Results:    jsonResults,
		}
		if err := writeJSONReport(cfg.jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}
