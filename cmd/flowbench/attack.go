package main

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/flowproc"
	"repro/internal/hashfn"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// This file is the adversarial half of the engine bench: -scenario runs
// attack workloads (collision flood, SYN-flood churn, flash crowd, IPv6
// mix) through the same ingest shape a deployment uses — look up every
// packet, insert the misses, advance the lifecycle clock — and emits rows
// into the same JSON format as the throughput sweep, so -compare gates
// attack-path regressions against the committed BENCH_engine_attack.json
// exactly like the benign rows. The collision-flood scenario runs twice,
// once with FixedHash (the unkeyed CRC pair the miner defeats) and once
// keyed, so the baseline file itself records the degradation the keyed
// default prevents.

// attackSeed keys every keyed-row engine so the committed baseline is
// reproducible; deployments use the random default instead.
const attackSeed = 0x20140a

const (
	// attackFloodSize is the number of mined colliding flows the flood
	// cycles — far above the bucket+CAM capacity the collision pins them
	// to, so the unkeyed engine can never absorb the set.
	attackFloodSize = 512
	// attackMineBuckets is the power-of-two bucket count the miner
	// targets; by mask subsumption the mined set collides at every
	// per-shard bucket count up to this.
	attackMineBuckets = 1 << 14
	// attackFloodFrac is the fraction of collision-flood packets that are
	// attack traffic (the rest is the benign Zipf mix).
	attackFloodFrac = 0.3
)

// attackScenarioNames lists the sweep's scenarios in run order.
var attackScenarioNames = []string{"zipf-baseline", "collision-flood", "synflood", "flashcrowd", "ipv6mix"}

// parseScenarios resolves the -scenario list; "all" expands to every
// scenario.
func parseScenarios(s string) ([]string, error) {
	if strings.TrimSpace(s) == "all" {
		return attackScenarioNames, nil
	}
	known := map[string]bool{}
	for _, n := range attackScenarioNames {
		known[n] = true
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if !known[name] {
			return nil, fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(attackScenarioNames, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

// attackSweepConfig parameterises the adversarial sweep. Rows are
// single-threaded: these scenarios measure policy and hash-path cost
// under hostile input, not lock scaling (the throughput sweep covers
// that).
type attackSweepConfig struct {
	backends   []string
	shards     []int
	scenarios  []string
	ops        int // packets per scenario row
	capacity   int
	batch      int
	optimistic bool
	jsonPath   string
}

// attackRow is one scenario variant: an engine configuration plus a
// deterministic packet source driven through the shared ingest loop.
type attackRow struct {
	mix     string // row label, e.g. "atk:collision-flood:fixed"
	cfg     flowproc.EngineConfig
	preload []flowproc.FiveTuple
	// next fills dst with the packets starting at packet index p.
	next    func(p int64, dst []flowproc.FiveTuple)
	packets int64
	advance bool // drive Advance(packets) once per batch
}

// attackRowResult carries the measured row plus its scenario metrics.
type attackRowResult struct {
	engineJSONResult
	wall time.Duration
}

// runAttackRow drives one scenario variant through the ingest loop:
// every packet is looked up, misses are inserted (under the engine's
// configured overload policy), and the lifecycle clock advances once per
// batch. Reused caller-owned buffers keep the loop on the zero-alloc
// *Into paths so allocs/op measures the engine, not the harness.
func runAttackRow(row attackRow, batchSize int) (attackRowResult, error) {
	eng, err := flowproc.NewEngine(row.cfg)
	if err != nil {
		return attackRowResult{}, err
	}
	if len(row.preload) > 0 {
		if _, err := eng.InsertBatch(row.preload); err != nil {
			return attackRowResult{}, fmt.Errorf("preload: %w", err)
		}
	}
	batch := make([]flowproc.FiveTuple, batchSize)
	ids := make([]uint64, batchSize)
	hit := make([]bool, batchSize)
	miss := make([]flowproc.FiveTuple, batchSize)
	mids := make([]uint64, batchSize)
	merrs := make([]error, batchSize)
	var lookups, hits, failed int64
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for p := int64(0); p < row.packets; p += int64(batchSize) {
		n := batchSize
		if rem := row.packets - p; rem < int64(n) {
			n = int(rem)
		}
		b := batch[:n]
		row.next(p, b)
		eng.LookupBatchInto(b, ids[:n], hit[:n])
		m := 0
		for i, h := range hit[:n] {
			if h {
				hits++
				continue
			}
			miss[m] = b[i]
			m++
		}
		lookups += int64(n)
		if m > 0 {
			eng.InsertBatchInto(miss[:m], mids[:m], merrs[:m])
			for _, e := range merrs[:m] {
				if e == nil {
					continue
				}
				if !errors.Is(e, table.ErrTableFull) {
					return attackRowResult{}, e
				}
				failed++
			}
		}
		if row.advance {
			eng.Advance(p + int64(n))
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	rs := eng.ReadStats()
	os := eng.OverloadStats()
	res := attackRowResult{wall: wall}
	res.engineJSONResult = engineJSONResult{
		Backend:           row.cfg.Backend,
		Shards:            row.cfg.Shards,
		Workers:           1,
		Batch:             batchSize,
		Mix:               row.mix,
		Cpus:              runtime.GOMAXPROCS(0),
		Optimistic:        rs.Optimistic,
		Stripes:           eng.Stripes(),
		ReadRetries:       rs.Retries,
		StripeRetries:     rs.StripeRetries,
		GlobalRetries:     rs.GlobalRetries,
		ReadFallbacks:     rs.Fallbacks,
		TotalOps:          row.packets,
		WallNS:            wall.Nanoseconds(),
		NSPerOp:           float64(wall.Nanoseconds()) / float64(row.packets),
		MopsPerSec:        float64(row.packets) / wall.Seconds() / 1e6,
		AllocsPerOp:       float64(msAfter.Mallocs-msBefore.Mallocs) / float64(row.packets),
		BytesPerOp:        float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(row.packets),
		Resident:          eng.Len(),
		BytesPerSlot:      eng.BytesPerSlot(),
		HitRate:           float64(hits) / float64(max(lookups, 1)),
		FailedInserts:     failed,
		PressureEvictions: os.PressureEvictions,
	}
	return res, nil
}

// buildAttackRows materialises the rows of one scenario for one
// backend/shard configuration.
func buildAttackRows(scenario, backend string, shards int, cfg attackSweepConfig) ([]attackRow, error) {
	packets := int64(cfg.ops)
	base := flowproc.EngineConfig{
		Backend:                backend,
		Shards:                 shards,
		Capacity:               cfg.capacity,
		HashSeed:               attackSeed,
		DisableOptimisticReads: !cfg.optimistic,
	}
	// The benign side everywhere is the same shifted-Zipf mix over a
	// universe half the table, hot head preloaded — so the flood rows and
	// the baseline row differ only in the attack traffic.
	zipfCfg := trafficgen.ZipfConfig{
		Universe: uint64(max(cfg.capacity/2, 2)), Skew: 1.2, HeadOffset: 8, Seed: 2014,
	}
	preloadHead := func() []flowproc.FiveTuple {
		head := make([]flowproc.FiveTuple, cfg.capacity/4)
		for i := range head {
			head[i] = trafficgen.Flow(uint64(i))
		}
		return head
	}
	switch scenario {
	case "zipf-baseline":
		z, err := trafficgen.NewZipfTrace(zipfCfg)
		if err != nil {
			return nil, err
		}
		return []attackRow{{
			mix: "atk:zipf-baseline", cfg: base, preload: preloadHead(), packets: packets,
			next: func(_ int64, dst []flowproc.FiveTuple) {
				for i := range dst {
					dst[i] = trafficgen.Flow(z.SampleIndex())
				}
			},
		}}, nil
	case "collision-flood":
		// Mine against the unkeyed CRC pair — the offline attack a public
		// hash family permits — and feed the identical trace to a FixedHash
		// engine and a keyed one.
		flood, ok := trafficgen.MineCollidingFlows(hashfn.DefaultPair(), attackMineBuckets, attackFloodSize)
		if !ok {
			return nil, fmt.Errorf("collision miner failed against the CRC pair")
		}
		trace, err := buildFloodTrace(flood, zipfCfg, packets)
		if err != nil {
			return nil, err
		}
		next := func(p int64, dst []flowproc.FiveTuple) { copy(dst, trace[p:]) }
		fixed := base
		fixed.HashSeed, fixed.FixedHash = 0, true
		return []attackRow{
			{mix: "atk:collision-flood:fixed", cfg: fixed, preload: preloadHead(), next: next, packets: packets},
			{mix: "atk:collision-flood:keyed", cfg: base, preload: preloadHead(), next: next, packets: packets},
		}, nil
	case "synflood":
		// 4x-oversubscribed one-packet-flow churn: cap the table so the
		// distinct-flow count always oversubscribes it 4x regardless of
		// -ops.
		synCap := min(cfg.capacity, max(int(packets)/4, 1))
		reject, evict := base, base
		reject.Capacity, evict.Capacity = synCap, synCap
		evict.OnFull = flowproc.FullEvictIdlest
		// An effectively infinite idle timeout keeps every reclamation on
		// the pressure path, which is what this row measures.
		evict.Expiry = flowproc.ExpiryConfig{IdleTimeout: 1 << 40}
		next := func(p int64, dst []flowproc.FiveTuple) {
			for i := range dst {
				dst[i] = trafficgen.SYNFlood(uint64(p) + uint64(i))
			}
		}
		return []attackRow{
			{mix: "atk:synflood:reject", cfg: reject, next: next, packets: packets},
			{mix: "atk:synflood:evict", cfg: evict, next: next, packets: packets, advance: true},
		}, nil
	case "flashcrowd":
		fc := trafficgen.NewFlashCrowd(max(cfg.capacity/2, 1), max(int64(packets/4), 1), 2014)
		crowd := base
		crowd.OnFull = flowproc.FullEvictIdlest
		crowd.Expiry = flowproc.ExpiryConfig{IdleTimeout: max(int64(cfg.capacity), 1)}
		return []attackRow{{
			mix: "atk:flashcrowd", cfg: crowd, packets: packets, advance: true,
			next: func(_ int64, dst []flowproc.FiveTuple) {
				for i := range dst {
					dst[i] = fc.Next()
				}
			},
		}}, nil
	case "ipv6mix":
		universe := trafficgen.MixedFamilyFlows(max(cfg.capacity/2, 1), 0.4, 2014)
		rng := sim.NewRand(2014)
		dual := base
		dual.DualStack = true
		return []attackRow{{
			mix: "atk:ipv6mix", cfg: dual, packets: packets,
			next: func(_ int64, dst []flowproc.FiveTuple) {
				for i := range dst {
					dst[i] = universe[rng.Intn(len(universe))]
				}
			},
		}}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q", scenario)
}

// buildFloodTrace interleaves the benign Zipf mix with the mined flood
// (attackFloodFrac of packets, cycling the mined set uniformly) into one
// materialised trace, so the fixed and keyed rows replay byte-identical
// input.
func buildFloodTrace(flood []flowproc.FiveTuple, zipfCfg trafficgen.ZipfConfig, packets int64) ([]flowproc.FiveTuple, error) {
	z, err := trafficgen.NewZipfTrace(zipfCfg)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRand(2014)
	trace := make([]flowproc.FiveTuple, packets)
	for i := range trace {
		if rng.Float64() < attackFloodFrac {
			trace[i] = flood[rng.Intn(len(flood))]
		} else {
			trace[i] = trafficgen.Flow(z.SampleIndex())
		}
	}
	return trace, nil
}

// attackSweep runs the requested adversarial scenarios across backend ×
// shard configurations and writes the same JSON format as the throughput
// sweep for -compare gating.
func attackSweep(cfg attackSweepConfig) error {
	t := metrics.NewTable(
		fmt.Sprintf("Adversarial sweep — %d packets/row, batch %d (GOMAXPROCS=%d)",
			cfg.ops, cfg.batch, runtime.GOMAXPROCS(0)),
		"Backend", "Shards", "Scenario", "ns/pkt", "Mpkts/s", "Hit rate", "Failed inserts", "Pressure evictions", "allocs/op", "Resident", "Wall time")
	var jsonResults []engineJSONResult
	for _, backend := range cfg.backends {
		for _, shards := range cfg.shards {
			for _, scenario := range cfg.scenarios {
				rows, err := buildAttackRows(scenario, backend, shards, cfg)
				if err != nil {
					return fmt.Errorf("scenario %s: %w", scenario, err)
				}
				for _, row := range rows {
					res, err := runAttackRow(row, cfg.batch)
					if err != nil {
						return fmt.Errorf("scenario %s (%s/%d): %w", row.mix, backend, shards, err)
					}
					t.AddRow(backend, fmt.Sprintf("%d", shards), res.Mix,
						fmt.Sprintf("%.1f", res.NSPerOp),
						fmt.Sprintf("%.2f", res.MopsPerSec),
						fmt.Sprintf("%.3f", res.HitRate),
						fmt.Sprintf("%d", res.FailedInserts),
						fmt.Sprintf("%d", res.PressureEvictions),
						fmt.Sprintf("%.3f", res.AllocsPerOp),
						fmt.Sprintf("%d", res.Resident),
						res.wall.Round(time.Millisecond).String())
					jsonResults = append(jsonResults, res.engineJSONResult)
				}
			}
		}
	}
	fmt.Println(t)
	if cfg.jsonPath != "" {
		rep := engineJSONReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			OpsPerWkr:  cfg.ops,
			Results:    jsonResults,
		}
		if err := writeJSONReport(cfg.jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", cfg.jsonPath)
	}
	return nil
}
