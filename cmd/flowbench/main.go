// Command flowbench regenerates the paper's tables and figures at full
// scale and prints them side by side with the published values.
//
// Usage:
//
//	flowbench [-quick] [fig3|table1|table2a|table2b|fig6|discussion|ablations|all]
//
// The default experiment scale matches the paper (10 k descriptors, input
// injected at the 100 MHz ceiling); -quick runs a reduced scale for smoke
// checks.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowbench [-quick] [fig3|table1|table2a|table2b|fig6|discussion|ablations|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if err := run(which, scale); err != nil {
		fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
		os.Exit(1)
	}
}

func run(which string, scale experiments.Scale) error {
	all := which == "all"
	ran := false

	if all || which == "fig3" {
		ran = true
		points, err := experiments.Fig3(35)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig3Table(points))
	}
	if all || which == "table1" {
		ran = true
		fmt.Println("Table I substitute — see DESIGN.md §2 for why FPGA ALM counts are replaced by this model.")
		fmt.Println(experiments.Table1())
		fmt.Println()
	}
	if all || which == "table2a" {
		ran = true
		rows, err := experiments.Table2A(scale)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table2ATable(rows))
	}
	var t2b []experiments.Table2BRow
	if all || which == "table2b" || which == "discussion" {
		var err error
		t2b, err = experiments.Table2B(scale)
		if err != nil {
			return err
		}
	}
	if all || which == "table2b" {
		ran = true
		fmt.Println(experiments.Table2BTable(t2b))
	}
	if all || which == "fig6" {
		ran = true
		points, err := experiments.Fig6([]int64{1000, 10000, 100000, 594000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig6Table(points))
	}
	if all || which == "discussion" {
		ran = true
		fmt.Println(experiments.DiscussionTable(experiments.Discussion(t2b)))
	}
	if all || which == "ablations" {
		ran = true
		type ablation struct {
			title string
			fn    func(experiments.Scale) ([]experiments.AblationRow, error)
		}
		for _, a := range []ablation{
			{"Ablation — early-exit pipeline vs. simultaneous Hash-CAM (§III-A)", experiments.AblationEarlyExit},
			{"Ablation — DLU bank selector (§IV-A)", experiments.AblationBankSelector},
			{"Ablation — burst write generator threshold (§IV-B)", experiments.AblationBurstWrite},
			{"Ablation — K slots per bucket (Fig. 1)", experiments.AblationBucketSlots},
		} {
			rows, err := a.fn(scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.AblationTable(a.title, rows))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
