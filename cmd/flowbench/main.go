// Command flowbench regenerates the paper's tables and figures at full
// scale and prints them side by side with the published values, and
// benchmarks the concurrent sharded engine.
//
// Usage:
//
//	flowbench [-quick] [fig3|table1|table2a|table2b|fig6|discussion|ablations|all]
//	flowbench [-engine list] [-shards list] [-workers n] [-ops n] [-writers] [-optimistic=false] [-cpuprofile f] [-mutexprofile f] engine
//	flowbench [-engine list] [-shards list] [-ops n] [-capacity n] -scenario all|list engine
//	flowbench [-engine list] [-shards list] [-ops n] [-capacity n] -grow engine
//	flowbench -compare [-threshold pct] [-allocthreshold n] old.json new.json
//
// The default experiment scale matches the paper (10 k descriptors, input
// injected at the 100 MHz ceiling); -quick runs a reduced scale for smoke
// checks. The engine mode sweeps goroutine-safe sharded configurations:
// -engine selects backends (comma-separated, or "all"), -shards the shard
// counts, -workers the concurrent goroutines driving the load; -writers
// switches the workload from the read-mostly mix to a write-heavy
// insert/delete mix over the zero-allocation *Into writer pipeline.
// -optimistic=false forces lookups back onto the RLock path — the
// before/after pair behind the seqlock scaling claim — and -cpuprofile /
// -mutexprofile capture pprof profiles of the measured section.
//
// -scenario switches the engine mode to the adversarial sweep: attack
// workloads (mined collision flood against the unkeyed CRC pair vs the
// keyed default, SYN-flood one-packet churn under both overload policies,
// a flash-crowd ramp, a dual-stack IPv6 mix) driven through the
// lookup-then-insert-misses ingest loop, with hit rate, failed inserts
// and pressure evictions recorded per row. The rows land in the same JSON
// format, so -compare gates them against BENCH_engine_attack.json.
// -scenario admission instead sweeps the sketch-gated admission
// thresholds (0/2/4) against two Zipf skews over a mice-heavy trace,
// recording steady-state occupancy, multi-packet hit rate, gate counters
// and sketch FPR per row, gated against BENCH_engine_admission.json.
// -scenario writeheavy sweeps write fraction (10/50/90% of rounds) ×
// seqlock stripe count (1/64/512) with workers on disjoint key spans,
// recording the stripe/global retry split per row — the measurement
// behind the striped-seqlock claim — gated against
// BENCH_engine_stripes.json. The -stripes flag sets the stripe count for
// the default throughput mix (0 auto, 1 = single-word control).
//
// -grow switches the engine mode to the elastic-capacity ramp: populate
// to ~70% of capacity, measure steady-state lookups, double the
// population so the armed auto-grow resizes every shard in place while
// the mixed cost is measured, and measure again after migration
// converges. The before/during/after rows record migration steps,
// old-arena reads and the real capacity, and -compare gates them against
// BENCH_engine_grow.json.
//
// The compare mode diffs two engine bench JSON files (rows matched on
// backend × shards × workers × batch × mix × cpus × optimistic) and exits nonzero when any
// matched row's ns/op regresses by more than -threshold percent or its
// allocs/op grows by more than -allocthreshold — the regression gate CI
// runs against the committed bench JSONs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

// startProfiles turns on the profilers requested for the engine sweep and
// returns the function that flushes and closes them once the measured
// section is over. Either path may be empty; the returned stop is always
// safe to call exactly once.
func startProfiles(cpuPath, mutexPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if mutexPath != "" {
		// Sample every 5th contention event: cheap enough to leave on for a
		// whole sweep, dense enough to rank the shard locks.
		runtime.SetMutexProfileFraction(5)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			fmt.Printf("cpu profile written to %s\n", cpuPath)
		}
		if mutexPath != "" {
			runtime.SetMutexProfileFraction(0)
			f, err := os.Create(mutexPath)
			if err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("mutexprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
			fmt.Printf("mutex profile written to %s\n", mutexPath)
		}
		return nil
	}, nil
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	engine := flag.String("engine", "hashcam", "engine mode: comma-separated backends, or \"all\"")
	shards := flag.String("shards", "1,2,4,8", "engine mode: comma-separated shard counts")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine mode: concurrent worker goroutines")
	ops := flag.Int("ops", 2_000_000, "engine mode: operations per worker")
	capacity := flag.Int("capacity", 1<<20, "engine mode: total flow capacity")
	batch := flag.Int("batch", 64, "engine mode: keys per batched call")
	writers := flag.Bool("writers", false, "engine mode: write-heavy mix (InsertBatchInto/DeleteBatchInto writer pipeline) instead of the read-mostly default")
	optimistic := flag.Bool("optimistic", true, "engine mode: serve lookups through the seqlock lock-free read path where the backend supports it; false forces the RLock path (the before/after pair for the scaling claim)")
	stripes := flag.Int("stripes", 0, "engine mode: seqlock stripes per shard (0 = auto from slot capacity, 1 = single-word control, else a power of two clamped to the backend bound)")
	cpuProfile := flag.String("cpuprofile", "", "engine mode: write a CPU profile of the sweep to this file")
	mutexProfile := flag.String("mutexprofile", "", "engine mode: write a mutex-contention profile of the sweep to this file")
	expiry := flag.Bool("expiry", false, "engine mode: lifecycle churn scenario (Zipf arrivals over a flow population larger than the table; idle-timeout sweep reclaims)")
	grow := flag.Bool("grow", false, "engine mode: elastic-capacity ramp (population doubles mid-run; auto-grow resizes shards in place; rows for before/during/after migration)")
	scenario := flag.String("scenario", "", "engine mode: adversarial scenario sweep (comma-separated names or \"all\": zipf-baseline, collision-flood, synflood, flashcrowd, ipv6mix) instead of the throughput mix; \"admission\" runs the admission-gate threshold x skew sweep; \"writeheavy\" runs the write-fraction x seqlock-stripes contention sweep")
	flows := flag.Int("flows", 0, "expiry mode: offered flow population per generation (default 4x capacity)")
	idle := flag.Int64("idle", 0, "expiry mode: idle timeout in packets (default capacity/2)")
	active := flag.Int64("active", 0, "expiry mode: active timeout in packets (0 = disabled)")
	sweepBudget := flag.Int("sweep", 0, "expiry mode: sweep budget in slots per shard per Advance (default 2048)")
	lifetime := flag.Int64("lifetime", 0, "expiry mode: flow lifetime (generation length) in packets (default 8x idle)")
	skew := flag.Float64("skew", 1.2, "expiry mode: Zipf skew of the arrival distribution (> 1)")
	jsonOut := flag.String("json", "", "engine mode: also write machine-readable results to this file (e.g. BENCH_engine.json)")
	compare := flag.Bool("compare", false, "compare mode: diff two engine bench JSON files (old new); nonzero exit on regression")
	threshold := flag.Float64("threshold", 25, "compare mode: ns/op regression percentage that fails the diff")
	allocThreshold := flag.Float64("allocthreshold", 0.5, "compare mode: absolute allocs/op increase that fails the diff")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowbench [-quick] [fig3|table1|table2a|table2b|fig6|discussion|ablations|engine|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "flowbench: -compare requires exactly two JSON paths (old new), got %v\n", flag.Args())
			os.Exit(1)
		}
		err := compareBenchJSON(compareConfig{
			oldPath:         flag.Arg(0),
			newPath:         flag.Arg(1),
			nsThresholdPct:  *threshold,
			allocsThreshold: *allocThreshold,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		// flag stops parsing at the first positional argument, so
		// anything after it (e.g. "engine -shards 16") would be silently
		// dropped; surface the mistake instead.
		fmt.Fprintf(os.Stderr, "flowbench: unexpected arguments after %q: %v (flags go before the command)\n",
			which, flag.Args()[1:])
		os.Exit(1)
	}
	if which == "engine" {
		shardList, err := parseShards(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
			os.Exit(1)
		}
		backendList, err := parseBackends(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
			os.Exit(1)
		}
		if *workers < 1 || *ops < 1 || *batch < 1 || *capacity < 1 {
			fmt.Fprintf(os.Stderr, "flowbench: -workers, -ops, -batch and -capacity must be >= 1\n")
			os.Exit(1)
		}
		opsPerWorker := *ops
		if *quick {
			opsPerWorker = min(opsPerWorker, 100_000)
		}
		stopProfiles, err := startProfiles(*cpuProfile, *mutexProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
			os.Exit(1)
		}
		modes := 0
		for _, on := range []bool{*scenario != "", *expiry, *grow} {
			if on {
				modes++
			}
		}
		if modes > 1 || (modes == 1 && *writers && (*scenario != "" || *grow)) {
			fmt.Fprintf(os.Stderr, "flowbench: -scenario, -expiry and -grow are separate workloads; pick one (and -writers only applies to the default mix)\n")
			os.Exit(1)
		}
		if *scenario == "writeheavy" {
			// The write-fraction x stripes sweep is its own workload: it
			// measures how striping isolates concurrent readers from
			// writers, not how a policy absorbs an attack trace, so it
			// dispatches before the scenario-list parser.
			err = writeheavySweep(writeheavySweepConfig{
				backends:   backendList,
				shards:     shardList,
				workers:    *workers,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				optimistic: *optimistic,
				jsonPath:   *jsonOut,
			})
		} else if *scenario == "admission" {
			// The admission sweep is its own workload, not one of the
			// adversarial scenarios: it sweeps gate thresholds x skews
			// rather than attack traces, so it dispatches before the
			// scenario-list parser.
			err = admissionSweep(admissionSweepConfig{
				backends:   backendList,
				shards:     shardList,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				optimistic: *optimistic,
				jsonPath:   *jsonOut,
			})
		} else if *scenario != "" {
			scenarioList, serr := parseScenarios(*scenario)
			if serr != nil {
				fmt.Fprintf(os.Stderr, "flowbench: %v\n", serr)
				os.Exit(1)
			}
			err = attackSweep(attackSweepConfig{
				backends:   backendList,
				shards:     shardList,
				scenarios:  scenarioList,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				optimistic: *optimistic,
				jsonPath:   *jsonOut,
			})
		} else if *grow {
			err = growSweep(growSweepConfig{
				backends:   backendList,
				shards:     shardList,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				optimistic: *optimistic,
				jsonPath:   *jsonOut,
			})
		} else if *expiry {
			err = expirySweep(expirySweepConfig{
				backends:   backendList,
				shards:     shardList,
				workers:    *workers,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				optimistic: *optimistic,
				flows:      *flows,
				idle:       *idle,
				active:     *active,
				sweep:      *sweepBudget,
				lifetime:   *lifetime,
				skew:       *skew,
				jsonPath:   *jsonOut,
			})
		} else {
			err = engineSweep(engineSweepConfig{
				backends:   backendList,
				shards:     shardList,
				workers:    *workers,
				ops:        opsPerWorker,
				capacity:   *capacity,
				batch:      *batch,
				writers:    *writers,
				optimistic: *optimistic,
				stripes:    *stripes,
				jsonPath:   *jsonOut,
			})
		}
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(which, scale); err != nil {
		fmt.Fprintf(os.Stderr, "flowbench: %v\n", err)
		os.Exit(1)
	}
}

func run(which string, scale experiments.Scale) error {
	all := which == "all"
	ran := false

	if all || which == "fig3" {
		ran = true
		points, err := experiments.Fig3(35)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig3Table(points))
	}
	if all || which == "table1" {
		ran = true
		fmt.Println("Table I substitute — see DESIGN.md §2 for why FPGA ALM counts are replaced by this model.")
		fmt.Println(experiments.Table1())
		fmt.Println()
	}
	if all || which == "table2a" {
		ran = true
		rows, err := experiments.Table2A(scale)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table2ATable(rows))
	}
	var t2b []experiments.Table2BRow
	if all || which == "table2b" || which == "discussion" {
		var err error
		t2b, err = experiments.Table2B(scale)
		if err != nil {
			return err
		}
	}
	if all || which == "table2b" {
		ran = true
		fmt.Println(experiments.Table2BTable(t2b))
	}
	if all || which == "fig6" {
		ran = true
		points, err := experiments.Fig6([]int64{1000, 10000, 100000, 594000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig6Table(points))
	}
	if all || which == "discussion" {
		ran = true
		fmt.Println(experiments.DiscussionTable(experiments.Discussion(t2b)))
	}
	if all || which == "ablations" {
		ran = true
		type ablation struct {
			title string
			fn    func(experiments.Scale) ([]experiments.AblationRow, error)
		}
		for _, a := range []ablation{
			{"Ablation — early-exit pipeline vs. simultaneous Hash-CAM (§III-A)", experiments.AblationEarlyExit},
			{"Ablation — DLU bank selector (§IV-A)", experiments.AblationBankSelector},
			{"Ablation — burst write generator threshold (§IV-B)", experiments.AblationBurstWrite},
			{"Ablation — K slots per bucket (Fig. 1)", experiments.AblationBucketSlots},
		} {
			rows, err := a.fn(scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.AblationTable(a.title, rows))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
