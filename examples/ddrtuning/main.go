// DDR burst tuning — Fig. 3 territory: measure DQ bus utilisation as
// read/write bursts are grouped more aggressively, on the same
// DDR3-1066E timing the paper computes from the Micron datasheet. This is
// the memory-level argument for the burst write generator (§IV-B): every
// bus turnaround costs tens of idle cycles, so updates must be written in
// groups.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	points, err := experiments.Fig3(35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DQ bus utilisation vs. burst group size (DDR3-1066E, BL8, open row)")
	fmt.Println()
	for _, p := range points {
		if p.Bursts > 10 && p.Bursts%5 != 0 {
			continue
		}
		bar := strings.Repeat("#", int(p.Utilisation*60))
		note := ""
		switch p.Bursts {
		case 1:
			note = "  <- paper: 20%"
		case 35:
			note = "  <- paper: ~90%"
		}
		fmt.Printf("%3d bursts  %5.1f%%  %s%s\n", p.Bursts, 100*p.Utilisation, bar, note)
	}
	fmt.Println()
	fmt.Println("every RD<->WR transition idles the bus for the turnaround gap;")
	fmt.Println("grouping N accesses amortises that gap over N bursts.")
}
