// Load-balance exploration — Table II(A) territory: drive the timed
// dual-path Flow LUT with all-miss traffic while sweeping how much of the
// first-lookup load the sequencer sends to path A, and watch the
// processing rate respond. This is the experiment behind the paper's
// claim that "load balancing presents good results on the circuit
// processing rate" (§V-A).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("sweeping first-lookup load split (10k all-miss descriptors per point)")
	fmt.Println()
	fmt.Println("load-path-A   measured-load   rate (Mdesc/s)")

	for _, loadA := range []float64{0.5, 0.4, 0.25, 0.1, 0.0} {
		cfg := core.DefaultConfig()
		cfg.Balancer = core.BalancerFixed
		cfg.FixedLoadA = loadA

		f, sched, err := core.NewRig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		items := make([]core.WorkItem, 10000)
		for i := range items {
			key := make([]byte, cfg.KeyLen)
			binary.LittleEndian.PutUint64(key, uint64(i))
			items[i] = core.WorkItem{Kind: core.KindLookup, Key: key}
		}
		rep, err := core.RunWorkload(f, sched, items, 8, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %4.0f%%          %5.1f%%          %6.2f\n",
			100*loadA, 100*rep.Stats.LoadFractionA(), rep.MDescPerSec)
	}
	fmt.Println()
	fmt.Println("paper (Table II(A)): 50% -> 44.59, 25% -> 41.09, 0% -> 36.53 Mdesc/s")
	fmt.Println("the absolute rates differ (simulated substrate), the ordering holds")
}
