// Quickstart: build a flow table, insert flows, look them up, delete one.
// This is the five-minute tour of the public API's untimed table — the
// Hash-CAM structure of the paper's Fig. 1.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"repro/flowproc"
)

func main() {
	tbl, err := flowproc.NewTable(flowproc.TableConfig{Capacity: 100000})
	if err != nil {
		log.Fatal(err)
	}

	web := flowproc.FiveTuple{
		Src:     netip.MustParseAddr("10.0.0.1"),
		Dst:     netip.MustParseAddr("192.168.1.9"),
		SrcPort: 51724,
		DstPort: 443,
		Proto:   6, // TCP
	}
	dns := flowproc.FiveTuple{
		Src:     netip.MustParseAddr("10.0.0.1"),
		Dst:     netip.MustParseAddr("8.8.8.8"),
		SrcPort: 40000,
		DstPort: 53,
		Proto:   17, // UDP
	}

	webID, err := tbl.Insert(web)
	if err != nil {
		log.Fatal(err)
	}
	dnsID, err := tbl.Insert(dns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %v -> flow ID %d\n", web, webID)
	fmt.Printf("inserted %v -> flow ID %d\n", dns, dnsID)

	// Subsequent packets of a flow resolve to the same ID.
	if id, ok := tbl.Lookup(web); ok {
		fmt.Printf("lookup   %v -> flow ID %d (stable: %v)\n", web, id, id == webID)
	}

	// Deletion retires the flow (housekeeping does this on timeout).
	tbl.Delete(dns)
	if _, ok := tbl.Lookup(dns); !ok {
		fmt.Printf("deleted  %v (table now holds %d flows, CAM overflow %d)\n",
			dns, tbl.Len(), tbl.CAMInUse())
	}
}
