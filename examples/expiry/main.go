// Flow lifecycle demo: a table deliberately smaller than the offered flow
// population reaches steady state instead of saturating. A Zipf arrival
// stream (hot flows stay resident, cold flows idle out) drives an engine
// with NetFlow-style idle/active timeouts; the incremental eviction sweep
// reclaims expired slots under the shard write locks — the software form
// of the paper's housekeeping function, which "periodically checks and
// removes timeout flow entries" (§IV-B) — and every retired flow is
// delivered to an export callback as a 5-tuple with its lifetime.
//
// Without the lifecycle layer this exact workload overflows the table and
// inserts start failing; with it, occupancy plateaus and inserts keep
// succeeding indefinitely.
package main

import (
	"fmt"
	"log"

	"repro/flowproc"
	"repro/internal/trafficgen"
)

func main() {
	const (
		capacity   = 1 << 14             // 16k-slot table...
		population = 4 * capacity        // ...offered 64k distinct flows
		idle       = int64(capacity) / 2 // idle timeout, in packets
		packets    = 1_200_000
		batchSize  = 256
	)
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:  "hashcam",
		Shards:   2,
		Capacity: capacity,
		Expiry: flowproc.ExpiryConfig{
			IdleTimeout:   idle,
			ActiveTimeout: 64 * idle, // force progress exports for eternal heavy hitters
			SweepBudget:   1024,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The export hook is where a NetFlow collector would sit; the demo
	// just counts per reason and keeps a few samples.
	exported := map[flowproc.ExpireReason]int{}
	samples := make([]flowproc.ExpiredFlow, 0, 3)
	var sampleIdx int
	eng.Expired(func(f flowproc.ExpiredFlow) {
		exported[f.Reason]++
		// Rotating sample buffer: the run ends with recent exports, whose
		// lifetimes show the idle window doing its job.
		if len(samples) < cap(samples) {
			samples = append(samples, f)
		} else {
			samples[sampleIdx%len(samples)] = f
			sampleIdx++
		}
	})

	trace, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe: population, Skew: 1.2, HeadOffset: 16, Seed: 2014,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered population %d flows, table capacity %d (%.0fx oversubscribed), idle timeout %d pkts\n\n",
		population, capacity, float64(population)/capacity, idle)
	fmt.Printf("%10s  %9s  %6s  %9s  %9s  %7s\n",
		"packets", "resident", "load", "new flows", "evicted", "failed")

	batch := make([]flowproc.FiveTuple, batchSize)
	ids := make([]uint64, batchSize)
	hits := make([]bool, batchSize)
	errs := make([]error, batchSize)
	var pkts, newFlows, failed int64
	nextPrint := int64(packets / 8)
	for pkts < packets {
		for i := range batch {
			batch[i] = trafficgen.Flow(trace.SampleIndex())
		}
		// The packet path: look the batch up (hits refresh last-seen),
		// insert the misses (new flows), all through the zero-allocation
		// *Into pipeline.
		eng.LookupBatchInto(batch, ids, hits)
		miss := 0
		for i := range batch {
			if !hits[i] {
				batch[miss] = batch[i] // compact misses in place
				miss++
			}
		}
		eng.InsertBatchInto(batch[:miss], ids[:miss], errs[:miss])
		for _, err := range errs[:miss] {
			if err != nil {
				failed++
			} else {
				newFlows++
			}
		}
		pkts += batchSize
		// The logical clock is the packet count; one bounded sweep step
		// per batch keeps reclaim ahead of arrivals.
		eng.Advance(pkts)
		if pkts >= nextPrint {
			st := eng.ExpiryStats()
			fmt.Printf("%10d  %9d  %5.0f%%  %9d  %9d  %7d\n",
				pkts, eng.Len(), 100*float64(eng.Len())/capacity, newFlows, st.Evicted, failed)
			nextPrint += packets / 8
		}
	}

	st := eng.ExpiryStats()
	fmt.Printf("\nsteady state: %d resident flows (%.0f%% load) after cycling %d distinct flows through %d slots\n",
		eng.Len(), 100*float64(eng.Len())/capacity, newFlows, capacity)
	fmt.Printf("evictions: %d idle, %d active (forced progress), %d sweep steps, %d failed inserts\n",
		st.IdleEvicted, st.ActiveEvicted, st.Sweeps, failed)
	fmt.Printf("export callback delivered %d idle + %d active flows\n",
		exported[flowproc.ExpireIdle], exported[flowproc.ExpireActive])
	for _, f := range samples {
		fmt.Printf("  exported %v  %s  lifetime %d pkts (seen [%d, %d])\n",
			f.Tuple, f.Reason, f.LastSeen-f.FirstSeen, f.FirstSeen, f.LastSeen)
	}
}
