// Sharded engine demo: N goroutines hammer one flowproc.Engine — the
// goroutine-safe generalisation of the paper's dual-path design, where two
// DDR3 channels shard the flow table in hardware and a load balancer keeps
// both evenly occupied. Here the shard selector hash plays the balancer's
// role; the demo prints the resulting per-shard split alongside measured
// throughput, and shows the batch APIs that amortise locking the way the
// paper's burst write generator amortises DRAM row activations.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"repro/flowproc"
	"repro/internal/trafficgen"
)

func main() {
	const perWorker = 50_000
	workers := runtime.GOMAXPROCS(0)
	// Capacity scales with the worker count (each inserts perWorker
	// distinct flows) so the demo cannot overflow on many-core machines;
	// the 2x headroom keeps the Hash-CAM's load factor comfortable.
	capacity := 2 * workers * perWorker
	if capacity < 1<<18 {
		capacity = 1 << 18
	}
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:  "hashcam",
		Shards:   4,
		Capacity: capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: backend=%s shards=%d, driven by %d goroutines\n",
		eng.Backend(), eng.Shards(), workers)
	fmt.Printf("registered backends: %v\n\n", flowproc.Backends())

	var wg sync.WaitGroup
	var inserted, hits int64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint flow range; the shard selector
			// still interleaves every range across all shards.
			base := uint64(w) * perWorker
			buf := make([]flowproc.FiveTuple, 128)
			myInserted, myHits := 0, 0
			for done := 0; done < perWorker; done += len(buf) {
				// Trim the final round so the range stays disjoint from
				// the next worker's.
				batch := buf[:min(len(buf), perWorker-done)]
				for i := range batch {
					batch[i] = trafficgen.Flow(base + uint64(done+i))
				}
				if _, err := eng.InsertBatch(batch); err != nil {
					log.Fatal(err)
				}
				myInserted += len(batch)
				_, ok := eng.LookupBatch(batch)
				for _, hit := range ok {
					if hit {
						myHits++
					}
				}
			}
			mu.Lock()
			inserted += int64(myInserted)
			hits += int64(myHits)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("inserted %d flows, %d lookup hits in %s (%.2f Mops/s)\n",
		inserted, hits, wall.Round(time.Millisecond),
		float64(inserted+hits)/wall.Seconds()/1e6)
	fmt.Printf("resident flows: %d\n", eng.Len())
	fmt.Println("per-shard split (selector-balanced, cf. the paper's ~50/50 dual-path load):")
	total := eng.Len()
	for i, n := range eng.ShardLens() {
		fmt.Printf("  shard %d: %7d flows (%.1f%%)\n", i, n, 100*float64(n)/float64(total))
	}
}
