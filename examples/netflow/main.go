// NetFlow-style monitoring — the paper's motivating application (§I):
// replay a synthetic heavy-tailed traffic mix through the flow table and
// the flow-state engine, retire idle flows by housekeeping, and print the
// export summary. The new-flow ratio falling as the table warms is the
// Fig. 6 phenomenon that makes the lookup scheme fast in steady state.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/flowproc"
	"repro/internal/netflow"
	"repro/internal/trafficgen"
)

func main() {
	cfg := netflow.DefaultConfig()
	cfg.IdleTimeout = 50 * time.Millisecond // compressed timescale for the demo
	engine, err := netflow.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := flowproc.NewTable(flowproc.TableConfig{Capacity: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}

	z, err := trafficgen.NewZipfTrace(trafficgen.DefaultZipfConfig())
	if err != nil {
		log.Fatal(err)
	}

	const (
		total      = 200000
		packetGap  = 17_000 // ns between packets (~59 Mpps compressed x1000)
		housekeep  = 25000  // packets between housekeeping passes
		checkpoint = 50000
	)
	var now uint64
	for i := 0; i < total; i++ {
		now += packetGap
		ft := z.Next()
		if _, err := tbl.Insert(ft); err != nil {
			log.Fatalf("flow table full at packet %d: %v", i, err)
		}
		engine.Observe(flowproc.Packet{Tuple: ft, WireLen: 64}, now)
		if i%housekeep == housekeep-1 {
			engine.Housekeep(now)
		}
		if i%checkpoint == checkpoint-1 {
			st := engine.Stats()
			fmt.Printf("after %6d packets: %6d active flows, %6d exported, new-flow ratio %.1f%%\n",
				i+1, st.ActiveFlows, st.FlowsExported, 100*z.NewFlowRatio())
		}
	}
	engine.Flush(now)

	exports := engine.DrainExports()
	var byReason [8]int
	var pkts uint64
	for _, rec := range exports {
		byReason[rec.Reason]++
		pkts += rec.Packets
	}
	fmt.Printf("\nexported %d flow records covering %d packets\n", len(exports), pkts)
	for r := netflow.ReasonIdleTimeout; r <= netflow.ReasonShutdown; r++ {
		if byReason[r] > 0 {
			fmt.Printf("  %-14s %d\n", r, byReason[r])
		}
	}
	fmt.Printf("lookup table holds %d flows (CAM overflow: %d)\n", tbl.Len(), tbl.CAMInUse())
}
