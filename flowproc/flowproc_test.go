package flowproc

import (
	"testing"

	"repro/internal/trafficgen"
)

func TestTableBasics(t *testing.T) {
	tbl, err := NewTable(TableConfig{Capacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ft := trafficgen.Flow(1)
	if _, ok := tbl.Lookup(ft); ok {
		t.Fatal("hit on empty table")
	}
	fid, err := tbl.Insert(ft)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Lookup(ft)
	if !ok || got != fid {
		t.Fatalf("Lookup = (%d,%v)", got, ok)
	}
	if !tbl.Delete(ft) || tbl.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestTableCapacitySizing(t *testing.T) {
	tbl, err := NewTable(TableConfig{Capacity: 10000})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10000; i++ {
		if _, err := tbl.Insert(trafficgen.Flow(i)); err != nil {
			t.Fatalf("insert %d of 10000: %v", i, err)
		}
	}
	if tbl.Len() != 10000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(TableConfig{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestProcessorBatch(t *testing.T) {
	p, err := NewProcessor(ProcessorConfig{Buckets: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]FiveTuple, 600)
	for i := range tuples {
		tuples[i] = trafficgen.Flow(uint64(i % 200)) // 3 packets per flow
	}
	rep, err := p.Process(tuples, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 600 {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.NewFlows != 200 {
		t.Fatalf("NewFlows = %d, want 200", rep.NewFlows)
	}
	if rep.Hits != 400 {
		t.Fatalf("Hits = %d, want 400", rep.Hits)
	}
	if rep.MDescPerSec <= 0 {
		t.Fatal("no rate computed")
	}
	// A second batch reuses the warm table: everything hits.
	rep2, err := p.Process(tuples[:200], 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NewFlows != rep.NewFlows {
		t.Fatalf("second batch created flows: %d", rep2.NewFlows-rep.NewFlows)
	}
}

func TestFlowEngineExport(t *testing.T) {
	e, err := NewFlowEngine()
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(Packet{Tuple: trafficgen.Flow(5), WireLen: 64}, 1)
	if e.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d", e.ActiveFlows())
	}
}
