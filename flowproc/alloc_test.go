package flowproc_test

import (
	"testing"

	"repro/flowproc"
)

// residentEngine builds an engine preloaded with n flows.
func residentEngine(t testing.TB, shards, n int) (*flowproc.Engine, []flowproc.FiveTuple) {
	t.Helper()
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Backend: "hashcam", Shards: shards, Capacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	fts := make([]flowproc.FiveTuple, n)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatal(err)
	}
	return e, fts
}

func TestEngineLookupBatchIntoMatchesLookupBatch(t *testing.T) {
	e, fts := residentEngine(t, 4, 1000)
	// Mix hits with misses and a non-storable tuple to exercise the
	// position-scatter path.
	batch := append([]flowproc.FiveTuple{}, fts[:100]...)
	batch = append(batch, tuple(1<<22), flowproc.FiveTuple{}, tuple(500))
	wantIDs, wantHits := e.LookupBatch(batch)
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	for i := range ids { // poison
		ids[i] = ^uint64(0)
		hits[i] = true
	}
	e.LookupBatchInto(batch, ids, hits)
	for i := range batch {
		if ids[i] != wantIDs[i] || hits[i] != wantHits[i] {
			t.Fatalf("flow %d: Into (%d,%v), LookupBatch said (%d,%v)", i, ids[i], hits[i], wantIDs[i], wantHits[i])
		}
	}
	if hits[100] || hits[101] {
		t.Fatal("miss/non-storable tuples reported present")
	}
	// Delete variant mirrors the hits.
	ok := make([]bool, len(batch))
	e.DeleteBatchInto(batch, ok)
	for i := range batch {
		if ok[i] != wantHits[i] {
			t.Fatalf("flow %d: DeleteBatchInto %v, want %v", i, ok[i], wantHits[i])
		}
	}
}

func TestEngineBatchIntoPanicsOnLengthMismatch(t *testing.T) {
	e, fts := residentEngine(t, 2, 16)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with short buffers did not panic", name)
			}
		}()
		f()
	}
	expectPanic("LookupBatchInto", func() {
		e.LookupBatchInto(fts, make([]uint64, 3), make([]bool, len(fts)))
	})
	expectPanic("DeleteBatchInto", func() {
		e.DeleteBatchInto(fts, make([]bool, 3))
	})
}

// TestEngineLookupBatchIntoZeroAllocs enforces the PR's headline bound:
// the steady-state batched lookup path — key serialisation, the single
// hash pass per key, shard routing, bucket probing, result scatter —
// performs zero heap allocations, for any batch size (0 B/key, not
// amortised-small). The pooled scratch is warmed by the first call.
func TestEngineLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<12)
	batch := fts[:256]
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	e.LookupBatchInto(batch, ids, hits) // warm the pools
	if n := testing.AllocsPerRun(200, func() { e.LookupBatchInto(batch, ids, hits) }); n != 0 {
		t.Fatalf("LookupBatchInto allocates %.2f per 256-key batch, want 0", n)
	}
	for i, h := range hits {
		if !h {
			t.Fatalf("resident flow %d reported missing", i)
		}
	}
}

// TestEngineLookupBatchAllocBound pins the convenience form's only
// allocations to the two returned result slices, independent of batch
// size.
func TestEngineLookupBatchAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<12)
	batch := fts[:256]
	e.LookupBatch(batch) // warm the pools
	if n := testing.AllocsPerRun(200, func() { e.LookupBatch(batch) }); n > 2 {
		t.Fatalf("LookupBatch allocates %.2f per batch, want <= 2 (the returned slices)", n)
	}
}

// TestEngineScalarLookupZeroAllocs pins the scalar read path: pooled key
// scratch plus the hashed table path means a Lookup costs no heap
// allocations at all.
func TestEngineScalarLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<10)
	hit := fts[17]
	miss := tuple(1 << 30)
	e.Lookup(hit) // warm the pool
	if n := testing.AllocsPerRun(200, func() {
		e.Lookup(hit)
		e.Lookup(miss)
	}); n != 0 {
		t.Fatalf("scalar Lookup allocates %.2f per hit+miss pair, want 0", n)
	}
}

// TestEngineDeleteBatchIntoZeroAllocs extends the bound to the delete
// path (absent keys after the first run; the search cost is identical).
func TestEngineDeleteBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<10)
	batch := fts[:128]
	ok := make([]bool, len(batch))
	e.DeleteBatchInto(batch, ok) // warm pools; subsequent runs delete nothing
	if n := testing.AllocsPerRun(200, func() { e.DeleteBatchInto(batch, ok) }); n != 0 {
		t.Fatalf("DeleteBatchInto allocates %.2f per 128-key batch, want 0", n)
	}
}
