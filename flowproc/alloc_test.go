package flowproc_test

import (
	"errors"
	"testing"

	"repro/flowproc"
)

// residentEngine builds an engine preloaded with n flows.
func residentEngine(t testing.TB, shards, n int) (*flowproc.Engine, []flowproc.FiveTuple) {
	t.Helper()
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Backend: "hashcam", Shards: shards, Capacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	fts := make([]flowproc.FiveTuple, n)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatal(err)
	}
	return e, fts
}

func TestEngineLookupBatchIntoMatchesLookupBatch(t *testing.T) {
	e, fts := residentEngine(t, 4, 1000)
	// Mix hits with misses and a non-storable tuple to exercise the
	// position-scatter path.
	batch := append([]flowproc.FiveTuple{}, fts[:100]...)
	batch = append(batch, tuple(1<<22), flowproc.FiveTuple{}, tuple(500))
	wantIDs, wantHits := e.LookupBatch(batch)
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	for i := range ids { // poison
		ids[i] = ^uint64(0)
		hits[i] = true
	}
	e.LookupBatchInto(batch, ids, hits)
	for i := range batch {
		if ids[i] != wantIDs[i] || hits[i] != wantHits[i] {
			t.Fatalf("flow %d: Into (%d,%v), LookupBatch said (%d,%v)", i, ids[i], hits[i], wantIDs[i], wantHits[i])
		}
	}
	if hits[100] || hits[101] {
		t.Fatal("miss/non-storable tuples reported present")
	}
	// Delete variant mirrors the hits.
	ok := make([]bool, len(batch))
	e.DeleteBatchInto(batch, ok)
	for i := range batch {
		if ok[i] != wantHits[i] {
			t.Fatalf("flow %d: DeleteBatchInto %v, want %v", i, ok[i], wantHits[i])
		}
	}
}

func TestEngineBatchIntoPanicsOnLengthMismatch(t *testing.T) {
	e, fts := residentEngine(t, 2, 16)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with short buffers did not panic", name)
			}
		}()
		f()
	}
	expectPanic("LookupBatchInto", func() {
		e.LookupBatchInto(fts, make([]uint64, 3), make([]bool, len(fts)))
	})
	expectPanic("DeleteBatchInto", func() {
		e.DeleteBatchInto(fts, make([]bool, 3))
	})
}

// TestEngineLookupBatchIntoZeroAllocs enforces the PR's headline bound:
// the steady-state batched lookup path — key serialisation, the single
// hash pass per key, shard routing, bucket probing, result scatter —
// performs zero heap allocations, for any batch size (0 B/key, not
// amortised-small). The pooled scratch is warmed by the first call.
func TestEngineLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<12)
	batch := fts[:256]
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	e.LookupBatchInto(batch, ids, hits) // warm the pools
	if n := testing.AllocsPerRun(200, func() { e.LookupBatchInto(batch, ids, hits) }); n != 0 {
		t.Fatalf("LookupBatchInto allocates %.2f per 256-key batch, want 0", n)
	}
	for i, h := range hits {
		if !h {
			t.Fatalf("resident flow %d reported missing", i)
		}
	}
}

// TestEngineLookupBatchAllocBound pins the convenience form's only
// allocations to the two returned result slices, independent of batch
// size.
func TestEngineLookupBatchAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<12)
	batch := fts[:256]
	e.LookupBatch(batch) // warm the pools
	if n := testing.AllocsPerRun(200, func() { e.LookupBatch(batch) }); n > 2 {
		t.Fatalf("LookupBatch allocates %.2f per batch, want <= 2 (the returned slices)", n)
	}
}

// TestEngineScalarLookupZeroAllocs pins the scalar read path: pooled key
// scratch plus the hashed table path means a Lookup costs no heap
// allocations at all.
func TestEngineScalarLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<10)
	hit := fts[17]
	miss := tuple(1 << 30)
	e.Lookup(hit) // warm the pool
	if n := testing.AllocsPerRun(200, func() {
		e.Lookup(hit)
		e.Lookup(miss)
	}); n != 0 {
		t.Fatalf("scalar Lookup allocates %.2f per hit+miss pair, want 0", n)
	}
}

// TestEngineInsertBatchIntoZeroAllocs enforces the writer half of the
// zero-alloc story: InsertBatchInto over reused caller-owned ids/errs
// buffers — key serialisation, the single hash pass, shard routing,
// bucket placement — performs zero heap allocations per call. Covered in
// both steady states: duplicate reinserts of resident flows (every round)
// and a fresh insert+delete churn cycle (placement and removal).
func TestEngineInsertBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<12)
	batch := fts[:256]
	wantIDs, wantHits := e.LookupBatch(batch)
	for i, h := range wantHits {
		if !h {
			t.Fatalf("resident flow %d missing before the run", i)
		}
	}
	ids := make([]uint64, len(batch))
	errs := make([]error, len(batch))
	e.InsertBatchInto(batch, ids, errs) // warm the pools
	if n := testing.AllocsPerRun(200, func() { e.InsertBatchInto(batch, ids, errs) }); n != 0 {
		t.Fatalf("duplicate InsertBatchInto allocates %.2f per 256-key batch, want 0", n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("resident flow %d failed reinsert: %v", i, err)
		}
		if ids[i] != wantIDs[i] {
			t.Fatalf("resident flow %d reinserted as ID %d, lookup said %d", i, ids[i], wantIDs[i])
		}
	}
	// Fresh churn: insert a cold range, delete it, repeat. The bucket
	// arenas are preallocated, so placement allocates nothing either.
	fresh := make([]flowproc.FiveTuple, 128)
	for i := range fresh {
		fresh[i] = tuple(uint32(1<<20 + i))
	}
	oks := make([]bool, len(fresh))
	fids := make([]uint64, len(fresh))
	ferrs := make([]error, len(fresh))
	churn := func() {
		e.InsertBatchInto(fresh, fids, ferrs)
		e.DeleteBatchInto(fresh, oks)
	}
	churn() // warm
	if n := testing.AllocsPerRun(200, churn); n != 0 {
		t.Fatalf("fresh insert+delete churn allocates %.2f per 128-key cycle, want 0", n)
	}
}

// TestEngineScalarMutatorsZeroAllocs pins the scalar writer ops on the
// pool-free scratch cache: a duplicate Insert and a miss Delete cost no
// heap allocations.
func TestEngineScalarMutatorsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<10)
	dup := fts[3]
	missing := tuple(1 << 30)
	if _, err := e.Insert(dup); err != nil { // warm the cache slot
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := e.Insert(dup); err != nil {
			t.Fatalf("duplicate insert failed: %v", err)
		}
		e.Delete(missing)
	}); n != 0 {
		t.Fatalf("scalar duplicate-Insert + miss-Delete allocates %.2f, want 0", n)
	}
}

// TestEngineInsertBatchIntoMatchesInsertBatch pins the Into writer form
// against the allocating form on identical engines, including the
// non-storable scatter path.
func TestEngineInsertBatchIntoMatchesInsertBatch(t *testing.T) {
	mk := func() *flowproc.Engine {
		// Flow IDs are location-derived and placement is keyed, so the two
		// engines must share an explicit seed to agree on IDs.
		e, err := flowproc.NewEngine(flowproc.EngineConfig{
			Backend: "hashcam", Shards: 4, Capacity: 1 << 16, HashSeed: 0x7e57})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	batch := make([]flowproc.FiveTuple, 0, 130)
	for i := 0; i < 128; i++ {
		batch = append(batch, tuple(uint32(i)))
	}
	batch = append(batch, flowproc.FiveTuple{}, tuple(999)) // non-storable + one more
	wantIDs, wantErr := a.InsertBatch(batch)
	if wantErr == nil {
		t.Fatal("expected the non-storable tuple to surface an error")
	}
	ids := make([]uint64, len(batch))
	errs := make([]error, len(batch))
	for i := range ids { // poison
		ids[i] = ^uint64(0)
		errs[i] = nil
	}
	b.InsertBatchInto(batch, ids, errs)
	for i := range batch {
		if i == 128 {
			if !errors.Is(errs[i], flowproc.ErrNotIPv4) {
				t.Fatalf("non-storable tuple reported %v, want ErrNotIPv4", errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("flow %d: unexpected error %v", i, errs[i])
		}
		if ids[i] != wantIDs[i] {
			t.Fatalf("flow %d: Into ID %d, InsertBatch said %d", i, ids[i], wantIDs[i])
		}
	}
	// The two engines must agree the batch is resident identically.
	gotIDs, gotHits := b.LookupBatch(batch)
	refIDs, refHits := a.LookupBatch(batch)
	for i := range batch {
		if gotHits[i] != refHits[i] || gotIDs[i] != refIDs[i] {
			t.Fatalf("flow %d: post-insert lookup (%d,%v) vs reference (%d,%v)",
				i, gotIDs[i], gotHits[i], refIDs[i], refHits[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("InsertBatchInto with short buffers did not panic")
		}
	}()
	b.InsertBatchInto(batch, make([]uint64, 3), errs)
}

// TestEngineDeleteBatchIntoZeroAllocs extends the bound to the delete
// path (absent keys after the first run; the search cost is identical).
func TestEngineDeleteBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, fts := residentEngine(t, 4, 1<<10)
	batch := fts[:128]
	ok := make([]bool, len(batch))
	e.DeleteBatchInto(batch, ok) // warm pools; subsequent runs delete nothing
	if n := testing.AllocsPerRun(200, func() { e.DeleteBatchInto(batch, ok) }); n != 0 {
		t.Fatalf("DeleteBatchInto allocates %.2f per 128-key batch, want 0", n)
	}
}
