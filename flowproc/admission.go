package flowproc

import (
	"fmt"

	"repro/internal/admit"
	"repro/internal/table"
)

// This file is the engine-level surface of the admission-gating
// subsystem: a counting sketch in front of insert so a flow only earns
// an exact table slot at its k-th packet, while the one-packet-flow tail
// of Zipf traffic lives in a few sketch bytes instead of real slots. The
// table-layer mechanics (per-shard sketch segments under the write
// locks, the Advance-driven decay) live in internal/table and
// internal/admit; see docs/ARCHITECTURE.md "Admission gating".

// AdmissionConfig enables the engine's admission gate. The zero value
// leaves it disabled.
type AdmissionConfig struct {
	// Threshold is the packet count at which a flow earns a slot: its
	// Threshold-th insert attempt is admitted, earlier ones return
	// ErrAdmissionDeferred. Must be in [1, 255] when set; 0 disables
	// admission entirely.
	Threshold int
	// Width is the total sketch counters per row across all shards
	// (divided per shard like Capacity, rounded up to a power of two
	// per shard). 0 defaults to one counter per nominal table slot.
	Width int
	// Depth is the sketch row count (default 4).
	Depth int
	// DecayEpochs halves every sketch counter after this many
	// clock-moving Advance epochs, aging mice out of the sketch the way
	// the expiry sweep ages them out of the table. 0 never decays; a
	// non-zero value requires Expiry (the Advance clock drives the
	// cadence).
	DecayEpochs int
}

// enabled reports whether the configuration asks for the admission gate.
func (c AdmissionConfig) enabled() bool { return c.Threshold != 0 }

// ErrAdmissionDeferred re-exports the table layer's admission-gate
// sentinel: the insert was deferred because the flow's sketch estimate
// is still below the threshold. Not a failure of the table (the flow
// simply has not yet earned a slot) and never counted in OverloadStats.
var ErrAdmissionDeferred = table.ErrAdmissionDeferred

// AdmissionStats re-exports the table layer's admission-gate counters.
type AdmissionStats = table.AdmissionStats

// AdmissionEnabled reports whether the admission gate is active.
func (e *Engine) AdmissionEnabled() bool { return e.sharded.AdmissionEnabled() }

// AdmissionStats returns a snapshot of the admission gate's counters
// (deferred inserts, admitted flows, sketch footprint); the zero value
// when admission is disabled. A dual-stack engine sums both family
// tables.
func (e *Engine) AdmissionStats() AdmissionStats {
	st := e.sharded.AdmissionStats()
	if e.v6 != nil {
		st6 := e.v6.AdmissionStats()
		st.Gated += st6.Gated
		st.Admitted += st6.Admitted
		st.SketchBytes += st6.SketchBytes
	}
	return st
}

// AdmissionFPR measures the admission sketch's false-positive rate at
// the configured threshold over `probes` never-inserted random IPv4-key
// probes generated from seed: the fraction of fresh flows the sketch
// would admit on first sight purely through counter collisions — the
// gate's precision gauge, reported by the flowbench admission sweep.
// Returns 0 when admission is disabled. A dual-stack engine measures the
// IPv4 table (the IPv6 twin shares configuration and differs only in key
// length).
func (e *Engine) AdmissionFPR(probes int, seed uint64) float64 {
	return e.sharded.AdmissionFPR(e.spec.KeyLen(true), probes, seed)
}

// enableAdmission wires cfg into every sharded table at construction.
// The sketch index seed derives from the engine's hash seed through its
// own domain constant, so the keyed engine's counter placement is as
// unpredictable as its bucket placement (and a FixedHash engine keeps
// the unkeyed reference derivation).
func (e *Engine) enableAdmission(cfg AdmissionConfig) error {
	for _, s := range e.tables() {
		err := s.SetAdmission(table.AdmissionConfig{
			Threshold:   cfg.Threshold,
			Width:       cfg.Width,
			Depth:       cfg.Depth,
			DecayEpochs: cfg.DecayEpochs,
			Seed:        admit.DeriveSeed(e.seed),
		})
		if err != nil {
			return fmt.Errorf("flowproc: engine admission: %w", err)
		}
	}
	return nil
}
