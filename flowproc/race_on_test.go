//go:build race

package flowproc_test

const raceEnabled = true
