package flowproc_test

import (
	"errors"
	"net/netip"
	"testing"

	"repro/flowproc"
)

// tuple6 builds a distinct IPv6 5-tuple per index.
func tuple6(i uint32) flowproc.FiveTuple {
	var src, dst [16]byte
	src[0], src[1] = 0x20, 0x01
	dst[0], dst[1] = 0x20, 0x01
	src[12], src[13], src[14], src[15] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
	dst[15] = 0x99
	return flowproc.FiveTuple{
		Src:     netip.AddrFrom16(src),
		Dst:     netip.AddrFrom16(dst),
		SrcPort: uint16(i) | 1024,
		DstPort: 443,
		Proto:   6,
	}
}

// TestEngineHashSeed pins the keyed-hashing surface: a fresh engine draws
// a non-zero random seed, an explicit seed is honoured and reproduces
// placement across engines, and FixedHash restores the deterministic
// unkeyed family (seed 0, placement equal across engines with no seed).
func TestEngineHashSeed(t *testing.T) {
	mk := func(cfg flowproc.EngineConfig) *flowproc.Engine {
		cfg.Backend, cfg.Shards, cfg.Capacity = "hashcam", 4, 1<<14
		e, err := flowproc.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if seed := mk(flowproc.EngineConfig{}).HashSeed(); seed == 0 {
		t.Fatal("default engine reports seed 0; keyed hashing is not on by default")
	}
	if seed := mk(flowproc.EngineConfig{FixedHash: true}).HashSeed(); seed != 0 {
		t.Fatalf("FixedHash engine reports seed %#x, want 0", seed)
	}

	fts := make([]flowproc.FiveTuple, 512)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	place := func(e *flowproc.Engine) []uint64 {
		ids, err := e.InsertBatch(fts)
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a := place(mk(flowproc.EngineConfig{HashSeed: 0xabcdef}))
	b := place(mk(flowproc.EngineConfig{HashSeed: 0xabcdef}))
	c := place(mk(flowproc.EngineConfig{HashSeed: 0x123456}))
	diff := 0
	for i := range fts {
		if a[i] != b[i] {
			t.Fatalf("flow %d: seed-equal engines placed at %d vs %d", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("512 flows placed identically under different seeds")
	}
	// An engine rebuilt from HashSeed() reproduces a random-seeded one.
	r := mk(flowproc.EngineConfig{})
	r2 := place(mk(flowproc.EngineConfig{HashSeed: r.HashSeed()}))
	for i, id := range place(r) {
		if id != r2[i] {
			t.Fatalf("flow %d: engine rebuilt from HashSeed() placed at %d vs %d", i, r2[i], id)
		}
	}
}

// TestEngineDualStack covers the IPv6 twin table: scalar and batch
// operations over a mixed-family workload, family-unique IDs (bit 63
// tags IPv6), summed Len/ShardLens, and lifecycle expiry surfacing IPv6
// tuples with tagged IDs.
func TestEngineDualStack(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 12, DualStack: true,
		Expiry: flowproc.ExpiryConfig{IdleTimeout: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.DualStack() {
		t.Fatal("DualStack() false on a dual-stack engine")
	}
	var expired []flowproc.ExpiredFlow
	e.Expired(func(f flowproc.ExpiredFlow) { expired = append(expired, f) })
	e.Advance(10)

	// Scalar round-trip per family.
	v4, v6 := tuple(7), tuple6(7)
	id4, err4 := e.Insert(v4)
	id6, err6 := e.Insert(v6)
	if err4 != nil || err6 != nil {
		t.Fatalf("scalar inserts: %v / %v", err4, err6)
	}
	if id4>>63 != 0 || id6>>63 != 1 {
		t.Fatalf("family ID tags wrong: v4 %#x, v6 %#x", id4, id6)
	}
	if got, ok := e.Lookup(v6); !ok || got != id6 {
		t.Fatalf("v6 lookup (%d,%v), want (%d,true)", got, ok, id6)
	}
	if !e.Delete(v6) || e.Delete(v6) {
		t.Fatal("v6 delete did not remove exactly once")
	}
	e.Delete(v4)

	// Mixed batch: positions interleave families plus one invalid tuple.
	mixed := make([]flowproc.FiveTuple, 0, 61)
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			mixed = append(mixed, tuple(uint32(i)))
		} else {
			mixed = append(mixed, tuple6(uint32(i)))
		}
	}
	mixed = append(mixed, flowproc.FiveTuple{})
	ids, insErr := e.InsertBatch(mixed)
	if !errors.Is(insErr, flowproc.ErrNotIPv4) {
		t.Fatalf("invalid tuple not surfaced: %v", insErr)
	}
	gotIDs, hits := e.LookupBatch(mixed)
	for i := 0; i < 60; i++ {
		if !hits[i] || gotIDs[i] != ids[i] {
			t.Fatalf("flow %d: batch lookup (%d,%v), want (%d,true)", i, gotIDs[i], hits[i], ids[i])
		}
		if want := uint64(i%2) << 63; gotIDs[i]&(1<<63) != want {
			t.Fatalf("flow %d: family tag %#x, want %#x", i, gotIDs[i]&(1<<63), want)
		}
		if sid, ok := e.Lookup(mixed[i]); !ok || sid != ids[i] {
			t.Fatalf("flow %d: scalar lookup (%d,%v) disagrees with batch ID %d", i, sid, ok, ids[i])
		}
	}
	if hits[60] {
		t.Fatal("invalid tuple reported resident")
	}
	if got := e.Len(); got != 60 {
		t.Fatalf("Len %d, want 60 across both families", got)
	}
	total := 0
	for _, n := range e.ShardLens() {
		total += n
	}
	if total != 60 {
		t.Fatalf("ShardLens sum %d, want 60", total)
	}

	// Idle-expire everything; the v6 flows must surface as v6 tuples with
	// tagged IDs.
	for i := 0; i < 40; i++ {
		e.Advance(200)
	}
	got6 := 0
	for _, f := range expired {
		if !f.Tuple.Valid() {
			t.Fatalf("expired flow carries invalid tuple %v", f.Tuple)
		}
		if !f.Tuple.IsIPv4() {
			got6++
			if f.ID>>63 != 1 {
				t.Fatalf("expired v6 flow %v carries untagged ID %#x", f.Tuple, f.ID)
			}
		}
	}
	if got6 != 30 {
		t.Fatalf("%d v6 flows expired, want 30", got6)
	}
	if e.Len() != 0 {
		t.Fatalf("Len %d after full expiry, want 0", e.Len())
	}

	// Batch deletes route per family too (reinsert, then delete).
	if _, err := e.InsertBatch(mixed[:60]); err != nil {
		t.Fatal(err)
	}
	for i, ok := range e.DeleteBatch(mixed) {
		if (i < 60) != ok {
			t.Fatalf("delete %d = %v", i, ok)
		}
	}
}

// TestEngineOnFullEvictIdlest pins the engine-level degradation policy:
// construction is rejected without Expiry, and with it a 4x-oversubscribed
// insert load is fully admitted — zero ErrTableFull — by evicting idlest
// flows, all surfaced through the Expired callback with reason
// ExpireEvicted and counted in OverloadStats.
func TestEngineOnFullEvictIdlest(t *testing.T) {
	if _, err := flowproc.NewEngine(flowproc.EngineConfig{OnFull: flowproc.FullEvictIdlest}); err == nil {
		t.Fatal("OnFull=FullEvictIdlest accepted without Expiry")
	}
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 2, Capacity: 1 << 10,
		Expiry: flowproc.ExpiryConfig{IdleTimeout: 1 << 30},
		OnFull: flowproc.FullEvictIdlest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.FullPolicy() != flowproc.FullEvictIdlest {
		t.Fatalf("policy %v, want evict-idlest", e.FullPolicy())
	}
	evictions := 0
	e.Expired(func(f flowproc.ExpiredFlow) {
		if f.Reason != flowproc.ExpireEvicted {
			t.Errorf("reason %v, want evicted", f.Reason)
		}
		evictions++
	})
	e.Advance(10)
	for i := 0; i < 4<<10; i++ {
		if _, err := e.Insert(tuple(uint32(i))); err != nil {
			t.Fatalf("flow %d rejected under evict-idlest: %v", i, err)
		}
	}
	os := e.OverloadStats()
	if os.RejectedInserts != 0 {
		t.Fatalf("%d rejections surfaced, want 0", os.RejectedInserts)
	}
	if evictions == 0 || os.PressureEvictions != int64(evictions) {
		t.Fatalf("PressureEvictions %d, callbacks %d — want equal and non-zero",
			os.PressureEvictions, evictions)
	}
	if st := e.ExpiryStats(); st.PressureEvicted != os.PressureEvictions {
		t.Fatalf("ExpiryStats.PressureEvicted %d != OverloadStats %d",
			st.PressureEvicted, os.PressureEvictions)
	}
}

// TestEngineDualStackLookupZeroAllocs extends the zero-alloc pin to the
// dual-stack read path: a mixed-family LookupBatchInto performs no heap
// allocations in steady state (the 37-byte IPv6 keys serialise into the
// same pooled buffer; only the table-side spill compare differs).
func TestEngineDualStackLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 12, DualStack: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]flowproc.FiveTuple, 128)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = tuple(uint32(i))
		} else {
			batch[i] = tuple6(uint32(i))
		}
	}
	if _, err := e.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	e.LookupBatchInto(batch, ids, hits) // warm the pooled scratch
	if n := testing.AllocsPerRun(200, func() { e.LookupBatchInto(batch, ids, hits) }); n != 0 {
		t.Fatalf("dual-stack LookupBatchInto allocates %.2f per 128-key batch, want 0", n)
	}
	for i, h := range hits {
		if !h {
			t.Fatalf("flow %d missing after insert", i)
		}
	}
}
