package flowproc_test

import (
	"strings"
	"testing"

	"repro/flowproc"
)

// TestEngineSeqlockStripesKnob pins the EngineConfig plumbing of the
// seqlock stripe knob: 1 forces the single-word protocol, 0 derives a
// power of two from the shard slot capacity, explicit requests clamp to
// the backend bound and the cap, and anything else is a construction
// error. Results must be identical at every setting.
func TestEngineSeqlockStripesKnob(t *testing.T) {
	mk := func(stripes int) *flowproc.Engine {
		t.Helper()
		// One fixed seed for every engine: bit-identity comparisons need
		// identical placement, and the zero seed draws a random one.
		e, err := flowproc.NewEngine(flowproc.EngineConfig{
			Backend: "hashcam", Shards: 2, Capacity: 1 << 14,
			SeqlockStripes: stripes, HashSeed: 0xfeedbeef,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if got := mk(1).Stripes(); got != 1 {
		t.Fatalf("stripes=1 resolved to %d", got)
	}
	if got := mk(8).Stripes(); got != 8 {
		t.Fatalf("stripes=8 resolved to %d", got)
	}
	auto := mk(0).Stripes()
	if auto < 2 || auto&(auto-1) != 0 {
		t.Fatalf("auto stripes resolved to %d, want a power of two > 1", auto)
	}
	if got := mk(1 << 20).Stripes(); got > 512 || got&(got-1) != 0 {
		t.Fatalf("oversized request resolved to %d, want a power of two <= 512", got)
	}
	_, err := flowproc.NewEngine(flowproc.EngineConfig{SeqlockStripes: 3})
	if err == nil || !strings.Contains(err.Error(), "stripes") {
		t.Fatalf("non-power-of-two stripe count accepted (err=%v)", err)
	}

	// Bit-identity across granularities at the engine surface.
	single, striped := mk(1), mk(512)
	for _, e := range []*flowproc.Engine{single, striped} {
		for i := uint32(0); i < 2048; i++ {
			if _, err := e.Insert(tuple(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := uint32(0); i < 3000; i++ {
		idA, okA := single.Lookup(tuple(i))
		idB, okB := striped.Lookup(tuple(i))
		if idA != idB || okA != okB {
			t.Fatalf("tuple %d: stripes=1 (%d,%v) vs stripes=512 (%d,%v)", i, idA, okA, idB, okB)
		}
	}
	// The retry split must aggregate without losing counts.
	rs := striped.ReadStats()
	if rs.Retries != rs.StripeRetries+rs.GlobalRetries {
		t.Fatalf("ReadStats split does not sum: %+v", rs)
	}
}
