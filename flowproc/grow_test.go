package flowproc_test

import (
	"errors"
	"net/netip"
	"testing"

	"repro/flowproc"
	"repro/internal/table"
)

// TestEngineAutoGrowOversubscribed is the elastic-capacity acceptance
// test: an engine 4×-oversubscribed against its configured capacity, with
// auto-grow armed, must absorb the whole population — zero failed inserts
// once growth has converged and a final hit rate of at least 0.95 — where
// a fixed-capacity engine would reject or evict.
func TestEngineAutoGrowOversubscribed(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:  "hashcam",
		Shards:   4,
		Capacity: 4096,
		HashSeed: 42,
		Growth:   table.GrowthConfig{MaxLoadFactor: 0.7, StepBudget: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Capacity() < 4096 {
		t.Fatalf("Capacity() = %d, below nominal 4096", e.Capacity())
	}
	fts := make([]flowproc.FiveTuple, 16384) // 4× nominal capacity
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	// Repeated passes: inserts both trigger growth and pump the budgeted
	// migration steps until every shard has converged.
	for pass := 0; pass < 64; pass++ {
		clean := true
		if _, errsIns := e.InsertBatch(fts); errsIns != nil {
			clean = false
		}
		if clean && e.GrowStats().ActiveGrows == 0 {
			break
		}
	}
	gs := e.GrowStats()
	if gs.Grows == 0 {
		t.Fatalf("auto-grow never triggered: %+v", gs)
	}
	if gs.ActiveGrows != 0 {
		t.Fatalf("migration never converged: %+v", gs)
	}
	// Growth has converged: the next pass must be rejection-free.
	if _, errsIns := e.InsertBatch(fts); errsIns != nil {
		t.Fatalf("failed inserts after growth converged: %v", errsIns)
	}
	_, hits := e.LookupBatch(fts)
	hit := 0
	for _, h := range hits {
		if h {
			hit++
		}
	}
	if rate := float64(hit) / float64(len(fts)); rate < 0.95 {
		t.Fatalf("hit rate %.3f after growth, want >= 0.95", rate)
	}
	if got := e.Capacity(); got < int64(len(fts)) {
		t.Fatalf("Capacity() = %d after growth, want >= %d", got, len(fts))
	}
	if os := e.OverloadStats(); os.PressureEvictions != 0 {
		t.Fatalf("pressure evictions %d with growth enabled, want 0", os.PressureEvictions)
	}
}

// TestEngineExplicitGrow pins the explicit path and the dual-stack fanout:
// Engine.Grow resizes both address families' tables and the population
// survives the migration.
func TestEngineExplicitGrow(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend:   "hashcam",
		Shards:    2,
		Capacity:  2048,
		HashSeed:  7,
		DualStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fts := make([]flowproc.FiveTuple, 512)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, errsIns := e.InsertBatch(fts); errsIns != nil {
		t.Fatal(errsIns)
	}
	before := e.Capacity()
	if err := e.Grow(2); err != nil {
		t.Fatal(err)
	}
	// Pump migration through writes: scratch flows varied across shards,
	// v4 and v6 alternating so both families' tables drain.
	for i := uint32(0); i < 10000 && e.GrowStats().ActiveGrows > 0; i++ {
		scratch := tuple(1<<20 + i%64)
		if i%2 == 1 {
			scratch.Src = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(i % 64)})
			scratch.Dst = netip.MustParseAddr("2001:db8::2")
		}
		if _, err := e.Insert(scratch); err != nil {
			t.Fatal(err)
		}
		e.Delete(scratch)
	}
	if gs := e.GrowStats(); gs.ActiveGrows != 0 {
		t.Fatalf("migration never converged: %+v", gs)
	}
	if after := e.Capacity(); after <= before {
		t.Fatalf("Capacity %d after Grow(2), want > %d", after, before)
	}
	_, hits := e.LookupBatch(fts)
	for i, h := range hits {
		if !h {
			t.Fatalf("flow %d lost across migration", i)
		}
	}
}

// TestEngineGrowthUnsupportedBackend pins the constructor-time rejection:
// auto-grow on a backend without online growth fails loudly.
func TestEngineGrowthUnsupportedBackend(t *testing.T) {
	_, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "cuckoo",
		Growth:  table.GrowthConfig{MaxLoadFactor: 0.7},
	})
	if !errors.Is(err, table.ErrGrowUnsupported) {
		t.Fatalf("NewEngine(cuckoo, auto-grow) = %v, want ErrGrowUnsupported", err)
	}
}
