package flowproc_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/flowproc"
	"repro/internal/table"
)

// gatedEngine builds an engine with the admission gate armed over an
// expiry clock (decay needs one).
func gatedEngine(t testing.TB, cfg flowproc.EngineConfig) *flowproc.Engine {
	t.Helper()
	e, err := flowproc.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineAdmissionConfigValidation pins the constructor contract: a
// decay cadence without the Advance clock it rides on is rejected, as is
// a threshold beyond the sketch's counter ceiling; the zero Admission
// value leaves the gate off.
func TestEngineAdmissionConfigValidation(t *testing.T) {
	if _, err := flowproc.NewEngine(flowproc.EngineConfig{
		Admission: flowproc.AdmissionConfig{Threshold: 2, DecayEpochs: 4},
	}); err == nil {
		t.Fatal("Admission.DecayEpochs without Expiry accepted")
	}
	if _, err := flowproc.NewEngine(flowproc.EngineConfig{
		Admission: flowproc.AdmissionConfig{Threshold: 300},
	}); err == nil {
		t.Fatal("threshold beyond the counter ceiling accepted")
	}
	e := gatedEngine(t, flowproc.EngineConfig{Backend: "hashcam", Shards: 2, Capacity: 1 << 10})
	if e.AdmissionEnabled() {
		t.Fatal("zero Admission config armed the gate")
	}
	if fpr := e.AdmissionFPR(100, 1); fpr != 0 {
		t.Fatalf("disabled AdmissionFPR = %v, want 0", fpr)
	}
}

// TestEngineAdmissionGateEndToEnd drives the k=2 gate through the engine
// surface: first packets deferred with the re-exported sentinel, second
// packets admitted, resident flows touched without accounting, and the
// stats/FPR gauges live. A dual-stack engine gates both families and
// sums their counters.
func TestEngineAdmissionGateEndToEnd(t *testing.T) {
	e := gatedEngine(t, flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 12, DualStack: true,
		HashSeed:  0x2014,
		Admission: flowproc.AdmissionConfig{Threshold: 2, Width: 1 << 16},
	})
	if !e.AdmissionEnabled() {
		t.Fatal("gate not armed")
	}
	const flows = 256
	for i := uint32(0); i < flows; i++ {
		if _, err := e.Insert(tuple(i)); !errors.Is(err, flowproc.ErrAdmissionDeferred) {
			t.Fatalf("v4 flow %d first packet: %v, want deferred", i, err)
		}
		if _, err := e.Insert(tuple6(i)); !errors.Is(err, flowproc.ErrAdmissionDeferred) {
			t.Fatalf("v6 flow %d first packet: %v, want deferred", i, err)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len %d after deferred-only traffic", e.Len())
	}
	for i := uint32(0); i < flows; i++ {
		if _, err := e.Insert(tuple(i)); err != nil {
			t.Fatalf("v4 flow %d second packet: %v", i, err)
		}
		if _, err := e.Insert(tuple6(i)); err != nil {
			t.Fatalf("v6 flow %d second packet: %v", i, err)
		}
	}
	if e.Len() != 2*flows {
		t.Fatalf("Len %d, want %d", e.Len(), 2*flows)
	}
	st := e.AdmissionStats()
	if st.Gated != 2*flows || st.Admitted != 2*flows {
		t.Fatalf("stats %+v, want Gated/Admitted %d across both families", st, 2*flows)
	}
	if st.SketchBytes <= 0 {
		t.Fatalf("SketchBytes %d", st.SketchBytes)
	}
	// Resident touch: batch reinsert moves nothing.
	fts := make([]flowproc.FiveTuple, flows)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatalf("resident batch reinsert: %v", err)
	}
	if got := e.AdmissionStats(); got != st {
		t.Fatalf("resident touches moved stats %+v -> %+v", st, got)
	}
	// The generously sized sketch holds a few hundred flows: first-sight
	// false admits must be rare.
	if fpr := e.AdmissionFPR(2000, 99); fpr > 0.01 {
		t.Fatalf("AdmissionFPR %v with an oversized sketch, want <= 0.01", fpr)
	}
}

// TestEngineAdmissionRaceStressConservation is the race-detector
// certificate for the gated writer path and the flow-conservation audit
// in one: concurrent gated inserts, batched lookups, Advance-driven
// sweeps and sketch decay, FullEvictIdlest pressure evictions and a
// mid-run online Grow all interleave; at quiescence every deferred
// insert observed by a worker must be accounted in Gated, and every
// admitted flow must be exactly one of resident, expired/pressure
// evicted, migration-dropped, or rejected full:
//
//	Admitted - RejectedInserts == Len + Evicted + DroppedSlots
func TestEngineAdmissionRaceStressConservation(t *testing.T) {
	e := gatedEngine(t, flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 12,
		HashSeed:  0x20140c,
		Expiry:    flowproc.ExpiryConfig{IdleTimeout: 64, SweepBudget: 512},
		OnFull:    flowproc.FullEvictIdlest,
		Admission: flowproc.AdmissionConfig{Threshold: 2, DecayEpochs: 8},
	})
	var (
		deferredSeen atomic.Int64
		stop         = make(chan struct{})
		wg           sync.WaitGroup
	)
	// Writers: each hammers an overlapping window of a shared flow space,
	// so the same flow is gated/admitted from several goroutines.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			const span = 512
			fts := make([]flowproc.FiveTuple, span)
			ids := make([]uint64, span)
			errs := make([]error, span)
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				base := uint32(rng.Intn(8)) * 256 // overlapping windows
				for i := range fts {
					fts[i] = tuple(base + uint32(i))
				}
				e.InsertBatchInto(fts, ids, errs)
				for i, err := range errs {
					switch {
					case err == nil:
					case errors.Is(err, flowproc.ErrAdmissionDeferred):
						deferredSeen.Add(1)
					case errors.Is(err, table.ErrTableFull):
					default:
						t.Errorf("writer %d key %d: unexpected %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: batched and scalar lookups race the gated writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			const span = 256
			fts := make([]flowproc.FiveTuple, span)
			for i := range fts {
				fts[i] = tuple(uint32(r*128 + i))
			}
			ids := make([]uint64, span)
			hits := make([]bool, span)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e.LookupBatchInto(fts, ids, hits)
				e.Lookup(fts[i%span])
				e.Len()
				e.AdmissionStats()
			}
		}(r)
	}
	// Clock: Advance drives sweeps, sketch decay and migration pumping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for now := int64(1); ; now++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Advance(now)
		}
	}()
	// Mid-run online resize under full load, then a clock jump that mass
	// idle-expires the resident population while writers keep going.
	time.Sleep(30 * time.Millisecond)
	if err := e.Grow(2); err != nil {
		t.Error(err)
	}
	time.Sleep(30 * time.Millisecond)
	e.Advance(1 << 30)
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := e.AdmissionStats()
	if st.Gated != deferredSeen.Load() {
		t.Fatalf("Gated %d but workers observed %d deferred inserts", st.Gated, deferredSeen.Load())
	}
	got := st.Admitted - e.OverloadStats().RejectedInserts
	want := int64(e.Len()) + e.ExpiryStats().Evicted + e.GrowStats().DroppedSlots
	if got != want {
		t.Fatalf("conservation broken: Admitted-Rejected %d != Len+Evicted+Dropped %d\nadmission %+v\noverload %+v\nexpiry %+v\ngrow %+v",
			got, want, st, e.OverloadStats(), e.ExpiryStats(), e.GrowStats())
	}
	if st.Gated == 0 || st.Admitted == 0 {
		t.Fatalf("stress too tame: %+v", st)
	}
}

// TestEngineAdmissionInsertBatchIntoZeroAllocs extends the writer
// zero-alloc pin to the gated path: with admission armed, both steady
// states — resident touches (gate bypassed via the residency probe) and
// a gated mice flood (sketch touch + sentinel error per key) — must
// allocate nothing per call.
func TestEngineAdmissionInsertBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e := gatedEngine(t, flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 14,
		Admission: flowproc.AdmissionConfig{Threshold: 2, Width: 1 << 16},
	})
	resident := make([]flowproc.FiveTuple, 256)
	for i := range resident {
		resident[i] = tuple(uint32(i))
	}
	ids := make([]uint64, len(resident))
	errs := make([]error, len(resident))
	e.InsertBatchInto(resident, ids, errs) // round 1: all gated
	e.InsertBatchInto(resident, ids, errs) // round 2: all admitted
	for i, err := range errs {
		if err != nil {
			t.Fatalf("flow %d not admitted at threshold: %v", i, err)
		}
	}
	if n := testing.AllocsPerRun(200, func() { e.InsertBatchInto(resident, ids, errs) }); n != 0 {
		t.Fatalf("resident-touch InsertBatchInto allocates %.2f per batch with admission on, want 0", n)
	}
	// A below-threshold flood: every key defers through the sentinel.
	// Deferred flows never become resident, so the rounds stay on the
	// gated path forever — no allocations there either. (tuple() encodes
	// the low 24 bits of its argument, so the mice bases stay below 1<<24
	// to remain disjoint from the resident range.)
	mice := make([]flowproc.FiveTuple, 256)
	fresh := func(base uint32) {
		for i := range mice {
			mice[i] = tuple(1<<22 + base + uint32(i))
		}
	}
	fresh(0)
	e.InsertBatchInto(mice, ids, errs) // warm
	if n := testing.AllocsPerRun(50, func() { e.InsertBatchInto(mice, ids, errs) }); n != 0 {
		t.Fatalf("gated InsertBatchInto allocates %.2f per batch, want 0", n)
	}
	fresh(1 << 20) // first-sight keys, so every error is the gate's
	e.InsertBatchInto(mice, ids, errs)
	for i, err := range errs {
		if !errors.Is(err, flowproc.ErrAdmissionDeferred) {
			t.Fatalf("fresh mouse %d: %v, want deferred", i, err)
		}
	}
}

// TestEngineAdmissionZipfAcceptance is the PR's acceptance criterion: on
// a trace where well over 60% of distinct flows are single-packet mice,
// the k=2 gated engine must hold steady-state occupancy at least 2×
// below the ungated twin at equal capacity, without losing hit rate on
// the multi-packet (3rd-and-later-occurrence) traffic.
func TestEngineAdmissionZipfAcceptance(t *testing.T) {
	const (
		packets  = 100_000
		capacity = 4096
		universe = 1024 // elephant flow population
		advEvery = 256
		idle     = 4096
		warmup   = packets / 2
		// tuple() encodes the low 24 bits of its argument; the mouse ID
		// range must stay below 1<<24 and disjoint from the elephants.
		miceBase = 1 << 20
	)
	run := func(threshold int) (meanOcc float64, multiHit float64, e *flowproc.Engine) {
		cfg := flowproc.EngineConfig{
			Backend: "hashcam", Shards: 4, Capacity: capacity,
			HashSeed: 0x2014,
			Expiry:   flowproc.ExpiryConfig{IdleTimeout: idle, SweepBudget: 1 << 12},
		}
		if threshold > 0 {
			// The sketch's memory (decay cadence x advEvery packets) must
			// comfortably outlast the table's idle window: a resident flow
			// never touches the sketch, so its earned credit only decays —
			// if it reaches zero within an idle window, a returning
			// elephant re-earns the threshold and loses hits the ungated
			// twin keeps. Eight idle windows keeps that loss negligible
			// while still halving the mice residue three times per trace.
			cfg.Admission = flowproc.AdmissionConfig{Threshold: threshold, Width: 1 << 16, DecayEpochs: 128}
		}
		e = gatedEngine(t, cfg)
		rng := rand.New(rand.NewSource(2014))
		zipf := rand.NewZipf(rng, 1.3, 1, universe-1)
		seen := make(map[uint32]int)
		mouseID, occSamples, occSum := uint32(0), 0, 0
		counted, hit := 0, 0
		for p := 0; p < packets; p++ {
			var id uint32
			if p%2 == 0 { // mice: fresh single-packet flow
				id = miceBase + mouseID
				mouseID++
			} else { // elephants: Zipf-recurring flow
				id = uint32(zipf.Uint64())
			}
			seen[id]++
			ft := tuple(id)
			if _, ok := e.Lookup(ft); ok {
				if seen[id] >= 3 {
					counted, hit = counted+1, hit+1
				}
			} else {
				if seen[id] >= 3 {
					counted++
				}
				if _, err := e.Insert(ft); err != nil &&
					!errors.Is(err, flowproc.ErrAdmissionDeferred) &&
					!errors.Is(err, table.ErrTableFull) {
					t.Fatalf("packet %d: %v", p, err)
				}
			}
			if p%advEvery == advEvery-1 {
				e.Advance(int64(p))
				if p >= warmup {
					occSum += e.Len()
					occSamples++
				}
			}
		}
		// The trace's flow population is dominated by single-packet mice —
		// the regime the gate exists for.
		single := 0
		for _, n := range seen {
			if n == 1 {
				single++
			}
		}
		if frac := float64(single) / float64(len(seen)); frac < 0.6 {
			t.Fatalf("trace too elephantine: %.2f single-packet flows, need >= 0.6", frac)
		}
		return float64(occSum) / float64(occSamples), float64(hit) / float64(counted), e
	}

	ungatedOcc, ungatedHit, _ := run(0)
	gatedOcc, gatedHit, ge := run(2)
	t.Logf("occupancy ungated %.0f gated %.0f (%.1fx); multi-packet hit rate ungated %.4f gated %.4f; admission %+v; fpr %.4f",
		ungatedOcc, gatedOcc, ungatedOcc/gatedOcc, ungatedHit, gatedHit, ge.AdmissionStats(), ge.AdmissionFPR(2000, 7))
	if gatedOcc*2 > ungatedOcc {
		t.Fatalf("gated occupancy %.0f not 2x below ungated %.0f", gatedOcc, ungatedOcc)
	}
	if gatedHit < ungatedHit-0.01 {
		t.Fatalf("gate cost multi-packet hit rate: gated %.4f vs ungated %.4f", gatedHit, ungatedHit)
	}
	st := ge.AdmissionStats()
	if st.Gated == 0 || st.Admitted == 0 {
		t.Fatalf("gate idle over the trace: %+v", st)
	}
}
