//go:build !race

package flowproc_test

// raceEnabled reports whether the race detector is active; the
// AllocsPerRun bounds are skipped under -race because the race runtime
// allocates inside the sync primitives the hot path uses.
const raceEnabled = false
