package flowproc_test

import (
	"errors"
	"net/netip"
	"sync"
	"testing"

	"repro/flowproc"
)

func tuple(i uint32) flowproc.FiveTuple {
	return flowproc.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{192, 168, byte(i >> 8), byte(i)}),
		SrcPort: uint16(i) | 1024,
		DstPort: 443,
		Proto:   6,
	}
}

func TestEngineDefaults(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Backend() != "hashcam" {
		t.Fatalf("default backend = %q", e.Backend())
	}
	if e.Shards() < 1 {
		t.Fatalf("default shards = %d", e.Shards())
	}
}

func TestEngineScalarAndBatchAgree(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Backend: "hashcam", Shards: 4, Capacity: 8192})
	if err != nil {
		t.Fatal(err)
	}
	fts := make([]flowproc.FiveTuple, 1000)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	ids, err := e.InsertBatch(fts)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, hits := e.LookupBatch(fts)
	for i := range fts {
		if !hits[i] || gotIDs[i] != ids[i] {
			t.Fatalf("flow %d: batch lookup (%d,%v), want (%d,true)", i, gotIDs[i], hits[i], ids[i])
		}
		id, ok := e.Lookup(fts[i])
		if !ok || id != ids[i] {
			t.Fatalf("flow %d: scalar lookup (%d,%v), want (%d,true)", i, id, ok, ids[i])
		}
	}
	if e.Len() != len(fts) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(fts))
	}
	for i, ok := range e.DeleteBatch(fts) {
		if !ok {
			t.Fatalf("flow %d not deleted", i)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", e.Len())
	}
}

func TestEngineEveryRegisteredBackend(t *testing.T) {
	for _, backend := range flowproc.Backends() {
		t.Run(backend, func(t *testing.T) {
			e, err := flowproc.NewEngine(flowproc.EngineConfig{Backend: backend, Shards: 2, Capacity: 4096})
			if err != nil {
				t.Fatal(err)
			}
			ft := tuple(7)
			id, err := e.Insert(ft)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := e.Lookup(ft); !ok || got != id {
				t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
			}
			if !e.Delete(ft) {
				t.Fatal("Delete missed")
			}
		})
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Shards: 8, Capacity: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perW = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * perW)
			for i := uint32(0); i < perW; i++ {
				if _, err := e.Insert(tuple(base + i)); err != nil {
					t.Errorf("worker %d insert %d: %v", w, i, err)
					return
				}
			}
			for i := uint32(0); i < workers*perW; i += 5 {
				e.Lookup(tuple(i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := e.Len(), workers*perW; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestEngineRejectsUnknownBackend(t *testing.T) {
	if _, err := flowproc.NewEngine(flowproc.EngineConfig{Backend: "bogus"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestEngineRejectsNonIPv4 pins the public boundary: IPv6 and invalid
// tuples must be rejected with an error (insert) or reported absent
// (lookup/delete), never panic the backends' fixed key geometry.
func TestEngineRejectsNonIPv4(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Shards: 2, Capacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v6 := flowproc.FiveTuple{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1234, DstPort: 443, Proto: 6,
	}
	var zero flowproc.FiveTuple
	for _, ft := range []flowproc.FiveTuple{v6, zero} {
		if _, err := e.Insert(ft); !errors.Is(err, flowproc.ErrNotIPv4) {
			t.Fatalf("Insert(%v) err = %v, want ErrNotIPv4", ft, err)
		}
		if _, ok := e.Lookup(ft); ok {
			t.Fatalf("Lookup(%v) hit", ft)
		}
		if e.Delete(ft) {
			t.Fatalf("Delete(%v) reported present", ft)
		}
	}
	// Batches stay positional around the rejected tuples. Zero is a
	// legitimate ID, so presence of the valid tuples is asserted via the
	// lookup below, not via the returned ids.
	mixed := []flowproc.FiveTuple{tuple(1), v6, tuple(2)}
	if _, err := e.InsertBatch(mixed); !errors.Is(err, flowproc.ErrNotIPv4) {
		t.Fatalf("InsertBatch err = %v, want ErrNotIPv4 in chain", err)
	}
	_, hits := e.LookupBatch(mixed)
	if !hits[0] || hits[1] || !hits[2] {
		t.Fatalf("LookupBatch hits = %v, want [true false true]", hits)
	}
	del := e.DeleteBatch(mixed)
	if !del[0] || del[1] || !del[2] {
		t.Fatalf("DeleteBatch = %v, want [true false true]", del)
	}
}
