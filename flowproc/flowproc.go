// Package flowproc is the public API of this repository: a flow lookup
// table and flow processor after Yang, Sezer & O'Neill, "A Hardware
// Acceleration Scheme for Memory-Efficient Flow Processing" (IEEE SOCC
// 2014).
//
// Two entry points cover the two ways to use the system:
//
//   - Table is the untimed Hash-CAM flow table (Fig. 1 of the paper): a
//     two-choice hash table with a CAM overflow store, suitable as a plain
//     high-performance flow table in Go programs.
//
//   - Processor is the cycle-level model of the full dual-path scheme
//     (Fig. 2): two DDR3 channels behind data lookup units with bank
//     selection, request filtering and burst write generation. It reports
//     throughput in simulated Mdesc/s, reproducing the paper's evaluation.
//
// The experiments that regenerate every table and figure of the paper are
// exposed through cmd/flowbench and the repository's benchmark suite.
package flowproc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashcam"
	"repro/internal/netflow"
	"repro/internal/packet"
	"repro/internal/sim"
)

// FiveTuple re-exports the packet 5-tuple used as the flow identity.
type FiveTuple = packet.FiveTuple

// Packet re-exports the parsed-packet type.
type Packet = packet.Packet

// Table is the untimed Hash-CAM flow table with a 5-tuple front end.
type Table struct {
	inner *hashcam.Table
	spec  packet.TupleSpec
}

// TableConfig parameterises a Table.
type TableConfig struct {
	// Capacity is the approximate flow capacity; the bucket count is
	// derived (K=4 slots per bucket, two halves).
	Capacity int
	// CAMEntries sizes the collision store (default 64).
	CAMEntries int
}

// NewTable builds a flow table for roughly cfg.Capacity flows.
func NewTable(cfg TableConfig) (*Table, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("flowproc: capacity must be positive, got %d", cfg.Capacity)
	}
	hcfg := hashcam.DefaultConfig()
	if cfg.CAMEntries > 0 {
		hcfg.CAMCapacity = cfg.CAMEntries
	}
	// Two halves x K slots: buckets = capacity / (2*K), rounded up to a
	// power of two.
	perBucket := 2 * hcfg.SlotsPerBucket
	buckets := 1
	for buckets*perBucket < cfg.Capacity {
		buckets <<= 1
	}
	hcfg.Buckets = buckets
	inner, err := hashcam.New(hcfg)
	if err != nil {
		return nil, err
	}
	return &Table{inner: inner, spec: packet.FiveTupleSpec()}, nil
}

// Insert stores the flow if absent and returns its flow ID.
func (t *Table) Insert(ft FiveTuple) (uint64, error) {
	fid, err := t.inner.Insert(t.spec.Key(ft))
	if err != nil {
		return 0, fmt.Errorf("flowproc: insert %v: %w", ft, err)
	}
	return fid, nil
}

// Lookup returns the flow ID of ft.
func (t *Table) Lookup(ft FiveTuple) (uint64, bool) {
	fid, _, ok := t.inner.Lookup(t.spec.Key(ft))
	return fid, ok
}

// Delete removes ft, reporting whether it was present.
func (t *Table) Delete(ft FiveTuple) bool {
	return t.inner.Delete(t.spec.Key(ft))
}

// Len returns the stored flow count.
func (t *Table) Len() int { return t.inner.Len() }

// CAMInUse returns the number of collision entries currently held in the
// CAM overflow store.
func (t *Table) CAMInUse() int { return t.inner.CAMInUse() }

// Processor is the timed dual-path flow processor.
type Processor struct {
	lut   *core.FlowLUT
	sched *sim.Scheduler
	spec  packet.TupleSpec
}

// ProcessorConfig selects the timed model's scale.
type ProcessorConfig struct {
	// Buckets per path (power of two; default 16384 = 128k flows).
	Buckets int
	// InjectPeriodBusCycles is the injection pacing in 800 MHz bus cycles
	// (8 = the paper's 100 MHz input rate).
	InjectPeriodBusCycles int64
}

// NewProcessor builds a timed processor.
func NewProcessor(cfg ProcessorConfig) (*Processor, error) {
	ccfg := core.DefaultConfig()
	if cfg.Buckets > 0 {
		ccfg.Buckets = cfg.Buckets
	}
	lut, sched, err := core.NewRig(ccfg)
	if err != nil {
		return nil, err
	}
	return &Processor{lut: lut, sched: sched, spec: packet.FiveTupleSpec()}, nil
}

// Result re-exports the per-descriptor outcome.
type Result = core.Result

// Report summarises a processed batch.
type Report struct {
	Results     []Result
	MDescPerSec float64
	NewFlows    int64
	Hits        int64
	Dropped     int64
}

// Process runs a batch of packets through the timed pipeline at the
// configured injection rate and returns the outcome, including the
// sustained simulated processing rate.
func (p *Processor) Process(tuples []FiveTuple, injectPeriod int64) (Report, error) {
	if injectPeriod <= 0 {
		injectPeriod = 8
	}
	items := make([]core.WorkItem, len(tuples))
	for i, ft := range tuples {
		items[i] = core.WorkItem{Kind: core.KindLookup, Key: p.spec.Key(ft)}
	}
	rep, err := core.RunWorkload(p.lut, p.sched, items, injectPeriod, 2_000_000_000)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Results:     rep.Results,
		MDescPerSec: rep.MDescPerSec,
		NewFlows:    rep.Stats.NewFlows,
		Hits:        rep.Stats.Hits,
		Dropped:     rep.Stats.Dropped,
	}, nil
}

// FlowEngine re-exports the NetFlow-style state engine so applications
// can pair it with either table.
type FlowEngine = netflow.Engine

// NewFlowEngine builds a flow-state engine with common defaults.
func NewFlowEngine() (*FlowEngine, error) {
	return netflow.NewEngine(netflow.DefaultConfig())
}
