package flowproc_test

import (
	"testing"

	"repro/flowproc"
	"repro/internal/hashfn"
	"repro/internal/trafficgen"
)

// ingest pushes trace through eng in batches with the deployment shape —
// look up, insert the misses — and returns the lookup hit rate and the
// number of per-key insert failures.
func ingest(t *testing.T, eng *flowproc.Engine, trace []flowproc.FiveTuple, batch int) (hitRate float64, failed int) {
	t.Helper()
	var hits, lookups int
	for p := 0; p < len(trace); p += batch {
		b := trace[p:min(p+batch, len(trace))]
		ids, hit := eng.LookupBatch(b)
		_ = ids
		var miss []flowproc.FiveTuple
		for i, h := range hit {
			if h {
				hits++
			} else {
				miss = append(miss, b[i])
			}
		}
		lookups += len(b)
		if len(miss) == 0 {
			continue
		}
		if _, err := eng.InsertBatch(miss); err != nil {
			// Count per-key failures; the batch error is their summary.
			_, errs := eng.LookupBatch(miss)
			for _, ok := range errs {
				if !ok {
					failed++
				}
			}
		}
	}
	return float64(hits) / float64(lookups), failed
}

// TestCollisionFloodKeyedHolds is the PR's headline resilience bound: the
// identical mined collision-flood trace is replayed against a FixedHash
// engine (the unkeyed CRC pair the flood was mined against) and a keyed
// one. The unkeyed engine must visibly degrade — flood flows rejected,
// hit rate collapsing toward the benign fraction — while the keyed engine
// absorbs the same bytes as ordinary traffic and holds a hit rate within
// 25% of a benign run.
func TestCollisionFloodKeyedHolds(t *testing.T) {
	const capacity, floodSize, packets, batch = 1 << 14, 512, 60_000, 64
	flood, ok := trafficgen.MineCollidingFlows(hashfn.DefaultPair(), 1<<12, floodSize)
	if !ok {
		t.Fatal("miner failed against the CRC pair")
	}

	// Benign side: Zipf revisits over a universe half the table. Flood
	// side: 30% of packets cycling the mined set. One materialised trace,
	// replayed bit-identically against every engine.
	z, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe: capacity / 2, Skew: 1.2, HeadOffset: 8, Seed: 2014})
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]flowproc.FiveTuple, packets)
	for i := range trace {
		if i%10 < 3 {
			trace[i] = flood[(i/10)%floodSize]
		} else {
			trace[i] = trafficgen.Flow(z.SampleIndex())
		}
	}

	mk := func(cfg flowproc.EngineConfig) *flowproc.Engine {
		cfg.Backend, cfg.Shards, cfg.Capacity = "hashcam", 4, capacity
		e, err := flowproc.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	fixedHit, fixedFailed := ingest(t, mk(flowproc.EngineConfig{FixedHash: true}), trace, batch)
	keyedHit, keyedFailed := ingest(t, mk(flowproc.EngineConfig{HashSeed: 0x2014}), trace, batch)

	// The keyed engine absorbs the flood completely: every mined flow
	// spreads like a random key and is admitted, so after the first visit
	// the flood is pure hits.
	if keyedFailed != 0 {
		t.Fatalf("keyed engine failed %d inserts under the flood, want 0", keyedFailed)
	}
	// The unkeyed engine cannot admit the mined set (it exceeds the one
	// bucket pair per shard it is pinned to), so flood packets keep
	// missing and failing forever.
	if fixedFailed == 0 {
		t.Fatal("unkeyed engine admitted the whole mined flood — collision pinning is broken")
	}
	// Resilience bound: keyed hit rate within 25% of a same-length benign
	// run; unkeyed hit rate degraded by well over that relative to keyed.
	benignEng := mk(flowproc.EngineConfig{HashSeed: 0x2014})
	zb, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe: capacity / 2, Skew: 1.2, HeadOffset: 8, Seed: 2015})
	if err != nil {
		t.Fatal(err)
	}
	benign := make([]flowproc.FiveTuple, packets)
	for i := range benign {
		benign[i] = trafficgen.Flow(zb.SampleIndex())
	}
	benignHit, _ := ingest(t, benignEng, benign, batch)
	if keyedHit < benignHit*0.75 {
		t.Fatalf("keyed hit rate %.3f fell more than 25%% below benign %.3f under the flood",
			keyedHit, benignHit)
	}
	if fixedHit > keyedHit*0.85 {
		t.Fatalf("unkeyed hit rate %.3f did not degrade vs keyed %.3f — the flood had no effect",
			fixedHit, keyedHit)
	}
	t.Logf("hit rates: benign %.3f, keyed-under-flood %.3f, unkeyed-under-flood %.3f (failed inserts %d)",
		benignHit, keyedHit, fixedHit, fixedFailed)
}

// TestSYNFloodEvictIdlestAbsorbs pins the degradation-policy acceptance
// bound: a 4x-oversubscribed SYN flood (every packet a distinct
// one-packet flow) against FullEvictIdlest is admitted in full — zero
// per-key failures, zero rejections in OverloadStats — with the overflow
// converted into pressure evictions; the same flood against the default
// FullReject policy rejects the overflow instead.
func TestSYNFloodEvictIdlestAbsorbs(t *testing.T) {
	const capacity, batch = 1 << 10, 64
	packets := 4 * capacity
	mk := func(policy flowproc.FullPolicy) *flowproc.Engine {
		cfg := flowproc.EngineConfig{
			Backend: "hashcam", Shards: 2, Capacity: capacity,
			HashSeed: 0x2014, OnFull: policy,
		}
		if policy == flowproc.FullEvictIdlest {
			cfg.Expiry = flowproc.ExpiryConfig{IdleTimeout: 1 << 40}
		}
		e, err := flowproc.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	run := func(e *flowproc.Engine) (failed int) {
		b := make([]flowproc.FiveTuple, batch)
		ids := make([]uint64, batch)
		errs := make([]error, batch)
		for p := 0; p < packets; p += batch {
			for i := range b {
				b[i] = trafficgen.SYNFlood(uint64(p + i))
			}
			e.InsertBatchInto(b, ids, errs)
			for _, err := range errs {
				if err != nil {
					failed++
				}
			}
			if e.ExpiryEnabled() {
				e.Advance(int64(p + batch))
			}
		}
		return failed
	}

	evict := mk(flowproc.FullEvictIdlest)
	if failed := run(evict); failed != 0 {
		t.Fatalf("evict-idlest engine failed %d of %d oversubscribed inserts, want 0", failed, packets)
	}
	os := evict.OverloadStats()
	if os.RejectedInserts != 0 {
		t.Fatalf("evict-idlest engine counted %d rejections, want 0", os.RejectedInserts)
	}
	// Exact conservation: every admitted flow beyond the resident set was
	// reclaimed by a pressure eviction.
	if want := int64(packets - evict.Len()); os.PressureEvictions != want {
		t.Fatalf("%d pressure evictions, want %d (admitted %d - resident %d)",
			os.PressureEvictions, want, packets, evict.Len())
	}

	reject := mk(flowproc.FullReject)
	if failed := run(reject); failed == 0 {
		t.Fatal("reject engine absorbed a 4x-oversubscribed flood without a single rejection")
	}
	if ros := reject.OverloadStats(); ros.RejectedInserts == 0 || ros.PressureEvictions != 0 {
		t.Fatalf("reject engine stats %+v, want rejections > 0 and no evictions", ros)
	}
}
