package flowproc_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/flowproc"
)

// expiringEngine builds an engine with the lifecycle layer enabled.
func expiringEngine(t testing.TB, cfg flowproc.ExpiryConfig) *flowproc.Engine {
	t.Helper()
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 4, Capacity: 1 << 14, Expiry: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// drainEngine keeps sweeping at a fixed now until a few full laps report
// nothing, returning the total evicted.
func drainEngine(e *flowproc.Engine, now int64) int {
	total := 0
	idle := 0
	for idle < 64 {
		n := e.Advance(now)
		total += n
		if n == 0 {
			idle++
		} else {
			idle = 0
		}
	}
	return total
}

// TestEngineExpiryExportsTuples pins the engine-level export hook: idle
// flows come back out of the table as the exact 5-tuples they went in as,
// with timestamps and the idle reason.
func TestEngineExpiryExportsTuples(t *testing.T) {
	e := expiringEngine(t, flowproc.ExpiryConfig{IdleTimeout: 100, SweepBudget: 512})
	seen := map[flowproc.FiveTuple]flowproc.ExpiredFlow{}
	e.Expired(func(f flowproc.ExpiredFlow) { seen[f.Tuple] = f })

	e.Advance(10)
	fts := make([]flowproc.FiveTuple, 500)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatal(err)
	}
	// Keep the first half hot at t=80; expire the rest at t=130.
	e.Advance(80)
	e.LookupBatch(fts[:250])
	if n := drainEngine(e, 130); n != 250 {
		t.Fatalf("evicted %d flows, want the 250 idle ones", n)
	}
	if len(seen) != 250 {
		t.Fatalf("callback saw %d flows, want 250", len(seen))
	}
	for i, ft := range fts[250:] {
		f, ok := seen[ft]
		if !ok {
			t.Fatalf("idle flow %d never exported", 250+i)
		}
		if f.Reason != flowproc.ExpireIdle {
			t.Fatalf("flow %d reason %v, want idle", 250+i, f.Reason)
		}
		if f.FirstSeen != 10 || f.LastSeen != 10 {
			t.Fatalf("flow %d stamps (%d,%d), want (10,10)", 250+i, f.FirstSeen, f.LastSeen)
		}
	}
	for _, ft := range fts[:250] {
		if _, ok := seen[ft]; ok {
			t.Fatalf("hot flow %v exported", ft)
		}
	}
	if got := e.Len(); got != 250 {
		t.Fatalf("Len after sweep = %d, want 250", got)
	}
	if st := e.ExpiryStats(); st.IdleEvicted != 250 || st.Evicted != 250 {
		t.Fatalf("stats %+v, want 250 idle evictions", st)
	}
}

// TestEngineExpiryDisabledByDefault pins the default: no lifecycle layer,
// Advance panics, stats are zero.
func TestEngineExpiryDisabledByDefault(t *testing.T) {
	e, err := flowproc.NewEngine(flowproc.EngineConfig{Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if e.ExpiryEnabled() {
		t.Fatal("expiry enabled without configuration")
	}
	if st := e.ExpiryStats(); st != (flowproc.ExpiryStats{}) {
		t.Fatalf("disabled stats = %+v, want zero", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance without expiry did not panic")
		}
	}()
	e.Advance(1)
}

// TestEngineExpirySweepRacesReaders drives the sweep concurrently with
// shared-lock readers and writers under the race detector: Advance takes
// each shard's write lock while lookups touch last-seen timestamps under
// the read lock, which is exactly the interleaving the atomic side-table
// stores exist for.
func TestEngineExpirySweepRacesReaders(t *testing.T) {
	e := expiringEngine(t, flowproc.ExpiryConfig{IdleTimeout: 50, ActiveTimeout: 1000, SweepBudget: 128})
	var exported atomic.Int64
	e.Expired(func(flowproc.ExpiredFlow) { exported.Add(1) })

	const readers = 4
	const rounds = 300
	fts := make([]flowproc.FiveTuple, 512)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ids := make([]uint64, 128)
			hits := make([]bool, 128)
			errs := make([]error, 128)
			slice := fts[r*128 : (r+1)*128]
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.LookupBatchInto(slice, ids, hits)
				e.InsertBatchInto(slice, ids, errs) // duplicate-touch path
				for _, ft := range slice[:8] {
					e.Lookup(ft)
				}
			}
		}(r)
	}
	for now := int64(1); now <= rounds; now++ {
		e.Advance(now * 10)
	}
	close(stop)
	wg.Wait()
	// Whatever expired must have been re-inserted by the readers or gone
	// for good; the structural invariant is consistency, which the race
	// detector and Len bounds check.
	if got := e.Len(); got < 0 || got > len(fts) {
		t.Fatalf("Len = %d out of [0,%d]", got, len(fts))
	}
}

// TestEngineExpiryHotPathZeroAllocs extends the repo's zero-allocation
// bound to the lifecycle-enabled engine: the batched read path (now also
// stamping last-seen), the duplicate-insert touch path, and the sweep
// itself (pooled eviction scratch) must all run allocation-free in steady
// state.
func TestEngineExpiryHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	e := expiringEngine(t, flowproc.ExpiryConfig{IdleTimeout: 1 << 40, SweepBudget: 256})
	e.Advance(1)
	fts := make([]flowproc.FiveTuple, 4096)
	for i := range fts {
		fts[i] = tuple(uint32(i))
	}
	if _, err := e.InsertBatch(fts); err != nil {
		t.Fatal(err)
	}
	batch := fts[:256]
	ids := make([]uint64, len(batch))
	hits := make([]bool, len(batch))
	errs := make([]error, len(batch))
	e.LookupBatchInto(batch, ids, hits) // warm pools
	if n := testing.AllocsPerRun(200, func() { e.LookupBatchInto(batch, ids, hits) }); n != 0 {
		t.Fatalf("expiry-enabled LookupBatchInto allocates %.2f per batch, want 0", n)
	}
	e.InsertBatchInto(batch, ids, errs)
	if n := testing.AllocsPerRun(200, func() { e.InsertBatchInto(batch, ids, errs) }); n != 0 {
		t.Fatalf("expiry-enabled InsertBatchInto allocates %.2f per batch, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { e.Lookup(batch[3]) }); n != 0 {
		t.Fatalf("expiry-enabled scalar Lookup allocates %.2f, want 0", n)
	}
	// A sweep finding nothing to evict allocates nothing either.
	var now atomic.Int64
	now.Store(2)
	if n := testing.AllocsPerRun(200, func() { e.Advance(now.Add(1)) }); n != 0 {
		t.Fatalf("no-evict Advance allocates %.2f, want 0", n)
	}
}

// TestEngineExpirySteadyStateOverCapacity is the acceptance scenario at
// test scale: a flow population 4× the table capacity cycles through an
// expiring engine in waves and every insert keeps succeeding because the
// sweep reclaims the previous waves.
func TestEngineExpirySteadyStateOverCapacity(t *testing.T) {
	// The idle window bounds steady-state residency at roughly
	// IdleTimeout + sweep lag distinct flows (arrivals are 1 per clock
	// tick); it is sized to keep hashcam's bucket load moderate so every
	// insert finds room — the lifecycle layer reclaims in time.
	const capacity = 1 << 12
	e, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 2, Capacity: capacity,
		Expiry: flowproc.ExpiryConfig{IdleTimeout: 1024, SweepBudget: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	population := 4 * capacity
	batch := make([]flowproc.FiveTuple, 256)
	ids := make([]uint64, len(batch))
	errs := make([]error, len(batch))
	var pkts int64
	failed := 0
	for wave := 0; wave < 3; wave++ {
		for base := 0; base < population; base += len(batch) {
			for i := range batch {
				batch[i] = tuple(uint32(base + i))
			}
			e.InsertBatchInto(batch, ids, errs)
			for _, err := range errs {
				if err != nil {
					failed++
				}
			}
			pkts += int64(len(batch))
			e.Advance(pkts)
		}
	}
	if failed > 0 {
		t.Fatalf("%d inserts failed while cycling %d flows through %d slots; expiry should reclaim",
			failed, population, capacity)
	}
	if occ := e.Len(); occ > capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", occ, capacity)
	}
	if st := e.ExpiryStats(); st.Evicted == 0 {
		t.Fatal("no evictions recorded over 3 waves of 4× capacity")
	}
}
