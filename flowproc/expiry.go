package flowproc

import (
	"fmt"

	"repro/internal/table"
)

// This file is the engine-level surface of the flow-lifecycle subsystem:
// NetFlow-style idle/active timeouts over a caller-supplied logical
// clock, an incremental per-shard eviction sweep driven by Advance, and
// an export callback surfacing retired flows as 5-tuples. The table-layer
// mechanics (per-slot timestamp side-tables, the EvictableBackend slot
// walk) live in internal/table; see docs/ARCHITECTURE.md for the layer
// map.

// ExpiryConfig enables the engine's flow-lifecycle layer. Timeouts are in
// the units of the logical clock the caller passes to Advance — packet
// counts, sim.Clock cycles or wall nanoseconds all work; the engine never
// reads wall time itself. The zero value leaves expiry disabled.
type ExpiryConfig struct {
	// IdleTimeout retires flows not looked up or re-inserted for this
	// many time units. Zero disables idle expiry.
	IdleTimeout int64
	// ActiveTimeout retires flows resident for this many time units even
	// if still active (NetFlow's forced progress export). Zero disables
	// active expiry.
	ActiveTimeout int64
	// SweepBudget bounds the slots examined per shard per Advance call
	// (default 256), keeping writer/reader tail latency flat.
	SweepBudget int
}

// enabled reports whether the configuration asks for the lifecycle layer.
func (c ExpiryConfig) enabled() bool { return c.IdleTimeout > 0 || c.ActiveTimeout > 0 }

// ExpireReason re-exports the table layer's retirement classification.
type ExpireReason = table.ExpireReason

// Expire reasons, re-exported for callers switching on ExpiredFlow.Reason.
const (
	// ExpireIdle marks an idle-timeout retirement.
	ExpireIdle = table.ExpireIdle
	// ExpireActive marks an active-timeout retirement.
	ExpireActive = table.ExpireActive
	// ExpireEvicted marks a capacity-pressure reclamation by the
	// FullEvictIdlest overload policy (fired from the insert path).
	ExpireEvicted = table.ExpireEvicted
)

// FullPolicy re-exports the table layer's full-table degradation policy.
type FullPolicy = table.FullPolicy

// Full-table policies, re-exported for EngineConfig.OnFull.
const (
	// FullReject surfaces ErrTableFull to the inserter (the default).
	FullReject = table.FullReject
	// FullEvictIdlest evicts the least-recently-seen candidate slot and
	// admits the new flow; requires Expiry.
	FullEvictIdlest = table.FullEvictIdlest
)

// OverloadStats re-exports the table layer's pressure counters.
type OverloadStats = table.OverloadStats

// ExpiryStats re-exports the table layer's lifecycle counters.
type ExpiryStats = table.ExpiryStats

// ExpiredFlow is one retired flow as delivered to the Expired callback:
// the tuple it was stored under, its engine flow ID, its lifecycle
// timestamps on the caller's logical clock, and the retirement reason.
type ExpiredFlow struct {
	Tuple     FiveTuple
	ID        uint64
	FirstSeen int64
	LastSeen  int64
	Reason    ExpireReason
}

// Expired registers the export callback invoked by Advance for every
// retired flow — the engine's NetFlow export hook. It must be set before
// the first Advance call and not changed afterwards; without it, retired
// flows are reclaimed silently. The callback runs outside all shard
// locks, so it may safely call the engine's lookup/insert/delete paths;
// it must NOT call Advance, which still holds the sweep mutex and would
// self-deadlock. Expired panics when expiry was not enabled in
// EngineConfig (like Advance, it has no lifecycle layer to attach to).
func (e *Engine) Expired(fn func(ExpiredFlow)) {
	if fn == nil {
		for _, s := range e.tables() {
			s.OnExpired(nil)
		}
		return
	}
	spec := e.spec
	hook := func(tag uint64) table.ExpiredFunc {
		return func(id uint64, key []byte, first, last int64, reason table.ExpireReason) {
			ft, ok := spec.ParseKey(key)
			if !ok {
				return // cannot happen: the engine only stores keys it serialised
			}
			fn(ExpiredFlow{Tuple: ft, ID: id | tag, FirstSeen: first, LastSeen: last, Reason: reason})
		}
	}
	e.sharded.OnExpired(hook(0))
	if e.v6 != nil {
		e.v6.OnExpired(hook(v6IDBit))
	}
}

// Advance moves the engine's lifecycle clock to now and runs one bounded
// eviction sweep step across all shards, returning the number of flows
// retired by this call. Callers drive it at whatever cadence suits their
// clock (e.g. once per batch with now = packets processed); each shard's
// write lock is held for at most SweepBudget slot visits, and the sweep
// cursor persists so successive calls cover the whole table. Lookups and
// inserts between Advance calls are timestamped with the latest now.
// Advance panics when expiry was not enabled in EngineConfig. A
// dual-stack engine sweeps both family tables with the same clock.
func (e *Engine) Advance(now int64) int {
	n := e.sharded.Advance(now)
	if e.v6 != nil {
		n += e.v6.Advance(now)
	}
	return n
}

// ExpiryEnabled reports whether the lifecycle layer is active.
func (e *Engine) ExpiryEnabled() bool { return e.sharded.ExpiryEnabled() }

// ExpiryStats returns a snapshot of the lifecycle counters (sweeps, slots
// examined, evictions by reason); the zero value when expiry is disabled.
// A dual-stack engine sums both family tables.
func (e *Engine) ExpiryStats() ExpiryStats {
	st := e.sharded.ExpiryStats()
	if e.v6 != nil {
		st6 := e.v6.ExpiryStats()
		st.Sweeps += st6.Sweeps
		st.SlotsExamined += st6.SlotsExamined
		st.Evicted += st6.Evicted
		st.IdleEvicted += st6.IdleEvicted
		st.ActiveEvicted += st6.ActiveEvicted
		st.PressureEvicted += st6.PressureEvicted
	}
	return st
}

// Now returns the lifecycle clock's current value (the last Advance), or
// 0 when expiry is disabled.
func (e *Engine) Now() int64 { return e.sharded.Now() }

// enableExpiry wires cfg into every sharded table at construction.
func (e *Engine) enableExpiry(cfg ExpiryConfig) error {
	for _, s := range e.tables() {
		err := s.EnableExpiry(table.ExpiryConfig{
			IdleTimeout:   cfg.IdleTimeout,
			ActiveTimeout: cfg.ActiveTimeout,
			SweepBudget:   cfg.SweepBudget,
		})
		if err != nil {
			return fmt.Errorf("flowproc: engine expiry: %w", err)
		}
	}
	return nil
}
