package flowproc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	_ "repro/internal/baseline" // register the §II baseline backends
	"repro/internal/packet"
	"repro/internal/table"
)

// ErrNotIPv4 is returned (or implied by a miss) for tuples the engine
// cannot store: its backends are configured for the 13-byte IPv4 5-tuple
// key; IPv6 support is a capacity-planning decision left to a future PR.
var ErrNotIPv4 = errors.New("flowproc: engine requires a valid IPv4 5-tuple")

// Engine is the goroutine-safe, N-way sharded flow table: the software
// generalisation of the paper's dual-path design, where two DDR3 channels
// shard the table in hardware. Any registered backend (the paper's
// "hashcam", or a §II baseline: "cuckoo", "dleft", "singlehash",
// "convhashcam") can serve as the per-shard structure.
//
// All methods are safe for concurrent use; lookups run under shared
// (read) shard locks, so read-mostly traffic scales within a shard as
// well as across shards. The batch methods group keys by shard so each
// shard's lock is taken once per call and each key is hashed exactly once
// — the software analogue of the paper's burst grouping, which amortises
// fixed costs over consecutive accesses. Key serialisation and routing
// scratch come from a pool, so the steady-state lookup path performs zero
// heap allocations per key (see LookupBatchInto for the fully
// allocation-free form).
type Engine struct {
	sharded *table.Sharded
	spec    packet.TupleSpec
	backend string
	scratch sync.Pool // *engineScratch

	// scalarCache is the scalar ops' single-slot scratch cache: one atomic
	// Swap to take, one CompareAndSwap to return — cheaper than the
	// sync.Pool's per-P Get/Put pair on the scalar hot path, which only
	// ever needs the 13-byte key buffer. Concurrent scalar callers that
	// find the slot empty fall back to the pool, so the path stays
	// allocation-free at any parallelism.
	scalarCache atomic.Pointer[engineScratch]
}

// engineScratch is the pooled working set of one Engine call: serialised
// keys (headers + one shared backing buffer), original positions, and the
// sub-batch result buffers handed to the sharded table.
type engineScratch struct {
	keys [][]byte
	pos  []int
	buf  []byte
	ids  []uint64
	hits []bool
	oks  []bool
	errs []error
}

// EngineConfig parameterises an Engine.
type EngineConfig struct {
	// Backend selects the per-shard structure by registry name
	// (default "hashcam"). Backends() lists the choices.
	Backend string
	// Shards is the number of independently locked partitions
	// (default GOMAXPROCS).
	Shards int
	// Capacity is the approximate total flow capacity across all shards
	// (default 64k).
	Capacity int
	// CAMEntries is the total collision-store size for the Hash-CAM
	// family, divided across shards like Capacity (default 64).
	CAMEntries int
	// Expiry enables the flow-lifecycle layer: NetFlow-style idle/active
	// timeouts enforced by an incremental eviction sweep driven through
	// Advance. The zero value leaves it disabled; see ExpiryConfig.
	Expiry ExpiryConfig
	// DisableOptimisticReads forces every lookup through the shared
	// (RLock) shard locks even when the backend qualifies for the
	// seqlock-validated lock-free read path. The default (false) lets the
	// table serve optimistic reads whenever it can; results are
	// bit-identical either way, so this is a measurement and debugging
	// knob, not a correctness one. See table.Sharded and
	// docs/ARCHITECTURE.md "Concurrency model".
	DisableOptimisticReads bool
}

// Backends returns the registered backend names an Engine can use.
func Backends() []string { return table.Backends() }

// NewEngine builds a sharded engine from cfg.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Backend == "" {
		cfg.Backend = "hashcam"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("flowproc: engine capacity must not be negative, got %d", cfg.Capacity)
	}
	tcfg := table.Config{Capacity: cfg.Capacity, CAMCapacity: cfg.CAMEntries}
	sharded, err := table.NewSharded(cfg.Backend, cfg.Shards, tcfg, nil)
	if err != nil {
		return nil, fmt.Errorf("flowproc: engine: %w", err)
	}
	if cfg.DisableOptimisticReads {
		sharded.SetOptimisticReads(false)
	}
	e := &Engine{sharded: sharded, spec: packet.FiveTupleSpec(), backend: cfg.Backend}
	e.scratch.New = func() any { return new(engineScratch) }
	if cfg.Expiry.enabled() {
		if err := e.enableExpiry(cfg.Expiry); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Backend returns the name of the per-shard structure.
func (e *Engine) Backend() string { return e.backend }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.sharded.ShardCount() }

// storable reports whether ft serialises to the key the backends expect.
func storable(ft FiveTuple) bool { return ft.Valid() && ft.IsIPv4() }

// scalarKey serialises ft into sc's pooled buffer. The returned key is
// only valid until the scratch is released.
func (sc *engineScratch) scalarKey(spec packet.TupleSpec, ft FiveTuple) []byte {
	if cap(sc.buf) < 16 {
		sc.buf = make([]byte, 0, 64)
	}
	return spec.AppendKey(sc.buf[:0], ft)
}

// getScalar takes the scalar scratch: the cached slot when free, the pool
// otherwise.
func (e *Engine) getScalar() *engineScratch {
	if sc := e.scalarCache.Swap(nil); sc != nil {
		return sc
	}
	return e.scratch.Get().(*engineScratch)
}

// releaseScalar returns a scalar op's scratch, retaining any buffer
// growth; the scratch parks in the cache slot when it is free, otherwise
// it rejoins the pool.
func (e *Engine) releaseScalar(sc *engineScratch, buf []byte) {
	sc.buf = buf[:0]
	if e.scalarCache.CompareAndSwap(nil, sc) {
		return
	}
	e.scratch.Put(sc)
}

// Insert stores the flow if absent and returns its flow ID.
func (e *Engine) Insert(ft FiveTuple) (uint64, error) {
	if !storable(ft) {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, ErrNotIPv4)
	}
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	fid, err := e.sharded.Insert(key)
	e.releaseScalar(sc, key)
	if err != nil {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, err)
	}
	return fid, nil
}

// Lookup returns the flow ID of ft. A tuple the engine cannot store
// (non-IPv4) is simply never present. The steady-state path performs no
// heap allocations and no sync.Pool traffic.
func (e *Engine) Lookup(ft FiveTuple) (uint64, bool) {
	if !storable(ft) {
		return 0, false
	}
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	fid, ok := e.sharded.Lookup(key)
	e.releaseScalar(sc, key)
	return fid, ok
}

// Delete removes ft, reporting whether it was present.
func (e *Engine) Delete(ft FiveTuple) bool {
	if !storable(ft) {
		return false
	}
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	ok := e.sharded.Delete(key)
	e.releaseScalar(sc, key)
	return ok
}

// Len returns the stored flow count across all shards.
func (e *Engine) Len() int { return e.sharded.Len() }

// BytesPerSlot reports the average slot-storage cost of the underlying
// table in bytes per slot (inline keys, fingerprint tags, hash caches,
// expiry side-tables), or 0 when the backend does not report a footprint.
func (e *Engine) BytesPerSlot() float64 { return e.sharded.BytesPerSlot() }

// ShardLens returns the per-shard flow counts, the partition-balance
// gauge.
func (e *Engine) ShardLens() []int { return e.sharded.ShardLens() }

// ReadStats reports the optimistic read path's state and counters:
// whether lock-free reads are active, and the cumulative seqlock retries
// and RLock fallbacks across all shards. All-zero counters with
// Optimistic true simply mean readers never raced a writer.
func (e *Engine) ReadStats() table.ReadStats { return e.sharded.ReadStats() }

// validKeys serialises the storable subset of fts into the scratch's
// shared backing buffer (zero allocations once the pooled buffers have
// grown to the workload's batch size), populating sc.keys and sc.pos with
// the keys and their original positions. Non-IPv4 tuples are excluded —
// their keys would violate the backends' fixed 13-byte geometry.
func (e *Engine) validKeys(sc *engineScratch, fts []FiveTuple) {
	if cap(sc.keys) < len(fts) {
		sc.keys = make([][]byte, 0, len(fts))
	}
	if cap(sc.pos) < len(fts) {
		sc.pos = make([]int, 0, len(fts))
	}
	need := len(fts) * e.spec.KeyLen(true)
	if cap(sc.buf) < need {
		sc.buf = make([]byte, 0, need)
	}
	// The buffer never grows inside the loop (capacity ensured above), so
	// earlier key headers keep pointing into the live array.
	keys, pos, buf := sc.keys[:0], sc.pos[:0], sc.buf[:0]
	for i, ft := range fts {
		if !storable(ft) {
			continue
		}
		start := len(buf)
		buf = e.spec.AppendKey(buf, ft)
		// Full slice expression: a key slice never grows into its
		// neighbour even if a caller appends to it.
		keys = append(keys, buf[start:len(buf):len(buf)])
		pos = append(pos, i)
	}
	sc.keys, sc.pos, sc.buf = keys, pos, buf
}

// subResults sizes the scratch's sub-batch result buffers for n keys.
func (sc *engineScratch) subResults(n int) (ids []uint64, hits []bool) {
	if cap(sc.ids) < n {
		sc.ids = make([]uint64, n)
	}
	if cap(sc.hits) < n {
		sc.hits = make([]bool, n)
	}
	sc.ids, sc.hits = sc.ids[:n], sc.hits[:n]
	return sc.ids, sc.hits
}

// LookupBatch looks up a batch of flows; results are positional.
// Non-storable tuples report a miss. Steady state allocates only the two
// returned result slices, independent of batch size; use LookupBatchInto
// to avoid even those.
func (e *Engine) LookupBatch(fts []FiveTuple) (ids []uint64, hits []bool) {
	ids = make([]uint64, len(fts))
	hits = make([]bool, len(fts))
	e.LookupBatchInto(fts, ids, hits)
	return ids, hits
}

// LookupBatchInto is LookupBatch into caller-supplied result buffers,
// which must both have the length of fts; every element is overwritten.
// With reused buffers the steady-state hot path — key serialisation, the
// single hash pass, shard routing, bucket probing — performs zero heap
// allocations per call (a bound enforced by TestEngineLookupBatchIntoZeroAllocs).
func (e *Engine) LookupBatchInto(fts []FiveTuple, ids []uint64, hits []bool) {
	if len(ids) != len(fts) || len(hits) != len(fts) {
		panic(fmt.Sprintf("flowproc: LookupBatchInto buffers (%d ids, %d hits) do not match %d tuples",
			len(ids), len(hits), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		// Every tuple serialised: results are already positional, skip the
		// scatter through pos.
		e.sharded.LookupBatchInto(sc.keys, ids, hits)
		e.scratch.Put(sc)
		return
	}
	subIDs, subHits := sc.subResults(len(sc.keys))
	e.sharded.LookupBatchInto(sc.keys, subIDs, subHits)
	for i := range ids {
		ids[i], hits[i] = 0, false
	}
	for j, i := range sc.pos {
		ids[i], hits[i] = subIDs[j], subHits[j]
	}
	e.scratch.Put(sc)
}

// InsertBatch inserts a batch of flows. The returned ids are positional;
// err is non-nil if any insert failed (joined per-key errors, including
// ErrNotIPv4 for non-storable tuples). Zero is a legitimate flow ID, so
// callers needing per-position success should confirm with LookupBatch.
func (e *Engine) InsertBatch(fts []FiveTuple) (ids []uint64, err error) {
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	ids = make([]uint64, len(fts))
	var errs []error
	if len(sc.pos) < len(fts) {
		errs = make([]error, len(fts))
		valid := make([]bool, len(fts))
		for _, i := range sc.pos {
			valid[i] = true
		}
		for i := range fts {
			if !valid[i] {
				errs[i] = fmt.Errorf("flowproc: engine insert %v: %w", fts[i], ErrNotIPv4)
			}
		}
	}
	subIDs, subErrs := e.sharded.InsertBatch(sc.keys)
	for j, i := range sc.pos {
		ids[i] = subIDs[j]
		if subErrs != nil && subErrs[j] != nil {
			if errs == nil {
				errs = make([]error, len(fts))
			}
			errs[i] = subErrs[j]
		}
	}
	e.scratch.Put(sc)
	return ids, table.BatchErr(errs)
}

// InsertBatchInto is InsertBatch into caller-supplied result buffers,
// which must both have the length of fts; every element is overwritten.
// errs[i] is nil on success, the per-key failure otherwise; non-storable
// tuples report the bare ErrNotIPv4 sentinel (the scalar Insert's
// contextual wrapping allocates, which the writer hot path must not —
// callers needing the tuple have it positionally). With reused buffers the
// steady-state insert path performs zero heap allocations per call, the
// writer-side completion of the zero-alloc story (enforced by
// TestEngineInsertBatchIntoZeroAllocs).
func (e *Engine) InsertBatchInto(fts []FiveTuple, ids []uint64, errs []error) {
	if len(ids) != len(fts) || len(errs) != len(fts) {
		panic(fmt.Sprintf("flowproc: InsertBatchInto buffers (%d ids, %d errs) do not match %d tuples",
			len(ids), len(errs), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		// Every tuple serialised: results are already positional.
		e.sharded.InsertBatchInto(sc.keys, ids, errs)
		e.scratch.Put(sc)
		return
	}
	subIDs, _ := sc.subResults(len(sc.keys))
	if cap(sc.errs) < len(sc.keys) {
		sc.errs = make([]error, len(sc.keys))
	}
	subErrs := sc.errs[:len(sc.keys)]
	e.sharded.InsertBatchInto(sc.keys, subIDs, subErrs)
	for i := range ids {
		ids[i] = 0
		errs[i] = ErrNotIPv4
	}
	for j, i := range sc.pos {
		ids[i], errs[i] = subIDs[j], subErrs[j]
		subErrs[j] = nil // failures must not outlive the call inside the pool
	}
	e.scratch.Put(sc)
}

// DeleteBatch deletes a batch of flows, reporting per-flow presence
// positionally. Non-storable tuples report absent.
func (e *Engine) DeleteBatch(fts []FiveTuple) []bool {
	ok := make([]bool, len(fts))
	e.DeleteBatchInto(fts, ok)
	return ok
}

// DeleteBatchInto is DeleteBatch into a caller-supplied result buffer,
// which must have the length of fts; every element is overwritten. Like
// LookupBatchInto, the steady-state path allocates nothing.
func (e *Engine) DeleteBatchInto(fts []FiveTuple, ok []bool) {
	if len(ok) != len(fts) {
		panic(fmt.Sprintf("flowproc: DeleteBatchInto buffer (%d) does not match %d tuples", len(ok), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		e.sharded.DeleteBatchInto(sc.keys, ok)
		e.scratch.Put(sc)
		return
	}
	if cap(sc.oks) < len(sc.keys) {
		sc.oks = make([]bool, len(sc.keys))
	}
	sc.oks = sc.oks[:len(sc.keys)]
	e.sharded.DeleteBatchInto(sc.keys, sc.oks)
	for i := range ok {
		ok[i] = false
	}
	for j, i := range sc.pos {
		ok[i] = sc.oks[j]
	}
	e.scratch.Put(sc)
}
