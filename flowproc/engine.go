package flowproc

import (
	"errors"
	"fmt"
	"runtime"

	_ "repro/internal/baseline" // register the §II baseline backends
	"repro/internal/packet"
	"repro/internal/table"
)

// ErrNotIPv4 is returned (or implied by a miss) for tuples the engine
// cannot store: its backends are configured for the 13-byte IPv4 5-tuple
// key; IPv6 support is a capacity-planning decision left to a future PR.
var ErrNotIPv4 = errors.New("flowproc: engine requires a valid IPv4 5-tuple")

// Engine is the goroutine-safe, N-way sharded flow table: the software
// generalisation of the paper's dual-path design, where two DDR3 channels
// shard the table in hardware. Any registered backend (the paper's
// "hashcam", or a §II baseline: "cuckoo", "dleft", "singlehash",
// "convhashcam") can serve as the per-shard structure.
//
// All methods are safe for concurrent use. The batch methods group keys
// by shard so each shard's lock is taken once per call and routing hashes
// are computed once per key — the software analogue of the paper's burst
// grouping, which amortises fixed costs over consecutive accesses.
type Engine struct {
	sharded *table.Sharded
	spec    packet.TupleSpec
	backend string
}

// EngineConfig parameterises an Engine.
type EngineConfig struct {
	// Backend selects the per-shard structure by registry name
	// (default "hashcam"). Backends() lists the choices.
	Backend string
	// Shards is the number of independently locked partitions
	// (default GOMAXPROCS).
	Shards int
	// Capacity is the approximate total flow capacity across all shards
	// (default 64k).
	Capacity int
	// CAMEntries is the total collision-store size for the Hash-CAM
	// family, divided across shards like Capacity (default 64).
	CAMEntries int
}

// Backends returns the registered backend names an Engine can use.
func Backends() []string { return table.Backends() }

// NewEngine builds a sharded engine from cfg.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Backend == "" {
		cfg.Backend = "hashcam"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("flowproc: engine capacity must not be negative, got %d", cfg.Capacity)
	}
	tcfg := table.Config{Capacity: cfg.Capacity, CAMCapacity: cfg.CAMEntries}
	sharded, err := table.NewSharded(cfg.Backend, cfg.Shards, tcfg, nil)
	if err != nil {
		return nil, fmt.Errorf("flowproc: engine: %w", err)
	}
	return &Engine{sharded: sharded, spec: packet.FiveTupleSpec(), backend: cfg.Backend}, nil
}

// Backend returns the name of the per-shard structure.
func (e *Engine) Backend() string { return e.backend }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.sharded.ShardCount() }

// storable reports whether ft serialises to the key the backends expect.
func storable(ft FiveTuple) bool { return ft.Valid() && ft.IsIPv4() }

// Insert stores the flow if absent and returns its flow ID.
func (e *Engine) Insert(ft FiveTuple) (uint64, error) {
	if !storable(ft) {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, ErrNotIPv4)
	}
	fid, err := e.sharded.Insert(e.spec.Key(ft))
	if err != nil {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, err)
	}
	return fid, nil
}

// Lookup returns the flow ID of ft. A tuple the engine cannot store
// (non-IPv4) is simply never present.
func (e *Engine) Lookup(ft FiveTuple) (uint64, bool) {
	if !storable(ft) {
		return 0, false
	}
	return e.sharded.Lookup(e.spec.Key(ft))
}

// Delete removes ft, reporting whether it was present.
func (e *Engine) Delete(ft FiveTuple) bool {
	if !storable(ft) {
		return false
	}
	return e.sharded.Delete(e.spec.Key(ft))
}

// Len returns the stored flow count across all shards.
func (e *Engine) Len() int { return e.sharded.Len() }

// ShardLens returns the per-shard flow counts, the partition-balance
// gauge.
func (e *Engine) ShardLens() []int { return e.sharded.ShardLens() }

// validKeys serialises the storable subset of fts into one shared backing
// buffer (two allocations per batch instead of one per key), returning
// the keys and their original positions. Non-IPv4 tuples are excluded —
// their keys would violate the backends' fixed 13-byte geometry.
func (e *Engine) validKeys(fts []FiveTuple) (keys [][]byte, pos []int) {
	keys = make([][]byte, 0, len(fts))
	pos = make([]int, 0, len(fts))
	buf := make([]byte, 0, len(fts)*e.spec.KeyLen(true))
	for i, ft := range fts {
		if !storable(ft) {
			continue
		}
		start := len(buf)
		buf = e.spec.AppendKey(buf, ft)
		// Full slice expression: a key slice never grows into its
		// neighbour even if a caller appends to it.
		keys = append(keys, buf[start:len(buf):len(buf)])
		pos = append(pos, i)
	}
	return keys, pos
}

// LookupBatch looks up a batch of flows; results are positional.
// Non-storable tuples report a miss.
func (e *Engine) LookupBatch(fts []FiveTuple) (ids []uint64, hits []bool) {
	keys, pos := e.validKeys(fts)
	ids = make([]uint64, len(fts))
	hits = make([]bool, len(fts))
	subIDs, subHits := e.sharded.LookupBatch(keys)
	for j, i := range pos {
		ids[i], hits[i] = subIDs[j], subHits[j]
	}
	return ids, hits
}

// InsertBatch inserts a batch of flows. The returned ids are positional;
// err is non-nil if any insert failed (joined per-key errors, including
// ErrNotIPv4 for non-storable tuples). Zero is a legitimate flow ID, so
// callers needing per-position success should confirm with LookupBatch.
func (e *Engine) InsertBatch(fts []FiveTuple) (ids []uint64, err error) {
	keys, pos := e.validKeys(fts)
	ids = make([]uint64, len(fts))
	var errs []error
	if len(pos) < len(fts) {
		errs = make([]error, len(fts))
		valid := make([]bool, len(fts))
		for _, i := range pos {
			valid[i] = true
		}
		for i := range fts {
			if !valid[i] {
				errs[i] = fmt.Errorf("flowproc: engine insert %v: %w", fts[i], ErrNotIPv4)
			}
		}
	}
	subIDs, subErrs := e.sharded.InsertBatch(keys)
	for j, i := range pos {
		ids[i] = subIDs[j]
		if subErrs != nil && subErrs[j] != nil {
			if errs == nil {
				errs = make([]error, len(fts))
			}
			errs[i] = subErrs[j]
		}
	}
	return ids, table.BatchErr(errs)
}

// DeleteBatch deletes a batch of flows, reporting per-flow presence
// positionally. Non-storable tuples report absent.
func (e *Engine) DeleteBatch(fts []FiveTuple) []bool {
	keys, pos := e.validKeys(fts)
	ok := make([]bool, len(fts))
	sub := e.sharded.DeleteBatch(keys)
	for j, i := range pos {
		ok[i] = sub[j]
	}
	return ok
}
