package flowproc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	_ "repro/internal/baseline" // register the §II baseline backends
	"repro/internal/hashfn"
	"repro/internal/packet"
	"repro/internal/table"
)

// ErrNotIPv4 is returned (or implied by a miss) for tuples the engine
// cannot store: invalid tuples always, and IPv6 tuples unless the engine
// was built with DualStack (which adds a second table for the 37-byte
// IPv6 key).
var ErrNotIPv4 = errors.New("flowproc: engine requires a valid IPv4 5-tuple (enable DualStack for IPv6)")

// v6IDBit tags the flow IDs of the dual-stack engine's IPv6 table so IDs
// stay unique across both address families. Table-local IDs are derived
// from physical slot locations and never approach bit 63.
const v6IDBit = uint64(1) << 63

// Engine is the goroutine-safe, N-way sharded flow table: the software
// generalisation of the paper's dual-path design, where two DDR3 channels
// shard the table in hardware. Any registered backend (the paper's
// "hashcam", or a §II baseline: "cuckoo", "dleft", "singlehash",
// "convhashcam") can serve as the per-shard structure.
//
// All methods are safe for concurrent use; lookups run under shared
// (read) shard locks, so read-mostly traffic scales within a shard as
// well as across shards. The batch methods group keys by shard so each
// shard's lock is taken once per call and each key is hashed exactly once
// — the software analogue of the paper's burst grouping, which amortises
// fixed costs over consecutive accesses. Key serialisation and routing
// scratch come from a pool, so the steady-state lookup path performs zero
// heap allocations per key (see LookupBatchInto for the fully
// allocation-free form).
type Engine struct {
	sharded *table.Sharded
	v6      *table.Sharded // IPv6 twin table; nil unless DualStack
	spec    packet.TupleSpec
	backend string
	seed    uint64    // resolved hash seed; 0 under FixedHash
	scratch sync.Pool // *engineScratch

	// scalarCache is the scalar ops' single-slot scratch cache: one atomic
	// Swap to take, one CompareAndSwap to return — cheaper than the
	// sync.Pool's per-P Get/Put pair on the scalar hot path, which only
	// ever needs the 13-byte key buffer. Concurrent scalar callers that
	// find the slot empty fall back to the pool, so the path stays
	// allocation-free at any parallelism.
	scalarCache atomic.Pointer[engineScratch]
}

// engineScratch is the pooled working set of one Engine call: serialised
// keys (headers + one shared backing buffer), original positions, and the
// sub-batch result buffers handed to the sharded table.
type engineScratch struct {
	keys  [][]byte
	pos   []int
	keys6 [][]byte // IPv6 partition (dual-stack engines only)
	pos6  []int
	buf   []byte
	ids   []uint64
	hits  []bool
	oks   []bool
	errs  []error
}

// EngineConfig parameterises an Engine.
type EngineConfig struct {
	// Backend selects the per-shard structure by registry name
	// (default "hashcam"). Backends() lists the choices.
	Backend string
	// Shards is the number of independently locked partitions
	// (default GOMAXPROCS).
	Shards int
	// Capacity is the approximate total flow capacity across all shards
	// (default 64k).
	Capacity int
	// CAMEntries is the total collision-store size for the Hash-CAM
	// family, divided across shards like Capacity (default 64).
	CAMEntries int
	// Expiry enables the flow-lifecycle layer: NetFlow-style idle/active
	// timeouts enforced by an incremental eviction sweep driven through
	// Advance. The zero value leaves it disabled; see ExpiryConfig.
	Expiry ExpiryConfig
	// DisableOptimisticReads forces every lookup through the shared
	// (RLock) shard locks even when the backend qualifies for the
	// seqlock-validated lock-free read path. The default (false) lets the
	// table serve optimistic reads whenever it can; results are
	// bit-identical either way, so this is a measurement and debugging
	// knob, not a correctness one. See table.Sharded and
	// docs/ARCHITECTURE.md "Concurrency model".
	DisableOptimisticReads bool
	// SeqlockStripes sets the per-shard seqlock stripe count for the
	// lock-free read path's two-level validation: 0 (the default) derives
	// a power of two from the shard slot capacity, 1 forces the
	// single-word protocol (every write invalidates every in-flight read
	// on its shard — the pre-striping behaviour, kept as a measurement
	// control), and an explicit power of two requests that many stripes,
	// clamped to the backend's stripe bound and 512. Any other value is a
	// construction error. Results are bit-identical at every setting; only
	// contention behaviour changes. See docs/ARCHITECTURE.md "Concurrency
	// model".
	SeqlockStripes int
	// HashSeed keys the engine's hash functions and shard selector. Zero
	// (the default) draws a fresh random seed at construction, so bucket
	// placement is unpredictable to senders — the defence against
	// algorithmic-complexity attacks that mine hash-colliding tuples
	// offline. Set a non-zero seed only to reproduce placement across
	// runs (tests, differential harnesses); flow IDs are location-derived,
	// so they are only stable across engines sharing a seed. Ignored under
	// FixedHash.
	HashSeed uint64
	// FixedHash restores the historical unkeyed hash family (the CRC pair
	// with the fixed selector constant). CRC's collision structure is
	// seed-independent and minable offline, so a fixed-hash engine is
	// degradable by crafted traffic — the knob exists for measurement
	// (the attack suite demonstrates the failure mode against it) and for
	// bit-compatibility with pre-keyed deployments, not for production.
	FixedHash bool
	// DualStack adds a second sharded table for IPv6 flows (37-byte
	// 5-tuple keys, the spill-path storage layout), with the same
	// backend, shard count, capacity and seed as the IPv4 table. IPv6
	// flow IDs carry bit 63 so IDs stay unique across families. Off by
	// default: a v4-only deployment pays nothing.
	DualStack bool
	// OnFull selects the full-table degradation policy (default
	// table.FullReject: surface ErrTableFull and count it).
	// table.FullEvictIdlest reclaims the least-recently-seen candidate
	// slot and admits the new flow instead; it requires Expiry, whose
	// timestamps define "idlest". See docs/ARCHITECTURE.md "Threat model
	// & degradation".
	OnFull table.FullPolicy
	// Admission configures the sketch-gated admission filter: a non-zero
	// Threshold defers every insert of a new flow with
	// ErrAdmissionDeferred until the flow's counting-sketch estimate —
	// bumped once per insert attempt — reaches the threshold, so heavy
	// hitters get exact slots while the one-packet-flow tail stays in
	// the sketch's few bytes per counter. Gated flows are invisible to
	// Len, the load factor and auto-grow. DecayEpochs requires Expiry.
	// See docs/ARCHITECTURE.md "Admission gating".
	Admission AdmissionConfig
	// Growth configures elastic capacity: a non-zero MaxLoadFactor arms
	// per-shard auto-grow when real occupancy (against Capacity(), the
	// post-rounding slot count) crosses the threshold, with migration
	// amortised over subsequent writes and Advance calls in StepBudget
	// slot examinations per step. Requires a backend implementing
	// table.GrowableBackend (hashcam, dleft, singlehash); the zero value
	// keeps the historical fixed-capacity behaviour. See
	// docs/ARCHITECTURE.md "Elastic capacity".
	Growth table.GrowthConfig
}

// Backends returns the registered backend names an Engine can use.
func Backends() []string { return table.Backends() }

// NewEngine builds a sharded engine from cfg.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Backend == "" {
		cfg.Backend = "hashcam"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("flowproc: engine capacity must not be negative, got %d", cfg.Capacity)
	}
	if cfg.OnFull == table.FullEvictIdlest && !cfg.Expiry.enabled() {
		return nil, errors.New("flowproc: OnFull=FullEvictIdlest requires Expiry (its timestamps define the idlest slot)")
	}
	if cfg.Admission.enabled() && cfg.Admission.DecayEpochs > 0 && !cfg.Expiry.enabled() {
		return nil, errors.New("flowproc: Admission.DecayEpochs requires Expiry (the Advance clock drives sketch decay)")
	}
	seed := uint64(0)
	if !cfg.FixedHash {
		seed = cfg.HashSeed
		if seed == 0 {
			seed = hashfn.RandomSeed()
		}
	}
	tcfg := table.Config{
		Capacity: cfg.Capacity, CAMCapacity: cfg.CAMEntries,
		HashSeed: seed, OnFull: cfg.OnFull,
		SeqlockStripes: cfg.SeqlockStripes,
	}
	sharded, err := table.NewSharded(cfg.Backend, cfg.Shards, tcfg, nil)
	if err != nil {
		return nil, fmt.Errorf("flowproc: engine: %w", err)
	}
	e := &Engine{sharded: sharded, spec: packet.FiveTupleSpec(), backend: cfg.Backend, seed: seed}
	if cfg.DualStack {
		tcfg6 := tcfg
		tcfg6.KeyLen = e.spec.KeyLen(false)
		e.v6, err = table.NewSharded(cfg.Backend, cfg.Shards, tcfg6, nil)
		if err != nil {
			return nil, fmt.Errorf("flowproc: engine (IPv6 table): %w", err)
		}
	}
	if cfg.DisableOptimisticReads {
		for _, s := range e.tables() {
			s.SetOptimisticReads(false)
		}
	}
	if cfg.Growth != (table.GrowthConfig{}) {
		for _, s := range e.tables() {
			if err := s.SetGrowth(cfg.Growth); err != nil {
				return nil, fmt.Errorf("flowproc: engine growth: %w", err)
			}
		}
	}
	e.scratch.New = func() any { return new(engineScratch) }
	if cfg.Expiry.enabled() {
		if err := e.enableExpiry(cfg.Expiry); err != nil {
			return nil, err
		}
	}
	// After expiry: SetAdmission validates DecayEpochs against the
	// already-armed lifecycle layer.
	if cfg.Admission.enabled() {
		if err := e.enableAdmission(cfg.Admission); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// tables returns the engine's live sharded tables (IPv4 always, IPv6 when
// dual-stack).
func (e *Engine) tables() []*table.Sharded {
	if e.v6 == nil {
		return []*table.Sharded{e.sharded}
	}
	return []*table.Sharded{e.sharded, e.v6}
}

// HashSeed returns the seed keying the engine's hash functions and shard
// selector — the value to pass as EngineConfig.HashSeed to rebuild an
// engine with identical placement. It is 0 under FixedHash.
func (e *Engine) HashSeed() uint64 { return e.seed }

// DualStack reports whether the engine stores IPv6 flows.
func (e *Engine) DualStack() bool { return e.v6 != nil }

// FullPolicy returns the active full-table degradation policy.
func (e *Engine) FullPolicy() table.FullPolicy { return e.sharded.FullPolicy() }

// OverloadStats aggregates the full-table pressure counters across both
// address families' tables: inserts rejected with ErrTableFull and flows
// evicted to make room under table.FullEvictIdlest.
func (e *Engine) OverloadStats() table.OverloadStats {
	var os table.OverloadStats
	for _, s := range e.tables() {
		t := s.OverloadStats()
		os.RejectedInserts += t.RejectedInserts
		os.PressureEvictions += t.PressureEvictions
	}
	return os
}

// Backend returns the name of the per-shard structure.
func (e *Engine) Backend() string { return e.backend }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.sharded.ShardCount() }

// Stripes returns the effective per-shard seqlock stripe count after
// auto-sizing and backend clamping — 1 means the single-word protocol.
// Both address families share one configuration, so one number describes
// the whole engine.
func (e *Engine) Stripes() int { return e.sharded.Stripes() }

// Capacity returns the engine's real slot capacity — the sum of every
// shard's backend slot bound across both address families' tables. This
// is the post-rounding figure (per-shard bucket counts round up to powers
// of two, so it can exceed EngineConfig.Capacity by up to ~2×) and the
// denominator auto-grow measures occupancy against; during a grow it
// reflects the already-enlarged live arenas. Returns 0 if any table's
// backend does not expose a slot bound.
func (e *Engine) Capacity() int64 {
	var n int64
	for _, s := range e.tables() {
		c := s.SlotCapacity()
		if c == 0 {
			return 0
		}
		n += c
	}
	return n
}

// Grow starts an explicit online grow of every shard of both address
// families' tables to factor × the current capacity target. It returns
// once migration has begun everywhere; draining is amortised over
// subsequent writes and Advance calls. Fails if the backend does not
// implement table.GrowableBackend.
func (e *Engine) Grow(factor int) error {
	for _, s := range e.tables() {
		if err := s.Grow(factor); err != nil {
			return fmt.Errorf("flowproc: engine grow: %w", err)
		}
	}
	return nil
}

// GrowStats aggregates the elastic-capacity counters across both address
// families' tables.
func (e *Engine) GrowStats() table.GrowStats {
	var gs table.GrowStats
	for _, s := range e.tables() {
		t := s.GrowStats()
		gs.Grows += t.Grows
		gs.ActiveGrows += t.ActiveGrows
		gs.MigrateSteps += t.MigrateSteps
		gs.MigratedSlots += t.MigratedSlots
		gs.DroppedSlots += t.DroppedSlots
		gs.OldArenaReads += t.OldArenaReads
	}
	return gs
}

// storable reports whether ft serialises to a key one of the engine's
// tables accepts.
func (e *Engine) storable(ft FiveTuple) bool {
	return ft.Valid() && (ft.IsIPv4() || e.v6 != nil)
}

// route returns the table serving ft's address family and the ID tag its
// flow IDs carry. Callers must have checked storable first.
func (e *Engine) route(ft FiveTuple) (*table.Sharded, uint64) {
	if ft.IsIPv4() {
		return e.sharded, 0
	}
	return e.v6, v6IDBit
}

// scalarKey serialises ft into sc's pooled buffer. The returned key is
// only valid until the scratch is released.
func (sc *engineScratch) scalarKey(spec packet.TupleSpec, ft FiveTuple) []byte {
	if cap(sc.buf) < 37 {
		sc.buf = make([]byte, 0, 64)
	}
	return spec.AppendKey(sc.buf[:0], ft)
}

// getScalar takes the scalar scratch: the cached slot when free, the pool
// otherwise.
func (e *Engine) getScalar() *engineScratch {
	if sc := e.scalarCache.Swap(nil); sc != nil {
		return sc
	}
	return e.scratch.Get().(*engineScratch)
}

// releaseScalar returns a scalar op's scratch, retaining any buffer
// growth; the scratch parks in the cache slot when it is free, otherwise
// it rejoins the pool.
func (e *Engine) releaseScalar(sc *engineScratch, buf []byte) {
	sc.buf = buf[:0]
	if e.scalarCache.CompareAndSwap(nil, sc) {
		return
	}
	e.scratch.Put(sc)
}

// Insert stores the flow if absent and returns its flow ID.
func (e *Engine) Insert(ft FiveTuple) (uint64, error) {
	if !e.storable(ft) {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, ErrNotIPv4)
	}
	tbl, tag := e.route(ft)
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	fid, err := tbl.Insert(key)
	e.releaseScalar(sc, key)
	if err != nil {
		return 0, fmt.Errorf("flowproc: engine insert %v: %w", ft, err)
	}
	return fid | tag, nil
}

// Lookup returns the flow ID of ft. A tuple the engine cannot store
// (invalid, or IPv6 without DualStack) is simply never present. The
// steady-state path performs no heap allocations and no sync.Pool
// traffic.
func (e *Engine) Lookup(ft FiveTuple) (uint64, bool) {
	if !e.storable(ft) {
		return 0, false
	}
	tbl, tag := e.route(ft)
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	fid, ok := tbl.Lookup(key)
	e.releaseScalar(sc, key)
	if !ok {
		return 0, false
	}
	return fid | tag, true
}

// Delete removes ft, reporting whether it was present.
func (e *Engine) Delete(ft FiveTuple) bool {
	if !e.storable(ft) {
		return false
	}
	tbl, _ := e.route(ft)
	sc := e.getScalar()
	key := sc.scalarKey(e.spec, ft)
	ok := tbl.Delete(key)
	e.releaseScalar(sc, key)
	return ok
}

// Len returns the stored flow count across all shards of both address
// families.
func (e *Engine) Len() int {
	n := e.sharded.Len()
	if e.v6 != nil {
		n += e.v6.Len()
	}
	return n
}

// BytesPerSlot reports the average slot-storage cost of the underlying
// table in bytes per slot (inline keys, fingerprint tags, hash caches,
// expiry side-tables), or 0 when the backend does not report a footprint.
// A dual-stack engine reports the mean of the two family tables (the
// IPv6 table stores 37-byte spilled keys and costs more per slot).
func (e *Engine) BytesPerSlot() float64 {
	b := e.sharded.BytesPerSlot()
	if e.v6 != nil {
		b = (b + e.v6.BytesPerSlot()) / 2
	}
	return b
}

// ShardLens returns the per-shard flow counts, the partition-balance
// gauge; on a dual-stack engine shard i sums both families' shard i.
func (e *Engine) ShardLens() []int {
	lens := e.sharded.ShardLens()
	if e.v6 != nil {
		for i, n := range e.v6.ShardLens() {
			lens[i] += n
		}
	}
	return lens
}

// ReadStats reports the optimistic read path's state and counters:
// whether lock-free reads are active, and the cumulative seqlock retries
// and RLock fallbacks across all shards. All-zero counters with
// Optimistic true simply mean readers never raced a writer. A dual-stack
// engine sums both tables' counters and reports the IPv4 table's
// Optimistic bit (the 37-byte IPv6 keys spill past the inline slot
// layout, so that table always reads under RLock).
func (e *Engine) ReadStats() table.ReadStats {
	rs := e.sharded.ReadStats()
	if e.v6 != nil {
		rs6 := e.v6.ReadStats()
		rs.StripeRetries += rs6.StripeRetries
		rs.GlobalRetries += rs6.GlobalRetries
		rs.Retries += rs6.Retries
		rs.Fallbacks += rs6.Fallbacks
	}
	return rs
}

// validKeys serialises the storable subset of fts into the scratch's
// shared backing buffer (zero allocations once the pooled buffers have
// grown to the workload's batch size), partitioning by address family:
// sc.keys/sc.pos carry the IPv4 keys and their original positions,
// sc.keys6/sc.pos6 the IPv6 ones (always empty on a single-stack
// engine). Non-storable tuples are excluded — their keys would violate
// the tables' fixed key geometry.
func (e *Engine) validKeys(sc *engineScratch, fts []FiveTuple) {
	if cap(sc.keys) < len(fts) {
		sc.keys = make([][]byte, 0, len(fts))
	}
	if cap(sc.pos) < len(fts) {
		sc.pos = make([]int, 0, len(fts))
	}
	need := len(fts) * e.spec.KeyLen(true)
	if e.v6 != nil {
		// Worst case every tuple is IPv6-sized; both partitions share buf.
		need = len(fts) * e.spec.KeyLen(false)
		if cap(sc.keys6) < len(fts) {
			sc.keys6 = make([][]byte, 0, len(fts))
		}
		if cap(sc.pos6) < len(fts) {
			sc.pos6 = make([]int, 0, len(fts))
		}
	}
	if cap(sc.buf) < need {
		sc.buf = make([]byte, 0, need)
	}
	// The buffer never grows inside the loop (capacity ensured above), so
	// earlier key headers keep pointing into the live array.
	keys, pos, buf := sc.keys[:0], sc.pos[:0], sc.buf[:0]
	keys6, pos6 := sc.keys6[:0], sc.pos6[:0]
	for i, ft := range fts {
		if !e.storable(ft) {
			continue
		}
		start := len(buf)
		buf = e.spec.AppendKey(buf, ft)
		// Full slice expression: a key slice never grows into its
		// neighbour even if a caller appends to it.
		if ft.IsIPv4() {
			keys = append(keys, buf[start:len(buf):len(buf)])
			pos = append(pos, i)
		} else {
			keys6 = append(keys6, buf[start:len(buf):len(buf)])
			pos6 = append(pos6, i)
		}
	}
	sc.keys, sc.pos, sc.buf = keys, pos, buf
	sc.keys6, sc.pos6 = keys6, pos6
}

// subResults sizes the scratch's sub-batch result buffers for n keys.
func (sc *engineScratch) subResults(n int) (ids []uint64, hits []bool) {
	if cap(sc.ids) < n {
		sc.ids = make([]uint64, n)
	}
	if cap(sc.hits) < n {
		sc.hits = make([]bool, n)
	}
	sc.ids, sc.hits = sc.ids[:n], sc.hits[:n]
	return sc.ids, sc.hits
}

// LookupBatch looks up a batch of flows; results are positional.
// Non-storable tuples report a miss. Steady state allocates only the two
// returned result slices, independent of batch size; use LookupBatchInto
// to avoid even those.
func (e *Engine) LookupBatch(fts []FiveTuple) (ids []uint64, hits []bool) {
	ids = make([]uint64, len(fts))
	hits = make([]bool, len(fts))
	e.LookupBatchInto(fts, ids, hits)
	return ids, hits
}

// LookupBatchInto is LookupBatch into caller-supplied result buffers,
// which must both have the length of fts; every element is overwritten.
// With reused buffers the steady-state hot path — key serialisation, the
// single hash pass, shard routing, bucket probing — performs zero heap
// allocations per call (a bound enforced by TestEngineLookupBatchIntoZeroAllocs).
func (e *Engine) LookupBatchInto(fts []FiveTuple, ids []uint64, hits []bool) {
	if len(ids) != len(fts) || len(hits) != len(fts) {
		panic(fmt.Sprintf("flowproc: LookupBatchInto buffers (%d ids, %d hits) do not match %d tuples",
			len(ids), len(hits), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		// Every tuple serialised as IPv4: results are already positional,
		// skip the scatter through pos.
		e.sharded.LookupBatchInto(sc.keys, ids, hits)
		e.scratch.Put(sc)
		return
	}
	n4 := len(sc.keys)
	subIDs, subHits := sc.subResults(n4 + len(sc.keys6))
	if n4 > 0 {
		e.sharded.LookupBatchInto(sc.keys, subIDs[:n4], subHits[:n4])
	}
	if len(sc.keys6) > 0 {
		e.v6.LookupBatchInto(sc.keys6, subIDs[n4:], subHits[n4:])
	}
	for i := range ids {
		ids[i], hits[i] = 0, false
	}
	for j, i := range sc.pos {
		ids[i], hits[i] = subIDs[j], subHits[j]
	}
	for j, i := range sc.pos6 {
		if subHits[n4+j] {
			ids[i], hits[i] = subIDs[n4+j]|v6IDBit, true
		}
	}
	e.scratch.Put(sc)
}

// InsertBatch inserts a batch of flows. The returned ids are positional;
// err is non-nil if any insert failed (joined per-key errors, including
// ErrNotIPv4 for non-storable tuples). Zero is a legitimate flow ID, so
// callers needing per-position success should confirm with LookupBatch.
func (e *Engine) InsertBatch(fts []FiveTuple) (ids []uint64, err error) {
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	ids = make([]uint64, len(fts))
	var errs []error
	if len(sc.pos)+len(sc.pos6) < len(fts) {
		errs = make([]error, len(fts))
		valid := make([]bool, len(fts))
		for _, i := range sc.pos {
			valid[i] = true
		}
		for _, i := range sc.pos6 {
			valid[i] = true
		}
		for i := range fts {
			if !valid[i] {
				errs[i] = fmt.Errorf("flowproc: engine insert %v: %w", fts[i], ErrNotIPv4)
			}
		}
	}
	subIDs, subErrs := e.sharded.InsertBatch(sc.keys)
	for j, i := range sc.pos {
		ids[i] = subIDs[j]
		if subErrs != nil && subErrs[j] != nil {
			if errs == nil {
				errs = make([]error, len(fts))
			}
			errs[i] = subErrs[j]
		}
	}
	if len(sc.keys6) > 0 {
		subIDs6, subErrs6 := e.v6.InsertBatch(sc.keys6)
		for j, i := range sc.pos6 {
			if subErrs6 != nil && subErrs6[j] != nil {
				if errs == nil {
					errs = make([]error, len(fts))
				}
				errs[i] = subErrs6[j]
				continue
			}
			ids[i] = subIDs6[j] | v6IDBit
		}
	}
	e.scratch.Put(sc)
	return ids, table.BatchErr(errs)
}

// InsertBatchInto is InsertBatch into caller-supplied result buffers,
// which must both have the length of fts; every element is overwritten.
// errs[i] is nil on success, the per-key failure otherwise; non-storable
// tuples report the bare ErrNotIPv4 sentinel (the scalar Insert's
// contextual wrapping allocates, which the writer hot path must not —
// callers needing the tuple have it positionally). With reused buffers the
// steady-state insert path performs zero heap allocations per call, the
// writer-side completion of the zero-alloc story (enforced by
// TestEngineInsertBatchIntoZeroAllocs).
func (e *Engine) InsertBatchInto(fts []FiveTuple, ids []uint64, errs []error) {
	if len(ids) != len(fts) || len(errs) != len(fts) {
		panic(fmt.Sprintf("flowproc: InsertBatchInto buffers (%d ids, %d errs) do not match %d tuples",
			len(ids), len(errs), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		// Every tuple serialised as IPv4: results are already positional.
		e.sharded.InsertBatchInto(sc.keys, ids, errs)
		e.scratch.Put(sc)
		return
	}
	n4 := len(sc.keys)
	nAll := n4 + len(sc.keys6)
	subIDs, _ := sc.subResults(nAll)
	if cap(sc.errs) < nAll {
		sc.errs = make([]error, nAll)
	}
	subErrs := sc.errs[:nAll]
	if n4 > 0 {
		e.sharded.InsertBatchInto(sc.keys, subIDs[:n4], subErrs[:n4])
	}
	if len(sc.keys6) > 0 {
		e.v6.InsertBatchInto(sc.keys6, subIDs[n4:], subErrs[n4:])
	}
	for i := range ids {
		ids[i] = 0
		errs[i] = ErrNotIPv4
	}
	for j, i := range sc.pos {
		ids[i], errs[i] = subIDs[j], subErrs[j]
		subErrs[j] = nil // failures must not outlive the call inside the pool
	}
	for j, i := range sc.pos6 {
		ids[i], errs[i] = subIDs[n4+j], subErrs[n4+j]
		if errs[i] == nil {
			ids[i] |= v6IDBit
		}
		subErrs[n4+j] = nil
	}
	e.scratch.Put(sc)
}

// DeleteBatch deletes a batch of flows, reporting per-flow presence
// positionally. Non-storable tuples report absent.
func (e *Engine) DeleteBatch(fts []FiveTuple) []bool {
	ok := make([]bool, len(fts))
	e.DeleteBatchInto(fts, ok)
	return ok
}

// DeleteBatchInto is DeleteBatch into a caller-supplied result buffer,
// which must have the length of fts; every element is overwritten. Like
// LookupBatchInto, the steady-state path allocates nothing.
func (e *Engine) DeleteBatchInto(fts []FiveTuple, ok []bool) {
	if len(ok) != len(fts) {
		panic(fmt.Sprintf("flowproc: DeleteBatchInto buffer (%d) does not match %d tuples", len(ok), len(fts)))
	}
	sc := e.scratch.Get().(*engineScratch)
	e.validKeys(sc, fts)
	if len(sc.keys) == len(fts) {
		e.sharded.DeleteBatchInto(sc.keys, ok)
		e.scratch.Put(sc)
		return
	}
	n4 := len(sc.keys)
	nAll := n4 + len(sc.keys6)
	if cap(sc.oks) < nAll {
		sc.oks = make([]bool, nAll)
	}
	sc.oks = sc.oks[:nAll]
	if n4 > 0 {
		e.sharded.DeleteBatchInto(sc.keys, sc.oks[:n4])
	}
	if len(sc.keys6) > 0 {
		e.v6.DeleteBatchInto(sc.keys6, sc.oks[n4:])
	}
	for i := range ok {
		ok[i] = false
	}
	for j, i := range sc.pos {
		ok[i] = sc.oks[j]
	}
	for j, i := range sc.pos6 {
		ok[i] = sc.oks[n4+j]
	}
	e.scratch.Put(sc)
}
