package bloom

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hashfn"
)

func key(i uint64) []byte {
	k := make([]byte, 13)
	binary.LittleEndian.PutUint64(k, i)
	return k // top bit of byte 0 clear: disjoint from MeasureFPR probes
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1<<14, 4, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(key(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		bf, err := New(4096, 3, hashfn.DefaultPair())
		if err != nil {
			return false
		}
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFPRNearTheory(t *testing.T) {
	pair := hashfn.DefaultPair()
	f, err := NewForCapacity(5000, 0.01, pair)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		f.Add(key(i))
	}
	measured := MeasureFPR(f.Contains, 13, 50000, 777)
	theory := f.TheoreticalFPR()
	if measured > 3*theory+0.005 {
		t.Fatalf("measured FPR %.5f far above theoretical %.5f", measured, theory)
	}
	if math.Abs(theory-0.01) > 0.008 {
		t.Fatalf("theoretical FPR %.5f not near design point 0.01", theory)
	}
}

func TestFPRGrowsWithLoad(t *testing.T) {
	pair := hashfn.DefaultPair()
	f, _ := New(1<<13, 4, pair)
	var rates []float64
	for _, n := range []uint64{500, 2000, 8000} {
		for i := f.N(); i < int64(n); i++ {
			f.Add(key(uint64(i)))
		}
		rates = append(rates, MeasureFPR(f.Contains, 13, 20000, 3))
	}
	if !(rates[0] <= rates[1] && rates[1] <= rates[2]) {
		t.Fatalf("FPR not monotone with load: %v", rates)
	}
	if rates[2] <= rates[0] {
		t.Fatalf("FPR did not grow from %v to %v", rates[0], rates[2])
	}
}

func TestCountingDeleteRestoresMiss(t *testing.T) {
	c, err := NewCounting(1<<13, 4, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		c.Add(key(i))
	}
	if !c.Contains(key(50)) {
		t.Fatal("false negative before delete")
	}
	if !c.Remove(key(50)) {
		t.Fatal("Remove refused a present key")
	}
	// After removal the key should usually miss (unless all its counters
	// are shared, which is vanishingly unlikely at this load).
	if c.Contains(key(50)) {
		t.Fatal("key still present after Remove at light load")
	}
	// Other keys unaffected.
	for i := uint64(0); i < 100; i++ {
		if i == 50 {
			continue
		}
		if !c.Contains(key(i)) {
			t.Fatalf("Remove corrupted key %d", i)
		}
	}
}

// TestCountingRemoveUnderflow pins the double-delete contract: removing
// a key whose counter set contains a zero is refused outright — false
// return, no counter mutated, insert count untouched — instead of
// decrementing the surviving shared counters (which would corrupt other
// keys' occupancy) and driving N negative.
func TestCountingRemoveUnderflow(t *testing.T) {
	c, err := NewCounting(1<<12, 4, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		c.Add(key(i))
	}
	snapshot := func() []uint8 { return append([]uint8(nil), c.counters...) }

	// A key never added: refused, nothing moves. Its counter positions
	// may well be nonzero (shared with real keys) at this load, so a
	// naive decrement would have corrupted them.
	before := snapshot()
	if c.Remove(key(9999)) {
		t.Fatal("Remove of a never-added key reported success")
	}
	for i, v := range snapshot() {
		if v != before[i] {
			t.Fatalf("refused Remove mutated counter %d: %d -> %d", i, before[i], v)
		}
	}
	if c.n != 200 {
		t.Fatalf("refused Remove moved N to %d", c.n)
	}

	// Double delete: the first removal zeroes at least one of the key's
	// counters at light load, so the second is refused with no mutation.
	if !c.Remove(key(7)) {
		t.Fatal("first Remove of a present key refused")
	}
	before = snapshot()
	if c.Remove(key(7)) {
		t.Fatal("double delete reported success")
	}
	for i, v := range snapshot() {
		if v != before[i] {
			t.Fatalf("double delete mutated counter %d: %d -> %d", i, before[i], v)
		}
	}
	if c.n != 199 {
		t.Fatalf("double delete moved N to %d, want 199", c.n)
	}
	// The other keys' membership survived both refusals.
	for i := uint64(0); i < 200; i++ {
		if i == 7 {
			continue
		}
		if !c.Contains(key(i)) {
			t.Fatalf("refused removals corrupted key %d", i)
		}
	}
}

func TestCountingSaturation(t *testing.T) {
	c, _ := NewCounting(64, 2, hashfn.DefaultPair())
	k := key(1)
	for i := 0; i < 300; i++ { // drive counters to saturation
		c.Add(k)
	}
	// Saturated counters must not decrement (hardware behaviour): the key
	// stays present no matter how many removals follow.
	for i := 0; i < 300; i++ {
		c.Remove(k)
	}
	if !c.Contains(k) {
		t.Fatal("saturated counter decremented; key lost")
	}
}

func TestParallelNoFalseNegatives(t *testing.T) {
	hashes := []hashfn.Func{
		hashfn.NewCRC(0x82f63b78, "crc32c"),
		&hashfn.Mix64{Seed: 1},
		&hashfn.Jenkins{Seed: 2},
		&hashfn.FNV1a{Seed: 3},
	}
	p, err := NewParallel(1<<12, hashes)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1500; i++ {
		p.Add(key(i))
	}
	for i := uint64(0); i < 1500; i++ {
		if !p.Contains(key(i)) {
			t.Fatalf("parallel filter false negative for key %d", i)
		}
	}
}

// TestParallelLowerFPRThanSingleHash pins the §II claim from [3-5]:
// partitioned parallel filters with k hashes beat a 1-hash filter of the
// same total size.
func TestParallelLowerFPRThanSingleHash(t *testing.T) {
	const totalBits = 1 << 14
	hashes := []hashfn.Func{
		hashfn.NewCRC(0x82f63b78, "crc32c"),
		&hashfn.Mix64{Seed: 1},
		&hashfn.Jenkins{Seed: 2},
		&hashfn.FNV1a{Seed: 3},
	}
	par, _ := NewParallel(totalBits/len(hashes), hashes)
	single, _ := New(totalBits, 1, hashfn.DefaultPair())
	for i := uint64(0); i < 2000; i++ {
		par.Add(key(i))
		single.Add(key(i))
	}
	fprPar := MeasureFPR(par.Contains, 13, 40000, 11)
	fprSingle := MeasureFPR(single.Contains, 13, 40000, 11)
	if fprPar >= fprSingle {
		t.Fatalf("parallel FPR %.5f not below single-hash FPR %.5f", fprPar, fprSingle)
	}
}

func TestFillRatio(t *testing.T) {
	f, _ := New(1024, 2, hashfn.DefaultPair())
	if got := f.FillRatio(); got != 0 {
		t.Fatalf("empty fill ratio = %v", got)
	}
	for i := uint64(0); i < 200; i++ {
		f.Add(key(i))
	}
	got := f.FillRatio()
	if got <= 0 || got >= 1 {
		t.Fatalf("fill ratio = %v out of (0,1)", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	pair := hashfn.DefaultPair()
	cases := []struct {
		name string
		err  error
	}{
		{"zero bits", errOf(New(0, 2, pair))},
		{"k too large", errOf(New(64, 17, pair))},
		{"nil hashes", errOf(New(64, 2, hashfn.Pair{}))},
		{"capacity bad p", errOf(NewForCapacity(100, 1.5, pair))},
		{"capacity zero n", errOf(NewForCapacity(0, 0.01, pair))},
		{"counting zero m", errOf(NewCounting(0, 2, pair))},
		{"counting k too large", errOf(NewCounting(64, 17, pair))},
		{"counting nil hashes", errOf(NewCounting(64, 2, hashfn.Pair{}))},
		{"parallel one hash", errOf(NewParallel(64, []hashfn.Func{pair.H1}))},
		{"parallel zero bits", errOf(NewParallel(0, []hashfn.Func{pair.H1, pair.H2}))},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

func TestNewForCapacitySizing(t *testing.T) {
	f, err := NewForCapacity(10000, 0.001, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	// m ≈ 14.38 bits/key, k ≈ 10 at p=0.001.
	if f.M() < 140000 || f.M() > 150000 {
		t.Fatalf("M = %d, want ~143776", f.M())
	}
	if f.K() < 9 || f.K() > 11 {
		t.Fatalf("K = %d, want ~10", f.K())
	}
	// The k clamps: a loose design point rounds k to 0 (clamped up to 1),
	// an extreme one wants k > 16 (clamped down to the probe ceiling).
	loose, err := NewForCapacity(1000, 0.99, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	if loose.K() != 1 {
		t.Fatalf("K at p=0.99 = %d, want clamp to 1", loose.K())
	}
	tight, err := NewForCapacity(1000, 1e-10, hashfn.DefaultPair())
	if err != nil {
		t.Fatal(err)
	}
	if tight.K() != 16 {
		t.Fatalf("K at p=1e-10 = %d, want clamp to 16", tight.K())
	}
}

func TestParallelN(t *testing.T) {
	p, err := NewParallel(64, []hashfn.Func{hashfn.DefaultPair().H1, hashfn.DefaultPair().H2})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 0 {
		t.Fatalf("fresh N = %d", p.N())
	}
	p.Add(key(1))
	if p.N() != 1 {
		t.Fatalf("N after one Add = %d", p.N())
	}
}

func TestMeasureFPRRejectsZeroProbes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureFPR accepted probes <= 0")
		}
	}()
	MeasureFPR(func([]byte) bool { return false }, 13, 0, 1)
}
