// Package bloom implements the Bloom-filter approaches the paper surveys
// in §II [2-5]: the classic bit-vector filter, a counting variant (so flow
// deletion is possible), and the parallel/partitioned arrangement used for
// lower false-positive rates in hardware. The false-positive measurement
// helpers feed the baseline comparison bench: a Bloom front end can rule
// out table misses cheaply but can never identify which flow matched,
// which is why the paper's scheme pairs hashing with exact storage.
package bloom

import (
	"fmt"
	"math"

	"repro/internal/hashfn"
)

// Filter is a classic Bloom filter: m bits, k hash functions derived from
// two base hashes by the Kirsch–Mitzenmacher construction
// g_i(x) = h1(x) + i·h2(x).
type Filter struct {
	bits []uint64
	m    uint64
	k    int
	pair hashfn.Pair
	n    int64 // inserted keys
}

// New builds a filter with m bits (rounded up to a multiple of 64) and k
// hash functions.
func New(m int, k int, pair hashfn.Pair) (*Filter, error) {
	if m <= 0 {
		return nil, fmt.Errorf("bloom: bit count must be positive, got %d", m)
	}
	if k <= 0 || k > 16 {
		return nil, fmt.Errorf("bloom: hash count must be in [1,16], got %d", k)
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("bloom: both base hashes must be set")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: uint64(words * 64), k: k, pair: pair}, nil
}

// NewForCapacity sizes a filter for n keys at target false-positive rate p
// using the standard m = -n·ln p / (ln 2)² and k = (m/n)·ln 2 formulas.
func NewForCapacity(n int, p float64, pair hashfn.Pair) (*Filter, error) {
	if n <= 0 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: need n > 0 and p in (0,1), got n=%d p=%v", n, p)
	}
	m := int(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return New(m, k, pair)
}

// M returns the bit-vector size.
func (f *Filter) M() int { return int(f.m) }

// K returns the hash-function count.
func (f *Filter) K() int { return f.k }

// N returns the number of inserted keys.
func (f *Filter) N() int64 { return f.n }

// positions fills idx with the k bit positions of key.
func (f *Filter) positions(key []byte, idx []uint64) {
	h1 := f.pair.H1.Hash(key)
	h2 := f.pair.H2.Hash(key) | 1 // odd stride covers the whole vector
	for i := 0; i < f.k; i++ {
		idx[i] = (h1 + uint64(i)*h2) % f.m
	}
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	var idx [16]uint64
	f.positions(key, idx[:f.k])
	for _, p := range idx[:f.k] {
		f.bits[p/64] |= 1 << (p % 64)
	}
	f.n++
}

// Contains reports whether key may have been added (false positives
// possible, false negatives impossible).
func (f *Filter) Contains(key []byte) bool {
	var idx [16]uint64
	f.positions(key, idx[:f.k])
	for _, p := range idx[:f.k] {
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.m)
}

// TheoreticalFPR returns the expected false-positive rate for the current
// insert count: (1 - e^{-kn/m})^k.
func (f *Filter) TheoreticalFPR() float64 {
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Counting is a counting Bloom filter with 4-bit-style saturating counters
// (modelled as uint8 with saturation), supporting deletion — the variant a
// flow table needs when entries time out.
type Counting struct {
	counters []uint8
	m        uint64
	k        int
	pair     hashfn.Pair
	n        int64
}

// NewCounting builds a counting filter with m counters and k hashes.
func NewCounting(m int, k int, pair hashfn.Pair) (*Counting, error) {
	if m <= 0 {
		return nil, fmt.Errorf("bloom: counter count must be positive, got %d", m)
	}
	if k <= 0 || k > 16 {
		return nil, fmt.Errorf("bloom: hash count must be in [1,16], got %d", k)
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("bloom: both base hashes must be set")
	}
	return &Counting{counters: make([]uint8, m), m: uint64(m), k: k, pair: pair}, nil
}

func (c *Counting) positions(key []byte, idx []uint64) {
	h1 := c.pair.H1.Hash(key)
	h2 := c.pair.H2.Hash(key) | 1
	for i := 0; i < c.k; i++ {
		idx[i] = (h1 + uint64(i)*h2) % c.m
	}
}

// Add increments the key's counters (saturating at 255).
func (c *Counting) Add(key []byte) {
	var idx [16]uint64
	c.positions(key, idx[:c.k])
	for _, p := range idx[:c.k] {
		if c.counters[p] < 255 {
			c.counters[p]++
		}
	}
	c.n++
}

// Remove decrements the key's counters and reports whether the removal
// was applied. A key whose counter set contains a zero was provably
// never added (or already removed): the filter refuses the removal
// outright — no counter moves and the insert count is untouched —
// because decrementing the remaining shared counters would silently
// steal occupancy from other keys and drive N negative on double
// deletes. Saturated counters (255) are pinned and never decrement, as
// in the 4-bit hardware variant: once a counter has clipped, its true
// occupancy is unknowable, so it stays saturated for the filter's
// lifetime rather than risk a false negative. Removing a present key
// whose counters all sit at 255 therefore legitimately reports true
// while moving nothing.
func (c *Counting) Remove(key []byte) bool {
	var idx [16]uint64
	c.positions(key, idx[:c.k])
	for _, p := range idx[:c.k] {
		if c.counters[p] == 0 {
			return false
		}
	}
	for _, p := range idx[:c.k] {
		if c.counters[p] < 255 {
			c.counters[p]--
		}
	}
	c.n--
	return true
}

// Contains reports whether key may be present.
func (c *Counting) Contains(key []byte) bool {
	var idx [16]uint64
	c.positions(key, idx[:c.k])
	for _, p := range idx[:c.k] {
		if c.counters[p] == 0 {
			return false
		}
	}
	return true
}

// Parallel is the partitioned/parallel Bloom filter of [3-5]: k
// independent sub-vectors, each with its own hash function, probed in
// parallel in hardware (one bit per sub-vector per query).
type Parallel struct {
	parts  [][]uint64
	m      uint64 // bits per partition
	hashes []hashfn.Func
	n      int64
}

// NewParallel builds a partitioned filter with bitsPerPartition bits under
// each of the given hash functions.
func NewParallel(bitsPerPartition int, hashes []hashfn.Func) (*Parallel, error) {
	if bitsPerPartition <= 0 {
		return nil, fmt.Errorf("bloom: partition size must be positive, got %d", bitsPerPartition)
	}
	if len(hashes) < 2 {
		return nil, fmt.Errorf("bloom: parallel filter needs at least 2 hashes, got %d", len(hashes))
	}
	words := (bitsPerPartition + 63) / 64
	p := &Parallel{m: uint64(words * 64), hashes: hashes}
	p.parts = make([][]uint64, len(hashes))
	for i := range p.parts {
		p.parts[i] = make([]uint64, words)
	}
	return p, nil
}

// Add inserts key into every partition.
func (p *Parallel) Add(key []byte) {
	for i, h := range p.hashes {
		pos := h.Hash(key) % p.m
		p.parts[i][pos/64] |= 1 << (pos % 64)
	}
	p.n++
}

// Contains reports whether key may be present (bit set in every partition).
func (p *Parallel) Contains(key []byte) bool {
	for i, h := range p.hashes {
		pos := h.Hash(key) % p.m
		if p.parts[i][pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// N returns the number of inserted keys.
func (p *Parallel) N() int64 { return p.n }

// MeasureFPR empirically measures a filter's false-positive rate over
// probes keys that were never inserted, generated from seed.
func MeasureFPR(contains func([]byte) bool, keyLen, probes int, seed uint64) float64 {
	if probes <= 0 {
		panic("bloom: MeasureFPR requires probes > 0")
	}
	key := make([]byte, keyLen)
	s := seed
	fp := 0
	for i := 0; i < probes; i++ {
		for j := range key {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			key[j] = byte(z ^ (z >> 31))
		}
		// Mark probe keys with a distinguishing byte so they are disjoint
		// from the 'inserted' key space used by the tests.
		key[0] |= 0x80
		if contains(key) {
			fp++
		}
	}
	return float64(fp) / float64(probes)
}
