package netflow

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trafficgen"
)

func engine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func pkt(flow uint64, size int) packet.Packet {
	return packet.Packet{Tuple: trafficgen.Flow(flow), WireLen: size}
}

const second = uint64(time.Second)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{IdleTimeout: 0, ActiveTimeout: time.Minute},
		{IdleTimeout: time.Second, ActiveTimeout: 0},
		{IdleTimeout: time.Second, ActiveTimeout: time.Minute, MaxFlows: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestObserveCreatesAndAccumulates(t *testing.T) {
	e := engine(t, DefaultConfig())
	fs, created := e.Observe(pkt(1, 100), 10)
	if !created || fs.Packets != 1 || fs.Bytes != 100 || fs.FirstSeen != 10 {
		t.Fatalf("first packet: created=%v fs=%+v", created, fs)
	}
	fs2, created := e.Observe(pkt(1, 200), 20)
	if created || fs2 != fs {
		t.Fatal("second packet created a new flow")
	}
	if fs.Packets != 2 || fs.Bytes != 300 || fs.LastSeen != 20 || fs.FirstSeen != 10 {
		t.Fatalf("accumulation wrong: %+v", fs)
	}
	st := e.Stats()
	if st.Packets != 2 || st.Bytes != 300 || st.FlowsCreated != 1 || st.ActiveFlows != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIdleTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = time.Second
	e := engine(t, cfg)
	e.Observe(pkt(1, 64), 0)
	e.Observe(pkt(2, 64), 900_000_000)

	if n := e.Housekeep(1_000_000_000); n != 1 {
		t.Fatalf("housekeep exported %d, want 1 (flow 1 idle)", n)
	}
	exports := e.DrainExports()
	if len(exports) != 1 || exports[0].Reason != ReasonIdleTimeout {
		t.Fatalf("exports = %+v", exports)
	}
	if exports[0].Tuple != trafficgen.Flow(1) {
		t.Fatalf("wrong flow exported: %v", exports[0].Tuple)
	}
	if e.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1", e.ActiveFlows())
	}
}

func TestActiveTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = time.Hour // never idle in this test
	cfg.ActiveTimeout = 10 * time.Second
	e := engine(t, cfg)
	for i := uint64(0); i < 20; i++ {
		e.Observe(pkt(1, 64), i*second)
	}
	if n := e.Housekeep(20 * second); n != 1 {
		t.Fatalf("housekeep exported %d, want 1 (active timeout)", n)
	}
	if got := e.DrainExports()[0].Reason; got != ReasonActiveTimeout {
		t.Fatalf("reason = %v", got)
	}
}

func TestTCPCloseExport(t *testing.T) {
	e := engine(t, DefaultConfig())
	p := pkt(3, 64)
	p.Tuple.Proto = packet.ProtoTCP
	e.Observe(p, 0)
	fin := p
	fin.TCPFlags = packet.TCPFin | packet.TCPAck
	e.Observe(fin, second)
	exports := e.DrainExports()
	if len(exports) != 1 || exports[0].Reason != ReasonTCPClose {
		t.Fatalf("exports = %+v", exports)
	}
	if exports[0].Packets != 2 {
		t.Fatalf("exported packet count = %d, want 2", exports[0].Packets)
	}
	if e.ActiveFlows() != 0 {
		t.Fatal("flow still active after FIN export")
	}
	// A new packet for the tuple starts a fresh flow.
	if _, created := e.Observe(p, 2*second); !created {
		t.Fatal("post-close packet did not create a new flow")
	}
}

func TestTCPCloseExportDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPCloseExport = false
	e := engine(t, cfg)
	p := pkt(3, 64)
	p.Tuple.Proto = packet.ProtoTCP
	p.TCPFlags = packet.TCPFin
	e.Observe(p, 0)
	if len(e.DrainExports()) != 0 {
		t.Fatal("FIN exported with TCPCloseExport disabled")
	}
}

func TestMaxFlowsEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFlows = 3
	e := engine(t, cfg)
	e.Observe(pkt(1, 64), 1)
	e.Observe(pkt(2, 64), 2)
	e.Observe(pkt(3, 64), 3)
	e.Observe(pkt(1, 64), 4) // refresh flow 1; flow 2 is now oldest idle
	e.Observe(pkt(4, 64), 5) // must evict flow 2
	if e.ActiveFlows() != 3 {
		t.Fatalf("ActiveFlows = %d, want 3", e.ActiveFlows())
	}
	exports := e.DrainExports()
	if len(exports) != 1 || exports[0].Reason != ReasonEvicted {
		t.Fatalf("exports = %+v", exports)
	}
	if exports[0].Tuple != trafficgen.Flow(2) {
		t.Fatalf("evicted %v, want flow 2", exports[0].Tuple)
	}
	if e.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", e.Stats().Evictions)
	}
}

func TestFlushExportsEverything(t *testing.T) {
	e := engine(t, DefaultConfig())
	for i := uint64(0); i < 10; i++ {
		e.Observe(pkt(i, 64), i)
	}
	if n := e.Flush(100); n != 10 {
		t.Fatalf("Flush = %d, want 10", n)
	}
	if e.ActiveFlows() != 0 {
		t.Fatal("flows remain after flush")
	}
	for _, rec := range e.DrainExports() {
		if rec.Reason != ReasonShutdown {
			t.Fatalf("reason = %v", rec.Reason)
		}
	}
}

func TestLookupAndStateBits(t *testing.T) {
	e := engine(t, DefaultConfig())
	e.Observe(pkt(7, 99), 1)
	fs, ok := e.Lookup(trafficgen.Flow(7))
	if !ok || fs.Bytes != 99 {
		t.Fatalf("Lookup = (%+v,%v)", fs, ok)
	}
	if _, ok := e.Lookup(trafficgen.Flow(8)); ok {
		t.Fatal("phantom lookup hit")
	}
	if got := e.StateBits(); got != RecordBits {
		t.Fatalf("StateBits = %d, want %d", got, RecordBits)
	}
}

func TestConservationInvariant(t *testing.T) {
	// Packets in == packets across live flows + exported flows.
	cfg := DefaultConfig()
	cfg.IdleTimeout = 2 * time.Second
	e := engine(t, cfg)
	total := uint64(0)
	for i := uint64(0); i < 5000; i++ {
		flow := i % 97
		e.Observe(pkt(flow, 64), i*second/10)
		total++
		if i%500 == 0 {
			e.Housekeep(i * second / 10)
		}
	}
	var acc uint64
	for _, rec := range e.DrainExports() {
		acc += rec.Packets
	}
	e.Flush(1 << 62)
	for _, rec := range e.DrainExports() {
		acc += rec.Packets
	}
	if acc != total {
		t.Fatalf("packet conservation violated: %d exported, %d observed", acc, total)
	}
}
