// Package netflow implements the per-flow state layer of the paper's
// target application (§I, §V-C): 512-bit per-flow records holding packet/
// byte counters and timestamps, a housekeeping scanner that retires
// timed-out flows ("Del_req is signaled by the housekeeping function in
// the Flow State block, which periodically checks and removes timeout flow
// entries", §IV-B), and NetFlow-v5-style export records.
package netflow

import (
	"fmt"
	"time"

	"repro/internal/packet"
)

// FlowState is one per-flow record. The prototype stores 512 bits per
// flow (§V-C); this struct is the logical content of that record.
type FlowState struct {
	FID     uint64
	Tuple   packet.FiveTuple
	Packets uint64
	Bytes   uint64
	// FirstSeen and LastSeen are nanosecond timestamps relative to the
	// capture epoch.
	FirstSeen uint64
	LastSeen  uint64
	TCPFlags  uint8 // OR of observed flags
}

// RecordBits is the hardware record width the resource model accounts.
const RecordBits = 512

// ExportRecord is a finished flow, NetFlow-v5 style.
type ExportRecord struct {
	Tuple      packet.FiveTuple
	Packets    uint64
	Bytes      uint64
	FirstSeen  uint64
	LastSeen   uint64
	TCPFlags   uint8
	ExportedAt uint64
	// Reason distinguishes idle timeout, active timeout, FIN/RST
	// termination, and forced eviction.
	Reason ExportReason
}

// ExportReason classifies why a flow was exported.
type ExportReason int

// Export reasons.
const (
	ReasonIdleTimeout ExportReason = iota + 1
	ReasonActiveTimeout
	ReasonTCPClose
	ReasonEvicted
	ReasonShutdown
)

// String returns the reason name.
func (r ExportReason) String() string {
	switch r {
	case ReasonIdleTimeout:
		return "idle-timeout"
	case ReasonActiveTimeout:
		return "active-timeout"
	case ReasonTCPClose:
		return "tcp-close"
	case ReasonEvicted:
		return "evicted"
	case ReasonShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("ExportReason(%d)", int(r))
	}
}

// Config parameterises the flow-state engine.
type Config struct {
	// IdleTimeout retires flows with no traffic for this long.
	IdleTimeout time.Duration
	// ActiveTimeout force-exports long-running flows (so collectors see
	// progress), re-creating state on the next packet.
	ActiveTimeout time.Duration
	// TCPCloseExport exports immediately on FIN or RST when true.
	TCPCloseExport bool
	// MaxFlows bounds the state table; 0 means unbounded. When full, the
	// oldest-idle flow is evicted (exported with ReasonEvicted).
	MaxFlows int
}

// DefaultConfig mirrors common NetFlow defaults: 15 s idle, 30 min active.
func DefaultConfig() Config {
	return Config{
		IdleTimeout:    15 * time.Second,
		ActiveTimeout:  30 * time.Minute,
		TCPCloseExport: true,
	}
}

// Validate reports an error for unusable parameters.
func (c Config) Validate() error {
	switch {
	case c.IdleTimeout <= 0:
		return fmt.Errorf("netflow: idle timeout must be positive, got %v", c.IdleTimeout)
	case c.ActiveTimeout <= 0:
		return fmt.Errorf("netflow: active timeout must be positive, got %v", c.ActiveTimeout)
	case c.MaxFlows < 0:
		return fmt.Errorf("netflow: max flows must be non-negative, got %d", c.MaxFlows)
	}
	return nil
}

// Stats aggregates engine activity.
type Stats struct {
	Packets       int64
	Bytes         int64
	FlowsCreated  int64
	FlowsExported int64
	Evictions     int64
	ActiveFlows   int
}

// Engine maintains flow state keyed by the 5-tuple. The lookup substrate
// (the paper's Flow LUT) provides flow IDs; the engine is deliberately
// substrate-agnostic so both the timed and untimed tables can drive it.
type Engine struct {
	cfg    Config
	spec   packet.TupleSpec
	flows  map[string]*FlowState
	nextID uint64

	exports []ExportRecord
	stats   Stats
}

// NewEngine builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:   cfg,
		spec:  packet.FiveTupleSpec(),
		flows: make(map[string]*FlowState),
	}, nil
}

// Stats returns a snapshot including the current active-flow count.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.ActiveFlows = len(e.flows)
	return s
}

// Observe accounts one packet at the given timestamp (nanoseconds from
// epoch, monotone non-decreasing). It returns the flow's state and whether
// the packet created a new flow.
func (e *Engine) Observe(p packet.Packet, nowNanos uint64) (*FlowState, bool) {
	key := string(e.spec.Key(p.Tuple))
	e.stats.Packets++
	e.stats.Bytes += int64(p.WireLen)

	fs, ok := e.flows[key]
	created := false
	if !ok {
		if e.cfg.MaxFlows > 0 && len(e.flows) >= e.cfg.MaxFlows {
			e.evictOldest(nowNanos)
		}
		e.nextID++
		fs = &FlowState{FID: e.nextID, Tuple: p.Tuple, FirstSeen: nowNanos}
		e.flows[key] = fs
		e.stats.FlowsCreated++
		created = true
	}
	fs.Packets++
	fs.Bytes += uint64(p.WireLen)
	fs.LastSeen = nowNanos
	fs.TCPFlags |= p.TCPFlags

	if e.cfg.TCPCloseExport && p.Tuple.Proto == packet.ProtoTCP &&
		p.TCPFlags&(packet.TCPFin|packet.TCPRst) != 0 {
		e.export(key, fs, nowNanos, ReasonTCPClose)
	}
	return fs, created
}

// Housekeep scans for idle and active timeouts — the paper's periodic
// housekeeping pass — and returns how many flows were exported.
func (e *Engine) Housekeep(nowNanos uint64) int {
	idle := uint64(e.cfg.IdleTimeout.Nanoseconds())
	active := uint64(e.cfg.ActiveTimeout.Nanoseconds())
	exported := 0
	for key, fs := range e.flows {
		switch {
		case nowNanos-fs.LastSeen >= idle:
			e.export(key, fs, nowNanos, ReasonIdleTimeout)
			exported++
		case nowNanos-fs.FirstSeen >= active:
			e.export(key, fs, nowNanos, ReasonActiveTimeout)
			exported++
		}
	}
	return exported
}

// evictOldest exports the flow idle the longest, making room.
func (e *Engine) evictOldest(nowNanos uint64) {
	var oldestKey string
	var oldest *FlowState
	for key, fs := range e.flows {
		if oldest == nil || fs.LastSeen < oldest.LastSeen {
			oldestKey, oldest = key, fs
		}
	}
	if oldest != nil {
		e.export(oldestKey, oldest, nowNanos, ReasonEvicted)
		e.stats.Evictions++
	}
}

// Flush exports every active flow (end of capture).
func (e *Engine) Flush(nowNanos uint64) int {
	n := 0
	for key, fs := range e.flows {
		e.export(key, fs, nowNanos, ReasonShutdown)
		n++
	}
	return n
}

// export retires a flow into the export queue.
func (e *Engine) export(key string, fs *FlowState, nowNanos uint64, reason ExportReason) {
	e.exports = append(e.exports, ExportRecord{
		Tuple:      fs.Tuple,
		Packets:    fs.Packets,
		Bytes:      fs.Bytes,
		FirstSeen:  fs.FirstSeen,
		LastSeen:   fs.LastSeen,
		TCPFlags:   fs.TCPFlags,
		ExportedAt: nowNanos,
		Reason:     reason,
	})
	delete(e.flows, key)
	e.stats.FlowsExported++
}

// DrainExports returns and clears the accumulated export records.
func (e *Engine) DrainExports() []ExportRecord {
	out := e.exports
	e.exports = nil
	return out
}

// Lookup returns the live state of a tuple, if tracked.
func (e *Engine) Lookup(ft packet.FiveTuple) (*FlowState, bool) {
	fs, ok := e.flows[string(e.spec.Key(ft))]
	return fs, ok
}

// ActiveFlows returns the current tracked-flow count.
func (e *Engine) ActiveFlows() int { return len(e.flows) }

// StateBits returns the on-chip/off-chip storage the active flows occupy
// at the prototype's 512-bit record width — the §V-C sizing arithmetic.
func (e *Engine) StateBits() int64 { return int64(len(e.flows)) * RecordBits }
