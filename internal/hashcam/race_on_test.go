//go:build race

package hashcam

const raceEnabled = true
