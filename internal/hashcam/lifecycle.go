package hashcam

import (
	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file implements the slot-addressed lifecycle extension
// (table.EvictableBackend) on the Hash-CAM: the eviction sweep enumerates
// occupied slots by flow ID — the location index FID_GEN emits — and
// reclaims them without hashing or comparing keys, the software analogue
// of the housekeeping function's Del_req path (§IV-B).
//
// The slot ID space is exactly the fid layout: CAM entries occupy
// [0, CAMCapacity), Mem1 slots [CAMCapacity, CAMCapacity+n), Mem2 slots
// the block above, with n = Buckets × SlotsPerBucket of the live
// geometry. While a grow is migrating, the retiring geometry's slots are
// additionally addressable in the region above the live one (see
// table.GrowLayout), so the sweep covers both arenas until FinishGrow.

// locate resolves a slot ID to its owning geometry and arena offset:
// region 0 is the CAM, 1 the live geometry, 2 the retiring geometry
// (mid-migration only). ok is false for IDs beyond the current bound.
func (t *Table) locate(id uint64) (region int, g *geom, h int, off uint64, ok bool) {
	camCap := uint64(t.cfg.CAMCapacity)
	if id < camCap {
		return 0, nil, 0, id, true
	}
	g = t.live.Load()
	n := uint64(g.slots(t.cfg.SlotsPerBucket))
	off = id - camCap
	if off < 2*n {
		if off >= n {
			return 1, g, 1, off - n, true
		}
		return 1, g, 0, off, true
	}
	og := t.old.Load()
	if og == nil {
		return 0, nil, 0, 0, false
	}
	off -= 2 * n
	on := uint64(og.slots(t.cfg.SlotsPerBucket))
	if off >= 2*on {
		return 0, nil, 0, 0, false
	}
	if off >= on {
		return 2, og, 1, off - on, true
	}
	return 2, og, 0, off, true
}

// SlotIDBound returns the exclusive upper bound of the fid space:
// CAMCapacity + 2n of the live geometry, extended by the retiring
// geometry's 2n while a migration is in flight (table.GrowLayout's
// OldBound), then falling back at FinishGrow.
func (t *Table) SlotIDBound() uint64 {
	k := t.cfg.SlotsPerBucket
	bound := uint64(t.cfg.CAMCapacity + 2*t.live.Load().slots(k))
	if og := t.old.Load(); og != nil {
		bound += uint64(2 * og.slots(k))
	}
	return bound
}

// SlotOccupied implements table.SlotSpace: whether fid id currently holds
// an entry.
func (t *Table) SlotOccupied(id uint64) bool {
	region, g, h, off, ok := t.locate(id)
	if !ok {
		return false
	}
	if region == 0 {
		_, ok := t.cam.EntryAt(int(off))
		return ok
	}
	return g.mem[h].store.Occupied(int(off))
}

// WalkSlots implements table.Walker over the fid space. fn may delete the
// slot it is visiting (the sweep does).
func (t *Table) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(t, t.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend: it appends the key
// stored at fid slot onto dst, reporting false for an unoccupied slot.
func (t *Table) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	region, g, h, off, ok := t.locate(slot)
	if !ok {
		return dst, false
	}
	if region == 0 {
		e, ok := t.cam.EntryAt(int(off))
		if !ok {
			return dst, false
		}
		return append(dst, e.Key...), true
	}
	return g.mem[h].store.AppendKey(dst, int(off))
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots an insert of kh's key could have used — its Mem1 bucket, its Mem2
// bucket, and every occupied CAM entry (any key can overflow into the
// CAM, so freeing a CAM slot also unblocks the retry). Freeing any
// appended slot guarantees the retried insert places without relocation.
// Only the live geometry's buckets are candidates: inserts place in live,
// so mid-migration the retiring arena's occupants cannot unblock a retry
// and are left to the migration or the sweep.
func (t *Table) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	g := t.live.Load()
	k := t.cfg.SlotsPerBucket
	base := t.liveBase()
	b1 := hashfn.Reduce(kh.H1, g.buckets)
	b2 := hashfn.Reduce(kh.H2, g.buckets)
	for s := 0; s < k; s++ {
		if off := b1*k + s; g.mem[0].store.Occupied(off) {
			dst = append(dst, t.fidIn(g, base, 0, b1, s))
		}
		if off := b2*k + s; g.mem[1].store.Occupied(off) {
			dst = append(dst, t.fidIn(g, base, 1, b2, s))
		}
	}
	for i := 0; i < t.cfg.CAMCapacity; i++ {
		if _, ok := t.cam.EntryAt(i); ok {
			dst = append(dst, t.camFID(i))
		}
	}
	return dst
}

// DeleteSlot implements table.EvictableBackend: it reclaims fid slot
// without any key search. Accounting matches Delete — the entry leaves
// Len, the deletes counter advances, and the single slot write is charged
// one probe.
func (t *Table) DeleteSlot(slot uint64) bool {
	region, g, h, off, ok := t.locate(slot)
	if !ok {
		return false
	}
	if region == 0 {
		if !t.cam.DeleteAt(int(off)) {
			return false
		}
		t.stats.deletes.Add(1)
		t.stats.xprobes.Add(1)
		return true
	}
	if !g.mem[h].store.Occupied(int(off)) {
		return false
	}
	g.mem[h].store.Clear(int(off))
	g.mem[h].count--
	t.stats.deletes.Add(1)
	t.stats.xprobes.Add(1)
	return true
}
