package hashcam

import (
	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file implements the slot-addressed lifecycle extension
// (table.EvictableBackend) on the Hash-CAM: the eviction sweep enumerates
// occupied slots by flow ID — the location index FID_GEN emits — and
// reclaims them without hashing or comparing keys, the software analogue
// of the housekeeping function's Del_req path (§IV-B).
//
// The slot ID space is exactly the fid layout: CAM entries occupy
// [0, CAMCapacity), Mem1 slots [CAMCapacity, CAMCapacity+n), Mem2 slots
// the block above, with n = Buckets × SlotsPerBucket.

// SlotIDBound returns the exclusive upper bound of the fid space:
// CAMCapacity + 2 × Buckets × SlotsPerBucket.
func (t *Table) SlotIDBound() uint64 {
	return uint64(t.cfg.CAMCapacity + 2*t.cfg.Buckets*t.cfg.SlotsPerBucket)
}

// SlotOccupied implements table.SlotSpace: whether fid id currently holds
// an entry.
func (t *Table) SlotOccupied(id uint64) bool {
	camCap := uint64(t.cfg.CAMCapacity)
	if id < camCap {
		_, ok := t.cam.EntryAt(int(id))
		return ok
	}
	n := uint64(t.cfg.Buckets * t.cfg.SlotsPerBucket)
	off := id - camCap
	if off < n {
		return t.mem[0].store.Occupied(int(off))
	}
	return t.mem[1].store.Occupied(int(off - n))
}

// WalkSlots implements table.Walker over the fid space. fn may delete the
// slot it is visiting (the sweep does).
func (t *Table) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(t, t.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend: it appends the key
// stored at fid slot onto dst, reporting false for an unoccupied slot.
func (t *Table) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	camCap := uint64(t.cfg.CAMCapacity)
	if slot < camCap {
		e, ok := t.cam.EntryAt(int(slot))
		if !ok {
			return dst, false
		}
		return append(dst, e.Key...), true
	}
	n := uint64(t.cfg.Buckets * t.cfg.SlotsPerBucket)
	h, off := 0, slot-camCap
	if off >= n {
		h, off = 1, off-n
	}
	if off >= n {
		return dst, false
	}
	return t.mem[h].store.AppendKey(dst, int(off))
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots an insert of kh's key could have used — its Mem1 bucket, its Mem2
// bucket, and every occupied CAM entry (any key can overflow into the
// CAM, so freeing a CAM slot also unblocks the retry). Freeing any
// appended slot guarantees the retried insert places without relocation.
func (t *Table) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	k := t.cfg.SlotsPerBucket
	b1 := hashfn.Reduce(kh.H1, t.cfg.Buckets)
	b2 := hashfn.Reduce(kh.H2, t.cfg.Buckets)
	for s := 0; s < k; s++ {
		if off := b1*k + s; t.mem[0].store.Occupied(off) {
			dst = append(dst, t.fid(0, b1, s))
		}
		if off := b2*k + s; t.mem[1].store.Occupied(off) {
			dst = append(dst, t.fid(1, b2, s))
		}
	}
	for i := 0; i < t.cfg.CAMCapacity; i++ {
		if _, ok := t.cam.EntryAt(i); ok {
			dst = append(dst, t.camFID(i))
		}
	}
	return dst
}

// DeleteSlot implements table.EvictableBackend: it reclaims fid slot
// without any key search. Accounting matches Delete — the entry leaves
// Len, the deletes counter advances, and the single slot write is charged
// one probe.
func (t *Table) DeleteSlot(slot uint64) bool {
	camCap := uint64(t.cfg.CAMCapacity)
	if slot < camCap {
		if !t.cam.DeleteAt(int(slot)) {
			return false
		}
		t.stats.deletes.Add(1)
		t.stats.xprobes.Add(1)
		return true
	}
	n := uint64(t.cfg.Buckets * t.cfg.SlotsPerBucket)
	h, off := 0, slot-camCap
	if off >= n {
		h, off = 1, off-n
	}
	if off >= n || !t.mem[h].store.Occupied(int(off)) {
		return false
	}
	t.mem[h].store.Clear(int(off))
	t.mem[h].count--
	t.stats.deletes.Add(1)
	t.stats.xprobes.Add(1)
	return true
}
