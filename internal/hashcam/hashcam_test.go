package hashcam

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cam"
	"repro/internal/hashfn"
)

// smallConfig returns a tight configuration that exercises overflow paths
// quickly.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Buckets = 64
	cfg.SlotsPerBucket = 2
	cfg.CAMCapacity = 16
	return cfg
}

func key13(i uint64) []byte {
	k := make([]byte, 13)
	binary.LittleEndian.PutUint64(k, i)
	return k
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"non-power-of-two buckets", func(c *Config) { c.Buckets = 100 }},
		{"zero slots", func(c *Config) { c.SlotsPerBucket = 0 }},
		{"zero key len", func(c *Config) { c.KeyLen = 0 }},
		{"zero cam", func(c *Config) { c.CAMCapacity = 0 }},
		{"nil hash", func(c *Config) { c.Hash = hashfn.Pair{} }},
		{"bad policy", func(c *Config) { c.Policy = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tbl, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := key13(42)
	if _, stage, ok := tbl.Lookup(k); ok || stage != StageMiss {
		t.Fatalf("lookup on empty table = (%v, %v)", stage, ok)
	}
	fid, err := tbl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	got, stage, ok := tbl.Lookup(k)
	if !ok || got != fid {
		t.Fatalf("Lookup = (%d,%v,%v), want (%d,_,true)", got, stage, ok, fid)
	}
	if stage != StageMem1 && stage != StageMem2 {
		t.Fatalf("fresh insert resolved at stage %v, want a memory stage", stage)
	}
	if !tbl.Delete(k) {
		t.Fatal("Delete missed")
	}
	if _, _, ok := tbl.Lookup(k); ok {
		t.Fatal("hit after delete")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", tbl.Len())
	}
}

func TestInsertIdempotent(t *testing.T) {
	tbl, _ := New(smallConfig())
	k := key13(7)
	fid1, err := tbl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	fid2, err := tbl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	if fid1 != fid2 {
		t.Fatalf("duplicate insert returned %d, want %d", fid2, fid1)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestFIDsUniqueAndDecodable(t *testing.T) {
	tbl, _ := New(smallConfig())
	seen := make(map[uint64][]byte)
	for i := uint64(0); i < 200; i++ {
		k := key13(i)
		fid, err := tbl.Insert(k)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if prev, dup := seen[fid]; dup {
			t.Fatalf("fid %d assigned to both %x and %x", fid, prev, k)
		}
		seen[fid] = k
		if stage, _, _ := tbl.DecodeFID(fid); stage == StageMiss {
			t.Fatalf("fid %d does not decode to a region", fid)
		}
	}
}

func TestCollisionsOverflowToCAM(t *testing.T) {
	// Force collisions with a degenerate hash pair mapping everything to
	// bucket 0 of both halves.
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: constHash{}, H2: constHash{}}
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 halves × K=2 slots at bucket 0 hold 4 entries; the rest must land
	// in the CAM.
	for i := uint64(0); i < 10; i++ {
		if _, err := tbl.Insert(key13(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if got := tbl.CAMInUse(); got != 6 {
		t.Fatalf("CAM holds %d entries, want 6", got)
	}
	// All 10 keys still retrievable, CAM hits resolving at stage 1.
	camHits := 0
	for i := uint64(0); i < 10; i++ {
		_, stage, ok := tbl.Lookup(key13(i))
		if !ok {
			t.Fatalf("key %d lost", i)
		}
		if stage == StageCAM {
			camHits++
		}
	}
	if camHits != 6 {
		t.Fatalf("%d CAM-stage hits, want 6", camHits)
	}
}

func TestInsertFailsWhenEverythingFull(t *testing.T) {
	cfg := smallConfig()
	cfg.CAMCapacity = 2
	cfg.Hash = hashfn.Pair{H1: constHash{}, H2: constHash{}}
	tbl, _ := New(cfg)
	for i := uint64(0); i < 6; i++ { // 4 slots + 2 CAM
		if _, err := tbl.Insert(key13(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	_, err := tbl.Insert(key13(99))
	if !errors.Is(err, cam.ErrFull) {
		t.Fatalf("insert into full structure = %v, want ErrFull", err)
	}
	if tbl.Stats().FailedIns != 1 {
		t.Fatalf("FailedIns = %d, want 1", tbl.Stats().FailedIns)
	}
	// Delete one and retry.
	tbl.Delete(key13(0))
	if _, err := tbl.Insert(key13(99)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestDeleteFromCAMFreesOverflow(t *testing.T) {
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: constHash{}, H2: constHash{}}
	tbl, _ := New(cfg)
	for i := uint64(0); i < 5; i++ {
		tbl.Insert(key13(i))
	}
	if tbl.CAMInUse() != 1 {
		t.Fatalf("CAM in use = %d, want 1", tbl.CAMInUse())
	}
	// Key 4 overflowed; delete it from the CAM.
	if !tbl.Delete(key13(4)) {
		t.Fatal("delete of CAM-resident key failed")
	}
	if tbl.CAMInUse() != 0 {
		t.Fatalf("CAM in use = %d after delete, want 0", tbl.CAMInUse())
	}
}

func TestEarlyExitStageAccounting(t *testing.T) {
	tbl, _ := New(smallConfig())
	var keys [][]byte
	for i := uint64(0); i < 50; i++ {
		k := key13(i)
		keys = append(keys, k)
		tbl.Insert(k)
	}
	for _, k := range keys {
		tbl.Lookup(k)
	}
	st := tbl.Stats()
	if st.Hits != 50 {
		t.Fatalf("Hits = %d, want 50", st.Hits)
	}
	mem1 := st.HitsByStage[StageMem1-1]
	mem2 := st.HitsByStage[StageMem2-1]
	if mem1+mem2+st.HitsByStage[StageCAM-1] != 50 {
		t.Fatalf("stage hits don't sum: %v", st.HitsByStage)
	}
	// Least-loaded placement spreads entries over both halves.
	if mem1 == 0 || mem2 == 0 {
		t.Fatalf("all hits on one half (mem1=%d mem2=%d); least-loaded policy broken", mem1, mem2)
	}
}

func TestPolicies(t *testing.T) {
	for _, policy := range []InsertPolicy{PolicyFirstFit, PolicyLeastLoaded, PolicyAlternate} {
		cfg := smallConfig()
		cfg.Policy = policy
		tbl, err := New(cfg)
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		for i := uint64(0); i < 100; i++ {
			if _, err := tbl.Insert(key13(i)); err != nil {
				t.Fatalf("policy %d insert %d: %v", policy, i, err)
			}
		}
		for i := uint64(0); i < 100; i++ {
			if _, _, ok := tbl.Lookup(key13(i)); !ok {
				t.Fatalf("policy %d lost key %d", policy, i)
			}
		}
		if policy == PolicyFirstFit {
			// First-fit loads Mem1 preferentially.
			g := tbl.live.Load()
			if g.mem[0].count <= g.mem[1].count {
				t.Fatalf("first-fit: mem1=%d not above mem2=%d", g.mem[0].count, g.mem[1].count)
			}
		}
	}
}

func TestKeyLengthChecked(t *testing.T) {
	tbl, _ := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("short key did not panic")
		}
	}()
	tbl.Lookup([]byte{1, 2, 3})
}

// TestModelProperty checks the table against a reference map under random
// operation sequences, including overflow conditions.
func TestModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := smallConfig()
		cfg.Buckets = 16
		cfg.CAMCapacity = 8
		tbl, err := New(cfg)
		if err != nil {
			return false
		}
		model := make(map[uint64]uint64) // key index -> fid
		for _, op := range ops {
			keyIdx := uint64(op % 64)
			k := key13(keyIdx)
			switch (op >> 8) % 3 {
			case 0:
				fid, err := tbl.Insert(k)
				if err != nil {
					// Full is acceptable only when the model is big.
					if len(model) == 0 {
						return false
					}
					continue
				}
				if prev, ok := model[keyIdx]; ok && prev != fid {
					return false // duplicate insert changed the fid
				}
				model[keyIdx] = fid
			case 1:
				deleted := tbl.Delete(k)
				_, existed := model[keyIdx]
				if deleted != existed {
					return false
				}
				delete(model, keyIdx)
			case 2:
				fid, _, ok := tbl.Lookup(k)
				want, existed := model[keyIdx]
				if ok != existed || (ok && fid != want) {
					return false
				}
			}
			if tbl.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHighLoadIntegrity(t *testing.T) {
	// Fill to ~85% of total capacity and verify every key resolves.
	cfg := DefaultConfig()
	cfg.Buckets = 1024
	cfg.CAMCapacity = 512
	tbl, _ := New(cfg)
	n := uint64(float64(cfg.Capacity()) * 0.85)
	inserted := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		if _, err := tbl.Insert(key13(i)); err != nil {
			break // CAM exhaustion near capacity is legitimate
		}
		inserted = append(inserted, i)
	}
	if float64(len(inserted)) < float64(n)*0.95 {
		t.Fatalf("placed only %d of %d keys at 85%% load", len(inserted), n)
	}
	for _, i := range inserted {
		if _, _, ok := tbl.Lookup(key13(i)); !ok {
			t.Fatalf("key %d lost under load", i)
		}
	}
}

func TestOnChipBitsPositive(t *testing.T) {
	tbl, _ := New(DefaultConfig())
	if tbl.OnChipBits() <= 0 {
		t.Fatal("OnChipBits not positive")
	}
}

// constHash sends every key to hash value 0 (worst-case collisions).
type constHash struct{}

func (constHash) Hash([]byte) uint64 { return 0 }
func (constHash) Name() string       { return "const0" }

// TestCAMStageInsertAllocFree pins the CAM-overflow insert path's
// allocation bound: with both candidate buckets full, every insert lands
// in the CAM, and with inline slot storage the whole path — three-stage
// duplicate pre-check, CAM placement, value fixup — allocates nothing.
// (Before the slotarr layout, every CAM placement cloned the key.)
func TestCAMStageInsertAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	cfg := DefaultConfig()
	cfg.Buckets = 1 // one bucket per half: trivially saturated
	cfg.SlotsPerBucket = 1
	cfg.CAMCapacity = 8
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, cfg.KeyLen)
	// Fill both halves (and size the CAM arena with one throwaway round).
	for i := byte(0); i < 3; i++ {
		key[1] = i
		if _, err := tbl.Insert(key); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.CAMInUse() != 1 {
		t.Fatalf("CAM holds %d entries after saturation, want 1", tbl.CAMInUse())
	}
	tbl.Delete(key)
	if n := testing.AllocsPerRun(200, func() {
		key[0]++
		id, err := tbl.Insert(key)
		if err != nil {
			t.Fatal(err)
		}
		if stage, _, _ := tbl.DecodeFID(id); stage != StageCAM {
			t.Fatalf("insert resolved at %v, want the CAM stage", stage)
		}
		if !tbl.Delete(key) {
			t.Fatal("inserted key not deletable")
		}
	}); n != 0 {
		t.Fatalf("CAM-stage insert/delete cycle allocates %.1f per op, want 0", n)
	}
}
