package hashcam

import (
	"sync/atomic"
	"testing"

	"repro/internal/hashfn"
)

// hashedKey aliases the shared key13 helper for readability in this file.
func hashedKey(i uint64) []byte { return key13(i) }

// TestHashedMatchesUnhashed drives two identical tables through the same
// operation sequence — one via the byte-key methods, one via the hashed
// methods — and requires identical IDs, stages, errors and final stats.
// This is the bit-identity contract of the single-hash-pass fast path.
func TestHashedMatchesUnhashed(t *testing.T) {
	cfg := smallConfig()
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A mix dense enough to hit every stage: duplicate inserts, lookups of
	// present and absent keys, deletes, CAM overflow (64 buckets × 2 slots
	// × 2 halves = 256 entries + 8 CAM at 400 keys inserted).
	for i := uint64(0); i < 400; i++ {
		k := hashedKey(i)
		kh := cfg.Hash.Compute(k)
		idA, errA := plain.Insert(k)
		idB, errB := hashed.InsertHashed(k, kh)
		if idA != idB || (errA == nil) != (errB == nil) {
			t.Fatalf("insert %d: plain (%d,%v) vs hashed (%d,%v)", i, idA, errA, idB, errB)
		}
		if i%3 == 0 { // duplicate insert
			idA, errA = plain.Insert(k)
			idB, errB = hashed.InsertHashed(k, kh)
			if idA != idB || (errA == nil) != (errB == nil) {
				t.Fatalf("dup insert %d: plain (%d,%v) vs hashed (%d,%v)", i, idA, errA, idB, errB)
			}
		}
	}
	for i := uint64(0); i < 800; i++ {
		k := hashedKey(i)
		kh := cfg.Hash.Compute(k)
		idA, stA, okA := plain.Lookup(k)
		idB, stB, okB := hashed.LookupHashed(k, kh)
		if idA != idB || stA != stB || okA != okB {
			t.Fatalf("lookup %d: plain (%d,%v,%v) vs hashed (%d,%v,%v)", i, idA, stA, okA, idB, stB, okB)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		k := hashedKey(i)
		kh := cfg.Hash.Compute(k)
		if a, b := plain.Delete(k), hashed.DeleteHashed(k, kh); a != b {
			t.Fatalf("delete %d: plain %v vs hashed %v", i, a, b)
		}
	}
	if a, b := plain.Stats(), hashed.Stats(); a != b {
		t.Fatalf("final stats diverge:\nplain  %+v\nhashed %+v", a, b)
	}
	if plain.Len() != hashed.Len() {
		t.Fatalf("Len: plain %d vs hashed %d", plain.Len(), hashed.Len())
	}
}

// countingFunc counts Hash invocations, pinning how often the table
// actually hashes a key.
type countingFunc struct {
	inner hashfn.Func
	calls atomic.Int64
}

func (c *countingFunc) Hash(key []byte) uint64 { c.calls.Add(1); return c.inner.Hash(key) }
func (c *countingFunc) Name() string           { return "counting(" + c.inner.Name() + ")" }

// TestInsertHashesEachIndexOnce pins the satellite fix for the insert
// double-work: an insert of a fresh key must compute each bucket index at
// most once (previously Lookup computed both on the miss and Insert
// recomputed both — two H1 and two H2 evaluations per insert).
func TestInsertHashesEachIndexOnce(t *testing.T) {
	h1 := &countingFunc{inner: &hashfn.Mix64{Seed: 1}}
	h2 := &countingFunc{inner: &hashfn.Mix64{Seed: 2}}
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: h1, H2: h2}
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		h1.calls.Store(0)
		h2.calls.Store(0)
		if _, err := tbl.Insert(hashedKey(i)); err != nil {
			t.Fatal(err)
		}
		if got1, got2 := h1.calls.Load(), h2.calls.Load(); got1 != 1 || got2 != 1 {
			t.Fatalf("insert %d: %d H1 and %d H2 evaluations, want 1 and 1", i, got1, got2)
		}
	}
	// A lookup that resolves at Mem1 must never evaluate H2 (lazy stage 3).
	for i := uint64(0); i < 50; i++ {
		k := hashedKey(i)
		h1.calls.Store(0)
		h2.calls.Store(0)
		_, stage, ok := tbl.Lookup(k)
		if !ok {
			t.Fatalf("key %d lost", i)
		}
		want2 := int64(1)
		if stage == StageMem1 || stage == StageCAM {
			want2 = 0
		}
		want1 := int64(1)
		if stage == StageCAM {
			want1 = 0
		}
		if got1, got2 := h1.calls.Load(), h2.calls.Load(); got1 != want1 || got2 != want2 {
			t.Fatalf("lookup %d (stage %v): %d H1 / %d H2 evaluations, want %d / %d",
				i, stage, got1, got2, want1, want2)
		}
	}
	// The hashed variants never hash at all.
	kh7 := cfg.Hash.Compute(hashedKey(7))
	kh1000 := cfg.Hash.Compute(hashedKey(1000))
	h1.calls.Store(0)
	h2.calls.Store(0)
	tbl.LookupHashed(hashedKey(7), kh7)
	if _, err := tbl.InsertHashed(hashedKey(1000), kh1000); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteHashed(hashedKey(1000), kh1000)
	if got1, got2 := h1.calls.Load(), h2.calls.Load(); got1 != 0 || got2 != 0 {
		t.Fatalf("hashed ops evaluated %d H1 / %d H2, want 0 / 0", got1, got2)
	}
}
