package hashcam

import (
	"errors"
	"fmt"

	"repro/internal/cam"
	"repro/internal/hashfn"
	"repro/internal/table"
)

// Exact adapts Table to the repo-wide table.Backend contract: the
// stage-reporting Lookup collapses to hit/miss, and probe accounting comes
// from the table's stats. The adapter is how the paper's structure plugs
// into the sharded engine alongside the §II baselines.
type Exact struct {
	*Table
}

// Lookup implements table.Backend.
func (e Exact) Lookup(key []byte) (uint64, bool) {
	id, _, ok := e.Table.Lookup(key)
	return id, ok
}

// Insert implements table.Backend, normalising the genuine-overflow error
// onto table.ErrTableFull so callers can test fullness uniformly across
// backends; other failures (internal invariants) pass through untouched.
func (e Exact) Insert(key []byte) (uint64, error) {
	return normalizeInsert(e.Table.Insert(key))
}

// normalizeInsert maps cam.ErrFull onto the repo-wide fullness sentinel.
func normalizeInsert(id uint64, err error) (uint64, error) {
	if err != nil {
		if errors.Is(err, cam.ErrFull) {
			return 0, fmt.Errorf("hashcam: %w: %w", table.ErrTableFull, err)
		}
		return 0, err
	}
	return id, nil
}

// LookupHashed implements table.HashedBackend.
func (e Exact) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	id, _, ok := e.Table.LookupHashed(key, kh)
	return id, ok
}

// InsertHashed implements table.HashedBackend with the same error
// normalisation as Insert.
func (e Exact) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	return normalizeInsert(e.Table.InsertHashed(key, kh))
}

// DeleteHashed implements table.HashedBackend.
func (e Exact) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	return e.Table.DeleteHashed(key, kh)
}

// Probes implements table.Backend.
func (e Exact) Probes() int64 { return e.Table.Stats().Probes }

// Name implements table.Backend.
func (e Exact) Name() string { return "hashcam" }

// PrefetchHashed implements table.PrefetchBackend, touching both memory
// halves' candidate buckets (the CAM is small enough to stay hot on its
// own).
func (e Exact) PrefetchHashed(kh hashfn.KeyHashes) uint64 { return e.Table.Prefetch(kh) }

// ReadHashed implements table.OptimisticBackend: the outcome token is the
// resolving pipeline stage (Stage-1, so CAM/Mem1/Mem2/Miss fit the
// MaxReadOutcomes bound), committed back as the exact outcome add the
// locked lookup would have recorded.
func (e Exact) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	id, stage, ok := e.Table.ReadHashed(key, kh)
	return id, uint8(stage - 1), ok
}

// CommitReads implements table.OptimisticBackend.
func (e Exact) CommitReads(outcome uint8, n int64) {
	e.Table.CommitLookups(Stage(outcome)+1, n)
}

// ReadLockFree implements table.OptimisticBackend (method promotes from
// *Table; restated here only for the doc trail: true on the inline slot
// path, false for spilled key widths).

// StorageBytes implements table.StorageSized.
func (e Exact) StorageBytes() int64 { return e.Table.Bytes() }

var (
	_ table.HashedBackend     = Exact{}
	_ table.EvictableBackend  = Exact{} // lifecycle methods promote from *Table
	_ table.CandidateSlotter  = Exact{}
	_ table.PrefetchBackend   = Exact{}
	_ table.OptimisticBackend = Exact{}
	_ table.StorageSized      = Exact{}
	_ table.GrowableBackend   = Exact{} // grow methods promote from *Table
	_ table.RelocatingBackend = Exact{} // migration moves feed the expiry hook
	_ table.StripedBackend    = Exact{} // stripe methods promote from *Table
)

// BackendConfig derives a hashcam Config from the generic backend Config;
// the conventional-arrangement baseline reuses it for equal geometry. The
// generic config is validated first, so direct construction through this
// path rejects an out-of-range capacity with the same error the registry
// and sharded constructors surface (never the silent clamp).
func BackendConfig(cfg table.Config) (Config, error) {
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	hcfg := DefaultConfig()
	hcfg.Buckets = cfg.BucketsFor(2) // two halves
	hcfg.SlotsPerBucket = cfg.SlotsPerBucket
	hcfg.KeyLen = cfg.KeyLen
	hcfg.CAMCapacity = cfg.CAMCapacity
	hcfg.Hash = cfg.Hash
	return hcfg, nil
}

func init() {
	table.Register("hashcam", func(cfg table.Config) (table.Backend, error) {
		hcfg, err := BackendConfig(cfg)
		if err != nil {
			return nil, err
		}
		t, err := New(hcfg)
		if err != nil {
			return nil, err
		}
		return Exact{Table: t}, nil
	})
}
