// Package hashcam implements the paper's Hash-CAM table (Fig. 1): a
// two-choice hash table whose halves (Mem1/Mem2) are indexed by two
// pre-selected hash functions, each bucket holding K entries, with a small
// CAM absorbing the collisions that fit in neither bucket.
//
// A lookup is a pipelined three-stage search — CAM, then Hash1→Mem1, then
// Hash2→Mem2 — that exits at the first stage producing a match; the stage
// at which a query resolves is reported so the timed model (and the
// early-exit ablation) can charge the right number of memory accesses.
//
// The table is laid out as flat arenas mirroring the DRAM layout: bucket b
// of table T occupies one contiguous block of K fixed-width entries, the
// unit the timed model fetches as a burst group. Each half is a
// cache-conscious slotarr store — inline keys plus a one-byte fingerprint
// tag per slot derived from the same hash word that indexed the bucket, so
// a bucket probe SWAR-scans the K tags in one word load and only reads key
// memory on a tag hit.
package hashcam

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/cam"
	"repro/internal/hashfn"
	"repro/internal/table/slotarr"
)

// Stage identifies the pipeline stage at which a lookup resolved.
type Stage int

// Lookup stages, in search order.
const (
	StageCAM Stage = iota + 1
	StageMem1
	StageMem2
	// StageMiss marks a lookup that matched nowhere.
	StageMiss
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageCAM:
		return "cam"
	case StageMem1:
		return "mem1"
	case StageMem2:
		return "mem2"
	case StageMiss:
		return "miss"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// InsertPolicy selects how a new key chooses between its two buckets.
type InsertPolicy int

// Insert policies.
const (
	// PolicyFirstFit fills the Hash1 bucket before trying Hash2 — the
	// simplest hardware update path.
	PolicyFirstFit InsertPolicy = iota + 1
	// PolicyLeastLoaded places the key in the emptier of its two buckets
	// (balanced allocations, Azar et al. [6]); the prototype default.
	PolicyLeastLoaded
	// PolicyAlternate alternates the preferred table per insert, the
	// static analogue of the scheme's path load balancer.
	PolicyAlternate
)

// Config parameterises a table.
type Config struct {
	// Buckets is the bucket count per memory half (power of two).
	Buckets int
	// SlotsPerBucket is K of Fig. 1: entries per hash location.
	SlotsPerBucket int
	// KeyLen is the fixed descriptor key length in bytes.
	KeyLen int
	// CAMCapacity bounds the collision overflow region.
	CAMCapacity int
	// Hash supplies the two pre-selected hash functions.
	Hash hashfn.Pair
	// Policy selects the insert placement policy (default PolicyLeastLoaded).
	Policy InsertPolicy
}

// DefaultConfig returns a laptop-scale configuration (64 k flows capacity)
// with the prototype's structural parameters: K=4 slots, 64-entry CAM,
// CRC hash pair.
func DefaultConfig() Config {
	return Config{
		Buckets:        8192,
		SlotsPerBucket: 4,
		KeyLen:         13,
		CAMCapacity:    64,
		Hash:           hashfn.DefaultPair(),
		Policy:         PolicyLeastLoaded,
	}
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	switch {
	case c.Buckets <= 0 || c.Buckets&(c.Buckets-1) != 0:
		return fmt.Errorf("hashcam: buckets must be a positive power of two, got %d", c.Buckets)
	case c.SlotsPerBucket <= 0:
		return fmt.Errorf("hashcam: slots per bucket must be positive, got %d", c.SlotsPerBucket)
	case c.KeyLen <= 0:
		return fmt.Errorf("hashcam: key length must be positive, got %d", c.KeyLen)
	case c.CAMCapacity <= 0:
		return fmt.Errorf("hashcam: CAM capacity must be positive, got %d", c.CAMCapacity)
	case c.Hash.H1 == nil || c.Hash.H2 == nil:
		return fmt.Errorf("hashcam: both hash functions must be set")
	case c.Policy < PolicyFirstFit || c.Policy > PolicyAlternate:
		return fmt.Errorf("hashcam: unknown insert policy %d", int(c.Policy))
	}
	return nil
}

// Capacity returns the total entry capacity (both halves plus CAM).
func (c Config) Capacity() int {
	return 2*c.Buckets*c.SlotsPerBucket + c.CAMCapacity
}

// Stats aggregates table activity.
type Stats struct {
	Lookups     int64
	Hits        int64
	HitsByStage [4]int64 // indexed by Stage-1 for CAM/Mem1/Mem2
	Inserts     int64
	CAMInserts  int64
	Deletes     int64
	FailedIns   int64
	// Probes counts bucket/CAM accesses performed, the memory-traffic
	// proxy the baseline comparison benches report.
	Probes int64
}

// counters is the live form of Stats, designed so a lookup costs exactly
// one atomic add: it records only the stage that resolved it (indexed by
// Stage-1, with StageMiss counting misses). Because the early-exit
// pipeline's access count is a pure function of the resolving stage —
// CAM hit 1 probe, Mem1 hit 2, Mem2 hit and miss 3 — lookup counts, hit
// counts, stage splits and lookup-path probes are all derived from the
// outcome array at snapshot time. Counters are atomic so lookups can run
// under a shared (read) lock concurrently with each other.
type counters struct {
	outcome    [4]atomic.Int64
	inserts    atomic.Int64
	camInserts atomic.Int64
	deletes    atomic.Int64
	failedIns  atomic.Int64
	// xprobes counts accesses outside the lookup search path: placement
	// writes, CAM overflow writes, and delete-path searches.
	xprobes atomic.Int64
}

// stageProbes is the bucket/CAM access count of a lookup resolving at
// each stage (indexed by Stage-1): the early-exit contract of §III-A.
var stageProbes = [4]int64{1, 2, 3, 3}

// snapshot materialises the counters as a Stats value.
func (c *counters) snapshot() Stats {
	s := Stats{
		Inserts:    c.inserts.Load(),
		CAMInserts: c.camInserts.Load(),
		Deletes:    c.deletes.Load(),
		FailedIns:  c.failedIns.Load(),
		Probes:     c.xprobes.Load(),
	}
	for i, cost := range stageProbes {
		n := c.outcome[i].Load()
		s.Lookups += n
		s.Probes += cost * n
		if Stage(i+1) != StageMiss {
			s.HitsByStage[i] = n
			s.Hits += n
		}
	}
	return s
}

// half is one memory block (Mem1 or Mem2): a flat slotarr arena of
// Buckets × K slots.
type half struct {
	store *slotarr.Store
	count int
}

// geom is one complete two-half memory geometry: the bucket count and
// both halves' arenas. The table holds its geometry behind an atomic
// pointer so an online grow can run a second geometry next to the live
// one and swap them without moving either arena — the publication
// discipline the lock-free read path requires (a torn interleaving reads
// one internally consistent geometry or the other, never a fault; the
// seqlock discards any wrong result).
type geom struct {
	buckets int
	mem     [2]half
}

// slots returns one half's slot count (Buckets × K).
func (g *geom) slots(k int) int { return g.buckets * k }

// Table is the untimed Hash-CAM table. The lookup path (Lookup,
// LookupHashed) is safe to call concurrently with itself; mutations
// (Insert, Delete and their hashed variants) require exclusive access —
// the locking discipline of the sharded table's RWMutex. The hardware it
// models is a single pipeline.
//
// live is the current geometry; old is non-nil only while an online grow
// is migrating entries out of the previous geometry (see BeginGrow), in
// which case searches consult live first and old second, and all
// placements go to live.
type Table struct {
	cfg   Config
	live  atomic.Pointer[geom]
	old   atomic.Pointer[geom]
	cam   *cam.CAM
	stats counters

	altToggle bool // PolicyAlternate state

	// growCursor is the next retiring-arena offset MigrateStep examines;
	// moveBuf and relocate carry each step's slot moves to the expiry
	// side-tables (table.RelocatingBackend). All three are guarded by the
	// caller's exclusive lock.
	growCursor uint64
	moveBuf    [][2]uint64
	relocate   func(moves [][2]uint64)

	// stripeBound is the construction-time bucket count — the largest
	// stripe count for which every Mem1/Mem2 bucket stays congruent to
	// its hash word (grows only double the count, preserving the fold;
	// see table.StripedBackend). escalate, when set, is called before the
	// first CAM mutation of an insert or delete: CAM slots are probed by
	// every read regardless of the key's buckets, so no stripe covers
	// them. Guarded by the caller's exclusive lock.
	stripeBound int
	escalate    func()
}

// newGeom allocates a geometry of the given bucket count.
func newGeom(buckets, slotsPerBucket, keyLen int) *geom {
	g := &geom{buckets: buckets}
	n := buckets * slotsPerBucket
	for i := range g.mem {
		g.mem[i] = half{store: slotarr.New(n, keyLen)}
	}
	return g
}

// New builds a table from cfg.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg, cam: cam.New(cfg.CAMCapacity), stripeBound: cfg.Buckets}
	// Fix the CAM's arena now rather than on its first insert: the lazy
	// allocation would swing an internal pointer mid-traffic, which the
	// lock-free read path (ReadHashed) cannot tolerate.
	t.cam.Preallocate(cfg.KeyLen)
	t.live.Store(newGeom(cfg.Buckets, cfg.SlotsPerBucket, cfg.KeyLen))
	return t, nil
}

// Config returns the table's configuration. Buckets reflects the live
// geometry, which an online grow enlarges past the constructed value.
func (t *Table) Config() Config {
	c := t.cfg
	c.Buckets = t.live.Load().buckets
	return c
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats.snapshot() }

// StripeBound reports the construction-time bucket count: Config.Validate
// enforces a power of two and an online grow only ever doubles it, so any
// stripe count dividing the constructed count keeps every Mem1/Mem2
// bucket — in the live and any retiring geometry — congruent to its hash
// word. CAM slots are outside any bucket; mutations there escalate via
// the hook instead.
func (t *Table) StripeBound() int { return t.stripeBound }

// SetEscalateHook registers fn to be called before the first mutation of
// CAM state within an insert or delete (the sharded layer promotes the
// write's seqlock stamp from the key's stripes to the shard-global word).
func (t *Table) SetEscalateHook(fn func()) { t.escalate = fn }

// escalateCAM invokes the escalate hook ahead of a CAM mutation.
func (t *Table) escalateCAM() {
	if t.escalate != nil {
		t.escalate()
	}
}

// Len returns the number of stored entries (spanning both geometries
// while a grow is migrating).
func (t *Table) Len() int {
	g := t.live.Load()
	n := g.mem[0].count + g.mem[1].count + t.cam.InUse()
	if og := t.old.Load(); og != nil {
		n += og.mem[0].count + og.mem[1].count
	}
	return n
}

// CAMInUse returns the occupied CAM entries (the overflow pressure gauge).
func (t *Table) CAMInUse() int { return t.cam.InUse() }

// fidIn encodes a location in geometry g as a flow ID at the given region
// base: CAM entries occupy [0, cam); a geometry's half 0 occupies
// [base, base+n), half 1 the block above, with n = g's slots per half.
// The live geometry sits at base CAMCapacity; during a migration the
// retiring geometry's IDs are re-addressed above the live region (see
// GrowLayout). Location-derived IDs are what the paper's FID_GEN emits
// ("output the corresponding location index").
func (t *Table) fidIn(g *geom, base uint64, h, bucket, slot int) uint64 {
	return base + uint64(h*g.slots(t.cfg.SlotsPerBucket)+bucket*t.cfg.SlotsPerBucket+slot)
}

// liveBase returns the live geometry's first non-CAM flow ID.
func (t *Table) liveBase() uint64 { return uint64(t.cfg.CAMCapacity) }

// oldBase returns the retiring geometry's first flow ID during a
// migration: the live region's exclusive end.
func (t *Table) oldBase(g *geom) uint64 {
	return uint64(t.cfg.CAMCapacity + 2*g.slots(t.cfg.SlotsPerBucket))
}

// camFID encodes a CAM entry index as a flow ID.
func (t *Table) camFID(index int) uint64 { return uint64(index) }

// DecodeFID reports the region and position of a flow ID in the live
// geometry, for diagnostics and tests (retiring-geometry IDs, which only
// exist mid-migration, decode as StageMiss).
func (t *Table) DecodeFID(fid uint64) (stage Stage, bucket, slot int) {
	camCap := uint64(t.cfg.CAMCapacity)
	n := uint64(t.live.Load().slots(t.cfg.SlotsPerBucket))
	switch {
	case fid < camCap:
		return StageCAM, int(fid), 0
	case fid < camCap+n:
		off := fid - camCap
		return StageMem1, int(off) / t.cfg.SlotsPerBucket, int(off) % t.cfg.SlotsPerBucket
	case fid < camCap+2*n:
		off := fid - camCap - n
		return StageMem2, int(off) / t.cfg.SlotsPerBucket, int(off) % t.cfg.SlotsPerBucket
	default:
		return StageMiss, 0, 0
	}
}

// checkKey validates the key length once per operation.
func (t *Table) checkKey(key []byte) {
	if len(key) != t.cfg.KeyLen {
		panic(fmt.Sprintf("hashcam: key of %d bytes, table configured for %d", len(key), t.cfg.KeyLen))
	}
}

// keyWords carries the two full hash words of one operation, derived
// lazily so the early-exit hash-count contract is preserved: a CAM hit
// computes no hash, a Mem1 hit only H1. The full words (not just bucket
// indices, as before the slotarr layout) travel because both the bucket
// reduction and the fingerprint tag derive from the same word.
type keyWords struct {
	w1, w2       uint64
	have1, have2 bool
}

// word1 returns H1's full word, computing it at most once.
func (t *Table) word1(key []byte, kw *keyWords) uint64 {
	if !kw.have1 {
		kw.w1 = t.cfg.Hash.H1.Hash(key)
		kw.have1 = true
	}
	return kw.w1
}

// word2 returns H2's full word, computing it at most once.
func (t *Table) word2(key []byte, kw *keyWords) uint64 {
	if !kw.have2 {
		kw.w2 = t.cfg.Hash.H2.Hash(key)
		kw.have2 = true
	}
	return kw.w2
}

// searchBucket scans one bucket of arena st for key via the tag-word
// probe. The caller accounts the access (lookups via the stage outcome,
// deletes via xprobes). w is the hash word that indexed the bucket; its
// top bits are the tag the key was stored under. The candidate loop runs
// in this frame over the inlinable TagMatches leaf, so a probe costs no
// function calls beyond the key compare on a tag hit.
func (t *Table) searchBucket(st *slotarr.Store, bucket int, w uint64, key []byte) (int, bool) {
	k := t.cfg.SlotsPerBucket
	base := bucket * k
	if k > 8 {
		slot, ok := st.FindTagged(base, k, slotarr.TagOf(w), key)
		return slot - base, ok
	}
	for m := st.TagMatches(base, k, slotarr.TagOf(w)); m != 0; {
		var off int
		off, m = slotarr.NextMatch(m)
		if bytes.Equal(st.Key(base+off), key) {
			return off, true
		}
	}
	return 0, false
}

// searchAt runs the three-stage search with zero stats writes, deriving
// hash words through kw at most once each (callers on the hashed fast
// path pre-fill kw, so the whole search hashes nothing). The derived
// words persist in kw so a following insert never hashes the key a
// second time; after a full miss both are always valid.
//
// While a grow is migrating, the search extends to the retiring
// geometry after the live one misses — new-then-old, so a key that has
// already migrated resolves to its live slot even before the old copy is
// cleared. Old-geometry hits report the stage of the half they matched
// in (Mem1/Mem2), and the stage's steady-state probe cost; the transient
// extra probes of the two-arena search are not modelled, as migration
// windows are short and bounded.
//
// Because it writes no shared memory at all, searchAt is also the
// lock-free read core behind ReadHashed: all state it touches — CAM
// arena (preallocated at New, see cam.Preallocate), each geometry's
// slotarr stores — is reached through atomically published pointers to
// internally consistent geometries, so a search racing a writer (even a
// mid-grow geometry swap) can misread but never fault (the slotarr
// seqlock contract). Callers account the outcome themselves: lookupAt
// inline, the optimistic path deferred through CommitLookups.
func (t *Table) searchAt(key []byte, kw *keyWords) (fid uint64, stage Stage, ok bool) {
	// Stage 1: CAM (single-cycle parallel search).
	if v, hit := t.cam.Find(key); hit {
		return v, StageCAM, true
	}
	g := t.live.Load()
	// Stage 2: Hash1 → Mem1.
	w1 := t.word1(key, kw)
	b1 := hashfn.Reduce(w1, g.buckets)
	if slot, hit := t.searchBucket(g.mem[0].store, b1, w1, key); hit {
		return t.fidIn(g, t.liveBase(), 0, b1, slot), StageMem1, true
	}
	// Stage 3: Hash2 → Mem2.
	w2 := t.word2(key, kw)
	b2 := hashfn.Reduce(w2, g.buckets)
	if slot, hit := t.searchBucket(g.mem[1].store, b2, w2, key); hit {
		return t.fidIn(g, t.liveBase(), 1, b2, slot), StageMem2, true
	}
	// Mid-migration: the key may still reside in the retiring geometry.
	if og := t.old.Load(); og != nil {
		base := t.oldBase(g)
		ob1 := hashfn.Reduce(w1, og.buckets)
		if slot, hit := t.searchBucket(og.mem[0].store, ob1, w1, key); hit {
			return t.fidIn(og, base, 0, ob1, slot), StageMem1, true
		}
		ob2 := hashfn.Reduce(w2, og.buckets)
		if slot, hit := t.searchBucket(og.mem[1].store, ob2, w2, key); hit {
			return t.fidIn(og, base, 1, ob2, slot), StageMem2, true
		}
	}
	return 0, StageMiss, false
}

// lookupAt is searchAt plus the accounting: the single outcome add per
// stage exit is the lookup's whole stats cost.
func (t *Table) lookupAt(key []byte, kw *keyWords) (fid uint64, stage Stage, ok bool) {
	fid, stage, ok = t.searchAt(key, kw)
	t.stats.outcome[stage-1].Add(1)
	return fid, stage, ok
}

// ReadHashed is LookupHashed with the accounting deferred: it performs no
// shared-memory writes at all, returning the resolving stage for the
// caller to commit through CommitLookups once its seqlock validates. The
// sharded layer's optimistic read path (and the convhashcam adapter) run
// it locklessly, concurrent with one writer; results over quiescent state
// are bit-identical to LookupHashed.
func (t *Table) ReadHashed(key []byte, kh hashfn.KeyHashes) (fid uint64, stage Stage, ok bool) {
	t.checkKey(key)
	kw := keyWords{w1: kh.H1, w2: kh.H2, have1: true, have2: true}
	return t.searchAt(key, &kw)
}

// CommitLookups applies the deferred accounting of n validated ReadHashed
// calls that resolved at stage — exactly the outcome add lookupAt would
// have performed per call. Safe without any lock (the outcome counters
// are atomic).
func (t *Table) CommitLookups(stage Stage, n int64) {
	t.stats.outcome[stage-1].Add(n)
}

// ReadLockFree reports whether ReadHashed may race a writer on this
// table: true on the inline slotarr path, false when the configured key
// width spills to per-slot heap buffers (torn slice headers are not
// seqlock-safe; see the slotarr package comment). Online growth keeps the
// guarantee — every geometry swap is an atomic pointer publication.
func (t *Table) ReadLockFree() bool {
	return t.live.Load().mem[0].store.Inline()
}

// Lookup searches for key through the three pipeline stages and returns
// the flow ID, the stage that resolved the query, and whether it matched.
// Hash words are derived lazily: an early-stage hit never computes the
// later stage's word.
func (t *Table) Lookup(key []byte) (uint64, Stage, bool) {
	t.checkKey(key)
	var kw keyWords
	return t.lookupAt(key, &kw)
}

// LookupHashed is Lookup over precomputed key hashes: the caller has
// already made the single hash pass (hashfn.Pair.Compute with this
// table's pair), so both bucket indices and tags are free derivations.
// Results are bit-identical to Lookup over the same key.
func (t *Table) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, Stage, bool) {
	t.checkKey(key)
	kw := keyWords{w1: kh.H1, w2: kh.H2, have1: true, have2: true}
	return t.lookupAt(key, &kw)
}

// place writes key into live-geometry location (h, bucket, slot) under
// the tag of the word that indexed the bucket.
func (t *Table) place(g *geom, h, bucket, slot int, w uint64, key []byte) uint64 {
	k := t.cfg.SlotsPerBucket
	g.mem[h].store.Set(bucket*k+slot, slotarr.TagOf(w), key)
	g.mem[h].count++
	t.stats.xprobes.Add(1) // the write access
	return t.fidIn(g, t.liveBase(), h, bucket, slot)
}

// placeOrder resolves the insert policy's half preference for one key's
// bucket pair in geometry g, mutating the alternation toggle exactly as
// the pre-grow insert path always has.
func (t *Table) placeOrder(g *geom, buckets [2]int) [2]int {
	k := t.cfg.SlotsPerBucket
	order := [2]int{0, 1}
	switch t.cfg.Policy {
	case PolicyFirstFit:
		// keep order
	case PolicyLeastLoaded:
		l1 := g.mem[0].store.Load(buckets[0]*k, k)
		l2 := g.mem[1].store.Load(buckets[1]*k, k)
		switch {
		case l2 < l1:
			order = [2]int{1, 0}
		case l2 == l1:
			// Ties alternate between halves, as the dual-path load
			// balancer keeps both memory channels evenly occupied.
			if t.altToggle {
				order = [2]int{1, 0}
			}
			t.altToggle = !t.altToggle
		}
	case PolicyAlternate:
		if t.altToggle {
			order = [2]int{1, 0}
		}
		t.altToggle = !t.altToggle
	}
	return order
}

// Insert stores key if absent and returns its flow ID. Inserting an
// existing key returns the existing ID (idempotent, as the flow table's
// update path behaves: a concurrent duplicate insert must not create two
// flow entries). When both buckets are full and the CAM is full, Insert
// returns cam.ErrFull.
//
// Each hash word is computed at most once per insert: the duplicate
// pre-check shares its derived words with the placement step instead of
// rehashing the key.
func (t *Table) Insert(key []byte) (uint64, error) {
	t.checkKey(key)
	var kw keyWords
	return t.insertAt(key, &kw)
}

// InsertHashed is Insert over precomputed key hashes; the whole insert
// performs zero hash computations.
func (t *Table) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	t.checkKey(key)
	kw := keyWords{w1: kh.H1, w2: kh.H2, have1: true, have2: true}
	return t.insertAt(key, &kw)
}

// insertAt implements Insert over kw's lazily derived hash words. New
// placements always target the live geometry — during a migration the
// retiring arena only drains (the duplicate pre-check still finds keys
// that have not yet migrated, via searchAt's two-arena search).
func (t *Table) insertAt(key []byte, kw *keyWords) (uint64, error) {
	fidV, _, ok := t.lookupAt(key, kw)
	if ok {
		return fidV, nil
	}
	// The duplicate pre-check missed everywhere, so it derived both hash
	// words on the way through; they are reused verbatim below.
	t.stats.inserts.Add(1)

	g := t.live.Load()
	w := [2]uint64{kw.w1, kw.w2}
	buckets := [2]int{hashfn.Reduce(kw.w1, g.buckets), hashfn.Reduce(kw.w2, g.buckets)}
	k := t.cfg.SlotsPerBucket
	for _, h := range t.placeOrder(g, buckets) {
		if slot, ok := g.mem[h].store.FindFree(buckets[h]*k, k); ok {
			return t.place(g, h, buckets[h], slot-buckets[h]*k, w[h], key), nil
		}
	}
	// Both buckets full: overflow to the CAM — outside any stripe's
	// coverage, so the write section must own the shard-global word
	// before the CAM arena changes.
	t.escalateCAM()
	idx, err := t.cam.Insert(key, 0)
	if err != nil {
		t.stats.failedIns.Add(1)
		return 0, fmt.Errorf("hashcam: insert overflow (both buckets and CAM full): %w", err)
	}
	camV := t.camFID(idx)
	// Re-insert with the final value; CAM stores the fid as its value.
	if _, err := t.cam.Insert(key, camV); err != nil {
		return 0, fmt.Errorf("hashcam: CAM value fixup: %w", err)
	}
	t.stats.camInserts.Add(1)
	t.stats.xprobes.Add(1)
	return camV, nil
}

// Delete removes key and reports whether it was present. Deletion is the
// path the housekeeping function uses to retire timed-out flows.
func (t *Table) Delete(key []byte) bool {
	t.checkKey(key)
	var kw keyWords
	return t.deleteAt(key, &kw)
}

// DeleteHashed is Delete over precomputed key hashes.
func (t *Table) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	t.checkKey(key)
	kw := keyWords{w1: kh.H1, w2: kh.H2, have1: true, have2: true}
	return t.deleteAt(key, &kw)
}

// deleteAt implements Delete over kw's lazily derived hash words,
// searching new-then-old like lookups so a not-yet-migrated entry can be
// removed mid-grow.
func (t *Table) deleteAt(key []byte, kw *keyWords) bool {
	// Probe the CAM read-only first (Find is the stats-free core) and
	// escalate only on a hit: a CAM miss mutates nothing there, and a hit
	// is about to clear an entry every reader probes regardless of its
	// buckets. The accounting is unchanged — a miss charged nothing
	// before, and the hit path's counters bump exactly as they did.
	if _, hit := t.cam.Find(key); hit {
		t.escalateCAM()
		t.cam.Delete(key)
		t.stats.deletes.Add(1)
		t.stats.xprobes.Add(1)
		return true
	}
	g := t.live.Load()
	k := t.cfg.SlotsPerBucket
	w1 := t.word1(key, kw)
	b1 := hashfn.Reduce(w1, g.buckets)
	t.stats.xprobes.Add(1)
	if slot, ok := t.searchBucket(g.mem[0].store, b1, w1, key); ok {
		g.mem[0].store.Clear(b1*k + slot)
		g.mem[0].count--
		t.stats.deletes.Add(1)
		return true
	}
	w2 := t.word2(key, kw)
	b2 := hashfn.Reduce(w2, g.buckets)
	t.stats.xprobes.Add(1)
	if slot, ok := t.searchBucket(g.mem[1].store, b2, w2, key); ok {
		g.mem[1].store.Clear(b2*k + slot)
		g.mem[1].count--
		t.stats.deletes.Add(1)
		return true
	}
	if og := t.old.Load(); og != nil {
		for h := 0; h < 2; h++ {
			w := w1
			if h == 1 {
				w = w2
			}
			b := hashfn.Reduce(w, og.buckets)
			t.stats.xprobes.Add(1)
			if slot, ok := t.searchBucket(og.mem[h].store, b, w, key); ok {
				og.mem[h].store.Clear(b*k + slot)
				og.mem[h].count--
				t.stats.deletes.Add(1)
				return true
			}
		}
	}
	return false
}

// BucketIndices returns the two bucket choices of key in the live
// geometry, used by the timed model to generate memory addresses.
func (t *Table) BucketIndices(key []byte) (int, int) {
	t.checkKey(key)
	buckets := t.live.Load().buckets
	return t.cfg.Hash.Index1(key, buckets), t.cfg.Hash.Index2(key, buckets)
}

// Prefetch touches the two candidate buckets of a key whose hashes are
// already computed — tag words and leading key bytes — pulling the lines
// the subsequent probe will read toward the cache. The batch pipelines
// call it across a whole sub-batch before resolving it, so the misses
// overlap. Only the live geometry is touched: mid-migration the retiring
// arena is a cold shrinking tail not worth the extra prefetch traffic.
// The returned fold must be sunk by the caller so the compiler cannot
// discard the loads.
func (t *Table) Prefetch(kh hashfn.KeyHashes) uint64 {
	g := t.live.Load()
	k := t.cfg.SlotsPerBucket
	return g.mem[0].store.Touch(hashfn.Reduce(kh.H1, g.buckets)*k) ^
		g.mem[1].store.Touch(hashfn.Reduce(kh.H2, g.buckets)*k)
}

// Bytes returns the slot-storage footprint of the table: both halves'
// arenas (inline keys + tags) plus the CAM, and mid-migration the
// retiring geometry's arenas too.
func (t *Table) Bytes() int64 {
	g := t.live.Load()
	n := g.mem[0].store.Bytes() + g.mem[1].store.Bytes() + t.cam.Bytes()
	if og := t.old.Load(); og != nil {
		n += og.mem[0].store.Bytes() + og.mem[1].store.Bytes()
	}
	return n
}

// OnChipBits returns the block-memory bit cost of the on-chip side (the
// CAM), for the Table I resource substitute.
func (t *Table) OnChipBits() int64 {
	// Value width: enough bits to index the whole table.
	valueBits := 0
	for c := t.cfg.Capacity(); c > 0; c >>= 1 {
		valueBits++
	}
	return t.cam.BitCost(t.cfg.KeyLen, valueBits)
}
