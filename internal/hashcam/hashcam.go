// Package hashcam implements the paper's Hash-CAM table (Fig. 1): a
// two-choice hash table whose halves (Mem1/Mem2) are indexed by two
// pre-selected hash functions, each bucket holding K entries, with a small
// CAM absorbing the collisions that fit in neither bucket.
//
// A lookup is a pipelined three-stage search — CAM, then Hash1→Mem1, then
// Hash2→Mem2 — that exits at the first stage producing a match; the stage
// at which a query resolves is reported so the timed model (and the
// early-exit ablation) can charge the right number of memory accesses.
//
// The table is laid out as flat arenas mirroring the DRAM layout: bucket b
// of table T occupies one contiguous block of K fixed-width entries, the
// unit the timed model fetches as a burst group.
package hashcam

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/cam"
	"repro/internal/hashfn"
)

// Stage identifies the pipeline stage at which a lookup resolved.
type Stage int

// Lookup stages, in search order.
const (
	StageCAM Stage = iota + 1
	StageMem1
	StageMem2
	// StageMiss marks a lookup that matched nowhere.
	StageMiss
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageCAM:
		return "cam"
	case StageMem1:
		return "mem1"
	case StageMem2:
		return "mem2"
	case StageMiss:
		return "miss"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// InsertPolicy selects how a new key chooses between its two buckets.
type InsertPolicy int

// Insert policies.
const (
	// PolicyFirstFit fills the Hash1 bucket before trying Hash2 — the
	// simplest hardware update path.
	PolicyFirstFit InsertPolicy = iota + 1
	// PolicyLeastLoaded places the key in the emptier of its two buckets
	// (balanced allocations, Azar et al. [6]); the prototype default.
	PolicyLeastLoaded
	// PolicyAlternate alternates the preferred table per insert, the
	// static analogue of the scheme's path load balancer.
	PolicyAlternate
)

// Config parameterises a table.
type Config struct {
	// Buckets is the bucket count per memory half (power of two).
	Buckets int
	// SlotsPerBucket is K of Fig. 1: entries per hash location.
	SlotsPerBucket int
	// KeyLen is the fixed descriptor key length in bytes.
	KeyLen int
	// CAMCapacity bounds the collision overflow region.
	CAMCapacity int
	// Hash supplies the two pre-selected hash functions.
	Hash hashfn.Pair
	// Policy selects the insert placement policy (default PolicyLeastLoaded).
	Policy InsertPolicy
}

// DefaultConfig returns a laptop-scale configuration (64 k flows capacity)
// with the prototype's structural parameters: K=4 slots, 64-entry CAM,
// CRC hash pair.
func DefaultConfig() Config {
	return Config{
		Buckets:        8192,
		SlotsPerBucket: 4,
		KeyLen:         13,
		CAMCapacity:    64,
		Hash:           hashfn.DefaultPair(),
		Policy:         PolicyLeastLoaded,
	}
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	switch {
	case c.Buckets <= 0 || c.Buckets&(c.Buckets-1) != 0:
		return fmt.Errorf("hashcam: buckets must be a positive power of two, got %d", c.Buckets)
	case c.SlotsPerBucket <= 0:
		return fmt.Errorf("hashcam: slots per bucket must be positive, got %d", c.SlotsPerBucket)
	case c.KeyLen <= 0:
		return fmt.Errorf("hashcam: key length must be positive, got %d", c.KeyLen)
	case c.CAMCapacity <= 0:
		return fmt.Errorf("hashcam: CAM capacity must be positive, got %d", c.CAMCapacity)
	case c.Hash.H1 == nil || c.Hash.H2 == nil:
		return fmt.Errorf("hashcam: both hash functions must be set")
	case c.Policy < PolicyFirstFit || c.Policy > PolicyAlternate:
		return fmt.Errorf("hashcam: unknown insert policy %d", int(c.Policy))
	}
	return nil
}

// Capacity returns the total entry capacity (both halves plus CAM).
func (c Config) Capacity() int {
	return 2*c.Buckets*c.SlotsPerBucket + c.CAMCapacity
}

// Stats aggregates table activity.
type Stats struct {
	Lookups     int64
	Hits        int64
	HitsByStage [4]int64 // indexed by Stage-1 for CAM/Mem1/Mem2
	Inserts     int64
	CAMInserts  int64
	Deletes     int64
	FailedIns   int64
	// Probes counts bucket/CAM accesses performed, the memory-traffic
	// proxy the baseline comparison benches report.
	Probes int64
}

// counters is the live form of Stats, designed so a lookup costs exactly
// one atomic add: it records only the stage that resolved it (indexed by
// Stage-1, with StageMiss counting misses). Because the early-exit
// pipeline's access count is a pure function of the resolving stage —
// CAM hit 1 probe, Mem1 hit 2, Mem2 hit and miss 3 — lookup counts, hit
// counts, stage splits and lookup-path probes are all derived from the
// outcome array at snapshot time. Counters are atomic so lookups can run
// under a shared (read) lock concurrently with each other.
type counters struct {
	outcome    [4]atomic.Int64
	inserts    atomic.Int64
	camInserts atomic.Int64
	deletes    atomic.Int64
	failedIns  atomic.Int64
	// xprobes counts accesses outside the lookup search path: placement
	// writes, CAM overflow writes, and delete-path searches.
	xprobes atomic.Int64
}

// stageProbes is the bucket/CAM access count of a lookup resolving at
// each stage (indexed by Stage-1): the early-exit contract of §III-A.
var stageProbes = [4]int64{1, 2, 3, 3}

// snapshot materialises the counters as a Stats value.
func (c *counters) snapshot() Stats {
	s := Stats{
		Inserts:    c.inserts.Load(),
		CAMInserts: c.camInserts.Load(),
		Deletes:    c.deletes.Load(),
		FailedIns:  c.failedIns.Load(),
		Probes:     c.xprobes.Load(),
	}
	for i, cost := range stageProbes {
		n := c.outcome[i].Load()
		s.Lookups += n
		s.Probes += cost * n
		if Stage(i+1) != StageMiss {
			s.HitsByStage[i] = n
			s.Hits += n
		}
	}
	return s
}

// half is one memory block (Mem1 or Mem2) as a flat arena.
type half struct {
	keys  []byte // buckets × K × keyLen
	used  []bool // buckets × K
	count int
}

// Table is the untimed Hash-CAM table. The lookup path (Lookup,
// LookupHashed) is safe to call concurrently with itself; mutations
// (Insert, Delete and their hashed variants) require exclusive access —
// the locking discipline of the sharded table's RWMutex. The hardware it
// models is a single pipeline.
type Table struct {
	cfg   Config
	mem   [2]half
	cam   *cam.CAM
	stats counters

	altToggle bool // PolicyAlternate state
}

// New builds a table from cfg.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg, cam: cam.New(cfg.CAMCapacity)}
	n := cfg.Buckets * cfg.SlotsPerBucket
	for i := range t.mem {
		t.mem[i] = half{
			keys: make([]byte, n*cfg.KeyLen),
			used: make([]bool, n),
		}
	}
	return t, nil
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats.snapshot() }

// Len returns the number of stored entries.
func (t *Table) Len() int {
	return t.mem[0].count + t.mem[1].count + t.cam.InUse()
}

// CAMInUse returns the occupied CAM entries (the overflow pressure gauge).
func (t *Table) CAMInUse() int { return t.cam.InUse() }

// slotKey returns the stored key bytes of (bucket, slot) in half h.
func (t *Table) slotKey(h, bucket, slot int) []byte {
	base := (bucket*t.cfg.SlotsPerBucket + slot) * t.cfg.KeyLen
	return t.mem[h].keys[base : base+t.cfg.KeyLen]
}

// fid encodes a location as a flow ID: CAM entries occupy [0, cam), half 0
// occupies [cam, cam+n), half 1 the block above. Location-derived IDs are
// what the paper's FID_GEN emits ("output the corresponding location
// index").
func (t *Table) fid(h, bucket, slot int) uint64 {
	n := t.cfg.Buckets * t.cfg.SlotsPerBucket
	return uint64(t.cfg.CAMCapacity + h*n + bucket*t.cfg.SlotsPerBucket + slot)
}

// camFID encodes a CAM entry index as a flow ID.
func (t *Table) camFID(index int) uint64 { return uint64(index) }

// DecodeFID reports the region and position of a flow ID, for diagnostics
// and tests.
func (t *Table) DecodeFID(fid uint64) (stage Stage, bucket, slot int) {
	camCap := uint64(t.cfg.CAMCapacity)
	n := uint64(t.cfg.Buckets * t.cfg.SlotsPerBucket)
	switch {
	case fid < camCap:
		return StageCAM, int(fid), 0
	case fid < camCap+n:
		off := fid - camCap
		return StageMem1, int(off) / t.cfg.SlotsPerBucket, int(off) % t.cfg.SlotsPerBucket
	case fid < camCap+2*n:
		off := fid - camCap - n
		return StageMem2, int(off) / t.cfg.SlotsPerBucket, int(off) % t.cfg.SlotsPerBucket
	default:
		return StageMiss, 0, 0
	}
}

// checkKey validates the key length once per operation.
func (t *Table) checkKey(key []byte) {
	if len(key) != t.cfg.KeyLen {
		panic(fmt.Sprintf("hashcam: key of %d bytes, table configured for %d", len(key), t.cfg.KeyLen))
	}
}

// searchBucket scans bucket b of half h for key, returning the slot. The
// caller accounts the access (lookups via the stage outcome, deletes via
// xprobes).
func (t *Table) searchBucket(h, bucket int, key []byte) (int, bool) {
	for slot := 0; slot < t.cfg.SlotsPerBucket; slot++ {
		if t.mem[h].used[bucket*t.cfg.SlotsPerBucket+slot] &&
			bytes.Equal(t.slotKey(h, bucket, slot), key) {
			return slot, true
		}
	}
	return 0, false
}

// lookupAt runs the three-stage search with bucket indices that may be
// precomputed by the caller: b1/b2 < 0 means "derive on demand". The
// possibly-derived indices are returned so a following insert never hashes
// the key a second time; after a full miss both are always valid. The
// single outcome add per stage exit is the lookup's whole stats cost.
func (t *Table) lookupAt(key []byte, b1, b2 int) (fid uint64, stage Stage, ok bool, ob1, ob2 int) {
	// Stage 1: CAM (single-cycle parallel search).
	if v, hit := t.cam.Find(key); hit {
		t.stats.outcome[StageCAM-1].Add(1)
		return v, StageCAM, true, b1, b2
	}
	// Stage 2: Hash1 → Mem1.
	if b1 < 0 {
		b1 = t.cfg.Hash.Index1(key, t.cfg.Buckets)
	}
	if slot, hit := t.searchBucket(0, b1, key); hit {
		t.stats.outcome[StageMem1-1].Add(1)
		return t.fid(0, b1, slot), StageMem1, true, b1, b2
	}
	// Stage 3: Hash2 → Mem2.
	if b2 < 0 {
		b2 = t.cfg.Hash.Index2(key, t.cfg.Buckets)
	}
	if slot, hit := t.searchBucket(1, b2, key); hit {
		t.stats.outcome[StageMem2-1].Add(1)
		return t.fid(1, b2, slot), StageMem2, true, b1, b2
	}
	t.stats.outcome[StageMiss-1].Add(1)
	return 0, StageMiss, false, b1, b2
}

// Lookup searches for key through the three pipeline stages and returns
// the flow ID, the stage that resolved the query, and whether it matched.
// Hash words are derived lazily: an early-stage hit never computes the
// later stage's bucket index.
func (t *Table) Lookup(key []byte) (uint64, Stage, bool) {
	t.checkKey(key)
	fid, stage, ok, _, _ := t.lookupAt(key, -1, -1)
	return fid, stage, ok
}

// LookupHashed is Lookup over precomputed key hashes: the caller has
// already made the single hash pass (hashfn.Pair.Compute with this
// table's pair), so both bucket indices are free reductions. Results are
// bit-identical to Lookup over the same key.
func (t *Table) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, Stage, bool) {
	t.checkKey(key)
	fid, stage, ok, _, _ := t.lookupAt(key, kh.Index1(t.cfg.Buckets), kh.Index2(t.cfg.Buckets))
	return fid, stage, ok
}

// freeSlot returns the first free slot of bucket b in half h.
func (t *Table) freeSlot(h, bucket int) (int, bool) {
	for slot := 0; slot < t.cfg.SlotsPerBucket; slot++ {
		if !t.mem[h].used[bucket*t.cfg.SlotsPerBucket+slot] {
			return slot, true
		}
	}
	return 0, false
}

// bucketLoad returns the occupied slot count of bucket b in half h.
func (t *Table) bucketLoad(h, bucket int) int {
	n := 0
	for slot := 0; slot < t.cfg.SlotsPerBucket; slot++ {
		if t.mem[h].used[bucket*t.cfg.SlotsPerBucket+slot] {
			n++
		}
	}
	return n
}

// place writes key into (h, bucket, slot).
func (t *Table) place(h, bucket, slot int, key []byte) uint64 {
	copy(t.slotKey(h, bucket, slot), key)
	t.mem[h].used[bucket*t.cfg.SlotsPerBucket+slot] = true
	t.mem[h].count++
	t.stats.xprobes.Add(1) // the write access
	return t.fid(h, bucket, slot)
}

// Insert stores key if absent and returns its flow ID. Inserting an
// existing key returns the existing ID (idempotent, as the flow table's
// update path behaves: a concurrent duplicate insert must not create two
// flow entries). When both buckets are full and the CAM is full, Insert
// returns cam.ErrFull.
//
// Each bucket index is computed at most once per insert: the duplicate
// pre-check shares its derived indices with the placement step instead of
// rehashing the key.
func (t *Table) Insert(key []byte) (uint64, error) {
	t.checkKey(key)
	return t.insertAt(key, -1, -1)
}

// InsertHashed is Insert over precomputed key hashes; the whole insert
// performs zero hash computations.
func (t *Table) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	t.checkKey(key)
	return t.insertAt(key, kh.Index1(t.cfg.Buckets), kh.Index2(t.cfg.Buckets))
}

// insertAt implements Insert with optionally precomputed bucket indices
// (negative means "derive on demand").
func (t *Table) insertAt(key []byte, b1, b2 int) (uint64, error) {
	fidV, _, ok, b1, b2 := t.lookupAt(key, b1, b2)
	if ok {
		return fidV, nil
	}
	// The duplicate pre-check missed everywhere, so it derived both bucket
	// indices on the way through; they are reused verbatim below.
	t.stats.inserts.Add(1)

	order := [2]int{0, 1}
	switch t.cfg.Policy {
	case PolicyFirstFit:
		// keep order
	case PolicyLeastLoaded:
		l1, l2 := t.bucketLoad(0, b1), t.bucketLoad(1, b2)
		switch {
		case l2 < l1:
			order = [2]int{1, 0}
		case l2 == l1:
			// Ties alternate between halves, as the dual-path load
			// balancer keeps both memory channels evenly occupied.
			if t.altToggle {
				order = [2]int{1, 0}
			}
			t.altToggle = !t.altToggle
		}
	case PolicyAlternate:
		if t.altToggle {
			order = [2]int{1, 0}
		}
		t.altToggle = !t.altToggle
	}
	buckets := [2]int{b1, b2}
	for _, h := range order {
		if slot, ok := t.freeSlot(h, buckets[h]); ok {
			return t.place(h, buckets[h], slot, key), nil
		}
	}
	// Both buckets full: overflow to the CAM.
	idx, err := t.cam.Insert(key, 0)
	if err != nil {
		t.stats.failedIns.Add(1)
		return 0, fmt.Errorf("hashcam: insert overflow (both buckets and CAM full): %w", err)
	}
	camV := t.camFID(idx)
	// Re-insert with the final value; CAM stores the fid as its value.
	if _, err := t.cam.Insert(key, camV); err != nil {
		return 0, fmt.Errorf("hashcam: CAM value fixup: %w", err)
	}
	t.stats.camInserts.Add(1)
	t.stats.xprobes.Add(1)
	return camV, nil
}

// Delete removes key and reports whether it was present. Deletion is the
// path the housekeeping function uses to retire timed-out flows.
func (t *Table) Delete(key []byte) bool {
	t.checkKey(key)
	return t.deleteAt(key, -1, -1)
}

// DeleteHashed is Delete over precomputed key hashes.
func (t *Table) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	t.checkKey(key)
	return t.deleteAt(key, kh.Index1(t.cfg.Buckets), kh.Index2(t.cfg.Buckets))
}

// deleteAt implements Delete with optionally precomputed bucket indices
// (negative means "derive on demand").
func (t *Table) deleteAt(key []byte, b1, b2 int) bool {
	if t.cam.Delete(key) {
		t.stats.deletes.Add(1)
		t.stats.xprobes.Add(1)
		return true
	}
	if b1 < 0 {
		b1 = t.cfg.Hash.Index1(key, t.cfg.Buckets)
	}
	t.stats.xprobes.Add(1)
	if slot, ok := t.searchBucket(0, b1, key); ok {
		t.mem[0].used[b1*t.cfg.SlotsPerBucket+slot] = false
		t.mem[0].count--
		t.stats.deletes.Add(1)
		return true
	}
	if b2 < 0 {
		b2 = t.cfg.Hash.Index2(key, t.cfg.Buckets)
	}
	t.stats.xprobes.Add(1)
	if slot, ok := t.searchBucket(1, b2, key); ok {
		t.mem[1].used[b2*t.cfg.SlotsPerBucket+slot] = false
		t.mem[1].count--
		t.stats.deletes.Add(1)
		return true
	}
	return false
}

// BucketIndices returns the two bucket choices of key, used by the timed
// model to generate memory addresses.
func (t *Table) BucketIndices(key []byte) (int, int) {
	t.checkKey(key)
	return t.cfg.Hash.Index1(key, t.cfg.Buckets), t.cfg.Hash.Index2(key, t.cfg.Buckets)
}

// OnChipBits returns the block-memory bit cost of the on-chip side (the
// CAM), for the Table I resource substitute.
func (t *Table) OnChipBits() int64 {
	// Value width: enough bits to index the whole table.
	valueBits := 0
	for c := t.cfg.Capacity(); c > 0; c >>= 1 {
		valueBits++
	}
	return t.cam.BitCost(t.cfg.KeyLen, valueBits)
}
