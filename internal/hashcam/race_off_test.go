//go:build !race

package hashcam

// raceEnabled reports whether the race detector is active; the
// AllocsPerRun bounds are skipped under -race because the race runtime
// itself allocates.
const raceEnabled = false
