package hashcam

import (
	"fmt"

	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file implements table.GrowableBackend on the Hash-CAM: budgeted
// online grow-in-place. BeginGrow allocates a fresh two-half geometry and
// atomically swaps it in as live, demoting the current one to "old";
// MigrateStep drains the old geometry a bounded number of slots at a
// time, re-placing each occupied entry in the live geometry under the
// normal insert policy; FinishGrow drops the drained geometry. Lookups
// and deletes consult live-then-old throughout (see searchAt), inserts go
// only to live, and the CAM — the paper's fixed on-chip overflow — is
// shared by both geometries and never moves, so CAM flow IDs are stable
// across a grow (GrowLayout.Stable).
//
// Entries are re-placed by rehashing their key bytes with the table's own
// pair: the slotarr arenas store a 1-byte fingerprint tag (the hash
// word's top bits), which cannot reconstruct the bucket index a doubled
// geometry needs (the low bits), so a migration step pays K hash passes
// per occupied slot. The step budget bounds that cost exactly like the
// expiry sweep bounds its key snapshots.

// BeginGrow implements table.GrowableBackend: it allocates the new
// geometry — the smallest power-of-two bucket count whose two halves plus
// CAM hold at least newCap — and enters migration mode. No entries move
// yet; MigrateStep drains the retiring geometry incrementally. Requires
// the caller's exclusive lock.
func (t *Table) BeginGrow(newCap int) (table.GrowLayout, error) {
	if t.old.Load() != nil {
		return table.GrowLayout{}, fmt.Errorf("hashcam: grow already in flight")
	}
	cur := t.live.Load()
	k := t.cfg.SlotsPerBucket
	nb := cur.buckets
	for 2*nb*k+t.cfg.CAMCapacity < newCap {
		nb <<= 1
	}
	if nb <= cur.buckets {
		return table.GrowLayout{}, fmt.Errorf("hashcam: grow target %d does not exceed current capacity %d",
			newCap, 2*cur.buckets*k+t.cfg.CAMCapacity)
	}
	ng := newGeom(nb, k, t.cfg.KeyLen)
	t.growCursor = 0
	// Publication order: demote the current geometry to old before the
	// new one becomes live. Lock-free readers racing this window see one
	// of three states — pre-swap, both pointers naming the same geometry,
	// or post-swap — each of which searches only internally consistent
	// arenas; the shard seqlock discards any result read mid-swap.
	t.old.Store(cur)
	t.live.Store(ng)
	camCap := uint64(t.cfg.CAMCapacity)
	nLive := uint64(ng.slots(k))
	nOld := uint64(cur.slots(k))
	return table.GrowLayout{
		Stable:   camCap,
		NewBound: camCap + 2*nLive,
		OldBase:  camCap + 2*nLive,
		OldBound: camCap + 2*nLive + 2*nOld,
	}, nil
}

// MigrateStep implements table.GrowableBackend: it examines up to budget
// retiring-geometry slots from the migration cursor and re-places each
// occupied one in the live geometry (bucket pair by rehash, then the
// insert policy, then CAM overflow). An entry that fits nowhere — both
// live buckets and the CAM full — is dropped and counted; the caller
// surfaces the count. Set-before-Clear ordering means a concurrent
// lock-free reader can transiently see both copies (it resolves to the
// live one, searched first) but never neither. Moves are reported to the
// relocation hook in the GrowLayout ID space. Requires the caller's
// exclusive lock.
func (t *Table) MigrateStep(budget int) (moved, dropped int, done bool) {
	og := t.old.Load()
	if og == nil {
		return 0, 0, true
	}
	g := t.live.Load()
	k := t.cfg.SlotsPerBucket
	nOld := uint64(og.slots(k))
	total := 2 * nOld
	base := t.oldBase(g)
	t.moveBuf = t.moveBuf[:0]
	for budget > 0 && t.growCursor < total {
		off := t.growCursor
		t.growCursor++
		budget--
		h := int(off / nOld)
		so := int(off % nOld)
		st := og.mem[h].store
		if !st.Occupied(so) {
			continue
		}
		key := st.Key(so)
		newFID, ok := t.placeMigrated(g, key)
		// The key bytes were copied into the live arena by Set before the
		// old slot clears, so no window exists where the entry is gone.
		st.Clear(so)
		og.mem[h].count--
		if !ok {
			dropped++
			continue
		}
		moved++
		t.moveBuf = append(t.moveBuf, [2]uint64{base + off, newFID})
	}
	if len(t.moveBuf) > 0 && t.relocate != nil {
		t.relocate(t.moveBuf)
	}
	return moved, dropped, t.growCursor >= total
}

// placeMigrated re-places one draining entry in the live geometry: the
// insert-policy bucket choice first, CAM overflow second. It reports
// false when the entry fits nowhere (counted as dropped by the caller).
func (t *Table) placeMigrated(g *geom, key []byte) (uint64, bool) {
	w1 := t.cfg.Hash.H1.Hash(key)
	w2 := t.cfg.Hash.H2.Hash(key)
	w := [2]uint64{w1, w2}
	buckets := [2]int{hashfn.Reduce(w1, g.buckets), hashfn.Reduce(w2, g.buckets)}
	k := t.cfg.SlotsPerBucket
	for _, h := range t.placeOrder(g, buckets) {
		if slot, ok := g.mem[h].store.FindFree(buckets[h]*k, k); ok {
			return t.place(g, h, buckets[h], slot-buckets[h]*k, w[h], key), true
		}
	}
	idx, err := t.cam.Insert(key, 0)
	if err != nil {
		t.stats.failedIns.Add(1)
		return 0, false
	}
	camV := t.camFID(idx)
	if _, err := t.cam.Insert(key, camV); err != nil {
		return 0, false
	}
	t.stats.camInserts.Add(1)
	t.stats.xprobes.Add(1)
	return camV, true
}

// FinishGrow implements table.GrowableBackend: it retires the drained
// geometry, returning the table to single-geometry operation on the grown
// arenas. Requires the caller's exclusive lock.
func (t *Table) FinishGrow() {
	t.old.Store(nil)
	t.growCursor = 0
}

// Growing implements table.GrowableBackend.
func (t *Table) Growing() bool { return t.old.Load() != nil }

// SetRelocateHook implements table.RelocatingBackend: fn observes the
// slot moves each MigrateStep performs (old-region ID → live-region ID,
// per GrowLayout), so the expiry side-tables follow migrated entries. The
// Hash-CAM performs no other relocations — ordinary inserts never move
// resident entries — so outside a migration the hook is never invoked.
func (t *Table) SetRelocateHook(fn func(moves [][2]uint64)) {
	t.relocate = fn
}
