//go:build race

package hashfn

const raceEnabled = true
