package hashfn

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestCRCMatchesLegacyFormula pins the constructor-folded prefix state and
// the slicing-by-8 engine to the original definition: lo = CRC(key),
// hi = CRC(0xA5 ∥ key), computed here byte-at-a-time with the stdlib.
func TestCRCMatchesLegacyFormula(t *testing.T) {
	for _, poly := range []uint32{crc32.Castagnoli, crc32.Koopman, crc32.IEEE, 0xD5828281} {
		c := NewCRC(poly, "test")
		tab := crc32.MakeTable(poly)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			key := make([]byte, rng.Intn(40)) // covers tails, blocks, empty
			rng.Read(key)
			lo := crc32.Update(0, tab, key)
			hi := crc32.Update(crc32.Update(0, tab, []byte{crcDomainPrefix}), tab, key)
			want := uint64(hi)<<32 | uint64(lo)
			if got := c.Hash(key); got != want {
				t.Fatalf("poly %#x len %d: Hash = %#x, want %#x", poly, len(key), got, want)
			}
		}
	}
}

// TestComputeMatchesFuncs pins the single-pass bundle to the individual
// functions: KeyHashes must carry exactly H1(key), H2(key) and the
// MixWords derivation, and its Index reductions must equal the Pair's.
func TestComputeMatchesFuncs(t *testing.T) {
	pair := DefaultPair()
	key := make([]byte, 13)
	for i := 0; i < 2000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i)*0x9e3779b97f4a7c15)
		kh := pair.Compute(key)
		if kh.H1 != pair.H1.Hash(key) || kh.H2 != pair.H2.Hash(key) {
			t.Fatalf("key %d: Compute words (%#x,%#x) disagree with Hash (%#x,%#x)",
				i, kh.H1, kh.H2, pair.H1.Hash(key), pair.H2.Hash(key))
		}
		if kh.Mix != MixWords(kh.H1, kh.H2) {
			t.Fatalf("key %d: Mix %#x != MixWords %#x", i, kh.Mix, MixWords(kh.H1, kh.H2))
		}
		for _, buckets := range []int{64, 100, 8192} {
			if kh.Index1(buckets) != pair.Index1(key, buckets) ||
				kh.Index2(buckets) != pair.Index2(key, buckets) {
				t.Fatalf("key %d: KeyHashes reductions disagree with Pair at %d buckets", i, buckets)
			}
		}
	}
}

// TestMixSelectorIndependence checks the property the sharded table
// relies on: conditioned on landing in one bucket (low bits of H1), the
// Mix word still spreads keys uniformly across shards — shard selection
// must not correlate with bucket placement.
func TestMixSelectorIndependence(t *testing.T) {
	pair := DefaultPair()
	const (
		buckets = 64
		shards  = 8
	)
	// Collect keys that all fall into bucket 0 of Mem1, then check their
	// shard distribution.
	counts := make([]int, shards)
	total := 0
	key := make([]byte, 13)
	for i := 0; total < 4000 && i < 2_000_000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		kh := pair.Compute(key)
		if kh.Index1(buckets) != 0 {
			continue
		}
		counts[Reduce(kh.Mix, shards)]++
		total++
	}
	if total < 4000 {
		t.Fatalf("only %d keys landed in the probe bucket", total)
	}
	want := total / shards
	for s, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("shard %d holds %d of %d same-bucket keys (want ≈%d): selector correlated with bucket",
				s, n, total, want)
		}
	}
}

// TestCRCHashAllocFree pins the satellite fix: hashing must not allocate
// (the prefix state is folded into the constructor, not rebuilt per call).
func TestCRCHashAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under the race detector")
	}
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	for _, f := range []Func{
		NewCRC(crc32.Castagnoli, "crc32c"),
		NewCRC(crc32.Koopman, "crc32k"),
	} {
		if n := testing.AllocsPerRun(200, func() { f.Hash(key) }); n != 0 {
			t.Errorf("%s: Hash allocates %.2f per call, want 0", f.Name(), n)
		}
	}
	pair := DefaultPair()
	if n := testing.AllocsPerRun(200, func() { pair.Compute(key) }); n != 0 {
		t.Errorf("Pair.Compute allocates %.2f per call, want 0", n)
	}
}
