// Package hashfn provides the hash functions used to index the flow lookup
// table. The paper's scheme hashes each packet descriptor "using two
// pre-selected hash functions" (§III-B); this package supplies several
// independent families so the pair can be chosen per deployment, plus
// quality-measurement helpers (avalanche, bucket distribution) used by the
// tests and the hash-choice ablation bench.
//
// All functions are implemented from scratch against the published
// algorithm definitions; only hash/crc32's table generator is taken from
// the standard library.
package hashfn

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// Func is a deterministic 64-bit hash over descriptor key bytes. Hardware
// hash blocks are stateless and synchronous; so are these.
type Func interface {
	// Hash returns the hash of key. Implementations must be pure.
	Hash(key []byte) uint64
	// Name identifies the function in reports and bench output.
	Name() string
}

// crcDomainPrefix is the byte logically prepended to the key for the high
// word of a CRC hash, shifting it through a different linear map than the
// low word.
const crcDomainPrefix = 0xA5

// CRC is a CRC-32-based hash widened to 64 bits by running the CRC twice,
// the second time over a domain-prefixed copy of the key. Prefixing (rather
// than changing the initial value) shifts the key through a different
// linear map, so the two words are genuinely independent taps; with a
// changed initial value alone the two CRCs of fixed-length keys differ only
// by a constant. CRC circuits are the standard FPGA hash block (cheap in
// LUTs, good mixing on network headers).
//
// The prefix CRC state is folded into the constructor (hashing the one-byte
// domain prefix per call would cost an extra CRC update on every hash), and
// polynomials without a hardware-assisted stdlib path get a slicing-by-8
// engine instead of crc32.Update's byte-at-a-time fallback.
type CRC struct {
	table  *crc32.Table    // non-nil: delegate to crc32.Update (hardware/slicing path)
	slc    *[8][256]uint32 // non-nil: own slicing-by-8 engine
	hiInit uint32          // CRC state after the domain prefix, precomputed
	name   string
}

// NewCRC returns a CRC hash over the given polynomial. Use
// crc32.Castagnoli or crc32.Koopman for independent instances.
func NewCRC(poly uint32, name string) *CRC {
	c := &CRC{name: name}
	if poly == crc32.Castagnoli {
		// The stdlib routes this table through CPU CRC instructions (or at
		// worst its own slicing-by-8); ours cannot beat it.
		c.table = crc32.MakeTable(poly)
		c.hiInit = crc32.Update(0, c.table, []byte{crcDomainPrefix})
		return c
	}
	c.slc = makeSlicing8(poly)
	c.hiInit = c.update(0, []byte{crcDomainPrefix})
	return c
}

// makeSlicing8 extends the classic byte-at-a-time CRC table to the
// slicing-by-8 family: tab[k][b] is the CRC contribution of byte b placed k
// positions before the end of an 8-byte block.
func makeSlicing8(poly uint32) *[8][256]uint32 {
	base := crc32.MakeTable(poly)
	var tab [8][256]uint32
	tab[0] = [256]uint32(*base)
	for b := 0; b < 256; b++ {
		crc := tab[0][b]
		for k := 1; k < 8; k++ {
			crc = tab[0][crc&0xff] ^ (crc >> 8)
			tab[k][b] = crc
		}
	}
	return &tab
}

// update advances the CRC state over p (reflected bit order, matching
// crc32.Update with the same polynomial).
func (c *CRC) update(crc uint32, p []byte) uint32 {
	if c.table != nil {
		return crc32.Update(crc, c.table, p)
	}
	crc = ^crc
	t := c.slc
	for len(p) >= 8 {
		crc ^= binary.LittleEndian.Uint32(p)
		hi := binary.LittleEndian.Uint32(p[4:])
		crc = t[7][crc&0xff] ^ t[6][crc>>8&0xff] ^ t[5][crc>>16&0xff] ^ t[4][crc>>24] ^
			t[3][hi&0xff] ^ t[2][hi>>8&0xff] ^ t[1][hi>>16&0xff] ^ t[0][hi>>24]
		p = p[8:]
	}
	for _, b := range p {
		crc = t[0][byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// Hash implements Func. On the slicing path both 32-bit words advance
// through one fused pass over the key bytes (the hardware computes its
// CRC taps in the same cycle; software gets the loop overhead and the key
// reads paid once instead of twice). The hardware-assisted path keeps two
// stdlib calls — the CRC instruction outruns any fusing.
func (c *CRC) Hash(key []byte) uint64 {
	if c.table != nil {
		lo := crc32.Update(0, c.table, key)
		hi := crc32.Update(c.hiInit, c.table, key)
		return uint64(hi)<<32 | uint64(lo)
	}
	t := c.slc
	lo, hi := ^uint32(0), ^c.hiInit
	p := key
	for len(p) >= 8 {
		w0 := binary.LittleEndian.Uint32(p)
		w1 := binary.LittleEndian.Uint32(p[4:])
		x := lo ^ w0
		lo = t[7][x&0xff] ^ t[6][x>>8&0xff] ^ t[5][x>>16&0xff] ^ t[4][x>>24] ^
			t[3][w1&0xff] ^ t[2][w1>>8&0xff] ^ t[1][w1>>16&0xff] ^ t[0][w1>>24]
		y := hi ^ w0
		hi = t[7][y&0xff] ^ t[6][y>>8&0xff] ^ t[5][y>>16&0xff] ^ t[4][y>>24] ^
			t[3][w1&0xff] ^ t[2][w1>>8&0xff] ^ t[1][w1>>16&0xff] ^ t[0][w1>>24]
		p = p[8:]
	}
	for _, b := range p {
		lo = t[0][byte(lo)^b] ^ (lo >> 8)
		hi = t[0][byte(hi)^b] ^ (hi >> 8)
	}
	return uint64(^hi)<<32 | uint64(^lo)
}

// Name implements Func.
func (c *CRC) Name() string { return c.name }

// FNV1a is the 64-bit Fowler–Noll–Vo 1a hash with a seedable offset basis
// and a SplitMix64 finalizer. Plain FNV-1a mixes its high bits poorly
// (each input byte only reaches them through carries); the finalizer fixes
// the avalanche on the bits the table-index reduction consumes.
type FNV1a struct {
	Seed uint64
}

// Hash implements Func.
func (f *FNV1a) Hash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ f.Seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return mix64(h)
}

// Name implements Func.
func (f *FNV1a) Name() string { return fmt.Sprintf("fnv1a(seed=%#x)", f.Seed) }

// Jenkins implements Bob Jenkins' one-at-a-time hash, widened to 64 bits
// by a finalizing mix. It is a common software baseline for flow hashing.
type Jenkins struct {
	Seed uint32
}

// Hash implements Func.
func (j *Jenkins) Hash(key []byte) uint64 {
	// Folding the length into the initial state removes the all-zero
	// fixpoint (from h=0, runs of zero bytes would otherwise never
	// perturb the state, colliding {0} with {0,0}).
	h := j.Seed + uint32(len(key))*0x9e3779b9
	for _, b := range key {
		h += uint32(b)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return mix64(uint64(h)<<32 | uint64(h^0x9e3779b9))
}

// Name implements Func.
func (j *Jenkins) Name() string { return fmt.Sprintf("jenkins(seed=%#x)", j.Seed) }

// Mix64 is a multiply-xorshift hash over 8-byte blocks with a strong
// finalizer (SplitMix64/Murmur3-style), representative of the wide XOR
// trees hardware hash units implement.
type Mix64 struct {
	Seed uint64
}

// Hash implements Func.
func (m *Mix64) Hash(key []byte) uint64 {
	h := m.Seed ^ (uint64(len(key)) * 0x9e3779b97f4a7c15)
	for len(key) >= 8 {
		k := binary.LittleEndian.Uint64(key)
		h = (h ^ mix64(k)) * 0x100000001b3
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		k := binary.LittleEndian.Uint64(tail[:])
		h = (h ^ mix64(k^uint64(len(key)))) * 0x100000001b3
	}
	return mix64(h)
}

// Name implements Func.
func (m *Mix64) Name() string { return fmt.Sprintf("mix64(seed=%#x)", m.Seed) }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Finalize64 exposes the SplitMix64 finalizer: a full-avalanche bijection
// on 64 bits, for callers that need a stateless per-index uniform draw
// (the load balancer's per-descriptor roll, the flow-index bijection).
func Finalize64(z uint64) uint64 { return mix64(z) }

// Tabulation implements simple tabulation hashing: each key byte indexes a
// table of random 64-bit words which are XORed together. Tabulation
// hashing is 3-independent and is the theoretically cleanest choice for
// two-choice schemes; in hardware it is a bank of small ROMs.
type Tabulation struct {
	tables [][256]uint64
	name   string
}

// NewTabulation builds tables for keys up to maxKeyLen bytes from the
// given seed. Longer keys are folded back onto the tables modulo
// maxKeyLen, mixing in the position.
func NewTabulation(maxKeyLen int, seed uint64) *Tabulation {
	if maxKeyLen <= 0 {
		panic(fmt.Sprintf("hashfn: tabulation maxKeyLen must be positive, got %d", maxKeyLen))
	}
	t := &Tabulation{
		tables: make([][256]uint64, maxKeyLen),
		name:   fmt.Sprintf("tabulation(len=%d,seed=%#x)", maxKeyLen, seed),
	}
	s := seed
	for i := range t.tables {
		for j := 0; j < 256; j++ {
			// SplitMix64 stream.
			s += 0x9e3779b97f4a7c15
			t.tables[i][j] = mix64(s)
		}
	}
	return t
}

// Hash implements Func.
func (t *Tabulation) Hash(key []byte) uint64 {
	var h uint64
	n := len(t.tables)
	for i, b := range key {
		idx := i % n
		// Fold position into the byte for keys longer than the table set.
		h ^= t.tables[idx][b^byte(i/n)]
	}
	return h
}

// Name implements Func.
func (t *Tabulation) Name() string { return t.name }

// Pair bundles the two pre-selected hash functions of the lookup scheme.
// Index1/Index2 reduce the hashes onto a table of the given bucket count.
type Pair struct {
	H1, H2 Func
	// SelSeed keys the shard-selector mix of Compute. Zero selects the
	// historical fixed constant (bit-compatible with pre-keying callers);
	// a nonzero value makes shard routing unpredictable to a traffic
	// source that knows — or can infer — the bucket hash functions.
	SelSeed uint64
}

// KeyHashes carries every hash word the table stack needs for one key,
// computed once per operation (the paper's descriptors are hashed exactly
// once by the two pre-selected functions, §III-B; the software analogue is
// one Compute per key instead of rehashing for shard routing, bucket 1,
// and bucket 2 separately).
type KeyHashes struct {
	// H1, H2 are the full words of the two pre-selected hash functions.
	H1, H2 uint64
	// Mix is the shard-selector word. It is derived from H1 and H2 through
	// a full-avalanche finalizer, so its low bits (which Reduce consumes)
	// are decorrelated from the low bits of H1/H2 that index buckets —
	// the selector/bucket independence the sharded table requires.
	Mix uint64
}

// mixSeed decorrelates the selector word from any other finalizer use of
// the same hash words. It is the *unkeyed* default only: a pair built by
// SeededPair (or any Pair with a nonzero SelSeed) mixes with a secret
// seed instead, so an attacker who can predict bucket indices still
// cannot steer keys onto one shard.
const mixSeed = 0x5ca1ab1e_0ddba11

// Domain-separation constants for deriving the per-role seeds of a keyed
// pair from one engine seed. Arbitrary odd constants; they only need to
// be distinct so H1, H2 and the selector draw independent SplitMix64
// outputs.
const (
	seedDomainH1  = 0x9e3779b97f4a7c15
	seedDomainH2  = 0xc2b2ae3d27d4eb4f
	seedDomainSel = 0x165667b19e3779f9
)

// MixWords derives the selector word of KeyHashes from the two hash words
// using the fixed historical constant. Rotating H2 before the XOR keeps
// the combination from collapsing when H1 == H2 on the low word.
func MixWords(h1, h2 uint64) uint64 {
	return mix64(h1 ^ bits.RotateLeft64(h2, 32) ^ mixSeed)
}

// MixWordsSeeded is MixWords with a caller-supplied selector seed in
// place of the fixed constant. MixWordsSeeded(h1, h2, 0) == MixWords(h1,
// h2), matching Pair.Compute's treatment of a zero SelSeed.
func MixWordsSeeded(h1, h2, seed uint64) uint64 {
	if seed == 0 {
		seed = mixSeed
	}
	return mix64(h1 ^ bits.RotateLeft64(h2, 32) ^ seed)
}

// Compute hashes key once with both functions and derives the selector
// word — the single hash pass of the hot path.
func (p Pair) Compute(key []byte) KeyHashes {
	h1, h2 := p.H1.Hash(key), p.H2.Hash(key)
	seed := p.SelSeed
	if seed == 0 {
		seed = mixSeed
	}
	return KeyHashes{H1: h1, H2: h2, Mix: mix64(h1 ^ bits.RotateLeft64(h2, 32) ^ seed)}
}

// Index1 reduces the precomputed H1 word onto [0, buckets); identical to
// Pair.Index1 over the originating key.
func (k KeyHashes) Index1(buckets int) int { return reduce(k.H1, buckets) }

// Index2 reduces the precomputed H2 word onto [0, buckets); identical to
// Pair.Index2 over the originating key.
func (k KeyHashes) Index2(buckets int) int { return reduce(k.H2, buckets) }

// DefaultPair returns the pair used by the prototype configuration: two
// CRC-32 instances over independent polynomials, the standard choice for
// FPGA flow hashing. CRCs are GF(2)-affine, so their collision structure
// is public and seed-independent — an attacker can mine colliding keys
// offline (see trafficgen's collision miner). Public-facing deployments
// should use SeededPair instead; DefaultPair remains for bit-reproducible
// experiments and as the hardware-model reference.
func DefaultPair() Pair {
	return Pair{
		H1: NewCRC(crc32.Castagnoli, "crc32c"),
		H2: NewCRC(crc32.Koopman, "crc32k"),
	}
}

// SeededPair returns a keyed hash pair derived from one engine seed. The
// bucket functions are Mix64 instances with independently derived seeds —
// a non-linear family, unlike the CRC default, so collision pairs cannot
// be computed without the seed — and the selector mix is keyed through
// SelSeed so shard routing is equally unpredictable. Equal seeds give
// identical pairs (reproducible experiments); distinct seeds give
// unrelated bucket placements, which also relocates every
// location-derived flow ID.
func SeededPair(seed uint64) Pair {
	return Pair{
		H1:      &Mix64{Seed: mix64(seed ^ seedDomainH1)},
		H2:      &Mix64{Seed: mix64(seed ^ seedDomainH2)},
		SelSeed: SelectorSeed(seed),
	}
}

// SelectorSeed derives the shard-selector mix seed a keyed deployment
// uses for the given engine seed. Exposed so a caller pinning explicit
// bucket functions (e.g. the CRC reference pair) can still key its shard
// routing from the same engine seed.
func SelectorSeed(seed uint64) uint64 { return mix64(seed ^ seedDomainSel) }

// RandomSeed draws a fresh engine seed from the operating system's
// CSPRNG. The result is never zero, so it can be stored in "zero means
// unset" configuration fields without losing the keying.
func RandomSeed() uint64 {
	var buf [8]byte
	for {
		if _, err := crand.Read(buf[:]); err != nil {
			// crypto/rand never fails on the supported platforms; if it
			// somehow does, refusing to start is safer than silently
			// falling back to a predictable seed.
			panic(fmt.Sprintf("hashfn: reading random seed: %v", err))
		}
		if s := binary.LittleEndian.Uint64(buf[:]); s != 0 {
			return s
		}
	}
}

// Index1 returns H1(key) reduced to [0, buckets).
func (p Pair) Index1(key []byte, buckets int) int {
	return reduce(p.H1.Hash(key), buckets)
}

// Index2 returns H2(key) reduced to [0, buckets).
func (p Pair) Index2(key []byte, buckets int) int {
	return reduce(p.H2.Hash(key), buckets)
}

// reduce maps a 64-bit hash onto [0, n) by masking low bits when n is a
// power of two (the hardware indexing scheme: bucket RAMs are addressed by
// the low hash bits) and by modulo otherwise. Low bits are also the
// well-distributed ones for CRC-family hashes — reflected CRCs can have
// weakly mixed high words on structured inputs, so multiply-shift
// reduction (which consumes high bits) is deliberately avoided.
func reduce(h uint64, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("hashfn: reduce requires positive bucket count, got %d", n))
	}
	if n&(n-1) == 0 {
		return int(h & uint64(n-1))
	}
	return int(h % uint64(n))
}

// Reduce exposes the reduction for callers that manage their own Funcs.
func Reduce(h uint64, n int) int { return reduce(h, n) }

// All returns one instance of every family, for the hash-choice ablation.
func All() []Func {
	return []Func{
		NewCRC(crc32.Castagnoli, "crc32c"),
		NewCRC(crc32.Koopman, "crc32k"),
		&FNV1a{},
		&Jenkins{},
		&Mix64{},
		NewTabulation(16, 42),
	}
}
