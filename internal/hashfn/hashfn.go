// Package hashfn provides the hash functions used to index the flow lookup
// table. The paper's scheme hashes each packet descriptor "using two
// pre-selected hash functions" (§III-B); this package supplies several
// independent families so the pair can be chosen per deployment, plus
// quality-measurement helpers (avalanche, bucket distribution) used by the
// tests and the hash-choice ablation bench.
//
// All functions are implemented from scratch against the published
// algorithm definitions; only hash/crc32's table generator is taken from
// the standard library.
package hashfn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Func is a deterministic 64-bit hash over descriptor key bytes. Hardware
// hash blocks are stateless and synchronous; so are these.
type Func interface {
	// Hash returns the hash of key. Implementations must be pure.
	Hash(key []byte) uint64
	// Name identifies the function in reports and bench output.
	Name() string
}

// CRC is a CRC-32-based hash widened to 64 bits by running the CRC twice,
// the second time over a domain-prefixed copy of the key. Prefixing (rather
// than changing the initial value) shifts the key through a different
// linear map, so the two words are genuinely independent taps; with a
// changed initial value alone the two CRCs of fixed-length keys differ only
// by a constant. CRC circuits are the standard FPGA hash block (cheap in
// LUTs, good mixing on network headers).
type CRC struct {
	table *crc32.Table
	name  string
}

// NewCRC returns a CRC hash over the given polynomial. Use
// crc32.Castagnoli or crc32.Koopman for independent instances.
func NewCRC(poly uint32, name string) *CRC {
	return &CRC{table: crc32.MakeTable(poly), name: name}
}

// Hash implements Func.
func (c *CRC) Hash(key []byte) uint64 {
	lo := crc32.Update(0, c.table, key)
	hi := crc32.Update(0, c.table, []byte{0xA5})
	hi = crc32.Update(hi, c.table, key)
	return uint64(hi)<<32 | uint64(lo)
}

// Name implements Func.
func (c *CRC) Name() string { return c.name }

// FNV1a is the 64-bit Fowler–Noll–Vo 1a hash with a seedable offset basis
// and a SplitMix64 finalizer. Plain FNV-1a mixes its high bits poorly
// (each input byte only reaches them through carries); the finalizer fixes
// the avalanche on the bits the table-index reduction consumes.
type FNV1a struct {
	Seed uint64
}

// Hash implements Func.
func (f *FNV1a) Hash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ f.Seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return mix64(h)
}

// Name implements Func.
func (f *FNV1a) Name() string { return fmt.Sprintf("fnv1a(seed=%#x)", f.Seed) }

// Jenkins implements Bob Jenkins' one-at-a-time hash, widened to 64 bits
// by a finalizing mix. It is a common software baseline for flow hashing.
type Jenkins struct {
	Seed uint32
}

// Hash implements Func.
func (j *Jenkins) Hash(key []byte) uint64 {
	// Folding the length into the initial state removes the all-zero
	// fixpoint (from h=0, runs of zero bytes would otherwise never
	// perturb the state, colliding {0} with {0,0}).
	h := j.Seed + uint32(len(key))*0x9e3779b9
	for _, b := range key {
		h += uint32(b)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return mix64(uint64(h)<<32 | uint64(h^0x9e3779b9))
}

// Name implements Func.
func (j *Jenkins) Name() string { return fmt.Sprintf("jenkins(seed=%#x)", j.Seed) }

// Mix64 is a multiply-xorshift hash over 8-byte blocks with a strong
// finalizer (SplitMix64/Murmur3-style), representative of the wide XOR
// trees hardware hash units implement.
type Mix64 struct {
	Seed uint64
}

// Hash implements Func.
func (m *Mix64) Hash(key []byte) uint64 {
	h := m.Seed ^ (uint64(len(key)) * 0x9e3779b97f4a7c15)
	for len(key) >= 8 {
		k := binary.LittleEndian.Uint64(key)
		h = (h ^ mix64(k)) * 0x100000001b3
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		k := binary.LittleEndian.Uint64(tail[:])
		h = (h ^ mix64(k^uint64(len(key)))) * 0x100000001b3
	}
	return mix64(h)
}

// Name implements Func.
func (m *Mix64) Name() string { return fmt.Sprintf("mix64(seed=%#x)", m.Seed) }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Finalize64 exposes the SplitMix64 finalizer: a full-avalanche bijection
// on 64 bits, for callers that need a stateless per-index uniform draw
// (the load balancer's per-descriptor roll, the flow-index bijection).
func Finalize64(z uint64) uint64 { return mix64(z) }

// Tabulation implements simple tabulation hashing: each key byte indexes a
// table of random 64-bit words which are XORed together. Tabulation
// hashing is 3-independent and is the theoretically cleanest choice for
// two-choice schemes; in hardware it is a bank of small ROMs.
type Tabulation struct {
	tables [][256]uint64
	name   string
}

// NewTabulation builds tables for keys up to maxKeyLen bytes from the
// given seed. Longer keys are folded back onto the tables modulo
// maxKeyLen, mixing in the position.
func NewTabulation(maxKeyLen int, seed uint64) *Tabulation {
	if maxKeyLen <= 0 {
		panic(fmt.Sprintf("hashfn: tabulation maxKeyLen must be positive, got %d", maxKeyLen))
	}
	t := &Tabulation{
		tables: make([][256]uint64, maxKeyLen),
		name:   fmt.Sprintf("tabulation(len=%d,seed=%#x)", maxKeyLen, seed),
	}
	s := seed
	for i := range t.tables {
		for j := 0; j < 256; j++ {
			// SplitMix64 stream.
			s += 0x9e3779b97f4a7c15
			t.tables[i][j] = mix64(s)
		}
	}
	return t
}

// Hash implements Func.
func (t *Tabulation) Hash(key []byte) uint64 {
	var h uint64
	n := len(t.tables)
	for i, b := range key {
		idx := i % n
		// Fold position into the byte for keys longer than the table set.
		h ^= t.tables[idx][b^byte(i/n)]
	}
	return h
}

// Name implements Func.
func (t *Tabulation) Name() string { return t.name }

// Pair bundles the two pre-selected hash functions of the lookup scheme.
// Index1/Index2 reduce the hashes onto a table of the given bucket count.
type Pair struct {
	H1, H2 Func
}

// DefaultPair returns the pair used by the prototype configuration: two
// CRC-32 instances over independent polynomials, the standard choice for
// FPGA flow hashing.
func DefaultPair() Pair {
	return Pair{
		H1: NewCRC(crc32.Castagnoli, "crc32c"),
		H2: NewCRC(crc32.Koopman, "crc32k"),
	}
}

// Index1 returns H1(key) reduced to [0, buckets).
func (p Pair) Index1(key []byte, buckets int) int {
	return reduce(p.H1.Hash(key), buckets)
}

// Index2 returns H2(key) reduced to [0, buckets).
func (p Pair) Index2(key []byte, buckets int) int {
	return reduce(p.H2.Hash(key), buckets)
}

// reduce maps a 64-bit hash onto [0, n) by masking low bits when n is a
// power of two (the hardware indexing scheme: bucket RAMs are addressed by
// the low hash bits) and by modulo otherwise. Low bits are also the
// well-distributed ones for CRC-family hashes — reflected CRCs can have
// weakly mixed high words on structured inputs, so multiply-shift
// reduction (which consumes high bits) is deliberately avoided.
func reduce(h uint64, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("hashfn: reduce requires positive bucket count, got %d", n))
	}
	if n&(n-1) == 0 {
		return int(h & uint64(n-1))
	}
	return int(h % uint64(n))
}

// Reduce exposes the reduction for callers that manage their own Funcs.
func Reduce(h uint64, n int) int { return reduce(h, n) }

// All returns one instance of every family, for the hash-choice ablation.
func All() []Func {
	return []Func{
		NewCRC(crc32.Castagnoli, "crc32c"),
		NewCRC(crc32.Koopman, "crc32k"),
		&FNV1a{},
		&Jenkins{},
		&Mix64{},
		NewTabulation(16, 42),
	}
}
