package hashfn

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	key := []byte("10.0.0.1:443->192.168.1.9:51724/tcp")
	for _, f := range All() {
		a, b := f.Hash(key), f.Hash(key)
		if a != b {
			t.Errorf("%s: Hash not deterministic (%#x vs %#x)", f.Name(), a, b)
		}
	}
}

func TestDistinctFamiliesDisagree(t *testing.T) {
	fns := All()
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	seen := make(map[uint64]string)
	for _, f := range fns {
		h := f.Hash(key)
		if prev, ok := seen[h]; ok {
			t.Errorf("%s and %s produced identical hash %#x", f.Name(), prev, h)
		}
		seen[h] = f.Name()
	}
}

func TestSeedsProduceDifferentStreams(t *testing.T) {
	key := []byte("flow-key")
	pairs := []struct {
		name string
		a, b Func
	}{
		{"fnv1a", &FNV1a{Seed: 1}, &FNV1a{Seed: 2}},
		{"jenkins", &Jenkins{Seed: 1}, &Jenkins{Seed: 2}},
		{"mix64", &Mix64{Seed: 1}, &Mix64{Seed: 2}},
		{"tabulation", NewTabulation(16, 1), NewTabulation(16, 2)},
	}
	for _, p := range pairs {
		if p.a.Hash(key) == p.b.Hash(key) {
			t.Errorf("%s: different seeds produced identical hashes", p.name)
		}
	}
}

func TestEmptyAndShortKeys(t *testing.T) {
	for _, f := range All() {
		// Must not panic and must distinguish nearby short keys.
		_ = f.Hash(nil)
		if f.Hash([]byte{0}) == f.Hash([]byte{1}) {
			t.Errorf("%s: single-byte keys 0 and 1 collide", f.Name())
		}
		if f.Hash([]byte{0}) == f.Hash([]byte{0, 0}) {
			t.Errorf("%s: length extension collision on zero bytes", f.Name())
		}
	}
}

func TestMix64TailHandling(t *testing.T) {
	m := &Mix64{}
	// Keys that differ only in the tail beyond the last 8-byte block.
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8, 10}
	if m.Hash(a) == m.Hash(b) {
		t.Fatal("mix64 ignores tail bytes")
	}
}

func TestReduceRange(t *testing.T) {
	f := func(h uint64, nSeed uint16) bool {
		n := int(nSeed%1000) + 1
		r := Reduce(h, n)
		return r >= 0 && r < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceCoversBuckets(t *testing.T) {
	seen := make(map[int]bool)
	m := &Mix64{}
	var key [8]byte
	for i := 0; i < 4096; i++ {
		key[0], key[1] = byte(i), byte(i>>8)
		seen[Reduce(m.Hash(key[:]), 16)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("Reduce covered %d/16 buckets", len(seen))
	}
}

func TestAvalanche(t *testing.T) {
	// The 13-byte key is the standard 5-tuple descriptor length.
	for _, f := range All() {
		score := AvalancheScore(f, 13, 200, 7)
		// CRC is linear (avalanche probability exactly 0 or 1 per bit
		// pair), so only judge the mixing families strictly; CRC quality
		// is instead covered by the distribution tests below.
		if _, isCRC := f.(*CRC); isCRC {
			continue
		}
		if score > 0.06 {
			t.Errorf("%s: avalanche deviation %.4f, want <= 0.06", f.Name(), score)
		}
	}
}

func TestChiSquareUniformity(t *testing.T) {
	for _, f := range All() {
		v := ChiSquare(f, 13, 100000, 1024, 99)
		if v > 1.35 {
			t.Errorf("%s: chi-square/df = %.3f on structured keys, want <= 1.35", f.Name(), v)
		}
	}
}

func TestDefaultPairIndependence(t *testing.T) {
	// The two indices of the default pair must not be correlated: count
	// how often Index1 == Index2 across many keys; expect ~n/buckets.
	pair := DefaultPair()
	const (
		n       = 50000
		buckets = 256
	)
	same := 0
	key := make([]byte, 13)
	for i := 0; i < n; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		if pair.Index1(key, buckets) == pair.Index2(key, buckets) {
			same++
		}
	}
	expected := float64(n) / buckets
	if f := float64(same); f > 3*expected {
		t.Fatalf("Index1==Index2 for %d keys, expected ~%.0f (correlated pair)", same, expected)
	}
}

func TestCollisionRateTwoChoiceBeatsSingle(t *testing.T) {
	// §II: multi-choice hashing has a lower collision rate than a single
	// hash. Compare two-choice (the real pair) against a degenerate pair
	// whose second choice is the same function (single-hash behaviour).
	// A degenerate pair whose second choice reuses the first function
	// behaves like a single hash into double-depth buckets. At moderate
	// load the genuine two-choice pair must overflow at well under half
	// the single-hash rate (measured greedy-insertion ratios: ~3.5x at
	// load 0.24, shrinking toward ~1.4x as the table saturates).
	pair := DefaultPair()
	single := Pair{H1: pair.H1, H2: pair.H1}
	const (
		n       = 2000
		buckets = 2048
		k       = 2
	)
	two := CollisionRate(pair, 13, n, buckets, k, 5)
	one := CollisionRate(single, 13, n, buckets, k, 5)
	if two*2 >= one {
		t.Fatalf("two-choice overflow %.4f not well below single-hash %.4f", two, one)
	}
	if two > 0.01 {
		t.Fatalf("two-choice overflow %.4f at load factor 0.24 is implausibly high", two)
	}
	// Overflow must grow with load for both schemes.
	if CollisionRate(pair, 13, 3*n, buckets, k, 5) <= two {
		t.Fatal("two-choice overflow did not grow with load")
	}
}

func TestTabulationLongKeys(t *testing.T) {
	tab := NewTabulation(8, 3)
	// Keys longer than the table set must still be sensitive to every
	// position, including positions that fold onto the same table.
	base := make([]byte, 24)
	h0 := tab.Hash(base)
	for i := range base {
		mod := make([]byte, 24)
		copy(mod, base)
		mod[i] = 0xFF
		if tab.Hash(mod) == h0 {
			t.Fatalf("tabulation insensitive to byte %d of a long key", i)
		}
	}
}

func TestTabulationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTabulation(0, ...) did not panic")
		}
	}()
	NewTabulation(0, 1)
}

func TestReducePanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reduce with n=0 did not panic")
		}
	}()
	Reduce(123, 0)
}
