package hashfn

import (
	"hash/crc32"
	"testing"
)

// bitCRC is the reference bit-at-a-time CRC-32 (reflected polynomial,
// initial and final inversion) — the textbook serial circuit every table
// and slicing engine must agree with.
func bitCRC(poly uint32, p []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range p {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// refHash is the reference 64-bit widening: low word the plain CRC, high
// word the CRC over the domain-prefixed key.
func refHash(poly uint32, key []byte) uint64 {
	lo := bitCRC(poly, key)
	hi := bitCRC(poly, append([]byte{crcDomainPrefix}, key...))
	return uint64(hi)<<32 | uint64(lo)
}

// FuzzCRCFused differentially fuzzes the CRC engines against the
// bit-at-a-time reference: the fused slicing-by-8 engine (non-hardware
// polynomials compute both 64-bit halves in one pass over the key — the
// PR-2 fast path this pins) and the hardware/stdlib table path must both
// reproduce the serial circuit exactly, for every key length and content,
// including the folded-in domain-prefix state.
func FuzzCRCFused(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{0xA5})
	f.Add([]byte("0123456789abc")) // the 13-byte 5-tuple width
	f.Add([]byte("a long key exceeding one slicing block and then some"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, key []byte) {
		for _, tc := range []struct {
			poly uint32
			name string
		}{
			{crc32.Koopman, "crc32k"},    // fused slicing-by-8 engine
			{crc32.IEEE, "crc32ieee"},    // fused slicing-by-8 engine
			{crc32.Castagnoli, "crc32c"}, // stdlib hardware/table path
		} {
			c := NewCRC(tc.poly, tc.name)
			if got, want := c.Hash(key), refHash(tc.poly, key); got != want {
				t.Fatalf("%s over %d-byte key %x: Hash = %#016x, bit-serial reference = %#016x",
					tc.name, len(key), key, got, want)
			}
			// The incremental update must agree with the reference too
			// (Hash fuses it; update is the building block NewCRC uses to
			// fold the domain prefix).
			if got, want := c.update(0, key), bitCRC(tc.poly, key); got != want {
				t.Fatalf("%s update over %d-byte key %x: %#08x, reference %#08x",
					tc.name, len(key), key, got, want)
			}
		}
	})
}
