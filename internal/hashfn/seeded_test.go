package hashfn

import (
	"encoding/binary"
	"testing"
)

// TestSeededPairDeterministicPerSeed pins the reproducibility contract:
// equal seeds give bit-identical hash words and selector mixes, distinct
// seeds give unrelated ones.
func TestSeededPairDeterministicPerSeed(t *testing.T) {
	a, b := SeededPair(42), SeededPair(42)
	c := SeededPair(43)
	key := make([]byte, 13)
	same, diff1, diffMix := 0, 0, 0
	for i := 0; i < 2000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i)*0x9e3779b97f4a7c15)
		ka, kb, kc := a.Compute(key), b.Compute(key), c.Compute(key)
		if ka != kb {
			t.Fatalf("key %d: same seed disagrees: %+v vs %+v", i, ka, kb)
		}
		if ka == kc {
			same++
		}
		if ka.H1 == kc.H1 {
			diff1++
		}
		if ka.Mix == kc.Mix {
			diffMix++
		}
	}
	if same > 0 || diff1 > 0 || diffMix > 0 {
		t.Fatalf("seeds 42 vs 43 collided on %d full bundles, %d H1 words, %d Mix words (want 0)",
			same, diff1, diffMix)
	}
}

// TestSeededPairKeysSelector checks that the selector mix of a seeded
// pair differs from the unkeyed MixWords constant path, and that
// MixWordsSeeded(_, _, 0) stays bit-compatible with MixWords.
func TestSeededPairKeysSelector(t *testing.T) {
	p := SeededPair(7)
	if p.SelSeed == 0 {
		t.Fatal("SeededPair left SelSeed at the unkeyed zero value")
	}
	if p.SelSeed != SelectorSeed(7) {
		t.Fatalf("SelSeed %#x != SelectorSeed(7) %#x", p.SelSeed, SelectorSeed(7))
	}
	key := []byte("thirteen-byte")
	kh := p.Compute(key)
	if kh.Mix == MixWords(kh.H1, kh.H2) {
		t.Fatal("seeded pair produced the unkeyed selector word")
	}
	if kh.Mix != MixWordsSeeded(kh.H1, kh.H2, p.SelSeed) {
		t.Fatal("Compute's Mix disagrees with MixWordsSeeded over the same seed")
	}
	if MixWordsSeeded(kh.H1, kh.H2, 0) != MixWords(kh.H1, kh.H2) {
		t.Fatal("MixWordsSeeded with zero seed must match the historical MixWords")
	}
}

// TestSeededPairSelectorIndependence repeats the sharded table's
// selector/bucket independence requirement under a keyed pair: keys
// pinned to one bucket must still spread across shards.
func TestSeededPairSelectorIndependence(t *testing.T) {
	pair := SeededPair(0x5eed)
	const (
		buckets = 64
		shards  = 8
	)
	counts := make([]int, shards)
	total := 0
	key := make([]byte, 13)
	for i := 0; total < 4000 && i < 2_000_000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		kh := pair.Compute(key)
		if kh.Index1(buckets) != 0 {
			continue
		}
		counts[Reduce(kh.Mix, shards)]++
		total++
	}
	if total < 4000 {
		t.Fatalf("only %d keys landed in the probe bucket", total)
	}
	want := total / shards
	for s, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("shard %d holds %d of %d same-bucket keys (want ≈%d)", s, n, total, want)
		}
	}
}

// TestRandomSeedNonZeroAndVarying sanity-checks the CSPRNG draw: never
// zero (the "unset" sentinel) and vanishingly unlikely to repeat.
func TestRandomSeedNonZeroAndVarying(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		s := RandomSeed()
		if s == 0 {
			t.Fatal("RandomSeed returned the zero sentinel")
		}
		if seen[s] {
			t.Fatalf("RandomSeed repeated %#x within 64 draws", s)
		}
		seen[s] = true
	}
}
