//go:build !race

package hashfn

const raceEnabled = false
