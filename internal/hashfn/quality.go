package hashfn

import "math"

// AvalancheScore measures how close f is to the avalanche criterion:
// flipping one input bit should flip each output bit with probability 1/2.
// It returns the mean absolute deviation from 0.5 over all (input bit,
// output bit) pairs, sampled over trials random keys of keyLen bytes
// generated from seed. Zero is ideal; a strong hash scores below ~0.05 at
// a few hundred trials.
func AvalancheScore(f Func, keyLen, trials int, seed uint64) float64 {
	if keyLen <= 0 || trials <= 0 {
		panic("hashfn: AvalancheScore requires positive keyLen and trials")
	}
	flipCounts := make([][64]int, keyLen*8)
	s := seed
	key := make([]byte, keyLen)
	for trial := 0; trial < trials; trial++ {
		for i := range key {
			s += 0x9e3779b97f4a7c15
			key[i] = byte(mix64(s))
		}
		base := f.Hash(key)
		for bit := 0; bit < keyLen*8; bit++ {
			key[bit/8] ^= 1 << (bit % 8)
			diff := base ^ f.Hash(key)
			key[bit/8] ^= 1 << (bit % 8)
			for out := 0; out < 64; out++ {
				if diff&(1<<out) != 0 {
					flipCounts[bit][out]++
				}
			}
		}
	}
	var dev float64
	for _, counts := range flipCounts {
		for _, c := range counts {
			dev += math.Abs(float64(c)/float64(trials) - 0.5)
		}
	}
	return dev / float64(keyLen*8*64)
}

// ChiSquare measures the bucket-occupancy uniformity of f over n keys into
// buckets bins, using sequential structured keys (the adversarial case for
// network headers: incrementing IPs/ports). It returns the chi-square
// statistic divided by the degrees of freedom; values near 1.0 indicate a
// uniform distribution, values far above indicate clustering.
func ChiSquare(f Func, keyLen, n, buckets int, seed uint64) float64 {
	if keyLen < 4 {
		panic("hashfn: ChiSquare requires keyLen >= 4")
	}
	counts := make([]int, buckets)
	key := make([]byte, keyLen)
	for i := 0; i < n; i++ {
		// Structured keys: a counter in the first 4 bytes, constant tail,
		// mimicking incrementing flow tuples.
		v := uint32(i) + uint32(seed)
		key[0] = byte(v)
		key[1] = byte(v >> 8)
		key[2] = byte(v >> 16)
		key[3] = byte(v >> 24)
		counts[reduce(f.Hash(key), buckets)]++
	}
	expected := float64(n) / float64(buckets)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2 / float64(buckets-1)
}

// CollisionRate inserts n distinct pseudo-random keys (drawn from seed)
// into buckets two-choice buckets of capacity k using pair and returns the
// fraction that could not be placed in either choice (the overflow a CAM
// must absorb). Insertion is greedy: first choice if it has room, else
// second choice, matching the paper's table build. It is the metric behind
// the CAM-size ablation.
func CollisionRate(pair Pair, keyLen, n, buckets, k int, seed uint64) float64 {
	if n <= 0 {
		panic("hashfn: CollisionRate requires n > 0")
	}
	load1 := make([]int, buckets)
	load2 := make([]int, buckets)
	overflow := 0
	key := make([]byte, keyLen)
	s := seed
	for i := 0; i < n; i++ {
		for j := range key {
			s += 0x9e3779b97f4a7c15
			key[j] = byte(mix64(s) >> uint(8*(j%8)))
		}
		i1 := pair.Index1(key, buckets)
		i2 := pair.Index2(key, buckets)
		// Alternate the preferred table, as the scheme's load balancer
		// alternates the first-lookup path (§III-B).
		first, second := load1, load2
		fi, si := i1, i2
		if i%2 == 1 {
			first, second = load2, load1
			fi, si = i2, i1
		}
		switch {
		case first[fi] < k:
			first[fi]++
		case second[si] < k:
			second[si]++
		default:
			overflow++
		}
	}
	return float64(overflow) / float64(n)
}
