package analyzer

import (
	"testing"
	"time"

	"repro/internal/netflow"
	"repro/internal/packet"
	"repro/internal/trafficgen"
)

func newAnalyzer(t *testing.T, cfg Config) *Analyzer {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func pkt(flow uint64, size int) packet.Packet {
	return packet.Packet{Tuple: trafficgen.Flow(flow), WireLen: size}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TopK = 0 },
		func(c *Config) { c.SpikePPS = 0 },
		func(c *Config) { c.IntervalNanos = 0 },
		func(c *Config) { c.ScanFanout = 0 },
		func(c *Config) { c.PressureRatio = 1.5 },
		func(c *Config) { c.Flow.IdleTimeout = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTopKTracksHeaviest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TopK = 3
	a := newAnalyzer(t, cfg)
	// Flow 1: 100 packets; flow 2: 50; flow 3: 10; flows 4-20: 1 each.
	now := uint64(0)
	feed := func(flow uint64, n int) {
		for i := 0; i < n; i++ {
			now += 1000
			a.Observe(pkt(flow, 1000), now)
		}
	}
	feed(1, 100)
	feed(2, 50)
	feed(3, 10)
	for f := uint64(4); f < 20; f++ {
		feed(f, 1)
	}
	top := a.TopK()
	if len(top) != 3 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	if top[0].Tuple != trafficgen.Flow(1) {
		t.Fatalf("heaviest = %v, want flow 1", top[0].Tuple)
	}
	// Space-saving guarantees the true heavy hitters stay in the table
	// (with possible overestimation); flow 2 must be present.
	found := false
	for _, h := range top {
		if h.Tuple == trafficgen.Flow(2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("flow 2 missing from top-k: %+v", top)
	}
}

func TestRateSpikeEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpikePPS = 1000
	cfg.IntervalNanos = uint64(time.Second)
	a := newAnalyzer(t, cfg)
	// 5000 packets in one second: 5x the threshold.
	for i := 0; i < 5000; i++ {
		a.Observe(pkt(uint64(i%10), 64), uint64(i)*200_000)
	}
	// Cross the interval boundary to close it.
	a.Observe(pkt(1, 64), uint64(time.Second)+1)
	events := a.DrainEvents()
	if len(events) == 0 || events[0].Kind != EventRateSpike {
		t.Fatalf("events = %+v, want rate spike", events)
	}
}

func TestNoSpikeBelowThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpikePPS = 1e9
	a := newAnalyzer(t, cfg)
	for i := 0; i < 1000; i++ {
		a.Observe(pkt(1, 64), uint64(i)*1_000_000)
	}
	a.Observe(pkt(1, 64), uint64(2*time.Second))
	for _, e := range a.DrainEvents() {
		if e.Kind == EventRateSpike {
			t.Fatalf("spurious spike: %+v", e)
		}
	}
}

func TestPortScanEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScanFanout = 50
	a := newAnalyzer(t, cfg)
	base := trafficgen.Flow(1)
	for port := uint16(1); port <= 60; port++ {
		p := packet.Packet{Tuple: base, WireLen: 64}
		p.Tuple.DstPort = port
		a.Observe(p, uint64(port)*1000)
	}
	events := a.DrainEvents()
	scans := 0
	for _, e := range events {
		if e.Kind == EventPortScan {
			scans++
		}
	}
	if scans != 1 {
		t.Fatalf("port-scan events = %d, want exactly 1 (threshold crossing)", scans)
	}
}

func TestTablePressureEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flow.MaxFlows = 100
	cfg.PressureRatio = 0.5
	a := newAnalyzer(t, cfg)
	for i := uint64(0); i < 60; i++ {
		a.Observe(pkt(i, 64), i*1000)
	}
	events := a.DrainEvents()
	pressure := 0
	for _, e := range events {
		if e.Kind == EventTablePressure {
			pressure++
		}
	}
	if pressure == 0 {
		t.Fatal("no table-pressure event at 60% occupancy with 50% threshold")
	}
}

func TestFlowEngineIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flow.IdleTimeout = time.Second
	a := newAnalyzer(t, cfg)
	a.Observe(pkt(1, 64), 0)
	// Cross an interval: housekeeping runs and exports the idle flow.
	a.Observe(pkt(2, 64), uint64(2*time.Second))
	exports := a.Flow().DrainExports()
	if len(exports) != 1 || exports[0].Reason != netflow.ReasonIdleTimeout {
		t.Fatalf("exports = %+v", exports)
	}
}
