// Package analyzer assembles the paper's Fig. 7 traffic-analyzer system:
// a packet buffer in front of the flow processor, a stats engine (top-k
// heavy hitters, protocol mix), and an event engine raising threshold
// events (rate spikes, port-scan suspects). The flow processor role is
// played by the netflow engine over the lookup substrate.
package analyzer

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/netflow"
	"repro/internal/packet"
)

// Event is one detection raised by the event engine.
type Event struct {
	TimeNanos uint64
	Kind      EventKind
	Detail    string
}

// EventKind classifies events.
type EventKind int

// Event kinds.
const (
	EventRateSpike EventKind = iota + 1
	EventPortScan
	EventTablePressure
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventRateSpike:
		return "rate-spike"
	case EventPortScan:
		return "port-scan"
	case EventTablePressure:
		return "table-pressure"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Config parameterises the analyzer.
type Config struct {
	// Flow configures the embedded flow-state engine.
	Flow netflow.Config
	// TopK is the heavy-hitter table size.
	TopK int
	// SpikePPS raises EventRateSpike when the per-interval packet rate
	// exceeds this many packets per second.
	SpikePPS float64
	// IntervalNanos is the measurement interval.
	IntervalNanos uint64
	// ScanFanout raises EventPortScan when one source touches more than
	// this many distinct destination ports within an interval.
	ScanFanout int
	// PressureRatio raises EventTablePressure when active flows exceed
	// this fraction of Flow.MaxFlows (ignored when MaxFlows is 0).
	PressureRatio float64
}

// DefaultConfig returns a usable analyzer configuration.
func DefaultConfig() Config {
	return Config{
		Flow:          netflow.DefaultConfig(),
		TopK:          10,
		SpikePPS:      1e6,
		IntervalNanos: 1_000_000_000,
		ScanFanout:    100,
		PressureRatio: 0.9,
	}
}

// Validate reports an error for unusable parameters.
func (c Config) Validate() error {
	if err := c.Flow.Validate(); err != nil {
		return err
	}
	switch {
	case c.TopK <= 0:
		return fmt.Errorf("analyzer: top-k must be positive, got %d", c.TopK)
	case c.SpikePPS <= 0:
		return fmt.Errorf("analyzer: spike threshold must be positive, got %v", c.SpikePPS)
	case c.IntervalNanos == 0:
		return fmt.Errorf("analyzer: interval must be positive")
	case c.ScanFanout <= 0:
		return fmt.Errorf("analyzer: scan fanout must be positive, got %d", c.ScanFanout)
	case c.PressureRatio <= 0 || c.PressureRatio > 1:
		return fmt.Errorf("analyzer: pressure ratio %v out of (0,1]", c.PressureRatio)
	}
	return nil
}

// HeavyHitter is one top-k entry.
type HeavyHitter struct {
	Tuple   packet.FiveTuple
	Packets uint64
	Bytes   uint64
}

// Analyzer is the assembled system.
type Analyzer struct {
	cfg  Config
	flow *netflow.Engine
	spec packet.TupleSpec

	// Space-saving top-k over flow byte counts.
	counters map[string]*hhEntry
	hhHeap   hhHeap

	intervalStarted bool
	intervalStart   uint64
	intervalPackets int64
	scanPorts       map[string]map[uint16]struct{}

	events []Event
}

type hhEntry struct {
	key     string
	tuple   packet.FiveTuple
	packets uint64
	bytes   uint64
	index   int
}

type hhHeap []*hhEntry

func (h hhHeap) Len() int           { return len(h) }
func (h hhHeap) Less(i, j int) bool { return h[i].bytes < h[j].bytes }
func (h hhHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *hhHeap) Push(x any)        { e := x.(*hhEntry); e.index = len(*h); *h = append(*h, e) }
func (h *hhHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New builds an analyzer.
func New(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fe, err := netflow.NewEngine(cfg.Flow)
	if err != nil {
		return nil, err
	}
	return &Analyzer{
		cfg:       cfg,
		flow:      fe,
		spec:      packet.FiveTupleSpec(),
		counters:  make(map[string]*hhEntry),
		scanPorts: make(map[string]map[uint16]struct{}),
	}, nil
}

// Flow exposes the embedded flow engine.
func (a *Analyzer) Flow() *netflow.Engine { return a.flow }

// Observe feeds one packet through the whole system.
func (a *Analyzer) Observe(p packet.Packet, nowNanos uint64) {
	a.rollInterval(nowNanos)
	a.intervalPackets++

	a.flow.Observe(p, nowNanos)
	a.updateTopK(p)
	a.updateScan(p, nowNanos)
	a.checkPressure(nowNanos)
}

// rollInterval closes the measurement interval, raising rate events.
func (a *Analyzer) rollInterval(nowNanos uint64) {
	if !a.intervalStarted {
		a.intervalStarted = true
		a.intervalStart = nowNanos
		return
	}
	if nowNanos-a.intervalStart < a.cfg.IntervalNanos {
		return
	}
	seconds := float64(nowNanos-a.intervalStart) / 1e9
	pps := float64(a.intervalPackets) / seconds
	if pps > a.cfg.SpikePPS {
		a.events = append(a.events, Event{
			TimeNanos: nowNanos,
			Kind:      EventRateSpike,
			Detail:    fmt.Sprintf("%.0f pps over %.3f s", pps, seconds),
		})
	}
	a.intervalStart = nowNanos
	a.intervalPackets = 0
	a.scanPorts = make(map[string]map[uint16]struct{})
	a.flow.Housekeep(nowNanos)
}

// updateTopK maintains the space-saving heavy-hitter table.
func (a *Analyzer) updateTopK(p packet.Packet) {
	key := string(a.spec.Key(p.Tuple))
	if e, ok := a.counters[key]; ok {
		e.packets++
		e.bytes += uint64(p.WireLen)
		heap.Fix(&a.hhHeap, e.index)
		return
	}
	if len(a.counters) < a.cfg.TopK {
		e := &hhEntry{key: key, tuple: p.Tuple, packets: 1, bytes: uint64(p.WireLen)}
		a.counters[key] = e
		heap.Push(&a.hhHeap, e)
		return
	}
	// Space-saving: replace the minimum, inheriting its count (bounded
	// overestimation).
	min := a.hhHeap[0]
	delete(a.counters, min.key)
	min.key = key
	min.tuple = p.Tuple
	min.packets++
	min.bytes += uint64(p.WireLen)
	a.counters[key] = min
	heap.Fix(&a.hhHeap, 0)
}

// updateScan tracks per-source destination-port fanout.
func (a *Analyzer) updateScan(p packet.Packet, nowNanos uint64) {
	if p.Tuple.Proto != packet.ProtoTCP && p.Tuple.Proto != packet.ProtoUDP {
		return
	}
	src := p.Tuple.Src.String()
	ports, ok := a.scanPorts[src]
	if !ok {
		ports = make(map[uint16]struct{})
		a.scanPorts[src] = ports
	}
	before := len(ports)
	ports[p.Tuple.DstPort] = struct{}{}
	if before < a.cfg.ScanFanout && len(ports) >= a.cfg.ScanFanout {
		a.events = append(a.events, Event{
			TimeNanos: nowNanos,
			Kind:      EventPortScan,
			Detail:    fmt.Sprintf("source %s touched %d destination ports", src, len(ports)),
		})
	}
}

// checkPressure raises a table-pressure event at the configured occupancy.
func (a *Analyzer) checkPressure(nowNanos uint64) {
	max := a.cfg.Flow.MaxFlows
	if max == 0 {
		return
	}
	if float64(a.flow.ActiveFlows()) >= a.cfg.PressureRatio*float64(max) {
		// Deduplicate: only raise when crossing the threshold.
		if len(a.events) > 0 && a.events[len(a.events)-1].Kind == EventTablePressure {
			return
		}
		a.events = append(a.events, Event{
			TimeNanos: nowNanos,
			Kind:      EventTablePressure,
			Detail: fmt.Sprintf("%d of %d flow entries in use",
				a.flow.ActiveFlows(), max),
		})
	}
}

// TopK returns the heavy hitters, largest first.
func (a *Analyzer) TopK() []HeavyHitter {
	out := make([]HeavyHitter, 0, len(a.hhHeap))
	for _, e := range a.hhHeap {
		out = append(out, HeavyHitter{Tuple: e.tuple, Packets: e.packets, Bytes: e.bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

// DrainEvents returns and clears accumulated events.
func (a *Analyzer) DrainEvents() []Event {
	out := a.events
	a.events = nil
	return out
}
