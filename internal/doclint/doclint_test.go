// Package doclint enforces the repository's godoc coverage: the packages
// forming the public API surface and the table stack must carry a package
// doc comment and a doc comment on every exported declaration — types,
// functions, methods with exported receivers, and const/var groups. It
// runs as a plain test so `go test ./...` (and the CI doc-lint step)
// fails when an undocumented export lands.
package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintedPackages is the enforced set: the public API package and every
// internal layer. (The ISSUE floor was flowproc, table, hashfn and
// trafficgen; the whole module already meets the bar, so the lint holds
// it there.)
var lintedPackages = []string{
	"../../flowproc",
	"../../internal/analyzer",
	"../../internal/baseline",
	"../../internal/bloom",
	"../../internal/cam",
	"../../internal/core",
	"../../internal/dram",
	"../../internal/experiments",
	"../../internal/hashcam",
	"../../internal/hashfn",
	"../../internal/memctrl",
	"../../internal/metrics",
	"../../internal/netflow",
	"../../internal/packet",
	"../../internal/resource",
	"../../internal/sim",
	"../../internal/table",
	"../../internal/trace",
	"../../internal/trafficgen",
}

// receiverType returns the name of a method receiver's base type.
func receiverType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lintFile reports every undocumented exported declaration of one parsed
// file.
func lintFile(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods count when their receiver type is exported
			// (unexported receivers are internal even with exported
			// method names, e.g. interface satisfiers).
			if recv := receiverType(d); recv != "" && !ast.IsExported(recv) {
				continue
			}
			if d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment", pos(d), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
					}
				case *ast.ValueSpec:
					// A documented const/var group covers its members,
					// the idiomatic style for enums and related values.
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							t.Errorf("%s: exported value %s has no doc comment", pos(s), name.Name)
						}
					}
				}
			}
		}
	}
}

// TestGodocCoverage parses each linted package and fails on any
// undocumented exported declaration or missing package comment.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range lintedPackages {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			fset := token.NewFileSet()
			packageDoc := false
			parsedAny := false
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
				if err != nil {
					t.Fatal(err)
				}
				parsedAny = true
				if f.Doc != nil {
					packageDoc = true
				}
				lintFile(t, fset, f)
			}
			if !parsedAny {
				t.Fatalf("no Go files found in %s", dir)
			}
			if !packageDoc {
				t.Errorf("package %s has no package doc comment", dir)
			}
		})
	}
}
