package cam

import (
	"fmt"
)

// TCAMEntry is a ternary entry: key bits are compared only where the mask
// bit is 1. Priority is the physical position — lower index wins, as in
// hardware TCAMs where the priority encoder picks the first matching line.
type TCAMEntry struct {
	Key   []byte
	Mask  []byte
	Value uint64
}

// Matches reports whether data matches the entry under its mask.
func (e TCAMEntry) Matches(data []byte) bool {
	if len(data) != len(e.Key) {
		return false
	}
	for i := range data {
		if (data[i]^e.Key[i])&e.Mask[i] != 0 {
			return false
		}
	}
	return true
}

// TCAM is a ternary CAM with positional priority, used for wildcard tuple
// rules (e.g. "all flows to port 80 regardless of source").
type TCAM struct {
	width   int
	entries []TCAMEntry
	used    []bool
	inUse   int
}

// NewTCAM returns a TCAM of capacity entries over keys of width bytes.
func NewTCAM(capacity, width int) *TCAM {
	if capacity <= 0 || width <= 0 {
		panic(fmt.Sprintf("cam: TCAM capacity and width must be positive (%d, %d)", capacity, width))
	}
	return &TCAM{
		width:   width,
		entries: make([]TCAMEntry, capacity),
		used:    make([]bool, capacity),
	}
}

// Capacity returns the entry count.
func (t *TCAM) Capacity() int { return len(t.entries) }

// InUse returns the occupied entry count.
func (t *TCAM) InUse() int { return t.inUse }

// Width returns the key width in bytes.
func (t *TCAM) Width() int { return t.width }

// Search returns the value of the highest-priority (lowest index) matching
// entry.
func (t *TCAM) Search(data []byte) (uint64, bool) {
	for i, e := range t.entries {
		if t.used[i] && e.Matches(data) {
			return e.Value, true
		}
	}
	return 0, false
}

// InsertAt programs the entry at position. A nil mask means exact match
// (all bits compared). It returns an error for bad geometry or an occupied
// position; hardware TCAM management software owns placement, so there is
// no auto-allocation.
func (t *TCAM) InsertAt(position int, e TCAMEntry) error {
	if position < 0 || position >= len(t.entries) {
		return fmt.Errorf("cam: TCAM position %d out of range [0,%d)", position, len(t.entries))
	}
	if len(e.Key) != t.width {
		return fmt.Errorf("cam: TCAM key width %d, want %d", len(e.Key), t.width)
	}
	if e.Mask == nil {
		e.Mask = make([]byte, t.width)
		for i := range e.Mask {
			e.Mask[i] = 0xFF
		}
	}
	if len(e.Mask) != t.width {
		return fmt.Errorf("cam: TCAM mask width %d, want %d", len(e.Mask), t.width)
	}
	if t.used[position] {
		return fmt.Errorf("cam: TCAM position %d occupied", position)
	}
	t.entries[position] = TCAMEntry{
		Key:   append([]byte(nil), e.Key...),
		Mask:  append([]byte(nil), e.Mask...),
		Value: e.Value,
	}
	t.used[position] = true
	t.inUse++
	return nil
}

// DeleteAt clears the entry at position and reports whether it was used.
func (t *TCAM) DeleteAt(position int) bool {
	if position < 0 || position >= len(t.entries) || !t.used[position] {
		return false
	}
	t.entries[position] = TCAMEntry{}
	t.used[position] = false
	t.inUse--
	return true
}
