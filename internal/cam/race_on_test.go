//go:build race

package cam

const raceEnabled = true
