// Package cam models the on-chip content-addressable memory used to absorb
// hash collisions (Fig. 1: "additional entries at the same hash location,
// namely hash collisions, are stored in the CAM"). A hardware CAM searches
// all entries in parallel in one cycle; this model preserves that cost
// contract (a Search is one pipeline stage regardless of occupancy) while
// providing exact-match semantics, insert/delete, and occupancy stats.
//
// Storage is the repository-wide cache-conscious slot layout
// (internal/table/slotarr): keys inline in one contiguous arena plus a
// one-byte fingerprint tag per entry, so a search SWAR-scans eight tags
// per word load — the software rendition of the hardware's all-entries
// parallel match — and only reads key memory on a tag hit. Tags derive
// from the key bytes (ByteTag), because the pipelined table searches the
// CAM before computing any hash.
//
// A TCAM variant with per-entry masks supports wildcard tuples, covering
// the paper's "number of tuples for lookup" scalability claim.
package cam

import (
	"fmt"
	"sync/atomic"

	"repro/internal/table/slotarr"
)

// ErrFull is returned by Insert when every CAM entry is occupied — the
// overflow condition that bounds the hash scheme's collision budget.
var ErrFull = fmt.Errorf("cam: all entries occupied")

// Entry is one stored key/value pair. Value is the match index the flow
// table associates with the key (a flow ID or location index). Entries
// returned by EntryAt and Range alias the CAM's arena: the Key slice is
// valid until the next mutation and must not be modified.
type Entry struct {
	Key   []byte
	Value uint64
}

// Stats counts CAM activity.
type Stats struct {
	Searches  int64
	Hits      int64
	Inserts   int64
	Deletes   int64
	MaxInUse  int
	InsertErr int64 // rejected inserts (CAM full)
}

// counters is the live form of Stats. The search-path counters are atomic
// so Search can run under a shared (read) lock concurrently with other
// searchers; the mutation counters are only touched by Insert/Delete,
// which callers must serialise exclusively (the sharded table's write
// lock does).
type counters struct {
	searches  atomic.Int64
	hits      atomic.Int64
	inserts   int64
	deletes   int64
	maxInUse  int
	insertErr int64
}

// CAM is a binary (exact-match) content-addressable memory with a fixed
// number of entries. Search is safe to call concurrently with other
// Searches; Insert and Delete require exclusive access.
//
// The entry width is fixed by the first key inserted; hardware CAM lines
// are fixed-width, and every table in this repository stores keys of one
// configured length.
type CAM struct {
	store  *slotarr.Store // nil until the first insert fixes the key width
	values []uint64
	inUse  int
	stats  counters
}

// New returns a CAM with the given entry count. The paper's reference
// point (Kirsch & Mitzenmacher [9]) uses 64 entries; the prototype default
// matches it.
func New(capacity int) *CAM {
	if capacity <= 0 {
		panic(fmt.Sprintf("cam: capacity must be positive, got %d", capacity))
	}
	return &CAM{values: make([]uint64, capacity)}
}

// Capacity returns the total entry count.
func (c *CAM) Capacity() int { return len(c.values) }

// Preallocate fixes the CAM's key width to keyLen and allocates its slot
// store up front, exactly as the first Insert of a keyLen-byte key would.
// Tables that serve lock-free reads call it at construction: the lazy
// first-insert allocation swings c.store from nil to a fresh pointer,
// which a reader racing that insert without a lock could observe torn.
// With the store preallocated, no CAM pointer ever changes after New.
// Preallocate on an already-fixed CAM of the same width is a no-op; a
// different width panics like a mismatched Insert would.
func (c *CAM) Preallocate(keyLen int) {
	if c.store != nil {
		if c.store.KeyLen() != keyLen {
			panic(fmt.Sprintf("cam: Preallocate(%d) on a CAM fixed at %d", keyLen, c.store.KeyLen()))
		}
		return
	}
	c.store = slotarr.New(len(c.values), keyLen)
}

// InUse returns the number of occupied entries.
func (c *CAM) InUse() int { return c.inUse }

// Stats returns a snapshot of the activity counters.
func (c *CAM) Stats() Stats {
	return Stats{
		Searches:  c.stats.searches.Load(),
		Hits:      c.stats.hits.Load(),
		Inserts:   c.stats.inserts,
		Deletes:   c.stats.deletes,
		MaxInUse:  c.stats.maxInUse,
		InsertErr: c.stats.insertErr,
	}
}

// find locates key's entry index via the tag scan.
func (c *CAM) find(key []byte) (int, bool) {
	if c.store == nil || c.store.KeyLen() != len(key) {
		return 0, false
	}
	return c.store.FindTagged(0, c.store.Slots(), slotarr.ByteTag(key), key)
}

// Search performs the parallel match against all occupied entries. It
// returns the stored value and true on a hit. Hardware cost: one cycle,
// independent of occupancy.
func (c *CAM) Search(key []byte) (uint64, bool) {
	c.stats.searches.Add(1)
	v, ok := c.Find(key)
	if ok {
		c.stats.hits.Add(1)
	}
	return v, ok
}

// Find is Search without statistics, for callers on a hot path that
// account CAM accesses in their own counters (the flow table's pipelined
// lookup charges the CAM stage through its stage-outcome counter; paying
// two more atomic adds here would double-count the cost).
func (c *CAM) Find(key []byte) (uint64, bool) {
	i, ok := c.find(key)
	if !ok {
		return 0, false
	}
	return c.values[i], true
}

// Insert stores key→value in a free entry and returns the entry index it
// occupied (flow tables derive location-based IDs from it). Inserting a
// key that is already present overwrites its value in place. It returns
// ErrFull when no entry is free. The key bytes are copied into the CAM's
// inline arena — a steady-state insert allocates nothing.
func (c *CAM) Insert(key []byte, value uint64) (int, error) {
	if c.store == nil {
		c.store = slotarr.New(len(c.values), len(key))
	} else if c.store.KeyLen() != len(key) {
		panic(fmt.Sprintf("cam: key of %d bytes, CAM fixed at %d by its first insert",
			len(key), c.store.KeyLen()))
	}
	tag := slotarr.ByteTag(key)
	// Overwrite an existing match first: duplicate keys in a CAM would
	// make match priority ambiguous.
	if i, ok := c.store.FindTagged(0, c.store.Slots(), tag, key); ok {
		c.values[i] = value
		c.stats.inserts++
		return i, nil
	}
	i, ok := c.store.FindFree(0, c.store.Slots())
	if !ok {
		c.stats.insertErr++
		return 0, ErrFull
	}
	c.store.Set(i, tag, key)
	c.values[i] = value
	c.inUse++
	if c.inUse > c.stats.maxInUse {
		c.stats.maxInUse = c.inUse
	}
	c.stats.inserts++
	return i, nil
}

// Delete removes the entry matching key and reports whether one existed.
func (c *CAM) Delete(key []byte) bool {
	i, ok := c.find(key)
	if !ok {
		return false
	}
	c.store.Clear(i)
	c.values[i] = 0
	c.inUse--
	c.stats.deletes++
	return true
}

// EntryAt returns the entry at physical index i and whether it is
// occupied. The lifecycle sweep uses it to snapshot a key before
// reclaiming the entry by index; the Key slice aliases the arena (see
// Entry).
func (c *CAM) EntryAt(i int) (Entry, bool) {
	if i < 0 || i >= len(c.values) || c.store == nil || !c.store.Occupied(i) {
		return Entry{}, false
	}
	return Entry{Key: c.store.Key(i), Value: c.values[i]}, true
}

// DeleteAt removes the entry at physical index i without a key search,
// reporting whether one was present — the slot-addressed delete of the
// housekeeping sweep (a hardware CAM invalidates an entry by clearing its
// valid bit).
func (c *CAM) DeleteAt(i int) bool {
	if i < 0 || i >= len(c.values) || c.store == nil || !c.store.Occupied(i) {
		return false
	}
	c.store.Clear(i)
	c.values[i] = 0
	c.inUse--
	c.stats.deletes++
	return true
}

// Range calls fn for every occupied entry until fn returns false. The
// iteration order is the physical entry order; the Key slices alias the
// arena (see Entry).
func (c *CAM) Range(fn func(Entry) bool) {
	if c.store == nil {
		return
	}
	for i := range c.values {
		if c.store.Occupied(i) && !fn(Entry{Key: c.store.Key(i), Value: c.values[i]}) {
			return
		}
	}
}

// Bytes returns the storage footprint of the CAM: the slot arena (keys +
// tags) plus the value array. A CAM that has never seen an insert charges
// only its values.
func (c *CAM) Bytes() int64 {
	n := int64(len(c.values)) * 8
	if c.store != nil {
		n += c.store.Bytes()
	}
	return n
}

// BitCost returns the storage cost of the CAM in bits for the given key
// width, the quantity the resource model (Table I substitute) reports:
// capacity × (key bits + value bits + valid bit).
func (c *CAM) BitCost(keyBytes, valueBits int) int64 {
	return int64(c.Capacity()) * int64(keyBytes*8+valueBits+1)
}
