//go:build !race

package cam

// raceEnabled reports whether the race detector is active; the
// AllocsPerRun bounds are skipped under -race because the race runtime
// itself allocates.
const raceEnabled = false
