package cam

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestSearchInsertDelete(t *testing.T) {
	c := New(4)
	if _, ok := c.Search([]byte("k1")); ok {
		t.Fatal("hit on empty CAM")
	}
	if _, err := c.Insert([]byte("k1"), 100); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Search([]byte("k1"))
	if !ok || v != 100 {
		t.Fatalf("Search = (%d,%v), want (100,true)", v, ok)
	}
	if !c.Delete([]byte("k1")) {
		t.Fatal("Delete missed existing key")
	}
	if _, ok := c.Search([]byte("k1")); ok {
		t.Fatal("hit after delete")
	}
	if c.Delete([]byte("k1")) {
		t.Fatal("Delete reported success on missing key")
	}
}

func TestInsertOverwritesDuplicate(t *testing.T) {
	c := New(2)
	c.Insert([]byte("k"), 1)
	c.Insert([]byte("k"), 2)
	if c.InUse() != 1 {
		t.Fatalf("InUse = %d after duplicate insert, want 1", c.InUse())
	}
	if v, _ := c.Search([]byte("k")); v != 2 {
		t.Fatalf("value = %d, want 2 (overwritten)", v)
	}
}

func TestFull(t *testing.T) {
	c := New(2)
	c.Insert([]byte("a"), 1)
	c.Insert([]byte("b"), 2)
	_, err := c.Insert([]byte("c"), 3)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("Insert on full CAM = %v, want ErrFull", err)
	}
	// Freeing an entry makes room again.
	c.Delete([]byte("a"))
	if _, err := c.Insert([]byte("c"), 3); err != nil {
		t.Fatalf("Insert after delete: %v", err)
	}
	if c.Stats().InsertErr != 1 {
		t.Fatalf("InsertErr = %d, want 1", c.Stats().InsertErr)
	}
}

func TestInsertCopiesKey(t *testing.T) {
	c := New(2)
	key := []byte("mutable")
	c.Insert(key, 7)
	key[0] = 'X'
	if _, ok := c.Search([]byte("mutable")); !ok {
		t.Fatal("CAM aliased the caller's key slice")
	}
}

func TestRange(t *testing.T) {
	c := New(4)
	for i := 0; i < 3; i++ {
		c.Insert([]byte{byte(i)}, uint64(i))
	}
	c.Delete([]byte{1})
	var got []uint64
	c.Range(func(e Entry) bool {
		got = append(got, e.Value)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Range visited %d entries, want 2", len(got))
	}
	// Early termination.
	count := 0
	c.Range(func(Entry) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Range after false visited %d, want 1", count)
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	c.Insert([]byte("a"), 1)
	c.Insert([]byte("b"), 2)
	c.Search([]byte("a"))
	c.Search([]byte("zz"))
	st := c.Stats()
	if st.Searches != 2 || st.Hits != 1 || st.Inserts != 2 || st.MaxInUse != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBitCost(t *testing.T) {
	c := New(64)
	// 64 entries × (13-byte key = 104 bits + 23-bit value + valid).
	if got := c.BitCost(13, 23); got != 64*(104+23+1) {
		t.Fatalf("BitCost = %d, want %d", got, 64*(104+23+1))
	}
}

// Property: a CAM behaves as a map with bounded size under random
// insert/delete/search sequences.
func TestCAMModelProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint64
	}
	f := func(ops []op) bool {
		c := New(8)
		model := make(map[string]uint64)
		for _, o := range ops {
			key := []byte{o.Key % 16}
			ks := string(key)
			switch o.Kind % 3 {
			case 0:
				_, err := c.Insert(key, o.Value)
				if _, exists := model[ks]; exists {
					if err != nil {
						return false // overwrite must succeed
					}
					model[ks] = o.Value
				} else if len(model) < 8 {
					if err != nil {
						return false
					}
					model[ks] = o.Value
				} else if !errors.Is(err, ErrFull) {
					return false
				}
			case 1:
				deleted := c.Delete(key)
				_, existed := model[ks]
				if deleted != existed {
					return false
				}
				delete(model, ks)
			case 2:
				v, ok := c.Search(key)
				want, existed := model[ks]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
			if c.InUse() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestTCAMExactAndWildcard(t *testing.T) {
	tc := NewTCAM(4, 4)
	// Priority 0: exact match on 10.0.0.1.
	if err := tc.InsertAt(0, TCAMEntry{Key: []byte{10, 0, 0, 1}, Value: 100}); err != nil {
		t.Fatal(err)
	}
	// Priority 1: wildcard 10.0.0.* .
	if err := tc.InsertAt(1, TCAMEntry{
		Key:   []byte{10, 0, 0, 0},
		Mask:  []byte{0xFF, 0xFF, 0xFF, 0x00},
		Value: 200,
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := tc.Search([]byte{10, 0, 0, 1}); !ok || v != 100 {
		t.Fatalf("exact search = (%d,%v), want (100,true)", v, ok)
	}
	if v, ok := tc.Search([]byte{10, 0, 0, 7}); !ok || v != 200 {
		t.Fatalf("wildcard search = (%d,%v), want (200,true)", v, ok)
	}
	if _, ok := tc.Search([]byte{10, 0, 1, 7}); ok {
		t.Fatal("search matched outside wildcard range")
	}
}

func TestTCAMPriorityOrder(t *testing.T) {
	tc := NewTCAM(4, 1)
	tc.InsertAt(2, TCAMEntry{Key: []byte{5}, Mask: []byte{0}, Value: 300}) // match-all, low priority
	tc.InsertAt(0, TCAMEntry{Key: []byte{7}, Value: 111})
	if v, _ := tc.Search([]byte{7}); v != 111 {
		t.Fatalf("priority: got %d, want 111 (position 0 wins)", v)
	}
	if v, _ := tc.Search([]byte{9}); v != 300 {
		t.Fatalf("fallthrough: got %d, want 300", v)
	}
	tc.DeleteAt(0)
	if v, _ := tc.Search([]byte{7}); v != 300 {
		t.Fatalf("after delete: got %d, want 300", v)
	}
}

func TestTCAMValidation(t *testing.T) {
	tc := NewTCAM(2, 4)
	cases := []struct {
		name string
		err  error
	}{
		{"position out of range", tc.InsertAt(5, TCAMEntry{Key: []byte{1, 2, 3, 4}})},
		{"wrong key width", tc.InsertAt(0, TCAMEntry{Key: []byte{1}})},
		{"wrong mask width", tc.InsertAt(0, TCAMEntry{Key: []byte{1, 2, 3, 4}, Mask: []byte{0xFF}})},
	}
	for _, tcse := range cases {
		if tcse.err == nil {
			t.Errorf("%s: accepted", tcse.name)
		}
	}
	if err := tc.InsertAt(0, TCAMEntry{Key: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := tc.InsertAt(0, TCAMEntry{Key: []byte{4, 3, 2, 1}}); err == nil {
		t.Error("occupied position accepted")
	}
	if tc.DeleteAt(1) {
		t.Error("DeleteAt reported success on empty position")
	}
}

func TestTCAMStressManyEntries(t *testing.T) {
	tc := NewTCAM(128, 2)
	for i := 0; i < 128; i++ {
		key := []byte{byte(i), byte(i >> 4)}
		if err := tc.InsertAt(i, TCAMEntry{Key: key, Value: uint64(i)}); err != nil {
			t.Fatalf("InsertAt(%d): %v", i, err)
		}
	}
	if tc.InUse() != 128 {
		t.Fatalf("InUse = %d, want 128", tc.InUse())
	}
	for i := 0; i < 128; i++ {
		key := []byte{byte(i), byte(i >> 4)}
		v, ok := tc.Search(key)
		if !ok || v != uint64(i) {
			t.Fatalf("Search(%v) = (%d,%v), want (%d,true)", key, v, ok, i)
		}
	}
}

func ExampleCAM() {
	c := New(64)
	_, _ = c.Insert([]byte("flow-key"), 42)
	if v, ok := c.Search([]byte("flow-key")); ok {
		fmt.Println("flow ID:", v)
	}
	// Output: flow ID: 42
}

// TestInsertAllocFree pins the inline-storage story: a steady-state
// insert/delete cycle over the slot arena allocates nothing (the
// historical implementation cloned every inserted key with append).
func TestInsertAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	c := New(8)
	key := make([]byte, 13)
	// First insert sizes the arena; everything after must be free.
	if _, err := c.Insert(key, 1); err != nil {
		t.Fatal(err)
	}
	c.Delete(key)
	if n := testing.AllocsPerRun(200, func() {
		key[0]++
		if _, err := c.Insert(key, 7); err != nil {
			t.Fatal(err)
		}
		if !c.Delete(key) {
			t.Fatal("inserted key not deletable")
		}
	}); n != 0 {
		t.Fatalf("CAM insert/delete cycle allocates %.1f per op, want 0", n)
	}
}
