package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %d, want 0", got)
	}
	c.Advance()
	c.AdvanceBy(9)
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %d, want 10", got)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceBy(-1) did not panic")
		}
	}()
	NewClock().AdvanceBy(-1)
}

func TestCyclePicoseconds(t *testing.T) {
	// 800 MHz bus clock: tCK = 1250 ps.
	if got := Cycle(4).Picoseconds(1250); got != 5000 {
		t.Fatalf("Picoseconds = %d, want 5000", got)
	}
}

func TestSchedulerTickOrderAndCount(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	var order []string
	s.Register(TickFunc(func(now Cycle) { order = append(order, "a") }))
	s.Register(TickFunc(func(now Cycle) { order = append(order, "b") }))
	s.Run(2)
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("tick order length = %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order[%d] = %q, want %q", i, order[i], want[i])
		}
	}
	if clock.Now() != 2 {
		t.Fatalf("clock after Run(2) = %d, want 2", clock.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	hit := 0
	s.Register(TickFunc(func(now Cycle) { hit++ }))
	n, ok := s.RunUntil(func() bool { return hit >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil did not report done")
	}
	if n != 5 {
		t.Fatalf("RunUntil cycles = %d, want 5", n)
	}
	// Limit path.
	n, ok = s.RunUntil(func() bool { return false }, 7)
	if ok || n != 7 {
		t.Fatalf("RunUntil(limit) = (%d,%v), want (7,false)", n, ok)
	}
}

func TestSchedulerRunUntilLimitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil with non-positive limit did not panic")
		}
	}()
	NewScheduler(NewClock()).RunUntil(func() bool { return true }, 0)
}

func TestDividerPhases(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	var fired []Cycle
	d := NewDivider(TickFunc(func(now Cycle) { fired = append(fired, now) }), 4)
	d.Phase = 1
	s.Register(d)
	s.Run(12)
	want := []Cycle{1, 5, 9}
	if len(fired) != len(want) {
		t.Fatalf("divider fired %d times, want %d (%v)", len(fired), len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %d, want %d", i, fired[i], want[i])
		}
	}
}

func TestDividerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDivider(ratio=0) did not panic")
		}
	}()
	NewDivider(TickFunc(func(Cycle) {}), 0)
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) rejected on non-full queue", i)
		}
	}
	if q.Push(5) {
		t.Fatal("Push accepted on full queue")
	}
	if !q.Full() {
		t.Fatal("Full() = false on full queue")
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if !q.Empty() {
		t.Fatal("Empty() = false on drained queue")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue[int](3)
	// Cycle through the ring several times to exercise wraparound.
	next := 0
	for round := 0; round < 10; round++ {
		for q.Push(next) {
			next++
		}
		v, _ := q.Pop()
		w, _ := q.Pop()
		if w != v+1 {
			t.Fatalf("round %d: popped %d then %d, want consecutive", round, v, w)
		}
	}
}

func TestQueuePeekAndAt(t *testing.T) {
	q := NewQueue[string](4)
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = (%q,%v), want (a,true)", v, ok)
	}
	if got := q.At(2); got != "c" {
		t.Fatalf("At(2) = %q, want c", got)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d after Peek/At, want 3", q.Len())
	}
}

func TestQueueRemoveAtPreservesOrder(t *testing.T) {
	q := NewQueue[int](5)
	// Force a wrapped layout first.
	q.Push(-1)
	q.Push(-2)
	q.Pop()
	q.Pop()
	for i := 1; i <= 5; i++ {
		q.Push(i)
	}
	got := q.RemoveAt(2) // removes 3
	if got != 3 {
		t.Fatalf("RemoveAt(2) = %d, want 3", got)
	}
	want := []int{1, 2, 4, 5}
	for i, w := range want {
		if v := q.At(i); v != w {
			t.Fatalf("after RemoveAt, At(%d) = %d, want %d", i, v, w)
		}
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1)
	q.Push(2)
	q.Push(3) // rejected
	if q.Pushes() != 2 || q.PushFails() != 1 || q.MaxDepth() != 2 {
		t.Fatalf("stats = (%d,%d,%d), want (2,1,2)", q.Pushes(), q.PushFails(), q.MaxDepth())
	}
}

func TestQueueIndexPanics(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1)
	for _, fn := range []func(){
		func() { q.At(1) },
		func() { q.At(-1) },
		func() { q.RemoveAt(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range index did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order with
// respect to the accepted pushes.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed%7) + 1
		q := NewQueue[int](capacity)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				if q.Push(next) {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn(8) covered %d/8 values over 10k draws", len(seen))
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(32)
	seen := make([]bool, 32)
	for _, v := range p {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
