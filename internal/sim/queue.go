package sim

import "fmt"

// Queue is a bounded FIFO with backpressure, the standard coupling element
// between pipeline stages in the timed models. Push fails when the queue is
// full, mirroring a hardware FIFO's "full" flag; producers are expected to
// retry on a later cycle.
type Queue[T any] struct {
	buf   []T
	head  int
	count int
	cap   int

	// stats
	pushes    int64
	pushFails int64
	maxDepth  int
}

// NewQueue returns a queue holding at most capacity elements.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: queue capacity must be positive (capacity=%d)", capacity))
	}
	return &Queue[T]{buf: make([]T, capacity), cap: capacity}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.count }

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Full reports whether a Push would fail.
func (q *Queue[T]) Full() bool { return q.count == q.cap }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.count == 0 }

// Push appends v and reports whether it was accepted. A false return is the
// hardware "FIFO full" condition, not an error.
func (q *Queue[T]) Push(v T) bool {
	if q.count == q.cap {
		q.pushFails++
		return false
	}
	q.buf[(q.head+q.count)%q.cap] = v
	q.count++
	q.pushes++
	if q.count > q.maxDepth {
		q.maxDepth = q.count
	}
	return true
}

// Pop removes and returns the oldest element. The second result is false
// when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % q.cap
	q.count--
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// At returns the i-th element from the head (0 = oldest) without removing
// it. It panics when i is out of range; callers index within Len.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.count {
		panic(fmt.Sprintf("sim: queue index %d out of range (len=%d)", i, q.count))
	}
	return q.buf[(q.head+i)%q.cap]
}

// RemoveAt removes and returns the i-th element from the head, preserving
// the order of the remainder. This models the out-of-order pick performed
// by reordering structures such as the DLU bank selector. It panics when i
// is out of range.
func (q *Queue[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.count {
		panic(fmt.Sprintf("sim: queue index %d out of range (len=%d)", i, q.count))
	}
	v := q.buf[(q.head+i)%q.cap]
	// Shift the tail segment left by one.
	for j := i; j < q.count-1; j++ {
		q.buf[(q.head+j)%q.cap] = q.buf[(q.head+j+1)%q.cap]
	}
	var zero T
	q.buf[(q.head+q.count-1)%q.cap] = zero
	q.count--
	return v
}

// Pushes reports the number of successful pushes over the queue's lifetime.
func (q *Queue[T]) Pushes() int64 { return q.pushes }

// PushFails reports the number of rejected pushes (backpressure events).
func (q *Queue[T]) PushFails() int64 { return q.pushFails }

// MaxDepth reports the high-water mark of the queue depth.
func (q *Queue[T]) MaxDepth() int { return q.maxDepth }
