// Package sim provides the cycle-stepped simulation kernel used by the
// timed models in this repository: a global clock measured in DDR3 I/O bus
// cycles, clock dividers for slower clock domains, bounded FIFO queues with
// backpressure, and deterministic pseudo-random helpers.
//
// The kernel is deliberately simple: components implement Tickable and are
// stepped once per bus cycle by a Scheduler. Slower domains (e.g. the
// 200 MHz core logic behind a quarter-rate DDR3 controller) wrap their
// component in a Divider.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in DDR3 I/O bus clock
// cycles. With the prototype's 800 MHz bus clock one Cycle is 1.25 ns.
type Cycle int64

// Picoseconds converts a cycle count to picoseconds given the bus clock
// period tCK in picoseconds.
func (c Cycle) Picoseconds(tCKps int64) int64 { return int64(c) * tCKps }

// Clock tracks the current simulation time. A single Clock is shared by
// every component in a simulation so that timing decisions (e.g. DRAM
// bank-state checks) observe a consistent notion of "now".
type Clock struct {
	now Cycle
}

// NewClock returns a clock positioned at cycle zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Advance moves the clock forward by one cycle.
func (c *Clock) Advance() { c.now++ }

// AdvanceBy moves the clock forward by n cycles. It panics if n is
// negative: simulated time never runs backwards.
func (c *Clock) AdvanceBy(n Cycle) {
	if n < 0 {
		panic(fmt.Sprintf("sim: clock cannot move backwards (n=%d)", n))
	}
	c.now += n
}

// Tickable is a component stepped once per scheduler tick. Components are
// ticked in registration order within a cycle; all components observe the
// same Clock.Now value during a tick.
type Tickable interface {
	Tick(now Cycle)
}

// TickFunc adapts a function to the Tickable interface.
type TickFunc func(now Cycle)

// Tick implements Tickable.
func (f TickFunc) Tick(now Cycle) { f(now) }

// Divider steps an inner component once every Ratio ticks, modelling a
// slower clock domain (e.g. core logic at 1/4 of the memory bus clock).
// Phase selects which of the Ratio bus cycles the slow domain fires on.
type Divider struct {
	Inner Tickable
	Ratio int64
	Phase int64
}

// NewDivider wraps inner so it ticks once every ratio scheduler ticks.
func NewDivider(inner Tickable, ratio int64) *Divider {
	if ratio <= 0 {
		panic(fmt.Sprintf("sim: divider ratio must be positive (ratio=%d)", ratio))
	}
	return &Divider{Inner: inner, Ratio: ratio}
}

// Tick implements Tickable.
func (d *Divider) Tick(now Cycle) {
	if int64(now)%d.Ratio == d.Phase%d.Ratio {
		d.Inner.Tick(now)
	}
}

// Scheduler steps a set of components against a shared clock. It is the
// outer loop of every timed experiment in this repository.
type Scheduler struct {
	clock      *Clock
	components []Tickable
}

// NewScheduler returns a scheduler around the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's shared clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Register adds a component to the tick list. Components tick in
// registration order, which callers should arrange producer-before-consumer
// so data moves at most one queue stage per cycle, as in synchronous
// hardware.
func (s *Scheduler) Register(t Tickable) { s.components = append(s.components, t) }

// Step advances the simulation by one bus cycle: every component is ticked
// at the current time, then the clock advances.
func (s *Scheduler) Step() {
	now := s.clock.Now()
	for _, c := range s.components {
		c.Tick(now)
	}
	s.clock.Advance()
}

// Run steps the simulation for n cycles.
func (s *Scheduler) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		s.Step()
	}
}

// RunUntil steps the simulation until done reports true or the limit is
// reached. It returns the number of cycles executed and whether done was
// reached. A non-positive limit means "no limit" is NOT supported — callers
// must bound their simulations; the limit guards against livelock bugs.
func (s *Scheduler) RunUntil(done func() bool, limit Cycle) (Cycle, bool) {
	if limit <= 0 {
		panic("sim: RunUntil requires a positive cycle limit")
	}
	for i := Cycle(0); i < limit; i++ {
		if done() {
			return i, true
		}
		s.Step()
	}
	return limit, done()
}
