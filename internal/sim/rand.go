package sim

// Rand is a small deterministic pseudo-random generator (SplitMix64 core
// feeding an xorshift-style stream) used by workload generators and load
// balancers. It is intentionally self-contained so experiment results are
// reproducible byte-for-byte across Go releases, unlike math/rand whose
// stream is not guaranteed stable for all constructors.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm the state so small seeds (0, 1, 2...) diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 uniformly distributed bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn requires n > 0")
	}
	// Multiply-shift rejection-free mapping; bias is negligible for the
	// n values used in this repository (all far below 2^32).
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Int63n returns a uniform int64 in [0, n). It panics when n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n requires n > 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
