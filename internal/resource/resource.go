// Package resource is the Table I substitute (see DESIGN.md §2): the
// paper reports FPGA resource usage (ALMs, block-memory bits, registers,
// PLLs/DLLs), which has no off-FPGA equivalent; this model reports the
// analogous quantities of a configuration — how much on-chip storage the
// design needs (CAM bits, queue/FIFO bits, pending-update buffers) versus
// how much lands in external DDR3, plus the table-geometry arithmetic
// behind the "8 million flows in two 512 MB channels" claim.
package resource

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netflow"
)

// Report is the computed inventory of one Flow LUT configuration.
type Report struct {
	// Geometry.
	BucketsPerPath int
	SlotsPerBucket int
	EntryBytes     int
	CapacityFlows  int
	BucketBursts   int

	// On-chip storage (block-memory-bit analogues).
	CAMBits          int64
	InputQueueBits   int64
	PathQueueBits    int64
	UpdateBufferBits int64
	TotalOnChipBits  int64

	// External DDR3 storage.
	TableBytesPerChannel int64
	ChannelBytes         int64
	TableUtilisation     float64

	// Flow-state region (§V-C: 512-bit records).
	FlowStateBytes int64
}

// Compute derives the report from a configuration.
func Compute(cfg core.Config) Report {
	var r Report
	r.BucketsPerPath = cfg.Buckets
	r.SlotsPerBucket = cfg.SlotsPerBucket
	r.EntryBytes = cfg.EntryBytes
	r.CapacityFlows = cfg.CapacityFlows()
	r.BucketBursts = cfg.BucketBursts()

	// CAM: key + valid + value wide enough to index the table.
	valueBits := 1
	for c := cfg.CapacityFlows(); c > 0; c >>= 1 {
		valueBits++
	}
	r.CAMBits = int64(cfg.CAMCapacity) * int64(cfg.KeyLen*8+1+valueBits)

	// Descriptor width: key + two bucket indices + bookkeeping.
	idxBits := 1
	for b := cfg.Buckets; b > 1; b >>= 1 {
		idxBits++
	}
	descBits := int64(cfg.KeyLen*8 + 2*idxBits + 16)
	r.InputQueueBits = int64(cfg.InputQueueDepth) * descBits
	// Two paths × two queues (LU1/LU2) of descriptor-sized entries.
	r.PathQueueBits = 2 * 2 * int64(cfg.PathQueueDepth) * descBits
	// Burst write generator: up to BWrThreshold bucket images per path.
	r.UpdateBufferBits = 2 * int64(cfg.BWrThreshold) *
		int64(cfg.SlotsPerBucket*cfg.EntryBytes*8)
	r.TotalOnChipBits = r.CAMBits + r.InputQueueBits + r.PathQueueBits + r.UpdateBufferBits

	r.TableBytesPerChannel = int64(cfg.Buckets) * int64(cfg.SlotsPerBucket) * int64(cfg.EntryBytes)
	r.ChannelBytes = cfg.Geometry.CapacityBytes()
	r.TableUtilisation = float64(r.TableBytesPerChannel) / float64(r.ChannelBytes)

	r.FlowStateBytes = int64(cfg.CapacityFlows()) * netflow.RecordBits / 8
	return r
}

// String renders the report in a Table I-like shape.
func (r Report) String() string {
	return fmt.Sprintf(`Flow LUT resource model
  table geometry        2 paths x %d buckets x %d slots (%d B entries, %d bursts/bucket)
  flow capacity         %d flows
  on-chip CAM           %d bits
  on-chip input queue   %d bits
  on-chip path queues   %d bits
  on-chip update bufs   %d bits
  on-chip total         %d bits
  DDR3 table/channel    %d bytes of %d (%.1f%% of channel)
  flow-state region     %d bytes (512-bit records)`,
		r.BucketsPerPath, r.SlotsPerBucket, r.EntryBytes, r.BucketBursts,
		r.CapacityFlows,
		r.CAMBits, r.InputQueueBits, r.PathQueueBits, r.UpdateBufferBits,
		r.TotalOnChipBits,
		r.TableBytesPerChannel, r.ChannelBytes, 100*r.TableUtilisation,
		r.FlowStateBytes)
}

// PrototypeConfig returns the paper's full-scale geometry: 8 M flows over
// two 512 MB channels ("a lookup table with 8 million flow entries",
// §IV-C). 2 paths × 1 Mi buckets × 4 slots = 8 Mi entries + CAM.
func PrototypeConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Buckets = 1 << 20
	return cfg
}
