package resource

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestComputeDefault(t *testing.T) {
	r := Compute(core.DefaultConfig())
	if r.CapacityFlows != 2*(1<<14)*4+64 {
		t.Fatalf("CapacityFlows = %d", r.CapacityFlows)
	}
	if r.CAMBits <= 0 || r.InputQueueBits <= 0 || r.PathQueueBits <= 0 || r.UpdateBufferBits <= 0 {
		t.Fatalf("zero component in %+v", r)
	}
	if r.TotalOnChipBits != r.CAMBits+r.InputQueueBits+r.PathQueueBits+r.UpdateBufferBits {
		t.Fatal("total does not sum")
	}
	if r.TableUtilisation <= 0 || r.TableUtilisation > 1 {
		t.Fatalf("utilisation = %v", r.TableUtilisation)
	}
}

// TestPrototypeMatchesPaperClaims pins the §IV-C arithmetic: 8 M flow
// entries fit two 32-bit 512 MB DDR3 channels, with 512-bit flow state.
func TestPrototypeMatchesPaperClaims(t *testing.T) {
	cfg := PrototypeConfig()
	r := Compute(cfg)
	if got := r.CapacityFlows; got < 8<<20 {
		t.Fatalf("prototype capacity = %d flows, want >= 8Mi", got)
	}
	// 1 Mi buckets x 4 slots x 16 B = 64 MB per channel: comfortably
	// inside 512 MB, leaving room for the 512-bit flow-state region.
	if r.TableBytesPerChannel != 64<<20 {
		t.Fatalf("table bytes per channel = %d, want 64 MB", r.TableBytesPerChannel)
	}
	if r.ChannelBytes != 512<<20 {
		t.Fatalf("channel = %d bytes", r.ChannelBytes)
	}
	// 8 M flows x 64 B state = 512 MB total across the board's 3 GB.
	if r.FlowStateBytes < 512<<20 {
		t.Fatalf("flow state bytes = %d, want >= 512 MB", r.FlowStateBytes)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("prototype config invalid: %v", err)
	}
}

func TestReportRendering(t *testing.T) {
	out := Compute(core.DefaultConfig()).String()
	for _, want := range []string{"flow capacity", "on-chip CAM", "DDR3 table/channel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
