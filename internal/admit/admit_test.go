package admit

import (
	"math/rand"
	"testing"

	"repro/internal/hashfn"
)

// khOf derives deterministic pseudo-random KeyHashes from a flow number
// via the public SplitMix64 finalizer, mimicking what a hash pair
// produces without needing key bytes.
func khOf(n uint64) hashfn.KeyHashes {
	return hashfn.KeyHashes{
		H1:  hashfn.Finalize64(n ^ 0xa5a5a5a5),
		H2:  hashfn.Finalize64(n ^ 0x5a5a5a5a),
		Mix: hashfn.Finalize64(n),
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Width: 0}); err == nil {
		t.Fatal("Width 0 accepted")
	}
	if _, err := New(Config{Width: 16, Depth: -1}); err == nil {
		t.Fatal("negative Depth accepted")
	}
	if _, err := New(Config{Width: 16, Depth: MaxDepth + 1}); err == nil {
		t.Fatal("Depth beyond MaxDepth accepted")
	}
	s, err := New(Config{Width: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != 128 {
		t.Fatalf("width 100 should round up to 128, got %d", s.Width())
	}
	if s.Depth() != DefaultDepth {
		t.Fatalf("default depth = %d, want %d", s.Depth(), DefaultDepth)
	}
	if s.Bytes() != 128*DefaultDepth {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), 128*DefaultDepth)
	}
	if s.Seed() != 0 {
		t.Fatalf("Seed = %d, want 0", s.Seed())
	}
}

// TestSketchNeverUndercounts is the count-min guarantee the admission
// gate's correctness rests on: whatever the collision pattern, a flow
// touched n times estimates at least n (up to counter saturation), so a
// flow at its threshold-th packet can never be spuriously deferred.
func TestSketchNeverUndercounts(t *testing.T) {
	for _, seed := range []uint64{0, 0x20140b} {
		s, err := New(Config{Width: 64, Depth: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		truth := make(map[uint64]uint32)
		for op := 0; op < 20000; op++ {
			f := uint64(rng.Intn(300))
			truth[f]++
			got := s.Touch(khOf(f))
			if want := truth[f]; want <= maxCount && got < want {
				t.Fatalf("seed %#x: flow %d touched %d times, Touch returned %d", seed, f, want, got)
			}
		}
		for f, n := range truth {
			if n <= maxCount && s.Estimate(khOf(f)) < n {
				t.Fatalf("seed %#x: flow %d count %d, Estimate %d", seed, f, n, s.Estimate(khOf(f)))
			}
		}
	}
}

// plainSketch is a reference count-min with the classic (non-
// conservative) update — every row counter increments — built on the
// same exported index derivation. The conservative sketch must stay
// counter-for-counter at or below it while never dropping below the
// true count: tighter, never looser.
type plainSketch struct {
	counters []uint8
	width    uint64
	depth    int
	seed     uint64
}

func newPlain(width uint64, depth int, seed uint64) *plainSketch {
	return &plainSketch{counters: make([]uint8, width*uint64(depth)), width: width, depth: depth, seed: seed}
}

func (p *plainSketch) touch(kh hashfn.KeyHashes) {
	var idx []uint64
	idx = AppendPositions(idx, kh, p.seed, p.width, p.depth)
	for i, pos := range idx {
		at := uint64(i)*p.width + pos
		if p.counters[at] < maxCount {
			p.counters[at]++
		}
	}
}

func (p *plainSketch) estimate(kh hashfn.KeyHashes) uint32 {
	var idx []uint64
	idx = AppendPositions(idx, kh, p.seed, p.width, p.depth)
	est := uint32(maxCount)
	for i, pos := range idx {
		if c := uint32(p.counters[uint64(i)*p.width+pos]); c < est {
			est = c
		}
	}
	return est
}

func TestConservativeNeverExceedsPlain(t *testing.T) {
	for _, seed := range []uint64{0, 7} {
		s, err := New(Config{Width: 32, Depth: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p := newPlain(32, 4, seed)
		rng := rand.New(rand.NewSource(9))
		truth := make(map[uint64]uint32)
		for op := 0; op < 30000; op++ {
			f := uint64(rng.Intn(200))
			truth[f]++
			s.Touch(khOf(f))
			p.touch(khOf(f))
		}
		for i := range s.counters {
			if s.counters[i] > p.counters[i] {
				t.Fatalf("seed %d: counter %d: conservative %d > plain %d", seed, i, s.counters[i], p.counters[i])
			}
		}
		for f, n := range truth {
			cons, plain := s.Estimate(khOf(f)), p.estimate(khOf(f))
			if cons > plain {
				t.Fatalf("seed %d: flow %d: conservative estimate %d > plain %d", seed, f, cons, plain)
			}
			if n <= maxCount && cons < n {
				t.Fatalf("seed %d: flow %d: conservative estimate %d < true count %d", seed, f, cons, n)
			}
		}
	}
}

// TestDecayHalvesEstimatesExactly pins the decay law: floor-halving
// commutes with the row minimum, so every key's estimate after one
// Decay equals its prior estimate >> 1 — monotone (never up), and exact
// (not merely bounded).
func TestDecayHalvesEstimatesExactly(t *testing.T) {
	s, err := New(Config{Width: 64, Depth: 3, Seed: 0x20140b})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 10000; op++ {
		s.Touch(khOf(uint64(rng.Intn(400))))
	}
	before := make([]uint32, 400)
	for f := range before {
		before[f] = s.Estimate(khOf(uint64(f)))
	}
	s.Decay()
	for f, b := range before {
		got := s.Estimate(khOf(uint64(f)))
		if got != b>>1 {
			t.Fatalf("flow %d: estimate %d after decay, want %d>>1 = %d", f, got, b, b>>1)
		}
	}
	// Repeated decay drains every counter to zero: mice age out entirely.
	for i := 0; i < 8; i++ {
		s.Decay()
	}
	for f := 0; f < 400; f++ {
		if got := s.Estimate(khOf(uint64(f))); got != 0 {
			t.Fatalf("flow %d: estimate %d after full decay, want 0", f, got)
		}
	}
}

func TestTouchSaturates(t *testing.T) {
	s, err := New(Config{Width: 4, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	kh := khOf(1)
	for i := 0; i < 300; i++ {
		if got := s.Touch(kh); got > maxCount {
			t.Fatalf("Touch returned %d beyond the counter ceiling", got)
		}
	}
	if got := s.Estimate(kh); got != maxCount {
		t.Fatalf("estimate after 300 touches = %d, want %d", got, maxCount)
	}
	// Saturated counters hold under further touches and halve under decay.
	if got := s.Touch(kh); got != maxCount {
		t.Fatalf("saturated Touch = %d, want %d", got, maxCount)
	}
	s.Decay()
	if got := s.Estimate(kh); got != maxCount>>1 {
		t.Fatalf("estimate after saturation decay = %d, want %d", got, maxCount>>1)
	}
}

func TestReset(t *testing.T) {
	s, err := New(Config{Width: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for f := uint64(0); f < 50; f++ {
		s.Touch(khOf(f))
	}
	s.Reset()
	for f := uint64(0); f < 50; f++ {
		if got := s.Estimate(khOf(f)); got != 0 {
			t.Fatalf("flow %d: estimate %d after Reset", f, got)
		}
	}
}

// TestSeededPlacementDiffers: a non-zero seed must re-scatter the
// counter indices, and different seeds must scatter differently —
// otherwise the keyed gate would inherit the unkeyed derivation's
// minable placement.
func TestSeededPlacementDiffers(t *testing.T) {
	kh := khOf(99)
	unkeyed := AppendPositions(nil, kh, 0, 1<<16, 4)
	keyedA := AppendPositions(nil, kh, 1, 1<<16, 4)
	keyedB := AppendPositions(nil, kh, 2, 1<<16, 4)
	same := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(unkeyed, keyedA) || same(unkeyed, keyedB) || same(keyedA, keyedB) {
		t.Fatalf("seeded index derivations collide: unkeyed %v, seed1 %v, seed2 %v", unkeyed, keyedA, keyedB)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(0) != 0 {
		t.Fatal("DeriveSeed(0) must stay 0 (the unkeyed derivation)")
	}
	if DeriveSeed(1) == 1 || DeriveSeed(1) == DeriveSeed(2) {
		t.Fatal("DeriveSeed must mix the engine seed through its own domain")
	}
}

// FuzzSketchIndices pins the Kirsch–Mitzenmacher index derivation —
// both the exported AppendPositions and the private hot-path loop the
// Sketch methods use — against an independently written two-hash
// reference, across seeds, widths and depths.
func FuzzSketchIndices(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(0), uint8(4), uint8(4))
	f.Add(uint64(0), uint64(0), uint64(0x20140b), uint8(10), uint8(1))
	f.Add(^uint64(0), ^uint64(0), uint64(7), uint8(1), uint8(8))
	f.Fuzz(func(t *testing.T, h1, h2, seed uint64, widthExp, depthRaw uint8) {
		width := uint64(1) << (widthExp % 12)
		depth := int(depthRaw%MaxDepth) + 1
		kh := hashfn.KeyHashes{H1: h1, H2: h2, Mix: h1 ^ h2}

		// Reference: spelled-out double hashing, no shared helpers.
		refB1, refB2 := h1, h2
		if seed != 0 {
			refB1 = hashfn.Finalize64(h1 ^ hashfn.Finalize64(seed^0x9e3779b97f4a7c15))
			refB2 = hashfn.Finalize64(h2 ^ hashfn.Finalize64(seed^0xc2b2ae3d27d4eb4f))
		}
		refB2 |= 1
		want := make([]uint64, depth)
		for i := range want {
			want[i] = (refB1 + uint64(i)*refB2) % width
		}

		got := AppendPositions(nil, kh, seed, width, depth)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AppendPositions row %d: got %d, want %d (h1=%#x h2=%#x seed=%#x width=%d)",
					i, got[i], want[i], h1, h2, seed, width)
			}
		}

		// The sketch's own hot-path derivation must agree: a lone Touch on a
		// fresh sketch raises exactly the reference positions to 1.
		s, err := New(Config{Width: int(width), Depth: depth, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if est := s.Touch(kh); est != 1 {
			t.Fatalf("first Touch estimate = %d, want 1", est)
		}
		for i := 0; i < depth; i++ {
			for j := uint64(0); j < width; j++ {
				c := s.counters[uint64(i)*width+j]
				if (j == want[i]) != (c == 1) {
					t.Fatalf("row %d counter %d = %d; reference position %d", i, j, c, want[i])
				}
			}
		}
	})
}
