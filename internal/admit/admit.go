// Package admit implements the counting-sketch admission filter that
// gates table inserts: a conservative-update count-min sketch indexed by
// Kirsch–Mitzenmacher double hashing over the two 64-bit words a key's
// single hash pass already produced (hashfn.KeyHashes.H1/H2), so the
// gate costs zero extra hash passes on the hot path. A flow's packets
// bump its sketch counters until the estimate reaches the admission
// threshold — its k-th packet — at which point the flow earns an exact
// table slot; the one-packet-flow tail of Zipf traffic lives and dies
// inside the sketch's few bytes per counter instead of polluting slots.
//
// Counters are 8-bit and saturate at 255; the conservative update rule
// (only counters equal to the row minimum increment) keeps estimates as
// tight as count-min permits while preserving the no-undercount
// guarantee. Decay halves every counter in place — floor-halving
// commutes with the row minimum, so an estimate after one decay is
// exactly the pre-decay estimate >> 1 — which ages mice out of the
// sketch at the cadence the caller chooses (table.Sharded drives it from
// the Advance clock).
//
// A non-zero Seed re-keys the index derivation through the SplitMix64
// finalizer, so the sketch's counter placement is as unpredictable to
// senders as the keyed table buckets: the offline collision miner that
// defeats the unkeyed CRC pair cannot aim traffic at one counter set and
// saturate the gate.
package admit

import (
	"fmt"

	"repro/internal/hashfn"
)

// MaxDepth bounds the row count: beyond 8 rows of 8-bit counters the
// estimate-tightening returns vanish while every Touch walks more lines.
const MaxDepth = 8

// DefaultDepth is the row count used when Config.Depth is 0; four rows
// put the per-row false-positive rate at the threshold to the fourth
// power, the classic count-min operating point.
const DefaultDepth = 4

// maxCount is the 8-bit counter ceiling; estimates saturate here and a
// saturated counter never increments (nor decrements on decay below —
// halving does shrink it, which is exactly the aging the decay exists
// for).
const maxCount = 255

// Seed-derivation domain constants (SplitMix64 increments, following the
// hashfn convention): the two row-base streams must be independent of
// each other and of every other consumer of the engine seed, so each
// XORs its own domain before finalisation.
const (
	seedDomainBase   = 0x9e3779b97f4a7c15
	seedDomainStride = 0xc2b2ae3d27d4eb4f
	seedDomainSketch = 0x165667b19e3779f9
)

// DeriveSeed maps an engine-level hash seed to the sketch's index seed
// through its own domain constant, so the sketch keys its counter
// placement off the same secret as the table buckets without ever
// reusing the raw seed words. A zero seed stays zero (the unkeyed
// reference derivation).
func DeriveSeed(engineSeed uint64) uint64 {
	if engineSeed == 0 {
		return 0
	}
	return hashfn.Finalize64(engineSeed ^ seedDomainSketch)
}

// Config parameterises a Sketch.
type Config struct {
	// Width is the number of counters per row; it is rounded up to a
	// power of two so index reduction is a mask. Must be >= 1.
	Width int
	// Depth is the number of rows (1..MaxDepth, default DefaultDepth).
	Depth int
	// Seed keys the Kirsch–Mitzenmacher index derivation. Zero uses the
	// raw KeyHashes words (the unkeyed reference derivation); any other
	// value re-mixes both row bases through the SplitMix64 finalizer so
	// counter placement is not attacker-predictable.
	Seed uint64
}

// Sketch is a conservative-update count-min sketch over
// hashfn.KeyHashes. It is not internally synchronised: table.Sharded
// shards one sketch segment per table shard and touches it only under
// that shard's write lock.
type Sketch struct {
	counters []uint8 // depth rows of width counters, flat
	mask     uint64  // width - 1
	width    uint64
	depth    int
	seed     uint64
	// base/stride are the per-sketch XOR masks folded into H1/H2 before
	// finalisation when seeded; unused (zero) for the unkeyed derivation.
	base   uint64
	stride uint64
}

// New builds a sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.Width < 1 {
		return nil, fmt.Errorf("admit: sketch width must be >= 1, got %d", cfg.Width)
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = DefaultDepth
	}
	if depth < 1 || depth > MaxDepth {
		return nil, fmt.Errorf("admit: sketch depth must be in [1,%d], got %d", MaxDepth, cfg.Depth)
	}
	width := uint64(1)
	for width < uint64(cfg.Width) {
		width <<= 1
	}
	s := &Sketch{
		counters: make([]uint8, width*uint64(depth)),
		mask:     width - 1,
		width:    width,
		depth:    depth,
		seed:     cfg.Seed,
	}
	if cfg.Seed != 0 {
		s.base = hashfn.Finalize64(cfg.Seed ^ seedDomainBase)
		s.stride = hashfn.Finalize64(cfg.Seed ^ seedDomainStride)
	}
	return s, nil
}

// rowBases derives the Kirsch–Mitzenmacher base and stride for kh: row
// i's counter index is (b1 + i*b2) & mask. The stride is forced odd so
// it is coprime to the power-of-two width and the rows stay distinct.
// Unkeyed (seed 0) uses the raw hash words — the derivation the fuzz
// harness pins against an independent reference; keyed re-mixes each
// word with its own domain-separated fold of the seed, so a key set
// mined to collide under the public pair scatters across counters.
func (s *Sketch) rowBases(kh hashfn.KeyHashes) (b1, b2 uint64) {
	if s.seed == 0 {
		return kh.H1, kh.H2 | 1
	}
	return hashfn.Finalize64(kh.H1 ^ s.base), hashfn.Finalize64(kh.H2^s.stride) | 1
}

// AppendPositions appends kh's counter indices for a (seed, width,
// depth) sketch geometry onto dst and returns the extended slice —
// the exported form of the index derivation, shared with the
// property/fuzz harness so the hot-path loop inside Touch/Estimate can
// never drift from the pinned reference. width must be a power of two.
func AppendPositions(dst []uint64, kh hashfn.KeyHashes, seed uint64, width uint64, depth int) []uint64 {
	var b1, b2 uint64
	if seed == 0 {
		b1, b2 = kh.H1, kh.H2|1
	} else {
		b1 = hashfn.Finalize64(kh.H1 ^ hashfn.Finalize64(seed^seedDomainBase))
		b2 = hashfn.Finalize64(kh.H2^hashfn.Finalize64(seed^seedDomainStride)) | 1
	}
	mask := width - 1
	for i := 0; i < depth; i++ {
		dst = append(dst, (b1+uint64(i)*b2)&mask)
	}
	return dst
}

// Estimate returns the sketch's count estimate for kh: the minimum over
// its row counters. Count-min never undercounts (up to the 255
// saturation ceiling), so Estimate >= the true touch count as long as
// the true count itself is <= 255 and no decay has run.
func (s *Sketch) Estimate(kh hashfn.KeyHashes) uint32 {
	b1, b2 := s.rowBases(kh)
	est := uint32(maxCount)
	for i := 0; i < s.depth; i++ {
		c := uint32(s.counters[uint64(i)*s.width+((b1+uint64(i)*b2)&s.mask)])
		if c < est {
			est = c
		}
	}
	return est
}

// Touch records one packet of kh and returns the new estimate: the
// conservative count-min update, where only counters equal to the
// pre-update row minimum increment (counters above it already
// over-count kh and bumping them would only inflate other keys'
// estimates). Saturated rows stay at 255.
func (s *Sketch) Touch(kh hashfn.KeyHashes) uint32 {
	b1, b2 := s.rowBases(kh)
	var idx [MaxDepth]uint64
	est := uint32(maxCount)
	for i := 0; i < s.depth; i++ {
		idx[i] = uint64(i)*s.width + ((b1 + uint64(i)*b2) & s.mask)
		if c := uint32(s.counters[idx[i]]); c < est {
			est = c
		}
	}
	if est == maxCount {
		return maxCount
	}
	for i := 0; i < s.depth; i++ {
		if uint32(s.counters[idx[i]]) == est {
			s.counters[idx[i]]++
		}
	}
	return est + 1
}

// Decay halves every counter in place, aging the whole population by
// one octave. Floor-halving is monotone and commutes with the row
// minimum, so for every key Estimate-after == Estimate-before >> 1
// exactly — the property the decay tests pin.
func (s *Sketch) Decay() {
	for i := range s.counters {
		s.counters[i] >>= 1
	}
}

// Reset zeroes every counter.
func (s *Sketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
}

// Bytes returns the sketch's counter-array footprint.
func (s *Sketch) Bytes() int64 { return int64(len(s.counters)) }

// Width returns the rounded-up per-row counter count.
func (s *Sketch) Width() int { return int(s.width) }

// Depth returns the row count.
func (s *Sketch) Depth() int { return s.depth }

// Seed returns the index-derivation seed (0 = unkeyed).
func (s *Sketch) Seed() uint64 { return s.seed }
