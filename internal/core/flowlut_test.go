package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/hashfn"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// smallConfig is a fast configuration for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Buckets = 256
	cfg.CAMCapacity = 32
	return cfg
}

func key13(i uint64) []byte {
	k := make([]byte, 13)
	binary.LittleEndian.PutUint64(k, i)
	return k
}

// lookups builds a KindLookup work list over the given flow indices.
func lookups(indices ...uint64) []WorkItem {
	items := make([]WorkItem, len(indices))
	for i, idx := range indices {
		items[i] = WorkItem{Kind: KindLookup, Key: key13(idx)}
	}
	return items
}

func mustRun(t *testing.T, cfg Config, items []WorkItem, period int64) RunReport {
	t.Helper()
	f, sched, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkload(f, sched, items, period, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad buckets", func(c *Config) { c.Buckets = 100 }},
		{"entry too small", func(c *Config) { c.EntryBytes = 13 }},
		{"bucket not burst multiple", func(c *Config) { c.SlotsPerBucket = 3; c.EntryBytes = 17 }},
		{"zero cam", func(c *Config) { c.CAMCapacity = 0 }},
		{"nil hash", func(c *Config) { c.Hash = hashfn.Pair{} }},
		{"bad balancer", func(c *Config) { c.Balancer = 99 }},
		{"bad load", func(c *Config) { c.FixedLoadA = 1.5 }},
		{"zero queues", func(c *Config) { c.InputQueueDepth = 0 }},
		{"zero bwr", func(c *Config) { c.BWrThreshold = 0 }},
		{"table too big", func(c *Config) { c.Buckets = 1 << 26 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
}

func TestInsertOnMissThenHit(t *testing.T) {
	rep := mustRun(t, smallConfig(), lookups(7, 7, 7), 8)
	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Hit || !first.NewFlow {
		t.Fatalf("first packet = %+v, want new flow", first)
	}
	for i, r := range rep.Results[1:] {
		if !r.Hit {
			t.Fatalf("packet %d = %+v, want hit", i+1, r)
		}
		if r.FID != first.FID {
			t.Fatalf("packet %d FID %d != first %d", i+1, r.FID, first.FID)
		}
	}
	if rep.Stats.NewFlows != 1 || rep.Stats.Hits != 2 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
}

func TestSearchDoesNotInsert(t *testing.T) {
	items := []WorkItem{
		{Kind: KindSearch, Key: key13(1)},
		{Kind: KindSearch, Key: key13(1)},
	}
	rep := mustRun(t, smallConfig(), items, 8)
	for i, r := range rep.Results {
		if r.Hit || r.NewFlow {
			t.Fatalf("search %d = %+v, want clean miss", i, r)
		}
	}
	if rep.Stats.NewFlows != 0 {
		t.Fatalf("search inserted: %+v", rep.Stats)
	}
}

func TestDeleteLifecycle(t *testing.T) {
	items := []WorkItem{
		{Kind: KindLookup, Key: key13(5)}, // insert
		{Kind: KindLookup, Key: key13(5)}, // hit
		{Kind: KindDelete, Key: key13(5)}, // delete
		{Kind: KindLookup, Key: key13(5)}, // reinsert
	}
	rep := mustRun(t, smallConfig(), items, 16)
	r := rep.Results
	if !r[0].NewFlow || !r[1].Hit {
		t.Fatalf("setup results wrong: %+v %+v", r[0], r[1])
	}
	if r[2].Kind != KindDelete || !r[2].Hit {
		t.Fatalf("delete result = %+v, want hit", r[2])
	}
	if !r[3].NewFlow {
		t.Fatalf("post-delete lookup = %+v, want new flow", r[3])
	}
	if rep.Stats.Deletes != 1 {
		t.Fatalf("Deletes = %d", rep.Stats.Deletes)
	}
}

func TestDeleteMiss(t *testing.T) {
	rep := mustRun(t, smallConfig(), []WorkItem{{Kind: KindDelete, Key: key13(42)}}, 8)
	if rep.Results[0].Hit {
		t.Fatalf("delete of absent key = %+v", rep.Results[0])
	}
}

// TestReferenceModel replays a realistic mixed workload and checks every
// result against an oracle: first packet of each flow is NewFlow, later
// packets Hit with a stable FID.
func TestReferenceModel(t *testing.T) {
	z, err := trafficgen.NewZipfTrace(trafficgen.ZipfConfig{
		Universe: 10000, Skew: 1.2, HeadOffset: 5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	items := make([]WorkItem, n)
	flowOf := make([]uint64, n)
	for i := range items {
		idx := z.NextIndex()
		flowOf[i] = idx
		items[i] = WorkItem{Kind: KindLookup, Key: key13(idx)}
	}
	rep := mustRun(t, smallConfig(), items, 4)
	if len(rep.Results) != n {
		t.Fatalf("%d results, want %d", len(rep.Results), n)
	}
	fids := make(map[uint64]uint64) // flow index -> fid
	fidOwner := make(map[uint64]uint64)
	// Results arrive in resolution order; index them by Seq.
	bySeq := make([]Result, n)
	for _, r := range rep.Results {
		bySeq[r.Seq] = r
	}
	// Walk in *resolution* order for first-occurrence semantics: per-flow
	// order is guaranteed, so walking per flow in seq order is valid.
	perFlowSeen := make(map[uint64]bool)
	for seq := 0; seq < n; seq++ {
		r := bySeq[seq]
		flow := flowOf[seq]
		if r.Dropped {
			t.Fatalf("seq %d dropped at small load", seq)
		}
		if !perFlowSeen[flow] {
			if !r.NewFlow {
				t.Fatalf("seq %d: first packet of flow %d = %+v, want NewFlow", seq, flow, r)
			}
			perFlowSeen[flow] = true
			fids[flow] = r.FID
			if owner, dup := fidOwner[r.FID]; dup {
				t.Fatalf("FID %d assigned to flows %d and %d", r.FID, owner, flow)
			}
			fidOwner[r.FID] = flow
		} else {
			if !r.Hit {
				t.Fatalf("seq %d: repeat packet of flow %d = %+v, want Hit", seq, flow, r)
			}
			if r.FID != fids[flow] {
				t.Fatalf("seq %d: flow %d FID %d, want %d", seq, flow, r.FID, fids[flow])
			}
		}
	}
	if rep.Stats.NewFlows != int64(len(fids)) {
		t.Fatalf("NewFlows = %d, distinct flows = %d", rep.Stats.NewFlows, len(fids))
	}
}

// TestPerFlowOrdering pins §IV-A: "the packets belonging to the same flow
// are still strictly maintained in order" despite the DLU's reordering.
func TestPerFlowOrdering(t *testing.T) {
	// Heavy repetition of few flows maximises in-flight same-flow packets.
	var items []WorkItem
	var flowOf []uint64
	rng := sim.NewRand(9)
	for i := 0; i < 2000; i++ {
		flow := uint64(rng.Intn(8))
		items = append(items, WorkItem{Kind: KindLookup, Key: key13(flow)})
		flowOf = append(flowOf, flow)
	}
	cfg := smallConfig()
	cfg.Balancer = BalancerAdaptive
	f, sched, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resolved []Result
	offered := 0
	_, done := sched.RunUntil(func() bool {
		for {
			r, ok := f.PopResult()
			if !ok {
				break
			}
			resolved = append(resolved, r)
		}
		if offered < len(items) && f.Offer(items[offered].Kind, items[offered].Key) {
			offered++
		}
		return offered == len(items) && f.Idle() && len(resolved) == len(items)
	}, 50_000_000)
	if !done {
		t.Fatal("run stalled")
	}
	lastSeq := make(map[uint64]int64)
	for i, r := range resolved {
		flow := flowOf[r.Seq]
		if last, ok := lastSeq[flow]; ok && int64(r.Seq) < last {
			t.Fatalf("resolution %d: flow %d seq %d resolved after seq %d", i, flow, r.Seq, last)
		}
		lastSeq[flow] = int64(r.Seq)
	}
}

func TestCAMOverflowAndDrop(t *testing.T) {
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: constHash{}, H2: constHash{}}
	cfg.CAMCapacity = 4
	// One bucket per path × 4 slots + 4 CAM = 12 capacity.
	items := lookups(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13)
	rep := mustRun(t, cfg, items, 32)
	if rep.Stats.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2 (14 inserts into 12 slots)", rep.Stats.Dropped)
	}
	if rep.Stats.NewFlows != 12 {
		t.Fatalf("NewFlows = %d, want 12", rep.Stats.NewFlows)
	}
	// Re-query an early key: must hit (wherever it landed).
	f, sched, _ := NewRig(cfg)
	all := append(items, WorkItem{Kind: KindSearch, Key: key13(0)})
	rep2, err := RunWorkload(f, sched, all, 32, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var probe Result
	for _, r := range rep2.Results {
		if r.Seq == uint64(len(all)-1) {
			probe = r
		}
	}
	if !probe.Hit {
		t.Fatalf("key 0 lost after overflow: %+v", probe)
	}
}

func TestFixedBalancerExtremes(t *testing.T) {
	cfg := smallConfig()
	cfg.Balancer = BalancerFixed
	cfg.FixedLoadA = 0
	rep := mustRun(t, cfg, lookups(1, 2, 3, 4, 5, 6, 7, 8), 8)
	if rep.Stats.LU1PathA != 0 {
		t.Fatalf("LU1PathA = %d with FixedLoadA=0", rep.Stats.LU1PathA)
	}
	cfg.FixedLoadA = 1
	rep = mustRun(t, cfg, lookups(1, 2, 3, 4, 5, 6, 7, 8), 8)
	if rep.Stats.LU1PathB != 0 {
		t.Fatalf("LU1PathB = %d with FixedLoadA=1", rep.Stats.LU1PathB)
	}
}

func TestAdaptiveBalancerSplitsEvenly(t *testing.T) {
	cfg := smallConfig()
	cfg.Balancer = BalancerAdaptive
	items := make([]WorkItem, 1000)
	for i := range items {
		items[i] = WorkItem{Kind: KindLookup, Key: key13(uint64(i))}
	}
	// Inject at a sustainable rate (the paper's methodology: input swept
	// 60-100 MHz, worst-case sustained rate reported). At saturation the
	// split is governed by admission spill, not policy.
	rep := mustRun(t, cfg, items, 16)
	split := rep.Stats.LoadFractionA()
	if split < 0.45 || split > 0.55 {
		t.Fatalf("adaptive balancer split = %.3f, want near 0.5", split)
	}
}

func TestInputBackpressure(t *testing.T) {
	cfg := smallConfig()
	cfg.InputQueueDepth = 2
	clock := sim.NewClock()
	f, err := New(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Offer(KindLookup, key13(1)) || !f.Offer(KindLookup, key13(2)) {
		t.Fatal("offers rejected below depth")
	}
	if f.Offer(KindLookup, key13(3)) {
		t.Fatal("offer accepted on full input queue")
	}
	if f.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", f.Stats().Rejected)
	}
}

func TestLatencyAccounting(t *testing.T) {
	rep := mustRun(t, smallConfig(), lookups(1, 1), 8)
	for _, r := range rep.Results {
		if r.Latency <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
	}
	if rep.Stats.MeanLatency() <= 0 || rep.Stats.LatencyMax <= 0 {
		t.Fatalf("latency stats = %+v", rep.Stats)
	}
	// A memory-stage resolution cannot beat tRCD+RL at quarter rate.
	tm := smallConfig().Timing
	min := sim.Cycle(tm.TRCD + tm.RL() + tm.BurstCycles())
	if rep.Results[0].Latency < min {
		t.Fatalf("first lookup latency %d below physical floor %d", rep.Results[0].Latency, min)
	}
}

func TestBankSelectorAblationRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableBankSelector = true
	rep := mustRun(t, cfg, lookups(1, 2, 3, 4, 5, 1, 2, 3), 8)
	if len(rep.Results) != 8 {
		t.Fatalf("%d results", len(rep.Results))
	}
}

func TestEarlyExitAblationCorrectness(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableEarlyExit = true
	rep := mustRun(t, cfg, lookups(1, 2, 3, 1, 2, 3), 8)
	byFlow := map[uint64][]Result{}
	for _, r := range rep.Results {
		byFlow[r.Seq%3] = append(byFlow[r.Seq%3], r)
	}
	for flow, rs := range byFlow {
		if !rs[0].NewFlow || !rs[1].Hit || rs[0].FID != rs[1].FID {
			t.Fatalf("flow %d ablation results wrong: %+v", flow, rs)
		}
	}
	// Every hit must have paid both memory reads: reads on both channels
	// roughly equal to 2 bursts per lookup each.
	a := rep.Stats
	if a.Hits != 3 {
		t.Fatalf("Hits = %d", a.Hits)
	}
}

func TestDRAMActivityObservable(t *testing.T) {
	rep := mustRun(t, smallConfig(), lookups(1, 2, 3, 4, 5, 6, 7, 8), 8)
	_ = rep
	f, sched, _ := NewRig(smallConfig())
	if _, err := RunWorkload(f, sched, lookups(1, 2, 3, 4), 8, 50_000_000); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < 2; i++ {
		st := f.PathDRAMStats(i)
		total += st.Reads + st.Writes
	}
	if total == 0 {
		t.Fatal("no DRAM activity recorded")
	}
}

func TestCAMInUseTracksOverflow(t *testing.T) {
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: constHash{}, H2: constHash{}}
	f, sched, _ := NewRig(cfg)
	if _, err := RunWorkload(f, sched, lookups(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), 32, 50_000_000); err != nil {
		t.Fatal(err)
	}
	// 8 slots across both paths; 2 overflow to CAM.
	if got := f.CAMInUse(); got != 2 {
		t.Fatalf("CAMInUse = %d, want 2", got)
	}
}

// constHash maps every key to bucket 0 of both tables.
type constHash struct{}

func (constHash) Hash([]byte) uint64 { return 0 }
func (constHash) Name() string       { return "const0" }
