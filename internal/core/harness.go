package core

import (
	"fmt"

	"repro/internal/hashfn"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// WorkItem is one descriptor of a workload. If PreHashed is set, Index1/
// Index2 are used verbatim (Table II(A) hash patterns); otherwise the key
// is hashed by the configured pair.
type WorkItem struct {
	Kind      Kind
	Key       []byte
	PreHashed bool
	Index1    int
	Index2    int
}

// RunReport summarises one workload run.
type RunReport struct {
	Results []Result
	Stats   Stats
	// Cycles is the elapsed bus-cycle count from first injection to last
	// resolution.
	Cycles sim.Cycle
	// MDescPerSec is the sustained processing rate in the paper's unit,
	// computed from simulated time.
	MDescPerSec float64
}

// RunWorkload drives items into f at one injection attempt per
// injectPeriod bus cycles (e.g. period 8 at an 800 MHz bus models the
// paper's 100 MHz input rate), retrying under backpressure, then drains
// the pipeline. It fails if the run exceeds limit cycles.
func RunWorkload(f *FlowLUT, sched *sim.Scheduler, items []WorkItem, injectPeriod int64, limit sim.Cycle) (RunReport, error) {
	if injectPeriod <= 0 {
		return RunReport{}, fmt.Errorf("core: injection period must be positive, got %d", injectPeriod)
	}
	var report RunReport
	clock := sched.Clock()
	start := clock.Now()
	next := start
	offered := 0
	// The pending item's single-pass hashes, computed once per item:
	// injection retries under backpressure re-offer the same descriptor,
	// and rehashing it per attempt would charge the hash pipeline for
	// work the hardware sequencer never repeats.
	var kh hashfn.KeyHashes
	khFor := -1

	cycles, done := sched.RunUntil(func() bool {
		for {
			r, ok := f.PopResult()
			if !ok {
				break
			}
			report.Results = append(report.Results, r)
		}
		now := clock.Now()
		if offered < len(items) && now >= next {
			it := items[offered]
			var ok bool
			if it.PreHashed {
				ok = f.OfferHashed(it.Kind, it.Key, it.Index1, it.Index2)
			} else {
				if khFor != offered {
					kh = f.cfg.Hash.Compute(it.Key)
					khFor = offered
				}
				ok = f.OfferKeyHashes(it.Kind, it.Key, kh)
			}
			if ok {
				offered++
				next += sim.Cycle(injectPeriod)
				if next < now {
					// Backpressure pushed us behind schedule; re-anchor so
					// the injector does not burst to catch up.
					next = now + sim.Cycle(injectPeriod)
				}
			}
		}
		return offered == len(items) && f.Idle() && len(report.Results) == len(items)
	}, limit)
	if !done {
		return report, fmt.Errorf("core: workload did not finish in %d cycles (offered %d/%d, resolved %d)",
			limit, offered, len(items), len(report.Results))
	}
	report.Cycles = cycles
	report.Stats = f.Stats()
	report.MDescPerSec = metrics.MDescPerSec(int64(len(report.Results)), int64(cycles), f.cfg.Timing.TCKps)
	return report, nil
}

// NewRig builds a FlowLUT wired to a fresh scheduler, the common test and
// bench setup.
func NewRig(cfg Config) (*FlowLUT, *sim.Scheduler, error) {
	clock := sim.NewClock()
	f, err := New(cfg, clock)
	if err != nil {
		return nil, nil, err
	}
	sched := sim.NewScheduler(clock)
	sched.Register(f)
	return f, sched, nil
}
