// Package core implements the paper's flow lookup scheme (Fig. 2) as a
// cycle-level model: a sequencer with a load balancer feeding two
// symmetric lookup paths, each with a data lookup unit (DLU: bank
// selector, request filter, memory-control front end — Fig. 4) over its
// own DDR3 channel, a flow-match block, and an update block (request
// arbitrator + burst write generator — Fig. 5). A small CAM absorbs
// bucket overflow, searched as pipeline stage 1 exactly as in the
// Hash-CAM table of Fig. 1.
//
// Clocking matches the prototype: the core logic ticks once per
// CoreClockRatio DDR bus cycles (4 — the quarter-rate user interface of
// the 200 MHz design against an 800 MHz memory I/O clock), while the two
// memory controllers tick every bus cycle.
package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/hashfn"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// BalancerPolicy selects how the sequencer's load balancer picks the
// first-lookup path (§III-B: "a load balancer determining the path (A or
// B) that the data should go through first").
type BalancerPolicy int

// Balancer policies.
const (
	// BalancerFixed sends a configured fraction of LU1s to path A
	// (Table II(A)'s load sweep drives this policy at 0.5 / 0.25 / 0).
	BalancerFixed BalancerPolicy = iota + 1
	// BalancerAdaptive picks the path with the shallower DLU input queue,
	// the "optimized load balancer" of §V.
	BalancerAdaptive
	// BalancerByHash derives the path from the descriptor's first hash
	// bit — stateless, what a multi-engine design would ship.
	BalancerByHash
)

// String returns the policy name.
func (b BalancerPolicy) String() string {
	switch b {
	case BalancerFixed:
		return "fixed"
	case BalancerAdaptive:
		return "adaptive"
	case BalancerByHash:
		return "by-hash"
	default:
		return fmt.Sprintf("BalancerPolicy(%d)", int(b))
	}
}

// Config parameterises the timed Flow LUT.
type Config struct {
	// Timing and Geometry describe each of the two DDR3 channels.
	Timing   dram.Timing
	Geometry dram.Geometry
	// Ctrl configures both memory controllers.
	Ctrl memctrl.Config

	// Buckets is the hash-bucket count per path. SlotsPerBucket is K of
	// Fig. 1. KeyLen is the descriptor key width; EntryBytes the stored
	// entry width (valid byte + key, padded).
	Buckets        int
	SlotsPerBucket int
	KeyLen         int
	EntryBytes     int

	// CAMCapacity bounds the on-chip collision store.
	CAMCapacity int
	// Hash supplies the two pre-selected hash functions.
	Hash hashfn.Pair

	// Balancer selects the load-balancing policy; FixedLoadA is the
	// fraction of LU1 traffic sent to path A under BalancerFixed.
	Balancer   BalancerPolicy
	FixedLoadA float64

	// InputQueueDepth bounds the sequencer queue; PathQueueDepth bounds
	// each DLU's bank-selector queue.
	InputQueueDepth int
	PathQueueDepth  int

	// BWrThreshold and BWrTimeout parameterise the burst write generator:
	// pending updates are flushed to the DLU when the count reaches the
	// threshold or the oldest has waited the timeout (in core cycles) —
	// "issue burst write requests at timeout or at the time when the
	// request count reaches the target limit" (§IV-B).
	BWrThreshold int
	BWrTimeout   sim.Cycle

	// CoreClockRatio is bus cycles per core cycle (4 = quarter rate).
	CoreClockRatio int64

	// BalancerSeed drives stochastic balancer decisions deterministically.
	BalancerSeed uint64

	// DisableBankSelector issues lookups strictly in arrival order
	// (ablation: measures what the bank reordering buys).
	DisableBankSelector bool
	// DisableEarlyExit forces every lookup through both memory stages
	// even after a stage-2 match (ablation: conventional Hash-CAM cost
	// contract of [10][11]).
	DisableEarlyExit bool
}

// DefaultConfig returns a laptop-scale configuration of the prototype
// architecture: two channels, K=4 slots (two BL8 bursts per bucket on a
// 32-bit bus), 64-entry CAM, quarter-rate 800 MHz bus.
func DefaultConfig() Config {
	return Config{
		Timing:          dram.DDR31600(),
		Geometry:        dram.PrototypeGeometry(),
		Ctrl:            memctrl.DefaultConfig(),
		Buckets:         1 << 14, // 16k buckets/path = 128k entries + CAM
		SlotsPerBucket:  4,
		KeyLen:          13,
		EntryBytes:      16,
		CAMCapacity:     64,
		Hash:            hashfn.DefaultPair(),
		Balancer:        BalancerAdaptive,
		FixedLoadA:      0.5,
		InputQueueDepth: 64,
		PathQueueDepth:  16,
		BWrThreshold:    8,
		BWrTimeout:      256,
		CoreClockRatio:  4,
		BalancerSeed:    1,
	}
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Ctrl.Validate(); err != nil {
		return err
	}
	burstBytes := c.Geometry.BurstBytes(c.Timing.BL)
	switch {
	case c.Buckets <= 0 || c.Buckets&(c.Buckets-1) != 0:
		return fmt.Errorf("core: buckets must be a positive power of two, got %d", c.Buckets)
	case c.SlotsPerBucket <= 0:
		return fmt.Errorf("core: slots per bucket must be positive, got %d", c.SlotsPerBucket)
	case c.KeyLen <= 0:
		return fmt.Errorf("core: key length must be positive, got %d", c.KeyLen)
	case c.EntryBytes < c.KeyLen+1:
		return fmt.Errorf("core: entry bytes %d cannot hold valid byte + %d-byte key", c.EntryBytes, c.KeyLen)
	case (c.SlotsPerBucket*c.EntryBytes)%burstBytes != 0:
		return fmt.Errorf("core: bucket size %d not a multiple of the %d-byte burst",
			c.SlotsPerBucket*c.EntryBytes, burstBytes)
	case c.CAMCapacity <= 0:
		return fmt.Errorf("core: CAM capacity must be positive, got %d", c.CAMCapacity)
	case c.Hash.H1 == nil || c.Hash.H2 == nil:
		return fmt.Errorf("core: both hash functions must be set")
	case c.Balancer < BalancerFixed || c.Balancer > BalancerByHash:
		return fmt.Errorf("core: unknown balancer policy %d", int(c.Balancer))
	case c.FixedLoadA < 0 || c.FixedLoadA > 1:
		return fmt.Errorf("core: fixed load fraction %v out of [0,1]", c.FixedLoadA)
	case c.InputQueueDepth <= 0 || c.PathQueueDepth <= 0:
		return fmt.Errorf("core: queue depths must be positive")
	case c.BWrThreshold <= 0 || c.BWrTimeout <= 0:
		return fmt.Errorf("core: burst write generator threshold/timeout must be positive")
	case c.CoreClockRatio <= 0:
		return fmt.Errorf("core: core clock ratio must be positive, got %d", c.CoreClockRatio)
	}
	// The table must fit the channel.
	bucketBursts := int64(c.SlotsPerBucket*c.EntryBytes) / int64(burstBytes)
	need := int64(c.Buckets) * bucketBursts
	if have := c.Geometry.LinearBursts(c.Timing.BL); need > have {
		return fmt.Errorf("core: table needs %d bursts per channel, geometry holds %d", need, have)
	}
	return nil
}

// BucketBursts returns the number of BL8 bursts per bucket read.
func (c Config) BucketBursts() int {
	return c.SlotsPerBucket * c.EntryBytes / c.Geometry.BurstBytes(c.Timing.BL)
}

// CapacityFlows returns the total flow capacity (both paths + CAM).
func (c Config) CapacityFlows() int {
	return 2*c.Buckets*c.SlotsPerBucket + c.CAMCapacity
}
