package core

import (
	"fmt"

	"repro/internal/cam"
	"repro/internal/hashfn"
	"repro/internal/sim"
)

// FlowLUT is the timed flow lookup table of Fig. 2: sequencer + load
// balancer, two symmetric paths over private DDR3 channels, CAM overflow
// store, flow-match/update blocks, and FID generation. It implements
// sim.Tickable at DDR-bus-cycle granularity.
type FlowLUT struct {
	cfg   Config
	clock *sim.Clock

	paths [2]*path
	cam   *cam.CAM

	inQ     *sim.Queue[descriptor]
	nextSeq uint64

	// redirects holds LU2 requests waiting for room in the target path's
	// queue (a skid buffer between the two flow-match blocks).
	redirects [2][]*lookupState

	// inflight pins all packets of a key to one path while any of its
	// requests are outstanding, preserving per-flow order ("packets
	// belonging to the same flow are still strictly maintained in order",
	// §IV-A).
	inflight map[string]*pinInfo

	// recentInserts closes the window where two packets of the same new
	// flow both miss and would both insert (§IV-A's corner cases).
	recentKeys map[string]uint64
	recentRing []string
	recentPos  int

	results []Result
	stats   Stats
}

type pinInfo struct {
	path  int
	count int
}

// Stats aggregates the model's counters.
type Stats struct {
	Offered   int64
	Rejected  int64 // input backpressure events
	Processed int64
	Hits      int64
	NewFlows  int64
	Dropped   int64
	Deletes   int64

	HitsCAM  int64
	HitsMem1 int64
	HitsMem2 int64

	LU1PathA int64
	LU1PathB int64

	LatencyTotal sim.Cycle
	LatencyMax   sim.Cycle

	FilterHolds int64
	Flushes     int64
	Replays     int64 // stale-image refetches
}

// LoadFractionA returns the fraction of first lookups dispatched to path
// A — the "Load-path A" column of Table II(A).
func (s Stats) LoadFractionA() float64 {
	total := s.LU1PathA + s.LU1PathB
	if total == 0 {
		return 0
	}
	return float64(s.LU1PathA) / float64(total)
}

// MeanLatency returns the mean arrival-to-resolution latency in bus
// cycles.
func (s Stats) MeanLatency() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.LatencyTotal) / float64(s.Processed)
}

// New builds a FlowLUT over the shared clock.
func New(cfg Config, clock *sim.Clock) (*FlowLUT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &FlowLUT{
		cfg:        cfg,
		clock:      clock,
		cam:        cam.New(cfg.CAMCapacity),
		inQ:        sim.NewQueue[descriptor](cfg.InputQueueDepth),
		inflight:   make(map[string]*pinInfo),
		recentKeys: make(map[string]uint64),
		recentRing: make([]string, 2*cfg.CAMCapacity),
	}
	for i := range f.paths {
		p, err := newPath(i, &f.cfg, clock)
		if err != nil {
			return nil, err
		}
		f.paths[i] = p
	}
	return f, nil
}

// Config returns the model's configuration.
func (f *FlowLUT) Config() Config { return f.cfg }

// Stats returns a snapshot of the counters, merging per-path detail.
func (f *FlowLUT) Stats() Stats {
	s := f.stats
	for _, p := range f.paths {
		s.FilterHolds += p.stats.filterHolds
		s.Flushes += p.stats.flushes
	}
	return s
}

// Offer submits a descriptor of the given kind, hashing the key with the
// configured pair — one H1+H2 compute, whose words then serve every stage
// (both bucket indices travel in the descriptor; no path rehashes). It
// reports false under input backpressure (the injection-rate experiments
// count and retry; retrying callers should precompute with Pair.Compute
// and use OfferKeyHashes so rejected descriptors are not rehashed).
func (f *FlowLUT) Offer(kind Kind, key []byte) bool {
	if len(key) != f.cfg.KeyLen {
		panic(fmt.Sprintf("core: key of %d bytes, configured for %d", len(key), f.cfg.KeyLen))
	}
	return f.OfferKeyHashes(kind, key, f.cfg.Hash.Compute(key))
}

// OfferKeyHashes submits a descriptor with its single-pass hashes already
// computed (kh must be the configured pair's Compute over key). This is
// the timed model's end of the repo-wide KeyHashes fast path: a driver
// that serialised and hashed a key once — or that is retrying after
// backpressure — hands the words straight to the sequencer, and the
// model derives both bucket indices by reduction, never rehashing.
func (f *FlowLUT) OfferKeyHashes(kind Kind, key []byte, kh hashfn.KeyHashes) bool {
	if len(key) != f.cfg.KeyLen {
		panic(fmt.Sprintf("core: key of %d bytes, configured for %d", len(key), f.cfg.KeyLen))
	}
	return f.OfferHashed(kind, key, kh.Index1(f.cfg.Buckets), kh.Index2(f.cfg.Buckets))
}

// OfferHashed submits a descriptor with externally supplied bucket
// indices — Table II(A) drives the sequencer with raw hash patterns.
func (f *FlowLUT) OfferHashed(kind Kind, key []byte, i1, i2 int) bool {
	if i1 < 0 || i1 >= f.cfg.Buckets || i2 < 0 || i2 >= f.cfg.Buckets {
		panic(fmt.Sprintf("core: bucket indices (%d,%d) out of range [0,%d)", i1, i2, f.cfg.Buckets))
	}
	d := descriptor{
		seq:     f.nextSeq,
		kind:    kind,
		key:     append([]byte(nil), key...),
		idx:     [2]int{i1, i2},
		arrival: f.clock.Now(),
	}
	if !f.inQ.Push(d) {
		f.stats.Rejected++
		return false
	}
	f.nextSeq++
	f.stats.Offered++
	return true
}

// PopResult returns the next completed request.
func (f *FlowLUT) PopResult() (Result, bool) {
	if len(f.results) == 0 {
		return Result{}, false
	}
	r := f.results[0]
	f.results = f.results[1:]
	return r, true
}

// Idle reports whether no work is queued or in flight.
func (f *FlowLUT) Idle() bool {
	if !f.inQ.Empty() {
		return false
	}
	for i, p := range f.paths {
		if p.busy() || len(f.redirects[i]) > 0 {
			return false
		}
	}
	return true
}

// Tick implements sim.Tickable at bus-cycle granularity.
func (f *FlowLUT) Tick(now sim.Cycle) {
	if int64(now)%f.cfg.CoreClockRatio == 0 {
		f.coreTick(now)
	}
	for _, p := range f.paths {
		p.ctrl.Tick(now)
	}
}

// coreTick advances the 200 MHz-domain logic one cycle.
func (f *FlowLUT) coreTick(now sim.Cycle) {
	// Flow-match completions first, so freed queue slots are visible to
	// the sequencer in the same cycle ordering hardware would exhibit.
	for i, p := range f.paths {
		for _, ls := range p.drainCompletions() {
			f.flowMatch(now, i, ls)
		}
	}
	f.drainRedirects()
	f.sequence(now)
	for _, p := range f.paths {
		p.issueLookups(now)
		p.tickUpdt(now)
	}
}

// drainRedirects moves held LU2 requests into their target path's queue.
func (f *FlowLUT) drainRedirects() {
	for target := range f.redirects {
		held := f.redirects[target]
		n := 0
		for _, ls := range held {
			if f.paths[target].lu2Q.Push(ls) {
				continue
			}
			held[n] = ls
			n++
		}
		f.redirects[target] = held[:n]
	}
}

// sequence runs the sequencer: CAM stage plus load-balanced dispatch of
// one descriptor per core cycle.
func (f *FlowLUT) sequence(now sim.Cycle) {
	d, ok := f.inQ.Peek()
	if !ok {
		return
	}
	// Per-flow serialisation: while any request for this key is in flight,
	// later packets of the flow wait at the sequencer. This is what keeps
	// packets of one flow "strictly maintained in order" (§IV-A) while the
	// DLUs reorder freely across flows.
	if _, busy := f.inflight[string(d.key)]; busy {
		return
	}
	// Stage 1: CAM. A hit (or CAM-resident delete) resolves immediately.
	if v, hit := f.cam.Search(d.key); hit {
		f.inQ.Pop()
		switch d.kind {
		case KindDelete:
			f.cam.Delete(d.key)
			delete(f.recentKeys, string(d.key))
			f.stats.Deletes++
			f.emit(now, d, Result{Hit: true, Stage: StageCAM})
		default:
			f.stats.Hits++
			f.stats.HitsCAM++
			f.emit(now, d, Result{FID: v, Hit: true, Stage: StageCAM})
		}
		return
	}
	// Duplicate-in-flight window: a key whose insert is still pending
	// resolves against the staged entry.
	if fid, ok := f.recentKeys[string(d.key)]; ok && d.kind != KindDelete {
		// Only short-circuit while the entry may not be readable yet.
		if f.updatePending(d) {
			f.inQ.Pop()
			stage := f.stageOfFID(fid)
			f.stats.Hits++
			f.bumpStage(stage)
			f.emit(now, d, Result{FID: fid, Hit: true, Stage: stage})
			return
		}
	}

	target := f.pickPath(d)
	ls := &lookupState{desc: d, lu: 1, path: target, bucket: d.idx[target]}
	if !f.paths[target].lu1Q.Push(ls) {
		return // path congested; descriptor stays queued
	}
	f.inQ.Pop()
	f.pin(d.key, target)
	if target == 0 {
		f.stats.LU1PathA++
	} else {
		f.stats.LU1PathB++
	}
}

// updatePending reports whether either bucket of d has a staged update.
func (f *FlowLUT) updatePending(d descriptor) bool {
	return f.paths[0].filterBlocks(d.idx[0]) || f.paths[1].filterBlocks(d.idx[1])
}

// pickPath applies the load balancer, honouring in-flight pinning.
func (f *FlowLUT) pickPath(d descriptor) int {
	if pin, ok := f.inflight[string(d.key)]; ok {
		return pin.path
	}
	switch f.cfg.Balancer {
	case BalancerFixed:
		// The roll is a pure function of the descriptor's sequence number:
		// a dispatch that fails on a full path queue retries next cycle with
		// the same outcome. Drawing a fresh sample per attempt would resample
		// congested descriptors toward the emptier path and skew the
		// configured split.
		if seqRoll(d.seq, f.cfg.BalancerSeed) < f.cfg.FixedLoadA {
			return 0
		}
		return 1
	case BalancerAdaptive:
		// Even split by sequence parity, spilling to the other path only
		// under hard backpressure (the parity path's queue is full). Any
		// finer-grained relative steering is unstable in this topology:
		// LU2 redirects have issue priority, so a path loaded with the
		// other side's LU2s admits LU1s slowly, which relative steering
		// misreads as a reason to keep unbalancing. The paper's own
		// measured random-hash split is 50.8 % (Table II(A)) — parity.
		target := int(d.seq & 1)
		if f.paths[target].lu1Q.Full() && !f.paths[1-target].lu1Q.Full() {
			return 1 - target
		}
		return target
	case BalancerByHash:
		return d.idx[0] & 1
	default:
		panic(fmt.Sprintf("core: unknown balancer %v", f.cfg.Balancer))
	}
}

// seqRoll maps (seq, seed) to a uniform float64 in [0, 1) — a stateless
// per-descriptor random draw.
func seqRoll(seq, seed uint64) float64 {
	z := hashfn.Finalize64((seq+1)*0x9e3779b97f4a7c15 + seed)
	return float64(z>>11) / (1 << 53)
}

// pin marks a key as in flight on a path.
func (f *FlowLUT) pin(key []byte, target int) {
	k := string(key)
	if pin, ok := f.inflight[k]; ok {
		pin.count++
		return
	}
	f.inflight[k] = &pinInfo{path: target, count: 1}
}

// unpin releases one in-flight reference.
func (f *FlowLUT) unpin(key []byte) {
	k := string(key)
	pin, ok := f.inflight[k]
	if !ok {
		return
	}
	pin.count--
	if pin.count == 0 {
		delete(f.inflight, k)
	}
}

// flowMatch is the per-path Flow Match block: compare the fetched bucket
// against the descriptor, then hit → FID_GEN, LU1 miss → redirect, LU2
// miss → update block.
func (f *FlowLUT) flowMatch(now sim.Cycle, pathID int, ls *lookupState) {
	p := f.paths[pathID]
	d := ls.desc

	// Freshness: a pending update op owns the authoritative image of its
	// bucket — match against it (this also resolves hits on entries whose
	// write is still draining). Without an op, a version mismatch means an
	// update landed while the read was in flight: refetch.
	if op := p.pendingOps[ls.bucket]; op != nil {
		ls.data = append(ls.data[:0], op.data...)
		ls.ver = p.bucketVersion[ls.bucket]
	} else if ls.ver != p.bucketVersion[ls.bucket] {
		f.refetch(ls, pathID)
		return
	}
	// The carried first-bucket image of an LU2 must be fresh too before it
	// can inform a final decision.
	if ls.lu == 2 {
		other := 1 - pathID
		po := f.paths[other]
		if op := po.pendingOps[d.idx[other]]; op != nil {
			ls.firstBucket = append([]byte(nil), op.data...)
			ls.firstVer = po.bucketVersion[d.idx[other]]
		} else if ls.firstVer != po.bucketVersion[d.idx[other]] {
			// Restart from LU1 on the first path.
			restart := &lookupState{desc: d, lu: 1, path: other, bucket: d.idx[other]}
			f.refetch(restart, other)
			return
		}
	}

	slot, matched := p.matchBucket(ls.data, d.key)

	// Early-exit ablation: an LU1 match was deferred past the redundant
	// second read; re-find it in the carried first-bucket image now.
	if !matched && ls.lu == 2 && f.cfg.DisableEarlyExit {
		if s1, m1 := p.matchBucket(ls.firstBucket, d.key); m1 {
			other := 1 - pathID
			f.stats.Hits++
			if other == 0 {
				f.stats.HitsMem1++
			} else {
				f.stats.HitsMem2++
			}
			f.emit(now, d, Result{FID: f.fid(other, d.idx[other], s1), Hit: true, Stage: memStage(other)})
			f.unpin(d.key)
			return
		}
	}

	if matched && d.kind == KindDelete {
		p.stageUpdate(now, ls.bucket, slot, ls.data, nil)
		delete(f.recentKeys, string(d.key))
		f.stats.Deletes++
		f.emit(now, d, Result{Hit: true, Stage: memStage(pathID)})
		f.unpin(d.key)
		return
	}
	if matched {
		if ls.lu == 1 && f.cfg.DisableEarlyExit {
			// Ablation: conventional Hash-CAM searches the second table
			// regardless; forward and resolve there.
			f.forwardLU2(ls, pathID, true, slot)
			return
		}
		f.stats.Hits++
		if pathID == 0 {
			f.stats.HitsMem1++
		} else {
			f.stats.HitsMem2++
		}
		f.emit(now, d, Result{FID: f.fid(pathID, ls.bucket, slot), Hit: true, Stage: memStage(pathID)})
		f.unpin(d.key)
		return
	}

	if ls.lu == 1 {
		f.forwardLU2(ls, pathID, false, 0)
		return
	}
	// LU2 miss: final resolution.
	switch d.kind {
	case KindSearch, KindDelete:
		f.emit(now, d, Result{Hit: false, Stage: StageMiss})
		f.unpin(d.key)
	case KindLookup:
		f.insert(now, pathID, ls)
	}
}

// refetch re-queues a lookup whose image went stale. It enters the
// priority (LU2) queue so it does not starve behind fresh arrivals; per-key
// serialisation at the sequencer guarantees no same-flow request can
// overtake it.
func (f *FlowLUT) refetch(ls *lookupState, pathID int) {
	ls.issued = false
	ls.burstsGot = 0
	f.stats.Replays++
	if len(f.redirects[pathID]) > 0 || !f.paths[pathID].lu2Q.Push(ls) {
		f.redirects[pathID] = append(f.redirects[pathID], ls)
	}
}

// forwardLU2 redirects a request to the other path as LU2, carrying the
// first bucket image (and, for the early-exit ablation, the already-found
// match which resolves after the redundant second read).
func (f *FlowLUT) forwardLU2(ls *lookupState, pathID int, alreadyMatched bool, matchSlot int) {
	other := 1 - pathID
	lu2 := &lookupState{
		desc:        ls.desc,
		lu:          2,
		path:        other,
		bucket:      ls.desc.idx[other],
		firstBucket: ls.data,
		firstVer:    ls.ver,
	}
	// The known match (early-exit ablation) is re-found in firstBucket by
	// flowMatch on arrival; no extra state is carried.
	_, _ = alreadyMatched, matchSlot
	// Preserve FIFO order through the skid buffer: once anything is held,
	// all later redirects queue behind it.
	if len(f.redirects[other]) > 0 || !f.paths[other].lu2Q.Push(lu2) {
		f.redirects[other] = append(f.redirects[other], lu2)
	}
}

// insert is the update path: choose the emptier of the two observed
// buckets, overflow to the CAM when both are full, drop when the CAM is
// full too.
func (f *FlowLUT) insert(now sim.Cycle, lu2Path int, ls *lookupState) {
	d := ls.desc
	// Close the duplicate race: a racing packet may have staged this key
	// already.
	if fid, ok := f.recentKeys[string(d.key)]; ok {
		stage := f.stageOfFID(fid)
		f.stats.Hits++
		f.bumpStage(stage)
		f.emit(now, d, Result{FID: fid, Hit: true, Stage: stage})
		f.unpin(d.key)
		return
	}
	lu1Path := 1 - lu2Path
	images := [2][]byte{}
	images[lu2Path] = ls.data
	images[lu1Path] = ls.firstBucket

	type cand struct {
		path, bucket int
		image        []byte
		op           *bucketOp
		load         int
		free         int
		hasFree      bool
	}
	var cands [2]cand
	for i := 0; i < 2; i++ {
		p := f.paths[i]
		bucket := d.idx[i]
		op := p.pendingOps[bucket]
		image := images[i]
		if op != nil {
			image = op.data
		}
		free, hasFree := p.freeSlotInImage(image, op)
		cands[i] = cand{
			path: i, bucket: bucket, image: image, op: op,
			load: p.bucketLoad(image, op), free: free, hasFree: hasFree,
		}
	}
	pick := -1
	switch {
	case cands[0].hasFree && cands[1].hasFree:
		switch {
		case cands[0].load < cands[1].load:
			pick = 0
		case cands[1].load < cands[0].load:
			pick = 1
		default:
			pick = lu2Path // tie: stay local to the finishing path
		}
	case cands[0].hasFree:
		pick = 0
	case cands[1].hasFree:
		pick = 1
	}
	if pick >= 0 {
		c := cands[pick]
		f.paths[c.path].stageUpdate(now, c.bucket, c.free, c.image, d.key)
		fid := f.fid(c.path, c.bucket, c.free)
		f.remember(d.key, fid)
		f.stats.NewFlows++
		f.emit(now, d, Result{FID: fid, NewFlow: true, Stage: StageMiss})
		f.unpin(d.key)
		return
	}
	// Both buckets full: CAM overflow (on-chip, immediate).
	idx, err := f.cam.Insert(d.key, 0)
	if err != nil {
		f.stats.Dropped++
		f.emit(now, d, Result{Dropped: true, Stage: StageMiss})
		f.unpin(d.key)
		return
	}
	if _, err := f.cam.Insert(d.key, uint64(idx)); err != nil {
		panic("core: CAM value fixup failed") // entry was just placed
	}
	f.stats.NewFlows++
	f.emit(now, d, Result{FID: uint64(idx), NewFlow: true, Stage: StageMiss})
	f.unpin(d.key)
}

// remember records a freshly staged key→fid for the duplicate window.
func (f *FlowLUT) remember(key []byte, fid uint64) {
	k := string(key)
	if old := f.recentRing[f.recentPos]; old != "" {
		delete(f.recentKeys, old)
	}
	f.recentRing[f.recentPos] = k
	f.recentPos = (f.recentPos + 1) % len(f.recentRing)
	f.recentKeys[k] = fid
}

// fid encodes a location as a flow ID: CAM entries occupy [0, cam), path
// A's table the next block, then path B's.
func (f *FlowLUT) fid(pathID, bucket, slot int) uint64 {
	n := f.cfg.Buckets * f.cfg.SlotsPerBucket
	return uint64(f.cfg.CAMCapacity + pathID*n + bucket*f.cfg.SlotsPerBucket + slot)
}

// stageOfFID decodes the region a flow ID lives in.
func (f *FlowLUT) stageOfFID(fid uint64) Stage {
	camCap := uint64(f.cfg.CAMCapacity)
	n := uint64(f.cfg.Buckets * f.cfg.SlotsPerBucket)
	switch {
	case fid < camCap:
		return StageCAM
	case fid < camCap+n:
		return StageMem1
	default:
		return StageMem2
	}
}

// bumpStage increments the per-stage hit counter.
func (f *FlowLUT) bumpStage(s Stage) {
	switch s {
	case StageCAM:
		f.stats.HitsCAM++
	case StageMem1:
		f.stats.HitsMem1++
	case StageMem2:
		f.stats.HitsMem2++
	}
}

// memStage maps a path ID to its pipeline stage label.
func memStage(pathID int) Stage {
	if pathID == 0 {
		return StageMem1
	}
	return StageMem2
}

// emit finalises a result.
func (f *FlowLUT) emit(now sim.Cycle, d descriptor, r Result) {
	r.Seq = d.seq
	r.Kind = d.kind
	r.Latency = now - d.arrival
	f.stats.Processed++
	f.stats.LatencyTotal += r.Latency
	if r.Latency > f.stats.LatencyMax {
		f.stats.LatencyMax = r.Latency
	}
	f.results = append(f.results, r)
}

// CAMInUse exposes CAM occupancy.
func (f *FlowLUT) CAMInUse() int { return f.cam.InUse() }

// PathStats returns (lu1Issued, lu2Issued, filterHolds) for a path.
func (f *FlowLUT) PathStats(i int) (lu1, lu2, holds int64) {
	p := f.paths[i]
	return p.stats.lu1Issued, p.stats.lu2Issued, p.stats.filterHolds
}

// PathDRAMStats returns the DRAM activity counters of a path's channel.
func (f *FlowLUT) PathDRAMStats(i int) DRAMStats {
	st := f.paths[i].dev.Stats()
	ctrl := f.paths[i].ctrl.Stats()
	return DRAMStats{
		Reads:         st.Reads,
		Writes:        st.Writes,
		Activates:     st.Activates,
		Turnarounds:   st.Turnarounds,
		BusBusyCycles: st.BusBusyCycles,
		RowHits:       ctrl.RowHits,
		RowMisses:     ctrl.RowMisses,
		RowConflicts:  ctrl.RowConflicts,
	}
}

// DRAMStats summarises one channel's memory activity for reports.
type DRAMStats struct {
	Reads         int64
	Writes        int64
	Activates     int64
	Turnarounds   int64
	BusBusyCycles int64
	RowHits       int64
	RowMisses     int64
	RowConflicts  int64
}
