package core

import (
	"fmt"

	"repro/internal/sim"
)

// Kind classifies a request through the Flow LUT.
type Kind int

// Request kinds.
const (
	// KindLookup is flow processing: search, and insert on miss (the
	// first packet of a new flow creates its entry, §V-B).
	KindLookup Kind = iota + 1
	// KindSearch is a pure query: no insert on miss.
	KindSearch
	// KindDelete removes the flow if present (housekeeping's Del_req).
	KindDelete
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindSearch:
		return "search"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stage identifies where a request resolved, mirroring hashcam.Stage but
// local to the timed model.
type Stage int

// Resolution stages.
const (
	StageCAM Stage = iota + 1
	StageMem1
	StageMem2
	StageMiss
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageCAM:
		return "cam"
	case StageMem1:
		return "mem1"
	case StageMem2:
		return "mem2"
	case StageMiss:
		return "miss"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// descriptor is one packet descriptor moving through the pipeline.
type descriptor struct {
	seq  uint64
	kind Kind
	key  []byte
	// idx holds the two bucket indices; idx[0] indexes path A's table,
	// idx[1] path B's.
	idx [2]int
	// arrival is the bus cycle at which the descriptor entered the
	// sequencer, for latency accounting.
	arrival sim.Cycle
}

// Result reports the outcome of one request.
type Result struct {
	// Seq is the injection sequence number of the descriptor.
	Seq uint64
	// Kind echoes the request kind.
	Kind Kind
	// FID is the flow ID (location index) for hits and fresh inserts.
	FID uint64
	// Hit reports whether the key was found (for KindLookup, false means
	// the request inserted a new flow entry; NewFlow is then true).
	Hit bool
	// NewFlow reports that a lookup miss created an entry.
	NewFlow bool
	// Dropped reports an insert that failed because both buckets and the
	// CAM were full.
	Dropped bool
	// Stage is where the request resolved.
	Stage Stage
	// Latency is the arrival-to-resolution time in bus cycles.
	Latency sim.Cycle
}

// lookupState tracks one in-flight bucket read.
type lookupState struct {
	desc descriptor
	// lu is 1 for LU1 (first path) or 2 for LU2 (redirected).
	lu int
	// path is the path this lookup reads from (0 = A, 1 = B).
	path int
	// firstBucket carries the bucket contents observed by LU1, so the
	// update block can choose the emptier of the two buckets ("data are
	// redirected to the other path for a second lookup", with the update
	// decision taken after both reads).
	firstBucket []byte

	bucket    int
	burstsGot int
	data      []byte
	issued    bool

	// ver and firstVer capture the target buckets' update-version counters
	// at read-enqueue time; a mismatch at decision time means the image is
	// stale (an update drained while the read was in flight) and the
	// lookup must refetch — the replay half of the request filter's
	// "waiting list" (§IV-A).
	ver      uint64
	firstVer uint64
}
