package core

import (
	"bytes"
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// bucketOp is one pending table update (insert or delete) buffered in the
// burst write generator: a modified image of the target bucket plus the
// dirty-burst mask to write back.
type bucketOp struct {
	bucket     int
	data       []byte // full bucket image (bucketBursts × burstBytes)
	dirty      []bool // per burst
	createdAt  sim.Cycle
	flushed    bool
	writesLeft int
	// takenSlots marks slots assigned by this op (for merge decisions).
	takenSlots []bool
}

// path is one of the two symmetric lookup paths: DLU + Flow Match + Updt
// over a private DDR3 channel.
type path struct {
	id   int // 0 = A, 1 = B
	cfg  *Config
	dev  *dram.Device
	ctrl *memctrl.Controller

	// Bank selector queues (Fig. 4): LU2 requests (redirected from the
	// other path) take priority over fresh LU1s, since they are older.
	lu1Q *sim.Queue[*lookupState]
	lu2Q *sim.Queue[*lookupState]

	// outstanding maps controller tags to in-flight bucket reads.
	outstanding map[uint64]*lookupState
	nextTag     uint64
	lastBank    int
	qToggle     bool // round-robin arbitration between lu2Q and lu1Q

	// Update block state (Fig. 5): pendingOps is BWr_Gen's buffer keyed
	// by bucket; the request filter consults it to hold back lookups that
	// would race an update ("if one request is updating the memory while
	// another request is trying to access the same location", §IV-A).
	// opOrder holds the unflushed ops in creation order so flushes issue
	// writes deterministically (map iteration order would vary per run).
	pendingOps map[int]*bucketOp
	opOrder    []*bucketOp
	flushQ     []*bucketOp // ops being written out, awaiting completions
	writeTags  map[uint64]*bucketOp
	// bucketVersion counts staged updates per bucket; lookups capture it
	// at read-enqueue time to detect stale images.
	bucketVersion map[int]uint64

	stats pathStats
}

type pathStats struct {
	lu1Issued     int64
	lu2Issued     int64
	filterHolds   int64
	bankSwitches  int64
	flushes       int64
	opsWritten    int64
	lookupsServed int64
}

func newPath(id int, cfg *Config, clock *sim.Clock) (*path, error) {
	dev, err := dram.NewDevice(cfg.Timing, cfg.Geometry, clock)
	if err != nil {
		return nil, fmt.Errorf("core: path %d device: %w", id, err)
	}
	ctrl, err := memctrl.New(cfg.Ctrl, dev, clock)
	if err != nil {
		return nil, fmt.Errorf("core: path %d controller: %w", id, err)
	}
	return &path{
		id:            id,
		cfg:           cfg,
		dev:           dev,
		ctrl:          ctrl,
		lu1Q:          sim.NewQueue[*lookupState](cfg.PathQueueDepth),
		lu2Q:          sim.NewQueue[*lookupState](cfg.PathQueueDepth),
		outstanding:   make(map[uint64]*lookupState),
		pendingOps:    make(map[int]*bucketOp),
		writeTags:     make(map[uint64]*bucketOp),
		bucketVersion: make(map[int]uint64),
		lastBank:      -1,
	}, nil
}

// bucketBytes returns the byte size of one bucket.
func (p *path) bucketBytes() int { return p.cfg.SlotsPerBucket * p.cfg.EntryBytes }

// burstAddr returns the DRAM address of burst j of bucket b.
func (p *path) burstAddr(bucket, j int) dram.Addr {
	linear := int64(bucket)*int64(p.cfg.BucketBursts()) + int64(j)
	return p.cfg.Geometry.AddrOfBurst(linear, p.cfg.Timing.BL)
}

// bucketBank returns the bank of a bucket's first burst (buckets never
// straddle banks under the row:bank:col layout with power-of-two sizes).
func (p *path) bucketBank(bucket int) int {
	return p.burstAddr(bucket, 0).Bank
}

// filterBlocks implements the request filter: a lookup touching a bucket
// with a pending or in-flight update waits until the write has drained.
func (p *path) filterBlocks(bucket int) bool {
	_, busy := p.pendingOps[bucket]
	return busy
}

// selectLookup picks the next lookup to issue, honouring the request
// filter and the bank selector: fair round-robin between the LU2 and LU1
// queues (strict LU2 priority would let one path's misses starve the
// other path's fresh lookups), oldest-first within a queue, preferring a
// request that switches banks so consecutive row activates land in
// different banks. With the bank selector disabled the pick is strictly
// the queue head.
func (p *path) selectLookup() (*lookupState, *sim.Queue[*lookupState], int) {
	order := []*sim.Queue[*lookupState]{p.lu2Q, p.lu1Q}
	if p.qToggle {
		order[0], order[1] = order[1], order[0]
	}
	p.qToggle = !p.qToggle
	for _, q := range order {
		if q.Empty() {
			continue
		}
		if p.cfg.DisableBankSelector {
			head, _ := q.Peek()
			if p.filterBlocks(head.bucket) {
				p.stats.filterHolds++
				continue
			}
			return head, q, 0
		}
		firstOK := -1
		for i := 0; i < q.Len(); i++ {
			ls := q.At(i)
			if p.filterBlocks(ls.bucket) {
				p.stats.filterHolds++
				continue
			}
			if firstOK == -1 {
				firstOK = i
			}
			if p.bucketBank(ls.bucket) != p.lastBank {
				return ls, q, i
			}
		}
		if firstOK >= 0 {
			return q.At(firstOK), q, firstOK
		}
	}
	return nil, nil, 0
}

// issueLookups starts at most one bucket read per core cycle (the DLU's
// command port), enqueueing all of its bursts with one shared tag space.
func (p *path) issueLookups(now sim.Cycle) {
	ls, q, idx := p.selectLookup()
	if ls == nil {
		return
	}
	bursts := p.cfg.BucketBursts()
	// All bursts of a bucket read must fit the controller queue together,
	// so a lookup is never half-issued.
	reads, _ := p.ctrl.PendingRequests()
	if reads+bursts > p.cfg.Ctrl.ReadQueueDepth {
		return
	}
	q.RemoveAt(idx)
	ls.ver = p.bucketVersion[ls.bucket]
	bank := p.bucketBank(ls.bucket)
	if p.lastBank != -1 && bank != p.lastBank {
		p.stats.bankSwitches++
	}
	p.lastBank = bank
	ls.data = make([]byte, p.bucketBytes())
	for j := 0; j < bursts; j++ {
		p.nextTag++
		tag := p.nextTag
		if _, ok := p.ctrl.Enqueue(memctrl.Request{Tag: tag, Addr: p.burstAddr(ls.bucket, j)}); !ok {
			panic("core: controller rejected read after capacity check")
		}
		p.outstanding[tag] = ls
	}
	ls.issued = true
	ls.burstsGot = 0
	if ls.lu == 1 {
		p.stats.lu1Issued++
	} else {
		p.stats.lu2Issued++
	}
}

// drainCompletions consumes controller completions, returning lookups
// whose full bucket image has arrived.
func (p *path) drainCompletions() []*lookupState {
	var done []*lookupState
	burstBytes := p.cfg.Geometry.BurstBytes(p.cfg.Timing.BL)
	for {
		c, ok := p.ctrl.PopCompletion()
		if !ok {
			break
		}
		if c.IsWrite {
			op, ok := p.writeTags[c.Tag]
			if !ok {
				continue
			}
			delete(p.writeTags, c.Tag)
			op.writesLeft--
			if op.writesLeft == 0 && opClean(op) {
				// Update durable: release the request filter.
				delete(p.pendingOps, op.bucket)
				p.stats.opsWritten++
			}
			continue
		}
		ls, ok := p.outstanding[c.Tag]
		if !ok {
			continue
		}
		delete(p.outstanding, c.Tag)
		// Burst j is identified by its address offset within the bucket.
		linear := p.cfg.Geometry.BurstIndex(c.Addr, p.cfg.Timing.BL)
		j := int(linear) - ls.bucket*p.cfg.BucketBursts()
		copy(ls.data[j*burstBytes:], c.Data)
		ls.burstsGot++
		if ls.burstsGot == p.cfg.BucketBursts() {
			done = append(done, ls)
			p.stats.lookupsServed++
		}
	}
	return done
}

// matchBucket scans a bucket image for key, returning the slot.
func (p *path) matchBucket(data []byte, key []byte) (int, bool) {
	eb := p.cfg.EntryBytes
	for slot := 0; slot < p.cfg.SlotsPerBucket; slot++ {
		e := data[slot*eb : (slot+1)*eb]
		if e[0] != 0 && bytes.Equal(e[1:1+p.cfg.KeyLen], key) {
			return slot, true
		}
	}
	return 0, false
}

// freeSlotInImage returns the first free slot considering both the stored
// image and slots already taken by a pending op.
func (p *path) freeSlotInImage(data []byte, op *bucketOp) (int, bool) {
	eb := p.cfg.EntryBytes
	for slot := 0; slot < p.cfg.SlotsPerBucket; slot++ {
		if data[slot*eb] != 0 {
			continue
		}
		if op != nil && op.takenSlots[slot] {
			continue
		}
		return slot, true
	}
	return 0, false
}

// bucketLoad counts occupied slots in a bucket image (plus pending
// assignments).
func (p *path) bucketLoad(data []byte, op *bucketOp) int {
	eb := p.cfg.EntryBytes
	n := 0
	for slot := 0; slot < p.cfg.SlotsPerBucket; slot++ {
		if data[slot*eb] != 0 || (op != nil && op.takenSlots[slot]) {
			n++
		}
	}
	return n
}

// stageUpdate merges a slot modification into the path's update block and
// returns the op. writeEntry == nil clears the slot (deletion).
func (p *path) stageUpdate(now sim.Cycle, bucket, slot int, sourceImage []byte, key []byte) *bucketOp {
	op, ok := p.pendingOps[bucket]
	if !ok {
		op = &bucketOp{
			bucket:     bucket,
			data:       append([]byte(nil), sourceImage...),
			dirty:      make([]bool, p.cfg.BucketBursts()),
			createdAt:  now,
			takenSlots: make([]bool, p.cfg.SlotsPerBucket),
		}
		p.pendingOps[bucket] = op
		p.opOrder = append(p.opOrder, op)
	}
	p.bucketVersion[bucket]++
	eb := p.cfg.EntryBytes
	entry := op.data[slot*eb : (slot+1)*eb]
	for i := range entry {
		entry[i] = 0
	}
	if key != nil {
		entry[0] = 1
		copy(entry[1:], key)
		op.takenSlots[slot] = true
	}
	burstBytes := p.cfg.Geometry.BurstBytes(p.cfg.Timing.BL)
	op.dirty[slot*eb/burstBytes] = true
	// Merging into an op whose writes are already draining re-arms it so
	// the freshly dirtied burst is written too.
	if op.flushed {
		p.flushQ = append(p.flushQ, op)
	}
	return op
}

// opClean reports whether an op has no unissued dirty bursts.
func opClean(op *bucketOp) bool {
	for _, d := range op.dirty {
		if d {
			return false
		}
	}
	return true
}

// tickUpdt drives the burst write generator: flush ops whose count or age
// crosses the threshold, then feed flushed ops' write requests into the
// controller as queue capacity permits.
func (p *path) tickUpdt(now sim.Cycle) {
	// opOrder holds exactly the unflushed ops, oldest first.
	timeout := p.cfg.BWrTimeout * sim.Cycle(p.cfg.CoreClockRatio)
	if n := len(p.opOrder); n > 0 && (n >= p.cfg.BWrThreshold || now-p.opOrder[0].createdAt >= timeout) {
		for _, op := range p.opOrder {
			op.flushed = true
			p.flushQ = append(p.flushQ, op)
		}
		p.opOrder = p.opOrder[:0]
		p.stats.flushes++
	}
	// Issue write requests for flushed ops in flush order.
	burstBytes := p.cfg.Geometry.BurstBytes(p.cfg.Timing.BL)
	for len(p.flushQ) > 0 {
		op := p.flushQ[0]
		issuedAll := true
		for j := 0; j < p.cfg.BucketBursts(); j++ {
			if !op.dirty[j] {
				continue
			}
			if !p.ctrl.CanEnqueue(true) {
				issuedAll = false
				break
			}
			p.nextTag++
			tag := p.nextTag
			data := append([]byte(nil), op.data[j*burstBytes:(j+1)*burstBytes]...)
			if _, ok := p.ctrl.Enqueue(memctrl.Request{
				Tag: tag, Addr: p.burstAddr(op.bucket, j), IsWrite: true, Data: data,
			}); !ok {
				panic("core: controller rejected write after CanEnqueue")
			}
			op.dirty[j] = false
			op.writesLeft++
			p.writeTags[tag] = op
		}
		if !issuedAll {
			return
		}
		if op.writesLeft == 0 {
			// Nothing was dirty (delete of a slot that a merge re-cleared):
			// release immediately.
			delete(p.pendingOps, op.bucket)
		}
		p.flushQ = p.flushQ[1:]
	}
}

// busy reports whether the path holds any in-flight work.
func (p *path) busy() bool {
	return !p.lu1Q.Empty() || !p.lu2Q.Empty() ||
		len(p.outstanding) > 0 || len(p.pendingOps) > 0 || len(p.flushQ) > 0 ||
		!p.ctrl.Idle()
}
