package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/hashfn"
	"repro/internal/sim"
)

// countingHash counts Hash invocations; the timed model is single-threaded
// but atomics keep the wrapper reusable.
type countingHash struct {
	inner hashfn.Func
	calls atomic.Int64
}

func (c *countingHash) Hash(key []byte) uint64 { c.calls.Add(1); return c.inner.Hash(key) }
func (c *countingHash) Name() string           { return "counting(" + c.inner.Name() + ")" }

// TestFlowLUTSingleHashComputePerOfferedKey pins the timed model's end of
// the KeyHashes wiring: a full workload run — including input
// backpressure, where the harness re-offers the same descriptor over many
// cycles — evaluates H1 and H2 exactly once per work item. Before the
// wiring, every rejected injection attempt rehashed the key, charging the
// model for hash work the hardware sequencer never repeats.
func TestFlowLUTSingleHashComputePerOfferedKey(t *testing.T) {
	h1 := &countingHash{inner: &hashfn.Mix64{Seed: 1}}
	h2 := &countingHash{inner: &hashfn.Mix64{Seed: 2}}
	cfg := smallConfig()
	cfg.Hash = hashfn.Pair{H1: h1, H2: h2}
	// A shallow input queue under flat-out injection guarantees rejections.
	cfg.InputQueueDepth = 2
	f, sched, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates, misses, deletes: every descriptor kind crosses the
	// sequencer; none may trigger a second hash pass anywhere downstream.
	var items []WorkItem
	for i := 0; i < 300; i++ {
		switch i % 5 {
		case 0, 1, 2:
			items = append(items, WorkItem{Kind: KindLookup, Key: key13(uint64(i % 40))})
		case 3:
			items = append(items, WorkItem{Kind: KindSearch, Key: key13(uint64(i % 60))})
		default:
			items = append(items, WorkItem{Kind: KindDelete, Key: key13(uint64(i % 40))})
		}
	}
	report, err := RunWorkload(f, sched, items, 1, sim.Cycle(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if report.Stats.Rejected == 0 {
		t.Fatal("workload saw no backpressure; the retry path went unexercised")
	}
	want := int64(len(items))
	if got1, got2 := h1.calls.Load(), h2.calls.Load(); got1 != want || got2 != want {
		t.Fatalf("%d H1 / %d H2 evaluations for %d work items (%d rejections); want exactly one H1+H2 compute per item",
			got1, got2, want, report.Stats.Rejected)
	}
}

// TestOfferKeyHashesMatchesOffer pins bit-identity of the precomputed-hash
// entry point: the same key must land in the same buckets (and therefore
// resolve identically) whether the model hashes it or the caller did.
func TestOfferKeyHashesMatchesOffer(t *testing.T) {
	cfg := smallConfig()
	fA, schedA, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fB, schedB, err := NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(0); i < n; i++ {
		k := key13(i % 50)
		if !fA.Offer(KindLookup, k) {
			t.Fatalf("offer %d rejected", i)
		}
		if !fB.OfferKeyHashes(KindLookup, k, cfg.Hash.Compute(k)) {
			t.Fatalf("offer-kh %d rejected", i)
		}
		schedA.Run(64)
		schedB.Run(64)
	}
	drain := func(f *FlowLUT, sched *sim.Scheduler) []Result {
		_, ok := sched.RunUntil(func() bool { return f.Idle() }, 1_000_000)
		if !ok {
			t.Fatal("pipeline did not drain")
		}
		var out []Result
		for {
			r, popped := f.PopResult()
			if !popped {
				return out
			}
			out = append(out, r)
		}
	}
	ra, rb := drain(fA, schedA), drain(fB, schedB)
	if len(ra) != n || len(rb) != n {
		t.Fatalf("resolved %d / %d results, want %d each", len(ra), len(rb), n)
	}
	for i := range ra {
		if ra[i].FID != rb[i].FID || ra[i].Hit != rb[i].Hit || ra[i].Stage != rb[i].Stage ||
			ra[i].NewFlow != rb[i].NewFlow {
			t.Fatalf("result %d diverged: Offer %+v vs OfferKeyHashes %+v", i, ra[i], rb[i])
		}
	}
}
