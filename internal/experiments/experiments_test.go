package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestFig3ReproducesPaperAnchors pins the published endpoints: 20% DQ
// utilisation at one burst per direction, ~90% at 35, monotone growth.
func TestFig3ReproducesPaperAnchors(t *testing.T) {
	points, err := Fig3(35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(points[0].Utilisation-0.20) > 0.02 {
		t.Fatalf("utilisation at 1 burst = %.3f, paper says 0.20", points[0].Utilisation)
	}
	last := points[len(points)-1]
	if math.Abs(last.Utilisation-0.90) > 0.03 {
		t.Fatalf("utilisation at 35 bursts = %.3f, paper says ~0.90", last.Utilisation)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Utilisation < points[i-1].Utilisation-0.01 {
			t.Fatalf("utilisation not monotone at %d bursts: %.3f after %.3f",
				points[i].Bursts, points[i].Utilisation, points[i-1].Utilisation)
		}
	}
	out := Fig3Table(points).String()
	if !strings.Contains(out, "20%") || !strings.Contains(out, "~90%") {
		t.Fatal("rendered table missing paper anchors")
	}
}

func TestTable1Report(t *testing.T) {
	r := Table1()
	if r.CapacityFlows < 8<<20 {
		t.Fatalf("prototype capacity = %d, want >= 8Mi flows", r.CapacityFlows)
	}
}

// TestTable2BShape verifies the paper's qualitative result at quick scale:
// rate decreases monotonically with miss rate, and the 100%-miss rate is
// roughly half the 0%-miss rate (paper: 46.90 vs 96.92).
func TestTable2BShape(t *testing.T) {
	rows, err := Table2B(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MissRate >= rows[i-1].MissRate && rows[i].Rate < rows[i-1].Rate {
			t.Fatalf("rows out of order: %+v", rows)
		}
	}
	// Rows are ordered 100% ... 0% miss; rate must increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rate <= rows[i-1].Rate {
			t.Fatalf("rate not increasing as miss rate falls: %+v", rows)
		}
	}
	ratio := rows[0].Rate / rows[len(rows)-1].Rate
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("100%%-miss / 0%%-miss ratio = %.2f, paper ratio is 0.48", ratio)
	}
}

// TestTable2AShape verifies the load-balance result: forcing all first
// lookups through one path is slower than an even split.
func TestTable2AShape(t *testing.T) {
	rows, err := Table2A(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	even := rows[1] // bank increment, 50%
	skew := rows[3] // bank increment, 0%
	if skew.Rate >= even.Rate {
		t.Fatalf("0%% load-A rate %.2f not below 50%% rate %.2f (paper: 36.53 < 44.59)",
			skew.Rate, even.Rate)
	}
	if skew.LoadA > 0.01 {
		t.Fatalf("0%%-load run sent %.1f%% of LU1s to path A", 100*skew.LoadA)
	}
	if even.LoadA < 0.4 || even.LoadA > 0.6 {
		t.Fatalf("50%%-load run measured %.1f%% load A", 100*even.LoadA)
	}
}

func TestFig6CurveMatchesAnchors(t *testing.T) {
	points, err := Fig6([]int64{1000, 10000, 50000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(points[0].Ratio-0.57) > 0.05 {
		t.Fatalf("B/A at 1k = %.3f, paper says 0.57", points[0].Ratio)
	}
	if math.Abs(points[1].Ratio-0.3381) > 0.05 {
		t.Fatalf("B/A at 10k = %.3f, paper says 0.3381", points[1].Ratio)
	}
}

func TestDiscussionRows(t *testing.T) {
	rows := Discussion([]Table2BRow{{MissRate: 0.5, Rate: 79}, {MissRate: 0.25, Rate: 92}})
	out := DiscussionTable(rows).String()
	for _, want := range []string{"59.52", "68.49", "70.16", "Netronome"} {
		if !strings.Contains(out, want) {
			t.Fatalf("discussion table missing %q:\n%s", want, out)
		}
	}
}

// TestAblationEarlyExit pins the §III-A design claim: early exit beats
// the conventional simultaneous search on hit-heavy traffic.
func TestAblationEarlyExit(t *testing.T) {
	rows, err := AblationEarlyExit(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Rate <= rows[1].Rate {
		t.Fatalf("early exit (%.2f) not faster than simultaneous (%.2f)",
			rows[0].Rate, rows[1].Rate)
	}
}

func TestAblationBurstWriteRuns(t *testing.T) {
	rows, err := AblationBurstWrite(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Fatalf("non-positive rate: %+v", r)
		}
	}
}

func TestAblationBankSelectorRuns(t *testing.T) {
	rows, err := AblationBankSelector(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Rate <= 0 || rows[1].Rate <= 0 {
		t.Fatalf("rates: %+v", rows)
	}
}

func TestAblationBucketSlotsShape(t *testing.T) {
	rows, err := AblationBucketSlots(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// More slots per bucket -> more bursts per lookup -> no faster.
	if rows[2].Rate > rows[0].Rate*1.1 {
		t.Fatalf("K=8 (%.2f) unexpectedly faster than K=2 (%.2f)", rows[2].Rate, rows[0].Rate)
	}
}
