// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV-§V) from the models in this repository. Each experiment
// returns structured rows plus a rendered paper-style table with the
// paper's published value alongside the measured one, and is shared by
// cmd/flowbench and the root benchmark suite.
package experiments

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// Fig3Point is one point of Fig. 3: DQ bandwidth utilisation for N
// consecutive read bursts alternating with N write bursts on an open row.
type Fig3Point struct {
	Bursts      int
	Utilisation float64
}

// Fig3 sweeps the burst-group size on a raw DDR3-1066E device, as the
// paper computes its Fig. 3 from the Micron datasheet. Refresh is not
// modelled here (nor in the paper's calculation).
func Fig3(maxBursts int) ([]Fig3Point, error) {
	if maxBursts <= 0 {
		return nil, fmt.Errorf("experiments: maxBursts must be positive, got %d", maxBursts)
	}
	out := make([]Fig3Point, 0, maxBursts)
	for n := 1; n <= maxBursts; n++ {
		util, err := fig3Utilisation(n)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Point{Bursts: n, Utilisation: util})
	}
	return out, nil
}

func fig3Utilisation(groupSize int) (float64, error) {
	clock := sim.NewClock()
	dev, err := dram.NewDevice(dram.DDR31066E(), dram.PrototypeGeometry(), clock)
	if err != nil {
		return 0, err
	}
	row := dram.Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(row)
	data := make([]byte, dev.Geometry().BurstBytes(dev.Timing().BL))

	wait := func(cmd dram.Command, a dram.Addr) {
		for !dev.CanIssue(cmd, a) {
			clock.Advance()
		}
	}
	// Warm up one full group period, then measure over whole periods so
	// start-up transients do not bias short groups.
	const periods = 40
	var start sim.Cycle
	var startBusy int64
	for p := 0; p < periods+1; p++ {
		if p == 1 {
			start = clock.Now()
			startBusy = dev.Stats().BusBusyCycles
		}
		for i := 0; i < groupSize; i++ {
			col := (i % 64) * 8
			a := dram.Addr{Bank: 0, Row: 0, Col: col}
			wait(dram.CmdRead, a)
			dev.Read(a)
		}
		for i := 0; i < groupSize; i++ {
			col := 512 + (i%64)*8
			a := dram.Addr{Bank: 0, Row: 0, Col: col}
			wait(dram.CmdWrite, a)
			dev.Write(a, data)
		}
	}
	wait(dram.CmdRead, row) // close the final period at the next RD slot
	elapsed := float64(clock.Now() - start)
	busy := float64(dev.Stats().BusBusyCycles - startBusy)
	return busy / elapsed, nil
}

// Fig3Table renders the sweep with the paper's two published anchors.
func Fig3Table(points []Fig3Point) *metrics.Table {
	t := metrics.NewTable("Fig. 3 — DQ bandwidth utilisation vs. RD/WR burst group size (DDR3-1066E, BL8, open row)",
		"Bursts", "Utilisation", "Paper")
	for _, p := range points {
		paper := ""
		switch p.Bursts {
		case 1:
			paper = "20%"
		case 35:
			paper = "~90%"
		}
		t.AddRow(fmt.Sprintf("%d", p.Bursts), fmt.Sprintf("%.1f%%", 100*p.Utilisation), paper)
	}
	return t
}

// Table1 returns the resource model report for the prototype-scale
// configuration — the substitute for the paper's FPGA resource table
// (see DESIGN.md §2).
func Table1() resource.Report {
	return resource.Compute(resource.PrototypeConfig())
}

// Table2ARow is one row of Table II(A).
type Table2ARow struct {
	Description string
	LoadA       float64
	Rate        float64 // Mdesc/s (simulated)
	PaperLoadA  float64
	PaperRate   float64
}

// Table2AScale sizes the experiment (descriptors per row).
type Scale struct {
	Descriptors int
	// Buckets overrides the table geometry (0 = default).
	Buckets int
	// InjectPeriod is bus cycles between injections (8 = the paper's
	// 100 MHz input ceiling at the 800 MHz bus clock).
	InjectPeriod int64
}

// DefaultScale mirrors the paper: 10 k inputs at up to 100 MHz.
func DefaultScale() Scale {
	return Scale{Descriptors: 10000, InjectPeriod: 8}
}

// QuickScale is a fast variant for unit tests and smoke benches.
func QuickScale() Scale {
	return Scale{Descriptors: 1500, InjectPeriod: 8}
}

func (s Scale) config() core.Config {
	cfg := core.DefaultConfig()
	if s.Buckets > 0 {
		cfg.Buckets = s.Buckets
	}
	return cfg
}

// Table2A reproduces the hash-pattern and load-balance sweep of
// Table II(A): all-miss traffic driven by raw hash patterns.
func Table2A(s Scale) ([]Table2ARow, error) {
	type variant struct {
		name      string
		queries   []trafficgen.HashQuery
		balancer  core.BalancerPolicy
		loadA     float64
		paperLoad float64
		paperRate float64
	}
	cfg := s.config()
	banks := cfg.Geometry.Banks
	variants := []variant{
		{"Random hash", trafficgen.RandomHashes(s.Descriptors, cfg.Buckets, 3), core.BalancerAdaptive, 0.5, 50.8, 44.05},
		{"Bank increment, 50% load A", trafficgen.BankIncrementHashes(s.Descriptors, cfg.Buckets, banks, 3), core.BalancerFixed, 0.5, 50.0, 44.59},
		{"Bank increment, 25% load A", trafficgen.BankIncrementHashes(s.Descriptors, cfg.Buckets, banks, 3), core.BalancerFixed, 0.25, 25.0, 41.09},
		{"Bank increment, 0% load A", trafficgen.BankIncrementHashes(s.Descriptors, cfg.Buckets, banks, 3), core.BalancerFixed, 0, 0, 36.53},
	}
	out := make([]Table2ARow, 0, len(variants))
	for _, v := range variants {
		vcfg := cfg
		vcfg.Balancer = v.balancer
		vcfg.FixedLoadA = v.loadA
		f, sched, err := core.NewRig(vcfg)
		if err != nil {
			return nil, err
		}
		items := make([]core.WorkItem, len(v.queries))
		for i, q := range v.queries {
			key := make([]byte, vcfg.KeyLen)
			binary.LittleEndian.PutUint64(key, uint64(i))
			items[i] = core.WorkItem{
				Kind: core.KindLookup, Key: key,
				PreHashed: true, Index1: q.Index1, Index2: q.Index2,
			}
		}
		rep, err := core.RunWorkload(f, sched, items, s.InjectPeriod, 2_000_000_000)
		if err != nil {
			return nil, fmt.Errorf("experiments: table II(A) %q: %w", v.name, err)
		}
		out = append(out, Table2ARow{
			Description: v.name,
			LoadA:       rep.Stats.LoadFractionA(),
			Rate:        rep.MDescPerSec,
			PaperLoadA:  v.paperLoad,
			PaperRate:   v.paperRate,
		})
	}
	return out, nil
}

// Table2ATable renders the rows.
func Table2ATable(rows []Table2ARow) *metrics.Table {
	t := metrics.NewTable("Table II(A) — processing rate with defined hash patterns",
		"Test", "Load-path A", "Rate (Mdesc/s)", "Paper load", "Paper rate")
	for _, r := range rows {
		t.AddRow(r.Description,
			fmt.Sprintf("%.1f%%", 100*r.LoadA),
			fmt.Sprintf("%.2f", r.Rate),
			fmt.Sprintf("%.1f%%", r.PaperLoadA),
			fmt.Sprintf("%.2f", r.PaperRate))
	}
	return t
}

// Table2BRow is one row of Table II(B).
type Table2BRow struct {
	MissRate  float64
	Rate      float64
	PaperRate float64
}

// Table2B reproduces the flow-miss-rate sweep: a table pre-occupied with
// residentCount 5-tuple entries queried at controlled match rates.
func Table2B(s Scale) ([]Table2BRow, error) {
	paper := map[int]float64{100: 46.90, 75: 54.97, 50: 70.16, 25: 94.36, 0: 96.92}
	out := make([]Table2BRow, 0, 5)
	for _, missPct := range []int{100, 75, 50, 25, 0} {
		cfg := s.config()
		resident, query := trafficgen.MatchRateSet(s.Descriptors, s.Descriptors,
			1-float64(missPct)/100, 7)
		f, sched, err := core.NewRig(cfg)
		if err != nil {
			return nil, err
		}
		pre := make([]core.WorkItem, len(resident))
		for i, k := range resident {
			pre[i] = core.WorkItem{Kind: core.KindLookup, Key: k}
		}
		if _, err := core.RunWorkload(f, sched, pre, s.InjectPeriod, 2_000_000_000); err != nil {
			return nil, fmt.Errorf("experiments: table II(B) pre-populate: %w", err)
		}
		items := make([]core.WorkItem, len(query))
		for i, k := range query {
			items[i] = core.WorkItem{Kind: core.KindLookup, Key: k}
		}
		rep, err := core.RunWorkload(f, sched, items, s.InjectPeriod, 2_000_000_000)
		if err != nil {
			return nil, fmt.Errorf("experiments: table II(B) miss=%d%%: %w", missPct, err)
		}
		out = append(out, Table2BRow{
			MissRate:  float64(missPct) / 100,
			Rate:      rep.MDescPerSec,
			PaperRate: paper[missPct],
		})
	}
	return out, nil
}

// Table2BTable renders the rows.
func Table2BTable(rows []Table2BRow) *metrics.Table {
	t := metrics.NewTable("Table II(B) — processing rate vs. flow miss rate (table pre-occupied, 5-tuple descriptors)",
		"Miss rate", "Rate (Mdesc/s)", "Paper rate")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*r.MissRate),
			fmt.Sprintf("%.2f", r.Rate),
			fmt.Sprintf("%.2f", r.PaperRate))
	}
	return t
}

// Fig6Point is one point of the new-flow-ratio curve.
type Fig6Point struct {
	Packets  int64
	Ratio    float64
	PaperRef string
}

// Fig6 measures the new-flow ratio (B/A) of the calibrated synthetic
// trace at the given packet-set sizes.
func Fig6(sizes []int64) ([]Fig6Point, error) {
	curve, err := trafficgen.NewFlowCurve(trafficgen.DefaultZipfConfig(), sizes)
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Point, len(sizes))
	for i, size := range sizes {
		ref := ""
		switch size {
		case 1000:
			ref = "57%"
		case 10000:
			ref = "33.81%"
		}
		out[i] = Fig6Point{Packets: size, Ratio: curve[i], PaperRef: ref}
	}
	return out, nil
}

// Fig6Table renders the curve.
func Fig6Table(points []Fig6Point) *metrics.Table {
	t := metrics.NewTable("Fig. 6 — new-flow ratio B/A vs. packet-set size (calibrated synthetic trace)",
		"Packets", "B/A", "Paper")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Packets), fmt.Sprintf("%.2f%%", 100*p.Ratio), p.PaperRef)
	}
	return t
}

// DiscussionRow is one line of the §V-B line-rate arithmetic.
type DiscussionRow struct {
	Label string
	Value string
	Paper string
}

// Discussion reproduces the §V-B arithmetic, tying measured rates to
// Ethernet line rates, optionally reusing measured Table II(B) rows.
func Discussion(t2b []Table2BRow) []DiscussionRow {
	rows := []DiscussionRow{
		{
			Label: "40GbE requirement, 12-byte IFG",
			Value: fmt.Sprintf("%.2f Mpps", 40e9/((72+12)*8)/1e6),
			Paper: "59.52 Mpps",
		},
		{
			Label: "40GbE requirement, 1-byte IFG (worst case)",
			Value: fmt.Sprintf("%.2f Mpps", 40e9/((72+1)*8)/1e6),
			Paper: "68.49 Mpps",
		},
	}
	for _, r := range t2b {
		if r.MissRate == 0.5 {
			rows = append(rows, DiscussionRow{
				Label: "Measured rate at 50% miss (≥70 Mpps claim)",
				Value: fmt.Sprintf("%.2f Mdesc/s", r.Rate),
				Paper: "70.16 Mdesc/s",
			})
		}
		if r.MissRate == 0.25 {
			rows = append(rows, DiscussionRow{
				Label: "Warm 8M-flow table (≤2% miss) rate bound",
				Value: fmt.Sprintf(">= %.2f Mdesc/s -> %.1f Gbps", r.Rate, metrics.GbpsAtMinPacket(r.Rate, 12)),
				Paper: ">94 Mdesc/s -> >50 Gbps",
			})
		}
	}
	rows = append(rows,
		DiscussionRow{Label: "Cisco Cat6500 Sup2T-XL (datasheet)", Value: "1M flow entries", Paper: "1M flows"},
		DiscussionRow{Label: "Netronome NFP3240 (datasheet)", Value: "8M flows @ 20 Gbps", Paper: "8M flows, 20 Gbps"},
	)
	return rows
}

// DiscussionTable renders the rows.
func DiscussionTable(rows []DiscussionRow) *metrics.Table {
	t := metrics.NewTable("§V-B — line-rate discussion", "Quantity", "This model", "Paper")
	for _, r := range rows {
		t.AddRow(r.Label, r.Value, r.Paper)
	}
	return t
}
