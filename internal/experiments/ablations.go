package experiments

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trafficgen"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name string
	Rate float64 // Mdesc/s (simulated)
	Note string
}

// AblationEarlyExit compares the pipelined early-exit lookup against the
// conventional simultaneous Hash-CAM cost contract ([10][11]) on a
// hit-heavy workload — the design choice of §III-A.
func AblationEarlyExit(s Scale) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 2)
	for _, disable := range []bool{false, true} {
		cfg := s.config()
		cfg.DisableEarlyExit = disable
		rate, err := hitWorkloadRate(cfg, s)
		if err != nil {
			return nil, err
		}
		name := "early-exit pipeline (proposed)"
		note := "misses pay both reads; hits stop early"
		if disable {
			name = "simultaneous search (conventional)"
			note = "every lookup pays both memory reads"
		}
		rows = append(rows, AblationRow{Name: name, Rate: rate, Note: note})
	}
	return rows, nil
}

// AblationBankSelector measures what the DLU's bank reordering buys on
// random traffic (§IV-A).
func AblationBankSelector(s Scale) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 2)
	for _, disable := range []bool{false, true} {
		cfg := s.config()
		cfg.DisableBankSelector = disable
		rate, err := missWorkloadRate(cfg, s)
		if err != nil {
			return nil, err
		}
		name := "bank selector on (proposed)"
		note := "pending lookups reordered across banks"
		if disable {
			name = "bank selector off (in-order)"
			note = "strict FIFO issue"
		}
		rows = append(rows, AblationRow{Name: name, Rate: rate, Note: note})
	}
	return rows, nil
}

// AblationBurstWrite sweeps the burst write generator threshold (§IV-B):
// 1 means every update writes immediately (no grouping).
func AblationBurstWrite(s Scale) ([]AblationRow, error) {
	var rows []AblationRow
	for _, threshold := range []int{1, 4, 8, 16} {
		cfg := s.config()
		cfg.BWrThreshold = threshold
		rate, err := missWorkloadRate(cfg, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("BWr_Gen threshold %d", threshold),
			Rate: rate,
			Note: map[bool]string{true: "no write grouping", false: "grouped writes"}[threshold == 1],
		})
	}
	return rows, nil
}

// AblationBucketSlots sweeps K, the entries per hash location (Fig. 1).
func AblationBucketSlots(s Scale) ([]AblationRow, error) {
	var rows []AblationRow
	for _, k := range []int{2, 4, 8} {
		cfg := s.config()
		cfg.SlotsPerBucket = k
		rate, err := missWorkloadRate(cfg, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("K = %d slots/bucket (%d bursts)", k, cfg.BucketBursts()),
			Rate: rate,
			Note: "larger buckets cost more bus cycles per lookup",
		})
	}
	return rows, nil
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) *metrics.Table {
	t := metrics.NewTable(title, "Configuration", "Rate (Mdesc/s)", "Note")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.2f", r.Rate), r.Note)
	}
	return t
}

// hitWorkloadRate pre-populates then queries the same keys (100% hits).
func hitWorkloadRate(cfg core.Config, s Scale) (float64, error) {
	f, sched, err := core.NewRig(cfg)
	if err != nil {
		return 0, err
	}
	resident, _ := trafficgen.MatchRateSet(s.Descriptors, 1, 1, 7)
	pre := make([]core.WorkItem, len(resident))
	for i, k := range resident {
		pre[i] = core.WorkItem{Kind: core.KindLookup, Key: k}
	}
	if _, err := core.RunWorkload(f, sched, pre, s.InjectPeriod, 2_000_000_000); err != nil {
		return 0, err
	}
	items := make([]core.WorkItem, 0, s.Descriptors)
	rng := trafficgen.RandomHashes(s.Descriptors, len(resident), 11)
	for _, q := range rng {
		items = append(items, core.WorkItem{Kind: core.KindSearch, Key: resident[q.Index1]})
	}
	rep, err := core.RunWorkload(f, sched, items, s.InjectPeriod, 2_000_000_000)
	if err != nil {
		return 0, err
	}
	return rep.MDescPerSec, nil
}

// missWorkloadRate drives unique keys (all-miss insert traffic).
func missWorkloadRate(cfg core.Config, s Scale) (float64, error) {
	f, sched, err := core.NewRig(cfg)
	if err != nil {
		return 0, err
	}
	items := make([]core.WorkItem, s.Descriptors)
	for i := range items {
		key := make([]byte, cfg.KeyLen)
		binary.LittleEndian.PutUint64(key, uint64(i))
		items[i] = core.WorkItem{Kind: core.KindLookup, Key: key}
	}
	rep, err := core.RunWorkload(f, sched, items, s.InjectPeriod, 2_000_000_000)
	if err != nil {
		return 0, err
	}
	return rep.MDescPerSec, nil
}
