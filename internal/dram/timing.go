// Package dram models a DDR3 SDRAM device at cycle granularity: eight
// banks with row state machines, JEDEC inter-command timing constraints,
// burst-oriented data transfers on a shared DQ bus, and a sparse backing
// store for the actual contents.
//
// This package is the substitution for the Micron DDR3 DIMMs attached to
// the paper's FPGA prototype (see DESIGN.md §2). Everything the paper's
// architecture exploits — bank-level parallelism, row cycle times,
// read/write bus-turnaround penalties, burst grouping — is represented
// here, so the scheduling blocks built on top face the same trade-offs the
// hardware did.
//
// Time is measured in DDR3 I/O bus clock cycles (sim.Cycle). A BL8 burst
// transfers 8 beats = BL/2 = 4 bus cycles of DQ occupancy.
package dram

import "fmt"

// Timing holds the inter-command constraints of a DDR3 speed grade, all in
// bus clock cycles except TCKps. The fields follow JEDEC DDR3 naming.
type Timing struct {
	// Name identifies the preset (e.g. "DDR3-1066E (-187E)").
	Name string
	// TCKps is the bus clock period in picoseconds.
	TCKps int64

	CL  int64 // CAS (read) latency: RD command to first data beat
	CWL int64 // CAS write latency: WR command to first data beat
	AL  int64 // additive latency (0 in both presets)

	TRCD int64 // ACT to internal RD/WR
	TRP  int64 // PRE to ACT, same bank
	TRAS int64 // ACT to PRE, same bank (minimum row-open time)
	TRC  int64 // ACT to ACT, same bank (row cycle time)
	TRRD int64 // ACT to ACT, different banks
	TFAW int64 // four-activate window
	TWR  int64 // end of write data to PRE (write recovery)
	TWTR int64 // end of write data to RD command (internal turnaround)
	TRTP int64 // RD command to PRE
	TCCD int64 // RD-to-RD / WR-to-WR, any bank (burst gap)

	TREFI int64 // average refresh interval
	TRFC  int64 // refresh cycle time

	BL int64 // burst length in beats (8 throughout this repository)

	// ReadToWritePad and WriteToReadPad are extra bubble cycles charged on
	// every RD→WR / WR→RD bus-direction change, beyond the JEDEC minimum.
	// They model controller-level overheads the paper's quarter-rate Altera
	// UniPhy controller exhibits (command-slot quantisation, ODT switching)
	// and are calibrated so the Fig. 3 endpoints reproduce (see
	// EXPERIMENTS.md, "Fig. 3 calibration").
	ReadToWritePad int64
	WriteToReadPad int64
}

// RL returns the read latency (AL + CL).
func (t *Timing) RL() int64 { return t.AL + t.CL }

// WL returns the write latency (AL + CWL).
func (t *Timing) WL() int64 { return t.AL + t.CWL }

// BurstCycles returns the DQ occupancy of one burst in bus cycles (BL/2).
func (t *Timing) BurstCycles() int64 { return t.BL / 2 }

// ReadToWriteGap returns the minimum RD-command to WR-command spacing that
// keeps the shared DQ bus conflict-free when the bus direction turns
// around: RL − WL + BL/2 + 2 plus the calibration pad.
func (t *Timing) ReadToWriteGap() int64 {
	return t.RL() - t.WL() + t.BurstCycles() + 2 + t.ReadToWritePad
}

// WriteToReadGap returns the minimum WR-command to RD-command spacing:
// CWL + BL/2 + tWTR plus the calibration pad.
func (t *Timing) WriteToReadGap() int64 {
	return t.WL() + t.BurstCycles() + t.TWTR + t.WriteToReadPad
}

// Validate reports an error when the timing parameters are internally
// inconsistent (e.g. tRC shorter than tRAS+tRP, or a zero burst length).
func (t *Timing) Validate() error {
	switch {
	case t.TCKps <= 0:
		return fmt.Errorf("dram: %s: TCKps must be positive, got %d", t.Name, t.TCKps)
	case t.BL != 4 && t.BL != 8:
		return fmt.Errorf("dram: %s: BL must be 4 or 8, got %d", t.Name, t.BL)
	case t.CL <= 0 || t.CWL <= 0:
		return fmt.Errorf("dram: %s: CL/CWL must be positive (CL=%d CWL=%d)", t.Name, t.CL, t.CWL)
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: %s: tRC (%d) < tRAS+tRP (%d)", t.Name, t.TRC, t.TRAS+t.TRP)
	case t.TRCD <= 0 || t.TRP <= 0 || t.TRAS <= 0:
		return fmt.Errorf("dram: %s: tRCD/tRP/tRAS must be positive", t.Name)
	case t.TCCD < t.BurstCycles():
		return fmt.Errorf("dram: %s: tCCD (%d) < burst cycles (%d)", t.Name, t.TCCD, t.BurstCycles())
	case t.TREFI <= 0 || t.TRFC <= 0:
		return fmt.Errorf("dram: %s: tREFI/tRFC must be positive", t.Name)
	case t.ReadToWritePad < 0 || t.WriteToReadPad < 0:
		return fmt.Errorf("dram: %s: turnaround pads must be non-negative", t.Name)
	}
	return nil
}

// DDR31066E returns the Micron DDR3-1066 (-187E) speed grade the paper uses
// for its Fig. 3 bandwidth analysis (1 Gb parts, datasheet [12] in the
// paper). Bus clock 533 MHz, tCK = 1.875 ns.
//
// The turnaround pads are calibrated so that the alternating-burst
// experiment of Fig. 3 reproduces the paper's published endpoints: 20 %
// DQ utilisation at 1 burst per direction and ~90 % at 35. The JEDEC
// minimum gaps alone (7 + 14 cycles) predict 38 % at 1 burst; the paper's
// quarter-rate controller rounds command slots to 4-cycle groups and pays
// ODT switching, which the pads absorb (8 + 11 extra cycles).
func DDR31066E() Timing {
	return Timing{
		Name:  "DDR3-1066E (-187E)",
		TCKps: 1875,
		CL:    7,
		CWL:   6,
		TRCD:  7,  // 13.125 ns
		TRP:   7,  // 13.125 ns
		TRAS:  20, // 37.5 ns
		TRC:   27, // 50.625 ns
		TRRD:  4,  // 7.5 ns
		TFAW:  20, // 37.5 ns (x8 organisation)
		TWR:   8,  // 15 ns
		TWTR:  4,  // 7.5 ns
		TRTP:  4,  // 7.5 ns
		TCCD:  4,
		TREFI: 4160, // 7.8 us
		TRFC:  59,   // 110 ns (1 Gb)
		BL:    8,

		ReadToWritePad: 8,
		WriteToReadPad: 11,
	}
}

// DDR31600 returns an 800 MHz-bus-clock speed grade matching the paper's
// prototype configuration ("memory I/O bus clock frequency of 800 MHz",
// quarter-rate controller, 200 MHz user clock). tCK = 1.25 ns.
func DDR31600() Timing {
	return Timing{
		Name:  "DDR3-1600K",
		TCKps: 1250,
		CL:    11,
		CWL:   8,
		TRCD:  11, // 13.75 ns
		TRP:   11, // 13.75 ns
		TRAS:  28, // 35 ns
		TRC:   39, // 48.75 ns
		TRRD:  6,  // 7.5 ns
		TFAW:  32, // 40 ns (x8 organisation)
		TWR:   12, // 15 ns
		TWTR:  6,  // 7.5 ns
		TRTP:  6,  // 7.5 ns
		TCCD:  4,
		TREFI: 6240, // 7.8 us
		TRFC:  88,   // 110 ns (1 Gb)
		BL:    8,

		ReadToWritePad: 8,
		WriteToReadPad: 11,
	}
}
