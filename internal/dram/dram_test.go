package dram

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testDevice(t *testing.T, timing Timing) (*Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	dev, err := NewDevice(timing, PrototypeGeometry(), clock)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return dev, clock
}

// waitFor advances the clock until cmd is legal, failing after a bound.
func waitFor(t *testing.T, dev *Device, clock *sim.Clock, cmd Command, a Addr) sim.Cycle {
	t.Helper()
	for i := 0; i < 100000; i++ {
		if dev.CanIssue(cmd, a) {
			return clock.Now()
		}
		clock.Advance()
	}
	t.Fatalf("command %s %s never became legal", cmd, a)
	return 0
}

func TestTimingPresetsValidate(t *testing.T) {
	for _, tm := range []Timing{DDR31066E(), DDR31600()} {
		if err := tm.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", tm.Name, err)
		}
	}
}

func TestTimingValidationCatchesInconsistency(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Timing)
	}{
		{"zero tCK", func(tm *Timing) { tm.TCKps = 0 }},
		{"bad BL", func(tm *Timing) { tm.BL = 6 }},
		{"tRC < tRAS+tRP", func(tm *Timing) { tm.TRC = tm.TRAS + tm.TRP - 1 }},
		{"zero CL", func(tm *Timing) { tm.CL = 0 }},
		{"tCCD < burst", func(tm *Timing) { tm.TCCD = 1 }},
		{"zero tREFI", func(tm *Timing) { tm.TREFI = 0 }},
		{"negative pad", func(tm *Timing) { tm.ReadToWritePad = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tm := DDR31066E()
			tc.mutate(&tm)
			if err := tm.Validate(); err == nil {
				t.Fatalf("Validate accepted inconsistent timing (%s)", tc.name)
			}
		})
	}
}

func TestTurnaroundGapFormulas(t *testing.T) {
	tm := DDR31066E()
	// JEDEC minimums: RD→WR = RL-WL+BL/2+2 = 7-6+4+2 = 7, plus pad 8 = 15.
	if got := tm.ReadToWriteGap(); got != 15 {
		t.Errorf("ReadToWriteGap = %d, want 15", got)
	}
	// WR→RD = CWL+BL/2+tWTR = 6+4+4 = 14, plus pad 11 = 25.
	if got := tm.WriteToReadGap(); got != 25 {
		t.Errorf("WriteToReadGap = %d, want 25", got)
	}
	// Fig. 3 calibration target: combined gaps = 40 so that utilisation at
	// one burst per direction is 8/40 = 20 %.
	if sum := tm.ReadToWriteGap() + tm.WriteToReadGap(); sum != 40 {
		t.Errorf("combined turnaround gaps = %d, want 40 (Fig. 3 calibration)", sum)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := PrototypeGeometry().Validate(); err != nil {
		t.Fatalf("prototype geometry invalid: %v", err)
	}
	bad := Geometry{Banks: 8, Rows: 1000, Cols: 1024, WordBytes: 4}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted non-power-of-two rows")
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := PrototypeGeometry()
	if got := g.CapacityBytes(); got != 512<<20 {
		t.Fatalf("CapacityBytes = %d, want %d (512 MB)", got, 512<<20)
	}
	if got := g.RowBytes(); got != 4096 {
		t.Fatalf("RowBytes = %d, want 4096", got)
	}
}

func TestGeometryAddrRoundTrip(t *testing.T) {
	g := PrototypeGeometry()
	const bl = 8
	f := func(seed uint32) bool {
		idx := int64(seed) % g.LinearBursts(bl)
		a := g.AddrOfBurst(idx, bl)
		if !g.Valid(a, bl) {
			return false
		}
		return g.BurstIndex(a, bl) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryBankInterleave(t *testing.T) {
	// Consecutive row-sized strides must land in different banks so the
	// bank selector can overlap activates.
	g := PrototypeGeometry()
	const bl = 8
	burstsPerRow := int64(g.Cols) / bl
	a0 := g.AddrOfBurst(0, bl)
	a1 := g.AddrOfBurst(burstsPerRow, bl)
	if a0.Bank == a1.Bank {
		t.Fatalf("adjacent row-strides map to same bank (%s vs %s)", a0, a1)
	}
}

func TestActivateReadTimings(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	a := Addr{Bank: 0, Row: 5, Col: 0}

	if dev.CanIssue(CmdRead, a) {
		t.Fatal("read legal on precharged bank")
	}
	dev.Activate(a)
	actAt := clock.Now()
	if dev.CanIssue(CmdRead, a) {
		t.Fatal("read legal immediately after ACT (tRCD violated)")
	}
	rdAt := waitFor(t, dev, clock, CmdRead, a)
	if got := int64(rdAt - actAt); got != tm.TRCD {
		t.Fatalf("first read issued %d cycles after ACT, want tRCD=%d", got, tm.TRCD)
	}
	res := dev.Read(a)
	if want := rdAt + sim.Cycle(tm.RL()+tm.BurstCycles()); res.ReadyAt != want {
		t.Fatalf("read ReadyAt = %d, want %d", res.ReadyAt, want)
	}
}

func TestReadWrongRowIllegal(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	a := Addr{Bank: 2, Row: 7, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdRead, a)
	wrong := Addr{Bank: 2, Row: 8, Col: 0}
	if dev.CanIssue(CmdRead, wrong) {
		t.Fatal("read legal on a row that is not open")
	}
}

func TestRowCycleTime(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	a := Addr{Bank: 1, Row: 1, Col: 0}
	dev.Activate(a)
	act1 := clock.Now()

	// Close and reopen a different row in the same bank: PRE at tRAS,
	// second ACT at max(tRC, tRAS+tRP) = tRC.
	preAt := waitFor(t, dev, clock, CmdPrecharge, a)
	if got := int64(preAt - act1); got != tm.TRAS {
		t.Fatalf("PRE legal %d cycles after ACT, want tRAS=%d", got, tm.TRAS)
	}
	dev.Precharge(a)
	b := Addr{Bank: 1, Row: 2, Col: 0}
	act2 := waitFor(t, dev, clock, CmdActivate, b)
	if got := int64(act2 - act1); got != tm.TRC {
		t.Fatalf("second ACT %d cycles after first, want tRC=%d", got, tm.TRC)
	}
}

func TestBackToBackReadsSpacedByTCCD(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	a := Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdRead, a)
	dev.Read(a)
	t1 := clock.Now()
	b := Addr{Bank: 0, Row: 0, Col: 8}
	t2 := waitFor(t, dev, clock, CmdRead, b)
	if got := int64(t2 - t1); got != tm.TCCD {
		t.Fatalf("second read after %d cycles, want tCCD=%d", got, tm.TCCD)
	}
}

func TestBusTurnaroundGaps(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	a := Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdRead, a)
	dev.Read(a)
	rdAt := clock.Now()

	data := make([]byte, dev.Geometry().BurstBytes(tm.BL))
	wrAt := waitFor(t, dev, clock, CmdWrite, Addr{Bank: 0, Row: 0, Col: 8})
	if got := int64(wrAt - rdAt); got != tm.ReadToWriteGap() {
		t.Fatalf("WR issued %d cycles after RD, want %d", got, tm.ReadToWriteGap())
	}
	dev.Write(Addr{Bank: 0, Row: 0, Col: 8}, data)

	rd2At := waitFor(t, dev, clock, CmdRead, a)
	if got := int64(rd2At - wrAt); got != tm.WriteToReadGap() {
		t.Fatalf("RD issued %d cycles after WR, want %d", got, tm.WriteToReadGap())
	}
}

func TestFourActivateWindow(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	var times []sim.Cycle
	for bank := 0; bank < 5; bank++ {
		a := Addr{Bank: bank, Row: 0, Col: 0}
		at := waitFor(t, dev, clock, CmdActivate, a)
		dev.Activate(a)
		times = append(times, at)
	}
	// Activates 0..3 are spaced by tRRD; the fifth must wait for tFAW from
	// the first.
	for i := 1; i < 4; i++ {
		if got := int64(times[i] - times[i-1]); got != tm.TRRD {
			t.Fatalf("ACT %d spaced %d after previous, want tRRD=%d", i, got, tm.TRRD)
		}
	}
	if got := int64(times[4] - times[0]); got != tm.TFAW {
		t.Fatalf("fifth ACT %d cycles after first, want tFAW=%d", got, tm.TFAW)
	}
}

func TestWriteReadBackData(t *testing.T) {
	dev, clock := testDevice(t, DDR31600())
	a := Addr{Bank: 3, Row: 100, Col: 16}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdWrite, a)
	want := bytes.Repeat([]byte{0xAB, 0xCD}, 16)
	dev.Write(a, want)
	waitFor(t, dev, clock, CmdRead, a)
	got := dev.Read(a).Data
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %x, want %x", got, want)
	}
	// An unwritten burst in the same row reads as zero.
	zero := Addr{Bank: 3, Row: 100, Col: 32}
	waitFor(t, dev, clock, CmdRead, zero)
	if data := dev.Read(zero).Data; !bytes.Equal(data, make([]byte, 32)) {
		t.Fatalf("unwritten location read as %x, want zeros", data)
	}
}

func TestRefreshBlocksAndRecovers(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	tm := dev.Timing()
	a := Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdPrecharge, a)
	dev.Precharge(a)
	refAt := waitFor(t, dev, clock, CmdRefresh, Addr{})
	dev.Refresh()
	if dev.CanIssue(CmdActivate, a) {
		t.Fatal("ACT legal during refresh")
	}
	actAt := waitFor(t, dev, clock, CmdActivate, a)
	if got := int64(actAt - refAt); got != tm.TRFC {
		t.Fatalf("ACT legal %d cycles after REF, want tRFC=%d", got, tm.TRFC)
	}
}

func TestRefreshRequiresAllBanksClosed(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	dev.Activate(Addr{Bank: 4, Row: 9, Col: 0})
	clock.AdvanceBy(1000)
	if dev.CanIssue(CmdRefresh, Addr{}) {
		t.Fatal("REF legal with an open bank")
	}
	dev.PrechargeAll()
	waitFor(t, dev, clock, CmdRefresh, Addr{})
}

func TestPrechargeAllClosesEverything(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	for bank := 0; bank < 4; bank++ {
		a := Addr{Bank: bank, Row: bank, Col: 0}
		waitFor(t, dev, clock, CmdActivate, a)
		dev.Activate(a)
	}
	clock.AdvanceBy(sim.Cycle(dev.Timing().TRAS))
	waitFor(t, dev, clock, CmdPrechargeAll, Addr{})
	dev.PrechargeAll()
	for bank := 0; bank < 8; bank++ {
		if dev.OpenRow(bank) != -1 {
			t.Fatalf("bank %d still open after PrechargeAll", bank)
		}
	}
	if got := dev.Stats().Precharges; got != 4 {
		t.Fatalf("Precharges = %d, want 4 (idle banks are no-ops)", got)
	}
}

func TestIllegalCommandPanics(t *testing.T) {
	dev, _ := testDevice(t, DDR31066E())
	defer func() {
		if recover() == nil {
			t.Fatal("Read on precharged bank did not panic")
		}
	}()
	dev.Read(Addr{Bank: 0, Row: 0, Col: 0})
}

func TestWriteSizeChecked(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	a := Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdWrite, a)
	defer func() {
		if recover() == nil {
			t.Fatal("short write burst did not panic")
		}
	}()
	dev.Write(a, []byte{1, 2, 3})
}

func TestStatsAccounting(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	a := Addr{Bank: 0, Row: 0, Col: 0}
	dev.Activate(a)
	waitFor(t, dev, clock, CmdRead, a)
	dev.Read(a)
	waitFor(t, dev, clock, CmdWrite, a)
	dev.Write(a, make([]byte, 32))
	waitFor(t, dev, clock, CmdRead, a)
	dev.Read(a)
	st := dev.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Activates != 1 {
		t.Fatalf("stats = %+v, want 2 reads / 1 write / 1 activate", st)
	}
	if st.Turnarounds != 2 {
		t.Fatalf("Turnarounds = %d, want 2 (RD→WR, WR→RD)", st.Turnarounds)
	}
	if st.BusBusyCycles != 3*4 {
		t.Fatalf("BusBusyCycles = %d, want 12 (three BL8 bursts)", st.BusBusyCycles)
	}
}

// TestAlternatingBurstUtilization checks the Fig. 3 anchor analytically:
// one read + one write per period on an open row yields 8 data cycles per
// 40-cycle period = 20 % utilisation.
func TestAlternatingBurstUtilization(t *testing.T) {
	dev, clock := testDevice(t, DDR31066E())
	a := Addr{Bank: 0, Row: 0, Col: 0}
	b := Addr{Bank: 0, Row: 0, Col: 8}
	dev.Activate(a)
	data := make([]byte, 32)

	waitFor(t, dev, clock, CmdRead, a)
	start := clock.Now()
	const pairs = 50
	for i := 0; i < pairs; i++ {
		waitFor(t, dev, clock, CmdRead, a)
		dev.Read(a)
		waitFor(t, dev, clock, CmdWrite, b)
		dev.Write(b, data)
	}
	waitFor(t, dev, clock, CmdRead, a)
	elapsed := float64(clock.Now() - start)
	util := float64(dev.Stats().BusBusyCycles) / elapsed
	if util < 0.19 || util > 0.21 {
		t.Fatalf("alternating-burst utilisation = %.3f, want ~0.20 (Fig. 3 anchor)", util)
	}
}

// Property: random legal command sequences never trigger a DQ-bus overlap
// panic and never let utilisation exceed 1.
func TestRandomLegalSequencesSafe(t *testing.T) {
	rng := sim.NewRand(1234)
	dev, clock := testDevice(t, DDR31600())
	g := dev.Geometry()
	data := make([]byte, g.BurstBytes(dev.Timing().BL))
	issued := 0
	for step := 0; step < 20000 && issued < 2000; step++ {
		bank := rng.Intn(g.Banks)
		row := rng.Intn(64)
		col := rng.Intn(g.Cols/8) * 8
		a := Addr{Bank: bank, Row: row, Col: col}
		switch rng.Intn(5) {
		case 0:
			if dev.CanIssue(CmdActivate, a) {
				dev.Activate(a)
				issued++
			}
		case 1:
			a.Row = dev.OpenRow(bank)
			if a.Row >= 0 && dev.CanIssue(CmdRead, a) {
				dev.Read(a)
				issued++
			}
		case 2:
			a.Row = dev.OpenRow(bank)
			if a.Row >= 0 && dev.CanIssue(CmdWrite, a) {
				dev.Write(a, data)
				issued++
			}
		case 3:
			if dev.CanIssue(CmdPrecharge, a) {
				dev.Precharge(a)
				issued++
			}
		case 4:
			clock.AdvanceBy(sim.Cycle(rng.Intn(8)))
		}
		clock.Advance()
	}
	if issued < 500 {
		t.Fatalf("random walk only issued %d commands; test under-exercises the device", issued)
	}
	if busy := dev.Stats().BusBusyCycles; busy > int64(clock.Now()) {
		t.Fatalf("BusBusyCycles %d exceeds elapsed %d", busy, clock.Now())
	}
}

func TestStoreSparseAllocation(t *testing.T) {
	s := NewStore(PrototypeGeometry())
	if s.AllocatedRows() != 0 {
		t.Fatal("fresh store has allocated rows")
	}
	s.Write(Addr{Bank: 0, Row: 10, Col: 0}, make([]byte, 32))
	s.Write(Addr{Bank: 0, Row: 10, Col: 8}, make([]byte, 32))
	s.Write(Addr{Bank: 1, Row: 10, Col: 0}, make([]byte, 32))
	if got := s.AllocatedRows(); got != 2 {
		t.Fatalf("AllocatedRows = %d, want 2", got)
	}
	if got := s.AllocatedBytes(); got != 2*4096 {
		t.Fatalf("AllocatedBytes = %d, want 8192", got)
	}
}
