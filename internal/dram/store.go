package dram

import "fmt"

// Store is the sparse backing store of a channel's contents. Rows are
// allocated lazily on first write, so an 8-million-entry table costs host
// memory proportional to its occupancy rather than the full 512 MB channel.
type Store struct {
	geom Geometry
	rows map[uint32][]byte

	allocatedRows int
}

// NewStore returns an empty store for the given geometry.
func NewStore(geom Geometry) *Store {
	return &Store{geom: geom, rows: make(map[uint32][]byte)}
}

func (s *Store) key(bank, row int) uint32 {
	return uint32(bank)<<24 | uint32(row)
}

// Read returns a copy of the bl-beat burst at a. Unwritten locations read
// as zero, as an initialised DRAM array would after a controller-level
// clear.
func (s *Store) Read(a Addr, bl int) []byte {
	n := bl * s.geom.WordBytes
	out := make([]byte, n)
	rowBuf, ok := s.rows[s.key(a.Bank, a.Row)]
	if !ok {
		return out
	}
	copy(out, rowBuf[a.Col*s.geom.WordBytes:])
	return out
}

// Write stores data (one burst) at a, allocating the row if needed.
func (s *Store) Write(a Addr, data []byte) {
	if len(data)%s.geom.WordBytes != 0 {
		panic(fmt.Sprintf("dram: store write of %d bytes not word-aligned", len(data)))
	}
	k := s.key(a.Bank, a.Row)
	rowBuf, ok := s.rows[k]
	if !ok {
		rowBuf = make([]byte, s.geom.RowBytes())
		s.rows[k] = rowBuf
		s.allocatedRows++
	}
	copy(rowBuf[a.Col*s.geom.WordBytes:], data)
}

// AllocatedRows reports how many rows have been materialised.
func (s *Store) AllocatedRows() int { return s.allocatedRows }

// AllocatedBytes reports the host memory held by materialised rows.
func (s *Store) AllocatedBytes() int64 {
	return int64(s.allocatedRows) * int64(s.geom.RowBytes())
}
