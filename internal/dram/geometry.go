package dram

import "fmt"

// Geometry describes the addressable organisation of one DDR3 channel.
// The prototype configuration is a 32-bit-wide, 512 MB channel: 8 banks ×
// 16384 rows × 1024 columns × 4 bytes.
type Geometry struct {
	Banks     int // number of banks (8 for DDR3)
	Rows      int // rows per bank
	Cols      int // column addresses per row (word granularity)
	WordBytes int // data bus width in bytes (4 for a 32-bit channel)
}

// PrototypeGeometry returns the paper's per-channel organisation:
// 512 MB on a 32-bit bus.
func PrototypeGeometry() Geometry {
	return Geometry{Banks: 8, Rows: 16384, Cols: 1024, WordBytes: 4}
}

// Validate reports an error when any dimension is non-positive or not a
// power of two (address slicing requires power-of-two dimensions).
func (g Geometry) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"banks", g.Banks}, {"rows", g.Rows}, {"cols", g.Cols}, {"word bytes", g.WordBytes},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("dram: geometry %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}

// CapacityBytes returns the total channel capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Banks) * int64(g.Rows) * int64(g.Cols) * int64(g.WordBytes)
}

// RowBytes returns the size of one row (the open-page unit) in bytes.
func (g Geometry) RowBytes() int { return g.Cols * g.WordBytes }

// BurstBytes returns the bytes moved by one burst of length bl beats.
func (g Geometry) BurstBytes(bl int64) int { return int(bl) * g.WordBytes }

// Addr identifies one burst-aligned location in a channel.
type Addr struct {
	Bank int
	Row  int
	Col  int // column address of the first word of the burst
}

// Valid reports whether a lies within the geometry and is aligned to a
// burst of bl beats.
func (g Geometry) Valid(a Addr, bl int64) bool {
	return a.Bank >= 0 && a.Bank < g.Banks &&
		a.Row >= 0 && a.Row < g.Rows &&
		a.Col >= 0 && a.Col+int(bl) <= g.Cols &&
		a.Col%int(bl) == 0
}

// LinearBursts returns how many burst-aligned locations the channel holds
// for burst length bl.
func (g Geometry) LinearBursts(bl int64) int64 {
	return int64(g.Banks) * int64(g.Rows) * (int64(g.Cols) / bl)
}

// AddrOfBurst maps a linear burst index to an address using a
// row:bank:column layout — consecutive burst indices walk the columns of a
// row first, then move to the same row of the next bank, then to the next
// row. This is the interleave the paper's bank selector exploits: adjacent
// hash buckets land in different banks so independent lookups can overlap
// their row activates.
func (g Geometry) AddrOfBurst(idx int64, bl int64) Addr {
	burstsPerRow := int64(g.Cols) / bl
	col := (idx % burstsPerRow) * bl
	idx /= burstsPerRow
	bank := idx % int64(g.Banks)
	idx /= int64(g.Banks)
	row := idx % int64(g.Rows)
	return Addr{Bank: int(bank), Row: int(row), Col: int(col)}
}

// BurstIndex is the inverse of AddrOfBurst.
func (g Geometry) BurstIndex(a Addr, bl int64) int64 {
	burstsPerRow := int64(g.Cols) / bl
	return (int64(a.Row)*int64(g.Banks)+int64(a.Bank))*burstsPerRow + int64(a.Col)/bl
}

// String renders the address for traces and test failures.
func (a Addr) String() string {
	return fmt.Sprintf("bank=%d row=%d col=%d", a.Bank, a.Row, a.Col)
}
