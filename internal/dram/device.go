package dram

import (
	"fmt"

	"repro/internal/sim"
)

// Command enumerates the DDR3 commands the device accepts.
type Command int

// DDR3 command set (the subset a lookup-table workload exercises).
const (
	CmdActivate Command = iota + 1
	CmdRead
	CmdWrite
	CmdPrecharge
	CmdPrechargeAll
	CmdRefresh
)

// String returns the JEDEC mnemonic.
func (c Command) String() string {
	switch c {
	case CmdActivate:
		return "ACT"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdPrecharge:
		return "PRE"
	case CmdPrechargeAll:
		return "PREA"
	case CmdRefresh:
		return "REF"
	default:
		return fmt.Sprintf("Command(%d)", int(c))
	}
}

// bankState is the row state machine of one bank.
type bankState struct {
	active    bool
	activeRow int

	nextActivate sim.Cycle // earliest ACT (tRC from last ACT, tRP from PRE)
	nextRead     sim.Cycle // earliest RD (tRCD from ACT)
	nextWrite    sim.Cycle // earliest WR (tRCD from ACT)
	nextPre      sim.Cycle // earliest PRE (tRAS from ACT, tRTP from RD, tWR after WR data)
}

// Stats aggregates the activity counters of a device.
type Stats struct {
	Activates  int64
	Precharges int64
	Reads      int64
	Writes     int64
	Refreshes  int64

	// BusBusyCycles counts cycles in which the DQ bus carried data. The
	// Fig. 3 utilisation metric is BusBusyCycles / elapsed cycles.
	BusBusyCycles int64
	// Turnarounds counts bus direction changes (RD→WR or WR→RD).
	Turnarounds int64
}

// Device is one DDR3 channel: eight banks behind a shared command/address
// bus and a shared bidirectional DQ data bus.
//
// The device enforces the JEDEC timing contract: Issue panics when a
// command violates a constraint, so a scheduling bug upstream fails loudly
// rather than silently producing impossible bandwidth. Controllers call
// CanIssue first, exactly as real controller logic gates command slots.
type Device struct {
	timing Timing
	geom   Geometry
	clock  *sim.Clock

	banks []bankState

	nextReadCmd  sim.Cycle // global earliest RD (tCCD, WR→RD turnaround)
	nextWriteCmd sim.Cycle // global earliest WR (tCCD, RD→WR turnaround)
	nextActAny   sim.Cycle // global earliest ACT (tRRD)
	actTimes     []sim.Cycle
	actHead      int // ring over the last 4 ACTs for tFAW

	dqBusyUntil sim.Cycle
	lastWasRead bool
	anyTransfer bool

	refreshReady sim.Cycle // all-bank earliest command after REF

	store *Store
	stats Stats
}

// NewDevice builds a channel with the given timing, geometry and shared
// clock. It returns an error when either parameter set fails validation.
func NewDevice(timing Timing, geom Geometry, clock *sim.Clock) (*Device, error) {
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("dram: NewDevice requires a clock")
	}
	d := &Device{
		timing:   timing,
		geom:     geom,
		clock:    clock,
		banks:    make([]bankState, geom.Banks),
		actTimes: make([]sim.Cycle, 4),
		store:    NewStore(geom),
	}
	// Seed the four-activate window with times far enough in the past that
	// the first four activates are unconstrained by tFAW.
	for i := range d.actTimes {
		d.actTimes[i] = -sim.Cycle(timing.TFAW)
	}
	return d, nil
}

// Timing returns the device's timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Geometry returns the device's organisation.
func (d *Device) Geometry() Geometry { return d.geom }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// Store exposes the backing store (for test seeding and verification).
func (d *Device) Store() *Store { return d.store }

// RowOpen reports whether bank currently has row open.
func (d *Device) RowOpen(bank, row int) bool {
	b := &d.banks[bank]
	return b.active && b.activeRow == row
}

// OpenRow returns the open row of bank, or -1 when the bank is precharged.
func (d *Device) OpenRow(bank int) int {
	b := &d.banks[bank]
	if !b.active {
		return -1
	}
	return b.activeRow
}

// CanIssue reports whether cmd targeting a could legally issue this cycle.
// For CmdPrechargeAll and CmdRefresh the address is ignored.
func (d *Device) CanIssue(cmd Command, a Addr) bool {
	now := d.clock.Now()
	if now < d.refreshReady {
		return false
	}
	switch cmd {
	case CmdActivate:
		b := &d.banks[a.Bank]
		if b.active {
			return false
		}
		return now >= b.nextActivate && now >= d.nextActAny && now >= d.fawReady()
	case CmdRead:
		b := &d.banks[a.Bank]
		return b.active && b.activeRow == a.Row && now >= b.nextRead && now >= d.nextReadCmd
	case CmdWrite:
		b := &d.banks[a.Bank]
		return b.active && b.activeRow == a.Row && now >= b.nextWrite && now >= d.nextWriteCmd
	case CmdPrecharge:
		b := &d.banks[a.Bank]
		if !b.active {
			return true // NOP precharge is legal
		}
		return now >= b.nextPre
	case CmdPrechargeAll:
		for i := range d.banks {
			b := &d.banks[i]
			if b.active && now < b.nextPre {
				return false
			}
		}
		return true
	case CmdRefresh:
		for i := range d.banks {
			if d.banks[i].active {
				return false
			}
			if now < d.banks[i].nextActivate {
				// tRP from the closing precharge must have elapsed.
				return false
			}
		}
		return true
	default:
		return false
	}
}

// fawReady returns the earliest cycle at which a fifth activate may issue
// given the four-activate window.
func (d *Device) fawReady() sim.Cycle {
	oldest := d.actTimes[d.actHead]
	return oldest + sim.Cycle(d.timing.TFAW)
}

// mustBeLegal panics with a descriptive message when cmd cannot issue now.
func (d *Device) mustBeLegal(cmd Command, a Addr) {
	if !d.CanIssue(cmd, a) {
		panic(fmt.Sprintf("dram: timing violation: %s %s at cycle %d (%s)",
			cmd, a, d.clock.Now(), d.timing.Name))
	}
}

// Activate opens row a.Row in bank a.Bank.
func (d *Device) Activate(a Addr) {
	d.mustBeLegal(CmdActivate, a)
	now := d.clock.Now()
	t := &d.timing
	b := &d.banks[a.Bank]
	b.active = true
	b.activeRow = a.Row
	b.nextRead = now + sim.Cycle(t.TRCD)
	b.nextWrite = now + sim.Cycle(t.TRCD)
	b.nextPre = now + sim.Cycle(t.TRAS)
	b.nextActivate = now + sim.Cycle(t.TRC)
	d.nextActAny = now + sim.Cycle(t.TRRD)
	d.actTimes[d.actHead] = now
	d.actHead = (d.actHead + 1) % len(d.actTimes)
	d.stats.Activates++
}

// ReadResult carries the payload and completion time of a read burst.
type ReadResult struct {
	// Data is the burst payload (Geometry.BurstBytes long). The slice is a
	// copy; callers may retain it.
	Data []byte
	// ReadyAt is the cycle at which the last data beat is on the bus; the
	// controller delivers the data to its client no earlier than this.
	ReadyAt sim.Cycle
}

// Read issues a BL8 read burst at a and returns the payload along with the
// cycle at which the data transfer completes.
func (d *Device) Read(a Addr) ReadResult {
	d.mustBeLegal(CmdRead, a)
	if !d.geom.Valid(a, d.timing.BL) {
		panic(fmt.Sprintf("dram: read at invalid address %s", a))
	}
	now := d.clock.Now()
	t := &d.timing
	b := &d.banks[a.Bank]

	d.nextReadCmd = now + sim.Cycle(t.TCCD)
	d.nextWriteCmd = maxCycle(d.nextWriteCmd, now+sim.Cycle(t.ReadToWriteGap()))
	b.nextPre = maxCycle(b.nextPre, now+sim.Cycle(t.TRTP))

	start := now + sim.Cycle(t.RL())
	end := start + sim.Cycle(t.BurstCycles())
	d.occupyDQ(start, end, true)
	d.stats.Reads++

	return ReadResult{Data: d.store.Read(a, int(t.BL)), ReadyAt: end}
}

// Write issues a BL8 write burst of data at a and returns the cycle at
// which the last data beat has been driven.
func (d *Device) Write(a Addr, data []byte) sim.Cycle {
	d.mustBeLegal(CmdWrite, a)
	if !d.geom.Valid(a, d.timing.BL) {
		panic(fmt.Sprintf("dram: write at invalid address %s", a))
	}
	if len(data) != d.geom.BurstBytes(d.timing.BL) {
		panic(fmt.Sprintf("dram: write burst of %d bytes, want %d", len(data), d.geom.BurstBytes(d.timing.BL)))
	}
	now := d.clock.Now()
	t := &d.timing
	b := &d.banks[a.Bank]

	d.nextWriteCmd = now + sim.Cycle(t.TCCD)
	d.nextReadCmd = maxCycle(d.nextReadCmd, now+sim.Cycle(t.WriteToReadGap()))

	start := now + sim.Cycle(t.WL())
	end := start + sim.Cycle(t.BurstCycles())
	// Write recovery runs from the end of the data burst.
	b.nextPre = maxCycle(b.nextPre, end+sim.Cycle(t.TWR))
	d.occupyDQ(start, end, false)
	d.store.Write(a, data)
	d.stats.Writes++
	return end
}

// Precharge closes the open row of bank a.Bank. Precharging an idle bank
// is a legal no-op, as in the JEDEC contract.
func (d *Device) Precharge(a Addr) {
	d.mustBeLegal(CmdPrecharge, a)
	now := d.clock.Now()
	b := &d.banks[a.Bank]
	if !b.active {
		return
	}
	b.active = false
	b.nextActivate = maxCycle(b.nextActivate, now+sim.Cycle(d.timing.TRP))
	d.stats.Precharges++
}

// PrechargeAll closes every open row.
func (d *Device) PrechargeAll() {
	d.mustBeLegal(CmdPrechargeAll, Addr{})
	now := d.clock.Now()
	for i := range d.banks {
		b := &d.banks[i]
		if !b.active {
			continue
		}
		b.active = false
		b.nextActivate = maxCycle(b.nextActivate, now+sim.Cycle(d.timing.TRP))
		d.stats.Precharges++
	}
}

// Refresh issues an all-bank refresh; the device is unavailable for tRFC.
func (d *Device) Refresh() {
	d.mustBeLegal(CmdRefresh, Addr{})
	now := d.clock.Now()
	d.refreshReady = now + sim.Cycle(d.timing.TRFC)
	d.stats.Refreshes++
}

// occupyDQ claims the data bus for [start, end) and accounts utilisation
// and turnaround statistics. Overlap is a scheduling bug and panics.
func (d *Device) occupyDQ(start, end sim.Cycle, isRead bool) {
	if start < d.dqBusyUntil {
		panic(fmt.Sprintf("dram: DQ bus conflict: burst starting at %d overlaps previous transfer ending at %d",
			start, d.dqBusyUntil))
	}
	if d.anyTransfer && d.lastWasRead != isRead {
		d.stats.Turnarounds++
	}
	d.anyTransfer = true
	d.lastWasRead = isRead
	d.dqBusyUntil = end
	d.stats.BusBusyCycles += int64(end - start)
}

// DQBusyUntil returns the cycle at which the current data transfer ends.
func (d *Device) DQBusyUntil() sim.Cycle { return d.dqBusyUntil }

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}
