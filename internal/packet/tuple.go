// Package packet provides the packet-header substrate of the flow
// processor: Ethernet/IPv4/IPv6/TCP/UDP header encoding and parsing,
// n-tuple extraction (the "packet descriptor" of §III-B), and the
// canonical key serialisation the lookup table hashes.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto values for the protocol tuple field (IANA numbers).
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// FiveTuple is the standard flow identity: source/destination address,
// source/destination port, protocol. The paper's prototype uses the
// "standard 5-tuple format" for its Table II(B) tests.
type FiveTuple struct {
	Src, Dst netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
}

// Valid reports whether both addresses are set and of the same family.
func (ft FiveTuple) Valid() bool {
	return ft.Src.IsValid() && ft.Dst.IsValid() && ft.Src.Is4() == ft.Dst.Is4()
}

// IsIPv4 reports whether the tuple is over IPv4 addresses.
func (ft FiveTuple) IsIPv4() bool { return ft.Src.Is4() }

// String renders the tuple in the conventional a:p -> b:q/proto form.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", ft.Src, ft.SrcPort, ft.Dst, ft.DstPort, ft.Proto)
}

// Reverse returns the tuple of the opposite direction (for bidirectional
// flow accounting).
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Src: ft.Dst, Dst: ft.Src,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// Field identifies one header field available for flow identification.
// The scheme is "scalable with respect to ... number of tuples" (§VI);
// a TupleSpec selects which fields form the lookup key.
type Field int

// Tuple fields.
const (
	FieldSrcAddr Field = iota + 1
	FieldDstAddr
	FieldSrcPort
	FieldDstPort
	FieldProto
)

// String returns the field name.
func (f Field) String() string {
	switch f {
	case FieldSrcAddr:
		return "src-addr"
	case FieldDstAddr:
		return "dst-addr"
	case FieldSrcPort:
		return "src-port"
	case FieldDstPort:
		return "dst-port"
	case FieldProto:
		return "proto"
	default:
		return fmt.Sprintf("Field(%d)", int(f))
	}
}

// TupleSpec selects the header fields that identify a flow.
type TupleSpec struct {
	fields []Field
	std5   bool // fields are exactly the canonical 5-tuple order
}

// NewTupleSpec builds a spec over the given fields, in order. Duplicate
// fields are rejected.
func NewTupleSpec(fields ...Field) (TupleSpec, error) {
	if len(fields) == 0 {
		return TupleSpec{}, fmt.Errorf("packet: tuple spec requires at least one field")
	}
	seen := make(map[Field]bool, len(fields))
	for _, f := range fields {
		if f < FieldSrcAddr || f > FieldProto {
			return TupleSpec{}, fmt.Errorf("packet: unknown tuple field %d", int(f))
		}
		if seen[f] {
			return TupleSpec{}, fmt.Errorf("packet: duplicate tuple field %s", f)
		}
		seen[f] = true
	}
	spec := TupleSpec{fields: append([]Field(nil), fields...)}
	std5 := [...]Field{FieldSrcAddr, FieldDstAddr, FieldSrcPort, FieldDstPort, FieldProto}
	spec.std5 = len(fields) == len(std5)
	for i := 0; spec.std5 && i < len(std5); i++ {
		spec.std5 = fields[i] == std5[i]
	}
	return spec, nil
}

// FiveTupleSpec returns the standard 5-tuple spec.
func FiveTupleSpec() TupleSpec {
	spec, err := NewTupleSpec(FieldSrcAddr, FieldDstAddr, FieldSrcPort, FieldDstPort, FieldProto)
	if err != nil {
		panic(err) // static field list; cannot fail
	}
	return spec
}

// Fields returns the selected fields.
func (s TupleSpec) Fields() []Field { return append([]Field(nil), s.fields...) }

// KeyLen returns the serialised key length in bytes for the given address
// family (4-byte or 16-byte addresses).
func (s TupleSpec) KeyLen(ipv4 bool) int {
	n := 0
	addrLen := 16
	if ipv4 {
		addrLen = 4
	}
	for _, f := range s.fields {
		switch f {
		case FieldSrcAddr, FieldDstAddr:
			n += addrLen
		case FieldSrcPort, FieldDstPort:
			n += 2
		case FieldProto:
			n++
		}
	}
	return n
}

// AppendKey serialises the selected fields of ft onto dst and returns the
// extended slice. The layout is fixed per (spec, family), so equal tuples
// always serialise identically — the property the hash table relies on.
func (s TupleSpec) AppendKey(dst []byte, ft FiveTuple) []byte {
	if s.std5 && ft.Src.Is4() && ft.Dst.Is4() {
		// The standard 13-byte IPv4 5-tuple is the descriptor format of
		// every hot path in this repository; assembling it in one fixed
		// block directly in dst's spare capacity skips the field dispatch
		// loop and the staging copy. The layout is byte-for-byte the
		// loop's output for the same field order.
		n := len(dst)
		if cap(dst)-n < 13 {
			dst = append(dst, make([]byte, 13)...)[:n]
		}
		dst = dst[:n+13]
		k := dst[n:]
		src, dst4 := ft.Src.As4(), ft.Dst.As4()
		copy(k[0:4], src[:])
		copy(k[4:8], dst4[:])
		binary.BigEndian.PutUint16(k[8:10], ft.SrcPort)
		binary.BigEndian.PutUint16(k[10:12], ft.DstPort)
		k[12] = ft.Proto
		return dst
	}
	if s.std5 && !ft.Src.Is4() && !ft.Dst.Is4() {
		// Same fixed-block treatment for the 37-byte IPv6 5-tuple: the
		// spill-path descriptor is assembled in place instead of walking
		// the dispatch loop, which matters once v6-heavy mixes hit the
		// per-packet key build. Byte-for-byte the loop's output (As16 of
		// an invalid address is all zeros on both paths).
		n := len(dst)
		if cap(dst)-n < 37 {
			dst = append(dst, make([]byte, 37)...)[:n]
		}
		dst = dst[:n+37]
		k := dst[n:]
		src, dst16 := ft.Src.As16(), ft.Dst.As16()
		copy(k[0:16], src[:])
		copy(k[16:32], dst16[:])
		binary.BigEndian.PutUint16(k[32:34], ft.SrcPort)
		binary.BigEndian.PutUint16(k[34:36], ft.DstPort)
		k[36] = ft.Proto
		return dst
	}
	for _, f := range s.fields {
		switch f {
		case FieldSrcAddr:
			a := ft.Src.As16()
			if ft.Src.Is4() {
				a4 := ft.Src.As4()
				dst = append(dst, a4[:]...)
			} else {
				dst = append(dst, a[:]...)
			}
		case FieldDstAddr:
			if ft.Dst.Is4() {
				a4 := ft.Dst.As4()
				dst = append(dst, a4[:]...)
			} else {
				a := ft.Dst.As16()
				dst = append(dst, a[:]...)
			}
		case FieldSrcPort:
			dst = binary.BigEndian.AppendUint16(dst, ft.SrcPort)
		case FieldDstPort:
			dst = binary.BigEndian.AppendUint16(dst, ft.DstPort)
		case FieldProto:
			dst = append(dst, ft.Proto)
		}
	}
	return dst
}

// Key returns the serialised key of ft under the spec.
func (s TupleSpec) Key(ft FiveTuple) []byte {
	return s.AppendKey(make([]byte, 0, s.KeyLen(ft.IsIPv4())), ft)
}

// ParseKey decodes a key serialised by AppendKey back into a FiveTuple,
// reporting false when the key length matches neither address family of
// the spec. Fields the spec does not select stay zero. It is the inverse
// the flow-lifecycle export path needs: expired entries leave the table
// as stored key bytes and re-surface to callers as tuples.
func (s TupleSpec) ParseKey(key []byte) (FiveTuple, bool) {
	var ipv4 bool
	switch len(key) {
	case s.KeyLen(true):
		ipv4 = true
	case s.KeyLen(false):
		ipv4 = false
	default:
		return FiveTuple{}, false
	}
	addrLen := 16
	if ipv4 {
		addrLen = 4
	}
	var ft FiveTuple
	off := 0
	for _, f := range s.fields {
		switch f {
		case FieldSrcAddr, FieldDstAddr:
			var a netip.Addr
			if ipv4 {
				a = netip.AddrFrom4([4]byte(key[off : off+4]))
			} else {
				a = netip.AddrFrom16([16]byte(key[off : off+16]))
			}
			if f == FieldSrcAddr {
				ft.Src = a
			} else {
				ft.Dst = a
			}
			off += addrLen
		case FieldSrcPort:
			ft.SrcPort = binary.BigEndian.Uint16(key[off:])
			off += 2
		case FieldDstPort:
			ft.DstPort = binary.BigEndian.Uint16(key[off:])
			off += 2
		case FieldProto:
			ft.Proto = key[off]
			off++
		}
	}
	return ft, true
}
