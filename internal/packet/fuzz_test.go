package packet

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

// refAppendKey is the reference serialisation: the generic field-dispatch
// loop, written out independently of AppendKey's fixed-block fast path.
func refAppendKey(dst []byte, ft FiveTuple) []byte {
	appendAddr := func(dst []byte, a netip.Addr) []byte {
		if a.Is4() {
			a4 := a.As4()
			return append(dst, a4[:]...)
		}
		a16 := a.As16()
		return append(dst, a16[:]...)
	}
	dst = appendAddr(dst, ft.Src)
	dst = appendAddr(dst, ft.Dst)
	dst = binary.BigEndian.AppendUint16(dst, ft.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, ft.DstPort)
	return append(dst, ft.Proto)
}

func addrFrom(raw []byte, v6 bool) netip.Addr {
	if v6 {
		var a [16]byte
		copy(a[:], raw)
		return netip.AddrFrom16(a)
	}
	var a [4]byte
	copy(a[:], raw)
	return netip.AddrFrom4(a)
}

// FuzzAppendKey differentially fuzzes the key serialiser: the IPv4
// 5-tuple fixed-block fast path and the generic field-dispatch path must
// produce byte-identical keys, the key must round-trip back to the tuple's
// fields, equal tuples must serialise identically (the property the hash
// table relies on), and appending must never disturb bytes already in dst.
func FuzzAppendKey(f *testing.F) {
	f.Add([]byte{10, 0, 0, 1}, []byte{10, 0, 0, 2}, uint16(443), uint16(51234), byte(6), false, []byte(nil))
	f.Add([]byte{192, 168, 1, 1}, []byte{8, 8, 8, 8}, uint16(53), uint16(53), byte(17), false, []byte("prefix"))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, uint16(0), uint16(65535), byte(1), false, []byte{0xff})
	f.Add(bytes.Repeat([]byte{0x20}, 16), bytes.Repeat([]byte{0x01}, 16), uint16(80), uint16(8080), byte(6), true, []byte(nil))
	// IPv4-mapped-in-IPv6: Is4() is false, so these serialise as 16-byte
	// addresses through the v6 fast path.
	f.Add(append(bytes.Repeat([]byte{0}, 10), 0xff, 0xff, 10, 0, 0, 1),
		append(bytes.Repeat([]byte{0}, 10), 0xff, 0xff, 10, 0, 0, 2),
		uint16(443), uint16(51234), byte(6), true, []byte("pfx"))
	f.Fuzz(func(t *testing.T, srcRaw, dstRaw []byte, sport, dport uint16, proto byte, v6 bool, prefix []byte) {
		ft := FiveTuple{
			Src:     addrFrom(srcRaw, v6),
			Dst:     addrFrom(dstRaw, v6),
			SrcPort: sport,
			DstPort: dport,
			Proto:   proto,
		}
		spec := FiveTupleSpec()
		// The serialiser appends in place: the prefix must survive intact.
		// A low-capacity dst forces the growth path; ample capacity forces
		// the in-place fast path — both must agree.
		tight := append(make([]byte, 0, len(prefix)), prefix...)
		roomy := append(make([]byte, 0, len(prefix)+64), prefix...)
		keyTight := spec.AppendKey(tight, ft)
		keyRoomy := spec.AppendKey(roomy, ft)
		if !bytes.Equal(keyTight, keyRoomy) {
			t.Fatalf("growth path %x disagrees with in-place path %x", keyTight, keyRoomy)
		}
		if !bytes.Equal(keyTight[:len(prefix)], prefix) {
			t.Fatalf("AppendKey disturbed existing dst bytes: %x vs prefix %x", keyTight[:len(prefix)], prefix)
		}
		body := keyTight[len(prefix):]
		if want := spec.KeyLen(!v6); len(body) != want {
			t.Fatalf("key is %d bytes, spec says %d", len(body), want)
		}
		// Differential: the fixed-block fast paths (std5 + same-family
		// addresses, 13-byte v4 or 37-byte v6 block) vs the reference
		// generic loop.
		if ref := refAppendKey(nil, ft); !bytes.Equal(body, ref) {
			t.Fatalf("AppendKey %x disagrees with reference serialisation %x", body, ref)
		}
		// Round-trip: every field must be recoverable from its fixed slot.
		alen := 4
		if v6 {
			alen = 16
		}
		gotSrc := addrFrom(body[:alen], v6)
		gotDst := addrFrom(body[alen:2*alen], v6)
		if gotSrc != ft.Src || gotDst != ft.Dst {
			t.Fatalf("addresses did not round-trip: %v/%v vs %v/%v", gotSrc, gotDst, ft.Src, ft.Dst)
		}
		if got := binary.BigEndian.Uint16(body[2*alen:]); got != sport {
			t.Fatalf("src port %d round-tripped to %d", sport, got)
		}
		if got := binary.BigEndian.Uint16(body[2*alen+2:]); got != dport {
			t.Fatalf("dst port %d round-tripped to %d", dport, got)
		}
		if body[2*alen+4] != proto {
			t.Fatalf("proto %d round-tripped to %d", proto, body[2*alen+4])
		}
		// Key must agree with AppendKey from scratch (determinism).
		if one := spec.Key(ft); !bytes.Equal(one, body) {
			t.Fatalf("Key %x disagrees with AppendKey %x", one, body)
		}
	})
}
