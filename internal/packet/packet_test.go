package packet

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func tcpTuple() FiveTuple {
	return FiveTuple{
		Src:     netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst:     netip.AddrFrom4([4]byte{192, 168, 1, 9}),
		SrcPort: 51724,
		DstPort: 443,
		Proto:   ProtoTCP,
	}
}

func TestFiveTupleValid(t *testing.T) {
	if !tcpTuple().Valid() {
		t.Fatal("valid tuple reported invalid")
	}
	var zero FiveTuple
	if zero.Valid() {
		t.Fatal("zero tuple reported valid")
	}
	mixed := tcpTuple()
	mixed.Dst = netip.MustParseAddr("2001:db8::1")
	if mixed.Valid() {
		t.Fatal("mixed-family tuple reported valid")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	ft := tcpTuple()
	r := ft.Reverse()
	if r.Src != ft.Dst || r.Dst != ft.Src || r.SrcPort != ft.DstPort || r.DstPort != ft.SrcPort {
		t.Fatalf("Reverse() = %v", r)
	}
	if rr := r.Reverse(); rr != ft {
		t.Fatalf("double reverse = %v, want %v", rr, ft)
	}
}

func TestTupleSpecValidation(t *testing.T) {
	if _, err := NewTupleSpec(); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := NewTupleSpec(FieldSrcAddr, FieldSrcAddr); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewTupleSpec(Field(99)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFiveTupleSpecKeyLayout(t *testing.T) {
	spec := FiveTupleSpec()
	if got := spec.KeyLen(true); got != 13 {
		t.Fatalf("IPv4 5-tuple key length = %d, want 13", got)
	}
	if got := spec.KeyLen(false); got != 37 {
		t.Fatalf("IPv6 5-tuple key length = %d, want 37", got)
	}
	key := spec.Key(tcpTuple())
	want := []byte{
		10, 0, 0, 1, // src
		192, 168, 1, 9, // dst
		0xCA, 0x0C, // 51724
		0x01, 0xBB, // 443
		6, // tcp
	}
	if !bytes.Equal(key, want) {
		t.Fatalf("key = %x, want %x", key, want)
	}
}

func TestAppendKeyIPv6FixedBlock(t *testing.T) {
	spec := FiveTupleSpec()
	ft := FiveTuple{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8:ff::2:9"),
		SrcPort: 51724,
		DstPort: 443,
		Proto:   ProtoTCP,
	}
	src, dst := ft.Src.As16(), ft.Dst.As16()
	want := append(append(append([]byte{}, src[:]...), dst[:]...),
		0xCA, 0x0C, 0x01, 0xBB, 6)
	if key := spec.Key(ft); !bytes.Equal(key, want) {
		t.Fatalf("v6 key = %x, want %x", key, want)
	}
	// The in-place fast path (ample capacity) and the growth path must
	// agree and preserve prior dst contents, as for IPv4.
	prefix := []byte("hdr")
	roomy := append(make([]byte, 0, 64), prefix...)
	tight := append(make([]byte, 0, len(prefix)), prefix...)
	kr := spec.AppendKey(roomy, ft)
	kt := spec.AppendKey(tight, ft)
	if !bytes.Equal(kr, kt) || !bytes.Equal(kr[:3], prefix) || !bytes.Equal(kr[3:], want) {
		t.Fatalf("append paths diverge: roomy %x tight %x", kr, kt)
	}
	// A mixed-family tuple (invalid for flows, but serialisable) must take
	// the generic loop: 4-byte source, 16-byte destination.
	mixed := ft
	mixed.Src = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	if got := spec.Key(mixed); len(got) != 4+16+5 {
		t.Fatalf("mixed-family key length = %d, want 25", len(got))
	}
}

func TestTupleSpecSubsets(t *testing.T) {
	spec, err := NewTupleSpec(FieldDstAddr, FieldProto)
	if err != nil {
		t.Fatal(err)
	}
	ft := tcpTuple()
	key := spec.Key(ft)
	if len(key) != 5 {
		t.Fatalf("2-field key length = %d, want 5", len(key))
	}
	// Different source must not change the key under this spec.
	ft2 := ft
	ft2.Src = netip.AddrFrom4([4]byte{1, 2, 3, 4})
	ft2.SrcPort = 1
	if !bytes.Equal(spec.Key(ft2), key) {
		t.Fatal("key depends on fields outside the spec")
	}
}

func TestKeyEqualityMatchesTupleEquality(t *testing.T) {
	spec := FiveTupleSpec()
	f := func(a, b [13]byte) bool {
		fta := FiveTuple{
			Src:     netip.AddrFrom4([4]byte(a[0:4])),
			Dst:     netip.AddrFrom4([4]byte(a[4:8])),
			SrcPort: uint16(a[8])<<8 | uint16(a[9]),
			DstPort: uint16(a[10])<<8 | uint16(a[11]),
			Proto:   a[12],
		}
		ftb := FiveTuple{
			Src:     netip.AddrFrom4([4]byte(b[0:4])),
			Dst:     netip.AddrFrom4([4]byte(b[4:8])),
			SrcPort: uint16(b[8])<<8 | uint16(b[9]),
			DstPort: uint16(b[10])<<8 | uint16(b[11]),
			Proto:   b[12],
		}
		keysEqual := bytes.Equal(spec.Key(fta), spec.Key(ftb))
		return keysEqual == (fta == ftb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeParseRoundTripTCP(t *testing.T) {
	p := Packet{Tuple: tcpTuple(), PayloadLen: 100, TCPFlags: TCPSyn | TCPAck}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != p.Tuple {
		t.Fatalf("tuple = %v, want %v", got.Tuple, p.Tuple)
	}
	if got.PayloadLen != 100 {
		t.Fatalf("payload = %d, want 100", got.PayloadLen)
	}
	if got.TCPFlags != TCPSyn|TCPAck {
		t.Fatalf("flags = %#x, want SYN|ACK", got.TCPFlags)
	}
	if got.WireLen != len(frame) {
		t.Fatalf("wire len = %d, want %d", got.WireLen, len(frame))
	}
}

func TestEncodeParseRoundTripUDP(t *testing.T) {
	ft := tcpTuple()
	ft.Proto = ProtoUDP
	frame, err := Encode(Packet{Tuple: ft, PayloadLen: 31})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != ft || got.PayloadLen != 31 {
		t.Fatalf("parse = %+v", got)
	}
}

func TestEncodeParseRoundTripIPv6(t *testing.T) {
	ft := FiveTuple{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1234,
		DstPort: 80,
		Proto:   ProtoTCP,
	}
	frame, err := Encode(Packet{Tuple: ft, PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != ft {
		t.Fatalf("tuple = %v, want %v", got.Tuple, ft)
	}
}

func TestEncodeParseICMP(t *testing.T) {
	ft := FiveTuple{
		Src:   netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst:   netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		Proto: ProtoICMP,
	}
	frame, err := Encode(Packet{Tuple: ft, PayloadLen: 12})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple.Proto != ProtoICMP || got.Tuple.SrcPort != 0 || got.Tuple.DstPort != 0 {
		t.Fatalf("ICMP parse = %v", got.Tuple)
	}
}

func TestEncodedIPv4ChecksumValid(t *testing.T) {
	frame, err := Encode(Packet{Tuple: tcpTuple(), PayloadLen: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIPv4Checksum(frame[EthernetHeaderLen:]) {
		t.Fatal("encoded IPv4 header checksum does not verify")
	}
	// Corrupt a header byte: checksum must fail.
	frame[EthernetHeaderLen+8] ^= 0xFF
	if VerifyIPv4Checksum(frame[EthernetHeaderLen:]) {
		t.Fatal("checksum verified on corrupted header")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	valid, err := Encode(Packet{Tuple: tcpTuple(), PayloadLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"runt ethernet", valid[:10]},
		{"truncated ip", valid[:EthernetHeaderLen+8]},
		{"truncated tcp", valid[:EthernetHeaderLen+IPv4HeaderLen+6]},
		{"bad ethertype", func() []byte {
			f := append([]byte(nil), valid...)
			f[12], f[13] = 0x08, 0x06 // ARP
			return f
		}()},
		{"bad ihl", func() []byte {
			f := append([]byte(nil), valid...)
			f[EthernetHeaderLen] = 4<<4 | 2 // IHL 2
			return f
		}()},
		{"version mismatch", func() []byte {
			f := append([]byte(nil), valid...)
			f[EthernetHeaderLen] = 6<<4 | 5
			return f
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.frame); err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
		})
	}
}

func TestParseFuzzNoPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(data) // must never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsInvalidTuple(t *testing.T) {
	if _, err := Encode(Packet{}); err == nil {
		t.Fatal("Encode accepted zero tuple")
	}
}

// TestLineRateArithmetic pins the paper's §V-B numbers: 59.52 Mpps at
// 40 Gbps with the standard 12-byte IFG, 68.49 Mpps with a 1-byte IFG.
func TestLineRateArithmetic(t *testing.T) {
	if got := LineRatePPS(40, StandardIFGBytes) / 1e6; math.Abs(got-59.52) > 0.01 {
		t.Fatalf("40GbE std IFG = %.2f Mpps, want 59.52", got)
	}
	if got := LineRatePPS(40, 1) / 1e6; math.Abs(got-68.49) > 0.01 {
		t.Fatalf("40GbE 1-byte IFG = %.2f Mpps, want 68.49", got)
	}
}
