package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Header sizes and constants for the wire formats this package speaks.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	IPv6HeaderLen     = 40
	TCPHeaderLen      = 20 // without options
	UDPHeaderLen      = 8

	// EtherTypeIPv4 and EtherTypeIPv6 are the EtherType values parsed.
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD

	// MinLayer1FrameBytes is the minimum Layer-1 footprint of an Ethernet
	// packet used by the paper's line-rate arithmetic (§V-B): 64-byte
	// minimum frame + 7-byte preamble + 1-byte SFD = 72 bytes, to which an
	// interframe gap is added separately.
	MinLayer1FrameBytes = 72
	// StandardIFGBytes is the standard 12-byte-time interframe gap.
	StandardIFGBytes = 12
)

// Packet is a parsed packet: the flow tuple plus the lengths the flow
// statistics track.
type Packet struct {
	Tuple FiveTuple
	// WireLen is the Layer-2 frame length in bytes.
	WireLen int
	// PayloadLen is the L4 payload length in bytes.
	PayloadLen int
	// TCPFlags holds the TCP flag byte (0 for non-TCP).
	TCPFlags uint8
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPAck = 1 << 4
)

// Encode builds a wire-format Ethernet/IP/L4 frame for the packet,
// padding the payload with zeros to PayloadLen bytes. It is the generator
// side of the codec used by traces and tests.
func Encode(p Packet) ([]byte, error) {
	ft := p.Tuple
	if !ft.Valid() {
		return nil, fmt.Errorf("packet: invalid tuple %v", ft)
	}
	var l4 []byte
	switch ft.Proto {
	case ProtoTCP:
		l4 = make([]byte, TCPHeaderLen+p.PayloadLen)
		binary.BigEndian.PutUint16(l4[0:2], ft.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], ft.DstPort)
		l4[12] = 5 << 4 // data offset: 5 words
		l4[13] = p.TCPFlags
		binary.BigEndian.PutUint16(l4[14:16], 65535)
	case ProtoUDP:
		l4 = make([]byte, UDPHeaderLen+p.PayloadLen)
		binary.BigEndian.PutUint16(l4[0:2], ft.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], ft.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(UDPHeaderLen+p.PayloadLen))
	default:
		l4 = make([]byte, p.PayloadLen)
	}

	var ip []byte
	if ft.IsIPv4() {
		ip = make([]byte, IPv4HeaderLen, IPv4HeaderLen+len(l4))
		ip[0] = 4<<4 | 5 // version 4, IHL 5
		total := IPv4HeaderLen + len(l4)
		binary.BigEndian.PutUint16(ip[2:4], uint16(total))
		ip[8] = 64 // TTL
		ip[9] = ft.Proto
		src, dst := ft.Src.As4(), ft.Dst.As4()
		copy(ip[12:16], src[:])
		copy(ip[16:20], dst[:])
		binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:IPv4HeaderLen]))
		ip = append(ip, l4...)
	} else {
		ip = make([]byte, IPv6HeaderLen, IPv6HeaderLen+len(l4))
		ip[0] = 6 << 4
		binary.BigEndian.PutUint16(ip[4:6], uint16(len(l4)))
		ip[6] = ft.Proto
		ip[7] = 64 // hop limit
		src, dst := ft.Src.As16(), ft.Dst.As16()
		copy(ip[8:24], src[:])
		copy(ip[24:40], dst[:])
		ip = append(ip, l4...)
	}

	frame := make([]byte, EthernetHeaderLen, EthernetHeaderLen+len(ip))
	// Locally administered placeholder MACs.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 1})
	etherType := uint16(EtherTypeIPv4)
	if !ft.IsIPv4() {
		etherType = EtherTypeIPv6
	}
	binary.BigEndian.PutUint16(frame[12:14], etherType)
	return append(frame, ip...), nil
}

// Parse extracts the flow tuple and lengths from a wire-format Ethernet
// frame. It handles IPv4 (without options rejection — IHL respected) and
// IPv6 (fixed header), TCP and UDP; other protocols yield a tuple with
// zero ports.
func Parse(frame []byte) (Packet, error) {
	var p Packet
	if len(frame) < EthernetHeaderLen {
		return p, fmt.Errorf("packet: frame of %d bytes shorter than Ethernet header", len(frame))
	}
	p.WireLen = len(frame)
	etherType := binary.BigEndian.Uint16(frame[12:14])
	payload := frame[EthernetHeaderLen:]

	var l4 []byte
	switch etherType {
	case EtherTypeIPv4:
		if len(payload) < IPv4HeaderLen {
			return p, fmt.Errorf("packet: truncated IPv4 header (%d bytes)", len(payload))
		}
		if v := payload[0] >> 4; v != 4 {
			return p, fmt.Errorf("packet: IPv4 EtherType but IP version %d", v)
		}
		ihl := int(payload[0]&0x0F) * 4
		if ihl < IPv4HeaderLen || len(payload) < ihl {
			return p, fmt.Errorf("packet: bad IPv4 IHL %d", ihl)
		}
		total := int(binary.BigEndian.Uint16(payload[2:4]))
		if total < ihl || total > len(payload) {
			return p, fmt.Errorf("packet: IPv4 total length %d out of range", total)
		}
		p.Tuple.Proto = payload[9]
		p.Tuple.Src = netip.AddrFrom4([4]byte(payload[12:16]))
		p.Tuple.Dst = netip.AddrFrom4([4]byte(payload[16:20]))
		l4 = payload[ihl:total]
	case EtherTypeIPv6:
		if len(payload) < IPv6HeaderLen {
			return p, fmt.Errorf("packet: truncated IPv6 header (%d bytes)", len(payload))
		}
		if v := payload[0] >> 4; v != 6 {
			return p, fmt.Errorf("packet: IPv6 EtherType but IP version %d", v)
		}
		plen := int(binary.BigEndian.Uint16(payload[4:6]))
		if IPv6HeaderLen+plen > len(payload) {
			return p, fmt.Errorf("packet: IPv6 payload length %d out of range", plen)
		}
		p.Tuple.Proto = payload[6]
		p.Tuple.Src = netip.AddrFrom16([16]byte(payload[8:24]))
		p.Tuple.Dst = netip.AddrFrom16([16]byte(payload[24:40]))
		l4 = payload[IPv6HeaderLen : IPv6HeaderLen+plen]
	default:
		return p, fmt.Errorf("packet: unsupported EtherType %#04x", etherType)
	}

	switch p.Tuple.Proto {
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return p, fmt.Errorf("packet: truncated TCP header (%d bytes)", len(l4))
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
		off := int(l4[12]>>4) * 4
		if off < TCPHeaderLen || off > len(l4) {
			return p, fmt.Errorf("packet: bad TCP data offset %d", off)
		}
		p.TCPFlags = l4[13]
		p.PayloadLen = len(l4) - off
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return p, fmt.Errorf("packet: truncated UDP header (%d bytes)", len(l4))
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.PayloadLen = len(l4) - UDPHeaderLen
	default:
		p.PayloadLen = len(l4)
	}
	return p, nil
}

// ipv4Checksum computes the RFC 791 header checksum with the checksum
// field zeroed.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the header checksum of an IPv4 header
// (including its checksum field) validates.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < IPv4HeaderLen {
		return false
	}
	var sum uint32
	for i := 0; i+1 < IPv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum) == 0xFFFF
}

// LineRatePPS returns the packet-per-second requirement of an Ethernet
// link of linkGbps for minimum-size packets with the given interframe gap
// in byte times — the paper's §V-B arithmetic: at 40 Gbps with a 12-byte
// IFG the requirement is 59.52 Mpps; with a 1-byte IFG, 68.49 Mpps.
func LineRatePPS(linkGbps float64, ifgBytes int) float64 {
	bitsPerPacket := float64((MinLayer1FrameBytes + ifgBytes) * 8)
	return linkGbps * 1e9 / bitsPerPacket
}
