package table_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/hashfn"
	"repro/internal/table"
	"repro/internal/table/slotarr"
)

// TestDifferentialOpStreamAllBackends is the differential harness that
// pins the hashed fast path across the whole registry over the standard
// 13-byte inline-stored keys: for every
// registered backend, one seeded random op-stream (lookups, duplicate
// inserts, deletes, enough load for evictions and fullness) is driven
// simultaneously through
//
//   - a byte-key instance (the reference semantics),
//   - a hashed instance driven purely through the HashedBackend methods,
//   - a plain-map reference model of what must be resident.
//
// Every op must be bit-identical between the two instances — IDs,
// presence, error identity (ErrTableFull or not) — and consistent with
// the model; Len and the probe counters must agree at the end. This is
// the harness that lets the remaining backends be refactored without
// losing bit-identity with the seed semantics.
func TestDifferentialOpStreamAllBackends(t *testing.T) {
	cfg := table.Config{Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16, Hash: hashfn.DefaultPair()}
	runDifferentialOpStream(t, cfg, key13)
}

// TestDifferentialOpStreamSpilledKeys re-runs the differential harness
// with 48-byte keys — beyond slotarr.MaxInline, so every backend stores
// keys through the rare-case spill path instead of the inline arena. The
// probe discipline (tags, first-match order, probe counters) must be
// bit-identical to the byte-key reference regardless of layout.
func TestDifferentialOpStreamSpilledKeys(t *testing.T) {
	if slotarr.MaxInline >= spillKeyLen {
		t.Fatalf("spill test key length %d does not exceed MaxInline %d", spillKeyLen, slotarr.MaxInline)
	}
	cfg := table.Config{Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16, KeyLen: spillKeyLen, Hash: hashfn.DefaultPair()}
	runDifferentialOpStream(t, cfg, func(i uint64) []byte { return keyN(i, spillKeyLen) })
}

// spillKeyLen is the oversized key length of the spill-path differential
// run (an IPv6-scale descriptor).
const spillKeyLen = 48

// runDifferentialOpStream drives the seeded op stream of the differential
// harness over every registered backend built from cfg, with keys drawn
// from mkKey.
func runDifferentialOpStream(t *testing.T, cfg table.Config, mkKey func(uint64) []byte) {
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			plainBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hashedBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hb, ok := hashedBE.(table.HashedBackend)
			if !ok {
				for _, canonical := range canonicalBackends {
					if name == canonical {
						t.Fatalf("%s does not implement table.HashedBackend; every canonical backend must", name)
					}
				}
				t.Skipf("%s has no hashed fast path (test-only fallback backend)", name)
			}

			// Cuckoo relocation moves entries between slots, so stored IDs
			// drift after inserts; and a failed insert both places the new
			// key and orphans an arbitrary resident one, after which the
			// model's residency view is stale. The differential plain-vs-
			// hashed assertions stay exact throughout; the model assertions
			// degrade only where the structure's own semantics force it.
			idStable := name != "cuckoo"
			evictive := name == "cuckoo"
			degraded := false

			model := make(map[string]uint64)   // key -> first-insert ID
			everTried := make(map[string]bool) // keys ever offered to Insert
			rng := rand.New(rand.NewSource(7))
			inserted, deleted, fullErrs := 0, 0, 0
			for op := 0; op < 8000; op++ {
				k := mkKey(uint64(rng.Intn(900)))
				kh := cfg.Hash.Compute(k)
				switch rng.Intn(4) {
				case 0: // insert
					idA, errA := plainBE.Insert(k)
					idB, errB := hb.InsertHashed(k, kh)
					if idA != idB || (errA == nil) != (errB == nil) ||
						errors.Is(errA, table.ErrTableFull) != errors.Is(errB, table.ErrTableFull) {
						t.Fatalf("op %d insert: plain (%d,%v) vs hashed (%d,%v)", op, idA, errA, idB, errB)
					}
					everTried[string(k)] = true
					switch {
					case errA == nil:
						inserted++
						if prev, present := model[string(k)]; present {
							if idStable && !degraded && prev != idA {
								t.Fatalf("op %d duplicate insert returned ID %d, first insert said %d", op, idA, prev)
							}
						} else {
							model[string(k)] = idA
						}
					case !errors.Is(errA, table.ErrTableFull):
						t.Fatalf("op %d insert failed with a non-fullness error: %v", op, errA)
					default:
						fullErrs++
						if evictive {
							// The failed chain rearranged residents; the
							// model can no longer assert exact residency.
							degraded = true
						}
					}
				case 1, 2: // lookup
					idA, okA := plainBE.Lookup(k)
					idB, okB := hb.LookupHashed(k, kh)
					if idA != idB || okA != okB {
						t.Fatalf("op %d lookup: plain (%d,%v) vs hashed (%d,%v)", op, idA, okA, idB, okB)
					}
					want, present := model[string(k)]
					if !degraded {
						if present != okA {
							t.Fatalf("op %d lookup: table says %v, model says %v", op, okA, present)
						}
						if present && idStable && idA != want {
							t.Fatalf("op %d lookup returned ID %d, model says %d", op, idA, want)
						}
					} else if okA && !everTried[string(k)] {
						// A failed cuckoo insert still places the new key
						// (only its final evictee goes homeless), so degraded
						// hits may fall outside the model — but never outside
						// the set of keys ever offered to Insert.
						t.Fatalf("op %d lookup hit a key never offered to Insert", op)
					}
				case 3: // delete
					okA := plainBE.Delete(k)
					okB := hb.DeleteHashed(k, kh)
					if okA != okB {
						t.Fatalf("op %d delete: plain %v vs hashed %v", op, okA, okB)
					}
					_, present := model[string(k)]
					if !degraded && present != okA {
						t.Fatalf("op %d delete: table says %v, model says %v", op, okA, present)
					}
					if okA {
						deleted++
						delete(model, string(k))
					}
				}
			}
			if inserted == 0 || deleted == 0 || fullErrs == 0 {
				t.Fatalf("stream too tame (%d inserts, %d deletes, %d full errors); raise the pressure",
					inserted, deleted, fullErrs)
			}
			if plainBE.Len() != hashedBE.Len() {
				t.Fatalf("Len: plain %d vs hashed %d", plainBE.Len(), hashedBE.Len())
			}
			if !degraded && plainBE.Len() != len(model) {
				t.Fatalf("Len %d disagrees with model %d", plainBE.Len(), len(model))
			}
			if plainBE.Probes() != hashedBE.Probes() {
				t.Fatalf("Probes: plain %d vs hashed %d — the fast path changed the cost model",
					plainBE.Probes(), hashedBE.Probes())
			}
		})
	}
}

// TestInsertBatchInto covers the caller-supplied-buffer writer form:
// results must match InsertBatch exactly (IDs and per-key error identity),
// dirty buffers must be fully overwritten, and the buffer-length contract
// must panic.
func TestInsertBatchInto(t *testing.T) {
	mk := func() *table.Sharded {
		s, err := table.NewSharded("singlehash", 4,
			table.Config{Capacity: 256, SlotsPerBucket: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Two identically configured tables: one driven by InsertBatch, one by
	// InsertBatchInto; overflow pressure makes per-key errors appear.
	a, b := mk(), mk()
	keys := keys13(0, 600)
	wantIDs, wantErrs := a.InsertBatch(keys)
	ids := make([]uint64, len(keys))
	errs := make([]error, len(keys))
	for i := range ids { // poison
		ids[i] = ^uint64(0)
		errs[i] = errors.New("stale")
	}
	b.InsertBatchInto(keys, ids, errs)
	sawErr := false
	for i := range keys {
		var wantErr error
		if wantErrs != nil {
			wantErr = wantErrs[i]
		}
		if (wantErr == nil) != (errs[i] == nil) ||
			errors.Is(wantErr, table.ErrTableFull) != errors.Is(errs[i], table.ErrTableFull) {
			t.Fatalf("key %d: Into err %v, InsertBatch said %v", i, errs[i], wantErr)
		}
		if errs[i] != nil {
			sawErr = true
			continue
		}
		if ids[i] != wantIDs[i] {
			t.Fatalf("key %d: Into ID %d, InsertBatch said %d", i, ids[i], wantIDs[i])
		}
	}
	if !sawErr {
		t.Fatal("no overflow errors surfaced; the error path went unexercised")
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len: InsertBatch %d vs InsertBatchInto %d", a.Len(), b.Len())
	}
	// Duplicate reinsert: every key already resident must re-resolve with
	// its existing ID and a nil error over a poisoned errs buffer.
	for i := range errs {
		errs[i] = errors.New("stale")
	}
	b.InsertBatchInto(keys, ids, errs)
	for i := range keys {
		if wantErrs != nil && wantErrs[i] != nil {
			continue // never admitted
		}
		if errs[i] != nil || ids[i] != wantIDs[i] {
			t.Fatalf("key %d reinsert: (%d, %v), want (%d, nil)", i, ids[i], errs[i], wantIDs[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("InsertBatchInto with short buffers did not panic")
		}
	}()
	b.InsertBatchInto(keys, make([]uint64, 4), errs)
}

// TestShardedWriterPipelineRaceStress is the race-detector certificate for
// the writer pipeline: for every backend, writers hammer InsertBatchInto /
// DeleteBatchInto over reused caller-owned buffers while shared-lock
// readers run scalar and batched lookups over a resident key set. Run
// under -race (CI does) this catches any writer-path mutation visible
// outside the exclusive shard locks.
func TestShardedWriterPipelineRaceStress(t *testing.T) {
	for _, backend := range table.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 4, table.Config{Capacity: 1 << 14}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const resident = 2000
			base := keys13(0, resident)
			if _, errs := s.InsertBatch(base); errs != nil {
				for i, e := range errs {
					if e != nil && !errors.Is(e, table.ErrTableFull) {
						t.Fatalf("preload %d: %v", i, e)
					}
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Writers: disjoint upper ranges, full insert+delete rounds
			// through the *Into pipeline with reused buffers.
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					span := keys13(uint64(1<<20+w*4096), uint64(1<<20+w*4096+128))
					ids := make([]uint64, len(span))
					errs := make([]error, len(span))
					oks := make([]bool, len(span))
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.InsertBatchInto(span, ids, errs)
						for i, e := range errs {
							if e != nil && !errors.Is(e, table.ErrTableFull) {
								t.Errorf("writer %d insert %d: %v", w, i, e)
								return
							}
						}
						s.DeleteBatchInto(span, oks)
					}
				}(w)
			}
			// Readers: scalar + batch over the resident set.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					batch := base[r*512 : r*512+512]
					ids := make([]uint64, len(batch))
					hits := make([]bool, len(batch))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						s.LookupBatchInto(batch, ids, hits)
						s.Lookup(base[(i*13+r)%resident])
						s.Len()
					}
				}(r)
			}
			for i := 0; i < 150; i++ {
				s.LookupBatch(base[:256])
			}
			close(stop)
			wg.Wait()
			// Writers drained their own ranges; the resident set must be
			// intact (modulo preload overflow losses).
			got := 0
			for _, k := range base {
				if _, ok := s.Lookup(k); ok {
					got++
				}
			}
			if got == 0 {
				t.Fatal("resident keys vanished under writer stress")
			}
		})
	}
}

// collisionSigBuckets is the bucket count tag collisions are forced at in
// TestTagCollisionProbingAllBackends. Reduce masks low bits for powers of
// two, so two keys sharing a bucket at 4096 share it at every smaller
// power-of-two bucket count — i.e. in every backend built from the small
// test config, whatever its internal geometry.
const collisionSigBuckets = 4096

// findTagCollision returns two distinct 13-byte keys that share both
// their H1 bucket (at collisionSigBuckets) and their H1-derived
// fingerprint tag — the adversarial input for the tag-probe layout: a
// probe for either key encounters the other as a tag-matching candidate
// and must reject it on the full key compare.
func findTagCollision(t *testing.T, pair hashfn.Pair) ([]byte, []byte) {
	t.Helper()
	seen := map[uint32]uint64{}
	for i := uint64(0); i < 1<<22; i++ {
		k := key13(i)
		w := pair.H1.Hash(k)
		sig := uint32(hashfn.Reduce(w, collisionSigBuckets)) | uint32(slotarr.TagOf(w))<<12
		if j, dup := seen[sig]; dup {
			return key13(j), k
		}
		seen[sig] = i
	}
	t.Fatal("no tag collision found in 4M keys — tag derivation broken?")
	return nil, nil
}

// TestTagCollisionProbingAllBackends forces two keys to share a bucket
// and a fingerprint tag in every registered backend, then pins the
// collision semantics: both keys are resident under distinct IDs, probe
// results stay bit-identical between the byte-key and hashed paths, and
// deleting one collider neither loses nor corrupts the other.
func TestTagCollisionProbingAllBackends(t *testing.T) {
	cfg := table.Config{Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16, Hash: hashfn.DefaultPair()}
	k1, k2 := findTagCollision(t, cfg.Hash)
	w1, w2 := cfg.Hash.H1.Hash(k1), cfg.Hash.H1.Hash(k2)
	if slotarr.TagOf(w1) != slotarr.TagOf(w2) || hashfn.Reduce(w1, collisionSigBuckets) != hashfn.Reduce(w2, collisionSigBuckets) {
		t.Fatalf("collision search returned a non-colliding pair (%x, %x)", k1, k2)
	}
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			plainBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hashedBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hb, ok := hashedBE.(table.HashedBackend)
			if !ok {
				t.Skipf("%s has no hashed fast path", name)
			}
			kh1, kh2 := cfg.Hash.Compute(k1), cfg.Hash.Compute(k2)
			// both returns the plain-path result after checking the hashed
			// path agreed bit-for-bit.
			bothLookup := func(k []byte, kh hashfn.KeyHashes) (uint64, bool) {
				t.Helper()
				idA, okA := plainBE.Lookup(k)
				idB, okB := hb.LookupHashed(k, kh)
				if idA != idB || okA != okB {
					t.Fatalf("lookup %x: plain (%d,%v) vs hashed (%d,%v)", k, idA, okA, idB, okB)
				}
				return idA, okA
			}
			id1p, err1 := plainBE.Insert(k1)
			id1h, err1h := hb.InsertHashed(k1, kh1)
			id2p, err2 := plainBE.Insert(k2)
			id2h, err2h := hb.InsertHashed(k2, kh2)
			if err1 != nil || err1h != nil || err2 != nil || err2h != nil {
				t.Fatalf("inserts failed: %v %v %v %v", err1, err1h, err2, err2h)
			}
			if id1p != id1h || id2p != id2h {
				t.Fatalf("IDs diverge between paths: (%d,%d) vs (%d,%d)", id1p, id2p, id1h, id2h)
			}
			if id1p == id2p {
				t.Fatalf("colliding keys stored under one ID %d", id1p)
			}
			if id, ok := bothLookup(k1, kh1); !ok || id != id1p {
				t.Fatalf("k1 lookup (%d,%v), want (%d,true)", id, ok, id1p)
			}
			if id, ok := bothLookup(k2, kh2); !ok || id != id2p {
				t.Fatalf("k2 lookup (%d,%v), want (%d,true)", id, ok, id2p)
			}
			// Removing the first collider must expose nothing stale: k2
			// still resolves (the probe continues past the cleared slot),
			// k1 misses even though k2's slot still carries its tag.
			if a, b := plainBE.Delete(k1), hb.DeleteHashed(k1, kh1); !a || !b {
				t.Fatalf("delete k1: plain %v hashed %v", a, b)
			}
			if _, ok := bothLookup(k1, kh1); ok {
				t.Fatal("k1 still resident after delete")
			}
			if id, ok := bothLookup(k2, kh2); !ok || id != id2p {
				t.Fatalf("k2 lost after deleting its tag collider: (%d,%v)", id, ok)
			}
			if plainBE.Probes() != hashedBE.Probes() {
				t.Fatalf("probes diverged: plain %d vs hashed %d", plainBE.Probes(), hashedBE.Probes())
			}
		})
	}
}

// TestDifferentialOpStreamWideBuckets re-runs the differential harness
// with 16-slot buckets — probe ranges spanning two SWAR tag words, the
// geometry that exercises every backend's wide-bucket fallback (the
// single-word TagMatches leaf is only valid for K <= 8; a missing
// fallback loses keys placed beyond slot 8).
func TestDifferentialOpStreamWideBuckets(t *testing.T) {
	// Capacity shrinks with the wider buckets so the op stream still
	// saturates the structures (the harness requires fullness errors).
	cfg := table.Config{Capacity: 128, SlotsPerBucket: 16, CAMCapacity: 16, Hash: hashfn.DefaultPair()}
	runDifferentialOpStream(t, cfg, key13)
}
