package table

import (
	"errors"
	"sync/atomic"

	"repro/internal/hashfn"
)

// Errors explaining a rejected SetFullPolicy switch.
var (
	errNeedExpiry     = errors.New("table: FullEvictIdlest requires EnableExpiry (last-seen timestamps define the idlest slot)")
	errNeedCandidates = errors.New("table: FullEvictIdlest requires hashed backends implementing CandidateSlotter")
)

// This file defines the overload-degradation layer of the Sharded table:
// what happens when a shard's backend cannot place a new key. The default
// (FullReject) surfaces ErrTableFull and counts the rejection; the
// graceful policy (FullEvictIdlest) reclaims the least-recently-seen slot
// among the failing key's own candidate slots — reusing the lifecycle
// layer's timestamp side-tables — and retries, so a flooded table sheds
// idle mice instead of refusing new elephants.

// FullPolicy selects how a Sharded table responds when a backend insert
// fails with ErrTableFull.
type FullPolicy uint8

// Full-table policies.
const (
	// FullReject surfaces ErrTableFull to the caller — the historical
	// behaviour, now with the rejection counted in OverloadStats.
	FullReject FullPolicy = iota
	// FullEvictIdlest reclaims the candidate slot with the oldest
	// last-seen stamp, reports it through the expiry callback with reason
	// ExpireEvicted, and retries the insert once. Requires EnableExpiry
	// (the timestamps) and backends implementing CandidateSlotter.
	FullEvictIdlest
)

// String returns the policy name.
func (p FullPolicy) String() string {
	switch p {
	case FullReject:
		return "reject"
	case FullEvictIdlest:
		return "evict-idlest"
	default:
		return "FullPolicy(?)"
	}
}

// CandidateSlotter is the optional overload-degradation extension of
// EvictableBackend: a structure that can enumerate the occupied slots an
// insert of the given key could have used. Freeing any one of them must
// let an immediately retried insert of the same key succeed without
// relocations wherever the structure can guarantee it (two-choice and
// d-left tables can; a cuckoo retry may still kick, and in a pathological
// chain still fail, which the caller counts rather than loops on).
//
// kh follows the HashedBackend contract (the backend's own pair over the
// key bytes). Only currently occupied slots are appended — the backend
// owns the occupancy bits, so the caller never needs a second interface
// to filter. Callers must hold the same exclusive lock as Insert.
type CandidateSlotter interface {
	// AppendCandidateSlots appends the occupied candidate slot IDs of
	// kh's key onto dst and returns the extended slice.
	AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64
}

// OverloadStats aggregates the full-table pressure counters across
// shards. RejectedInserts counts inserts that surfaced ErrTableFull to
// the caller (after any eviction retry); PressureEvictions counts
// resident flows reclaimed by FullEvictIdlest. Both stay zero while the
// table has headroom — the gauge of how hard the working set presses
// against capacity.
type OverloadStats struct {
	// RejectedInserts counts inserts that returned ErrTableFull.
	RejectedInserts int64
	// PressureEvictions counts flows evicted to make room under
	// FullEvictIdlest.
	PressureEvictions int64
}

// OverloadStats returns a snapshot of the table's pressure counters.
func (s *Sharded) OverloadStats() OverloadStats {
	var os OverloadStats
	for i := range s.shards {
		os.RejectedInserts += s.shards[i].rejected.Load()
		os.PressureEvictions += s.shards[i].evicted.Load()
	}
	return os
}

// FullPolicy returns the active full-table policy.
func (s *Sharded) FullPolicy() FullPolicy { return s.onFull }

// SetFullPolicy switches the full-table policy. FullEvictIdlest requires
// the lifecycle layer (EnableExpiry supplies the last-seen timestamps
// that define "idlest") and shard backends that implement
// CandidateSlotter over the hashed fast path; the switch is rejected
// otherwise. Like SetOptimisticReads it must not be called concurrently
// with table operations — flip it during setup.
func (s *Sharded) SetFullPolicy(p FullPolicy) error {
	if p == FullEvictIdlest {
		if s.expiry == nil {
			return errNeedExpiry
		}
		if !s.hashed || !s.evictCapable {
			return errNeedCandidates
		}
	}
	s.onFull = p
	return nil
}

// pendingEvictRec stages one pressure-evicted flow between DeleteSlot
// (under the shard's write lock) and the expiry callback (after release).
// Key bytes live in the owning pendingEvictions.key buffer.
type pendingEvictRec struct {
	id     uint64
	first  int64
	last   int64
	keyOff int
	keyLen int
}

// pendingEvictions is the pooled working set of one insert call's
// pressure evictions: the candidate-slot scratch, the victims' key
// snapshots, and the staged records. Pooled per call (not per shard) so
// concurrent inserts on different shards never share a buffer.
type pendingEvictions struct {
	cand []uint64
	key  []byte
	recs []pendingEvictRec
}

// getEvictScratch returns a cleared pendingEvictions from the pool.
func (s *Sharded) getEvictScratch() *pendingEvictions {
	pe := s.evPool.Get().(*pendingEvictions)
	pe.cand = pe.cand[:0]
	pe.key = pe.key[:0]
	pe.recs = pe.recs[:0]
	return pe
}

// evictIdlestLocked reclaims the least-recently-seen occupied candidate
// slot of kh's key on shard, staging the victim's export record in pe. It
// returns whether a slot was freed. Caller holds the shard's write lock
// inside a write section and must fire pe's records through
// fireEvictions after releasing the lock. The victim can live outside
// the key's stripe-covered buckets (a hashcam candidate set includes CAM
// slots), so a targeted section is promoted to the global word before
// the delete.
func (s *Sharded) evictIdlestLocked(sh *shardState, shard int, kh hashfn.KeyHashes, pe *pendingEvictions) bool {
	exp := s.expiry
	if exp == nil || sh.cbe == nil {
		return false
	}
	sh.escalateLocked()
	st := &exp.shards[shard]
	t := st.tabs.Load()
	// During a migration, candidates span live placements only (inserts
	// go to the live arena, and freeing a live candidate is what unblocks
	// the retry); the retiring arena's occupants are reclaimed by the
	// migration itself or the sweep, never by overload pressure.
	pe.cand = sh.cbe.AppendCandidateSlots(pe.cand[:0], kh)
	if len(pe.cand) == 0 {
		return false
	}
	// Idlest = largest epoch distance since the last touch. The signed
	// cast keeps a concurrent Advance (which can publish epoch cur+1 into
	// a racing touch) from making a just-touched slot look ancient.
	cur := exp.epoch.Load()
	victim, bestAge := uint64(0), int64(-1)
	for _, slot := range pe.cand {
		d := int32(cur - atomic.LoadUint32(&t.lastSeen[slot]))
		if d < 0 {
			d = 0
		}
		if int64(d) > bestAge {
			victim, bestAge = slot, int64(d)
		}
	}
	off := len(pe.key)
	kb, ok := st.ebe.AppendSlotKey(pe.key, victim)
	if !ok {
		return false // unreachable: candidates are occupied by contract
	}
	pe.key = kb
	first, _ := exp.timeOf(t.firstSeen[victim])
	last, _ := exp.timeOf(atomic.LoadUint32(&t.lastSeen[victim]))
	if !st.ebe.DeleteSlot(victim) {
		pe.key = pe.key[:off]
		return false
	}
	sh.evicted.Add(1)
	exp.pressureEvicted.Add(1)
	pe.recs = append(pe.recs, pendingEvictRec{
		id: s.globalID(shard, victim), first: first, last: last,
		keyOff: off, keyLen: len(pe.key) - off,
	})
	return true
}

// fireEvictions reports pe's staged pressure evictions to the expiry
// callback (reason ExpireEvicted) and returns pe to the pool. Called
// after every shard lock is released, so the callback may re-enter any
// table operation, including Advance.
func (s *Sharded) fireEvictions(pe *pendingEvictions) {
	exp := s.expiry
	if exp != nil && exp.onExpired != nil {
		for _, rec := range pe.recs {
			key := pe.key[rec.keyOff : rec.keyOff+rec.keyLen]
			exp.onExpired(rec.id, key, rec.first, rec.last, ExpireEvicted)
		}
	}
	s.evPool.Put(pe)
}
