package table

import "testing"

// TestWithDefaultsClampVsValidateError pins both halves of the oversized
// capacity contract from inside the package: Validate (the path every
// constructor routes through) rejects Capacity > MaxCapacity with an
// error, while withDefaults still clamps — the belt-and-braces for code
// that derives geometry (BucketsFor) from an unvalidated config.
func TestWithDefaultsClampVsValidateError(t *testing.T) {
	over := Config{Capacity: MaxCapacity + 1}
	if err := over.Validate(); err == nil {
		t.Fatal("Validate accepted Capacity > MaxCapacity")
	}
	if got := over.withDefaults().Capacity; got != MaxCapacity {
		t.Fatalf("withDefaults clamped to %d, want MaxCapacity (%d)", got, int64(MaxCapacity))
	}
	if err := (Config{Capacity: -1}).Validate(); err == nil {
		t.Fatal("Validate accepted a negative capacity")
	}
	if err := (Config{Capacity: 1024}).Validate(); err != nil {
		t.Fatalf("Validate rejected an in-range config: %v", err)
	}
}

// TestExpiryDefensiveBranches covers two straggler guards from inside
// the package: a touch aimed at a slot ID retired by a post-migration
// shrink must be dropped by the bounds check, and a shard expiry state
// whose tables were never published reports a zero footprint.
func TestExpiryDefensiveBranches(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{Capacity: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(ExpiryConfig{IdleTimeout: 100, SweepBudget: 32}); err != nil {
		t.Fatal(err)
	}
	s.expiry.touch(0, 1<<30, 1) // out of bounds: must be a silent no-op
	var st shardExpiryState
	if got := st.sideTableBytes(); got != 0 {
		t.Fatalf("sideTableBytes = %d with no published tables, want 0", got)
	}
}

// TestAdvanceWithoutExpiryPanics pins the misuse guard: driving the
// lifecycle clock on a table that never enabled the layer is a
// programming error, not a silent no-op.
func TestAdvanceWithoutExpiryPanics(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{Capacity: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance before EnableExpiry did not panic")
		}
	}()
	s.Advance(1)
}
