package table_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/hashfn"
	"repro/internal/table"
)

// TestHashedUnhashedEquivalenceAllBackends is the property test of the
// single-hash-pass fast path: for every registered backend that
// implements table.HashedBackend, a randomised op sequence driven through
// the hashed methods must return exactly the IDs, presence results and
// errors of the byte-key path on an identically configured instance, and
// leave identical Len and Probes accounting. Backends without the fast
// path are exercised through Sharded's transparent fallback below.
func TestHashedUnhashedEquivalenceAllBackends(t *testing.T) {
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			cfg := table.Config{Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16, Hash: hashfn.DefaultPair()}
			plainBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hashedBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hb, ok := hashedBE.(table.HashedBackend)
			if !ok {
				t.Skipf("%s has no hashed fast path (served by the byte-key fallback)", name)
			}
			rng := rand.New(rand.NewSource(42))
			// Dense key space plus overflow pressure: the sequence hits
			// duplicate inserts, misses, deletes and full-table errors.
			for op := 0; op < 6000; op++ {
				k := key13(uint64(rng.Intn(900)))
				kh := cfg.Hash.Compute(k)
				switch rng.Intn(4) {
				case 0:
					idA, errA := plainBE.Insert(k)
					idB, errB := hb.InsertHashed(k, kh)
					if idA != idB || (errA == nil) != (errB == nil) ||
						errors.Is(errA, table.ErrTableFull) != errors.Is(errB, table.ErrTableFull) {
						t.Fatalf("op %d insert: plain (%d,%v) vs hashed (%d,%v)", op, idA, errA, idB, errB)
					}
				case 1, 2:
					idA, okA := plainBE.Lookup(k)
					idB, okB := hb.LookupHashed(k, kh)
					if idA != idB || okA != okB {
						t.Fatalf("op %d lookup: plain (%d,%v) vs hashed (%d,%v)", op, idA, okA, idB, okB)
					}
				case 3:
					if a, b := plainBE.Delete(k), hb.DeleteHashed(k, kh); a != b {
						t.Fatalf("op %d delete: plain %v vs hashed %v", op, a, b)
					}
				}
			}
			if plainBE.Len() != hashedBE.Len() {
				t.Fatalf("Len: plain %d vs hashed %d", plainBE.Len(), hashedBE.Len())
			}
			if plainBE.Probes() != hashedBE.Probes() {
				t.Fatalf("Probes: plain %d vs hashed %d — fast path changes the cost model",
					plainBE.Probes(), hashedBE.Probes())
			}
		})
	}
}

// TestShardedFallbackForUnhashedBackends pins the transparent fallback:
// every backend — hashed fast path or not — must behave identically under
// Sharded for the same op sequence as an unsharded reference.
func TestShardedFallbackForUnhashedBackends(t *testing.T) {
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			cfg := table.Config{Capacity: 1 << 14}
			single, err := table.NewSharded(name, 1, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := table.NewSharded(name, 8, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			const n = 3000
			for i := uint64(0); i < n; i++ {
				if _, err := single.Insert(key13(i)); err != nil {
					t.Fatalf("single insert %d: %v", i, err)
				}
				if _, err := sharded.Insert(key13(i)); err != nil {
					t.Fatalf("sharded insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i += 3 {
				if a, b := single.Delete(key13(i)), sharded.Delete(key13(i)); a != b {
					t.Fatalf("delete %d: single=%v sharded=%v", i, a, b)
				}
			}
			for i := uint64(0); i < 2*n; i++ {
				_, okA := single.Lookup(key13(i))
				_, okB := sharded.Lookup(key13(i))
				if okA != okB {
					t.Fatalf("lookup %d: single=%v sharded=%v", i, okA, okB)
				}
			}
			if single.Len() != sharded.Len() {
				t.Fatalf("Len: single=%d sharded=%d", single.Len(), sharded.Len())
			}
		})
	}
}

// countingFunc counts Hash invocations across goroutines.
type countingFunc struct {
	inner hashfn.Func
	calls atomic.Int64
}

func (c *countingFunc) Hash(key []byte) uint64 { c.calls.Add(1); return c.inner.Hash(key) }
func (c *countingFunc) Name() string           { return "counting(" + c.inner.Name() + ")" }

// TestShardedSingleHashPass pins the tentpole: with a hashed backend, one
// batch op over n keys evaluates each hash function exactly n times —
// shard routing, duplicate pre-checks and bucket indexing all reuse the
// one Compute per key. (Before this PR a batched insert cost 3 selector +
// H1 + H2 evaluations per key on top of the backend's own 2–4.)
func TestShardedSingleHashPass(t *testing.T) {
	h1 := &countingFunc{inner: &hashfn.Mix64{Seed: 1}}
	h2 := &countingFunc{inner: &hashfn.Mix64{Seed: 2}}
	cfg := table.Config{Capacity: 8192, Hash: hashfn.Pair{H1: h1, H2: h2}}
	s, err := table.NewSharded("hashcam", 4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 1000)
	reset := func() { h1.calls.Store(0); h2.calls.Store(0) }
	check := func(op string, want int64) {
		t.Helper()
		if got1, got2 := h1.calls.Load(), h2.calls.Load(); got1 != want || got2 != want {
			t.Fatalf("%s: %d H1 / %d H2 evaluations, want %d each", op, got1, got2, want)
		}
	}
	reset()
	if _, errs := s.InsertBatch(keys); errs != nil {
		t.Fatal(table.BatchErr(errs))
	}
	check("InsertBatch(1000 fresh keys)", 1000)
	reset()
	s.LookupBatch(keys)
	check("LookupBatch(1000 keys)", 1000)
	reset()
	s.Lookup(keys[0])
	s.Insert(keys[1])
	s.Delete(keys[2])
	check("scalar lookup+insert+delete", 3)
	reset()
	s.DeleteBatch(keys)
	check("DeleteBatch(1000 keys)", 1000)
}

// TestLookupBatchInto covers the caller-supplied-buffer variant: results
// must match LookupBatch exactly and dirty buffers must be fully
// overwritten.
func TestLookupBatchInto(t *testing.T) {
	s, err := table.NewSharded("hashcam", 4, table.Config{Capacity: 8192}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 500)
	if _, errs := s.InsertBatch(keys); errs != nil {
		t.Fatal(table.BatchErr(errs))
	}
	mixed := append(keys13(400, 600), keys13(0, 100)...) // hits and misses
	wantIDs, wantHits := s.LookupBatch(mixed)
	ids := make([]uint64, len(mixed))
	hits := make([]bool, len(mixed))
	for i := range ids { // poison the buffers
		ids[i] = ^uint64(0)
		hits[i] = true
	}
	s.LookupBatchInto(mixed, ids, hits)
	for i := range mixed {
		if ids[i] != wantIDs[i] || hits[i] != wantHits[i] {
			t.Fatalf("key %d: Into (%d,%v), LookupBatch said (%d,%v)", i, ids[i], hits[i], wantIDs[i], wantHits[i])
		}
	}
	// Delete variant: the per-key results must mirror the hits observed
	// above, and a second pass over the same keys (now absent, with a
	// poisoned buffer) must report all false.
	ok := make([]bool, len(mixed))
	s.DeleteBatchInto(mixed, ok)
	for i := range mixed {
		if ok[i] != wantHits[i] {
			t.Fatalf("key %d: DeleteBatchInto %v, want %v", i, ok[i], wantHits[i])
		}
	}
	for i := range ok {
		ok[i] = true
	}
	s.DeleteBatchInto(mixed, ok)
	for i, k := range mixed {
		if ok[i] {
			t.Fatalf("key %d reported deleted twice", i)
		}
		if _, still := s.Lookup(k); still {
			t.Fatalf("key %d survived DeleteBatchInto", i)
		}
	}
}

// TestBatchIntoPanicsOnLengthMismatch pins the buffer contract.
func TestBatchIntoPanicsOnLengthMismatch(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 8)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with short buffers did not panic", name)
			}
		}()
		f()
	}
	expectPanic("LookupBatchInto", func() {
		s.LookupBatchInto(keys, make([]uint64, 4), make([]bool, 8))
	})
	expectPanic("DeleteBatchInto", func() {
		s.DeleteBatchInto(keys, make([]bool, 7))
	})
}

// TestShardedReadConcurrentLookups is the race-detector certificate for
// the RWMutex read path: many goroutines hammer scalar and batched
// lookups over the whole key space while writers insert and delete
// continuously. Run with -race this catches any lookup-path mutation that
// bypassed the atomic counters.
func TestShardedReadConcurrentLookups(t *testing.T) {
	for _, backend := range table.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 4, table.Config{Capacity: 1 << 14}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const resident = 4000
			keys := keys13(0, resident)
			placed := resident
			if _, errs := s.InsertBatch(keys); errs != nil {
				// Structures without overflow headroom (single-hash) may
				// drop a few keys at this load; anything else is a failure.
				for i, e := range errs {
					if e == nil {
						continue
					}
					if !errors.Is(e, table.ErrTableFull) {
						t.Fatalf("insert %d: %v", i, e)
					}
					placed--
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Readers: scalar + batch, including miss traffic.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ids := make([]uint64, 256)
					hits := make([]bool, 256)
					batch := keys[r*256 : r*256+256]
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						s.Lookup(keys[(i*7+r)%resident])
						s.Lookup(key13(uint64(1 << 40))) // permanent miss
						s.LookupBatchInto(batch, ids, hits)
						s.Len()
						s.Probes()
					}
				}(r)
			}
			// Writers: churn a disjoint upper key range.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(1<<20 + w*10000)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := key13(base + uint64(i%500))
						if _, err := s.Insert(k); err != nil {
							continue // overflow under churn is fine
						}
						s.Delete(k)
					}
				}(w)
			}
			// Let them collide for a while.
			for i := 0; i < 200; i++ {
				s.LookupBatch(keys[:128])
			}
			close(stop)
			wg.Wait()
			if got := s.Len(); got < placed {
				t.Fatalf("resident keys lost under concurrency: Len = %d, want >= %d", got, placed)
			}
		})
	}
}
