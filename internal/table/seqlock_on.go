//go:build !race

package table

// seqlockCapable reports whether this build can run the optimistic
// (seqlock-validated, lock-free) read path. The path is compiled out
// under the race detector: a seqlock reader intentionally races the
// writer on the slot arenas and discards torn results after validation —
// a benign-by-construction race the detector cannot be taught about, so
// race builds keep every read under the shard RLock. The concurrency
// stress tests run in both modes: under -race they exercise the locked
// interleavings race-clean, under !race they exercise (and assert
// retries on) the optimistic protocol itself.
const seqlockCapable = true
