//go:build race

package table

// seqlockCapable is false under the race detector: the optimistic read
// path's deliberate reader/writer race on the slot arenas (torn results
// are discarded by sequence validation) would be reported as a data
// race, so race builds serve every read through the shard RLock instead.
// See seqlock_on.go for the non-race value.
const seqlockCapable = false
