package table_test

import (
	"bytes"
	"errors"
	"testing"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/hashfn"
	"repro/internal/table"
)

// evictedRec is one ExpireEvicted callback capture.
type evictedRec struct {
	id          uint64
	key         []byte
	first, last int64
	reason      table.ExpireReason
}

// captureEvictions registers an OnExpired hook that copies every callback
// into the returned slice pointer (keys are copied: the slice is reused).
func captureEvictions(s *table.Sharded) *[]evictedRec {
	out := &[]evictedRec{}
	s.OnExpired(func(id uint64, key []byte, first, last int64, reason table.ExpireReason) {
		*out = append(*out, evictedRec{
			id: id, key: append([]byte(nil), key...), first: first, last: last, reason: reason,
		})
	})
	return out
}

// TestSetFullPolicyValidation pins the policy switch contract:
// FullEvictIdlest is rejected until the lifecycle layer exists, FullReject
// is always accepted, and Config.OnFull defers activation to EnableExpiry.
func TestSetFullPolicyValidation(t *testing.T) {
	s, err := table.NewSharded("singlehash", 2, table.Config{Capacity: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFullPolicy(table.FullEvictIdlest); err == nil {
		t.Fatal("FullEvictIdlest accepted without EnableExpiry")
	}
	if got := s.FullPolicy(); got != table.FullReject {
		t.Fatalf("policy %v after rejected switch, want reject", got)
	}
	if err := s.SetFullPolicy(table.FullReject); err != nil {
		t.Fatalf("FullReject rejected: %v", err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFullPolicy(table.FullEvictIdlest); err != nil {
		t.Fatalf("FullEvictIdlest rejected with expiry enabled: %v", err)
	}
	if got := s.FullPolicy(); got != table.FullEvictIdlest {
		t.Fatalf("policy %v, want evict-idlest", got)
	}
	if table.FullReject.String() != "reject" || table.FullEvictIdlest.String() != "evict-idlest" {
		t.Fatalf("policy names %q/%q drifted", table.FullReject, table.FullEvictIdlest)
	}

	// Config.OnFull stays pending until the timestamps exist.
	s2, err := table.NewSharded("hashcam", 2,
		table.Config{Capacity: 256, OnFull: table.FullEvictIdlest}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.FullPolicy(); got != table.FullReject {
		t.Fatalf("policy %v before EnableExpiry, want reject (pending)", got)
	}
	if err := s2.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if got := s2.FullPolicy(); got != table.FullEvictIdlest {
		t.Fatalf("policy %v after EnableExpiry, want evict-idlest", got)
	}
}

// evictOnly hides everything but the EvictableBackend method set of the
// wrapped structure: the lifecycle layer works, but the hashed fast path
// (and with it CandidateSlotter) is gone — the one shape SetFullPolicy
// must reject even with expiry enabled.
type evictOnly struct {
	table.EvictableBackend
	table.StorageSized
}

func init() {
	table.Register("testevictonly", func(cfg table.Config) (table.Backend, error) {
		be, err := table.New("hashcam", cfg)
		if err != nil {
			return nil, err
		}
		return evictOnly{be.(table.EvictableBackend), be.(table.StorageSized)}, nil
	})
}

// candidateBackends filters evictableBackends down to those implementing
// CandidateSlotter — the set FullEvictIdlest can run on (testevictonly is
// evictable but candidate-blind by construction).
func candidateBackends(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range evictableBackends(t) {
		be, err := table.New(name, table.Config{Capacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := be.(table.CandidateSlotter); ok {
			out = append(out, name)
		}
	}
	return out
}

// TestFullPolicyRequiresCandidateSlots pins the second validation leg:
// a backend that supports expiry but not the hashed candidate-slot
// enumeration cannot run FullEvictIdlest — neither via SetFullPolicy nor
// via Config.OnFull (where EnableExpiry must fail atomically, leaving the
// lifecycle layer off).
func TestFullPolicyRequiresCandidateSlots(t *testing.T) {
	s, err := table.NewSharded("testevictonly", 2, table.Config{Capacity: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFullPolicy(table.FullEvictIdlest); err == nil {
		t.Fatal("FullEvictIdlest accepted without CandidateSlotter backends")
	}

	s2, err := table.NewSharded("testevictonly", 2,
		table.Config{Capacity: 256, OnFull: table.FullEvictIdlest}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30}); err == nil {
		t.Fatal("EnableExpiry activated a pending FullEvictIdlest the backends cannot serve")
	}
	if s2.ExpiryEnabled() {
		t.Fatal("failed EnableExpiry left the lifecycle layer half-on")
	}
}

// TestLifecycleDisabledAccessors pins the no-expiry surface: zero values
// from the read accessors, a panic from OnExpired (a callback that could
// never fire is a setup bug), a rejected invalid ExpiryConfig, and the
// fallback names of the enum stringers.
func TestLifecycleDisabledAccessors(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %d without expiry, want 0", got)
	}
	if got := s.ExpiryStats(); got != (table.ExpiryStats{}) {
		t.Fatalf("ExpiryStats() = %+v without expiry, want zero", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OnExpired before EnableExpiry did not panic")
			}
		}()
		s.OnExpired(func(uint64, []byte, int64, int64, table.ExpireReason) {})
	}()
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: -1}); err == nil {
		t.Fatal("EnableExpiry accepted a negative timeout")
	}
	if got := table.FullPolicy(42).String(); got != "FullPolicy(?)" {
		t.Fatalf("unknown policy stringer %q", got)
	}
	if got := table.ExpireReason(42).String(); got != "ExpireReason(42)" {
		t.Fatalf("unknown reason stringer %q", got)
	}
}

// TestFullRejectCountsRejections pins the accounting half of the default
// policy: every surfaced ErrTableFull — scalar and batch path — advances
// OverloadStats.RejectedInserts, and nothing is evicted.
func TestFullRejectCountsRejections(t *testing.T) {
	// One shard, one 8-slot bucket: every key collides, so fullness is
	// exact at 8 residents.
	mk := func() *table.Sharded {
		s, err := table.NewSharded("singlehash", 1,
			table.Config{Capacity: 8, SlotsPerBucket: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk()
	scalarFull := 0
	for _, k := range keys13(0, 32) {
		if _, err := s.Insert(k); errors.Is(err, table.ErrTableFull) {
			scalarFull++
		} else if err != nil {
			t.Fatalf("unexpected insert error: %v", err)
		}
	}
	if scalarFull != 32-8 {
		t.Fatalf("%d scalar rejections, want %d", scalarFull, 32-8)
	}
	if os := s.OverloadStats(); os.RejectedInserts != int64(scalarFull) || os.PressureEvictions != 0 {
		t.Fatalf("stats %+v, want %d rejections and no evictions", os, scalarFull)
	}

	b := mk()
	_, errs := b.InsertBatch(keys13(0, 32))
	batchFull := 0
	for _, err := range errs {
		if errors.Is(err, table.ErrTableFull) {
			batchFull++
		}
	}
	if batchFull != 32-8 {
		t.Fatalf("%d batch rejections, want %d", batchFull, 32-8)
	}
	if os := b.OverloadStats(); os.RejectedInserts != int64(batchFull) {
		t.Fatalf("stats %+v disagree with %d batch rejections", os, batchFull)
	}
}

// TestFullEvictIdlestDeterministicVictim drives the eviction policy on a
// geometry where the victim choice is fully determined — one shard, one
// 8-slot bucket, so the candidate set is the whole table and "idlest"
// means globally least-recently-seen — and pins the exported record:
// exactly the untouched flow is reclaimed, with its true first/last
// timestamps and reason ExpireEvicted, while the insert that triggered it
// succeeds.
func TestFullEvictIdlestDeterministicVictim(t *testing.T) {
	s, err := table.NewSharded("singlehash", 1,
		table.Config{Capacity: 8, SlotsPerBucket: 8, OnFull: table.FullEvictIdlest}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30, SweepBudget: 16}); err != nil {
		t.Fatal(err)
	}
	evs := captureEvictions(s)

	s.Advance(10)
	keys := keys13(0, 8)
	for _, k := range keys {
		if _, err := s.Insert(k); err != nil {
			t.Fatalf("fill insert: %v", err)
		}
	}
	// t=20: touch everything except key 7, leaving it the unique idlest.
	s.Advance(20)
	for _, k := range keys[:7] {
		if _, ok := s.Lookup(k); !ok {
			t.Fatalf("resident key %x missing before overload", k)
		}
	}
	s.Advance(30)
	newID, err := s.Insert(key13(100))
	if err != nil {
		t.Fatalf("overloaded insert under evict-idlest: %v", err)
	}
	if len(*evs) != 1 {
		t.Fatalf("%d evictions fired, want 1", len(*evs))
	}
	ev := (*evs)[0]
	if !bytes.Equal(ev.key, key13(7)) {
		t.Fatalf("evicted %x, want the untouched key %x", ev.key, key13(7))
	}
	if ev.reason != table.ExpireEvicted {
		t.Fatalf("reason %v, want evicted", ev.reason)
	}
	if ev.first != 10 || ev.last != 10 {
		t.Fatalf("victim timestamps (%d,%d), want (10,10)", ev.first, ev.last)
	}
	if _, ok := s.Lookup(key13(7)); ok {
		t.Fatal("victim still resident after eviction")
	}
	if id, ok := s.Lookup(key13(100)); !ok || id != newID {
		t.Fatalf("new flow lookup (%d,%v), want (%d,true)", id, ok, newID)
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len %d after one-for-one eviction, want 8", got)
	}

	// Second round through the batch path: key 3 is now the unique idlest
	// (last touched at t=40 for everything else).
	s.Advance(40)
	for i, k := range keys[:7] {
		if i != 3 {
			s.Lookup(k)
		}
	}
	s.Lookup(key13(100))
	s.Advance(50)
	_, errs := s.InsertBatch([][]byte{key13(101)})
	if errs != nil {
		t.Fatalf("batch insert under evict-idlest: %v", table.BatchErr(errs))
	}
	if len(*evs) != 2 {
		t.Fatalf("%d evictions after second overload, want 2", len(*evs))
	}
	ev = (*evs)[1]
	if !bytes.Equal(ev.key, key13(3)) {
		t.Fatalf("second victim %x, want %x", ev.key, key13(3))
	}
	if ev.first != 10 || ev.last != 20 {
		t.Fatalf("second victim timestamps (%d,%d), want (10,20)", ev.first, ev.last)
	}

	os := s.OverloadStats()
	if os.PressureEvictions != 2 || os.RejectedInserts != 0 {
		t.Fatalf("overload stats %+v, want 2 evictions and 0 rejections", os)
	}
	st := s.ExpiryStats()
	if st.PressureEvicted != 2 || st.Evicted != 2 {
		t.Fatalf("expiry stats %+v disagree with 2 pressure evictions", st)
	}
}

// TestFullEvictIdlestOversubscribedAllBackends floods every evictable
// backend with 4x its capacity under FullEvictIdlest, half through the
// scalar path and half through batches. Backends whose candidate-slot
// contract guarantees a kick-free retry (every one but cuckoo) must admit
// every flow with zero rejections; cuckoo may reject on a pathological
// re-kick but must still shed load through evictions. Counters and the
// callback stream must agree everywhere.
func TestFullEvictIdlestOversubscribedAllBackends(t *testing.T) {
	for _, backend := range candidateBackends(t) {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 2,
				table.Config{Capacity: 128, SlotsPerBucket: 2, CAMCapacity: 8,
					OnFull: table.FullEvictIdlest}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30, SweepBudget: 256}); err != nil {
				t.Fatal(err)
			}
			evs := captureEvictions(s)
			s.Advance(10)

			inserted := map[string]bool{}
			rejected := 0
			keys := keys13(0, 512)
			offered := map[string]bool{}
			for _, k := range keys {
				offered[string(k)] = true
			}
			for _, k := range keys[:256] {
				_, err := s.Insert(k)
				switch {
				case err == nil:
					inserted[string(k)] = true
				case errors.Is(err, table.ErrTableFull):
					rejected++
				default:
					t.Fatalf("insert: %v", err)
				}
			}
			_, errs := s.InsertBatch(keys[256:]) // nil errs == every key admitted
			for i, k := range keys[256:] {
				var err error
				if errs != nil {
					err = errs[i]
				}
				switch {
				case err == nil:
					inserted[string(k)] = true
				case errors.Is(err, table.ErrTableFull):
					rejected++
				default:
					t.Fatalf("batch insert %d: %v", i, err)
				}
			}

			if backend != "cuckoo" && rejected != 0 {
				t.Fatalf("%d rejections on a kick-free backend; evict-idlest must admit every flow", rejected)
			}
			if len(*evs) == 0 {
				t.Fatal("4x oversubscription produced no pressure evictions")
			}
			for _, ev := range *evs {
				if ev.reason != table.ExpireEvicted {
					t.Fatalf("reason %v, want evicted", ev.reason)
				}
				// A victim earlier in the same batch as its evictor is
				// reported before the batch's bookkeeping returns, so the
				// check is against the offered set, not the admitted one.
				if !offered[string(ev.key)] {
					t.Fatalf("evicted key %x was never offered", ev.key)
				}
			}
			os := s.OverloadStats()
			if os.PressureEvictions != int64(len(*evs)) {
				t.Fatalf("PressureEvictions %d, callbacks %d", os.PressureEvictions, len(*evs))
			}
			if os.RejectedInserts != int64(rejected) {
				t.Fatalf("RejectedInserts %d, observed %d", os.RejectedInserts, rejected)
			}
			if st := s.ExpiryStats(); st.PressureEvicted != os.PressureEvictions {
				t.Fatalf("ExpiryStats.PressureEvicted %d != OverloadStats %d",
					st.PressureEvicted, os.PressureEvictions)
			}
			// Conservation: everything admitted is either resident or was
			// reported evicted. Cuckoo only bounds it — an exhausted kick
			// chain places the new key but orphans its final evictee without
			// a callback, so residents can leak out silently.
			got, want := s.Len(), len(inserted)-len(*evs)
			if backend == "cuckoo" {
				if got > want || got == 0 {
					t.Fatalf("Len %d outside (0, %d admitted - %d evicted]",
						got, len(inserted), len(*evs))
				}
			} else if got != want {
				t.Fatalf("Len %d, want %d admitted - %d evicted = %d",
					got, len(inserted), len(*evs), want)
			}
		})
	}
}

// TestHashSeedDeterministicPlacement pins the keyed-hashing contract at
// the table layer: equal seeds reproduce placement (location-derived IDs)
// exactly, different seeds place differently, and the seed reaches the
// shard selector as well as the per-backend hash words.
func TestHashSeedDeterministicPlacement(t *testing.T) {
	build := func(seed uint64) *table.Sharded {
		s, err := table.NewSharded("hashcam", 4,
			table.Config{Capacity: 4096, HashSeed: seed}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	keys := keys13(0, 512)
	a, b, c := build(0xfeedface), build(0xfeedface), build(0xdecafbad)
	idsA, errsA := a.InsertBatch(keys)
	idsB, _ := b.InsertBatch(keys)
	idsC, _ := c.InsertBatch(keys)
	if errsA != nil {
		t.Fatal(table.BatchErr(errsA))
	}
	diff := 0
	for i := range keys {
		if idsA[i] != idsB[i] {
			t.Fatalf("key %d: seed-equal tables placed at %d vs %d", i, idsA[i], idsB[i])
		}
		if idsA[i] != idsC[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("512 keys placed identically under different seeds; the seed is not reaching the hash")
	}
}

// TestHashSeedKeysShardSelector pins the satellite fix: with an explicit
// hash pair (so H1/H2 are seed-independent), HashSeed alone must still
// re-key the shard selector — the per-key shard assignment changes with
// the seed instead of riding the fixed mix constant.
func TestHashSeedKeysShardSelector(t *testing.T) {
	const shards = 8
	build := func(seed uint64) *table.Sharded {
		s, err := table.NewSharded("singlehash", shards,
			table.Config{Capacity: 8192, Hash: hashfn.DefaultPair(), HashSeed: seed}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	keys := keys13(0, 512)
	unseeded, seeded, seeded2 := build(0), build(12345), build(12345)
	idsU, errsU := unseeded.InsertBatch(keys)
	idsS, errsS := seeded.InsertBatch(keys)
	idsS2, _ := seeded2.InsertBatch(keys)
	if errsU != nil || errsS != nil {
		t.Fatal(table.BatchErr(errsU), table.BatchErr(errsS))
	}
	moved := 0
	for i := range keys {
		if idsS[i] != idsS2[i] {
			t.Fatalf("key %d: equal selector seeds routed to IDs %d vs %d", i, idsS[i], idsS2[i])
		}
		// Global IDs encode the shard in the low bits.
		if idsU[i]%shards != idsS[i]%shards {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key changed shard under a selector seed; HashSeed is not keying the selector")
	}
}
