package table_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/hashfn"
	"repro/internal/table"
)

// growableBackends returns the registered backends implementing
// table.GrowableBackend (the elastic-capacity set: hashcam, dleft,
// singlehash).
func growableBackends(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range table.Backends() {
		be, err := table.New(name, table.Config{Capacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := be.(table.GrowableBackend); ok {
			out = append(out, name)
		}
	}
	return out
}

// TestGrowDifferentialMidStream extends the differential harness across a
// migration: a seeded op stream runs through a byte-key instance, a
// hashed instance, and a plain-map model, and mid-stream both instances
// grow in lock-step — BeginGrow, then budgeted MigrateSteps interleaved
// with further ops, then FinishGrow. Every op must stay bit-identical
// between the two instances throughout (IDs, presence, error identity,
// probe counters); the model pins membership. IDs drift as entries
// migrate, so ID-vs-model assertions stop at the first BeginGrow — the
// instance-vs-instance ID equality keeps running.
func TestGrowDifferentialMidStream(t *testing.T) {
	cfg := table.Config{Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16, Hash: hashfn.DefaultPair()}
	for _, name := range growableBackends(t) {
		t.Run(name, func(t *testing.T) {
			plainBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hashedBE, err := table.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hb := hashedBE.(table.HashedBackend)
			ga, gb := plainBE.(table.GrowableBackend), hashedBE.(table.GrowableBackend)

			model := make(map[string]bool)
			rng := rand.New(rand.NewSource(11))
			grew := false // a grow has begun: stored IDs may have drifted
			dropped := 0  // migration drops (lossy re-placement) on either instance
			migrating := false
			doneSteps := 0
			for op := 0; op < 12000; op++ {
				switch {
				case op == 4000:
					// Mid-stream grow, driven identically on both instances.
					la, errA := ga.BeginGrow(2 * 512)
					lb, errB := gb.BeginGrow(2 * 512)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("BeginGrow: plain %v vs hashed %v", errA, errB)
					}
					if errA != nil {
						t.Fatalf("BeginGrow: %v", errA)
					}
					if la != lb {
						t.Fatalf("GrowLayout: plain %+v vs hashed %+v", la, lb)
					}
					if la.OldBase != la.NewBound || la.OldBound <= la.OldBase || la.Stable > la.NewBound {
						t.Fatalf("malformed layout %+v", la)
					}
					if ga.SlotIDBound() != la.OldBound {
						t.Fatalf("SlotIDBound %d during migration, layout says %d", ga.SlotIDBound(), la.OldBound)
					}
					grew, migrating = true, true
				case migrating && op%16 == 0:
					mA, dA, doneA := ga.MigrateStep(48)
					mB, dB, doneB := gb.MigrateStep(48)
					if mA != mB || dA != dB || doneA != doneB {
						t.Fatalf("MigrateStep: plain (%d,%d,%v) vs hashed (%d,%d,%v)", mA, dA, doneA, mB, dB, doneB)
					}
					dropped += dA
					if doneA {
						ga.FinishGrow()
						gb.FinishGrow()
						migrating = false
						doneSteps++
					}
				}
				k := key13(uint64(rng.Intn(900)))
				kh := cfg.Hash.Compute(k)
				switch rng.Intn(4) {
				case 0: // insert
					idA, errA := plainBE.Insert(k)
					idB, errB := hb.InsertHashed(k, kh)
					if idA != idB || (errA == nil) != (errB == nil) ||
						errors.Is(errA, table.ErrTableFull) != errors.Is(errB, table.ErrTableFull) {
						t.Fatalf("op %d insert: plain (%d,%v) vs hashed (%d,%v)", op, idA, errA, idB, errB)
					}
					if errA == nil {
						model[string(k)] = true
					} else if !errors.Is(errA, table.ErrTableFull) {
						t.Fatalf("op %d insert failed with a non-fullness error: %v", op, errA)
					}
				case 1, 2: // lookup
					idA, okA := plainBE.Lookup(k)
					idB, okB := hb.LookupHashed(k, kh)
					if idA != idB || okA != okB {
						t.Fatalf("op %d lookup: plain (%d,%v) vs hashed (%d,%v)", op, idA, okA, idB, okB)
					}
					if dropped == 0 && model[string(k)] != okA {
						t.Fatalf("op %d lookup: table says %v, model says %v (grew=%v)", op, okA, model[string(k)], grew)
					}
				case 3: // delete
					okA := plainBE.Delete(k)
					okB := hb.DeleteHashed(k, kh)
					if okA != okB {
						t.Fatalf("op %d delete: plain %v vs hashed %v", op, okA, okB)
					}
					if dropped == 0 && model[string(k)] != okA {
						t.Fatalf("op %d delete: table says %v, model says %v", op, okA, model[string(k)])
					}
					delete(model, string(k))
				}
			}
			if !grew || doneSteps == 0 {
				t.Fatal("migration never ran to completion; rebalance the schedule")
			}
			if migrating {
				t.Fatal("migration still in flight at stream end; raise the step cadence")
			}
			if plainBE.Len() != hashedBE.Len() {
				t.Fatalf("Len: plain %d vs hashed %d", plainBE.Len(), hashedBE.Len())
			}
			if dropped == 0 && plainBE.Len() != len(model) {
				t.Fatalf("Len %d disagrees with model %d", plainBE.Len(), len(model))
			}
			if plainBE.Probes() != hashedBE.Probes() {
				t.Fatalf("Probes: plain %d vs hashed %d", plainBE.Probes(), hashedBE.Probes())
			}
		})
	}
}

// TestShardedGrowConvergesAndPreservesEntries drives the orchestrated
// path end to end on every growable backend: a populated, expiry-enabled
// sharded table grows 2×, the migration drains through piggybacked
// Advance pumps, every entry survives with its ID-tracked timestamps
// (the final mass-expiry reports non-zero stamps for all of them), and
// the capacity accounting reflects the new geometry.
func TestShardedGrowConvergesAndPreservesEntries(t *testing.T) {
	for _, backend := range growableBackends(t) {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 2, table.Config{Capacity: 2048}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 40, SweepBudget: 256}); err != nil {
				t.Fatal(err)
			}
			s.Advance(1)
			keys := keys13(0, 600)
			if _, errs := s.InsertBatch(keys); errs != nil {
				t.Fatal(table.BatchErr(errs))
			}
			before := s.SlotCapacity()
			if before < 2048 {
				t.Fatalf("SlotCapacity %d below nominal 2048", before)
			}
			if err := s.Grow(2); err != nil {
				t.Fatal(err)
			}
			if gs := s.GrowStats(); gs.Grows != 2 || gs.ActiveGrows != 2 {
				t.Fatalf("after Grow: stats %+v, want 2 started and 2 active", gs)
			}
			// The Stable region (hashcam's CAM) does not grow, so the bound
			// is the doubled nominal capacity, not double the real one.
			if after := s.SlotCapacity(); after < 2*2048 || after <= before {
				t.Fatalf("SlotCapacity %d after Grow(2), want >= %d and > %d", after, 2*2048, before)
			}
			// Drain via the Advance piggyback alone — the sweep pump must
			// converge a read-mostly table.
			for i := 0; i < 10000 && s.GrowStats().ActiveGrows > 0; i++ {
				s.Advance(1)
			}
			gs := s.GrowStats()
			if gs.ActiveGrows != 0 {
				t.Fatalf("migration never converged: %+v", gs)
			}
			if gs.MigrateSteps == 0 || gs.MigratedSlots != 600 || gs.DroppedSlots != 0 {
				t.Fatalf("migration stats %+v, want 600 moved, 0 dropped", gs)
			}
			_, hits := s.LookupBatch(keys)
			for i, h := range hits {
				if !h {
					t.Fatalf("key %d lost across migration", i)
				}
			}
			if got := s.Len(); got != 600 {
				t.Fatalf("Len %d after migration, want 600", got)
			}
			// The expiry side-tables must have followed the migrated slots:
			// every entry still expires exactly once, with real timestamps.
			zeroStamps := 0
			s.OnExpired(func(_ uint64, _ []byte, first, last int64, _ table.ExpireReason) {
				if first == 0 && last == 0 {
					zeroStamps++
				}
			})
			evicted := 0
			for i := 0; i < 200 && evicted < 600; i++ {
				evicted += s.Advance(1 << 41)
			}
			if evicted != 600 || zeroStamps != 0 {
				t.Fatalf("mass expiry after migration: %d evicted (%d with zero stamps), want 600 and 0",
					evicted, zeroStamps)
			}
		})
	}
}

// TestShardedAutoGrow pins the load-factor trigger: a table armed with
// MaxLoadFactor auto-grows under insert pressure alone and, once the
// population fits, retains every flow with zero failed inserts on the
// final pass — the elastic answer to oversubscription.
func TestShardedAutoGrow(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 512, CAMCapacity: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 0.7, StepBudget: 128}); err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 2048) // 4× nominal capacity
	// Repeated passes: inserts both trigger growth and pump migration.
	for pass := 0; pass < 64; pass++ {
		ok := true
		for _, k := range keys {
			if _, err := s.Insert(k); err != nil {
				ok = false
			}
		}
		if ok && s.GrowStats().ActiveGrows == 0 {
			break
		}
	}
	gs := s.GrowStats()
	if gs.Grows == 0 {
		t.Fatalf("auto-grow never triggered: %+v", gs)
	}
	if gs.ActiveGrows != 0 {
		t.Fatalf("migration never converged: %+v", gs)
	}
	for i, k := range keys {
		if _, err := s.Insert(k); err != nil {
			t.Fatalf("failed insert for key %d after growth converged: %v", i, err)
		}
	}
	if got := s.Len(); got != len(keys) {
		t.Fatalf("Len %d after auto-grow, want %d", got, len(keys))
	}
}

// TestGrowUnsupportedBackends pins the clean rejection: cuckoo and the
// conventional arrangement opt out of online growth, so explicit Grow and
// auto-growth configs fail with ErrGrowUnsupported up front — while a
// growth config without auto-grow (a bare StepBudget) stays accepted
// everywhere, since it arms nothing.
func TestGrowUnsupportedBackends(t *testing.T) {
	for _, backend := range []string{"cuckoo", "convhashcam"} {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 2, table.Config{Capacity: 512}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Grow(2); !errors.Is(err, table.ErrGrowUnsupported) {
				t.Fatalf("Grow on %s: %v, want ErrGrowUnsupported", backend, err)
			}
			if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 0.7}); !errors.Is(err, table.ErrGrowUnsupported) {
				t.Fatalf("SetGrowth(auto) on %s: %v, want ErrGrowUnsupported", backend, err)
			}
			if err := s.SetGrowth(table.GrowthConfig{StepBudget: 64}); err != nil {
				t.Fatalf("SetGrowth(no auto) on %s: %v, want nil", backend, err)
			}
		})
	}
}

// TestGrowthConfigValidate pins the config edges.
func TestGrowthConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		cfg table.GrowthConfig
		ok  bool
	}{
		{table.GrowthConfig{}, true},
		{table.GrowthConfig{MaxLoadFactor: 0.9, StepBudget: 64, Factor: 4}, true},
		{table.GrowthConfig{MaxLoadFactor: -0.1}, false},
		{table.GrowthConfig{MaxLoadFactor: 1.5}, false},
		{table.GrowthConfig{Factor: 1}, false},
		{table.GrowthConfig{Factor: -2}, false},
	} {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

// TestCapacityValidationAllConstructorPaths pins the oversized-capacity
// contract on every path: the registry constructors, table.New and
// NewSharded all reject Capacity > MaxCapacity with an error — never the
// silent clamp the per-package defaults apply.
func TestCapacityValidationAllConstructorPaths(t *testing.T) {
	over := table.Config{Capacity: table.MaxCapacity + 1}
	for _, name := range table.Backends() {
		if _, err := table.New(name, over); err == nil {
			t.Errorf("table.New(%q) accepted Capacity > MaxCapacity", name)
		}
		if _, err := table.NewSharded(name, 2, over, nil); err == nil {
			t.Errorf("NewSharded(%q) accepted Capacity > MaxCapacity", name)
		}
	}
	if _, err := table.New("hashcam", table.Config{Capacity: -1}); err == nil {
		t.Error("table.New accepted a negative capacity")
	}
}

// TestSlotCapacityRealVsNominal pins the capacity-accounting distinction:
// SlotCapacity reports the real (post-rounding) slot bound, at least the
// nominal capacity and 0 for backends with no dense slot space.
func TestSlotCapacityRealVsNominal(t *testing.T) {
	s, err := table.NewSharded("hashcam", 4, table.Config{Capacity: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SlotCapacity(); got < 1000 {
		t.Fatalf("SlotCapacity %d below nominal 1000", got)
	}
	p, err := table.NewSharded("testplain", 1, table.Config{Capacity: 64}, nil)
	if err != nil {
		t.Skipf("testplain unavailable: %v", err)
	}
	if got := p.SlotCapacity(); got != 0 {
		t.Fatalf("SlotCapacity on a slot-space-less backend = %d, want 0", got)
	}
}

// TestShardedGrowRaceStress exercises the full concurrent surface across
// a migration: optimistic readers, writers, the expiry sweep and an
// explicit Grow all running together. Run under -race this is the
// memory-model check for the two-arena swap; in any mode it checks
// convergence and that the stable population survives.
func TestShardedGrowRaceStress(t *testing.T) {
	s, err := table.NewSharded("hashcam", 4, table.Config{Capacity: 4096, CAMCapacity: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 40, SweepBudget: 128}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetGrowth(table.GrowthConfig{StepBudget: 64}); err != nil {
		t.Fatal(err)
	}
	s.Advance(1)
	stable := keys13(0, 1024) // never deleted; must survive everything
	if _, errs := s.InsertBatch(stable); errs != nil {
		t.Fatal(table.BatchErr(errs))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, hits := s.LookupBatch(stable)
				for i, h := range hits {
					if !h {
						t.Errorf("stable key %d missing mid-stress", i)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			churn := keys13(uint64(2048+512*w), uint64(2048+512*(w+1)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := churn[i%len(churn)]
				if i%3 == 2 {
					s.Delete(k)
				} else {
					_, _ = s.Insert(k)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for now := int64(2); ; now++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Advance(now)
		}
	}()
	if err := s.Grow(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000 && s.GrowStats().ActiveGrows > 0; i++ {
		s.Advance(1 << 20)
	}
	close(stop)
	wg.Wait()
	if gs := s.GrowStats(); gs.ActiveGrows != 0 {
		t.Fatalf("migration never converged under stress: %+v", gs)
	}
	_, hits := s.LookupBatch(stable)
	for i, h := range hits {
		if !h {
			t.Fatalf("stable key %d lost across concurrent migration", i)
		}
	}
}

// TestGrowAccessorsAndErrors pins the small control surface: the Growth
// accessor round-trips the stored config, SetGrowth rejects an unusable
// one, Grow rejects factors below 2, and a Grow issued while a shard's
// migration is still in flight is a clean no-op on that shard rather than
// a second overlapping resize.
func TestGrowAccessorsAndErrors(t *testing.T) {
	s, err := table.NewSharded("hashcam", 1, table.Config{Capacity: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 0.5, StepBudget: 7}); err != nil {
		t.Fatal(err)
	}
	if got := s.Growth(); got.MaxLoadFactor != 0.5 || got.StepBudget != 7 {
		t.Fatalf("Growth() = %+v, want the stored config back", got)
	}
	if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 1.5}); err == nil {
		t.Fatal("SetGrowth accepted MaxLoadFactor > 1")
	}
	if err := s.Grow(1); err == nil {
		t.Fatal("Grow(1) accepted")
	}
	for _, k := range keys13(0, 64) {
		if _, err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Grow(2); err != nil {
		t.Fatal(err)
	}
	if got := s.GrowStats().ActiveGrows; got != 1 {
		t.Fatalf("ActiveGrows = %d after Grow, want 1", got)
	}
	if err := s.Grow(2); err != nil {
		t.Fatalf("Grow during an active migration should no-op, got %v", err)
	}
	if got := s.GrowStats().Grows; got != 1 {
		t.Fatalf("Grows = %d after overlapping Grow calls, want 1", got)
	}
}

// TestGrowOnFullTrigger pins the second auto-grow trigger at the table
// layer: with a threshold so high the load-factor check can never fire
// first, per-bucket overflow (ErrTableFull) must start the grow and the
// retried inserts must converge with every key admitted.
func TestGrowOnFullTrigger(t *testing.T) {
	for _, mode := range []string{"scalar", "batch"} {
		t.Run(mode, func(t *testing.T) {
			s, err := table.NewSharded("hashcam", 1, table.Config{Capacity: 256, CAMCapacity: 8}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 0.999, StepBudget: 64}); err != nil {
				t.Fatal(err)
			}
			keys := keys13(0, 1024)
			for pass := 0; pass < 64; pass++ {
				ok := true
				if mode == "batch" {
					_, errs := s.InsertBatch(keys)
					for _, e := range errs {
						if e != nil {
							ok = false
						}
					}
				} else {
					for _, k := range keys {
						if _, err := s.Insert(k); err != nil {
							ok = false
						}
					}
				}
				if ok && s.GrowStats().ActiveGrows == 0 {
					break
				}
			}
			gs := s.GrowStats()
			if gs.Grows == 0 {
				t.Fatalf("grow-on-full never triggered: %+v", gs)
			}
			if gs.ActiveGrows != 0 {
				t.Fatalf("migration never converged: %+v", gs)
			}
			if got := s.Len(); got != len(keys) {
				t.Fatalf("Len %d after grow-on-full convergence, want %d", got, len(keys))
			}
		})
	}
}

// TestOldArenaReadsCounted pins the migration-visibility counter: with a
// grow begun but nothing pumping (lookups never migrate), resident
// entries are served from the retiring arena and each such hit counts.
func TestOldArenaReadsCounted(t *testing.T) {
	s, err := table.NewSharded("hashcam", 1, table.Config{Capacity: 1024, CAMCapacity: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 512)
	for _, k := range keys {
		if _, err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Grow(2); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, ok := s.Lookup(k); !ok {
			t.Fatalf("key %d lost at migration start", i)
		}
	}
	if got := s.GrowStats().OldArenaReads; got == 0 {
		t.Fatal("no old-arena reads counted while the whole population sat in the retiring arena")
	}
}

// TestShardedMiscAccounting covers two small accounting corners: a
// backend with no dense slot storage reports a zero per-slot footprint,
// and a seeded config routes shards through the keyed selector.
func TestShardedMiscAccounting(t *testing.T) {
	plain, err := table.NewSharded("testplain", 1, table.Config{Capacity: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.BytesPerSlot(); got != 0 {
		t.Fatalf("BytesPerSlot = %g for storage-less backend, want 0", got)
	}
	keyed, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 256, HashSeed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys13(0, 32) {
		if _, err := keyed.Insert(k); err != nil {
			t.Fatal(err)
		}
		if _, ok := keyed.Lookup(k); !ok {
			t.Fatal("keyed table lost a key")
		}
	}
}
