package table

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hashfn"
)

// shardSelectorSeed seeds the fallback shard-selector hash used for
// backends without a hashed fast path. The selector must be independent of
// the backends' own H1/H2 pair: selecting shards with bits of the same
// hash that indexes buckets would correlate the partition with bucket
// placement and unbalance the shards. Backends with a hashed fast path
// route off hashfn.KeyHashes.Mix instead, which provides the same
// independence without a third hash pass.
const shardSelectorSeed = 0x5ca1ab1e_0ddba11

// Sharded partitions one logical table across N independently locked
// shards, each holding its own Backend instance. Keys are routed by a
// dedicated selector word; all operations on one key always land on the
// same shard, so per-key semantics are exactly those of the underlying
// backend. Sharded itself implements Backend, so shards compose with
// everything that consumes the contract.
//
// Locking is read/write: lookups take a shard's lock shared, so
// read-mostly traffic proceeds concurrently within one shard; inserts and
// deletes take it exclusively. Backends therefore only need
// lookups-concurrent-with-lookups safety, which the registry's structures
// provide via atomic stat counters.
//
// When the backend implements HashedBackend, every operation makes a
// single hash pass per key (hashfn.Pair.Compute): the resulting KeyHashes
// both routes the shard (via the Mix word) and indexes the buckets, and
// IDs, stages and errors are bit-identical to the unhashed path.
//
// IDs returned by a Sharded table encode the owning shard in the low bits
// (local<<shardBits | shard); they are stable for the lifetime of an entry
// but differ numerically from the IDs an unsharded backend would assign.
type Sharded struct {
	shards    []shardState
	pair      hashfn.Pair // the backends' configured pair, for Compute
	sel       hashfn.Func // non-nil: route by sel instead of KeyHashes.Mix
	hashed    bool        // every shard backend implements HashedBackend
	shardBits uint
	name      string

	scratch sync.Pool // *batchScratch

	// expiry is the optional flow-lifecycle layer (nil until
	// EnableExpiry): per-slot timestamp side-tables and the incremental
	// eviction sweep. The non-expiring hot path pays one nil check.
	expiry *expiryState
}

// shardState pairs a backend with its lock. hbe and pbe are the same
// backend downcast once at construction, so the hot path never
// type-asserts.
type shardState struct {
	mu  sync.RWMutex
	be  Backend
	hbe HashedBackend   // nil when be has no hashed fast path
	pbe PrefetchBackend // nil when be cannot prefetch buckets
}

// NewSharded builds an N-way sharded table over the named backend. Each
// shard receives cfg with Capacity divided by the shard count (rounded
// up), so total capacity is preserved. shards must be >= 1. A nil selector
// routes by the single-pass KeyHashes.Mix word when the backend supports
// the hashed path (falling back to an independent Mix64 otherwise); a
// non-nil selector always routes by selector.Hash.
func NewSharded(backend string, shards int, cfg Config, selector hashfn.Func) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("table: shard count must be >= 1, got %d", shards)
	}
	if cfg.Capacity > MaxCapacity {
		return nil, fmt.Errorf("table: capacity %d exceeds maximum %d", cfg.Capacity, MaxCapacity)
	}
	cfg = cfg.withDefaults()
	per := cfg
	per.Capacity = (cfg.Capacity + shards - 1) / shards
	// The CAM overflow store divides like the main capacity, so a sharded
	// table's total collision headroom matches the unsharded equivalent
	// (otherwise N shards would absorb N× the overflow before filling).
	per.CAMCapacity = (cfg.CAMCapacity + shards - 1) / shards
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	s := &Sharded{
		shards:    make([]shardState, shards),
		pair:      cfg.Hash,
		sel:       selector,
		shardBits: bits,
	}
	s.scratch.New = func() any { return new(batchScratch) }
	for i := range s.shards {
		be, err := New(backend, per)
		if err != nil {
			return nil, err
		}
		s.shards[i].be = be
		s.shards[i].hbe, _ = be.(HashedBackend)
		s.shards[i].pbe, _ = be.(PrefetchBackend)
	}
	s.hashed = s.shards[0].hbe != nil
	if s.sel == nil && !s.hashed {
		// No hashed pass to piggyback on: fall back to the historical
		// dedicated selector so routing costs one cheap Mix64, not a
		// pair computation used for nothing else.
		s.sel = &hashfn.Mix64{Seed: shardSelectorSeed}
	}
	s.name = fmt.Sprintf("sharded(%s,%d)", s.shards[0].be.Name(), shards)
	return s, nil
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// hashedRouting reports whether operations compute KeyHashes once and
// route by its Mix word (the single-hash-pass fast path).
func (s *Sharded) hashedRouting() bool { return s.hashed && s.sel == nil }

// shardOf routes a key to its shard in the selector-routed configuration.
func (s *Sharded) shardOf(key []byte) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hashfn.Reduce(s.sel.Hash(key), len(s.shards))
}

// shardOfMix routes by the precomputed selector word.
func (s *Sharded) shardOfMix(kh hashfn.KeyHashes) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hashfn.Reduce(kh.Mix, len(s.shards))
}

// globalID folds the shard index into a backend-local ID.
func (s *Sharded) globalID(shard int, local uint64) uint64 {
	return local<<s.shardBits | uint64(shard)
}

// DecodeID splits a Sharded ID into its shard index and backend-local ID.
func (s *Sharded) DecodeID(id uint64) (shard int, local uint64) {
	return int(id & (1<<s.shardBits - 1)), id >> s.shardBits
}

// The scalar per-shard helpers below hold the lock for exactly one
// backend call. The deferred unlock (open-coded by the compiler, so free
// on the hot path) means a panicking backend (e.g. a key-length
// violation) cannot wedge the shard for every later caller that recovers
// the panic.

func (s *Sharded) lookupOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) (uint64, bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var local uint64
	var ok bool
	if hashed {
		local, ok = sh.hbe.LookupHashed(key, kh)
	} else {
		local, ok = sh.be.Lookup(key)
	}
	if ok {
		if exp := s.expiry; exp != nil {
			exp.touch(i, local, exp.epoch.Load())
		}
	}
	return local, ok
}

func (s *Sharded) insertOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) (uint64, error) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	exp := s.expiry
	lenBefore := 0
	if exp != nil {
		lenBefore = sh.be.Len()
	}
	var local uint64
	var err error
	if hashed {
		local, err = sh.hbe.InsertHashed(key, kh)
	} else {
		local, err = sh.be.Insert(key)
	}
	if exp != nil && err == nil {
		// Len grew: fresh placement (stamp first-seen); unchanged: the
		// flow was already resident and the insert was a touch.
		exp.stamp(i, local, sh.be.Len() > lenBefore)
	}
	return local, err
}

func (s *Sharded) deleteOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) bool {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if hashed {
		return sh.hbe.DeleteHashed(key, kh)
	}
	return sh.be.Delete(key)
}

// route performs the scalar per-key preamble shared by every operation:
// one hash pass when the backend consumes it, and the shard choice —
// off the Mix word in the single-pass configuration, off the selector
// otherwise. All three scalar ops must route identically or operations
// on one key would land on different shards.
func (s *Sharded) route(key []byte) (i int, kh hashfn.KeyHashes, hashed bool) {
	hashed = s.hashed
	if s.hashedRouting() {
		kh = s.pair.Compute(key)
		return s.shardOfMix(kh), kh, hashed
	}
	if hashed {
		kh = s.pair.Compute(key)
	}
	return s.shardOf(key), kh, hashed
}

// Lookup implements Backend.
func (s *Sharded) Lookup(key []byte) (uint64, bool) {
	i, kh, hashed := s.route(key)
	local, ok := s.lookupOn(i, key, kh, hashed)
	if !ok {
		return 0, false
	}
	return s.globalID(i, local), true
}

// Insert implements Backend.
func (s *Sharded) Insert(key []byte) (uint64, error) {
	i, kh, hashed := s.route(key)
	local, err := s.insertOn(i, key, kh, hashed)
	if err != nil {
		return 0, err
	}
	return s.globalID(i, local), nil
}

// Delete implements Backend.
func (s *Sharded) Delete(key []byte) bool {
	i, kh, hashed := s.route(key)
	return s.deleteOn(i, key, kh, hashed)
}

// readShard runs f holding shard i's lock shared (the aggregate gauges
// only read backend state).
func (s *Sharded) readShard(i int, f func(be Backend)) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f(sh.be)
}

// Len implements Backend, summing the shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		s.readShard(i, func(be Backend) { n += be.Len() })
	}
	return n
}

// Probes implements Backend, summing the shards.
func (s *Sharded) Probes() int64 {
	var n int64
	for i := range s.shards {
		s.readShard(i, func(be Backend) { n += be.Probes() })
	}
	return n
}

// Name implements Backend.
func (s *Sharded) Name() string { return s.name }

// BytesPerSlot reports the average slot-storage cost of the table in
// bytes per slot: the backends' own footprint (inline keys, fingerprint
// tags, hash caches, value arrays, spill) plus the expiry layer's
// timestamp side-tables when enabled, divided by the total slot-ID bound.
// It returns 0 when any shard's backend reports no footprint (no
// StorageSized) or no dense slot space (no EvictableBackend).
func (s *Sharded) BytesPerSlot() float64 {
	var bytes, slots int64
	for i := range s.shards {
		ok := true
		s.readShard(i, func(be Backend) {
			ss, okS := be.(StorageSized)
			ebe, okE := be.(EvictableBackend)
			if !okS || !okE {
				ok = false
				return
			}
			bytes += ss.StorageBytes()
			slots += int64(ebe.SlotIDBound())
		})
		if !ok {
			return 0
		}
	}
	if exp := s.expiry; exp != nil {
		for i := range exp.shards {
			bytes += exp.shards[i].sideTableBytes()
		}
	}
	if slots == 0 {
		return 0
	}
	return float64(bytes) / float64(slots)
}

// ShardLens returns the per-shard entry counts (the partition-balance
// gauge, analogous to the paper's per-path load split).
func (s *Sharded) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		s.readShard(i, func(be Backend) { out[i] = be.Len() })
	}
	return out
}

// batchScratch is the reusable working set of one batch operation: the
// per-key routing and hash results plus the shard-grouped index plan, all
// backed by pooled arrays so steady-state batches allocate nothing.
type batchScratch struct {
	routes []int32            // shard of keys[i]
	counts []int32            // per-shard key counts
	plan   [][]int32          // per-shard indices into keys, in input order
	arena  []int32            // backing store for plan's slices
	khs    []hashfn.KeyHashes // per-key single-pass hashes (hashed mode)
	errs   []error            // InsertBatch's per-key failure staging
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	return s[:n]
}

// planBatch groups key positions by shard so each shard's lock is taken at
// most once per batch and each key is hashed exactly once: in hashed mode
// the same KeyHashes that routes the shard later indexes the buckets. The
// scratch must be returned with putScratch.
func (s *Sharded) planBatch(keys [][]byte) *batchScratch {
	sc := s.scratch.Get().(*batchScratch)
	n := len(keys)
	ns := len(s.shards)
	sc.routes = growInt32(sc.routes, n)
	sc.counts = growInt32(sc.counts, ns)
	sc.arena = growInt32(sc.arena, n)
	if cap(sc.plan) < ns {
		sc.plan = make([][]int32, ns)
	}
	sc.plan = sc.plan[:ns]
	hashed := s.hashedRouting()
	if s.hashed {
		if cap(sc.khs) < n {
			sc.khs = make([]hashfn.KeyHashes, n)
		}
		sc.khs = sc.khs[:n]
	}
	if ns == 1 {
		// Single shard: no routing, but the hash pass still happens here so
		// the per-shard loop reuses it.
		if s.hashed {
			for i, k := range keys {
				sc.khs[i] = s.pair.Compute(k)
			}
		}
		idx := sc.arena[:n]
		for i := range idx {
			idx[i] = int32(i)
		}
		sc.plan[0] = idx
		return sc
	}
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	switch {
	case hashed:
		for i, k := range keys {
			kh := s.pair.Compute(k)
			sc.khs[i] = kh
			r := int32(s.shardOfMix(kh))
			sc.routes[i] = r
			sc.counts[r]++
		}
	case s.hashed: // custom selector routes, backends still take hashes
		for i, k := range keys {
			sc.khs[i] = s.pair.Compute(k)
			r := int32(s.shardOf(k))
			sc.routes[i] = r
			sc.counts[r]++
		}
	default:
		for i, k := range keys {
			r := int32(s.shardOf(k))
			sc.routes[i] = r
			sc.counts[r]++
		}
	}
	// Carve the arena into per-shard segments (counting sort layout), then
	// fill in input order.
	off := int32(0)
	for i, c := range sc.counts {
		sc.plan[i] = sc.arena[off : off : off+c]
		off += c
	}
	for i, r := range sc.routes {
		sc.plan[r] = append(sc.plan[r], int32(i))
	}
	return sc
}

func (s *Sharded) putScratch(sc *batchScratch) { s.scratch.Put(sc) }

// prefetchSink receives the folded prefetch reads. The call boundary is
// the point: a non-inlined callee forces its argument to be materialised,
// so the compiler cannot discard the bucket touches as dead loads.
//
//go:noinline
func prefetchSink(v uint64) uint64 { return v }

// prefetchShard touches every candidate bucket of one shard's sub-batch
// at the head of the locked section, before any key is resolved: the flat
// slot layout makes the lines each probe will read predictable, so the
// touches issue a run of independent cache misses that overlap instead of
// serialising behind one another. Costs nothing when the backend cannot
// prefetch. Callers must hold the shard's lock (shared suffices:
// PrefetchHashed is read-only).
func (s *Sharded) prefetchShard(sh *shardState, sc *batchScratch, shard int) {
	if sh.pbe == nil || !s.hashed {
		return
	}
	var acc uint64
	for _, i := range sc.plan[shard] {
		acc ^= sh.pbe.PrefetchHashed(sc.khs[i])
	}
	prefetchSink(acc)
}

// lookupShard resolves one shard's slice of the batch under a shared lock.
func (s *Sharded) lookupShard(shard int, keys [][]byte, sc *batchScratch, ids []uint64, hits []bool) {
	sh := &s.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.prefetchShard(sh, sc, shard)
	exp := s.expiry
	var epoch uint32
	if exp != nil {
		epoch = exp.epoch.Load() // one clock read per shard sub-batch
	}
	if s.hashed {
		for _, i := range sc.plan[shard] {
			if local, ok := sh.hbe.LookupHashed(keys[i], sc.khs[i]); ok {
				ids[i] = s.globalID(shard, local)
				hits[i] = true
				if exp != nil {
					exp.touch(shard, local, epoch)
				}
			}
		}
		return
	}
	for _, i := range sc.plan[shard] {
		if local, ok := sh.be.Lookup(keys[i]); ok {
			ids[i] = s.globalID(shard, local)
			hits[i] = true
			if exp != nil {
				exp.touch(shard, local, epoch)
			}
		}
	}
}

// LookupBatch looks up all keys, amortising shard locking, routing and
// hashing: keys are grouped per shard, each shard is visited once, and
// each key is hashed once. Results are positional: ids[i], hits[i]
// correspond to keys[i].
func (s *Sharded) LookupBatch(keys [][]byte) (ids []uint64, hits []bool) {
	ids = make([]uint64, len(keys))
	hits = make([]bool, len(keys))
	s.LookupBatchInto(keys, ids, hits)
	return ids, hits
}

// LookupBatchInto is LookupBatch into caller-supplied result buffers, for
// callers that reuse buffers across batches: the steady-state hot path
// allocates nothing. ids and hits must both have the length of keys; every
// element is overwritten.
func (s *Sharded) LookupBatchInto(keys [][]byte, ids []uint64, hits []bool) {
	if len(ids) != len(keys) || len(hits) != len(keys) {
		panic(fmt.Sprintf("table: LookupBatchInto buffers (%d ids, %d hits) do not match %d keys",
			len(ids), len(hits), len(keys)))
	}
	for i := range ids {
		ids[i] = 0
		hits[i] = false
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.lookupShard(shard, keys, sc, ids, hits)
	}
	s.putScratch(sc)
}

// insertShardInto resolves one shard's slice of the batch under an
// exclusive lock, recording per-key failures positionally in errs.
func (s *Sharded) insertShardInto(shard int, keys [][]byte, sc *batchScratch, ids []uint64, errs []error) {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.prefetchShard(sh, sc, shard)
	exp := s.expiry
	for _, i := range sc.plan[shard] {
		lenBefore := 0
		if exp != nil {
			lenBefore = sh.be.Len()
		}
		var local uint64
		var err error
		if s.hashed {
			local, err = sh.hbe.InsertHashed(keys[i], sc.khs[i])
		} else {
			local, err = sh.be.Insert(keys[i])
		}
		if err != nil {
			errs[i] = err
			continue
		}
		if exp != nil {
			exp.stamp(shard, local, sh.be.Len() > lenBefore)
		}
		ids[i] = s.globalID(shard, local)
	}
}

// InsertBatch inserts all keys. ids is positional; errs is nil when every
// insert succeeded, otherwise errs[i] carries the per-key failure. A
// non-nil errs[i] is the only failure marker — zero is a legitimate ID
// (shard 0's first CAM entry encodes to 0). The two result slices are the
// call's only steady-state allocations; InsertBatchInto avoids even those.
func (s *Sharded) InsertBatch(keys [][]byte) (ids []uint64, errs []error) {
	ids = make([]uint64, len(keys))
	sc := s.planBatch(keys)
	sc.errs = growErrs(sc.errs, len(keys))
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.insertShardInto(shard, keys, sc, ids, sc.errs)
	}
	// Harvest failures into the lazily allocated return slice, dropping the
	// pooled buffer's references so errors do not outlive the call inside
	// the pool.
	for i, e := range sc.errs {
		if e == nil {
			continue
		}
		if errs == nil {
			errs = make([]error, len(keys))
		}
		errs[i] = e
		sc.errs[i] = nil
	}
	s.putScratch(sc)
	return ids, errs
}

// InsertBatchInto is InsertBatch into caller-supplied result buffers, for
// writers that reuse buffers across batches: the steady-state insert path
// — one hash pass per key, shard-grouped exclusive locking, bucket
// placement — allocates nothing beyond what individual backend inserts
// require. ids and errs must both have the length of keys; every element
// is overwritten (errs[i] nil on success).
func (s *Sharded) InsertBatchInto(keys [][]byte, ids []uint64, errs []error) {
	if len(ids) != len(keys) || len(errs) != len(keys) {
		panic(fmt.Sprintf("table: InsertBatchInto buffers (%d ids, %d errs) do not match %d keys",
			len(ids), len(errs), len(keys)))
	}
	for i := range ids {
		ids[i] = 0
		errs[i] = nil
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.insertShardInto(shard, keys, sc, ids, errs)
	}
	s.putScratch(sc)
}

// deleteShard resolves one shard's slice of the batch under an exclusive
// lock.
func (s *Sharded) deleteShard(shard int, keys [][]byte, sc *batchScratch, ok []bool) {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.hashed {
		for _, i := range sc.plan[shard] {
			ok[i] = sh.hbe.DeleteHashed(keys[i], sc.khs[i])
		}
		return
	}
	for _, i := range sc.plan[shard] {
		ok[i] = sh.be.Delete(keys[i])
	}
}

// DeleteBatch deletes all keys, reporting per-key presence positionally.
func (s *Sharded) DeleteBatch(keys [][]byte) []bool {
	ok := make([]bool, len(keys))
	s.DeleteBatchInto(keys, ok)
	return ok
}

// DeleteBatchInto is DeleteBatch into a caller-supplied result buffer; ok
// must have the length of keys and every element is overwritten.
func (s *Sharded) DeleteBatchInto(keys [][]byte, ok []bool) {
	if len(ok) != len(keys) {
		panic(fmt.Sprintf("table: DeleteBatchInto buffer (%d) does not match %d keys", len(ok), len(keys)))
	}
	for i := range ok {
		ok[i] = false
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.deleteShard(shard, keys, sc, ok)
	}
	s.putScratch(sc)
}

// BatchErr collapses an InsertBatch error slice into one error for
// callers that do not need per-key attribution.
func BatchErr(errs []error) error {
	if errs == nil {
		return nil
	}
	return errors.Join(errs...)
}
