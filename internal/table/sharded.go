package table

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hashfn"
)

// shardSelectorSeed seeds the default shard-selector hash. The selector
// must be independent of the backends' own H1/H2 pair: selecting shards
// with bits of the same hash that indexes buckets would correlate the
// partition with bucket placement and unbalance the shards.
const shardSelectorSeed = 0x5ca1ab1e_0ddba11

// Sharded partitions one logical table across N independently locked
// shards, each holding its own Backend instance. Keys are routed by a
// dedicated selector hash; all operations on one key always land on the
// same shard, so per-key semantics are exactly those of the underlying
// backend. Sharded itself implements Backend, so shards compose with
// everything that consumes the contract.
//
// IDs returned by a Sharded table encode the owning shard in the low bits
// (local<<shardBits | shard); they are stable for the lifetime of an entry
// but differ numerically from the IDs an unsharded backend would assign.
type Sharded struct {
	shards    []shardState
	sel       hashfn.Func
	shardBits uint
	name      string
}

// shardState pairs a backend with its lock. Padding the hot mutex apart
// matters less than lock scope here: each batch op takes each shard lock
// at most once.
type shardState struct {
	mu sync.Mutex
	be Backend
}

// NewSharded builds an N-way sharded table over the named backend. Each
// shard receives cfg with Capacity divided by the shard count (rounded
// up), so total capacity is preserved. shards must be >= 1; a selector of
// nil uses the default independent Mix64.
func NewSharded(backend string, shards int, cfg Config, selector hashfn.Func) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("table: shard count must be >= 1, got %d", shards)
	}
	if cfg.Capacity > MaxCapacity {
		return nil, fmt.Errorf("table: capacity %d exceeds maximum %d", cfg.Capacity, MaxCapacity)
	}
	cfg = cfg.withDefaults()
	per := cfg
	per.Capacity = (cfg.Capacity + shards - 1) / shards
	// The CAM overflow store divides like the main capacity, so a sharded
	// table's total collision headroom matches the unsharded equivalent
	// (otherwise N shards would absorb N× the overflow before filling).
	per.CAMCapacity = (cfg.CAMCapacity + shards - 1) / shards
	if selector == nil {
		selector = &hashfn.Mix64{Seed: shardSelectorSeed}
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	s := &Sharded{
		shards:    make([]shardState, shards),
		sel:       selector,
		shardBits: bits,
	}
	for i := range s.shards {
		be, err := New(backend, per)
		if err != nil {
			return nil, err
		}
		s.shards[i].be = be
	}
	s.name = fmt.Sprintf("sharded(%s,%d)", s.shards[0].be.Name(), shards)
	return s, nil
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// shardOf routes a key to its shard.
func (s *Sharded) shardOf(key []byte) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hashfn.Reduce(s.sel.Hash(key), len(s.shards))
}

// globalID folds the shard index into a backend-local ID.
func (s *Sharded) globalID(shard int, local uint64) uint64 {
	return local<<s.shardBits | uint64(shard)
}

// DecodeID splits a Sharded ID into its shard index and backend-local ID.
func (s *Sharded) DecodeID(id uint64) (shard int, local uint64) {
	return int(id & (1<<s.shardBits - 1)), id >> s.shardBits
}

// withShard runs f holding shard i's lock. The deferred unlock means a
// panicking backend (e.g. a key-length violation) cannot wedge the shard
// for every later caller that recovers the panic.
func (s *Sharded) withShard(i int, f func(be Backend)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(sh.be)
}

// Lookup implements Backend.
func (s *Sharded) Lookup(key []byte) (uint64, bool) {
	i := s.shardOf(key)
	var local uint64
	var ok bool
	s.withShard(i, func(be Backend) { local, ok = be.Lookup(key) })
	if !ok {
		return 0, false
	}
	return s.globalID(i, local), true
}

// Insert implements Backend.
func (s *Sharded) Insert(key []byte) (uint64, error) {
	i := s.shardOf(key)
	var local uint64
	var err error
	s.withShard(i, func(be Backend) { local, err = be.Insert(key) })
	if err != nil {
		return 0, err
	}
	return s.globalID(i, local), nil
}

// Delete implements Backend.
func (s *Sharded) Delete(key []byte) bool {
	i := s.shardOf(key)
	var ok bool
	s.withShard(i, func(be Backend) { ok = be.Delete(key) })
	return ok
}

// Len implements Backend, summing the shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		s.withShard(i, func(be Backend) { n += be.Len() })
	}
	return n
}

// Probes implements Backend, summing the shards.
func (s *Sharded) Probes() int64 {
	var n int64
	for i := range s.shards {
		s.withShard(i, func(be Backend) { n += be.Probes() })
	}
	return n
}

// Name implements Backend.
func (s *Sharded) Name() string { return s.name }

// ShardLens returns the per-shard entry counts (the partition-balance
// gauge, analogous to the paper's per-path load split).
func (s *Sharded) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		s.withShard(i, func(be Backend) { out[i] = be.Len() })
	}
	return out
}

// batchPlan groups key positions by shard so each shard's lock is taken
// at most once per batch and the selector hash is computed once per key.
// The returned plan holds, per shard, the indices into keys that route
// there, in input order.
func (s *Sharded) batchPlan(keys [][]byte) [][]int32 {
	plan := make([][]int32, len(s.shards))
	if len(s.shards) == 1 {
		idx := make([]int32, len(keys))
		for i := range idx {
			idx[i] = int32(i)
		}
		plan[0] = idx
		return plan
	}
	// Count first so each per-shard slice is allocated exactly once.
	counts := make([]int32, len(s.shards))
	routes := make([]int32, len(keys))
	for i, k := range keys {
		r := int32(s.shardOf(k))
		routes[i] = r
		counts[r]++
	}
	for i := range plan {
		if counts[i] > 0 {
			plan[i] = make([]int32, 0, counts[i])
		}
	}
	for i, r := range routes {
		plan[r] = append(plan[r], int32(i))
	}
	return plan
}

// LookupBatch looks up all keys, amortising shard locking and routing:
// keys are grouped per shard and each shard is visited once. Results are
// positional: ids[i], hits[i] correspond to keys[i].
func (s *Sharded) LookupBatch(keys [][]byte) (ids []uint64, hits []bool) {
	ids = make([]uint64, len(keys))
	hits = make([]bool, len(keys))
	for shard, idx := range s.batchPlan(keys) {
		if len(idx) == 0 {
			continue
		}
		s.withShard(shard, func(be Backend) {
			for _, i := range idx {
				if local, ok := be.Lookup(keys[i]); ok {
					ids[i] = s.globalID(shard, local)
					hits[i] = true
				}
			}
		})
	}
	return ids, hits
}

// InsertBatch inserts all keys. ids is positional; errs is nil when every
// insert succeeded, otherwise errs[i] carries the per-key failure. A
// non-nil errs[i] is the only failure marker — zero is a legitimate ID
// (shard 0's first CAM entry encodes to 0).
func (s *Sharded) InsertBatch(keys [][]byte) (ids []uint64, errs []error) {
	ids = make([]uint64, len(keys))
	for shard, idx := range s.batchPlan(keys) {
		if len(idx) == 0 {
			continue
		}
		s.withShard(shard, func(be Backend) {
			for _, i := range idx {
				local, err := be.Insert(keys[i])
				if err != nil {
					if errs == nil {
						errs = make([]error, len(keys))
					}
					errs[i] = err
					continue
				}
				ids[i] = s.globalID(shard, local)
			}
		})
	}
	return ids, errs
}

// DeleteBatch deletes all keys, reporting per-key presence positionally.
func (s *Sharded) DeleteBatch(keys [][]byte) []bool {
	ok := make([]bool, len(keys))
	for shard, idx := range s.batchPlan(keys) {
		if len(idx) == 0 {
			continue
		}
		s.withShard(shard, func(be Backend) {
			for _, i := range idx {
				ok[i] = be.Delete(keys[i])
			}
		})
	}
	return ok
}

// BatchErr collapses an InsertBatch error slice into one error for
// callers that do not need per-key attribution.
func BatchErr(errs []error) error {
	if errs == nil {
		return nil
	}
	return errors.Join(errs...)
}
