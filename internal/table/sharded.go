package table

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
)

// shardSelectorSeed seeds the fallback shard-selector hash used for
// backends without a hashed fast path when the table is not keyed. The
// selector must be independent of the backends' own H1/H2 pair: selecting
// shards with bits of the same hash that indexes buckets would correlate
// the partition with bucket placement and unbalance the shards. Backends
// with a hashed fast path route off hashfn.KeyHashes.Mix instead, which
// provides the same independence without a third hash pass. A keyed
// configuration (Config.HashSeed or an explicit Pair.SelSeed) replaces
// this constant with the pair's selector seed, so shard routing is not
// attacker-predictable even on the fallback path.
const shardSelectorSeed = 0x5ca1ab1e_0ddba11

// Sharded partitions one logical table across N independently locked
// shards, each holding its own Backend instance. Keys are routed by a
// dedicated selector word; all operations on one key always land on the
// same shard, so per-key semantics are exactly those of the underlying
// backend. Sharded itself implements Backend, so shards compose with
// everything that consumes the contract.
//
// Locking is read/write: lookups take a shard's lock shared, so
// read-mostly traffic proceeds concurrently within one shard; inserts and
// deletes take it exclusively. Backends therefore only need
// lookups-concurrent-with-lookups safety, which the registry's structures
// provide via atomic stat counters.
//
// When every shard backend additionally implements OptimisticBackend (and
// the build is not race-instrumented — see seqlockCapable), lookups skip
// the RLock entirely: each shard carries sequence counters that writers
// stamp odd/even around every mutation, and readers probe the slot arenas
// locklessly, validating the counters before and after. A torn read is
// retried a bounded number of times and then falls back to the RLock slow
// path, which waits the writer out instead of spinning. The counters are
// two-level: a shard-global word covering whole-arena mutations (sweep
// steps, migration pumps, geometry swaps) plus — when the backends
// support it (StripedBackend) — a power-of-two array of per-stripe words,
// so a targeted write stamps only the stripes covering its candidate
// buckets and no longer invalidates readers of unrelated buckets. See
// ReadStats for the health counters (retries split by failing level) and
// docs/ARCHITECTURE.md for the full protocol.
//
// When the backend implements HashedBackend, every operation makes a
// single hash pass per key (hashfn.Pair.Compute): the resulting KeyHashes
// both routes the shard (via the Mix word) and indexes the buckets, and
// IDs, stages and errors are bit-identical to the unhashed path.
//
// IDs returned by a Sharded table encode the owning shard in the low bits
// (local<<shardBits | shard); they are stable for the lifetime of an entry
// but differ numerically from the IDs an unsharded backend would assign.
type Sharded struct {
	shards     []shardState
	pair       hashfn.Pair // the backends' configured pair, for Compute
	sel        hashfn.Func // non-nil: route by sel instead of KeyHashes.Mix
	hashed     bool        // every shard backend implements HashedBackend
	optCapable bool        // every shard backend can serve seqlock reads
	optimistic bool        // lock-free read path active (<= optCapable)
	shardBits  uint
	name       string

	// nstripes is the effective per-shard seqlock stripe count (1 = the
	// single-word protocol), stripeMask its low-bit fold mask, striped
	// whether targeted writes stamp stripes (nstripes > 1). Resolved once
	// at construction: the configured (or derived) count clamped to the
	// backends' StripeBound. See stripes.go.
	nstripes   int
	stripeMask uint64
	striped    bool

	scratch sync.Pool // *batchScratch
	evPool  sync.Pool // *pendingEvictions

	// expiry is the optional flow-lifecycle layer (nil until
	// EnableExpiry): per-slot timestamp side-tables and the incremental
	// eviction sweep. The non-expiring hot path pays one nil check.
	expiry *expiryState

	// admit is the optional admission-gating layer (nil until
	// SetAdmission): per-shard counting sketches consulted in front of
	// non-resident inserts. The ungated insert path pays one nil check.
	admit *admitState

	// onFull is the active full-table policy; evictCapable records
	// whether every shard backend implements CandidateSlotter (downcast
	// once into shardState.cbe); pendingEvictIdlest carries a
	// Config.OnFull request until EnableExpiry can validate it.
	onFull             FullPolicy
	evictCapable       bool
	pendingEvictIdlest bool

	// growth is the elastic-capacity configuration (SetGrowth);
	// growCapable records whether every shard backend implements
	// GrowableBackend (downcast once into shardState.gbe). The counters
	// aggregate migration work across shards for GrowStats.
	growth        GrowthConfig
	growCapable   bool
	grows         atomic.Int64
	migrateSteps  atomic.Int64
	migratedSlots atomic.Int64
	droppedSlots  atomic.Int64
}

// shardState pairs a backend with its lock and seqlock words. hbe, pbe and
// obe are the same backend downcast once at construction, so the hot path
// never type-asserts.
//
// seq is the shard-global sequence word: even when the arenas are
// quiescent, odd while a writer holding mu exclusively is mutating state
// that stripes cannot cover — whole-arena sections (expiry sweep steps,
// migration pumps, geometry swaps) stamp it directly, and targeted write
// sections escalate onto it (escalateLocked) before their first mutation
// outside the key's candidate buckets. In striped mode (stripes non-nil)
// targeted writes otherwise stamp only the key's stripe pair; in
// single-word mode every write section stamps seq (once per section, not
// per key, so a 64-key sub-batch costs two atomic adds). Lock-free
// readers snapshot the global word plus, in striped mode, their key's
// stripes, probe, and discard the result unless every snapshot was even
// and unchanged after the probe.
type shardState struct {
	mu  sync.RWMutex
	be  Backend
	hbe HashedBackend     // nil when be has no hashed fast path
	pbe PrefetchBackend   // nil when be cannot prefetch buckets
	obe OptimisticBackend // nil when be cannot serve seqlock reads
	cbe CandidateSlotter  // nil when be cannot enumerate candidate slots
	gbe GrowableBackend   // nil when be cannot resize online

	seq       atomic.Uint64 // global seqlock word: odd = writer in the arenas
	gretries  atomic.Int64  // lock-free probes discarded by global-word validation
	sretries  atomic.Int64  // lock-free probes discarded by stripe validation
	fallbacks atomic.Int64  // reads that exhausted retries, took the RLock
	rejected  atomic.Int64  // inserts that surfaced ErrTableFull
	evicted   atomic.Int64  // flows reclaimed by FullEvictIdlest

	// oldBase is the retiring arena's first slot ID while a migration is
	// in flight, ^uint64(0) otherwise — the watermark the read paths
	// compare hit IDs against to count old-arena reads. oldHits is that
	// count. slotCap is the real slot capacity of the live layout
	// (GrowLayout.NewBound; guarded by mu) and capTarget the shard's
	// nominal capacity, doubled by each grow (guarded by mu).
	oldBase   atomic.Uint64
	oldHits   atomic.Int64
	slotCap   uint64
	capTarget int

	// stripes is the per-stripe sequence-word array (nil in single-word
	// mode); see stripes.go for the protocol. stamped records whether the
	// current global section actually stamped seq (false = it found the
	// word poisoned odd by a panicked predecessor and must leave it so);
	// inKeyWrite and escalated are the targeted-section state the
	// escalate hook consults. All three are guarded by mu.
	stripes    []stripeWord
	stamped    bool
	inKeyWrite bool
	escalated  bool

	// Padding to 256 B (4 cache lines): 24 (mu) + 6×16 (interfaces) +
	// 8×8 (atomics) + 16 (slotCap/capTarget) + 24 (stripes) + 3 bools
	// = 227, rounded up so one shard's write traffic never false-shares
	// with a neighbouring shard's state in the shards slice.
	_ [29]byte
}

// NewSharded builds an N-way sharded table over the named backend. Each
// shard receives cfg with Capacity divided by the shard count (rounded
// up), so total capacity is preserved. shards must be >= 1. A nil selector
// routes by the single-pass KeyHashes.Mix word when the backend supports
// the hashed path (falling back to an independent Mix64 otherwise); a
// non-nil selector always routes by selector.Hash.
func NewSharded(backend string, shards int, cfg Config, selector hashfn.Func) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("table: shard count must be >= 1, got %d", shards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	per := cfg
	per.Capacity = (cfg.Capacity + shards - 1) / shards
	// The CAM overflow store divides like the main capacity, so a sharded
	// table's total collision headroom matches the unsharded equivalent
	// (otherwise N shards would absorb N× the overflow before filling).
	per.CAMCapacity = (cfg.CAMCapacity + shards - 1) / shards
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	s := &Sharded{
		shards:    make([]shardState, shards),
		pair:      cfg.Hash,
		sel:       selector,
		shardBits: bits,
	}
	s.scratch.New = func() any { return new(batchScratch) }
	s.evPool.New = func() any { return new(pendingEvictions) }
	s.pendingEvictIdlest = cfg.OnFull == FullEvictIdlest
	s.evictCapable = true
	s.growCapable = true
	for i := range s.shards {
		be, err := New(backend, per)
		if err != nil {
			return nil, err
		}
		s.shards[i].be = be
		s.shards[i].hbe, _ = be.(HashedBackend)
		s.shards[i].pbe, _ = be.(PrefetchBackend)
		s.shards[i].obe, _ = be.(OptimisticBackend)
		s.shards[i].cbe, _ = be.(CandidateSlotter)
		s.shards[i].gbe, _ = be.(GrowableBackend)
		if s.shards[i].cbe == nil {
			s.evictCapable = false
		}
		if s.shards[i].gbe == nil {
			s.growCapable = false
		}
		if ebe, ok := be.(EvictableBackend); ok {
			s.shards[i].slotCap = ebe.SlotIDBound()
		}
		s.shards[i].capTarget = per.Capacity
		s.shards[i].oldBase.Store(^uint64(0))
	}
	s.hashed = s.shards[0].hbe != nil
	// The lock-free read path needs the hashed fast path (ReadHashed
	// consumes KeyHashes), a backend that upholds the torn-read contract
	// for this key width (ReadLockFree — the slotarr spill path does not),
	// and a build without the race detector (seqlockCapable).
	s.optCapable = seqlockCapable && s.hashed &&
		s.shards[0].obe != nil && s.shards[0].obe.ReadLockFree()
	s.optimistic = s.optCapable
	// Resolve the seqlock stripe count: the configured power of two (0 =
	// derive from the shard's slot capacity) clamped to the backends'
	// StripeBound and maxStripes. Writers stamp stripes whenever striping
	// resolves >1 — also under the race detector, where the read path is
	// compiled out but the stamping code still runs under -race scrutiny,
	// exactly as PR 6 treated the global word.
	s.nstripes = 1
	if s.hashed {
		bound := maxStripes
		for i := range s.shards {
			sb, ok := s.shards[i].be.(StripedBackend)
			if !ok {
				bound = 1
				break
			}
			if b := sb.StripeBound(); b < bound {
				bound = b
			}
		}
		req := cfg.SeqlockStripes
		if req == 0 {
			req = defaultStripes(s.shards[0].slotCap)
		}
		for s.nstripes*2 <= req && s.nstripes*2 <= bound {
			s.nstripes *= 2
		}
	}
	if s.nstripes > 1 {
		s.striped = true
		s.stripeMask = uint64(s.nstripes - 1)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.stripes = make([]stripeWord, s.nstripes)
			sh.be.(StripedBackend).SetEscalateHook(sh.escalateLocked)
		}
	}
	if s.sel == nil && !s.hashed {
		// No hashed pass to piggyback on: fall back to a dedicated
		// selector so routing costs one cheap Mix64, not a pair
		// computation used for nothing else. A keyed configuration seeds
		// it from the pair's selector seed (derived from the engine
		// seed); only the unkeyed default keeps the historical constant.
		seed := uint64(shardSelectorSeed)
		if cfg.Hash.SelSeed != 0 {
			seed = cfg.Hash.SelSeed
		}
		s.sel = &hashfn.Mix64{Seed: seed}
	}
	s.name = fmt.Sprintf("sharded(%s,%d)", s.shards[0].be.Name(), shards)
	return s, nil
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// hashedRouting reports whether operations compute KeyHashes once and
// route by its Mix word (the single-hash-pass fast path).
func (s *Sharded) hashedRouting() bool { return s.hashed && s.sel == nil }

// shardOf routes a key to its shard in the selector-routed configuration.
func (s *Sharded) shardOf(key []byte) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hashfn.Reduce(s.sel.Hash(key), len(s.shards))
}

// shardOfMix routes by the precomputed selector word.
func (s *Sharded) shardOfMix(kh hashfn.KeyHashes) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hashfn.Reduce(kh.Mix, len(s.shards))
}

// globalID folds the shard index into a backend-local ID.
func (s *Sharded) globalID(shard int, local uint64) uint64 {
	return local<<s.shardBits | uint64(shard)
}

// DecodeID splits a Sharded ID into its shard index and backend-local ID.
func (s *Sharded) DecodeID(id uint64) (shard int, local uint64) {
	return int(id & (1<<s.shardBits - 1)), id >> s.shardBits
}

// seqlockAttempts bounds how often a lock-free read re-probes after a
// failed sequence validation before giving up and taking the RLock. A
// failed validation means a writer owned the shard during the probe;
// spinning a few times rides out a short scalar write, while a long
// batched write is better waited out in the mutex queue (the fallback),
// which also bounds reader work when writers saturate a shard.
const seqlockAttempts = 4

// ReadStats aggregates the optimistic read path's health counters across
// shards. Retries counts individual lock-free probes discarded by
// sequence validation (each was retried or fell back), split by the level
// that failed: GlobalRetries for the shard-global word (a whole-arena
// writer — sweep, migration, geometry swap, escalated or single-word-mode
// write — owned the shard), StripeRetries for the key's stripe pair (a
// targeted writer touched one of the reader's candidate buckets).
// Fallbacks counts reads that exhausted the retry budget and were served
// under the RLock. All stay zero on an uncontended table — the gauge of
// how often writers actually perturb the lock-free path, and striping's
// win shows up as GlobalRetries shrinking toward the (much rarer)
// StripeRetries.
type ReadStats struct {
	Optimistic    bool  // lock-free read path active
	Retries       int64 // probes discarded by seqlock validation (sum of the split)
	StripeRetries int64 // discards attributed to per-stripe validation
	GlobalRetries int64 // discards attributed to the shard-global word
	Fallbacks     int64 // reads served by the RLock slow path after retries
}

// ReadStats returns the table's optimistic-read health counters.
func (s *Sharded) ReadStats() ReadStats {
	rs := ReadStats{Optimistic: s.optimistic}
	for i := range s.shards {
		rs.GlobalRetries += s.shards[i].gretries.Load()
		rs.StripeRetries += s.shards[i].sretries.Load()
		rs.Fallbacks += s.shards[i].fallbacks.Load()
	}
	rs.Retries = rs.GlobalRetries + rs.StripeRetries
	return rs
}

// OptimisticReads reports whether lookups use the lock-free path.
func (s *Sharded) OptimisticReads() bool { return s.optimistic }

// SetOptimisticReads switches the lock-free read path on or off and
// reports the resulting state: enabling is honoured only when the build
// and every shard backend support it (it silently stays off under the
// race detector, for non-optimistic backends, and for key widths on the
// slotarr spill path). It must not be called concurrently with table
// operations — flip it during setup, as flowbench does to measure the
// RLock baseline.
func (s *Sharded) SetOptimisticReads(enable bool) bool {
	s.optimistic = enable && s.optCapable
	return s.optimistic
}

// beginWrite/endWrite stamp the shard-global seqlock word around a locked
// whole-arena section (expiry sweep steps, migration pumps, geometry
// swaps, single-word-mode sub-batches): odd while the arenas may be torn,
// even again before the lock is released. Callers pair them non-deferred —
//
//	sh.mu.Lock()
//	sh.beginWrite()
//	// ... mutate ...
//	sh.endWrite()
//	sh.mu.Unlock()
//
// — so a backend panic escaping the section skips endWrite and leaves seq
// odd forever, which fails safe: every later lock-free read of the shard
// falls back to the (released) RLock path. beginWrite refuses to stamp a
// word that is already odd — poisoned by a panicked predecessor — and
// records the decision in sh.stamped so the matching endWrite leaves the
// poison in place. (PR 6 deferred endWrite, which silently re-evened the
// word once a caller recovered the panic, letting a later section's
// stamps expose torn state as validly even; the non-deferred pairing
// plus the parity check is the fix. Targeted single-key sections use
// beginKeyWrite/endKeyWrite in stripes.go instead.)
func (sh *shardState) beginWrite() { sh.stamped = sh.stampGlobal() }

func (sh *shardState) endWrite() {
	if sh.stamped {
		sh.seq.Add(1)
		sh.stamped = false
	}
}

// readOn attempts one scalar lookup on the lock-free path. done=false
// means every attempt was invalidated by writer traffic and the caller
// must fall back to the locked path; no stats were committed for the
// failed attempts (the locked lookup will record its own). In striped
// mode the snapshot covers the global word plus the key's stripe pair —
// both must be even before the probe and unchanged after it — so a
// targeted writer on an unrelated stripe no longer discards this probe.
// A stripe poisoned odd by a panicked writer makes every attempt fail
// its pre-check, permanently routing that stripe's readers to the
// fallback.
func (s *Sharded) readOn(sh *shardState, shard int, key []byte, kh hashfn.KeyHashes) (id uint64, ok, done bool) {
	st1, st2 := s.stripePair(kh)
	striped := s.striped
	for attempt := 0; attempt < seqlockAttempts; attempt++ {
		g1 := sh.seq.Load()
		if g1&1 != 0 { // writer mid-mutation: don't touch the arenas
			sh.gretries.Add(1)
			continue
		}
		var p1, p2 uint64
		if striped {
			p1 = sh.stripes[st1].seq.Load()
			p2 = sh.stripes[st2].seq.Load()
			if p1&1 != 0 || p2&1 != 0 { // targeted writer on our buckets
				sh.sretries.Add(1)
				continue
			}
		}
		local, outcome, hit := sh.obe.ReadHashed(key, kh)
		if sh.seq.Load() != g1 { // torn window: discard, retry
			sh.gretries.Add(1)
			continue
		}
		if striped && (sh.stripes[st1].seq.Load() != p1 || sh.stripes[st2].seq.Load() != p2) {
			sh.sretries.Add(1)
			continue
		}
		sh.obe.CommitReads(outcome, 1)
		if hit {
			sh.oldHitCheck(local)
			if exp := s.expiry; exp != nil {
				exp.touch(shard, local, exp.epoch.Load())
			}
		}
		return local, hit, true
	}
	return 0, false, false
}

// commitDeferred flushes a batch's deferred per-outcome read accounting:
// one CommitReads per distinct outcome per sub-batch instead of one
// atomic add per key, so a 64-key lock-free sub-batch touches each stats
// line at most MaxReadOutcomes times.
func commitDeferred(obe OptimisticBackend, deferred *[MaxReadOutcomes]int64) {
	for o, n := range deferred {
		if n != 0 {
			obe.CommitReads(uint8(o), n)
			deferred[o] = 0
		}
	}
}

// The scalar per-shard helpers below hold the lock for exactly one
// backend call. The deferred unlock (open-coded by the compiler, so free
// on the hot path) means a panicking backend (e.g. a key-length
// violation) cannot wedge the shard for every later caller that recovers
// the panic.

func (s *Sharded) lookupOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) (uint64, bool) {
	sh := &s.shards[i]
	if s.optimistic && hashed {
		if local, ok, done := s.readOn(sh, i, key, kh); done {
			return local, ok
		}
		sh.fallbacks.Add(1)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var local uint64
	var ok bool
	if hashed {
		local, ok = sh.hbe.LookupHashed(key, kh)
	} else {
		local, ok = sh.be.Lookup(key)
	}
	if ok {
		sh.oldHitCheck(local)
		if exp := s.expiry; exp != nil {
			exp.touch(i, local, exp.epoch.Load())
		}
	}
	return local, ok
}

func (s *Sharded) insertOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) (uint64, error) {
	local, pe, err := s.insertOnLocked(i, key, kh, hashed)
	if pe != nil {
		s.fireEvictions(pe)
	}
	return local, err
}

// insertOnLocked is insertOn's locked section. A non-nil pe carries
// pressure evictions staged by the FullEvictIdlest policy; the caller
// fires them once the lock is released. The admission gate runs before
// the write section opens — sketch state is invisible to lock-free
// readers, so a gated insert leaves every sequence word untouched — and
// the growth pump runs after it closes, bracketing the global word
// itself only when it has work to do.
func (s *Sharded) insertOnLocked(i int, key []byte, kh hashfn.KeyHashes, hashed bool) (uint64, *pendingEvictions, error) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.admit != nil { // SetAdmission guarantees the hashed path
		if aerr := s.admitGateLocked(sh, i, key, kh); aerr != nil {
			return 0, nil, aerr
		}
	}
	st1, st2 := s.stripePair(kh)
	ws := sh.beginKeyWrite(st1, st2)
	var pe *pendingEvictions
	local, err := s.insertKeyLocked(sh, i, key, kh, hashed, &pe)
	sh.endKeyWrite(ws)
	s.growPumps(sh, i, true)
	return local, pe, err
}

// insertKeyLocked is the single-key insert core shared by the scalar and
// batch paths: the insert itself, the FullEvictIdlest retry, the
// auto-grow retry, the rejection counter and the expiry stamp. The caller
// holds the shard's exclusive lock and an open write section covering the
// key (the key's stripes or the global word); *pe is allocated lazily
// when the eviction policy stages work.
func (s *Sharded) insertKeyLocked(sh *shardState, shard int, key []byte, kh hashfn.KeyHashes, hashed bool, pe **pendingEvictions) (uint64, error) {
	exp := s.expiry
	lenBefore := 0
	if exp != nil {
		lenBefore = sh.be.Len()
	}
	var local uint64
	var err error
	if hashed {
		local, err = sh.hbe.InsertHashed(key, kh)
	} else {
		local, err = sh.be.Insert(key)
	}
	if err != nil && s.onFull == FullEvictIdlest && errors.Is(err, ErrTableFull) {
		if *pe == nil {
			*pe = s.getEvictScratch()
		}
		if s.evictIdlestLocked(sh, shard, kh, *pe) {
			// The eviction freed one of this key's own candidate slots;
			// re-measure the length so the retry's fresh/touch decision
			// stays correct.
			lenBefore = sh.be.Len()
			local, err = sh.hbe.InsertHashed(key, kh)
		}
	}
	if err != nil && errors.Is(err, ErrTableFull) && s.growOnFullLocked(sh, shard) {
		// Auto-growth armed: a full structure starts a grow and the
		// insert retries against the fresh arena.
		lenBefore = sh.be.Len()
		if hashed {
			local, err = sh.hbe.InsertHashed(key, kh)
		} else {
			local, err = sh.be.Insert(key)
		}
	}
	if err != nil {
		if errors.Is(err, ErrTableFull) {
			sh.rejected.Add(1)
		}
		return 0, err
	}
	if exp != nil {
		// Len grew: fresh placement (stamp first-seen); unchanged: the
		// flow was already resident and the insert was a touch.
		exp.stamp(shard, local, sh.be.Len() > lenBefore)
	}
	return local, nil
}

func (s *Sharded) deleteOn(i int, key []byte, kh hashfn.KeyHashes, hashed bool) bool {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st1, st2 := s.stripePair(kh)
	ws := sh.beginKeyWrite(st1, st2)
	var ok bool
	if hashed {
		ok = sh.hbe.DeleteHashed(key, kh)
	} else {
		ok = sh.be.Delete(key)
	}
	sh.endKeyWrite(ws)
	s.growPumps(sh, i, false)
	return ok
}

// route performs the scalar per-key preamble shared by every operation:
// one hash pass when the backend consumes it, and the shard choice —
// off the Mix word in the single-pass configuration, off the selector
// otherwise. All three scalar ops must route identically or operations
// on one key would land on different shards.
func (s *Sharded) route(key []byte) (i int, kh hashfn.KeyHashes, hashed bool) {
	hashed = s.hashed
	if s.hashedRouting() {
		kh = s.pair.Compute(key)
		return s.shardOfMix(kh), kh, hashed
	}
	if hashed {
		kh = s.pair.Compute(key)
	}
	return s.shardOf(key), kh, hashed
}

// Lookup implements Backend.
func (s *Sharded) Lookup(key []byte) (uint64, bool) {
	i, kh, hashed := s.route(key)
	local, ok := s.lookupOn(i, key, kh, hashed)
	if !ok {
		return 0, false
	}
	return s.globalID(i, local), true
}

// Insert implements Backend.
func (s *Sharded) Insert(key []byte) (uint64, error) {
	i, kh, hashed := s.route(key)
	local, err := s.insertOn(i, key, kh, hashed)
	if err != nil {
		return 0, err
	}
	return s.globalID(i, local), nil
}

// Delete implements Backend.
func (s *Sharded) Delete(key []byte) bool {
	i, kh, hashed := s.route(key)
	return s.deleteOn(i, key, kh, hashed)
}

// readShard runs f holding shard i's lock shared (the aggregate gauges
// only read backend state).
func (s *Sharded) readShard(i int, f func(be Backend)) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f(sh.be)
}

// Len implements Backend, summing the shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		s.readShard(i, func(be Backend) { n += be.Len() })
	}
	return n
}

// Probes implements Backend, summing the shards.
func (s *Sharded) Probes() int64 {
	var n int64
	for i := range s.shards {
		s.readShard(i, func(be Backend) { n += be.Probes() })
	}
	return n
}

// Name implements Backend.
func (s *Sharded) Name() string { return s.name }

// BytesPerSlot reports the average slot-storage cost of the table in
// bytes per slot: the backends' own footprint (inline keys, fingerprint
// tags, hash caches, value arrays, spill) plus the expiry layer's
// timestamp side-tables when enabled, divided by the total slot-ID bound.
// It returns 0 when any shard's backend reports no footprint (no
// StorageSized) or no dense slot space (no EvictableBackend).
func (s *Sharded) BytesPerSlot() float64 {
	var bytes, slots int64
	for i := range s.shards {
		ok := true
		s.readShard(i, func(be Backend) {
			ss, okS := be.(StorageSized)
			ebe, okE := be.(EvictableBackend)
			if !okS || !okE {
				ok = false
				return
			}
			bytes += ss.StorageBytes()
			slots += int64(ebe.SlotIDBound())
		})
		if !ok {
			return 0
		}
	}
	if exp := s.expiry; exp != nil {
		for i := range exp.shards {
			bytes += exp.shards[i].sideTableBytes()
		}
	}
	if slots == 0 {
		return 0
	}
	return float64(bytes) / float64(slots)
}

// ShardLens returns the per-shard entry counts (the partition-balance
// gauge, analogous to the paper's per-path load split).
func (s *Sharded) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		s.readShard(i, func(be Backend) { out[i] = be.Len() })
	}
	return out
}

// batchScratch is the reusable working set of one batch operation: the
// per-key routing and hash results plus the shard-grouped index plan, all
// backed by pooled arrays so steady-state batches allocate nothing.
type batchScratch struct {
	routes []int32            // shard of keys[i]
	counts []int32            // per-shard key counts
	plan   [][]int32          // per-shard indices into keys, in input order
	arena  []int32            // backing store for plan's slices
	khs    []hashfn.KeyHashes // per-key single-pass hashes (hashed mode)
	errs   []error            // InsertBatch's per-key failure staging
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	return s[:n]
}

// planBatch groups key positions by shard so each shard's lock is taken at
// most once per batch and each key is hashed exactly once: in hashed mode
// the same KeyHashes that routes the shard later indexes the buckets. The
// scratch must be returned with putScratch.
func (s *Sharded) planBatch(keys [][]byte) *batchScratch {
	sc := s.scratch.Get().(*batchScratch)
	n := len(keys)
	ns := len(s.shards)
	sc.routes = growInt32(sc.routes, n)
	sc.counts = growInt32(sc.counts, ns)
	sc.arena = growInt32(sc.arena, n)
	if cap(sc.plan) < ns {
		sc.plan = make([][]int32, ns)
	}
	sc.plan = sc.plan[:ns]
	hashed := s.hashedRouting()
	if s.hashed {
		if cap(sc.khs) < n {
			sc.khs = make([]hashfn.KeyHashes, n)
		}
		sc.khs = sc.khs[:n]
	}
	if ns == 1 {
		// Single shard: no routing, but the hash pass still happens here so
		// the per-shard loop reuses it.
		if s.hashed {
			for i, k := range keys {
				sc.khs[i] = s.pair.Compute(k)
			}
		}
		idx := sc.arena[:n]
		for i := range idx {
			idx[i] = int32(i)
		}
		sc.plan[0] = idx
		return sc
	}
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	switch {
	case hashed:
		for i, k := range keys {
			kh := s.pair.Compute(k)
			sc.khs[i] = kh
			r := int32(s.shardOfMix(kh))
			sc.routes[i] = r
			sc.counts[r]++
		}
	case s.hashed: // custom selector routes, backends still take hashes
		for i, k := range keys {
			sc.khs[i] = s.pair.Compute(k)
			r := int32(s.shardOf(k))
			sc.routes[i] = r
			sc.counts[r]++
		}
	default:
		for i, k := range keys {
			r := int32(s.shardOf(k))
			sc.routes[i] = r
			sc.counts[r]++
		}
	}
	// Carve the arena into per-shard segments (counting sort layout), then
	// fill in input order.
	off := int32(0)
	for i, c := range sc.counts {
		sc.plan[i] = sc.arena[off : off : off+c]
		off += c
	}
	for i, r := range sc.routes {
		sc.plan[r] = append(sc.plan[r], int32(i))
	}
	return sc
}

func (s *Sharded) putScratch(sc *batchScratch) { s.scratch.Put(sc) }

// prefetchSink receives the folded prefetch reads. The call boundary is
// the point: a non-inlined callee forces its argument to be materialised,
// so the compiler cannot discard the bucket touches as dead loads.
//
//go:noinline
func prefetchSink(v uint64) uint64 { return v }

// prefetchShard touches every candidate bucket of one shard's sub-batch
// at the head of the locked section, before any key is resolved: the flat
// slot layout makes the lines each probe will read predictable, so the
// touches issue a run of independent cache misses that overlap instead of
// serialising behind one another. Costs nothing when the backend cannot
// prefetch. Callers must hold the shard's lock (shared suffices:
// PrefetchHashed is read-only).
func (s *Sharded) prefetchShard(sh *shardState, sc *batchScratch, shard int) {
	if sh.pbe == nil || !s.hashed {
		return
	}
	var acc uint64
	for _, i := range sc.plan[shard] {
		acc ^= sh.pbe.PrefetchHashed(sc.khs[i])
	}
	prefetchSink(acc)
}

// lookupShard resolves one shard's slice of the batch, on the lock-free
// path when active and under a shared lock otherwise.
func (s *Sharded) lookupShard(shard int, keys [][]byte, sc *batchScratch, ids []uint64, hits []bool) {
	if s.optimistic { // implies s.hashed: khs are populated
		s.lookupShardOptimistic(shard, keys, sc, ids, hits)
		return
	}
	s.lookupShardLocked(shard, keys, sc, ids, hits, 0)
}

// lookupShardOptimistic resolves one shard's sub-batch without taking the
// lock: every key is probed through ReadHashed under its own seqlock
// window (per-key validation, so one writer invalidates one probe, not
// the whole sub-batch), with the deferred stats accumulated on the stack
// and committed once per sub-batch. If any key exhausts its retry budget
// — a writer owned the shard throughout — the remainder of the sub-batch
// is finished under the RLock, which waits the writer out.
func (s *Sharded) lookupShardOptimistic(shard int, keys [][]byte, sc *batchScratch, ids []uint64, hits []bool) {
	sh := &s.shards[shard]
	// Prefetching needs no lock: PrefetchHashed is read-only by contract
	// and the flat arenas tolerate torn loads (the touches are hints, not
	// results).
	s.prefetchShard(sh, sc, shard)
	exp := s.expiry
	var epoch uint32
	if exp != nil {
		epoch = exp.epoch.Load() // one clock read per shard sub-batch
	}
	var deferred [MaxReadOutcomes]int64
	striped := s.striped
	plan := sc.plan[shard]
	for pi := 0; pi < len(plan); pi++ {
		i := plan[pi]
		st1, st2 := s.stripePair(sc.khs[i])
		resolved := false
		for attempt := 0; attempt < seqlockAttempts; attempt++ {
			g1 := sh.seq.Load()
			if g1&1 != 0 {
				sh.gretries.Add(1)
				continue
			}
			var p1, p2 uint64
			if striped {
				p1 = sh.stripes[st1].seq.Load()
				p2 = sh.stripes[st2].seq.Load()
				if p1&1 != 0 || p2&1 != 0 {
					sh.sretries.Add(1)
					continue
				}
			}
			local, outcome, hit := sh.obe.ReadHashed(keys[i], sc.khs[i])
			if sh.seq.Load() != g1 {
				sh.gretries.Add(1)
				continue
			}
			if striped && (sh.stripes[st1].seq.Load() != p1 || sh.stripes[st2].seq.Load() != p2) {
				sh.sretries.Add(1)
				continue
			}
			deferred[outcome]++
			if hit {
				sh.oldHitCheck(local)
				ids[i] = s.globalID(shard, local)
				hits[i] = true
				if exp != nil {
					exp.touch(shard, local, epoch)
				}
			}
			resolved = true
			break
		}
		if !resolved {
			sh.fallbacks.Add(1)
			commitDeferred(sh.obe, &deferred)
			s.lookupShardLocked(shard, keys, sc, ids, hits, pi)
			return
		}
	}
	commitDeferred(sh.obe, &deferred)
}

// lookupShardLocked resolves one shard's sub-batch from plan position
// `from` under a shared lock (from > 0 only on the optimistic path's
// fallback, which has already resolved the earlier positions).
func (s *Sharded) lookupShardLocked(shard int, keys [][]byte, sc *batchScratch, ids []uint64, hits []bool, from int) {
	sh := &s.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.prefetchShard(sh, sc, shard)
	exp := s.expiry
	var epoch uint32
	if exp != nil {
		epoch = exp.epoch.Load() // one clock read per shard sub-batch
	}
	plan := sc.plan[shard][from:]
	if s.hashed {
		for _, i := range plan {
			if local, ok := sh.hbe.LookupHashed(keys[i], sc.khs[i]); ok {
				sh.oldHitCheck(local)
				ids[i] = s.globalID(shard, local)
				hits[i] = true
				if exp != nil {
					exp.touch(shard, local, epoch)
				}
			}
		}
		return
	}
	for _, i := range plan {
		if local, ok := sh.be.Lookup(keys[i]); ok {
			sh.oldHitCheck(local)
			ids[i] = s.globalID(shard, local)
			hits[i] = true
			if exp != nil {
				exp.touch(shard, local, epoch)
			}
		}
	}
}

// LookupBatch looks up all keys, amortising shard locking, routing and
// hashing: keys are grouped per shard, each shard is visited once, and
// each key is hashed once. Results are positional: ids[i], hits[i]
// correspond to keys[i].
func (s *Sharded) LookupBatch(keys [][]byte) (ids []uint64, hits []bool) {
	ids = make([]uint64, len(keys))
	hits = make([]bool, len(keys))
	s.LookupBatchInto(keys, ids, hits)
	return ids, hits
}

// LookupBatchInto is LookupBatch into caller-supplied result buffers, for
// callers that reuse buffers across batches: the steady-state hot path
// allocates nothing. ids and hits must both have the length of keys; every
// element is overwritten.
func (s *Sharded) LookupBatchInto(keys [][]byte, ids []uint64, hits []bool) {
	if len(ids) != len(keys) || len(hits) != len(keys) {
		panic(fmt.Sprintf("table: LookupBatchInto buffers (%d ids, %d hits) do not match %d keys",
			len(ids), len(hits), len(keys)))
	}
	for i := range ids {
		ids[i] = 0
		hits[i] = false
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.lookupShard(shard, keys, sc, ids, hits)
	}
	s.putScratch(sc)
}

// insertShardInto resolves one shard's slice of the batch, recording
// per-key failures positionally in errs. Pressure evictions staged under
// the lock are fired after it is released, before the next shard.
func (s *Sharded) insertShardInto(shard int, keys [][]byte, sc *batchScratch, ids []uint64, errs []error) {
	if pe := s.insertShardLocked(shard, keys, sc, ids, errs); pe != nil {
		s.fireEvictions(pe)
	}
}

// insertShardLocked is insertShardInto's exclusive-lock section; a
// non-nil result carries the sub-batch's staged pressure evictions. In
// striped mode each key gets its own targeted write section (stamping
// two stripe words per key, so concurrent readers of untouched stripes
// keep validating throughout the sub-batch); in single-word mode one
// global section covers the whole sub-batch, preserving PR 6's
// two-atomic-adds-per-sub-batch cost model. The growth pump runs after
// the write sections, bracketing the global word itself only when it has
// work to do.
func (s *Sharded) insertShardLocked(shard int, keys [][]byte, sc *batchScratch, ids []uint64, errs []error) *pendingEvictions {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.prefetchShard(sh, sc, shard)
	var pe *pendingEvictions
	striped := s.striped
	if !striped {
		sh.beginWrite()
	}
	for _, i := range sc.plan[shard] {
		if s.admit != nil { // SetAdmission guarantees the hashed path
			if aerr := s.admitGateLocked(sh, shard, keys[i], sc.khs[i]); aerr != nil {
				errs[i] = aerr
				continue
			}
		}
		var local uint64
		var err error
		if striped { // implies s.hashed
			st1, st2 := s.stripePair(sc.khs[i])
			ws := sh.beginKeyWrite(st1, st2)
			local, err = s.insertKeyLocked(sh, shard, keys[i], sc.khs[i], true, &pe)
			sh.endKeyWrite(ws)
		} else {
			var kh hashfn.KeyHashes
			if s.hashed { // khs is only populated on the hashed path
				kh = sc.khs[i]
			}
			local, err = s.insertKeyLocked(sh, shard, keys[i], kh, s.hashed, &pe)
		}
		if err != nil {
			errs[i] = err
			continue
		}
		ids[i] = s.globalID(shard, local)
	}
	if !striped {
		sh.endWrite()
	}
	s.growPumps(sh, shard, true)
	return pe
}

// InsertBatch inserts all keys. ids is positional; errs is nil when every
// insert succeeded, otherwise errs[i] carries the per-key failure. A
// non-nil errs[i] is the only failure marker — zero is a legitimate ID
// (shard 0's first CAM entry encodes to 0). The two result slices are the
// call's only steady-state allocations; InsertBatchInto avoids even those.
func (s *Sharded) InsertBatch(keys [][]byte) (ids []uint64, errs []error) {
	ids = make([]uint64, len(keys))
	sc := s.planBatch(keys)
	sc.errs = growErrs(sc.errs, len(keys))
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.insertShardInto(shard, keys, sc, ids, sc.errs)
	}
	// Harvest failures into the lazily allocated return slice, dropping the
	// pooled buffer's references so errors do not outlive the call inside
	// the pool.
	for i, e := range sc.errs {
		if e == nil {
			continue
		}
		if errs == nil {
			errs = make([]error, len(keys))
		}
		errs[i] = e
		sc.errs[i] = nil
	}
	s.putScratch(sc)
	return ids, errs
}

// InsertBatchInto is InsertBatch into caller-supplied result buffers, for
// writers that reuse buffers across batches: the steady-state insert path
// — one hash pass per key, shard-grouped exclusive locking, bucket
// placement — allocates nothing beyond what individual backend inserts
// require. ids and errs must both have the length of keys; every element
// is overwritten (errs[i] nil on success).
func (s *Sharded) InsertBatchInto(keys [][]byte, ids []uint64, errs []error) {
	if len(ids) != len(keys) || len(errs) != len(keys) {
		panic(fmt.Sprintf("table: InsertBatchInto buffers (%d ids, %d errs) do not match %d keys",
			len(ids), len(errs), len(keys)))
	}
	for i := range ids {
		ids[i] = 0
		errs[i] = nil
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.insertShardInto(shard, keys, sc, ids, errs)
	}
	s.putScratch(sc)
}

// deleteShard resolves one shard's slice of the batch under an exclusive
// lock: per-key targeted write sections in striped mode, one global
// section for the whole sub-batch otherwise.
func (s *Sharded) deleteShard(shard int, keys [][]byte, sc *batchScratch, ok []bool) {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.striped { // implies s.hashed
		for _, i := range sc.plan[shard] {
			st1, st2 := s.stripePair(sc.khs[i])
			ws := sh.beginKeyWrite(st1, st2)
			ok[i] = sh.hbe.DeleteHashed(keys[i], sc.khs[i])
			sh.endKeyWrite(ws)
		}
		s.growPumps(sh, shard, false)
		return
	}
	sh.beginWrite()
	if s.hashed {
		for _, i := range sc.plan[shard] {
			ok[i] = sh.hbe.DeleteHashed(keys[i], sc.khs[i])
		}
	} else {
		for _, i := range sc.plan[shard] {
			ok[i] = sh.be.Delete(keys[i])
		}
	}
	sh.endWrite()
	s.growPumps(sh, shard, false)
}

// DeleteBatch deletes all keys, reporting per-key presence positionally.
func (s *Sharded) DeleteBatch(keys [][]byte) []bool {
	ok := make([]bool, len(keys))
	s.DeleteBatchInto(keys, ok)
	return ok
}

// DeleteBatchInto is DeleteBatch into a caller-supplied result buffer; ok
// must have the length of keys and every element is overwritten.
func (s *Sharded) DeleteBatchInto(keys [][]byte, ok []bool) {
	if len(ok) != len(keys) {
		panic(fmt.Sprintf("table: DeleteBatchInto buffer (%d) does not match %d keys", len(ok), len(keys)))
	}
	for i := range ok {
		ok[i] = false
	}
	sc := s.planBatch(keys)
	for shard := range s.shards {
		if len(sc.plan[shard]) == 0 {
			continue
		}
		s.deleteShard(shard, keys, sc, ok)
	}
	s.putScratch(sc)
}

// BatchErr collapses an InsertBatch error slice into one error for
// callers that do not need per-key attribution.
func BatchErr(errs []error) error {
	if errs == nil {
		return nil
	}
	return errors.Join(errs...)
}
