package slotarr

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// refStore is the obvious reference implementation the SWAR store is
// differentially checked against.
type refStore struct {
	keys [][]byte
	tags []uint8
}

func newRef(n int) *refStore { return &refStore{keys: make([][]byte, n), tags: make([]uint8, n)} }

func (r *refStore) set(i int, tag uint8, key []byte) {
	r.keys[i] = append([]byte(nil), key...)
	r.tags[i] = tag
}

func (r *refStore) clear(i int) { r.tags[i] = 0 }

func (r *refStore) findTagged(base, n int, tag uint8, key []byte) (int, bool) {
	for i := base; i < base+n; i++ {
		if r.tags[i] == tag && bytes.Equal(r.keys[i], key) {
			return i, true
		}
	}
	return 0, false
}

func (r *refStore) findFree(base, n int) (int, bool) {
	for i := base; i < base+n; i++ {
		if r.tags[i] == 0 {
			return i, true
		}
	}
	return 0, false
}

func (r *refStore) load(base, n int) int {
	occ := 0
	for i := base; i < base+n; i++ {
		if r.tags[i] != 0 {
			occ++
		}
	}
	return occ
}

// TestDifferentialVsReference drives a random op stream over bucket sizes
// that straddle every SWAR word boundary (1..19 slots per probe range) on
// both the inline and spill layouts, checking every probe result against
// the reference scan.
func TestDifferentialVsReference(t *testing.T) {
	for _, keyLen := range []int{13, MaxInline, MaxInline + 16} {
		for _, bucket := range []int{1, 2, 4, 7, 8, 9, 15, 16, 19} {
			t.Run(fmt.Sprintf("keyLen=%d/bucket=%d", keyLen, bucket), func(t *testing.T) {
				const buckets = 8
				n := buckets * bucket
				s := New(n, keyLen)
				if s.Inline() != (keyLen <= MaxInline) {
					t.Fatalf("Inline() = %v for keyLen %d", s.Inline(), keyLen)
				}
				ref := newRef(n)
				rng := rand.New(rand.NewSource(int64(keyLen*100 + bucket)))
				mkKey := func(id int) []byte {
					k := make([]byte, keyLen)
					rng2 := rand.New(rand.NewSource(int64(id)))
					rng2.Read(k)
					return k
				}
				// Deliberately tiny tag alphabet so tag collisions between
				// different keys are common in every bucket.
				tagOf := func(id int) uint8 { return 0x80 | uint8(id%3) }
				for op := 0; op < 4000; op++ {
					id := rng.Intn(64)
					key, tag := mkKey(id), tagOf(id)
					base := rng.Intn(buckets) * bucket
					switch rng.Intn(4) {
					case 0: // place in this bucket if free
						if slot, ok := ref.findFree(base, bucket); ok {
							gotSlot, gotOK := s.FindFree(base, bucket)
							if !gotOK || gotSlot != slot {
								t.Fatalf("op %d FindFree(%d,%d) = (%d,%v), ref (%d,true)", op, base, bucket, gotSlot, gotOK, slot)
							}
							s.Set(slot, tag, key)
							ref.set(slot, tag, key)
						} else if _, gotOK := s.FindFree(base, bucket); gotOK {
							t.Fatalf("op %d FindFree found a slot in a full bucket", op)
						}
					case 1: // probe
						slot, ok := ref.findTagged(base, bucket, tag, key)
						gotSlot, gotOK := s.FindTagged(base, bucket, tag, key)
						if gotOK != ok || (ok && gotSlot != slot) {
							t.Fatalf("op %d FindTagged = (%d,%v), ref (%d,%v)", op, gotSlot, gotOK, slot, ok)
						}
					case 2: // clear a matching slot
						if slot, ok := ref.findTagged(base, bucket, tag, key); ok {
							s.Clear(slot)
							ref.clear(slot)
						}
					case 3: // load
						if got, want := s.Load(base, bucket), ref.load(base, bucket); got != want {
							t.Fatalf("op %d Load(%d,%d) = %d, ref %d", op, base, bucket, got, want)
						}
					}
				}
				// Full sweep: occupancy, keys and appends agree everywhere.
				for i := 0; i < n; i++ {
					if s.Occupied(i) != (ref.tags[i] != 0) {
						t.Fatalf("slot %d occupancy mismatch", i)
					}
					got, ok := s.AppendKey(nil, i)
					if ok != (ref.tags[i] != 0) {
						t.Fatalf("slot %d AppendKey ok=%v", i, ok)
					}
					if ok && !bytes.Equal(got, ref.keys[i]) {
						t.Fatalf("slot %d key %x, ref %x", i, got, ref.keys[i])
					}
					if ok && !bytes.Equal(s.Key(i), ref.keys[i]) {
						t.Fatalf("slot %d Key view %x, ref %x", i, s.Key(i), ref.keys[i])
					}
				}
			})
		}
	}
}

// TestTagCollisionFirstMatchOrder pins the bit-identity property the
// tables rely on: when several slots in one probe range share a tag, the
// match is the first slot in slot order whose full key equals the probe —
// exactly what a plain linear scan returns.
func TestTagCollisionFirstMatchOrder(t *testing.T) {
	s := New(16, 13)
	tag := uint8(0xAA)
	k1 := bytes.Repeat([]byte{1}, 13)
	k2 := bytes.Repeat([]byte{2}, 13)
	k3 := bytes.Repeat([]byte{3}, 13)
	s.Set(3, tag, k1) // collides with k2's tag
	s.Set(5, tag, k2)
	s.Set(9, tag, k2) // duplicate key later in slot order: must not win
	s.Set(1, 0x81, k3)
	if slot, ok := s.FindTagged(0, 16, tag, k2); !ok || slot != 5 {
		t.Fatalf("FindTagged(k2) = (%d,%v), want first match at 5", slot, ok)
	}
	if slot, ok := s.FindTagged(0, 16, tag, k1); !ok || slot != 3 {
		t.Fatalf("FindTagged(k1) = (%d,%v), want 3", slot, ok)
	}
	// Same key under a different tag must not match: the store trusts the
	// caller's tag derivation to be a pure function of the key.
	if _, ok := s.FindTagged(0, 16, 0x81, k1); ok {
		t.Fatal("FindTagged matched a key stored under a different tag")
	}
	// Clearing the first collider exposes nothing stale.
	s.Clear(3)
	if slot, ok := s.FindTagged(0, 16, tag, k1); ok {
		t.Fatalf("cleared key still found at %d", slot)
	}
	if slot, ok := s.FindTagged(0, 16, tag, k2); !ok || slot != 5 {
		t.Fatalf("survivor lost after Clear: (%d,%v)", slot, ok)
	}
}

// TestTagDerivations covers the two fingerprint derivations: nonzero
// always, stable per input, and spread over the alphabet.
func TestTagDerivations(t *testing.T) {
	seen := map[uint8]bool{}
	for i := 0; i < 4096; i++ {
		w := uint64(i) * 0x9e3779b97f4a7c15
		tg := TagOf(w)
		if tg == 0 {
			t.Fatal("TagOf produced the reserved free tag")
		}
		if tg&0x80 == 0 {
			t.Fatal("TagOf high bit clear")
		}
		if tg != TagOf(w) {
			t.Fatal("TagOf unstable")
		}
		seen[tg] = true
	}
	if len(seen) != 128 {
		t.Fatalf("TagOf covered %d of 128 tag values over 4096 words", len(seen))
	}
	seen = map[uint8]bool{}
	key := make([]byte, 13)
	for i := 0; i < 4096; i++ {
		key[i%13]++
		tg := ByteTag(key)
		if tg == 0 || tg&0x80 == 0 {
			t.Fatalf("ByteTag(%x) = %#x", key, tg)
		}
		if tg != ByteTag(key) {
			t.Fatal("ByteTag unstable")
		}
		seen[tg] = true
	}
	if len(seen) < 120 {
		t.Fatalf("ByteTag covered only %d of 128 tag values", len(seen))
	}
}

// TestSpillBufferReuse pins the steady-state allocation story of the
// oversized-key path: once a slot has grown its spill buffer, re-Setting
// the slot reuses it.
func TestSpillBufferReuse(t *testing.T) {
	s := New(8, MaxInline+8)
	key := bytes.Repeat([]byte{7}, MaxInline+8)
	s.Set(2, 0x80, key)
	s.Clear(2)
	if n := testing.AllocsPerRun(100, func() {
		key[0]++
		s.Set(2, 0x80, key)
		s.Clear(2)
	}); n != 0 {
		t.Fatalf("spill slot reuse allocates %.1f per op", n)
	}
}

// TestStoreContractPanics pins the constructor and Set guard rails.
func TestStoreContractPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("New(0, 13)", func() { New(0, 13) })
	expectPanic("New(8, 0)", func() { New(8, 0) })
	s := New(8, 13)
	expectPanic("Set with tag 0", func() { s.Set(0, 0, make([]byte, 13)) })
	expectPanic("Set with short key", func() { s.Set(0, 0x80, make([]byte, 5)) })
}

// TestBytesAndTouch covers the footprint report and the prefetch read on
// both layouts.
func TestBytesAndTouch(t *testing.T) {
	in := New(64, 13)
	if got := in.Bytes(); got != 64*13+64+tagPad {
		t.Fatalf("inline Bytes() = %d", got)
	}
	in.Set(0, 0x90, bytes.Repeat([]byte{5}, 13))
	if in.Touch(0) == 0 {
		t.Fatal("Touch folded to zero on an occupied slot group") // 0x90^5 != 0
	}
	sp := New(4, MaxInline+1)
	base := sp.Bytes()
	sp.Set(1, 0x80, make([]byte, MaxInline+1))
	if sp.Bytes() <= base {
		t.Fatal("spill Bytes() did not grow with a retained buffer")
	}
	sp.Touch(1) // must not fault on the spill layout
}
