// Package slotarr provides the cache-conscious slot storage shared by
// every lookup structure in this repository: keys held inline in one
// contiguous fixed-stride arena (flow keys are small and bounded — the
// packed IPv4 5-tuple is 13 bytes) plus a parallel one-byte fingerprint
// tag array, so a bucket probe first scans up to eight tags in a single
// word-wide SWAR compare and only touches key memory on a tag hit.
//
// The paper's argument (conf_socc_YangSO14) is that flow-lookup
// throughput is bounded by memory behaviour, not hash compute; this
// layout is the software rendition of its flat bucket RAMs. A negative
// probe costs one 8-byte tag load instead of K key reads, and a positive
// probe costs the tag load plus exactly one key compare (tag collisions
// add compares but never change results — every candidate is verified
// against the full key, in slot order, so match semantics are
// bit-identical to a plain linear scan).
//
// Keys longer than MaxInline take a rare-case spill path: the tag array
// and probe discipline are unchanged, but key bytes live in per-slot heap
// buffers (retained across slot reuse, so steady-state churn does not
// allocate).
package slotarr

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// MaxInline is the largest key length (bytes) stored inline in the
// contiguous arena; longer keys spill to per-slot heap buffers. 32 covers
// every descriptor in this repository (the packed IPv4 5-tuple is 13
// bytes, an IPv6 5-tuple would be 37 and spill).
const MaxInline = 32

// tagPad is the slack appended to the tag array so an 8-byte SWAR load at
// any valid slot index never reads out of range.
const tagPad = 8

// SWAR constants: lo1 broadcasts a byte across the word, lo7 masks the
// low seven bits of every byte, hi1 isolates the per-byte high bits.
const (
	lo1 = 0x0101010101010101
	lo7 = 0x7f7f7f7f7f7f7f7f
	hi1 = 0x8080808080808080
)

// zeroBytes returns a word whose per-byte high bit is set exactly for the
// zero bytes of x. This is the exact formulation (no false positives for
// any byte values), not the cheaper borrow-propagating approximation — the
// free-slot scan picks a slot from the result without re-verifying, so
// approximate detection would corrupt occupied slots.
func zeroBytes(x uint64) uint64 {
	return ^(((x & lo7) + lo7) | x | lo7)
}

// TagOf derives a slot's fingerprint tag from a full hash word — the same
// word whose low bits index the bucket, so tagging adds zero hash
// computations. The tag takes the top seven bits (disjoint from the
// low-bit bucket reduction, so tags stay uniform within one bucket) and
// forces the high bit, reserving tag 0 for "slot free".
func TagOf(w uint64) uint8 {
	return 0x80 | uint8(w>>57)
}

// ByteTag derives a fingerprint directly from key bytes, for stores probed
// without a hash word in hand (the CAM is searched before any hash is
// computed — that laziness is load-bearing for the early-exit pipeline's
// hash-count contract, so its tags cannot come from H1/H2). One cheap
// multiplicative fold per search replaces a key compare per occupied slot.
func ByteTag(key []byte) uint8 {
	h := uint64(len(key)) * 0x9e3779b97f4a7c15
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	// Finalize so the top bits TagOf consumes depend on every byte.
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return TagOf(h)
}

// Store is one fixed-geometry slot array: n slots of keyLen-byte keys.
// Slot indices are the caller's location-derived IDs; the store itself
// imposes no bucket structure — callers probe ranges ([bucket*K, K) for a
// bucketed table, [0, n) for a CAM-style full scan).
//
// Concurrency contract: any number of concurrent readers (Find*, Load,
// Occupied, Key, AppendKey, Touch), or one writer (Set, Clear) with no
// readers — the same discipline as the tables built on it, which the
// sharded layer's RWMutex enforces.
//
// Seqlock extension (inline path only): the sharded layer's optimistic
// read path runs the read operations concurrently with one writer,
// protected by a sequence counter validated around the read instead of a
// lock. The inline layout upholds the torn-read leg of
// table.OptimisticBackend by construction:
//
//   - Every array (keys, tags) is allocated once at New and never grows
//     or moves, so a racing reader can never follow a stale pointer or
//     index out of bounds — the worst outcome is reading a byte mix of
//     old and new content, which the caller's sequence validation
//     discards.
//   - Set writes the key bytes before the tag, and Clear touches only the
//     tag. The ordering is single-goroutine program order, not a publish
//     barrier: a racing reader may still observe the new tag with old key
//     bytes (store buffering, cache timing), and correctness never
//     depends on it not doing so — the seqlock discards the whole read.
//     The ordering merely shrinks the torn window on TSO hosts, where
//     stores retire in order.
//
// The spill path does NOT uphold the contract: spill[i] is a 3-word slice
// header whose first Set swings it from nil to a fresh allocation, and a
// reader that loads a torn header (new pointer, old length — or a pointer
// no happens-before edge has published) can fault rather than misread.
// Backends must therefore report ReadLockFree() == Inline(), and the
// sharded layer keeps the RLock for spilled key widths.
type Store struct {
	n      int
	keyLen int
	keys   []byte   // inline arena (n × keyLen); nil on the spill path
	spill  [][]byte // per-slot key buffers; nil on the inline path
	tags   []byte   // n + tagPad; tags[i] == 0 marks slot i free
}

// New returns a store of n slots over keyLen-byte keys. Keys up to
// MaxInline bytes are stored inline; longer keys spill to per-slot heap
// buffers.
func New(n, keyLen int) *Store {
	if n <= 0 || keyLen <= 0 {
		panic(fmt.Sprintf("slotarr: need positive slots and key length, got %d, %d", n, keyLen))
	}
	s := &Store{n: n, keyLen: keyLen, tags: make([]byte, n+tagPad)}
	if keyLen <= MaxInline {
		s.keys = make([]byte, n*keyLen)
	} else {
		s.spill = make([][]byte, n)
	}
	return s
}

// Slots returns the slot count.
func (s *Store) Slots() int { return s.n }

// KeyLen returns the fixed key length in bytes.
func (s *Store) KeyLen() int { return s.keyLen }

// Inline reports whether keys live in the contiguous arena (false: the
// oversized-key spill path).
func (s *Store) Inline() bool { return s.keys != nil }

// Occupied reports whether slot i holds an entry.
func (s *Store) Occupied(i int) bool { return s.tags[i] != 0 }

// Key returns the stored key bytes of slot i. The slice aliases the
// store; it is valid until the next Set or Clear of the slot and must not
// be mutated. Calling Key on a free slot returns stale bytes — guard with
// Occupied.
func (s *Store) Key(i int) []byte {
	if s.keys != nil {
		return s.keys[i*s.keyLen : i*s.keyLen+s.keyLen : i*s.keyLen+s.keyLen]
	}
	return s.spill[i]
}

// AppendKey appends slot i's key bytes onto dst, reporting false (dst
// unchanged) when the slot is free.
func (s *Store) AppendKey(dst []byte, i int) ([]byte, bool) {
	if s.tags[i] == 0 {
		return dst, false
	}
	return append(dst, s.Key(i)...), true
}

// Set stores key in slot i under tag. tag must be nonzero (TagOf and
// ByteTag guarantee it) and key must have the store's key length. The key
// bytes are copied — inline into the arena (no allocation), or into the
// slot's retained spill buffer (allocating only the first time a slot
// grows).
func (s *Store) Set(i int, tag uint8, key []byte) {
	if tag == 0 {
		panic("slotarr: tag 0 is reserved for free slots")
	}
	if len(key) != s.keyLen {
		panic(fmt.Sprintf("slotarr: key of %d bytes, store configured for %d", len(key), s.keyLen))
	}
	if s.keys != nil {
		copy(s.keys[i*s.keyLen:], key)
	} else {
		s.spill[i] = append(s.spill[i][:0], key...)
	}
	s.tags[i] = tag
}

// Clear frees slot i. Key bytes are left in place (spill buffers are
// retained for reuse); only the tag is reset.
func (s *Store) Clear(i int) { s.tags[i] = 0 }

// keyEq reports whether slot i stores exactly key.
func (s *Store) keyEq(i int, key []byte) bool {
	if s.keys != nil {
		base := i * s.keyLen
		return bytes.Equal(s.keys[base:base+s.keyLen], key)
	}
	return bytes.Equal(s.spill[i], key)
}

// loadWord reads the 8 tags at [base+off, base+off+8), zeroing any bytes
// beyond the probed range of n slots so neighbouring buckets can never
// match (a zero byte equals no nonzero tag).
func (s *Store) loadWord(base, off, n int) uint64 {
	w := binary.LittleEndian.Uint64(s.tags[base+off:])
	if rem := n - off; rem < 8 {
		w &= 1<<(8*rem) - 1
	}
	return w
}

// TagMatches returns the SWAR candidate mask of the probe range
// [base, base+n), n <= 8: the high bit of result byte i is set exactly
// when slot base+i carries tag. It is a small inlinable leaf — the
// innermost read-path operation — so hot paths iterate the mask in their
// own frame (NextMatch, then a Key compare) without a function call per
// probe; FindTagged packages the same loop for paths that are not
// call-count-bound.
func (s *Store) TagMatches(base, n int, tag uint8) uint64 {
	w := binary.LittleEndian.Uint64(s.tags[base:])
	if n < 8 {
		w &= 1<<(8*n) - 1
	}
	return zeroBytes(w ^ lo1*uint64(tag))
}

// NextMatch pops the lowest candidate from a TagMatches mask, returning
// the slot offset within the probe range and the remaining mask.
func NextMatch(m uint64) (offset int, rest uint64) {
	return bits.TrailingZeros64(m) >> 3, m & (m - 1)
}

// FindTagged returns the first slot in [base, base+n) whose tag equals
// tag and whose stored key equals key. Candidates are verified in slot
// order, so the result is bit-identical to a plain first-match linear
// scan; tag collisions only cost extra key compares. A probe that misses
// never reads key memory at all.
func (s *Store) FindTagged(base, n int, tag uint8, key []byte) (int, bool) {
	if n > 8 {
		return s.findTaggedWide(base, n, tag, key)
	}
	m := s.TagMatches(base, n, tag)
	if s.keys == nil {
		for m != 0 {
			slot := base + bits.TrailingZeros64(m)>>3
			if bytes.Equal(s.spill[slot], key) {
				return slot, true
			}
			m &= m - 1
		}
		return 0, false
	}
	kl := s.keyLen
	for m != 0 {
		slot := base + bits.TrailingZeros64(m)>>3
		if o := slot * kl; bytes.Equal(s.keys[o:o+kl], key) {
			return slot, true
		}
		m &= m - 1
	}
	return 0, false
}

// findTaggedWide is FindTagged for probe ranges spanning several tag
// words.
func (s *Store) findTaggedWide(base, n int, tag uint8, key []byte) (int, bool) {
	spread := lo1 * uint64(tag)
	for off := 0; off < n; off += 8 {
		m := zeroBytes(s.loadWord(base, off, n) ^ spread)
		for m != 0 {
			slot := base + off + bits.TrailingZeros64(m)>>3
			if s.keyEq(slot, key) {
				return slot, true
			}
			m &= m - 1
		}
	}
	return 0, false
}

// FreeSlots returns the SWAR mask of free slots in the probe range
// [base, base+n), n <= 8, in TagMatches' format — the inlinable leaf of
// the placement path.
func (s *Store) FreeSlots(base, n int) uint64 {
	w := binary.LittleEndian.Uint64(s.tags[base:])
	if n < 8 {
		// Force out-of-range bytes nonzero so they never look free.
		w |= ^uint64(0) << (8 * n)
	}
	return zeroBytes(w)
}

// FindFree returns the first free slot in [base, base+n).
func (s *Store) FindFree(base, n int) (int, bool) {
	for off := 0; off < n; off += 8 {
		group := n - off
		if group > 8 {
			group = 8
		}
		if m := s.FreeSlots(base+off, group); m != 0 {
			return base + off + bits.TrailingZeros64(m)>>3, true
		}
	}
	return 0, false
}

// Load returns the occupied-slot count of [base, base+n).
func (s *Store) Load(base, n int) int {
	occ := 0
	for off := 0; off < n; off += 8 {
		group, inRange := n-off, uint64(hi1)
		if group > 8 {
			group = 8
		} else if group < 8 {
			inRange = hi1 & (1<<(8*group) - 1)
		}
		occ += group - bits.OnesCount64(zeroBytes(s.loadWord(base, off, n))&inRange)
	}
	return occ
}

// Touch reads the tag word and leading key byte of the slot group at
// base, pulling both lines toward the cache ahead of a probe — the
// software prefetch of the batch pipelines. The returned fold exists so
// callers can sink it where the compiler cannot prove the loads dead.
func (s *Store) Touch(base int) uint64 {
	w := binary.LittleEndian.Uint64(s.tags[base:])
	if s.keys != nil {
		w ^= uint64(s.keys[base*s.keyLen])
	}
	return w
}

// Bytes returns the storage footprint of the store: arena plus tags
// (inline), or tags plus slice headers plus retained spill buffers.
func (s *Store) Bytes() int64 {
	n := int64(len(s.tags))
	if s.keys != nil {
		return n + int64(len(s.keys))
	}
	n += int64(len(s.spill)) * 24 // slice headers
	for _, b := range s.spill {
		n += int64(cap(b))
	}
	return n
}
