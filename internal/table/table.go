// Package table defines the repository-wide contract for exact-match flow
// lookup structures and the machinery to scale them: a Backend interface
// every structure implements (the paper's Hash-CAM and each §II baseline),
// a constructor registry so backends are selectable by name, and a Sharded
// wrapper that partitions one logical table across N goroutine-safe shards
// — the software generalisation of the paper's dual-path design, which is
// itself a 2-way hardware shard across two DDR3 channels (§III, Fig. 2).
package table

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hashfn"
)

// Backend is the common contract of every exact-match flow structure in
// this repository. Implementations need not be safe for concurrent use;
// Sharded provides that layer.
type Backend interface {
	// Lookup returns the stored ID of key.
	Lookup(key []byte) (uint64, bool)
	// Insert stores key if absent and returns its ID; inserting an
	// existing key returns the existing ID.
	Insert(key []byte) (uint64, error)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Len returns the stored entry count.
	Len() int
	// Probes returns the cumulative bucket/CAM accesses performed, the
	// memory-traffic proxy used by comparison benches.
	Probes() int64
	// Name identifies the structure in bench output.
	Name() string
}

// ErrTableFull is returned by Insert when a structure cannot place a key.
var ErrTableFull = errors.New("table: full")

// HashedBackend is the optional fast-path extension of Backend: a
// structure that can consume precomputed key hashes so the whole stack
// hashes each key exactly once per operation (the paper's descriptors are
// hashed once by the two pre-selected functions; rehashing per layer is a
// software artefact this interface removes).
//
// kh must be the hashfn.Pair.Compute output of the backend's own
// configured pair over the same key bytes — Sharded guarantees this by
// construction. Results must be bit-identical to the unhashed methods:
// same IDs, same stages, same errors. Backends that cannot honour that
// simply don't implement the interface and are served by the transparent
// byte-key fallback.
type HashedBackend interface {
	Backend
	// LookupHashed is Lookup with precomputed hashes.
	LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool)
	// InsertHashed is Insert with precomputed hashes.
	InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error)
	// DeleteHashed is Delete with precomputed hashes.
	DeleteHashed(key []byte, kh hashfn.KeyHashes) bool
}

// MaxReadOutcomes bounds the outcome tokens OptimisticBackend.ReadHashed
// may return; the batch read pipeline accumulates deferred stats in a
// fixed stack array indexed by token.
const MaxReadOutcomes = 8

// OptimisticBackend is the optional lock-free-read extension of
// HashedBackend: a structure whose hashed lookup core can execute while a
// writer is concurrently mutating the slot arenas, protected only by the
// caller's seqlock validation. The contract has three legs:
//
//   - ReadHashed must perform no shared-memory writes at all — no stats
//     counters, no scratch reuse — so a read-mostly workload generates
//     zero cache-line invalidations. Lookup accounting is deferred: the
//     call returns an opaque outcome token (< MaxReadOutcomes) and the
//     caller commits it through CommitReads only after the seqlock
//     validates, so committed counts are exactly what the locked path
//     would have recorded.
//   - ReadHashed must tolerate torn state: a concurrent writer may be
//     mid-placement, so key bytes, tags and values can be inconsistent.
//     The call may return a wrong result (the caller detects the torn
//     window via the sequence counter and discards it) but must never
//     panic, read out of bounds, follow a transiently invalid pointer, or
//     loop unboundedly. Flat fixed-geometry arenas satisfy this by
//     construction; lazily allocated or growable structures do not,
//     unless every swap is published atomically.
//   - ReadLockFree reports whether the instance as configured upholds the
//     torn-read guarantee. Structures storing keys through per-slot heap
//     buffers (the slotarr spill path, KeyLen > slotarr.MaxInline) must
//     return false: a torn 3-word slice header could dangle past its
//     allocation. The sharded layer then keeps the RLock path.
//
// Results of a seqlock-validated ReadHashed must be bit-identical to
// LookupHashed over the same quiescent state: same IDs, same resolving
// stages, same deferred probe accounting.
type OptimisticBackend interface {
	HashedBackend
	// ReadLockFree reports whether ReadHashed may run concurrently with a
	// writer on this instance (false: the caller must keep using locks).
	ReadLockFree() bool
	// ReadHashed is LookupHashed with zero shared-memory writes; outcome
	// is the deferred-stats token (< MaxReadOutcomes) for CommitReads.
	ReadHashed(key []byte, kh hashfn.KeyHashes) (id uint64, outcome uint8, ok bool)
	// CommitReads applies the deferred lookup accounting of n validated
	// ReadHashed calls that resolved with outcome. It is called outside
	// any lock and must use atomic counters.
	CommitReads(outcome uint8, n int64)
}

// PrefetchBackend is the optional prefetch extension of HashedBackend: a
// structure that can touch the memory a subsequent hashed operation on
// the same key will probe — candidate buckets' tag words and leading key
// bytes — so the batch pipelines can issue a whole sub-batch of
// independent cache misses before resolving any of them. kh follows the
// HashedBackend contract (the backend's own pair over the key bytes).
//
// PrefetchHashed must be safe under the same locking discipline as
// Lookup (shared lock, concurrent with other readers) and must not
// mutate any state, including stats counters — it is a hint, not an
// access the cost model charges. The returned fold of the touched bytes
// exists so callers can sink it where the compiler cannot prove the
// loads dead; callers must not interpret it.
type PrefetchBackend interface {
	// PrefetchHashed touches the candidate buckets of kh's key.
	PrefetchHashed(kh hashfn.KeyHashes) uint64
}

// StorageSized is the optional footprint extension of Backend: a
// structure that can report the bytes of slot storage it has allocated —
// inline key arenas, fingerprint tags, per-slot hash caches, spill
// buffers and value arrays. The bench tooling divides it by SlotIDBound
// to report bytes per slot next to throughput, so the memory cost of the
// slot layout is tracked alongside speed.
type StorageSized interface {
	// StorageBytes returns the allocated slot-storage footprint in bytes.
	StorageBytes() int64
}

// Config parameterises a backend constructor. Constructors derive their
// internal geometry (bucket counts, sub-tables) from the approximate
// capacity; zero-valued fields take the defaults below.
type Config struct {
	// Capacity is the approximate entry capacity the structure should
	// provide (default 64k).
	Capacity int
	// KeyLen is the fixed key length in bytes (default 13, the packed
	// 5-tuple).
	KeyLen int
	// Hash supplies the hash functions; pairs are consumed as H1/H2
	// (default the prototype CRC pair, or hashfn.SeededPair(HashSeed)
	// when HashSeed is nonzero).
	Hash hashfn.Pair
	// HashSeed keys the hash family. When nonzero and Hash is unset, the
	// backend hashes with hashfn.SeededPair(HashSeed) — non-linear keyed
	// bucket functions plus a keyed shard-selector mix, so neither bucket
	// placement nor shard routing is predictable without the seed. When
	// Hash is set explicitly, a nonzero HashSeed still keys the selector
	// mix (unless the pair already carries its own SelSeed), covering
	// deployments that pin the CRC reference functions. Zero keeps the
	// historical fixed hashing end to end.
	HashSeed uint64
	// SlotsPerBucket is K of Fig. 1 (default 4).
	SlotsPerBucket int
	// CAMCapacity bounds collision overflow for the Hash-CAM family
	// (default 64).
	CAMCapacity int
	// OnFull selects the Sharded layer's full-table policy: FullReject
	// (default, Insert surfaces ErrTableFull) or FullEvictIdlest (reclaim
	// the idlest candidate slot and retry; requires EnableExpiry). Plain
	// backends ignore it — degradation is a Sharded-layer concern.
	OnFull FullPolicy
	// SeqlockStripes selects the Sharded layer's seqlock granularity for
	// targeted writes: 0 derives a per-shard stripe count from the real
	// slot capacity (the default), 1 pins the single-word-per-shard
	// protocol (every write invalidates every in-flight lock-free read
	// on its shard — the PR-6 behaviour, kept as the measurable
	// control), and a power of two > 1 requests that many per-shard
	// stripes, clamped to what the backends' geometry supports
	// (StripedBackend.StripeBound) and to 512. Any other value is
	// rejected by Validate. Plain backends ignore it — striping is a
	// Sharded-layer concern.
	SeqlockStripes int
}

// MaxCapacity bounds Config.Capacity: beyond ~10^12 entries the
// power-of-two bucket derivation would overflow, and no in-memory flow
// table is meaningfully larger.
const MaxCapacity = 1 << 40

// Validate reports an error for out-of-range parameters. Every
// constructor path — table.New, NewSharded and the per-package direct
// constructors (hashcam.BackendConfig, the baseline registry closures) —
// routes through this single check, so an oversized capacity is always a
// loud error rather than a silent clamp. withDefaults still clamps as a
// belt-and-braces overflow guard for direct BucketsFor callers, but no
// constructor reaches it with an invalid capacity.
func (c Config) Validate() error {
	if c.Capacity > MaxCapacity {
		return fmt.Errorf("table: capacity %d exceeds maximum %d", c.Capacity, MaxCapacity)
	}
	if c.Capacity < 0 {
		return fmt.Errorf("table: capacity %d is negative", c.Capacity)
	}
	if c.KeyLen < 0 {
		return fmt.Errorf("table: key length %d is negative", c.KeyLen)
	}
	if c.SeqlockStripes < 0 || (c.SeqlockStripes > 0 && c.SeqlockStripes&(c.SeqlockStripes-1) != 0) {
		return fmt.Errorf("table: seqlock stripes must be 0 (auto) or a power of two, got %d", c.SeqlockStripes)
	}
	return nil
}

// withDefaults fills zero fields and clamps Capacity to MaxCapacity
// (constructors reject out-of-range capacities via Validate before
// clamping can matter; the clamp keeps direct BucketsFor callers safe).
func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.Capacity > MaxCapacity {
		c.Capacity = MaxCapacity
	}
	if c.KeyLen <= 0 {
		c.KeyLen = 13
	}
	if c.Hash.H1 == nil || c.Hash.H2 == nil {
		if c.HashSeed != 0 {
			c.Hash = hashfn.SeededPair(c.HashSeed)
		} else {
			c.Hash = hashfn.DefaultPair()
		}
	} else if c.HashSeed != 0 && c.Hash.SelSeed == 0 {
		c.Hash.SelSeed = hashfn.SelectorSeed(c.HashSeed)
	}
	if c.SlotsPerBucket <= 0 {
		c.SlotsPerBucket = 4
	}
	if c.CAMCapacity <= 0 {
		c.CAMCapacity = 64
	}
	return c
}

// BucketsFor returns the power-of-two bucket count so that tables buckets
// of SlotsPerBucket slots hold at least the configured capacity.
func (c Config) BucketsFor(tables int) int {
	c = c.withDefaults()
	if tables <= 0 {
		tables = 1
	}
	// Divide rather than multiply in the loop condition so huge
	// capacities cannot overflow the comparison.
	need := (c.Capacity + tables*c.SlotsPerBucket - 1) / (tables * c.SlotsPerBucket)
	buckets := 1
	for buckets < need {
		buckets <<= 1
	}
	return buckets
}

// Constructor builds a backend from a configuration.
type Constructor func(cfg Config) (Backend, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Constructor{}
)

// Register makes a backend constructor selectable by name. It panics on a
// duplicate or empty name — registration is an init-time programming
// error, not a runtime condition.
func Register(name string, ctor Constructor) {
	if name == "" || ctor == nil {
		panic("table: Register requires a name and a constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("table: backend %q registered twice", name))
	}
	registry[name] = ctor
}

// New builds the named backend. The canonical names are "hashcam",
// "convhashcam", "cuckoo", "dleft" and "singlehash"; Backends lists what
// is actually registered.
func New(name string, cfg Config) (Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	registryMu.RLock()
	ctor, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("table: unknown backend %q (registered: %v)", name, Backends())
	}
	be, err := ctor(cfg.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("table: backend %q: %w", name, err)
	}
	return be, nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
