package table

// This file implements the striped half of the Sharded table's
// hierarchical seqlock. PR 6's single sequence word per shard meant any
// write invalidated every in-flight lock-free read on the shard; here
// each shard additionally carries a power-of-two array of cache-line
// padded sequence words — stripes — and a targeted write (one key's
// insert or delete) stamps only the stripes covering its candidate
// buckets. The shard-global word is retained for whole-arena mutations
// (expiry sweep steps, migration pumps, geometry swaps, pressure
// evictions, CAM traffic) via escalation, so a reader validates exactly
// two levels: the global word plus its own key's stripe pair.
//
// # Stripe derivation
//
// The stripe of a bucket is a low-bit fold of the same hash word that
// derived the bucket index: stripe = word & (nstripes-1). Because every
// backend reduces a word w to a power-of-two bucket count B as
// w & (B-1) (hashfn.Reduce), and nstripes divides B, the stripe is a
// pure function of the bucket index — bucket & (nstripes-1) — for every
// geometry the backend will ever run, including mid-grow retiring
// arenas (grows only double B, so the construction-time bucket count is
// the minimum). That gives the soundness property the protocol needs:
// any bucket a write of key K touches is congruent to K's H1 or H2 word
// mod nstripes, so any reader whose probe set intersects the written
// bucket shares a stripe with the writer and fails revalidation.
//
// Deriving stripes from anything not congruent to the bucket index
// (e.g. unrelated hash bits) would be unsound: a reader of a deleted
// key K' could false-hit on K''s stale bytes in a slot a writer is
// concurrently overwriting, with no shared stripe to catch the tear.
// StripedBackend.StripeBound is therefore the largest stripe count the
// backend's geometry keeps bucket-index-pure, and NewSharded clamps to
// it.
//
// # Poison (panic fail-safe)
//
// Begin-stamps check parity and refuse to touch a word that is already
// odd: the only way a word is odd while the shard's write lock is free
// is that a previous writer panicked mid-mutation, and the word must
// then stay odd forever so every later lock-free read of that stripe
// (or, for the global word, of the whole shard) falls back to the
// RLock path. End-stamps run non-deferred after the mutation — a panic
// skips them by construction — and only re-even the words their own
// section actually stamped (the writeStamp token).

import (
	"sync/atomic"

	"repro/internal/hashfn"
)

// StripedBackend is the optional striping extension of
// OptimisticBackend: a structure whose candidate buckets are low-bit
// reductions of the KeyHashes words, so the Sharded layer can stamp
// per-stripe sequence words instead of the shard-global one for
// targeted writes.
type StripedBackend interface {
	// StripeBound returns the largest power-of-two stripe count for
	// which every bucket the structure will ever read or write for a
	// key is congruent to one of the key's KeyHashes words modulo the
	// stripe count — in practice the construction-time bucket count
	// when it is a power of two and every sub-table is bound to a
	// KeyHashes word, and 1 otherwise (striping disabled).
	StripeBound() int
	// SetEscalateHook registers fn, which the structure must call
	// BEFORE its first mutation of any state outside the key's
	// candidate buckets during an insert or delete — CAM traffic,
	// cuckoo kick chains leaving the start buckets. The hook is
	// idempotent within one write section and must only be invoked
	// under the same exclusive lock as Insert/Delete.
	SetEscalateHook(fn func())
}

// stripeWord is one stripe's sequence word, padded to a cache line so
// stamping one stripe never invalidates a neighbouring stripe's line in
// readers' caches (the whole point of striping).
type stripeWord struct {
	seq atomic.Uint64
	_   [56]byte
}

// maxStripes caps the automatic sizing (and the explicit knob) at 512
// stripes per shard: 32 KiB of padded words, past which the validation
// win per stripe is noise but the footprint keeps doubling.
const maxStripes = 512

// defaultStripes derives the stripe count for a shard of slotCap real
// slots when the configuration does not pin one: one stripe per ~64
// slots, rounded down to a power of two and clamped to [1, maxStripes].
// At the repo-default geometry (64k flows over 8 shards) this lands on
// 128 stripes per shard.
func defaultStripes(slotCap uint64) int {
	n := 1
	for uint64(n)*2*64 <= slotCap && n*2 <= maxStripes {
		n *= 2
	}
	return n
}

// stripePair folds a key's two hash words onto its stripe indices. The
// mask is zero when striping is off, collapsing both to stripe 0
// (unused in that mode).
func (s *Sharded) stripePair(kh hashfn.KeyHashes) (uint64, uint64) {
	return kh.H1 & s.stripeMask, kh.H2 & s.stripeMask
}

// Stripes returns the effective per-shard stripe count: 1 when the
// table runs the single-word (PR 6) protocol, the clamped power of two
// otherwise. Bench row identity includes it.
func (s *Sharded) Stripes() int { return s.nstripes }

// writeStamp is the stack token of one targeted write section: which
// stripes the section covers and which words beginKeyWrite actually
// stamped (false = the word was already odd, i.e. poisoned by a
// panicked predecessor, and must stay odd). Living on the caller's
// stack, it is lost on panic — so a panicked section's words are never
// re-evened.
type writeStamp struct {
	s1, s2   uint64
	st1, st2 bool
	global   bool // single-word mode: the global word was stamped
}

// beginKeyWrite opens a targeted write section covering stripes s1 and
// s2 (the key's H1/H2 stripe pair; equal is fine). In single-word mode
// it stamps the global word instead. Caller holds the shard's write
// lock.
func (sh *shardState) beginKeyWrite(s1, s2 uint64) writeStamp {
	if sh.stripes == nil {
		return writeStamp{global: sh.stampGlobal()}
	}
	sh.inKeyWrite = true
	// A predecessor that panicked after escalating leaks escalated=true;
	// clear it without touching the (poisoned, odd) global word.
	sh.escalated = false
	ws := writeStamp{s1: s1, s2: s2}
	ws.st1 = sh.stampStripe(s1)
	if s2 != s1 {
		ws.st2 = sh.stampStripe(s2)
	}
	return ws
}

// endKeyWrite closes a targeted write section: re-evens the stripes the
// section stamped, then the global word if the section escalated. Must
// be called directly after the mutation, never deferred — a panicking
// backend must leave its words odd.
func (sh *shardState) endKeyWrite(ws writeStamp) {
	if sh.stripes == nil {
		if ws.global {
			sh.seq.Add(1)
		}
		return
	}
	if ws.st1 {
		sh.stripes[ws.s1].seq.Add(1)
	}
	if ws.st2 {
		sh.stripes[ws.s2].seq.Add(1)
	}
	if sh.escalated {
		sh.seq.Add(1)
		sh.escalated = false
	}
	sh.inKeyWrite = false
}

// stampStripe makes stripe i odd, reporting whether it did; a stripe
// found already odd was poisoned by a panicked writer and is left
// alone (odd forever). Caller holds the shard's write lock.
func (sh *shardState) stampStripe(i uint64) bool {
	if sh.stripes[i].seq.Load()&1 != 0 {
		return false
	}
	sh.stripes[i].seq.Add(1)
	return true
}

// stampGlobal makes the global word odd, reporting whether it did (a
// poisoned word is left odd). Caller holds the shard's write lock.
func (sh *shardState) stampGlobal() bool {
	if sh.seq.Load()&1 != 0 {
		return false
	}
	sh.seq.Add(1)
	return true
}

// escalateLocked promotes the current targeted write section to the
// global word: the section is about to mutate state outside the key's
// candidate buckets (CAM traffic, a cuckoo kick chain leaving its
// start buckets, a geometry swap, a pressure eviction), which the
// key's stripes cannot cover. Idempotent per section; a no-op outside
// a targeted section (whole-arena sections hold the global word
// already) and on an already-poisoned global word. endKeyWrite re-evens
// the word. Wired into backends as the StripedBackend escalate hook.
func (sh *shardState) escalateLocked() {
	if !sh.inKeyWrite || sh.escalated {
		return
	}
	if sh.seq.Load()&1 != 0 {
		return // global word already poisoned odd: readers all fall back
	}
	sh.escalated = true
	sh.seq.Add(1)
}
