package table

import (
	"errors"
	"fmt"
)

// This file defines the flow-lifecycle layer of the table stack: the
// backend extensions that let a sweeper enumerate and reclaim occupied
// slots without byte-key round-trips (Walker, EvictableBackend), and the
// configuration/reporting types of the NetFlow-style expiry machinery
// that Sharded builds on top of them (idle/active timeouts, bounded
// incremental sweep, export callback). The paper's prototype delegates
// the same job to "the housekeeping function in the Flow State block,
// which periodically checks and removes timeout flow entries" (§IV-B);
// the software generalisation keys per-slot timestamps by the backends'
// location-derived IDs, so the sweep walks physical slots instead of
// rehashing keys.

// Walker is implemented by backends that can enumerate their occupied
// slots by local (backend-assigned) ID. Slot IDs are exactly the IDs the
// backend's Lookup/Insert return, which every structure in this
// repository derives from the physical location of the entry — so a walk
// is a linear scan of the slot space, never a hash computation.
type Walker interface {
	// WalkSlots visits slots in physical order starting at cursor,
	// examining at most budget slots (occupied or not), and calls fn for
	// each occupied slot found. fn returning false stops the walk early.
	// It returns the cursor to resume from and whether the walk reached
	// the end of the slot space and wrapped back to 0 — one full lap of
	// wrapped==true observations means every slot has been examined once.
	WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (next uint64, wrapped bool)
}

// EvictableBackend is the optional lifecycle extension of Backend: a
// structure whose occupied slots can be enumerated, read back and
// reclaimed purely by slot ID. It is what the Sharded expiry layer
// requires of its per-shard backends — the eviction sweep holds a shard's
// write lock for a bounded number of slot visits, and none of them hash
// or compare keys.
type EvictableBackend interface {
	Backend
	Walker
	// SlotIDBound returns an exclusive upper bound on the slot IDs this
	// backend can assign. The expiry layer sizes its per-slot timestamp
	// side-tables from it, so the bound must be dense (proportional to
	// capacity, not a hash-space bound). It may change only at the grow
	// boundaries of a GrowableBackend — rising at BeginGrow (the retiring
	// arena's slots are re-addressed above the new layout, per GrowLayout)
	// and falling back at FinishGrow — and is constant between them.
	SlotIDBound() uint64
	// AppendSlotKey appends the key bytes stored in slot onto dst,
	// reporting false (and returning dst unchanged) when the slot is
	// unoccupied. The sweep snapshots keys for the export callback with
	// it before reclaiming the slot.
	AppendSlotKey(dst []byte, slot uint64) ([]byte, bool)
	// DeleteSlot removes the entry in slot without any key search,
	// reporting whether one was present. Counting discipline matches
	// Delete: the entry leaves Len and the write is charged to Probes.
	DeleteSlot(slot uint64) bool
}

// RelocatingBackend is implemented by backends whose inserts may move
// resident entries to different slots (cuckoo kick chains). The expiry
// layer registers a hook so per-slot timestamps follow relocated entries;
// backends must invoke it under the same exclusive lock as the insert
// that caused the moves.
type RelocatingBackend interface {
	// SetRelocateHook registers fn, called at most once per insert with
	// every resident move the insert performed: moves[k] = {from, to}
	// slot pairs in chain order. The moves slice is only valid for the
	// duration of the call. A nil fn clears the hook.
	//
	// Chain order carries an invariant consumers need: when
	// moves[k][0] == moves[k-1][1], the entry relocated by move k is the
	// one displaced by move k-1 landing in its slot, so per-slot metadata
	// must travel hand-over-hand (carry the in-flight entry's metadata
	// instead of reading the already-overwritten source slot). When the
	// chain breaks (moves[k][0] != moves[k-1][1], e.g. because the hop in
	// between was the inserted key itself, which has no metadata yet),
	// the source slot is guaranteed untouched by earlier moves and can be
	// read directly. The expiry layer's timestamp replay implements
	// exactly this.
	SetRelocateHook(fn func(moves [][2]uint64))
}

// SlotSpace is the occupancy view WalkLinear scans; backends satisfy it
// with their used-bit arrays.
type SlotSpace interface {
	// SlotOccupied reports whether slot id currently holds an entry.
	SlotOccupied(id uint64) bool
}

// WalkLinear implements Walker.WalkSlots for any dense slot space: a
// linear scan of [0, bound) from cursor, examining at most
// min(budget, bound) slots (one lap covers everything; re-scanning within
// a call buys nothing), wrapping at the end, calling fn for occupied
// slots. fn may delete the slot it is visiting. Every backend delegates
// here so the cursor/wrap/early-exit arithmetic lives once.
func WalkLinear(t SlotSpace, bound, cursor uint64, budget int, fn func(slot uint64) bool) (next uint64, wrapped bool) {
	if bound == 0 {
		return 0, true
	}
	if uint64(budget) > bound {
		budget = int(bound)
	}
	if cursor >= bound {
		cursor = 0
	}
	for step := 0; step < budget; step++ {
		if t.SlotOccupied(cursor) && !fn(cursor) {
			cursor++
			if cursor >= bound {
				return 0, true
			}
			return cursor, wrapped
		}
		cursor++
		if cursor >= bound {
			cursor = 0
			wrapped = true
		}
	}
	return cursor, wrapped
}

// ExpireReason classifies why the sweep retired a flow.
type ExpireReason uint8

// Expire reasons.
const (
	// ExpireIdle marks a flow unseen for at least IdleTimeout time units.
	ExpireIdle ExpireReason = iota + 1
	// ExpireActive marks a flow resident for at least ActiveTimeout time
	// units regardless of traffic (NetFlow's forced progress export).
	ExpireActive
	// ExpireEvicted marks a flow reclaimed under capacity pressure by the
	// FullEvictIdlest policy: it was the least-recently-seen occupant of a
	// full bucket a new flow needed. Fired from the insert path, not the
	// sweep.
	ExpireEvicted
)

// String returns the reason name.
func (r ExpireReason) String() string {
	switch r {
	case ExpireIdle:
		return "idle"
	case ExpireActive:
		return "active"
	case ExpireEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("ExpireReason(%d)", int(r))
	}
}

// ExpiryConfig parameterises the flow-lifecycle layer of a Sharded table.
// Timeouts are measured on the caller-supplied logical clock passed to
// Advance — any monotonic int64 works (packet counts, sim.Clock cycles,
// wall nanoseconds); the layer never reads wall time itself.
type ExpiryConfig struct {
	// IdleTimeout retires a flow whose last-seen timestamp is at least
	// this many time units old. Zero disables idle expiry.
	IdleTimeout int64
	// ActiveTimeout retires a flow first seen at least this many time
	// units ago, even if it is still receiving traffic. Zero disables
	// active expiry.
	ActiveTimeout int64
	// SweepBudget bounds the slots examined per shard per Advance call,
	// keeping the shard's write lock hold — and therefore reader tail
	// latency — flat regardless of table size (default 256).
	SweepBudget int
}

// withDefaults fills zero fields.
func (c ExpiryConfig) withDefaults() ExpiryConfig {
	if c.SweepBudget <= 0 {
		c.SweepBudget = 256
	}
	return c
}

// Validate reports an error for unusable parameters.
func (c ExpiryConfig) Validate() error {
	switch {
	case c.IdleTimeout < 0 || c.ActiveTimeout < 0:
		return fmt.Errorf("table: expiry timeouts must be non-negative (idle %d, active %d)",
			c.IdleTimeout, c.ActiveTimeout)
	case c.IdleTimeout == 0 && c.ActiveTimeout == 0:
		return errors.New("table: expiry requires at least one of IdleTimeout/ActiveTimeout")
	}
	return nil
}

// ExpiredFunc receives one retired flow per call from Advance: the global
// (shard-encoded) ID the entry was stored under, its key bytes, its
// first-seen/last-seen timestamps, and the retirement reason. The key
// slice is only valid for the duration of the call — the sweep reuses the
// backing buffer; callers keeping it must copy. The callback runs after
// the owning shard's lock is released, so it may safely re-enter the
// table's lookup/insert/delete paths; it must NOT call Advance, which
// still holds the sweep mutex and would self-deadlock.
type ExpiredFunc func(id uint64, key []byte, firstSeen, lastSeen int64, reason ExpireReason)

// ExpiryStats aggregates lifecycle activity across all shards.
type ExpiryStats struct {
	// Sweeps counts Advance calls.
	Sweeps int64
	// SlotsExamined counts slots visited by the sweep (occupied or not).
	SlotsExamined int64
	// Evicted counts retired flows; IdleEvicted, ActiveEvicted and
	// PressureEvicted split it by reason (PressureEvicted counts
	// FullEvictIdlest reclamations from the insert path, mirrored in
	// OverloadStats).
	Evicted         int64
	IdleEvicted     int64
	ActiveEvicted   int64
	PressureEvicted int64
}
