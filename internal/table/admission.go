package table

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/admit"
	"repro/internal/bloom"
	"repro/internal/hashfn"
)

// This file is the admission-gating layer of the Sharded table: a
// per-shard counting sketch (internal/admit) consulted in front of every
// insert of a non-resident key. A flow below the admission threshold is
// counted in the sketch and deferred with ErrAdmissionDeferred instead
// of claiming an exact slot; its threshold-th insert attempt finds the
// sketch estimate at the bar and falls through to the backend insert —
// the deferred insert replays itself, no separate promotion queue. The
// sketch segment lives beside its shard and is only read or written
// under that shard's write lock, so lock-free readers never observe it
// and no new synchronisation is introduced — which is also why the gate
// runs before the insert's seqlock write section opens: a gated insert
// mutates only sketch state and leaves every sequence word untouched. Decay (halving every counter) rides the
// Advance clock at a configurable epoch cadence, aging one-packet mice
// out of the sketch the same way the expiry sweep ages them out of the
// table.

// ErrAdmissionDeferred reports an insert deferred by the admission gate:
// the flow's sketch estimate is still below the threshold, so it has not
// yet earned a table slot. The flow is not resident; its next insert
// attempt bumps the sketch again and is admitted once the estimate
// reaches the threshold. Deferred inserts are counted in AdmissionStats
// (Gated), never in OverloadStats — the table was not full.
var ErrAdmissionDeferred = errors.New("table: insert deferred by admission gate (flow below threshold)")

// AdmissionConfig parameterises the admission gate.
type AdmissionConfig struct {
	// Threshold is the packet count at which a flow earns a slot: its
	// Threshold-th insert attempt is admitted. Must be in [1, 255]
	// (estimates saturate at the sketch's 8-bit counter ceiling);
	// Threshold 1 admits every flow on first sight but still maintains
	// the sketch counters.
	Threshold int
	// Width is the total sketch counters per row across all shards,
	// divided per shard like Capacity and rounded up to a power of two.
	// 0 defaults to the table's nominal per-shard capacity — one counter
	// byte per slot per row.
	Width int
	// Depth is the sketch row count (default admit.DefaultDepth).
	Depth int
	// DecayEpochs halves every sketch counter after this many
	// clock-moving Advance epochs, so mice age out of the sketch. 0
	// never decays; a non-zero value requires EnableExpiry (the Advance
	// clock drives the cadence).
	DecayEpochs int
	// Seed keys the sketch index derivation (see admit.Config.Seed);
	// 0 keeps the unkeyed reference derivation.
	Seed uint64
}

// shardAdmitState is one shard's slice of the admission layer: its
// sketch segment (guarded by the shard's write lock) and the gate
// counters.
type shardAdmitState struct {
	sk       *admit.Sketch
	gated    atomic.Int64
	admitted atomic.Int64
}

// admitState is the admission layer of a Sharded table; nil until
// SetAdmission, so the ungated insert path pays one predicted branch.
type admitState struct {
	cfg    AdmissionConfig
	shards []shardAdmitState
	// lastDecay is the epoch of the last sketch decay, guarded by the
	// expiry layer's sweepMu (decay is scheduled inside Advance).
	lastDecay uint32
}

// AdmissionStats aggregates the admission gate's counters across shards.
type AdmissionStats struct {
	// Gated counts inserts deferred with ErrAdmissionDeferred.
	Gated int64
	// Admitted counts non-resident inserts that passed the gate (each
	// then either claimed a slot or surfaced ErrTableFull). Resident
	// re-inserts (touches) bypass the gate and count in neither figure.
	Admitted int64
	// SketchBytes is the total sketch counter footprint across shards.
	SketchBytes int64
}

// SetAdmission arms the admission gate. Like EnableExpiry it must be
// called on an empty table before any traffic; it requires backends with
// the hashed fast path (the sketch consumes the per-key KeyHashes the
// insert already computed) and, when DecayEpochs is non-zero, an
// already-enabled expiry layer whose Advance clock drives the decay.
func (s *Sharded) SetAdmission(cfg AdmissionConfig) error {
	if cfg.Threshold < 1 || cfg.Threshold > 255 {
		return fmt.Errorf("table: admission threshold must be in [1,255], got %d", cfg.Threshold)
	}
	if cfg.Width < 0 {
		return fmt.Errorf("table: admission sketch width must not be negative, got %d", cfg.Width)
	}
	if cfg.DecayEpochs < 0 {
		return fmt.Errorf("table: admission decay epochs must not be negative, got %d", cfg.DecayEpochs)
	}
	if s.admit != nil {
		return fmt.Errorf("table: admission already enabled on %s", s.Name())
	}
	if !s.hashed {
		return fmt.Errorf("table: admission requires hashed backends (the sketch is indexed by KeyHashes), %s has none", s.Name())
	}
	if cfg.DecayEpochs > 0 && s.expiry == nil {
		return fmt.Errorf("table: admission DecayEpochs requires EnableExpiry (the Advance clock drives decay)")
	}
	if n := s.Len(); n != 0 {
		return fmt.Errorf("table: admission must be enabled on an empty table, %s holds %d entries", s.Name(), n)
	}
	ad := &admitState{cfg: cfg, shards: make([]shardAdmitState, len(s.shards))}
	for i := range s.shards {
		width := s.shards[i].capTarget
		if cfg.Width > 0 {
			width = (cfg.Width + len(s.shards) - 1) / len(s.shards)
		}
		sk, err := admit.New(admit.Config{Width: width, Depth: cfg.Depth, Seed: cfg.Seed})
		if err != nil {
			return fmt.Errorf("table: admission sketch: %w", err)
		}
		ad.shards[i].sk = sk
	}
	s.admit = ad
	return nil
}

// AdmissionEnabled reports whether the admission gate is active.
func (s *Sharded) AdmissionEnabled() bool { return s.admit != nil }

// AdmissionStats returns a snapshot of the admission gate's counters;
// the zero value when admission is disabled.
func (s *Sharded) AdmissionStats() AdmissionStats {
	ad := s.admit
	if ad == nil {
		return AdmissionStats{}
	}
	var st AdmissionStats
	for i := range ad.shards {
		st.Gated += ad.shards[i].gated.Load()
		st.Admitted += ad.shards[i].admitted.Load()
		st.SketchBytes += ad.shards[i].sk.Bytes()
	}
	return st
}

// admitGateLocked applies the admission gate to one insert. Caller holds
// shard's write lock; no seqlock section is needed (lock-free readers
// never probe sketch state, and nothing here mutates the arenas —
// LookupHashed is a read). Resident keys
// pass untouched (a duplicate insert is a touch, and must stay one);
// non-resident keys bump the sketch and are admitted — counted, then
// allowed through to the backend insert — once the estimate reaches the
// threshold, deferred with ErrAdmissionDeferred below it.
func (s *Sharded) admitGateLocked(sh *shardState, shard int, key []byte, kh hashfn.KeyHashes) error {
	st := &s.admit.shards[shard]
	if _, ok := sh.hbe.LookupHashed(key, kh); ok {
		return nil
	}
	if est := st.sk.Touch(kh); est < uint32(s.admit.cfg.Threshold) {
		st.gated.Add(1)
		return ErrAdmissionDeferred
	}
	st.admitted.Add(1)
	return nil
}

// decayDueLocked reports whether the sketches should decay at epoch e,
// advancing the decay clock when so. Caller holds the expiry layer's
// sweepMu (Advance).
func (ad *admitState) decayDueLocked(e uint32) bool {
	if ad.cfg.DecayEpochs <= 0 {
		return false
	}
	if e-ad.lastDecay < uint32(ad.cfg.DecayEpochs) { // wrap-safe distance
		return false
	}
	ad.lastDecay = e
	return true
}

// AdmissionFPR measures the admission sketch's false-positive rate at
// the configured threshold: the fraction of `probes` uniformly random
// never-inserted keys of keyLen bytes whose sketch estimate already
// meets the threshold — flows that would be admitted on their first
// packet purely by counter collisions. Probing reuses the bloom
// package's FPR harness (disjoint high-bit key space, deterministic
// SplitMix64 stream from seed); each probe reads the owning shard's
// sketch under its read lock. Returns 0 when admission is disabled.
func (s *Sharded) AdmissionFPR(keyLen, probes int, seed uint64) float64 {
	ad := s.admit
	if ad == nil {
		return 0
	}
	return bloom.MeasureFPR(func(key []byte) bool {
		kh := s.pair.Compute(key)
		var i int
		if s.hashedRouting() {
			i = s.shardOfMix(kh)
		} else {
			i = s.shardOf(key)
		}
		sh := &s.shards[i]
		sh.mu.RLock()
		est := ad.shards[i].sk.Estimate(kh)
		sh.mu.RUnlock()
		return est >= uint32(ad.cfg.Threshold)
	}, keyLen, probes, seed)
}
