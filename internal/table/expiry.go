package table

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// epochRing is the number of recent Advance epochs whose exact clock
// values the lifecycle layer retains (a power of two; 32 KiB of ring per
// table). Timestamps are stored per slot as 4-byte epoch indices instead
// of 8-byte clock values — halving the side-table from 16 to 8 bytes per
// slot — and resolved back through the ring. An entry stamped more than
// epochRing clock-moving Advances ago has fallen out of the ring: its
// true age is unknowable, so the sweep treats it as older than any
// timeout and retires it on sight (reporting the oldest retained time).
// Exporting such a flow early is benign — it re-creates on its next
// packet — whereas under-estimating its age could leak it forever. This
// is the "coarse" in coarse epoch quantisation: timestamps are exact
// across the last epochRing Advances and saturate beyond.
const epochRing = 4096

// expiryTabs is one shard's pair of timestamp side-tables, published as a
// unit through an atomic pointer so an online grow can swap in re-sized,
// re-addressed tables while lock-free readers are touching the old ones.
type expiryTabs struct {
	// firstSeen[slot] is the insertion epoch of the entry occupying slot.
	// Written under the shard's write lock (insert, sweep, relocation)
	// and read under it (sweep), so plain stores suffice.
	firstSeen []uint32
	// lastSeen[slot] is the most recent touch epoch. Lookups refresh it
	// under the shared lock — concurrently with each other — so every
	// access is atomic.
	lastSeen []uint32
}

// shardExpiryState is one shard's slice of the lifecycle layer: the
// timestamp side-tables keyed by backend slot ID, the eviction-sweep
// cursor, and the backend downcast once so the sweep never type-asserts.
type shardExpiryState struct {
	ebe EvictableBackend
	// tabs holds the side-tables, swapped atomically by growTables/
	// shrinkTables (both under the shard's write lock). Writers that hold
	// the write lock may cache the Load across a section; the lock-free
	// touch path must Load per call and bounds-check (see touch).
	tabs atomic.Pointer[expiryTabs]
	// cursor is the slot the next sweep step resumes from.
	cursor uint64
	// sweepNow parameterises visit for the current sweep step; visit is
	// built once at EnableExpiry so Advance allocates no closures.
	sweepNow int64
	visit    func(slot uint64) bool
}

// sideTableBytes returns the timestamp side-tables' footprint, for the
// bytes-per-slot gauge.
func (st *shardExpiryState) sideTableBytes() int64 {
	t := st.tabs.Load()
	if t == nil {
		return 0
	}
	return int64(len(t.firstSeen))*4 + int64(len(t.lastSeen))*4
}

// growTables re-addresses the side-tables for a migration per layout:
// both tables are reallocated at the transient bound (OldBound), the
// stable ID prefix copies across unchanged, and the retiring arena's
// stamps move from their pre-grow IDs [Stable, oldBound) to the layout's
// relocated region [OldBase, OldBound). Called under the shard's write
// lock; lastSeen is read atomically because lock-free readers may still
// be touching the outgoing tables mid-copy (a touch racing the swap can
// lose one refresh — it delays that flow's idle expiry by at most one
// epoch, the same tolerance the elided-store touch already accepts).
func (st *shardExpiryState) growTables(layout GrowLayout) {
	old := st.tabs.Load()
	nf := make([]uint32, layout.OldBound)
	nl := make([]uint32, layout.OldBound)
	copy(nf[:layout.Stable], old.firstSeen[:layout.Stable])
	copy(nf[layout.OldBase:], old.firstSeen[layout.Stable:])
	for i := uint64(0); i < layout.Stable; i++ {
		nl[i] = atomic.LoadUint32(&old.lastSeen[i])
	}
	for i := layout.Stable; i < uint64(len(old.lastSeen)); i++ {
		nl[layout.OldBase+(i-layout.Stable)] = atomic.LoadUint32(&old.lastSeen[i])
	}
	st.tabs.Store(&expiryTabs{firstSeen: nf, lastSeen: nl})
}

// shrinkTables drops the retired arena's tail once a migration finishes,
// restoring the side-tables to the live bound. The backing arrays are
// kept (reslicing, not reallocating) so a straggling lock-free touch of a
// below-bound slot stays in bounds; the excess memory is reclaimed by the
// next grow's reallocation. Called under the shard's write lock.
func (st *shardExpiryState) shrinkTables(newBound uint64) {
	t := st.tabs.Load()
	st.tabs.Store(&expiryTabs{
		firstSeen: t.firstSeen[:newBound],
		lastSeen:  t.lastSeen[:newBound],
	})
}

// expiryState is the lifecycle layer of a Sharded table: per-shard
// timestamp side-tables, the sweep scheduler state, and the lifecycle
// counters. It exists only when EnableExpiry has been called; a nil
// pointer on Sharded keeps the non-expiring hot path to one predicted
// branch.
type expiryState struct {
	cfg    ExpiryConfig
	shards []shardExpiryState
	// now is the logical clock, published by Advance for Now() and the
	// sweep's timeout arithmetic.
	now atomic.Int64
	// epoch counts the Advance calls that moved the clock; it is what
	// lookups and inserts stamp into the side-tables (4 bytes instead of
	// the 8-byte clock value). Epoch 0 is the pre-Advance state at clock
	// 0. The counter wraps at 2^32; an entry untouched across a full wrap
	// would alias a recent epoch, which epochRing's clamping already
	// treats as approximate.
	epoch atomic.Uint32
	// epochTimes rings the clock value of the last epochRing epochs:
	// epochTimes[e % epochRing] is epoch e's clock. Written only by
	// Advance (under sweepMu) before the epoch counter is published.
	// Entries are accessed atomically: besides the sweep (under sweepMu),
	// the FullEvictIdlest insert path resolves victim timestamps through
	// timeOf while holding only a shard lock — it cannot take sweepMu,
	// which Advance holds while waiting for shard locks.
	epochTimes []int64
	// onExpired is the export callback; set before the first Advance.
	onExpired ExpiredFunc

	// sweepMu serialises Advance callers and guards the sweep scratch.
	sweepMu sync.Mutex
	// recs/keyBuf stage one shard's expired entries while its write lock
	// is held, so export callbacks run after release; both are reused
	// across sweeps (steady-state Advance allocates nothing).
	recs   []expiredRec
	keyBuf []byte

	sweeps          atomic.Int64
	slotsExamined   atomic.Int64
	idleEvicted     atomic.Int64
	activeEvicted   atomic.Int64
	pressureEvicted atomic.Int64
}

// timeOf resolves a stamped epoch back to its clock value: exact (and
// exact=true) for the last epochRing epochs; for anything older it
// returns the oldest retained epoch's time with exact=false, which the
// sweep treats as "older than any timeout" (see epochRing). Callers hold
// either sweepMu (the sweep) or a shard write lock (the FullEvictIdlest
// path), so ring entries are read atomically.
func (exp *expiryState) timeOf(e uint32) (int64, bool) {
	cur := exp.epoch.Load()
	if cur-e < epochRing { // uint32 arithmetic: distance modulo 2^32
		return atomic.LoadInt64(&exp.epochTimes[e&(epochRing-1)]), true
	}
	return atomic.LoadInt64(&exp.epochTimes[(cur+1)&(epochRing-1)]), false // oldest retained
}

// expiredRec stages one retired flow between DeleteSlot (under the shard
// lock) and the export callback (after release). Key bytes live in the
// shared keyBuf at [keyOff, keyOff+keyLen).
type expiredRec struct {
	slot   uint64
	first  int64
	last   int64
	keyOff int
	keyLen int
	reason ExpireReason
}

// EnableExpiry switches on the flow-lifecycle layer: per-slot
// first-seen/last-seen timestamps and the incremental eviction sweep
// driven by Advance. Every shard's backend must implement
// EvictableBackend (all registered structures do; out-of-tree byte-key
// backends don't, and are rejected). It must be called on an empty table
// before any traffic — entries inserted earlier would carry zero
// timestamps and be retired on the first sweep.
func (s *Sharded) EnableExpiry(cfg ExpiryConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if s.expiry != nil {
		return fmt.Errorf("table: expiry already enabled on %s", s.Name())
	}
	if n := s.Len(); n != 0 {
		return fmt.Errorf("table: expiry must be enabled on an empty table, %s holds %d entries", s.Name(), n)
	}
	exp := &expiryState{
		cfg:        cfg.withDefaults(),
		shards:     make([]shardExpiryState, len(s.shards)),
		epochTimes: make([]int64, epochRing),
	}
	for i := range s.shards {
		ebe, ok := s.shards[i].be.(EvictableBackend)
		if !ok {
			return fmt.Errorf("table: backend %s does not support expiry (no EvictableBackend)", s.shards[i].be.Name())
		}
		bound := ebe.SlotIDBound()
		exp.shards[i] = shardExpiryState{ebe: ebe}
		st := &exp.shards[i]
		st.tabs.Store(&expiryTabs{
			firstSeen: make([]uint32, bound),
			lastSeen:  make([]uint32, bound),
		})
		st.visit = exp.makeVisit(st)
		if rb, ok := s.shards[i].be.(RelocatingBackend); ok {
			rb.SetRelocateHook(st.applyRelocations)
		}
	}
	s.expiry = exp
	if s.pendingEvictIdlest {
		// Config.OnFull requested the graceful policy; now that the
		// timestamps exist it can be validated and switched on.
		if err := s.SetFullPolicy(FullEvictIdlest); err != nil {
			s.expiry = nil
			return err
		}
	}
	return nil
}

// ExpiryEnabled reports whether the lifecycle layer is active.
func (s *Sharded) ExpiryEnabled() bool { return s.expiry != nil }

// OnExpired registers the export callback invoked by Advance for every
// retired flow. It must be set before the first Advance call and not
// changed afterwards; a nil callback (the default) discards retired
// entries silently.
func (s *Sharded) OnExpired(fn ExpiredFunc) {
	if s.expiry == nil {
		panic("table: OnExpired before EnableExpiry")
	}
	s.expiry.onExpired = fn
}

// Now returns the lifecycle layer's current logical time (the value of
// the last Advance call), or 0 when expiry is disabled.
func (s *Sharded) Now() int64 {
	if s.expiry == nil {
		return 0
	}
	return s.expiry.now.Load()
}

// ExpiryStats returns a snapshot of the lifecycle counters; the zero
// value when expiry is disabled.
func (s *Sharded) ExpiryStats() ExpiryStats {
	exp := s.expiry
	if exp == nil {
		return ExpiryStats{}
	}
	idle, active := exp.idleEvicted.Load(), exp.activeEvicted.Load()
	pressure := exp.pressureEvicted.Load()
	return ExpiryStats{
		Sweeps:          exp.sweeps.Load(),
		SlotsExamined:   exp.slotsExamined.Load(),
		Evicted:         idle + active + pressure,
		IdleEvicted:     idle,
		ActiveEvicted:   active,
		PressureEvicted: pressure,
	}
}

// applyRelocations is the RelocatingBackend consumer: it replays one
// insert's kick chain onto the timestamp side-tables so metadata follows
// relocated entries. Moves arrive in chain order (see
// RelocatingBackend.SetRelocateHook); the replay is hand-over-hand — the
// in-flight entry's timestamps travel in a carry register, because its
// source slot's side-table entry is overwritten by the previous move the
// moment the chain is contiguous. At a chain break (the hop in between
// was the inserted key, which has no timestamps yet) the source slot is
// untouched and re-seeds the carry. Runs under the shard's write lock.
func (st *shardExpiryState) applyRelocations(moves [][2]uint64) {
	t := st.tabs.Load()
	var cf, cl uint32
	for k, m := range moves {
		if k == 0 || m[0] != moves[k-1][1] {
			cf = t.firstSeen[m[0]]
			cl = atomic.LoadUint32(&t.lastSeen[m[0]])
		}
		nf, nl := t.firstSeen[m[1]], atomic.LoadUint32(&t.lastSeen[m[1]])
		t.firstSeen[m[1]] = cf
		atomic.StoreUint32(&t.lastSeen[m[1]], cl)
		cf, cl = nf, nl
	}
}

// touch refreshes the last-seen epoch of (shard, slot). Called on every
// lookup hit — under the shard's shared lock on the locked path, with no
// lock at all on the seqlock path — so every access is atomic.
//
// The store is elided when the slot is already stamped with a
// current-or-newer epoch: epochs move at the Advance cadence (way slower
// than lookups), so on a hot flow every touch after the first per epoch
// is a pure load and the read-mostly fast path stays write-free. The
// wrap-safe signed comparison also makes the touch newer-only, which
// bounds the one race the lock-free path admits: a reader that validated
// a hit, then lost the slot to a delete+reinsert before touching, cannot
// regress the new occupant's fresher stamp — at worst it re-stores the
// epoch the occupant already carries.
//
// The bounds check covers the grow window: a lock-free reader that
// validated an old-arena hit just before FinishGrow retired that arena
// may arrive here after shrinkTables, with a slot ID beyond the live
// bound. Dropping the touch is the same benign outcome as losing the
// race to a delete. A stale *pre-grow* slot ID (reader validated before
// growTables re-addressed the retiring region) lands on an unrelated
// in-bounds slot and at worst refreshes it one epoch early — within the
// layer's stated one-epoch tolerance.
func (exp *expiryState) touch(shard int, slot uint64, epoch uint32) {
	t := exp.shards[shard].tabs.Load()
	if slot >= uint64(len(t.lastSeen)) {
		return
	}
	p := &t.lastSeen[slot]
	if old := atomic.LoadUint32(p); int32(epoch-old) > 0 {
		atomic.StoreUint32(p, epoch)
	}
}

// stamp records the timestamps of an insert under the shard's write lock:
// a fresh placement sets first-seen and last-seen, a duplicate insert (the
// flow already resident) refreshes last-seen only.
func (exp *expiryState) stamp(shard int, slot uint64, fresh bool) {
	t := exp.shards[shard].tabs.Load()
	epoch := exp.epoch.Load()
	if fresh {
		t.firstSeen[slot] = epoch
	}
	atomic.StoreUint32(&t.lastSeen[slot], epoch)
}

// Advance moves the lifecycle clock to now and runs one bounded eviction
// sweep step over every shard, returning the number of flows retired by
// this call. now is the caller's logical clock (packet count, sim.Clock
// cycles, wall nanoseconds — any monotonic non-decreasing int64); lookups
// between Advance calls stamp last-seen with the most recent now, so
// timestamp resolution equals the Advance cadence. (Internally a stamp is
// a 4-byte epoch index resolved back through a ring of recent Advance
// times; a flow untouched for more than epochRing clock-moving Advances
// is treated as exceeding any timeout and retired on sight — see
// epochRing.)
//
// Each shard's write lock is held for at most SweepBudget slot visits per
// call; the sweep cursor persists across calls, so successive Advances
// cover the whole slot space incrementally. Export callbacks run after
// the owning shard's lock is released. Advance is safe to call
// concurrently with all other operations; concurrent Advance calls
// serialise against each other.
func (s *Sharded) Advance(now int64) int {
	exp := s.expiry
	if exp == nil {
		panic("table: Advance before EnableExpiry")
	}
	exp.sweepMu.Lock()
	defer exp.sweepMu.Unlock()
	// The clock only moves forward: a stale caller (e.g. a worker racing
	// a faster one for the shared counter) must not rewind timestamps
	// other workers just wrote.
	if prev := exp.now.Load(); now > prev {
		// A clock move opens a new epoch: record its time in the ring
		// before publishing the counter, so a concurrent stamp of the new
		// epoch can never resolve through an unwritten ring entry.
		e := exp.epoch.Load() + 1
		atomic.StoreInt64(&exp.epochTimes[e&(epochRing-1)], now)
		if e == 1 {
			// First clock move: epoch 0 (the pre-Advance warm-up) has no
			// recorded clock of its own, and leaving its ring entry at 0
			// would age warm-up entries by the caller's absolute clock
			// value — a caller whose clock starts large (wall nanoseconds)
			// would see its whole warm-up population mass-expired on the
			// first sweep. Backfill epoch 0 with the first observed clock,
			// i.e. treat pre-first-Advance stamps as "inserted now".
			atomic.StoreInt64(&exp.epochTimes[0], now)
		}
		exp.now.Store(now)
		exp.epoch.Store(e)
	} else {
		now = prev
	}
	exp.sweeps.Add(1)
	// Admission-sketch decay rides the same clock: once every
	// DecayEpochs clock-moving epochs, this Advance's sweep also halves
	// every shard's sketch counters (inside the same locked section the
	// sweep already takes). Scheduled here under sweepMu, where the
	// epoch counter and the decay clock are stable.
	decay := false
	if ad := s.admit; ad != nil {
		decay = ad.decayDueLocked(exp.epoch.Load())
	}
	evicted := 0
	for i := range s.shards {
		evicted += s.sweepShard(i, now, decay)
	}
	return evicted
}

// makeVisit builds st's per-slot sweep visitor once, so Advance runs
// closure-free: the only per-sweep parameter (the clock) travels through
// st.sweepNow.
func (exp *expiryState) makeVisit(st *shardExpiryState) func(slot uint64) bool {
	return func(slot uint64) bool {
		now := st.sweepNow
		t := st.tabs.Load()
		first, firstExact := exp.timeOf(t.firstSeen[slot])
		last, lastExact := exp.timeOf(atomic.LoadUint32(&t.lastSeen[slot]))
		// A stamp that fell out of the epoch ring counts as exceeding any
		// timeout; the check order (active before idle) is unchanged.
		var reason ExpireReason
		switch {
		case exp.cfg.ActiveTimeout > 0 && (!firstExact || now-first >= exp.cfg.ActiveTimeout):
			reason = ExpireActive
		case exp.cfg.IdleTimeout > 0 && (!lastExact || now-last >= exp.cfg.IdleTimeout):
			reason = ExpireIdle
		default:
			return true
		}
		off := len(exp.keyBuf)
		kb, ok := st.ebe.AppendSlotKey(exp.keyBuf, slot)
		if !ok {
			return true // unreachable: WalkSlots only visits occupied slots
		}
		exp.keyBuf = kb
		if st.ebe.DeleteSlot(slot) {
			exp.recs = append(exp.recs, expiredRec{
				slot: slot, first: first, last: last,
				keyOff: off, keyLen: len(exp.keyBuf) - off, reason: reason,
			})
		}
		return true
	}
}

// sweepShard runs one budgeted sweep step over shard i: under the write
// lock it walks up to SweepBudget slots from the shard's cursor, stages
// expired entries (key snapshot first, then DeleteSlot), and after
// releasing the lock reports them to the export callback. decay
// additionally halves the shard's admission-sketch counters inside the
// same locked section (scheduled by Advance; always false without an
// armed admission layer).
func (s *Sharded) sweepShard(i int, now int64, decay bool) int {
	exp := s.expiry
	st := &exp.shards[i]
	exp.recs = exp.recs[:0]
	exp.keyBuf = exp.keyBuf[:0]
	sh := &s.shards[i]

	sh.mu.Lock()
	sh.beginWrite() // the sweep's DeleteSlot calls mutate the arenas
	st.sweepNow = now
	cursor, _ := st.ebe.WalkSlots(st.cursor, exp.cfg.SweepBudget, st.visit)
	st.cursor = cursor
	if decay {
		s.admit.shards[i].sk.Decay()
	}
	// Advance also pumps any in-flight migration, so a table that has
	// gone read-only still converges at the sweep cadence.
	s.pumpMigrationLocked(sh, i)
	sh.endWrite()
	sh.mu.Unlock()

	if bound := int64(st.ebe.SlotIDBound()); bound < int64(exp.cfg.SweepBudget) {
		exp.slotsExamined.Add(bound)
	} else {
		exp.slotsExamined.Add(int64(exp.cfg.SweepBudget))
	}
	for _, rec := range exp.recs {
		switch rec.reason {
		case ExpireIdle:
			exp.idleEvicted.Add(1)
		case ExpireActive:
			exp.activeEvicted.Add(1)
		}
		if exp.onExpired != nil {
			key := exp.keyBuf[rec.keyOff : rec.keyOff+rec.keyLen]
			exp.onExpired(s.globalID(i, rec.slot), key, rec.first, rec.last, rec.reason)
		}
	}
	return len(exp.recs)
}
