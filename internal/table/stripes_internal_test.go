package table

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hashfn"
)

// stripeKey builds the standard 13-byte test key for index i (the internal
// twin of the external suite's key13 helper).
func stripeKey(i uint64) []byte {
	k := make([]byte, 13)
	for b := 0; b < 8; b++ {
		k[b] = byte(i >> (8 * b))
	}
	return k
}

// stripeSetOf folds a key's stripe pair into a small set for overlap
// queries.
func stripeSetOf(s *Sharded, key []byte) map[uint64]bool {
	s1, s2 := s.stripePair(s.pair.Compute(key))
	return map[uint64]bool{s1: true, s2: true}
}

func disjointStripes(a, b map[uint64]bool) bool {
	for st := range a {
		if b[st] {
			return false
		}
	}
	return true
}

// TestDefaultStripes pins the automatic sizing curve: one stripe per ~64
// slots, rounded down to a power of two, clamped to [1, maxStripes].
func TestDefaultStripes(t *testing.T) {
	cases := []struct {
		slotCap uint64
		want    int
	}{
		{0, 1}, {1, 1}, {127, 1}, {128, 2}, {256, 4},
		{16384, 256}, {1 << 16, maxStripes}, {1 << 30, maxStripes},
	}
	for _, c := range cases {
		if got := defaultStripes(c.slotCap); got != c.want {
			t.Errorf("defaultStripes(%d) = %d, want %d", c.slotCap, got, c.want)
		}
	}
}

// TestStripeResolution pins the construction-time clamping of the stripe
// knob: explicit counts are honoured up to the backend bound and
// maxStripes, 1 selects the single-word protocol, non-powers of two are
// rejected by validation, and backends without the hashed path never
// stripe.
func TestStripeResolution(t *testing.T) {
	mk := func(stripes, capacity int) (*Sharded, error) {
		return NewSharded("hashcam", 2, Config{
			Capacity: capacity, SeqlockStripes: stripes, Hash: hashfn.DefaultPair(),
		}, nil)
	}
	s, err := mk(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 1 || s.striped || s.shards[0].stripes != nil {
		t.Fatalf("stripes=1 did not select the single-word protocol: n=%d striped=%v", s.Stripes(), s.striped)
	}
	s, err = mk(8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 8 || !s.striped || len(s.shards[0].stripes) != 8 {
		t.Fatalf("stripes=8 resolved to %d (striped=%v)", s.Stripes(), s.striped)
	}
	if s.stripeMask != 7 {
		t.Fatalf("stripe mask %d for 8 stripes", s.stripeMask)
	}
	// A request past every bound clamps to maxStripes on a big table.
	s, err = mk(1<<20, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != maxStripes {
		t.Fatalf("oversized request resolved to %d, want %d", s.Stripes(), maxStripes)
	}
	if _, err := mk(3, 4096); err == nil {
		t.Fatal("non-power-of-two stripe count accepted")
	}
	if _, err := mk(-2, 4096); err == nil {
		t.Fatal("negative stripe count accepted")
	}
	// The byte-key fallback wrapper has no hashed path, so striping (which
	// folds KeyHashes words) must stay off regardless of the request.
	sp, err := NewSharded("testplain", 2, Config{
		Capacity: 4096, SeqlockStripes: 64, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stripes() != 1 || sp.striped {
		t.Fatalf("unhashed backend striped: n=%d", sp.Stripes())
	}
}

// TestStripedConflictIsolation is the deterministic heart of the striping
// claim: with one stripe held odd (a writer parked mid-mutation on those
// buckets), readers of keys on other stripes must keep completing
// lock-free, while readers of the written stripe burn stripe retries and
// fall back — and the conflict must be attributed to the stripe level,
// never the global word.
func TestStripedConflictIsolation(t *testing.T) {
	if !seqlockCapable {
		t.Skip("optimistic path compiled out under -race")
	}
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 4096, SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.striped || !s.OptimisticReads() {
		t.Fatalf("striped optimistic table expected: striped=%v opt=%v", s.striped, s.OptimisticReads())
	}
	ids := map[uint64]uint64{}
	for i := uint64(0); i < 64; i++ {
		id, err := s.Insert(stripeKey(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Pick a victim key A and a bystander key B with disjoint stripe pairs.
	keyA := stripeKey(0)
	setA := stripeSetOf(s, keyA)
	var keyB []byte
	var idB uint64
	for i := uint64(1); i < 64; i++ {
		if disjointStripes(setA, stripeSetOf(s, stripeKey(i))) {
			keyB, idB = stripeKey(i), ids[i]
			break
		}
	}
	if keyB == nil {
		t.Fatal("no key with stripes disjoint from key A among 64 keys over 8 stripes")
	}

	sh := &s.shards[0]
	sh.mu.Lock()
	stA1, stA2 := s.stripePair(s.pair.Compute(keyA))
	sh.stripes[stA1].seq.Add(1)
	if stA2 != stA1 {
		sh.stripes[stA2].seq.Add(1)
	}

	type result struct {
		id uint64
		ok bool
	}
	blocked := make(chan result, 1)
	go func() {
		id, ok := s.Lookup(keyA)
		blocked <- result{id, ok}
	}()
	deadline := time.After(2 * time.Second)
	for sh.fallbacks.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("reader of the held stripe did not fall back (sretries %d)", sh.sretries.Load())
		case r := <-blocked:
			t.Fatalf("reader of the held stripe completed (%d,%v) while the stripe was odd", r.id, r.ok)
		case <-time.After(time.Millisecond):
		}
	}
	if got := sh.sretries.Load(); got < seqlockAttempts {
		t.Fatalf("stripe retries %d, want at least the full budget %d", got, seqlockAttempts)
	}
	if got := sh.gretries.Load(); got != 0 {
		t.Fatalf("conflict misattributed to the global word: %d global retries", got)
	}
	if sh.seq.Load()&1 != 0 {
		t.Fatal("global word went odd for a stripe-local conflict")
	}
	// The bystander completes lock-free while the shard's write lock and
	// the victim stripe are both held: no new fallbacks, correct result.
	f0 := sh.fallbacks.Load()
	for n := 0; n < 8; n++ {
		if id, ok := s.Lookup(keyB); !ok || id != idB {
			t.Fatalf("bystander lookup (%d,%v), want (%d,true)", id, ok, idB)
		}
	}
	if got := sh.fallbacks.Load(); got != f0 {
		t.Fatalf("bystander reads fell back (%d -> %d) despite disjoint stripes", f0, got)
	}

	// Release: re-even the stripes, drop the lock, and the parked reader
	// must complete correctly on the RLock path.
	sh.stripes[stA1].seq.Add(1)
	if stA2 != stA1 {
		sh.stripes[stA2].seq.Add(1)
	}
	sh.mu.Unlock()
	if r := <-blocked; !r.ok || r.id != ids[0] {
		t.Fatalf("victim fallback read (%d,%v), want (%d,true)", r.id, r.ok, ids[0])
	}
	st := s.ReadStats()
	if st.StripeRetries < seqlockAttempts || st.GlobalRetries != 0 || st.Fallbacks != 1 {
		t.Fatalf("ReadStats %+v does not attribute the conflict to the stripe level", st)
	}
}

// escalations reports how many whole-arena write sections shard sh has
// completed, assuming a quiescent table: each one advances the global
// word by exactly 2.
func escalations(sh *shardState) int64 { return int64(sh.seq.Load() / 2) }

// TestCuckooKickChainEscalation pins the escalation contract on the
// backend whose writes wander: sparse cuckoo inserts stay within the
// key's two candidate buckets (no global-word traffic), while the kick
// chains forced by a filling table must escalate to the global word
// before relocating anything — observable as the word advancing in even
// steps. The schedule is deterministic (fixed keys, unkeyed CRC pair).
func TestCuckooKickChainEscalation(t *testing.T) {
	s, err := NewSharded("cuckoo", 1, Config{
		Capacity: 512, SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.striped {
		t.Fatal("cuckoo backend did not stripe")
	}
	sh := &s.shards[0]
	for i := uint64(0); i < 32; i++ {
		if _, err := s.Insert(stripeKey(i)); err != nil {
			t.Fatalf("sparse insert %d: %v", i, err)
		}
		if g := sh.seq.Load(); g != 0 {
			t.Fatalf("sparse insert %d escalated to the global word (seq %d)", i, g)
		}
	}
	// Fill until the first rejection: cuckoo only reports full after a
	// maximal kick chain, so by then relocation escalations must have
	// happened.
	full := false
	for i := uint64(32); i < 2048 && !full; i++ {
		_, err := s.Insert(stripeKey(i))
		switch {
		case err == nil:
		case errors.Is(err, ErrTableFull):
			full = true
		default:
			t.Fatalf("fill insert %d: %v", i, err)
		}
	}
	if !full {
		t.Fatal("cuckoo table never filled at 4x capacity inserts")
	}
	if escalations(sh) == 0 {
		t.Fatal("kick chains relocated entries without ever escalating to the global word")
	}
	if sh.seq.Load()&1 != 0 {
		t.Fatal("global word left odd after escalated inserts returned")
	}
}

// TestHashcamCAMEscalation pins the other escalation site: hashcam
// inserts that overflow a bucket into the shared CAM, and deletes that
// remove a CAM-resident key, both mutate state outside the key's stripe
// pair and must escalate. Bucket-resident traffic must not.
func TestHashcamCAMEscalation(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 256, SlotsPerBucket: 2, CAMCapacity: 32,
		SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &s.shards[0]
	inserted := make([]uint64, 0, 256)
	for i := uint64(0); len(inserted) < 200; i++ {
		if _, err := s.Insert(stripeKey(i)); err != nil {
			if errors.Is(err, ErrTableFull) {
				break
			}
			t.Fatal(err)
		}
		inserted = append(inserted, i)
	}
	afterFill := escalations(sh)
	if afterFill == 0 {
		t.Fatal("no insert overflowed into the CAM at ~78% load on 2-slot buckets")
	}
	if sh.seq.Load()&1 != 0 {
		t.Fatal("global word left odd after CAM inserts returned")
	}
	for _, i := range inserted {
		if !s.Delete(stripeKey(i)) {
			t.Fatalf("resident key %d not deleted", i)
		}
	}
	if escalations(sh) == afterFill {
		t.Fatal("deleting the CAM-resident keys never escalated to the global word")
	}
	if sh.seq.Load()&1 != 0 || s.Len() != 0 {
		t.Fatalf("after delete-all: seq %d, len %d", sh.seq.Load(), s.Len())
	}
}

// TestEscalateOutsideKeyWriteIsNoop pins the hook's guard: invoked with
// no targeted section open (a whole-arena caller already owns the global
// word), it must not touch anything.
func TestEscalateOutsideKeyWriteIsNoop(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 1024, SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	sh.escalateLocked()
	if g := sh.seq.Load(); g != 0 {
		t.Fatalf("escalate outside a key write moved the global word to %d", g)
	}
	sh.mu.Unlock()
}

// insertMustPanic drives one insert that the backend must reject by
// panicking (a key violating the configured width reaches the slot
// store mid-mutation), returning after recovering it.
func insertMustPanic(t *testing.T, s *Sharded, key []byte) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width key did not panic")
		}
	}()
	s.Insert(key)
}

// TestPanicPoisonStripe is the striped half of the panic fail-safe: a
// backend panic inside a targeted write section must leave the key's
// stripes odd forever — readers of those stripes permanently fall back
// to the (released) RLock path and stay correct — while the global word
// and every other stripe keep serving lock-free reads, and no later
// write section may un-poison the stripe.
func TestPanicPoisonStripe(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 4096, SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &s.shards[0]
	ids := map[uint64]uint64{}
	for i := uint64(0); i < 64; i++ {
		id, err := s.Insert(stripeKey(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	bad := make([]byte, 5) // violates the 13-byte slot width mid-mutation
	insertMustPanic(t, s, bad)
	p1, p2 := s.stripePair(s.pair.Compute(bad))
	poisoned := map[uint64]bool{p1: true, p2: true}
	if sh.stripes[p1].seq.Load()&1 == 0 || sh.stripes[p2].seq.Load()&1 == 0 {
		t.Fatal("panicked write section left its stripes even")
	}
	if sh.seq.Load()&1 != 0 {
		t.Fatal("stripe-local panic poisoned the global word")
	}

	// Readers of an unrelated stripe keep the lock-free path; readers of a
	// poisoned stripe must fall back — and still get correct answers (the
	// panic released the mutex via the deferred unlock).
	var hot, cold uint64
	hotFound, coldFound := false, false
	for i := uint64(0); i < 64 && (!hotFound || !coldFound); i++ {
		set := stripeSetOf(s, stripeKey(i))
		overlaps := !disjointStripes(set, poisoned)
		if overlaps && !hotFound {
			hot, hotFound = i, true
		}
		if !overlaps && !coldFound {
			cold, coldFound = i, true
		}
	}
	if !hotFound || !coldFound {
		t.Fatal("could not find keys on and off the poisoned stripes")
	}
	if s.OptimisticReads() {
		f0 := sh.fallbacks.Load()
		if id, ok := s.Lookup(stripeKey(cold)); !ok || id != ids[cold] {
			t.Fatalf("cold-stripe lookup (%d,%v), want (%d,true)", id, ok, ids[cold])
		}
		if got := sh.fallbacks.Load(); got != f0 {
			t.Fatal("cold-stripe reader fell back after an unrelated stripe was poisoned")
		}
		if id, ok := s.Lookup(stripeKey(hot)); !ok || id != ids[hot] {
			t.Fatalf("poisoned-stripe lookup (%d,%v), want (%d,true)", id, ok, ids[hot])
		}
		if got := sh.fallbacks.Load(); got != f0+1 {
			t.Fatalf("poisoned-stripe reader did not fall back (fallbacks %d -> %d)", f0, got)
		}
	}

	// A later successful write covering the poisoned stripe must refuse to
	// stamp it (and so never re-even it): the regression PR 6's deferred
	// endWrite had, transplanted to stripes.
	var onPoisoned uint64
	found := false
	for i := uint64(1 << 20); i < 1<<20+4096; i++ {
		s1, s2 := s.stripePair(s.pair.Compute(stripeKey(i)))
		if poisoned[s1] || poisoned[s2] {
			onPoisoned, found = i, true
			break
		}
	}
	if !found {
		t.Fatal("no fresh key landing on the poisoned stripes")
	}
	if _, err := s.Insert(stripeKey(onPoisoned)); err != nil {
		t.Fatalf("insert on a poisoned stripe must still work: %v", err)
	}
	if sh.stripes[p1].seq.Load()&1 == 0 || sh.stripes[p2].seq.Load()&1 == 0 {
		t.Fatal("a later write section un-poisoned the stripe")
	}
	if _, ok := s.Lookup(stripeKey(onPoisoned)); !ok {
		t.Fatal("key written over the poisoned stripe not readable")
	}
}

// TestPanicPoisonGlobal is the single-word half (and the direct
// regression test for the PR 6 bug this PR fixes): with stripes=1, a
// backend panic inside the write section leaves the global word odd, a
// recovered caller's later successful writes must NOT re-even it, and
// every read is served — correctly — by the fallback path.
func TestPanicPoisonGlobal(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 1024, SeqlockStripes: 1, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &s.shards[0]
	idA, err := s.Insert(stripeKey(1))
	if err != nil {
		t.Fatal(err)
	}
	insertMustPanic(t, s, make([]byte, 5))
	if sh.seq.Load()&1 == 0 {
		t.Fatal("panicked write section left the global word even")
	}
	// The PR 6 regression: a later clean write section silently re-evened
	// the word via its deferred endWrite, letting readers trust bytes a
	// panicked writer may have half-written.
	if _, err := s.Insert(stripeKey(2)); err != nil {
		t.Fatalf("insert after a recovered panic: %v", err)
	}
	if sh.seq.Load()&1 == 0 {
		t.Fatal("a later write section un-poisoned the global word")
	}
	if !s.Delete(stripeKey(2)) {
		t.Fatal("delete after a recovered panic lost the key")
	}
	if sh.seq.Load()&1 == 0 {
		t.Fatal("a later delete section un-poisoned the global word")
	}
	if s.OptimisticReads() {
		f0 := sh.fallbacks.Load()
		if id, ok := s.Lookup(stripeKey(1)); !ok || id != idA {
			t.Fatalf("post-poison lookup (%d,%v), want (%d,true)", id, ok, idA)
		}
		if got := sh.fallbacks.Load(); got != f0+1 {
			t.Fatalf("post-poison read did not fall back (fallbacks %d -> %d)", f0, got)
		}
		if got := sh.gretries.Load(); got < seqlockAttempts {
			t.Fatalf("global retries %d, want the full budget %d", got, seqlockAttempts)
		}
	}
	// Whole-arena sections must also refuse the poisoned word and leave it
	// odd on exit.
	sh.mu.Lock()
	sh.beginWrite()
	if sh.stamped {
		t.Fatal("beginWrite stamped a poisoned word")
	}
	sh.endWrite()
	if sh.seq.Load()&1 == 0 {
		t.Fatal("a whole-arena section un-poisoned the global word")
	}
	sh.mu.Unlock()
}

// TestPanicPoisonEscalated simulates the worst panic point: a targeted
// section that had already escalated to the global word dies before
// endKeyWrite. Both the key's stripes and the global word must stay odd
// through later whole-arena and targeted sections.
func TestPanicPoisonEscalated(t *testing.T) {
	s, err := NewSharded("hashcam", 1, Config{
		Capacity: 4096, SeqlockStripes: 8, Hash: hashfn.DefaultPair(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	_ = sh.beginKeyWrite(2, 5) // the writeStamp dies with the "panicked" frame
	sh.escalateLocked()
	sh.mu.Unlock()
	if sh.seq.Load()&1 == 0 || sh.stripes[2].seq.Load()&1 == 0 || sh.stripes[5].seq.Load()&1 == 0 {
		t.Fatal("escalated panic did not leave the global word and both stripes odd")
	}
	// A whole-arena section refuses the poisoned global word.
	sh.mu.Lock()
	sh.beginWrite()
	sh.endWrite()
	sh.mu.Unlock()
	if sh.seq.Load()&1 == 0 {
		t.Fatal("whole-arena section un-poisoned the escalated global word")
	}
	// A clean targeted write on other stripes completes, re-evens only its
	// own stamps, and leaves all three poisoned words alone.
	if _, err := s.Insert(stripeKey(9)); err != nil {
		t.Fatal(err)
	}
	if sh.seq.Load()&1 == 0 || sh.stripes[2].seq.Load()&1 == 0 || sh.stripes[5].seq.Load()&1 == 0 {
		t.Fatal("a later targeted section un-poisoned the escalated words")
	}
	// With the global word poisoned every reader falls back, but results
	// stay correct.
	if _, ok := s.Lookup(stripeKey(9)); !ok {
		t.Fatal("lookup under a poisoned global word lost the key")
	}
	if s.OptimisticReads() {
		if got := s.ReadStats().Fallbacks; got == 0 {
			t.Fatal("poisoned global word did not route readers to the fallback")
		}
	}
}
