package table_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/admit"
	"repro/internal/hashfn"
	"repro/internal/table"
)

// admitTable builds a sharded table over backend with the admission gate
// armed (and, when decayEpochs > 0, the expiry layer the decay clock
// rides on).
func admitTable(t *testing.T, backend string, shards int, cfg table.Config, ad table.AdmissionConfig) *table.Sharded {
	t.Helper()
	s, err := table.NewSharded(backend, shards, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ad.DecayEpochs > 0 {
		if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 40}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetAdmission(ad); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSetAdmissionValidation pins every rejection path of SetAdmission:
// out-of-range thresholds and sizes, decay without the Advance clock,
// double arming, arming over resident entries, and backends without the
// hashed fast path the sketch indexing requires.
func TestSetAdmissionValidation(t *testing.T) {
	cfg := table.Config{Capacity: 256}
	mk := func() *table.Sharded {
		s, err := table.NewSharded("hashcam", 2, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	bad := []struct {
		name string
		ad   table.AdmissionConfig
	}{
		{"zero threshold", table.AdmissionConfig{}},
		{"threshold above counter ceiling", table.AdmissionConfig{Threshold: 256}},
		{"negative width", table.AdmissionConfig{Threshold: 2, Width: -1}},
		{"negative decay", table.AdmissionConfig{Threshold: 2, DecayEpochs: -1}},
		{"decay without expiry", table.AdmissionConfig{Threshold: 2, DecayEpochs: 4}},
		{"depth above sketch ceiling", table.AdmissionConfig{Threshold: 2, Depth: admit.MaxDepth + 1}},
	}
	for _, tc := range bad {
		if err := mk().SetAdmission(tc.ad); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	s := mk()
	if err := s.SetAdmission(table.AdmissionConfig{Threshold: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAdmission(table.AdmissionConfig{Threshold: 2}); err == nil {
		t.Fatal("double SetAdmission accepted")
	}

	s = mk()
	if _, err := s.Insert(key13(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAdmission(table.AdmissionConfig{Threshold: 2}); err == nil {
		t.Fatal("SetAdmission over a resident entry accepted")
	}

	// testplain has no hashed fast path, so the sketch has no KeyHashes
	// to index by.
	plain, err := table.NewSharded("testplain", 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.SetAdmission(table.AdmissionConfig{Threshold: 2}); err == nil {
		t.Fatal("SetAdmission accepted a backend without the hashed fast path")
	}
}

// TestAdmissionGateThreshold pins the gate semantics at threshold k: the
// first k-1 insert attempts of every flow are deferred (not resident, no
// slot, ErrAdmissionDeferred), the k-th is admitted, and a resident
// flow's duplicate insert is a touch that bypasses the gate entirely —
// on both the scalar and the batched writer paths.
func TestAdmissionGateThreshold(t *testing.T) {
	const k = 3
	// Width is deliberately generous: this test pins gate semantics, so
	// counter collisions (measured separately by the FPR gauge) must be
	// out of the picture.
	s := admitTable(t, "hashcam", 4, table.Config{Capacity: 1 << 12},
		table.AdmissionConfig{Threshold: k, Width: 1 << 18})
	const flows = 200

	// Scalar path.
	for round := 1; round < k; round++ {
		for i := uint64(0); i < flows; i++ {
			if _, err := s.Insert(key13(i)); !errors.Is(err, table.ErrAdmissionDeferred) {
				t.Fatalf("flow %d attempt %d: err %v, want ErrAdmissionDeferred", i, round, err)
			}
			if _, ok := s.Lookup(key13(i)); ok {
				t.Fatalf("flow %d resident after a deferred insert", i)
			}
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len %d after only deferred inserts, want 0", s.Len())
	}
	ids := make(map[uint64]uint64, flows)
	for i := uint64(0); i < flows; i++ {
		id, err := s.Insert(key13(i))
		if err != nil {
			t.Fatalf("flow %d attempt %d: err %v, want admitted", i, k, err)
		}
		ids[i] = id
	}
	if s.Len() != flows {
		t.Fatalf("Len %d after admitting %d flows", s.Len(), flows)
	}
	// Duplicate insert of a resident flow is a touch: same ID, nil error,
	// and no admission accounting.
	st := s.AdmissionStats()
	for i := uint64(0); i < flows; i++ {
		id, err := s.Insert(key13(i))
		if err != nil || id != ids[i] {
			t.Fatalf("resident flow %d reinsert: (%d, %v), want (%d, nil)", i, id, err, ids[i])
		}
	}
	if got := s.AdmissionStats(); got != st {
		t.Fatalf("resident touches moved admission stats: %+v -> %+v", st, got)
	}
	if st.Gated != flows*(k-1) || st.Admitted != flows {
		t.Fatalf("stats %+v, want Gated %d Admitted %d", st, flows*(k-1), flows)
	}
	if st.SketchBytes <= 0 {
		t.Fatalf("SketchBytes %d, want positive", st.SketchBytes)
	}

	// Batched path: fresh flows must see the identical per-key gating
	// through InsertBatch, mixed into the same batch as resident touches.
	batch := append(keys13(1<<20, 1<<20+64), keys13(0, 64)...)
	for round := 1; round < k; round++ {
		_, errs := s.InsertBatch(batch)
		for i := 0; i < 64; i++ {
			if !errors.Is(errs[i], table.ErrAdmissionDeferred) {
				t.Fatalf("batch round %d fresh key %d: err %v, want deferred", round, i, errs[i])
			}
			if errs[64+i] != nil {
				t.Fatalf("batch round %d resident key %d gated: %v", round, i, errs[64+i])
			}
		}
	}
	if _, errs := s.InsertBatch(batch); errs != nil {
		for i, e := range errs {
			if e != nil {
				t.Fatalf("batch attempt %d key %d: err %v, want admitted", k, i, e)
			}
		}
	}
}

// TestAdmissionDisabledStats pins the disabled-layer zero values: no
// stats, no FPR, gate reported off.
func TestAdmissionDisabledStats(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.AdmissionEnabled() {
		t.Fatal("fresh table reports admission enabled")
	}
	if st := s.AdmissionStats(); st != (table.AdmissionStats{}) {
		t.Fatalf("disabled stats %+v, want zero", st)
	}
	if fpr := s.AdmissionFPR(13, 100, 1); fpr != 0 {
		t.Fatalf("disabled FPR %v, want 0", fpr)
	}
}

// TestAdmissionDecayAgesMiceOut pins the decay path end to end: a flow
// one packet short of the threshold loses its sketch credit once enough
// clock-moving Advance epochs pass, so its next attempt is deferred
// again — while an identical table without decay admits it. Decay rides
// the Advance clock, so a clock that does not move must never decay.
func TestAdmissionDecayAgesMiceOut(t *testing.T) {
	const k = 2
	mk := func(decayEpochs int) *table.Sharded {
		s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 1 << 10}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 40}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetAdmission(table.AdmissionConfig{Threshold: k, DecayEpochs: decayEpochs}); err != nil {
			t.Fatal(err)
		}
		return s
	}

	decaying, steady := mk(2), mk(0)
	key := key13(7)
	for _, s := range []*table.Sharded{decaying, steady} {
		if _, err := s.Insert(key); !errors.Is(err, table.ErrAdmissionDeferred) {
			t.Fatalf("first attempt: %v, want deferred", err)
		}
	}
	// A stalled clock (Advance with the same now) opens no epoch: sweeps
	// run but the decay cadence must not fire.
	for i := 0; i < 8; i++ {
		decaying.Advance(1)
	}
	// Four clock-moving epochs at DecayEpochs=2: at least one decay halves
	// the flow's count 1 -> 0.
	for now := int64(2); now <= 5; now++ {
		decaying.Advance(now)
		steady.Advance(now)
	}
	if _, err := decaying.Insert(key); !errors.Is(err, table.ErrAdmissionDeferred) {
		t.Fatalf("post-decay attempt: %v, want deferred again (credit decayed)", err)
	}
	if _, err := steady.Insert(key); err != nil {
		t.Fatalf("no-decay table deferred the threshold-th attempt: %v", err)
	}
}

// TestAdmissionGatedTrafficDoesNotGrow pins the composition with
// auto-growth: deferred flows hold no slots, so a mice flood far beyond
// capacity must leave the load factor untouched and trigger no grow —
// while the same flows crossing the threshold count normally and do.
func TestAdmissionGatedTrafficDoesNotGrow(t *testing.T) {
	// An oversized sketch keeps collision-admits out of the flood.
	s := admitTable(t, "hashcam", 2, table.Config{Capacity: 256},
		table.AdmissionConfig{Threshold: 2, Width: 1 << 18})
	if err := s.SetGrowth(table.GrowthConfig{MaxLoadFactor: 0.5}); err != nil {
		t.Fatal(err)
	}
	capBefore := s.SlotCapacity()
	// 4x capacity in distinct single-attempt flows: all gated.
	for i := uint64(0); i < 1024; i++ {
		if _, err := s.Insert(key13(i)); !errors.Is(err, table.ErrAdmissionDeferred) {
			t.Fatalf("flow %d: %v, want deferred", i, err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len %d after a gated flood, want 0", s.Len())
	}
	if g := s.GrowStats(); g.Grows != 0 {
		t.Fatalf("gated flood triggered %d grows; deferred flows must not count toward load factor", g.Grows)
	}
	if got := s.SlotCapacity(); got != capBefore {
		t.Fatalf("SlotCapacity moved %d -> %d under gated traffic", capBefore, got)
	}
	// Second attempts admit the flows; crossing MaxLoadFactor must now
	// grow as usual (admission does not mask real occupancy).
	for i := uint64(0); i < 1024; i++ {
		if _, err := s.Insert(key13(i)); err != nil && !errors.Is(err, table.ErrTableFull) {
			t.Fatalf("flow %d second attempt: %v", i, err)
		}
	}
	if g := s.GrowStats(); g.Grows == 0 {
		t.Fatal("admitted flows crossing MaxLoadFactor triggered no grow")
	}
}

// TestAdmissionFPRMeasurement pins the sketch-precision gauge: an empty
// sketch admits no first-sight probe (FPR 0), and an undersized sketch
// saturated by distinct flows collides nearly every probe to the
// threshold (FPR near 1), with the measurement deterministic in seed.
func TestAdmissionFPRMeasurement(t *testing.T) {
	s := admitTable(t, "hashcam", 2, table.Config{Capacity: 1 << 12},
		table.AdmissionConfig{Threshold: 2, Width: 128})
	if fpr := s.AdmissionFPR(13, 2000, 9); fpr != 0 {
		t.Fatalf("empty-sketch FPR %v, want 0", fpr)
	}
	// 64 counters per shard, 8000 distinct two-packet flows: every
	// counter saturates well past the threshold.
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < 8000; i++ {
			s.Insert(key13(i))
		}
	}
	fpr := s.AdmissionFPR(13, 2000, 9)
	if fpr < 0.5 || fpr > 1 {
		t.Fatalf("saturated undersized sketch FPR %v, want near 1", fpr)
	}
	if again := s.AdmissionFPR(13, 2000, 9); again != fpr {
		t.Fatalf("FPR not deterministic in seed: %v then %v", fpr, again)
	}
}

// admitModel is the differential reference for the admission layer: a
// residency map plus per-shard mirror sketches built with the same
// geometry, seed and decay cadence as the table's own, fed the same
// KeyHashes. It predicts every gate decision bit-exactly.
type admitModel struct {
	threshold   uint32
	decayEpochs uint32
	resident    map[string]bool
	mirrors     []*admit.Sketch
	epoch       uint32
	lastDecay   uint32
	lastNow     int64
	gated       int64
	admitted    int64
}

func newAdmitModel(t *testing.T, shards, totalCap int, ad table.AdmissionConfig) *admitModel {
	t.Helper()
	m := &admitModel{
		threshold:   uint32(ad.Threshold),
		decayEpochs: uint32(ad.DecayEpochs),
		resident:    make(map[string]bool),
	}
	// Replicates SetAdmission's per-shard sizing: the nominal per-shard
	// capacity when Width is defaulted (ceil-divided like Capacity).
	width := (totalCap + shards - 1) / shards
	if ad.Width > 0 {
		width = (ad.Width + shards - 1) / shards
	}
	for i := 0; i < shards; i++ {
		sk, err := admit.New(admit.Config{Width: width, Depth: ad.Depth, Seed: ad.Seed})
		if err != nil {
			t.Fatal(err)
		}
		m.mirrors = append(m.mirrors, sk)
	}
	return m
}

// insert mirrors admitGateLocked: residents pass, everyone else bumps
// the owning shard's sketch and is admitted at the threshold.
func (m *admitModel) insert(shard int, k []byte, kh hashfn.KeyHashes) error {
	if m.resident[string(k)] {
		return nil
	}
	if est := m.mirrors[shard].Touch(kh); est < m.threshold {
		m.gated++
		return table.ErrAdmissionDeferred
	}
	m.admitted++
	return nil
}

// advance mirrors the Advance-driven decay schedule: a clock move opens
// an epoch; every decayEpochs epochs all mirrors halve.
func (m *admitModel) advance(now int64) {
	if now <= m.lastNow {
		return
	}
	m.lastNow = now
	m.epoch++
	if m.decayEpochs > 0 && m.epoch-m.lastDecay >= m.decayEpochs {
		m.lastDecay = m.epoch
		for _, sk := range m.mirrors {
			sk.Decay()
		}
	}
}

// TestAdmissionDifferentialOpStream is the admission differential
// harness (growable backends, unkeyed and keyed hashing): a seeded
// insert/lookup/delete stream runs through a gated table and through the
// admitModel reference side by side, with periodic Advance driving decay
// in both and a mid-stream Grow(2) landing while flows sit below the
// threshold. Every gate decision (admit / ErrAdmissionDeferred),
// membership answer, Len and the Gated/Admitted counters must stay
// bit-identical to the model throughout.
func TestAdmissionDifferentialOpStream(t *testing.T) {
	for _, seed := range []uint64{0, 0x20140b} {
		pair := hashfn.DefaultPair()
		if seed != 0 {
			pair = hashfn.SeededPair(seed)
		}
		name := "unkeyed"
		if seed != 0 {
			name = "keyed"
		}
		t.Run(name, func(t *testing.T) {
			for _, backend := range []string{"hashcam", "dleft", "singlehash"} {
				t.Run(backend, func(t *testing.T) {
					const (
						shards   = 4
						capacity = 512
						k        = 3
					)
					cfg := table.Config{Capacity: capacity, SlotsPerBucket: 2, CAMCapacity: 16, Hash: pair}
					ad := table.AdmissionConfig{Threshold: k, DecayEpochs: 4, Seed: admit.DeriveSeed(seed)}
					s := admitTable(t, backend, shards, cfg, ad)
					model := newAdmitModel(t, shards, capacity, ad)

					rng := rand.New(rand.NewSource(11))
					deferred, admitted, full, deleted, grown := 0, 0, 0, 0, false
					for op := 0; op < 8000; op++ {
						if op == 4000 {
							// Mid-stream resize while most flows sit below
							// the threshold: the sketch state and every
							// pending gate decision must ride through the
							// migration untouched.
							if err := s.Grow(2); err != nil {
								t.Fatal(err)
							}
							grown = true
						}
						if op%64 == 63 {
							s.Advance(int64(op))
							model.advance(int64(op))
						}
						key := key13(uint64(rng.Intn(900)))
						kh := pair.Compute(key)
						shard := hashfn.Reduce(kh.Mix, shards)
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4: // insert
							want := model.insert(shard, key, kh)
							_, err := s.Insert(key)
							switch {
							case errors.Is(want, table.ErrAdmissionDeferred):
								if !errors.Is(err, table.ErrAdmissionDeferred) {
									t.Fatalf("op %d: model deferred, table said %v", op, err)
								}
								deferred++
							case err == nil:
								model.resident[string(key)] = true
								admitted++
							case errors.Is(err, table.ErrTableFull):
								// Admitted by the gate, rejected by the
								// structure: counted in Admitted on both
								// sides, resident in neither.
								full++
							default:
								t.Fatalf("op %d: unexpected insert error %v", op, err)
							}
						case 5, 6, 7: // lookup
							_, ok := s.Lookup(key)
							if want := model.resident[string(key)]; ok != want {
								t.Fatalf("op %d lookup: table %v, model %v", op, ok, want)
							}
						default: // delete
							ok := s.Delete(key)
							if want := model.resident[string(key)]; ok != want {
								t.Fatalf("op %d delete: table %v, model %v", op, ok, want)
							}
							if ok {
								delete(model.resident, string(key))
								deleted++
							}
						}
						if s.Len() != len(model.resident) {
							t.Fatalf("op %d: Len %d, model %d", op, s.Len(), len(model.resident))
						}
					}
					st := s.AdmissionStats()
					if st.Gated != model.gated || st.Admitted != model.admitted {
						t.Fatalf("stats (gated %d, admitted %d), model (%d, %d)",
							st.Gated, st.Admitted, model.gated, model.admitted)
					}
					if !grown || s.GrowStats().Grows == 0 {
						t.Fatal("mid-stream grow did not run")
					}
					if model.lastDecay == 0 {
						t.Fatal("stream finished without a decay; cadence untested")
					}
					if deferred == 0 || admitted == 0 || deleted == 0 {
						t.Fatalf("stream too tame (%d deferred, %d admitted, %d full, %d deleted)",
							deferred, admitted, full, deleted)
					}
				})
			}
		})
	}
}
