package table

import (
	"errors"
	"fmt"
)

// This file defines the elastic-capacity layer of the table stack: the
// GrowableBackend contract for budgeted online grow-in-place, and the
// Sharded-level orchestration that amortises a resize exactly like the
// expiry sweep — a bounded migration step piggybacked on writes and on
// Advance, inside the existing per-shard write lock and seqlock stamps.
// The paper's Hash-CAM is fixed-function hardware; a software flow table
// serving real traffic growth must resize without a restart.

// ErrGrowUnsupported is returned when a grow is requested on a backend
// that cannot resize online (cuckoo and convhashcam opt out; byte-key
// backends without the lifecycle contracts cannot be migrated at all).
var ErrGrowUnsupported = errors.New("table: backend does not support online growth")

// GrowLayout describes the slot-ID space during one migration, returned
// by GrowableBackend.BeginGrow. The new arena takes over the live ID
// range immediately; the retiring arena's slots are re-addressed into a
// region above it so both arenas stay enumerable (and expiry side-tables
// addressable) until FinishGrow:
//
//	[0, Stable)        IDs untouched by the grow (hashcam's CAM region)
//	[Stable, NewBound) the new arena's slots
//	[OldBase, OldBound) the retiring arena's slots, shifted up from
//	                   their pre-grow IDs: old ID x (x >= Stable) is
//	                   re-addressed to OldBase + (x - Stable)
//
// OldBase == NewBound, and SlotIDBound reports OldBound while the
// migration is in flight, then NewBound after FinishGrow.
type GrowLayout struct {
	// NewBound is the exclusive end of the post-migration slot-ID space.
	NewBound uint64
	// OldBase is the first slot ID of the retiring arena's region.
	OldBase uint64
	// OldBound is the exclusive end of the retiring region (equal to
	// SlotIDBound during the migration).
	OldBound uint64
	// Stable is the exclusive end of the ID prefix the grow leaves
	// untouched (0 when the whole space is re-addressed).
	Stable uint64
}

// GrowableBackend is the optional elastic-capacity extension of
// EvictableBackend: a structure that can resize online by running a
// second slot arena next to the live one and migrating occupied slots a
// budgeted step at a time. Between BeginGrow and FinishGrow the backend
// must serve lookups and deletes from both arenas (new arena first) and
// place inserts only in the new arena; Len spans both.
//
// All three methods require the caller's exclusive lock (the same
// discipline as Insert), and the Sharded layer additionally wraps every
// call in a shard-global seqlock section — migration steps and geometry
// swaps move slots across the whole arena, beyond anything per-stripe
// words could cover — so the optimistic read path discards results torn
// by a migration step. Backends whose
// relocations are observed by a RelocatingBackend hook must report each
// step's moves (old slot ID → new slot ID, both in the layout's ID
// space) through the hook before the step returns, so expiry
// side-tables follow migrated entries.
type GrowableBackend interface {
	EvictableBackend
	// BeginGrow allocates the new arena sized for at least newCap
	// entries and switches the backend into migration mode. It fails if
	// a migration is already in flight or newCap does not exceed the
	// current capacity. No slots move yet.
	BeginGrow(newCap int) (GrowLayout, error)
	// MigrateStep examines at most budget retiring-arena slots (occupied
	// or not, mirroring the sweep's budget discipline) and moves each
	// occupied one into the new arena via the backend's normal placement
	// policy. An entry the new arena cannot place (a lossy structure's
	// bucket overflow) is dropped and counted rather than wedging the
	// migration. done reports that every retiring slot has been
	// examined; the caller must then call FinishGrow.
	MigrateStep(budget int) (moved, dropped int, done bool)
	// FinishGrow retires the old arena and returns the backend to
	// fixed-geometry operation on the new one.
	FinishGrow()
	// Growing reports whether a migration is in flight. Unlike the other
	// three methods it is safe under a shared lock.
	Growing() bool
}

// GrowthConfig parameterises the Sharded layer's elastic capacity: the
// auto-grow trigger and the per-step migration budget. The zero value
// disables auto-growth (explicit Grow still works).
type GrowthConfig struct {
	// MaxLoadFactor triggers an automatic grow of a shard whose
	// occupancy crosses this fraction of its real slot capacity
	// (SlotCapacity, not the nominal Config.Capacity). While armed, an
	// insert rejected with ErrTableFull also starts a grow and retries —
	// per-bucket overflow can reject keys well below the global
	// threshold. Zero disables auto-growth.
	MaxLoadFactor float64
	// StepBudget bounds the retiring-arena slots examined per migration
	// step (default 512). Steps piggyback on writes and on Advance, so
	// the budget caps the write-lock hold exactly like the expiry
	// sweep's SweepBudget.
	StepBudget int
	// Factor is the capacity multiplier of an automatic grow (default 2).
	Factor int
}

// withDefaults fills zero fields.
func (g GrowthConfig) withDefaults() GrowthConfig {
	if g.StepBudget <= 0 {
		g.StepBudget = 512
	}
	if g.Factor < 2 {
		g.Factor = 2
	}
	return g
}

// Validate reports an error for unusable parameters.
func (g GrowthConfig) Validate() error {
	if g.MaxLoadFactor < 0 || g.MaxLoadFactor > 1 {
		return fmt.Errorf("table: growth MaxLoadFactor must be in [0,1], got %g", g.MaxLoadFactor)
	}
	if g.Factor < 0 || g.Factor == 1 {
		return fmt.Errorf("table: growth Factor must be >= 2 (or 0 for the default), got %d", g.Factor)
	}
	return nil
}

// GrowStats aggregates the elastic-capacity counters across shards.
type GrowStats struct {
	// Grows counts shard migrations started (explicit and automatic).
	Grows int64
	// ActiveGrows counts shards whose migration is currently in flight.
	ActiveGrows int64
	// MigrateSteps counts budgeted migration steps executed.
	MigrateSteps int64
	// MigratedSlots counts entries moved old arena → new arena.
	MigratedSlots int64
	// DroppedSlots counts entries the new arena could not place (lossy
	// structures' bucket overflow); they leave the table like an
	// eviction without a callback.
	DroppedSlots int64
	// OldArenaReads counts lookup hits served from a retiring arena
	// while a migration was in flight.
	OldArenaReads int64
}

// SetGrowth configures the table's elastic-capacity behaviour. A config
// with auto-growth (MaxLoadFactor > 0) requires every shard backend to
// implement GrowableBackend. Like SetOptimisticReads it must not be
// called concurrently with table operations — set it up front.
func (s *Sharded) SetGrowth(cfg GrowthConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.MaxLoadFactor > 0 && !s.growCapable {
		return fmt.Errorf("table: auto-growth on %s: %w", s.Name(), ErrGrowUnsupported)
	}
	s.growth = cfg.withDefaults()
	return nil
}

// Growth returns the active elastic-capacity configuration.
func (s *Sharded) Growth() GrowthConfig { return s.growth }

// Grow starts an online resize of every shard to factor times its
// current nominal capacity. It returns ErrGrowUnsupported (wrapped) when
// any shard backend cannot resize online; shards already migrating are
// left to converge. Migration is amortised, not synchronous: the entries
// move a budgeted step at a time, piggybacked on subsequent writes and
// Advance calls, and lookups consult both arenas meanwhile. GrowStats
// reports progress; ActiveGrows reaching zero means the resize is done.
func (s *Sharded) Grow(factor int) error {
	if factor < 2 {
		return fmt.Errorf("table: grow factor must be >= 2, got %d", factor)
	}
	if !s.growCapable {
		return fmt.Errorf("table: grow %s: %w", s.Name(), ErrGrowUnsupported)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if err := func() error {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			if sh.gbe.Growing() {
				return nil
			}
			sh.beginWrite()
			err := s.beginGrowShardLocked(sh, i, sh.capTarget*factor)
			sh.endWrite()
			return err
		}(); err != nil {
			return err
		}
	}
	return nil
}

// GrowStats returns a snapshot of the elastic-capacity counters.
func (s *Sharded) GrowStats() GrowStats {
	gs := GrowStats{
		Grows:         s.grows.Load(),
		MigrateSteps:  s.migrateSteps.Load(),
		MigratedSlots: s.migratedSlots.Load(),
		DroppedSlots:  s.droppedSlots.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		gs.OldArenaReads += sh.oldHits.Load()
		if sh.gbe != nil {
			sh.mu.RLock()
			if sh.gbe.Growing() {
				gs.ActiveGrows++
			}
			sh.mu.RUnlock()
		}
	}
	return gs
}

// SlotCapacity returns the table's real slot capacity: the sum of the
// shard backends' slot-ID bounds (the new layout's bound while a
// migration is in flight). Because each shard rounds its bucket count up
// to a power of two independently, this can be up to ~2× the nominal
// Config.Capacity — occupancy gauges and the auto-grow trigger use this
// figure, not the nominal one. Returns 0 when any shard backend has no
// dense slot space.
func (s *Sharded) SlotCapacity() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		bound := sh.slotCap
		sh.mu.RUnlock()
		if bound == 0 {
			return 0
		}
		n += int64(bound)
	}
	return n
}

// beginGrowShardLocked starts one shard's migration: the backend
// allocates its new arena, the expiry side-tables (when enabled) are
// re-addressed per the layout, and the old-arena read watermark is
// published. Caller holds the shard's write lock inside a global seqlock
// section (beginWrite/endWrite, or a targeted section escalated onto the
// global word).
func (s *Sharded) beginGrowShardLocked(sh *shardState, shard int, newCap int) error {
	layout, err := sh.gbe.BeginGrow(newCap)
	if err != nil {
		return err
	}
	sh.capTarget = newCap
	sh.slotCap = layout.NewBound
	if exp := s.expiry; exp != nil {
		exp.shards[shard].growTables(layout)
	}
	// Publish the watermark last: the ID region [OldBase, OldBound) only
	// exists from this point on, and a lookup hit at or above it is a
	// read served by the retiring arena.
	sh.oldBase.Store(layout.OldBase)
	s.grows.Add(1)
	return nil
}

// pumpMigrationLocked runs one budgeted migration step on shard if one
// is in flight — the amortisation hook called at the tail of every
// exclusive-lock section (inserts, deletes, the expiry sweep), mirroring
// how the sweep itself is driven. Caller holds the shard's write lock
// inside a global seqlock section.
func (s *Sharded) pumpMigrationLocked(sh *shardState, shard int) {
	if sh.gbe == nil || !sh.gbe.Growing() {
		return
	}
	moved, dropped, done := sh.gbe.MigrateStep(s.growth.withDefaults().StepBudget)
	s.migrateSteps.Add(1)
	s.migratedSlots.Add(int64(moved))
	s.droppedSlots.Add(int64(dropped))
	if done {
		s.finishGrowShardLocked(sh, shard)
	}
}

// finishGrowShardLocked retires one shard's old arena: the backend drops
// it, the expiry side-tables shrink back to the new bound, and the
// old-arena watermark is reset. Caller holds the shard's write lock
// inside a global seqlock section.
func (s *Sharded) finishGrowShardLocked(sh *shardState, shard int) {
	sh.gbe.FinishGrow()
	sh.oldBase.Store(^uint64(0))
	if exp := s.expiry; exp != nil {
		exp.shards[shard].shrinkTables(sh.slotCap)
	}
}

// wantsAutoGrowLocked is the auto-grow trigger predicate, checked once
// per write locked section: true when auto-growth is armed, no migration
// is in flight, and the shard's real occupancy has crossed
// MaxLoadFactor × its real slot capacity. Split from the grow action so
// growPumps can decide whether a seqlock section is needed at all before
// stamping anything — an armed but quiescent trigger must not perturb
// striped readers on every insert.
func (s *Sharded) wantsAutoGrowLocked(sh *shardState) bool {
	lf := s.growth.MaxLoadFactor
	if lf <= 0 || sh.gbe == nil || sh.slotCap == 0 || sh.gbe.Growing() {
		return false
	}
	return float64(sh.be.Len()) >= lf*float64(sh.slotCap)
}

// growOnFullLocked is the second auto-grow trigger: an insert that hit
// ErrTableFull while auto-growth is armed begins a grow at once, even
// below the load-factor threshold — per-bucket overflow can reject keys
// long before global occupancy looks full, and the caller retries the
// insert against the fresh arena. Reports whether a grow started. Caller
// holds the shard's write lock inside a write section; the geometry swap
// mutates state far beyond the caller's candidate buckets, so a targeted
// section is promoted to the global word before anything moves.
func (s *Sharded) growOnFullLocked(sh *shardState, shard int) bool {
	if s.growth.MaxLoadFactor <= 0 || sh.gbe == nil || sh.gbe.Growing() {
		return false
	}
	sh.escalateLocked()
	return s.beginGrowShardLocked(sh, shard, sh.capTarget*s.growth.Factor) == nil
}

// growPumps is the per-write migration drive shared by the scalar and
// batch write paths: the auto-grow check, then one budgeted step. It
// runs after the caller's write sections close and brackets the
// shard-global seqlock word itself, but only when there is actual work —
// a trigger firing or a migration in flight — so the quiescent per-write
// call stamps nothing and striped readers stay undisturbed. Caller holds
// the shard's write lock with no seqlock section open.
func (s *Sharded) growPumps(sh *shardState, shard int, insert bool) {
	grow := insert && s.wantsAutoGrowLocked(sh)
	pump := sh.gbe != nil && sh.gbe.Growing()
	if !grow && !pump {
		return
	}
	sh.beginWrite()
	if grow {
		// The only BeginGrow failures are "already growing" (excluded by
		// wantsAutoGrowLocked) and a non-increasing target, which
		// Factor >= 2 rules out.
		_ = s.beginGrowShardLocked(sh, shard, sh.capTarget*s.growth.Factor)
	}
	s.pumpMigrationLocked(sh, shard)
	sh.endWrite()
}

// oldHitCheck counts a lookup hit served from the retiring arena. The
// watermark is ^uint64(0) outside a migration, so the branch never
// taken costs one atomic load on the hit path.
func (sh *shardState) oldHitCheck(local uint64) {
	if local >= sh.oldBase.Load() {
		sh.oldHits.Add(1)
	}
}
