package table_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/hashfn"
	"repro/internal/table"
)

// TestOptimisticReadsBitIdentity pins the core seqlock promise over
// quiescent state: for every backend, the lock-free read path must be
// bit-identical to the RLock path — same IDs, same hits, and the same
// probe accounting once the deferred CommitReads tokens are applied. Two
// identically built and loaded tables are driven through the same scalar
// and batched lookups (hits, misses, and re-lookups), one with optimistic
// reads on and one forced onto the locked path; any divergence in results
// or in the final Probes() total is a contract violation.
func TestOptimisticReadsBitIdentity(t *testing.T) {
	cfg := table.Config{Capacity: 4096, SlotsPerBucket: 2, CAMCapacity: 32, Hash: hashfn.DefaultPair()}
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			mk := func() *table.Sharded {
				s, err := table.NewSharded(name, 4, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			opt, locked := mk(), mk()
			if locked.SetOptimisticReads(false) {
				t.Fatal("SetOptimisticReads(false) reported the path still on")
			}
			if !raceEnabled && opt.OptimisticReads() != optimisticExpected(name) {
				t.Fatalf("OptimisticReads() = %v, want %v for %s",
					opt.OptimisticReads(), optimisticExpected(name), name)
			}
			keys := keys13(0, 1500)
			for _, s := range []*table.Sharded{opt, locked} {
				if _, errs := s.InsertBatch(keys); errs != nil {
					for i, e := range errs {
						if e != nil && !errors.Is(e, table.ErrTableFull) {
							t.Fatalf("preload %d: %v", i, e)
						}
					}
				}
			}
			// Mixed scalar traffic: residents, misses, interleaved.
			for i := uint64(0); i < 3000; i++ {
				k := key13(i % 2000) // [1500,2000) are never-inserted misses
				idA, okA := opt.Lookup(k)
				idB, okB := locked.Lookup(k)
				if idA != idB || okA != okB {
					t.Fatalf("scalar lookup %d: optimistic (%d,%v) vs locked (%d,%v)", i, idA, okA, idB, okB)
				}
			}
			// Batched traffic over the same mix.
			batch := keys13(0, 2000)
			idsA, hitsA := opt.LookupBatch(batch)
			idsB, hitsB := locked.LookupBatch(batch)
			for i := range batch {
				if idsA[i] != idsB[i] || hitsA[i] != hitsB[i] {
					t.Fatalf("batch lookup %d: optimistic (%d,%v) vs locked (%d,%v)",
						i, idsA[i], hitsA[i], idsB[i], hitsB[i])
				}
			}
			if pa, pb := opt.Probes(), locked.Probes(); pa != pb {
				t.Fatalf("probe accounting diverged: optimistic %d vs locked %d — CommitReads does not replay the locked ledger", pa, pb)
			}
			if st := locked.ReadStats(); st.Optimistic || st.Retries != 0 || st.Fallbacks != 0 {
				t.Fatalf("locked table recorded optimistic activity: %+v", st)
			}
		})
	}
}

// optimisticExpected reports whether the named backend should serve
// lock-free reads for the standard 13-byte inline config on a non-race
// build: every canonical backend must (they all implement
// table.OptimisticBackend over inline slotarr storage); test-only
// byte-key fallbacks must not.
func optimisticExpected(name string) bool {
	for _, canonical := range canonicalBackends {
		if name == canonical {
			return true
		}
	}
	return false
}

// TestOptimisticReadsSpilledKeysStayLocked pins the ReadLockFree gate:
// keys beyond slotarr.MaxInline are stored through per-slot heap buffers
// whose slice headers are not torn-read-safe, so the sharded layer must
// keep the RLock path even on a capable build.
func TestOptimisticReadsSpilledKeysStayLocked(t *testing.T) {
	cfg := table.Config{Capacity: 1024, KeyLen: spillKeyLen, Hash: hashfn.DefaultPair()}
	for _, name := range canonicalBackends {
		t.Run(name, func(t *testing.T) {
			s, err := table.NewSharded(name, 2, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.OptimisticReads() {
				t.Fatal("optimistic reads active on the spill path")
			}
			if s.SetOptimisticReads(true) {
				t.Fatal("SetOptimisticReads(true) claimed to enable the path on the spill path")
			}
			k := keyN(7, spillKeyLen)
			if _, err := s.Insert(k); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Lookup(k); !ok {
				t.Fatal("spilled key lost")
			}
		})
	}
}

// TestOptimisticTornReadStress is the torn-read certificate and the
// concurrent-reader extension of the differential harness: per backend,
// a writer goroutine churns a seeded op stream (scalar and batched
// inserts/deletes over its own range, maintaining the differential model)
// and periodically advances the expiry clock (sweep mutations), while
// reader goroutines hammer the lock-free path and validate every result
// against invariants a torn read would break:
//
//   - the stable resident set always hits, with its original IDs on
//     non-relocating backends;
//   - never-inserted keys always miss;
//   - churned keys may hit or miss (the writer owns their truth), but a
//     hit must carry a plausible shard-decoded ID.
//
// Under -race the same schedule runs entirely through the RLock path
// (seqlock compiled out) as the race-detector certificate; on non-race
// builds the test additionally requires the seqlock to have actually been
// exercised — retries or fallbacks observed — and the final differential
// sweep compares the writer's model against the quiesced table.
func TestOptimisticTornReadStress(t *testing.T) {
	cfg := table.Config{Capacity: 1 << 14, SlotsPerBucket: 2, CAMCapacity: 64, Hash: hashfn.DefaultPair()}
	for _, name := range canonicalBackends {
		t.Run(name, func(t *testing.T) {
			runTornReadStress(t, name, cfg)
		})
	}
}

// TestOptimisticTornReadStressStripes re-runs the torn-read certificate
// across the seqlock granularity spectrum — the single-word control, a
// mid stripe count, and the cap — on the two backends whose writes leave
// their start buckets (CAM overflow and cuckoo kicks, i.e. the
// escalation paths): correctness must be independent of how finely the
// sequence words partition the arenas.
func TestOptimisticTornReadStressStripes(t *testing.T) {
	cfg := table.Config{Capacity: 1 << 14, SlotsPerBucket: 2, CAMCapacity: 64, Hash: hashfn.DefaultPair()}
	for _, stripes := range []int{1, 8, 512} {
		for _, name := range []string{"hashcam", "cuckoo"} {
			scfg := cfg
			scfg.SeqlockStripes = stripes
			t.Run(fmt.Sprintf("%s/stripes=%d", name, stripes), func(t *testing.T) {
				runTornReadStress(t, name, scfg)
			})
		}
	}
}

// runTornReadStress is the shared body of the torn-read stress tests.
func runTornReadStress(t *testing.T, name string, cfg table.Config) {
	s, err := table.NewSharded(name, 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	const resident = 1000
	stable := keys13(0, resident)
	stableIDs := make(map[string]uint64, resident)
	ids, errs := s.InsertBatch(stable)
	if errs != nil {
		t.Fatalf("stable preload failed: %v", table.BatchErr(errs))
	}
	for i, k := range stable {
		stableIDs[string(k)] = ids[i]
	}
	idStable := name != "cuckoo" // kicks relocate residents

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The single writer owns the churn range and its model.
	model := map[string]uint64{}
	var modelDegraded bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		span := keys13(1<<20, 1<<20+256)
		bids := make([]uint64, len(span))
		berrs := make([]error, len(span))
		boks := make([]bool, len(span))
		clock := int64(0)
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			// Scalar churn with model maintenance.
			for op := 0; op < 64; op++ {
				k := key13(uint64(1<<21 + rng.Intn(512)))
				if rng.Intn(2) == 0 {
					id, err := s.Insert(k)
					switch {
					case err == nil:
						model[string(k)] = id
					case errors.Is(err, table.ErrTableFull):
						if name == "cuckoo" {
							modelDegraded = true // failed chain rearranged residents
						}
					default:
						t.Errorf("writer insert: %v", err)
						return
					}
				} else {
					if s.Delete(k) {
						delete(model, string(k))
					}
				}
			}
			// Batched churn over a disjoint range (no model: the
			// round inserts then deletes the whole span).
			s.InsertBatchInto(span, bids, berrs)
			for i, e := range berrs {
				if e != nil && !errors.Is(e, table.ErrTableFull) {
					t.Errorf("writer batch insert %d: %v", i, e)
					return
				}
			}
			s.DeleteBatchInto(span, boks)
			// Sweep mutations interleave with lock-free readers.
			if round%8 == 0 {
				clock++
				s.Advance(clock)
			}
		}
	}()

	// Readers: scalar + batch over stable, churned and absent keys.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			window := stable[r*256 : r*256+256]
			bids := make([]uint64, len(window))
			bhits := make([]bool, len(window))
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.LookupBatchInto(window, bids, bhits)
				for j, k := range window {
					if !bhits[j] {
						t.Errorf("reader %d: stable key %x vanished", r, k)
						return
					}
					if idStable && bids[j] != stableIDs[string(k)] {
						t.Errorf("reader %d: stable key %x ID drifted %d -> %d",
							r, k, stableIDs[string(k)], bids[j])
						return
					}
				}
				k := stable[(i*13+uint64(r))%resident]
				if id, ok := s.Lookup(k); !ok || (idStable && id != stableIDs[string(k)]) {
					t.Errorf("reader %d: scalar stable lookup (%d,%v)", r, id, ok)
					return
				}
				if _, ok := s.Lookup(key13(1<<30 + i%512)); ok {
					t.Errorf("reader %d: never-inserted key hit", r)
					return
				}
				s.Lookup(key13(uint64(1<<21 + int(i)%512))) // churned: no assertion
			}
		}(r)
	}

	// Run until the seqlock demonstrably engaged (non-race builds)
	// or a fixed schedule elapsed (race builds, where the path is
	// compiled out and the same load certifies the locked paths).
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	rounds := 0
	for engaged := false; !engaged; {
		select {
		case <-tick.C:
			rounds++
			st := s.ReadStats()
			engaged = raceEnabled && rounds >= 20 ||
				st.Retries+st.Fallbacks > 0 && rounds >= 5
		case <-deadline:
			engaged = true
			if st := s.ReadStats(); !raceEnabled && st.Retries+st.Fallbacks == 0 {
				t.Error("5s of writer churn never invalidated a lock-free read; seqlock path inert?")
			}
		}
	}
	tick.Stop()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if !raceEnabled {
		if st := s.ReadStats(); !st.Optimistic {
			t.Fatalf("optimistic path off on a capable build: %+v", st)
		}
	}
	// Quiesced differential sweep: the writer's model must be a
	// subset of the table (exact residency for non-evictive
	// backends).
	for k, want := range model {
		id, ok := s.Lookup([]byte(k))
		if !ok && !modelDegraded {
			t.Fatalf("churned key %x in model but not in table", k)
		}
		if ok && idStable && !modelDegraded && id != want {
			t.Fatalf("churned key %x ID %d, model says %d", k, id, want)
		}
	}
	for _, k := range stable {
		if _, ok := s.Lookup(k); !ok {
			t.Fatalf("stable key %x missing after quiesce", k)
		}
	}
}

// TestStripedReadsBitIdentity extends the bit-identity pin across the
// seqlock granularity spectrum: for every canonical backend, tables built
// at stripes 1 (the single-word control), 8 and 512 — plus a locked-path
// control at the default granularity — must produce identical IDs, hits
// and probe totals for the same insert/delete/lookup stream. Striping
// changes only which sequence words writers stamp, never placement or
// results.
func TestStripedReadsBitIdentity(t *testing.T) {
	base := table.Config{Capacity: 4096, SlotsPerBucket: 2, CAMCapacity: 32, Hash: hashfn.DefaultPair()}
	for _, name := range canonicalBackends {
		t.Run(name, func(t *testing.T) {
			type variant struct {
				label string
				s     *table.Sharded
			}
			var variants []variant
			for _, stripes := range []int{1, 8, 512} {
				cfg := base
				cfg.SeqlockStripes = stripes
				s, err := table.NewSharded(name, 4, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				variants = append(variants, variant{fmt.Sprintf("stripes=%d", stripes), s})
			}
			locked, err := table.NewSharded(name, 4, base, nil)
			if err != nil {
				t.Fatal(err)
			}
			locked.SetOptimisticReads(false)
			variants = append(variants, variant{"locked", locked})

			keys := keys13(0, 1500)
			for _, v := range variants {
				if _, errs := v.s.InsertBatch(keys); errs != nil {
					for i, e := range errs {
						if e != nil && !errors.Is(e, table.ErrTableFull) {
							t.Fatalf("%s preload %d: %v", v.label, i, e)
						}
					}
				}
				for i := 0; i < 1500; i += 3 {
					v.s.Delete(keys[i])
				}
			}
			probe := keys13(0, 2000) // residents, deleted, never-inserted
			ref := variants[0]
			refIDs, refHits := ref.s.LookupBatch(probe)
			for i := uint64(0); i < 1000; i++ {
				id0, ok0 := ref.s.Lookup(key13(i * 2))
				for _, v := range variants[1:] {
					if id, ok := v.s.Lookup(key13(i * 2)); id != id0 || ok != ok0 {
						t.Fatalf("scalar %d: %s (%d,%v) vs %s (%d,%v)",
							i, ref.label, id0, ok0, v.label, id, ok)
					}
				}
			}
			for _, v := range variants[1:] {
				ids, hits := v.s.LookupBatch(probe)
				for i := range probe {
					if ids[i] != refIDs[i] || hits[i] != refHits[i] {
						t.Fatalf("batch %d: %s (%d,%v) vs %s (%d,%v)",
							i, ref.label, refIDs[i], refHits[i], v.label, ids[i], hits[i])
					}
				}
				if pa, pb := ref.s.Probes(), v.s.Probes(); pa != pb {
					t.Fatalf("probe accounting diverged: %s %d vs %s %d", ref.label, pa, v.label, pb)
				}
			}
		})
	}
}
