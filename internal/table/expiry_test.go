package table_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/table"
)

// expiringTable builds a small sharded table with expiry enabled.
func expiringTable(t *testing.T, backend string, shards int, cfg table.ExpiryConfig) *table.Sharded {
	t.Helper()
	s, err := table.NewSharded(backend, shards, table.Config{Capacity: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(cfg); err != nil {
		t.Fatal(err)
	}
	return s
}

// evictableBackends returns the registered backends that support the
// lifecycle layer (all canonical ones; the byte-key testplain fallback
// does not and is covered by TestExpiryRequiresEvictableBackend).
func evictableBackends(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range table.Backends() {
		be, err := table.New(name, table.Config{Capacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := be.(table.EvictableBackend); ok {
			out = append(out, name)
		}
	}
	return out
}

// drain advances the clock without moving it (re-passing now) until a
// full sweep lap finds nothing more to evict, returning the total.
func drain(s *table.Sharded, now int64, budget, bound int) int {
	evicted := 0
	// Enough steps for several full laps of the slot space.
	for i := 0; i < 4*(bound/budget+1)+4; i++ {
		evicted += s.Advance(now)
	}
	return evicted
}

// TestExpiryIdleTimeoutAllBackends pins the core lifecycle semantics on
// every registered backend: touched flows survive the idle window,
// untouched ones are retired with their key and timestamps reported, and
// the table's Len reflects the reclaim.
func TestExpiryIdleTimeoutAllBackends(t *testing.T) {
	for _, backend := range evictableBackends(t) {
		t.Run(backend, func(t *testing.T) {
			s := expiringTable(t, backend, 2, table.ExpiryConfig{IdleTimeout: 100, SweepBudget: 128})
			var expired []string
			var reasons []table.ExpireReason
			s.OnExpired(func(id uint64, key []byte, first, last int64, reason table.ExpireReason) {
				expired = append(expired, string(key)) // copy: the slice is reused
				reasons = append(reasons, reason)
				if first == 0 && last == 0 {
					t.Errorf("expired key %x carries zero timestamps", key)
				}
			})
			s.Advance(10) // t=10
			keys := keys13(0, 200)
			if _, errs := s.InsertBatch(keys); errs != nil {
				t.Fatal(table.BatchErr(errs))
			}
			// Touch the first half at t=80; the second half stays idle
			// since t=10.
			s.Advance(80)
			s.LookupBatch(keys[:100])
			// t=130: idle ages are 50 (touched) and 120 (untouched).
			evicted := drain(s, 130, 128, 4096)
			if evicted != 100 {
				t.Fatalf("evicted %d flows, want the 100 untouched ones", evicted)
			}
			if got := s.Len(); got != 100 {
				t.Fatalf("Len after sweep = %d, want 100", got)
			}
			for _, r := range reasons {
				if r != table.ExpireIdle {
					t.Fatalf("reason %v, want idle", r)
				}
			}
			want := map[string]bool{}
			for _, k := range keys[100:] {
				want[string(k)] = true
			}
			for _, k := range expired {
				if !want[k] {
					t.Fatalf("unexpected expired key %x", k)
				}
				delete(want, k)
			}
			if len(want) != 0 {
				t.Fatalf("%d idle keys never reported expired", len(want))
			}
			// Survivors still resident and untouched ones gone.
			_, hits := s.LookupBatch(keys)
			for i, h := range hits {
				if (i < 100) != h {
					t.Fatalf("key %d: present=%v after sweep", i, h)
				}
			}
			if st := s.ExpiryStats(); st.Evicted != 100 || st.IdleEvicted != 100 || st.Sweeps == 0 {
				t.Fatalf("stats %+v inconsistent with 100 idle evictions", st)
			}
		})
	}
}

// TestExpiryActiveTimeout pins the forced-progress path: a continuously
// touched flow still retires once its residency exceeds ActiveTimeout.
func TestExpiryActiveTimeout(t *testing.T) {
	s := expiringTable(t, "hashcam", 1, table.ExpiryConfig{IdleTimeout: 1000, ActiveTimeout: 50, SweepBudget: 256})
	var reasons []table.ExpireReason
	s.OnExpired(func(_ uint64, _ []byte, _, _ int64, reason table.ExpireReason) {
		reasons = append(reasons, reason)
	})
	key := key13(7)
	if _, err := s.Insert(key); err != nil {
		t.Fatal(err)
	}
	for now := int64(10); now < 50; now += 10 {
		s.Advance(now)
		if _, ok := s.Lookup(key); !ok { // keep it hot
			t.Fatalf("flow missing at t=%d", now)
		}
	}
	// The flow was inserted before the first Advance, so its firstSeen
	// resolves to the first observed clock (t=10); residency crosses the
	// active timeout at t=60.
	if evicted := drain(s, 55, 256, 4096); evicted != 0 {
		t.Fatalf("evicted %d flows at t=55, want 0 (residency 45 < 50)", evicted)
	}
	if evicted := drain(s, 60, 256, 4096); evicted != 1 {
		t.Fatalf("evicted %d flows at t=60, want 1 (active timeout)", evicted)
	}
	if len(reasons) != 1 || reasons[0] != table.ExpireActive {
		t.Fatalf("reasons %v, want [active]", reasons)
	}
}

// TestExpiryReinsertAfterExpiryReusesSlot pins the reclaim story end to
// end: a retired flow's slot is genuinely freed (a full bucket accepts
// the population again after expiry), a re-inserted flow carries fresh
// timestamps, and is not immediately re-expired by the next sweep.
func TestExpiryReinsertAfterExpiryReusesSlot(t *testing.T) {
	for _, backend := range evictableBackends(t) {
		t.Run(backend, func(t *testing.T) {
			s := expiringTable(t, backend, 1, table.ExpiryConfig{IdleTimeout: 10, SweepBudget: 512})
			s.Advance(1) // anchor the clock base before the first insert
			key := key13(42)
			if _, err := s.Insert(key); err != nil {
				t.Fatal(err)
			}
			if evicted := drain(s, 100, 512, 4096); evicted != 1 {
				t.Fatalf("evicted %d, want 1", evicted)
			}
			if _, ok := s.Lookup(key); ok {
				t.Fatal("expired flow still resident")
			}
			if _, err := s.Insert(key); err != nil {
				t.Fatalf("re-insert after expiry: %v", err)
			}
			if got := s.Len(); got != 1 {
				t.Fatalf("Len after expire+re-insert = %d, want 1", got)
			}
			// The fresh timestamps must protect it from the next sweep.
			if evicted := drain(s, 105, 512, 4096); evicted != 0 {
				t.Fatalf("fresh re-insert swept away (%d evictions at t=105)", evicted)
			}
			if _, ok := s.Lookup(key); !ok {
				t.Fatal("re-inserted flow missing")
			}
		})
	}
}

// TestExpiryReinsertRefillsFullStructure drives slot reuse at full-bucket
// granularity on the structure least tolerant of leaks: a single-hash
// table filled to overflow only re-accepts its population if the sweep
// genuinely freed the physical slots.
func TestExpiryReinsertRefillsFullStructure(t *testing.T) {
	s, err := table.NewSharded("singlehash", 1, table.Config{Capacity: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10, SweepBudget: 1024}); err != nil {
		t.Fatal(err)
	}
	s.Advance(1) // anchor the clock base before the first insert
	// Fill until the structure rejects inserts (buckets full).
	var resident [][]byte
	for i := uint64(0); i < 4096 && len(resident) < 64; i++ {
		if _, err := s.Insert(key13(i)); err == nil {
			resident = append(resident, key13(i))
		}
	}
	if len(resident) == 0 {
		t.Fatal("nothing inserted")
	}
	if evicted := drain(s, 1000, 1024, 4096); evicted != len(resident) {
		t.Fatalf("evicted %d of %d", evicted, len(resident))
	}
	// Every previously resident key must fit again — the exact slots the
	// population occupied have been reclaimed.
	for _, k := range resident {
		if _, err := s.Insert(k); err != nil {
			t.Fatalf("slot not reusable after expiry: %v", err)
		}
	}
	if got := s.Len(); got != len(resident) {
		t.Fatalf("Len after refill = %d, want %d", got, len(resident))
	}
}

// TestExpirySteadyStateChurn is the tentpole's headline property at table
// level: a flow population far larger than what fits stays insertable
// indefinitely because the sweep reclaims idle entries — the workload
// class that saturates every backend without the lifecycle layer.
func TestExpirySteadyStateChurn(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 512, CAMCapacity: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 256, SweepBudget: 256}); err != nil {
		t.Fatal(err)
	}
	// 8× more distinct flows than capacity, inserted in waves; each wave
	// advances the clock past the previous wave's idle window.
	const waves, perWave = 32, 128
	var failed int
	for w := 0; w < waves; w++ {
		now := int64(w) * 200
		for i := 0; i < 4; i++ { // several sweep steps per wave
			s.Advance(now + int64(i))
		}
		keys := keys13(uint64(w%8)*4096, uint64(w%8)*4096+perWave)
		_, errs := s.InsertBatch(keys)
		if errs != nil {
			for _, e := range errs {
				if e != nil {
					failed++
				}
			}
		}
	}
	if failed > 0 {
		t.Fatalf("%d inserts failed across %d waves of %d flows into a 512-slot table; expiry should sustain the churn",
			failed, waves, perWave)
	}
	if st := s.ExpiryStats(); st.Evicted == 0 {
		t.Fatal("no evictions recorded; the table should have recycled aggressively")
	}
}

// TestExpiryRequiresEvictableBackend pins the error path: the byte-key
// fallback backend has no slot-addressed interface, so EnableExpiry must
// refuse it rather than silently never expiring.
func TestExpiryRequiresEvictableBackend(t *testing.T) {
	s, err := table.NewSharded("testplain", 2, table.Config{Capacity: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10}); err == nil {
		t.Fatal("EnableExpiry accepted a backend without EvictableBackend")
	}
}

// TestExpiryConfigValidation covers the config error paths and the
// enable-twice / enable-on-nonempty guards.
func TestExpiryConfigValidation(t *testing.T) {
	if err := (table.ExpiryConfig{}).Validate(); err == nil {
		t.Fatal("all-zero ExpiryConfig validated")
	}
	if err := (table.ExpiryConfig{IdleTimeout: -1}).Validate(); err == nil {
		t.Fatal("negative idle timeout validated")
	}
	s, err := table.NewSharded("hashcam", 1, table.Config{Capacity: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(key13(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10}); err == nil {
		t.Fatal("EnableExpiry accepted a non-empty table")
	}
	if !s.ExpiryEnabled() {
		s.Delete(key13(1))
		if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10}); err != nil {
			t.Fatal(err)
		}
		if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10}); err == nil {
			t.Fatal("EnableExpiry accepted a second enable")
		}
	}
}

// TestWalkerContracts exercises the EvictableBackend surface of every
// registered backend directly: bounds are dense, walks visit exactly the
// occupied slots, AppendSlotKey round-trips stored keys, and DeleteSlot
// reclaims without disturbing other entries.
func TestWalkerContracts(t *testing.T) {
	for _, backend := range evictableBackends(t) {
		t.Run(backend, func(t *testing.T) {
			be, err := table.New(backend, table.Config{Capacity: 1024})
			if err != nil {
				t.Fatal(err)
			}
			ebe := be.(table.EvictableBackend)
			keys := keys13(0, 300)
			ids := map[uint64][]byte{}
			for _, k := range keys {
				id, err := be.Insert(k)
				if err != nil {
					t.Fatal(err)
				}
				ids[id] = k
			}
			bound := ebe.SlotIDBound()
			// One full lap from 0 must visit every stored entry once.
			seen := map[uint64]bool{}
			cursor := uint64(0)
			for {
				var wrapped bool
				cursor, wrapped = ebe.WalkSlots(cursor, 64, func(slot uint64) bool {
					if slot >= bound {
						t.Fatalf("slot %d out of bound %d", slot, bound)
					}
					if seen[slot] {
						t.Fatalf("slot %d visited twice in one lap", slot)
					}
					seen[slot] = true
					key, ok := ebe.AppendSlotKey(nil, slot)
					if !ok {
						t.Fatalf("occupied slot %d has no key", slot)
					}
					if want, stored := ids[slot], key; !bytes.Equal(want, stored) {
						t.Fatalf("slot %d key %x, inserted %x", slot, stored, want)
					}
					return true
				})
				if wrapped {
					break
				}
			}
			if len(seen) != len(ids) {
				t.Fatalf("walk found %d occupied slots, inserted %d", len(seen), len(ids))
			}
			// DeleteSlot reclaims exactly the targeted entry.
			victim := keys[137]
			vid, ok := be.Lookup(victim)
			if !ok {
				t.Fatal("victim missing")
			}
			if !ebe.DeleteSlot(vid) {
				t.Fatal("DeleteSlot on occupied slot returned false")
			}
			if ebe.DeleteSlot(vid) {
				t.Fatal("DeleteSlot on freed slot returned true")
			}
			if _, ok := be.Lookup(victim); ok {
				t.Fatal("victim still resident after DeleteSlot")
			}
			if got, want := be.Len(), len(keys)-1; got != want {
				t.Fatalf("Len after DeleteSlot = %d, want %d", got, want)
			}
			if _, ok := ebe.AppendSlotKey(nil, vid); ok {
				t.Fatal("AppendSlotKey on freed slot returned a key")
			}
		})
	}
}

// TestCuckooRelocationMovesTimestamps pins the RelocatingBackend wiring:
// kick-chain moves must carry timestamps along, so a hot flow that gets
// relocated by someone else's insert is not retired as idle. The geometry
// (1 slot per bucket) makes kicks deterministic and frequent.
func TestCuckooRelocationMovesTimestamps(t *testing.T) {
	s, err := table.NewSharded("cuckoo", 1, table.Config{Capacity: 64, SlotsPerBucket: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 100, SweepBudget: 1024}); err != nil {
		t.Fatal(err)
	}
	var expired [][]byte
	s.OnExpired(func(_ uint64, key []byte, _, _ int64, _ table.ExpireReason) {
		expired = append(expired, append([]byte(nil), key...))
	})
	s.Advance(0)
	// Fill to a load where kick chains certainly occur, touching all keys
	// as we go (insert stamps them at their current Advance time).
	var keys [][]byte
	for i := uint64(0); len(keys) < 48; i++ {
		k := key13(i)
		if _, err := s.Insert(k); err == nil {
			keys = append(keys, k)
		}
	}
	// Keep everything hot at t=90, then sweep at t=120: idle ages are 30,
	// well under the 100 timeout — nothing may expire, even flows whose
	// slots changed under cuckoo kicks since their stamps.
	s.Advance(90)
	for _, k := range keys {
		if _, ok := s.Lookup(k); !ok {
			t.Fatalf("key %x lost (cuckoo failure unrelated to expiry)", k)
		}
	}
	if evicted := drain(s, 120, 1024, 4096); evicted != 0 {
		t.Fatalf("%d hot flows expired after relocation: %v", evicted, expired)
	}
	// And the converse: at t=200 every flow's idle age is 110 > 100.
	if evicted := drain(s, 200, 1024, 4096); evicted != len(keys) {
		t.Fatalf("evicted %d of %d idle flows", evicted, len(keys))
	}
}

// TestExpirySweepBudgetBoundsLockHold checks the incremental contract: a
// single Advance examines at most SweepBudget slots per shard, so
// reclaiming a large idle population takes multiple calls.
func TestExpirySweepBudgetBoundsLockHold(t *testing.T) {
	s := expiringTable(t, "hashcam", 1, table.ExpiryConfig{IdleTimeout: 10, SweepBudget: 64})
	s.Advance(1) // anchor the clock base before the first insert
	keys := keys13(0, 512)
	if _, errs := s.InsertBatch(keys); errs != nil {
		t.Fatal(table.BatchErr(errs))
	}
	total := 0
	calls := 0
	for total < len(keys) {
		n := s.Advance(1000)
		if n > 64 {
			t.Fatalf("one Advance evicted %d flows, budget is 64 slots", n)
		}
		total += n
		if calls++; calls > 10000 {
			t.Fatalf("sweep failed to drain: %d of %d after %d calls", total, len(keys), calls)
		}
	}
	if calls < len(keys)/64 {
		t.Fatalf("drained %d flows in %d calls; budget 64 should need >= %d", len(keys), calls, len(keys)/64)
	}
	if st := s.ExpiryStats(); st.SlotsExamined < int64(calls*64)/2 {
		t.Fatalf("stats %+v do not reflect %d budgeted sweeps", st, calls)
	}
}

// TestExpiryLargeStartingClock is the regression test for the
// pre-first-Advance mass-expiry bug: a caller whose logical clock starts
// away from 0 (e.g. wall-clock nanoseconds) must not see its warm-up
// population — everything inserted before the first Advance — retired on
// the first sweep. Epoch 0 has no recorded clock of its own, so those
// stamps are treated as "inserted at the first observed clock".
func TestExpiryLargeStartingClock(t *testing.T) {
	const epoch0 = int64(1_700_000_000_000_000_000) // wall nanos
	s := expiringTable(t, "hashcam", 2, table.ExpiryConfig{IdleTimeout: 100, ActiveTimeout: 1000, SweepBudget: 512})
	keys := keys13(0, 64)
	if _, errs := s.InsertBatch(keys); errs != nil {
		t.Fatal(table.BatchErr(errs))
	}
	// Sweeps inside the idle window relative to the first observed clock
	// must evict nothing, no matter how large the absolute value is.
	if evicted := drain(s, epoch0, 512, 4096); evicted != 0 {
		t.Fatalf("first Advance mass-expired %d warm-up flows", evicted)
	}
	if evicted := drain(s, epoch0+50, 512, 4096); evicted != 0 {
		t.Fatalf("sweep inside the idle window evicted %d flows", evicted)
	}
	if got := s.Len(); got != len(keys) {
		t.Fatalf("Len %d after warm-up sweeps, want %d", got, len(keys))
	}
	// Past the idle window the ordinary lifecycle applies.
	if evicted := drain(s, epoch0+200, 512, 4096); evicted != len(keys) {
		t.Fatalf("evicted %d flows past the idle window, want %d", evicted, len(keys))
	}
}

// TestExpiryAdvanceClockNeverRewinds pins the monotonic-clock guard: a
// stale Advance(now) must not rewind the published clock.
func TestExpiryAdvanceClockNeverRewinds(t *testing.T) {
	s := expiringTable(t, "hashcam", 1, table.ExpiryConfig{IdleTimeout: 10})
	s.Advance(100)
	s.Advance(50)
	if got := s.Now(); got != 100 {
		t.Fatalf("clock rewound to %d, want 100", got)
	}
}

// walkBits is a minimal SlotSpace over a bitmap, for exercising
// WalkLinear's edges directly.
type walkBits []bool

// SlotOccupied implements table.SlotSpace.
func (w walkBits) SlotOccupied(id uint64) bool { return w[id] }

// TestWalkLinearEdges pins the shared walker core: the budget clamp (one
// lap per call, never re-scanning), cursor normalisation, wrap reporting,
// and the early-exit cursor.
func TestWalkLinearEdges(t *testing.T) {
	bits := walkBits{true, false, true, true}
	collect := func(cursor uint64, budget int) (visited []uint64, next uint64, wrapped bool) {
		next, wrapped = table.WalkLinear(bits, uint64(len(bits)), cursor, budget, func(s uint64) bool {
			visited = append(visited, s)
			return true
		})
		return visited, next, wrapped
	}
	// Budget far beyond the bound: exactly one lap, no duplicates.
	visited, next, wrapped := collect(0, 1000)
	if len(visited) != 3 || !wrapped || next != 0 {
		t.Fatalf("full lap visited %v (next %d, wrapped %v), want [0 2 3] once", visited, next, wrapped)
	}
	// Out-of-range cursor normalises to 0.
	if visited, _, _ := collect(99, 2); len(visited) != 1 || visited[0] != 0 {
		t.Fatalf("cursor normalisation visited %v, want [0]", visited)
	}
	// Budgeted partial walk resumes where it stopped.
	visited, next, wrapped = collect(1, 2)
	if len(visited) != 1 || visited[0] != 2 || next != 3 || wrapped {
		t.Fatalf("partial walk visited %v (next %d, wrapped %v), want [2] next 3", visited, next, wrapped)
	}
	// Early exit: fn returning false stops the walk, cursor lands after
	// the visited slot; stopping on the last slot reports the wrap.
	stops := 0
	next, wrapped = table.WalkLinear(bits, uint64(len(bits)), 3, 4, func(s uint64) bool {
		stops++
		return false
	})
	if stops != 1 || next != 0 || !wrapped {
		t.Fatalf("early exit at slot 3: %d visits, next %d, wrapped %v", stops, next, wrapped)
	}
	next, wrapped = table.WalkLinear(bits, uint64(len(bits)), 2, 4, func(s uint64) bool { return false })
	if next != 3 || wrapped {
		t.Fatalf("early exit at slot 2: next %d wrapped %v, want 3 false", next, wrapped)
	}
	// Empty slot space is a no-op lap.
	if next, wrapped := table.WalkLinear(walkBits{}, 0, 5, 10, func(uint64) bool { return true }); next != 0 || !wrapped {
		t.Fatalf("empty space: next %d wrapped %v", next, wrapped)
	}
}

// TestExpiryReasonString covers the reason formatter.
func TestExpiryReasonString(t *testing.T) {
	if table.ExpireIdle.String() != "idle" || table.ExpireActive.String() != "active" {
		t.Fatal("reason names changed")
	}
	if s := table.ExpireReason(99).String(); s != fmt.Sprintf("ExpireReason(%d)", 99) {
		t.Fatalf("unknown reason renders %q", s)
	}
}

// TestExpiryEpochRingSaturation pins the coarse edge of the
// epoch-quantised timestamps: a flow untouched for more than the epoch
// ring's depth of clock-moving Advances has an unknowable true age and
// must be retired on sight — even when its configured timeout is far
// larger than the elapsed clock — rather than leak. The reported
// timestamps clamp to the oldest retained epoch's time.
func TestExpiryEpochRingSaturation(t *testing.T) {
	const ring = 4096 // keep in sync with table.epochRing
	s := expiringTable(t, "hashcam", 1, table.ExpiryConfig{IdleTimeout: 1 << 40, SweepBudget: 8192})
	var reported []int64
	s.OnExpired(func(_ uint64, _ []byte, first, last int64, reason table.ExpireReason) {
		if reason != table.ExpireIdle {
			t.Errorf("reason %v, want idle (idle-only config)", reason)
		}
		reported = append(reported, first, last)
	})
	if _, err := s.Insert(key13(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(key13(1)); !ok { // touches at epoch 0; idle ever after
		t.Fatal("flow missing right after insert")
	}
	// While the stamp is within the ring, the huge timeout protects it.
	for now := int64(1); now <= ring-100; now++ {
		if s.Advance(now) != 0 {
			t.Fatalf("flow expired at t=%d, within the epoch ring and under timeout", now)
		}
	}
	// Push the stamp out of the ring: it must now be retired on sight.
	evicted := 0
	for now := int64(ring - 99); now <= ring+200 && evicted == 0; now++ {
		evicted = s.Advance(now)
	}
	if evicted != 1 {
		t.Fatal("flow untouched beyond the epoch ring never expired (leak)")
	}
	if len(reported) != 2 {
		t.Fatalf("callback fired %d times", len(reported)/2)
	}
	for _, ts := range reported {
		if ts <= 0 || ts > ring+200 {
			t.Fatalf("clamped timestamp %d outside the retained window", ts)
		}
	}
}

// TestBytesPerSlot covers the storage gauge: canonical backends report a
// plausible per-slot cost that grows when the expiry side-tables are
// enabled, and the byte-key fallback (no footprint interface) reports 0.
func TestBytesPerSlot(t *testing.T) {
	s, err := table.NewSharded("hashcam", 2, table.Config{Capacity: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := s.BytesPerSlot()
	// 13 inline key bytes + 1 tag per slot, plus CAM values and padding
	// (fractionally under 14: the CAM's value array is counted against the
	// whole slot space until its arena exists).
	if base < 13.5 || base > 32 {
		t.Fatalf("hashcam BytesPerSlot = %.1f, want ~14", base)
	}
	if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 10}); err != nil {
		t.Fatal(err)
	}
	withExp := s.BytesPerSlot()
	// The epoch side-tables add 2×uint32 = 8 bytes per slot.
	if withExp < base+7.5 || withExp > base+8.5 {
		t.Fatalf("BytesPerSlot with expiry = %.1f, want %.1f + ~8", withExp, base)
	}
	plain, err := table.NewSharded("testplain", 1, table.Config{Capacity: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.BytesPerSlot(); got != 0 {
		t.Fatalf("testplain BytesPerSlot = %.1f, want 0 (no footprint interface)", got)
	}
	for _, backend := range evictableBackends(t) {
		be, err := table.NewSharded(backend, 1, table.Config{Capacity: 1024}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := be.BytesPerSlot(); got < 13.5 {
			t.Fatalf("%s BytesPerSlot = %.1f, below the inline key + tag floor", backend, got)
		}
	}
}
