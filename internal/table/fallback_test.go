package table_test

import (
	"errors"
	"testing"

	"repro/internal/hashfn"
	"repro/internal/table"
)

// plainOnly embeds a Backend interface value, so its method set is exactly
// Backend: any hashed fast path of the wrapped structure is hidden. Since
// every real registered backend now implements HashedBackend, this
// test-only wrapper is what keeps Sharded's byte-key fallback — still the
// contract for out-of-tree backends — exercised and covered.
type plainOnly struct{ table.Backend }

func init() {
	table.Register("testplain", func(cfg table.Config) (table.Backend, error) {
		be, err := table.New("hashcam", cfg)
		if err != nil {
			return nil, err
		}
		return plainOnly{be}, nil
	})
}

// TestPlainWrapperHasNoHashedPath guards the premise of the fallback
// coverage: the wrapper must NOT satisfy HashedBackend, while all five
// canonical backends must (the acceptance bar of the hashed fast path).
func TestPlainWrapperHasNoHashedPath(t *testing.T) {
	cfg := table.Config{Capacity: 1024}
	be, err := table.New("testplain", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(table.HashedBackend); ok {
		t.Fatal("plainOnly leaked a hashed fast path; fallback tests are vacuous")
	}
	for _, name := range canonicalBackends {
		cbe, err := table.New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cbe.(table.HashedBackend); !ok {
			t.Fatalf("canonical backend %q does not implement table.HashedBackend", name)
		}
	}
}

// canonicalBackends are the five real structures; every one must carry the
// hashed fast path.
var canonicalBackends = []string{"convhashcam", "cuckoo", "dleft", "hashcam", "singlehash"}

// TestShardedCustomSelectorRouting covers the selector-routed
// configuration: with a caller-chosen selector the shard choice must come
// from the selector hash (stable against an independently computed
// reference), while hashed backends still consume precomputed KeyHashes.
// Scalar and batch paths must agree with an unsharded reference table.
func TestShardedCustomSelectorRouting(t *testing.T) {
	sel := &hashfn.Mix64{Seed: 99}
	cfg := table.Config{Capacity: 1 << 12}
	for _, backend := range []string{"hashcam", "testplain"} {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 4, cfg, sel)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := table.New(backend, cfg)
			if err != nil {
				t.Fatal(err)
			}
			keys := keys13(0, 800)
			ids, errs := s.InsertBatch(keys)
			if errs != nil {
				t.Fatal(table.BatchErr(errs))
			}
			for i, k := range keys {
				if _, err := ref.Insert(k); err != nil {
					t.Fatalf("ref insert %d: %v", i, err)
				}
				// The encoded shard must be the selector's choice.
				shard, _ := s.DecodeID(ids[i])
				if want := hashfn.Reduce(sel.Hash(k), 4); shard != want {
					t.Fatalf("key %d routed to shard %d, selector says %d", i, shard, want)
				}
			}
			// Scalar ops must land on the same shards (same IDs) as the batch.
			for i, k := range keys {
				id, ok := s.Lookup(k)
				if !ok || id != ids[i] {
					t.Fatalf("key %d: scalar lookup (%d,%v), batch inserted %d", i, id, ok, ids[i])
				}
			}
			bids := make([]uint64, len(keys))
			hits := make([]bool, len(keys))
			s.LookupBatchInto(keys, bids, hits)
			for i := range keys {
				if !hits[i] || bids[i] != ids[i] {
					t.Fatalf("key %d: batched lookup (%d,%v) disagrees with insert ID %d", i, bids[i], hits[i], ids[i])
				}
			}
			if s.Len() != ref.Len() {
				t.Fatalf("Len: sharded %d vs reference %d", s.Len(), ref.Len())
			}
			// Scalar insert/delete through the selector route.
			extra := key13(1 << 30)
			if _, err := s.Insert(extra); err != nil {
				t.Fatal(err)
			}
			if !s.Delete(extra) {
				t.Fatal("freshly inserted key not deleted")
			}
			oks := make([]bool, len(keys))
			s.DeleteBatchInto(keys, oks)
			for i, ok := range oks {
				if !ok {
					t.Fatalf("key %d not deleted", i)
				}
			}
			if s.Probes() == 0 {
				t.Fatal("probe accounting lost under selector routing")
			}
			if s.Name() == "" {
				t.Fatal("empty sharded name")
			}
		})
	}
}

// TestRegisterContractPanics pins the registry's init-time error handling.
func TestRegisterContractPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("empty name", func() { table.Register("", func(table.Config) (table.Backend, error) { return nil, nil }) })
	expectPanic("nil constructor", func() { table.Register("nilctor", nil) })
	expectPanic("duplicate", func() {
		table.Register("hashcam", func(table.Config) (table.Backend, error) { return nil, nil })
	})
}

// TestBatchErr covers both collapse directions.
func TestBatchErr(t *testing.T) {
	if err := table.BatchErr(nil); err != nil {
		t.Fatalf("BatchErr(nil) = %v", err)
	}
	errs := []error{nil, table.ErrTableFull, nil}
	err := table.BatchErr(errs)
	if !errors.Is(err, table.ErrTableFull) {
		t.Fatalf("BatchErr lost the per-key failure: %v", err)
	}
}
