package table_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	_ "repro/internal/baseline" // register every backend
	"repro/internal/table"
)

func key13(i uint64) []byte {
	k := make([]byte, 13)
	binary.LittleEndian.PutUint64(k, i)
	return k
}

func keys13(lo, hi uint64) [][]byte {
	out := make([][]byte, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, key13(i))
	}
	return out
}

// keyN builds an n-byte key whose tail bytes also vary with i, so
// oversized (spill-path) keys differ beyond the first word.
func keyN(i uint64, n int) []byte {
	k := make([]byte, n)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[n-8:], i^0x9e3779b97f4a7c15)
	return k
}

func TestRegistryListsCanonicalBackends(t *testing.T) {
	have := map[string]bool{}
	for _, name := range table.Backends() {
		have[name] = true
	}
	for _, want := range []string{"hashcam", "convhashcam", "cuckoo", "dleft", "singlehash"} {
		if !have[want] {
			t.Errorf("backend %q not registered (have %v)", want, table.Backends())
		}
	}
}

func TestRegistryUnknownBackend(t *testing.T) {
	if _, err := table.New("no-such-structure", table.Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestEveryBackendSatisfiesContract(t *testing.T) {
	for _, name := range table.Backends() {
		t.Run(name, func(t *testing.T) {
			be, err := table.New(name, table.Config{Capacity: 4096})
			if err != nil {
				t.Fatal(err)
			}
			k := key13(42)
			if _, ok := be.Lookup(k); ok {
				t.Fatal("hit on empty table")
			}
			id, err := be.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := be.Lookup(k); !ok || got != id {
				t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
			}
			if be.Len() != 1 {
				t.Fatalf("Len = %d, want 1", be.Len())
			}
			if !be.Delete(k) {
				t.Fatal("Delete missed")
			}
			if be.Name() == "" {
				t.Fatal("empty Name")
			}
			if be.Probes() <= 0 {
				t.Fatal("probe accounting inactive")
			}
		})
	}
}

func TestShardedBasicSemantics(t *testing.T) {
	s, err := table.NewSharded("hashcam", 4, table.Config{Capacity: 8192}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if _, err := s.Insert(key13(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		id, ok := s.Lookup(key13(i))
		if !ok {
			t.Fatalf("key %d lost", i)
		}
		shard, _ := s.DecodeID(id)
		if shard < 0 || shard >= s.ShardCount() {
			t.Fatalf("key %d decoded to shard %d of %d", i, shard, s.ShardCount())
		}
	}
	// Shard balance: the independent selector should spread uniformly.
	for i, l := range s.ShardLens() {
		if l < n/8 || l > n/2 {
			t.Fatalf("shard %d holds %d of %d entries: %v", i, l, n, s.ShardLens())
		}
	}
	for i := uint64(0); i < n; i++ {
		if !s.Delete(key13(i)) {
			t.Fatalf("delete %d missed", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", s.Len())
	}
}

func TestShardedBatchMatchesScalarOps(t *testing.T) {
	s, err := table.NewSharded("hashcam", 8, table.Config{Capacity: 8192}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 3000)
	ids, errs := s.InsertBatch(keys)
	if errs != nil {
		t.Fatalf("insert batch: %v", table.BatchErr(errs))
	}
	// Batch results must be positional and match scalar lookups.
	gotIDs, hits := s.LookupBatch(keys)
	for i := range keys {
		if !hits[i] || gotIDs[i] != ids[i] {
			t.Fatalf("key %d: batch lookup (%d,%v), insert said %d", i, gotIDs[i], hits[i], ids[i])
		}
		id, ok := s.Lookup(keys[i])
		if !ok || id != ids[i] {
			t.Fatalf("key %d: scalar lookup (%d,%v) disagrees with batch %d", i, id, ok, ids[i])
		}
	}
	// Misses interleaved with hits stay positional.
	mixed := [][]byte{keys[5], key13(1 << 40), keys[7], key13(2 << 40)}
	_, mhits := s.LookupBatch(mixed)
	want := []bool{true, false, true, false}
	for i := range want {
		if mhits[i] != want[i] {
			t.Fatalf("mixed batch hits = %v, want %v", mhits, want)
		}
	}
	del := s.DeleteBatch(mixed)
	for i := range want {
		if del[i] != want[i] {
			t.Fatalf("mixed batch deletes = %v, want %v", del, want)
		}
	}
	if s.Len() != len(keys)-2 {
		t.Fatalf("Len = %d after batch delete, want %d", s.Len(), len(keys)-2)
	}
}

// TestShardedMatchesUnshardedResults is the determinism check: a sharded
// engine must return exactly the same hit/miss observations as an
// unsharded one over the same operation sequence (IDs are
// encoding-specific, membership is not).
func TestShardedMatchesUnshardedResults(t *testing.T) {
	for _, backend := range []string{"hashcam", "dleft"} {
		t.Run(backend, func(t *testing.T) {
			cfg := table.Config{Capacity: 1 << 14}
			single, err := table.NewSharded(backend, 1, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := table.NewSharded(backend, 8, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			// A deterministic mixed sequence: inserts, lookups of present
			// and absent keys, deletes of a third of the population.
			const n = 5000
			for i := uint64(0); i < n; i++ {
				if _, err := single.Insert(key13(i)); err != nil {
					t.Fatalf("single insert %d: %v", i, err)
				}
				if _, err := sharded.Insert(key13(i)); err != nil {
					t.Fatalf("sharded insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i += 3 {
				a := single.Delete(key13(i))
				b := sharded.Delete(key13(i))
				if a != b {
					t.Fatalf("delete %d: single=%v sharded=%v", i, a, b)
				}
			}
			for i := uint64(0); i < 2*n; i++ {
				_, okA := single.Lookup(key13(i))
				_, okB := sharded.Lookup(key13(i))
				if okA != okB {
					t.Fatalf("lookup %d: single=%v sharded=%v", i, okA, okB)
				}
			}
			if single.Len() != sharded.Len() {
				t.Fatalf("Len: single=%d sharded=%d", single.Len(), sharded.Len())
			}
		})
	}
}

// TestShardedConcurrentStress drives concurrent Insert/Lookup/Delete from
// many goroutines over overlapping key ranges; run under -race this is
// the engine's data-race certificate. Each worker owns a disjoint key
// range for insert/delete correctness checks while all workers read the
// whole space.
func TestShardedConcurrentStress(t *testing.T) {
	for _, backend := range []string{"hashcam", "cuckoo"} {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 8, table.Config{Capacity: 1 << 15}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const (
				workers = 8
				perW    = 1500
				rounds  = 3
			)
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w * perW)
					for r := 0; r < rounds; r++ {
						for i := uint64(0); i < perW; i++ {
							if _, err := s.Insert(key13(base + i)); err != nil {
								errCh <- fmt.Errorf("worker %d insert %d: %w", w, base+i, err)
								return
							}
						}
						// Read across everyone's range while others write.
						for i := uint64(0); i < workers*perW; i += 7 {
							s.Lookup(key13(i))
						}
						// Batch ops run concurrently with scalar ops.
						keys := keys13(base, base+perW)
						_, hits := s.LookupBatch(keys)
						for i, ok := range hits {
							if !ok {
								errCh <- fmt.Errorf("worker %d: own key %d vanished", w, base+uint64(i))
								return
							}
						}
						if r < rounds-1 {
							for _, ok := range s.DeleteBatch(keys) {
								if !ok {
									errCh <- fmt.Errorf("worker %d: delete missed own key", w)
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if got, want := s.Len(), workers*perW; got != want {
				t.Fatalf("Len = %d after stress, want %d", got, want)
			}
		})
	}
}

func TestShardedSingleShardDegeneratesToBackend(t *testing.T) {
	s, err := table.NewSharded("singlehash", 1, table.Config{Capacity: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
	id, err := s.Insert(key13(9))
	if err != nil {
		t.Fatal(err)
	}
	shard, local := s.DecodeID(id)
	if shard != 0 {
		t.Fatalf("shard = %d, want 0", shard)
	}
	if got, ok := s.Lookup(key13(9)); !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	_ = local
}

func TestShardedInsertBatchSurfacesPerKeyErrors(t *testing.T) {
	// A tiny single-hash table overflows quickly; the batch must report
	// which keys failed and still place the others.
	s, err := table.NewSharded("singlehash", 2, table.Config{Capacity: 8, SlotsPerBucket: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := keys13(0, 64)
	ids, errs := s.InsertBatch(keys)
	if errs == nil {
		t.Fatal("expected overflow errors from a 8-entry table under 64 inserts")
	}
	failed := 0
	for i, e := range errs {
		if e != nil {
			failed++
			if !errors.Is(e, table.ErrTableFull) {
				t.Fatalf("key %d error = %v, want ErrTableFull", i, e)
			}
			if ids[i] != 0 {
				t.Fatalf("key %d failed but id = %d", i, ids[i])
			}
		}
	}
	if failed == 0 || failed == len(keys) {
		t.Fatalf("failed = %d of %d, expected a partial batch", failed, len(keys))
	}
	if err := table.BatchErr(errs); err == nil {
		t.Fatal("BatchErr returned nil for a failing batch")
	}
}

func TestNewShardedRejectsBadArguments(t *testing.T) {
	if _, err := table.NewSharded("hashcam", 0, table.Config{}, nil); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := table.NewSharded("bogus", 2, table.Config{}, nil); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

// TestHugeCapacityRejectedNotHung pins the BucketsFor overflow guard: an
// absurd capacity must error out, not spin the bucket-doubling loop
// forever.
func TestHugeCapacityRejectedNotHung(t *testing.T) {
	if _, err := table.New("hashcam", table.Config{Capacity: 1 << 62}); err == nil {
		t.Fatal("capacity 1<<62 accepted")
	}
	// At the boundary the derivation must terminate (clamped geometry).
	if n := (table.Config{Capacity: table.MaxCapacity}).BucketsFor(2); n <= 0 {
		t.Fatalf("BucketsFor at MaxCapacity = %d", n)
	}
}

// TestShardedCAMHeadroomMatchesUnsharded pins the per-shard CAM division:
// N shards must not get N× the collision headroom of the unsharded table.
func TestShardedCAMHeadroomMatchesUnsharded(t *testing.T) {
	// SlotsPerBucket 1 and a tiny capacity make CAM overflow easy to hit.
	cfg := table.Config{Capacity: 64, SlotsPerBucket: 1, CAMCapacity: 8}
	fill := func(s *table.Sharded) int {
		placed := 0
		for i := uint64(0); i < 4096; i++ {
			if _, err := s.Insert(key13(i)); err != nil {
				break
			}
			placed++
		}
		return placed
	}
	single, err := table.NewSharded("hashcam", 1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := table.NewSharded("hashcam", 8, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fill(single), fill(sharded)
	// Identical geometry split 8 ways cannot hold dramatically more than
	// the unsharded table; before the CAM division the sharded variant
	// held an extra 7×CAMCapacity entries.
	if b > a+cfg.CAMCapacity {
		t.Fatalf("sharded placed %d vs unsharded %d — CAM headroom not divided", b, a)
	}
}
