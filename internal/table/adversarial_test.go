package table_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hashfn"
	"repro/internal/table"
)

// TestDifferentialOpStreamKeyedSeeds re-runs the differential harness
// under the keyed hash family: one pinned regression seed plus two drawn
// fresh from the CSPRNG each run, so the bit-identity of the hashed fast
// path is certified across the whole seed space rather than only under
// the fixed CRC pair. The seed is embedded in the subtest name — a
// failure report names the exact seed to replay.
func TestDifferentialOpStreamKeyedSeeds(t *testing.T) {
	seeds := []uint64{0x51eeded, hashfn.RandomSeed(), hashfn.RandomSeed()}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed_%#x", seed), func(t *testing.T) {
			cfg := table.Config{
				Capacity: 512, SlotsPerBucket: 2, CAMCapacity: 16,
				Hash: hashfn.SeededPair(seed),
			}
			runDifferentialOpStream(t, cfg, key13)
		})
	}
}

// TestEvictIdlestRaceStress is the race-detector certificate for the
// overload-degradation path: writers drive continuous pressure evictions
// (rotating oversubscribed spans through InsertBatchInto) while
// optimistic readers probe a resident set and a sweeper runs Advance and
// reads every stats surface. The expiry callback — fired outside the
// shard locks, potentially from several writers at once — must observe
// each victim's key snapshot without racing the pooled scratch it lives
// in. Run under -race in CI.
func TestEvictIdlestRaceStress(t *testing.T) {
	for _, backend := range candidateBackends(t) {
		t.Run(backend, func(t *testing.T) {
			s, err := table.NewSharded(backend, 4, table.Config{Capacity: 2048}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.EnableExpiry(table.ExpiryConfig{IdleTimeout: 1 << 30, SweepBudget: 256}); err != nil {
				t.Fatal(err)
			}
			var callbacks atomic.Int64
			s.OnExpired(func(id uint64, key []byte, first, last int64, reason table.ExpireReason) {
				if reason != table.ExpireEvicted {
					t.Errorf("stress eviction reported reason %v", reason)
				}
				if len(key) != 13 {
					t.Errorf("evicted key snapshot has length %d", len(key))
				}
				callbacks.Add(1)
			})
			if err := s.SetFullPolicy(table.FullEvictIdlest); err != nil {
				t.Fatal(err)
			}
			resident := keys13(0, 1024)
			if _, errs := s.InsertBatch(resident); errs != nil {
				t.Fatal(table.BatchErr(errs))
			}
			// Saturate well past capacity so the policy engages before the
			// concurrent phase begins and every later fresh insert lands on
			// a full structure.
			filler := keys13(1<<24, 1<<24+3072)
			if _, errs := s.InsertBatch(filler); errs != nil {
				for i, e := range errs {
					if e != nil && !errors.Is(e, table.ErrTableFull) {
						t.Fatalf("filler %d: %v", i, e)
					}
				}
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Writers: rotate oversubscribed disjoint spans so inserts keep
			// hitting full buckets and reclaiming idlest slots.
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					const spans, spanLen = 8, 128
					pool := make([][][]byte, spans)
					for sp := range pool {
						base := uint64(1<<20 + w<<16 + sp*spanLen)
						pool[sp] = keys13(base, base+spanLen)
					}
					ids := make([]uint64, spanLen)
					errs := make([]error, spanLen)
					for round := 0; ; round++ {
						select {
						case <-stop:
							return
						default:
						}
						s.InsertBatchInto(pool[round%spans], ids, errs)
						for i, e := range errs {
							// Residual fullness is legal (a cuckoo retry may
							// still fail); anything else is not.
							if e != nil && !errors.Is(e, table.ErrTableFull) {
								t.Errorf("writer %d key %d: %v", w, i, e)
								return
							}
						}
					}
				}(w)
			}
			// Readers: the optimistic lookup path over the preloaded set.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					batch := resident[r*256 : r*256+256]
					ids := make([]uint64, len(batch))
					hits := make([]bool, len(batch))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						s.LookupBatchInto(batch, ids, hits)
						s.Lookup(resident[(i*17+r)%len(resident)])
					}
				}(r)
			}
			// Sweeper: the lifecycle clock plus every stats surface the
			// eviction path also touches.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for now := int64(1); ; now++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Advance(now)
					s.ExpiryStats()
					s.OverloadStats()
					s.Len()
				}
			}()
			deadline := time.Now().Add(150 * time.Millisecond)
			for time.Now().Before(deadline) {
				s.LookupBatch(resident[:256])
			}
			close(stop)
			wg.Wait()

			if got := callbacks.Load(); got == 0 {
				t.Fatal("stress run triggered no pressure evictions; the policy never engaged")
			}
			if os := s.OverloadStats(); os.PressureEvictions != callbacks.Load() {
				t.Fatalf("PressureEvictions %d but %d callbacks fired", os.PressureEvictions, callbacks.Load())
			}
		})
	}
}
