//go:build race

package table_test

// raceEnabled mirrors the build's race-detector state for the seqlock
// tests: under -race the optimistic read path is compiled out
// (seqlockCapable), so assertions about retry counters and path
// engagement only apply to non-race builds.
const raceEnabled = true
