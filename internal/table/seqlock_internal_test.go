package table

import (
	"testing"
	"time"

	"repro/internal/hashfn"
)

// TestSeqlockFallbackDeterministic drives the one schedule the stress
// tests cannot force on demand: a writer that owns a shard for longer
// than the whole retry budget. The test seizes shard 0's write lock and
// stamps the seqlock odd by hand, fires scalar and batched lookups that
// must burn their retries, count a fallback, and park on the RLock, then
// releases the shard and requires every read to complete with correct
// results. Runs only where the optimistic path is compiled in.
func TestSeqlockFallbackDeterministic(t *testing.T) {
	if !seqlockCapable {
		t.Skip("optimistic path compiled out under -race")
	}
	s, err := NewSharded("hashcam", 1, Config{Capacity: 1024, Hash: hashfn.DefaultPair()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.OptimisticReads() {
		t.Fatal("optimistic path off for hashcam on a capable build")
	}
	keys := make([][]byte, 64)
	ids := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = make([]byte, 13)
		keys[i][0], keys[i][1] = byte(i), byte(i>>8)
		id, err := s.Insert(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	sh := &s.shards[0]
	sh.mu.Lock()
	sh.beginWrite() // seq odd: every lock-free attempt must be refused

	type result struct {
		id uint64
		ok bool
	}
	scalar := make(chan result, 1)
	batch := make(chan []uint64, 1)
	go func() {
		id, ok := s.Lookup(keys[3])
		scalar <- result{id, ok}
	}()
	go func() {
		got, hits := s.LookupBatch(keys)
		for i := range hits {
			if !hits[i] {
				got = nil
				break
			}
		}
		batch <- got
	}()

	// Both readers must exhaust seqlockAttempts refused probes, record a
	// fallback, and block on the held RLock — observable as the retry and
	// fallback counters settling while neither channel delivers.
	deadline := time.After(2 * time.Second)
	for sh.fallbacks.Load() < 2 {
		select {
		case <-deadline:
			t.Fatalf("readers did not fall back while the shard was write-held (retries %d, fallbacks %d)",
				sh.gretries.Load(), sh.fallbacks.Load())
		case r := <-scalar:
			t.Fatalf("scalar read completed (%d,%v) while the writer held the shard", r.id, r.ok)
		case got := <-batch:
			t.Fatalf("batch read completed (%v) while the writer held the shard", got)
		case <-time.After(time.Millisecond):
		}
	}
	if got := sh.gretries.Load(); got < 2*seqlockAttempts {
		t.Fatalf("global retries %d, want at least %d (both readers × full budget)", got, 2*seqlockAttempts)
	}

	sh.endWrite()
	sh.mu.Unlock()

	if r := <-scalar; !r.ok || r.id != ids[3] {
		t.Fatalf("scalar fallback read (%d,%v), want (%d,true)", r.id, r.ok, ids[3])
	}
	got := <-batch
	if got == nil {
		t.Fatal("batch fallback read lost hits")
	}
	for i := range keys {
		if got[i] != ids[i] {
			t.Fatalf("batch fallback key %d: ID %d, want %d", i, got[i], ids[i])
		}
	}
	st := s.ReadStats()
	if !st.Optimistic || st.Fallbacks < 2 || st.Retries < 2*seqlockAttempts {
		t.Fatalf("ReadStats %+v does not reflect the forced fallbacks", st)
	}

	// The toggle must drain back to pure RLock reads and return cleanly.
	if s.SetOptimisticReads(false) {
		t.Fatal("SetOptimisticReads(false) reported the path still on")
	}
	before := s.ReadStats()
	if id, ok := s.Lookup(keys[5]); !ok || id != ids[5] {
		t.Fatalf("locked-path lookup (%d,%v), want (%d,true)", id, ok, ids[5])
	}
	if after := s.ReadStats(); after.Retries != before.Retries || after.Fallbacks != before.Fallbacks {
		t.Fatal("locked-path lookup moved the seqlock counters")
	}
	if !s.SetOptimisticReads(true) {
		t.Fatal("SetOptimisticReads(true) failed to re-enable a capable table")
	}
}

// TestSeqlockBatchMidSubBatchFallback pins the batch fallback's resume
// point: when the retry budget dies at plan position pi, the locked
// resume must re-resolve exactly the positions from pi on — the earlier
// ones already validated. The concurrent half forces the fallback against
// a writer-held shard; the direct half calls the locked resume with a
// nonzero start position and requires the handled/untouched split to land
// exactly at it.
func TestSeqlockBatchMidSubBatchFallback(t *testing.T) {
	if !seqlockCapable {
		t.Skip("optimistic path compiled out under -race")
	}
	s, err := NewSharded("cuckoo", 1, Config{Capacity: 1024, Hash: hashfn.DefaultPair()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, 128)
	want := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = make([]byte, 13)
		keys[i][2], keys[i][3] = byte(i), 0xa5
		id, err := s.Insert(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = id
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	sh.beginWrite()
	done := make(chan struct{})
	var ids []uint64
	var hits []bool
	go func() {
		ids, hits = s.LookupBatch(keys)
		close(done)
	}()
	for sh.fallbacks.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	sh.endWrite()
	sh.mu.Unlock()
	<-done
	for i := range keys {
		if !hits[i] || ids[i] != want[i] {
			t.Fatalf("key %d after mid-batch fallback: (%d,%v), want (%d,true)", i, ids[i], hits[i], want[i])
		}
	}

	// Direct resume-point check: from position 64, only [64, len) may be
	// resolved; earlier positions stay exactly as the caller left them.
	sc := s.planBatch(keys)
	ids2 := make([]uint64, len(keys))
	hits2 := make([]bool, len(keys))
	s.lookupShardLocked(0, keys, sc, ids2, hits2, 64)
	s.putScratch(sc)
	for i := range keys {
		if i < 64 {
			if hits2[i] || ids2[i] != 0 {
				t.Fatalf("position %d before the resume point was touched: (%d,%v)", i, ids2[i], hits2[i])
			}
			continue
		}
		if !hits2[i] || ids2[i] != want[i] {
			t.Fatalf("position %d after the resume point: (%d,%v), want (%d,true)", i, ids2[i], hits2[i], want[i])
		}
	}
}
