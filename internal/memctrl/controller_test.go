package memctrl

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
)

// rig wires a device and controller to a scheduler for tests.
type rig struct {
	clock *sim.Clock
	sched *sim.Scheduler
	dev   *dram.Device
	ctrl  *Controller
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clock := sim.NewClock()
	dev, err := dram.NewDevice(dram.DDR31600(), dram.PrototypeGeometry(), clock)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	ctrl, err := New(cfg, dev, clock)
	if err != nil {
		t.Fatalf("New controller: %v", err)
	}
	sched := sim.NewScheduler(clock)
	sched.Register(ctrl)
	return &rig{clock: clock, sched: sched, dev: dev, ctrl: ctrl}
}

// drain runs until the controller is idle, collecting completions.
func (r *rig) drain(t *testing.T) []Completion {
	t.Helper()
	var out []Completion
	_, ok := r.sched.RunUntil(func() bool {
		for {
			c, ok := r.ctrl.PopCompletion()
			if !ok {
				break
			}
			out = append(out, c)
		}
		return r.ctrl.Idle()
	}, 10_000_000)
	if !ok {
		t.Fatal("controller never went idle")
	}
	return out
}

func burst(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero read queue", func(c *Config) { c.ReadQueueDepth = 0 }},
		{"high watermark above queue", func(c *Config) { c.WriteHighWatermark = c.WriteQueueDepth + 1 }},
		{"low >= high", func(c *Config) { c.WriteLowWatermark = c.WriteHighWatermark }},
		{"zero timeout", func(c *Config) { c.WriteTimeout = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted bad config")
			}
		})
	}
}

func TestReadReturnsStoredData(t *testing.T) {
	r := newRig(t, DefaultConfig())
	a := dram.Addr{Bank: 2, Row: 40, Col: 64}
	want := burst(32, 0x5A)
	r.dev.Store().Write(a, want)

	id, ok := r.ctrl.Enqueue(Request{Addr: a, Tag: 77})
	if !ok {
		t.Fatal("Enqueue rejected on empty controller")
	}
	comps := r.drain(t)
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	c := comps[0]
	if c.ID != id || c.Tag != 77 || c.IsWrite || !bytes.Equal(c.Data, want) {
		t.Fatalf("completion = %+v, want id=%d tag=77 data=%x", c, id, want)
	}
	if c.DoneAt <= c.EnqueuedAt {
		t.Fatalf("DoneAt %d not after EnqueuedAt %d", c.DoneAt, c.EnqueuedAt)
	}
}

func TestWriteThenReadSameAddressOrdered(t *testing.T) {
	r := newRig(t, DefaultConfig())
	a := dram.Addr{Bank: 0, Row: 0, Col: 0}
	want := burst(32, 0xEE)
	// The write sits in the write queue (below the high watermark) while
	// the read would normally race ahead; the dependency must hold it.
	if _, ok := r.ctrl.Enqueue(Request{Addr: a, IsWrite: true, Data: want}); !ok {
		t.Fatal("write rejected")
	}
	if _, ok := r.ctrl.Enqueue(Request{Addr: a}); !ok {
		t.Fatal("read rejected")
	}
	comps := r.drain(t)
	var readData []byte
	for _, c := range comps {
		if !c.IsWrite {
			readData = c.Data
		}
	}
	if !bytes.Equal(readData, want) {
		t.Fatalf("read-after-write returned %x, want %x", readData, want)
	}
}

func TestReadThenWriteSameAddressOrdered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteHighWatermark = 1 // drain immediately, tempting a WAR hazard
	cfg.WriteLowWatermark = 0
	r := newRig(t, cfg)
	a := dram.Addr{Bank: 1, Row: 3, Col: 8}
	old := burst(32, 0x11)
	r.dev.Store().Write(a, old)

	if _, ok := r.ctrl.Enqueue(Request{Addr: a}); !ok {
		t.Fatal("read rejected")
	}
	if _, ok := r.ctrl.Enqueue(Request{Addr: a, IsWrite: true, Data: burst(32, 0x22)}); !ok {
		t.Fatal("write rejected")
	}
	comps := r.drain(t)
	for _, c := range comps {
		if !c.IsWrite && !bytes.Equal(c.Data, old) {
			t.Fatalf("read overtaken by younger write: got %x, want %x", c.Data, old)
		}
	}
}

func TestBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadQueueDepth = 2
	r := newRig(t, cfg)
	a := dram.Addr{Bank: 0, Row: 0, Col: 0}
	for i := 0; i < 2; i++ {
		if _, ok := r.ctrl.Enqueue(Request{Addr: a}); !ok {
			t.Fatalf("Enqueue %d rejected below depth", i)
		}
	}
	if r.ctrl.CanEnqueue(false) {
		t.Fatal("CanEnqueue true on full read queue")
	}
	if _, ok := r.ctrl.Enqueue(Request{Addr: a}); ok {
		t.Fatal("Enqueue accepted on full read queue")
	}
}

func TestRowHitMissConflictStats(t *testing.T) {
	r := newRig(t, DefaultConfig())
	a := dram.Addr{Bank: 0, Row: 10, Col: 0}
	b := dram.Addr{Bank: 0, Row: 10, Col: 8} // same row: hit
	c := dram.Addr{Bank: 0, Row: 11, Col: 0} // same bank, other row: conflict
	d := dram.Addr{Bank: 4, Row: 20, Col: 0} // fresh bank: miss
	for _, addr := range []dram.Addr{a, b} {
		r.ctrl.Enqueue(Request{Addr: addr})
	}
	r.drain(t)
	r.ctrl.Enqueue(Request{Addr: c})
	r.ctrl.Enqueue(Request{Addr: d})
	r.drain(t)
	st := r.ctrl.Stats()
	if st.RowHits != 4 {
		t.Fatalf("RowHits = %d, want 4 (every column command)", st.RowHits)
	}
	if st.RowMisses < 2 {
		t.Fatalf("RowMisses = %d, want >= 2", st.RowMisses)
	}
	if st.RowConflicts != 1 {
		t.Fatalf("RowConflicts = %d, want 1", st.RowConflicts)
	}
}

// TestWriteGroupingReducesTurnarounds is the controller-level restatement
// of Fig. 3: batching writes behind a watermark pays the bus turnaround
// once per group instead of once per request.
func TestWriteGroupingReducesTurnarounds(t *testing.T) {
	// Paced submissions (one read and one write per 16-cycle slot, disjoint
	// columns of one open row). Under strict arrival-order issue every
	// read↔write alternation pays the full turnaround gap; with grouping
	// the controller batches writes and pays it once per drain episode.
	run := func(strictFIFO bool) int64 {
		cfg := DefaultConfig()
		cfg.StrictFIFO = strictFIFO
		cfg.DisableRefresh = true
		r := newRig(t, cfg)
		rng := sim.NewRand(99)
		issuedR, issuedW := 0, 0
		const each = 200
		_, ok := r.sched.RunUntil(func() bool {
			for {
				if _, ok := r.ctrl.PopCompletion(); !ok {
					break
				}
			}
			now := int64(r.clock.Now())
			if now%16 == 0 && issuedR < each && r.ctrl.CanEnqueue(false) {
				r.ctrl.Enqueue(Request{Addr: dram.Addr{Bank: 0, Row: 0, Col: rng.Intn(64) * 8}})
				issuedR++
			}
			if now%16 == 8 && issuedW < each && r.ctrl.CanEnqueue(true) {
				r.ctrl.Enqueue(Request{
					Addr:    dram.Addr{Bank: 0, Row: 0, Col: 512 + rng.Intn(64)*8},
					IsWrite: true,
					Data:    burst(32, byte(issuedW)),
				})
				issuedW++
			}
			return issuedR == each && issuedW == each && r.ctrl.Idle()
		}, 10_000_000)
		if !ok {
			t.Fatal("grouping run never finished")
		}
		return r.dev.Stats().Turnarounds
	}
	grouped := run(false)
	ungrouped := run(true)
	if grouped*2 > ungrouped {
		t.Fatalf("write grouping did not reduce turnarounds: grouped=%d ungrouped=%d", grouped, ungrouped)
	}
}

func TestRefreshIssuedPeriodically(t *testing.T) {
	r := newRig(t, DefaultConfig())
	tm := r.dev.Timing()
	// Run for ~5 refresh intervals with no traffic.
	r.sched.Run(sim.Cycle(5 * tm.TREFI))
	got := r.ctrl.Stats().Refreshes
	if got < 4 || got > 6 {
		t.Fatalf("Refreshes = %d over 5 tREFI, want ~5", got)
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableRefresh = true
	r := newRig(t, cfg)
	r.sched.Run(sim.Cycle(3 * r.dev.Timing().TREFI))
	if got := r.ctrl.Stats().Refreshes; got != 0 {
		t.Fatalf("Refreshes = %d with refresh disabled, want 0", got)
	}
}

func TestEnqueueValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	t.Run("write without data", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		r.ctrl.Enqueue(Request{Addr: dram.Addr{}, IsWrite: true})
	})
	t.Run("read with data", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		r.ctrl.Enqueue(Request{Addr: dram.Addr{}, Data: burst(32, 1)})
	})
}

// TestRandomStressAgainstModel submits a random mix of reads and writes
// and checks every read against a reference memory model, with refresh
// enabled, exercising ordering, drain mode, and bank management together.
func TestRandomStressAgainstModel(t *testing.T) {
	r := newRig(t, DefaultConfig())
	rng := sim.NewRand(2024)
	model := make(map[dram.Addr][]byte)
	expected := make(map[uint64][]byte) // read ID -> expected data at enqueue time

	addrs := make([]dram.Addr, 64)
	for i := range addrs {
		addrs[i] = dram.Addr{Bank: rng.Intn(8), Row: rng.Intn(32), Col: rng.Intn(128) * 8}
	}

	const total = 3000
	submitted, completed := 0, 0
	var failures []string
	_, ok := r.sched.RunUntil(func() bool {
		for {
			c, ok := r.ctrl.PopCompletion()
			if !ok {
				break
			}
			completed++
			if c.IsWrite {
				continue
			}
			want := expected[c.ID]
			if want == nil {
				want = make([]byte, 32)
			}
			if !bytes.Equal(c.Data, want) && len(failures) < 3 {
				failures = append(failures, c.Addr.String())
			}
		}
		for submitted < total {
			a := addrs[rng.Intn(len(addrs))]
			if rng.Intn(3) == 0 {
				if !r.ctrl.CanEnqueue(true) {
					break
				}
				data := make([]byte, 32)
				binary.LittleEndian.PutUint64(data, rng.Uint64())
				r.ctrl.Enqueue(Request{Addr: a, IsWrite: true, Data: data})
				model[a] = data
			} else {
				if !r.ctrl.CanEnqueue(false) {
					break
				}
				id, _ := r.ctrl.Enqueue(Request{Addr: a})
				if cur, ok := model[a]; ok {
					expected[id] = cur
				}
			}
			submitted++
		}
		return submitted == total && r.ctrl.Idle()
	}, 50_000_000)
	if !ok {
		t.Fatalf("stress run stalled: submitted=%d completed=%d", submitted, completed)
	}
	if len(failures) > 0 {
		t.Fatalf("reads returned stale/wrong data at %v", failures)
	}
	if completed != total {
		t.Fatalf("completed %d of %d requests", completed, total)
	}
}

func TestMeanReadLatencyPositive(t *testing.T) {
	r := newRig(t, DefaultConfig())
	for i := 0; i < 8; i++ {
		r.ctrl.Enqueue(Request{Addr: dram.Addr{Bank: i % 8, Row: 0, Col: 0}})
	}
	r.drain(t)
	st := r.ctrl.Stats()
	if st.ReadsCompleted != 8 {
		t.Fatalf("ReadsCompleted = %d, want 8", st.ReadsCompleted)
	}
	tm := r.dev.Timing()
	minLat := float64(tm.TRCD + tm.RL() + tm.BurstCycles())
	if got := st.MeanReadLatency(); got < minLat {
		t.Fatalf("MeanReadLatency = %.1f below physical minimum %.1f", got, minLat)
	}
}

func TestClosePagePolicyCausesActivates(t *testing.T) {
	run := func(closePage bool) int64 {
		cfg := DefaultConfig()
		cfg.ClosePagePolicy = closePage
		cfg.DisableRefresh = true
		r := newRig(t, cfg)
		done := 0
		submitted := 0
		_, ok := r.sched.RunUntil(func() bool {
			for {
				if _, ok := r.ctrl.PopCompletion(); !ok {
					break
				}
				done++
			}
			// Same row over and over: open-page should activate once.
			if submitted < 50 && r.ctrl.CanEnqueue(false) && r.ctrl.Idle() {
				r.ctrl.Enqueue(Request{Addr: dram.Addr{Bank: 0, Row: 7, Col: 0}})
				submitted++
			}
			return done == 50
		}, 10_000_000)
		if !ok {
			t.Fatal("close-page run stalled")
		}
		return r.dev.Stats().Activates
	}
	open := run(false)
	closed := run(true)
	if open != 1 {
		t.Fatalf("open-page issued %d activates for one hot row, want 1", open)
	}
	if closed < 25 {
		t.Fatalf("close-page issued %d activates, want ~50", closed)
	}
}
