// Package memctrl models a DDR3 memory controller of the kind the paper
// layers its DLU on top of ("a standard DDR3 memory controller", Fig. 4):
// per-channel request queues, an open-page first-ready/first-come-first-
// served command scheduler, read/write grouping with a write-drain
// watermark (so bus turnarounds are paid per group, not per request),
// same-address ordering, and periodic refresh.
//
// The controller issues at most one DDR command per bus cycle, as a real
// command/address bus does, and consults the dram.Device timing contract
// via CanIssue before every command.
package memctrl

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// Request is one burst-granularity memory operation submitted by a client.
type Request struct {
	// ID is assigned by the controller on Enqueue and is unique per
	// controller; completions carry it back.
	ID uint64
	// Tag is an opaque client value carried through to the completion.
	Tag uint64
	// Addr is the burst-aligned location.
	Addr dram.Addr
	// IsWrite selects the operation; writes must carry Data of exactly one
	// burst, reads must leave Data nil.
	IsWrite bool
	// Data is the write payload.
	Data []byte
}

// Completion reports a finished request to the client.
type Completion struct {
	ID      uint64
	Tag     uint64
	Addr    dram.Addr
	IsWrite bool
	// Data is the read payload (nil for writes).
	Data []byte
	// DoneAt is the bus cycle at which the data transfer finished.
	DoneAt sim.Cycle
	// EnqueuedAt allows clients to compute queueing+service latency.
	EnqueuedAt sim.Cycle
}

// request is the controller-internal tracking record.
type request struct {
	Request
	enqueuedAt sim.Cycle
	issued     bool
	// dep is the most recent older request to the same address in either
	// queue at enqueue time; this request may not issue before dep has.
	// Transitivity through each queue's FIFO age order makes one pointer
	// sufficient.
	dep *request
}

// Config sets the controller's queueing and policy parameters.
type Config struct {
	// ReadQueueDepth and WriteQueueDepth bound the pending-request queues;
	// Enqueue applies backpressure when full.
	ReadQueueDepth  int
	WriteQueueDepth int
	// WriteHighWatermark enters write-drain mode; WriteLowWatermark exits
	// it. Grouping writes between watermarks is what keeps the bus
	// turnaround count low (Fig. 3's lesson).
	WriteHighWatermark int
	WriteLowWatermark  int
	// WriteTimeout forces a drain when the oldest write has waited this
	// many bus cycles, bounding write latency under read-heavy load.
	WriteTimeout sim.Cycle
	// DisableRefresh turns off tREFI refresh scheduling (used by
	// experiments that isolate scheduling effects, as the paper's Fig. 3
	// analysis does).
	DisableRefresh bool
	// ClosePagePolicy precharges a row immediately after each column
	// access instead of keeping it open. Off by default; exists for the
	// ablation benchmarks.
	ClosePagePolicy bool
	// StrictFIFO issues column commands in global arrival order with no
	// read/write grouping — the "commercial general-purpose controller"
	// baseline the paper contrasts its scheme with (§III). Each read↔write
	// alternation then pays the full bus-turnaround gap, reproducing the
	// N=1 point of Fig. 3 under mixed traffic.
	StrictFIFO bool
}

// DefaultConfig returns the configuration used by the prototype model.
func DefaultConfig() Config {
	return Config{
		ReadQueueDepth:     32,
		WriteQueueDepth:    32,
		WriteHighWatermark: 16,
		WriteLowWatermark:  4,
		WriteTimeout:       2048,
	}
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	switch {
	case c.ReadQueueDepth <= 0 || c.WriteQueueDepth <= 0:
		return fmt.Errorf("memctrl: queue depths must be positive (%d, %d)", c.ReadQueueDepth, c.WriteQueueDepth)
	case c.WriteHighWatermark <= 0 || c.WriteHighWatermark > c.WriteQueueDepth:
		return fmt.Errorf("memctrl: write high watermark %d out of range (queue %d)", c.WriteHighWatermark, c.WriteQueueDepth)
	case c.WriteLowWatermark < 0 || c.WriteLowWatermark >= c.WriteHighWatermark:
		return fmt.Errorf("memctrl: write low watermark %d must be in [0, high=%d)", c.WriteLowWatermark, c.WriteHighWatermark)
	case c.WriteTimeout <= 0:
		return fmt.Errorf("memctrl: write timeout must be positive, got %d", c.WriteTimeout)
	}
	return nil
}

// Stats aggregates controller-level activity.
type Stats struct {
	ReadsEnqueued  int64
	WritesEnqueued int64
	RowHits        int64 // column command issued to an already-open row
	RowMisses      int64 // activate needed on a closed bank
	RowConflicts   int64 // precharge needed because the wrong row was open
	DrainsEntered  int64 // write-drain episodes
	Refreshes      int64
	// ReadLatencyTotal accumulates enqueue-to-data latency over all
	// completed reads, for mean latency reporting.
	ReadLatencyTotal sim.Cycle
	ReadsCompleted   int64
}

// MeanReadLatency returns the average enqueue-to-data read latency in bus
// cycles, or 0 when no reads completed.
func (s Stats) MeanReadLatency() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.ReadLatencyTotal) / float64(s.ReadsCompleted)
}

// Controller schedules requests onto one dram.Device.
type Controller struct {
	cfg    Config
	dev    *dram.Device
	clock  *sim.Clock
	nextID uint64

	readQ  []*request
	writeQ []*request

	drainMode  bool
	refreshDue sim.Cycle
	refreshing bool

	// pending holds issued reads waiting for their data ReadyAt.
	pending []pendingRead
	// pendingClose holds banks awaiting a close-page precharge that was
	// not yet legal (tRTP/tWR pending) when their column command issued.
	pendingClose []int

	completions *sim.Queue[Completion]
	stats       Stats
}

type pendingRead struct {
	req     *request
	readyAt sim.Cycle
	data    []byte
}

// New builds a controller over dev. The clock must be the device's clock.
func New(cfg Config, dev *dram.Device, clock *sim.Clock) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:         cfg,
		dev:         dev,
		clock:       clock,
		completions: sim.NewQueue[Completion](cfg.ReadQueueDepth + cfg.WriteQueueDepth),
		refreshDue:  sim.Cycle(dev.Timing().TREFI),
	}
	return c, nil
}

// Device returns the controlled device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Stats returns a snapshot of controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// CanEnqueue reports whether a request of the given kind would be accepted.
func (c *Controller) CanEnqueue(isWrite bool) bool {
	if isWrite {
		return len(c.writeQ) < c.cfg.WriteQueueDepth
	}
	return len(c.readQ) < c.cfg.ReadQueueDepth
}

// Enqueue submits a request. It returns the assigned ID and true on
// acceptance, or false when the relevant queue is full (backpressure).
func (c *Controller) Enqueue(r Request) (uint64, bool) {
	if r.IsWrite {
		if len(r.Data) != c.dev.Geometry().BurstBytes(c.dev.Timing().BL) {
			panic(fmt.Sprintf("memctrl: write request with %d data bytes, want one burst (%d)",
				len(r.Data), c.dev.Geometry().BurstBytes(c.dev.Timing().BL)))
		}
	} else if r.Data != nil {
		panic("memctrl: read request must not carry data")
	}
	if !c.CanEnqueue(r.IsWrite) {
		return 0, false
	}
	c.nextID++
	req := &request{Request: r, enqueuedAt: c.clock.Now()}
	req.ID = c.nextID
	req.dep = c.newestSameAddr(r.Addr)
	if r.IsWrite {
		c.writeQ = append(c.writeQ, req)
		c.stats.WritesEnqueued++
	} else {
		c.readQ = append(c.readQ, req)
		c.stats.ReadsEnqueued++
	}
	return req.ID, true
}

// newestSameAddr returns the most recently enqueued, not-yet-issued request
// to addr, or nil.
func (c *Controller) newestSameAddr(addr dram.Addr) *request {
	var newest *request
	for _, q := range [][]*request{c.readQ, c.writeQ} {
		for _, r := range q {
			if !r.issued && r.Addr == addr && (newest == nil || r.ID > newest.ID) {
				newest = r
			}
		}
	}
	return newest
}

// PopCompletion returns the next finished request, if any.
func (c *Controller) PopCompletion() (Completion, bool) {
	return c.completions.Pop()
}

// PendingRequests reports queued (not yet issued) request counts.
func (c *Controller) PendingRequests() (reads, writes int) {
	for _, r := range c.readQ {
		if !r.issued {
			reads++
		}
	}
	for _, r := range c.writeQ {
		if !r.issued {
			writes++
		}
	}
	return reads, writes
}

// Idle reports whether the controller has no queued work and no in-flight
// data transfers.
func (c *Controller) Idle() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.pending) == 0
}

// Tick advances the controller one bus cycle: deliver finished reads,
// service refresh if due, then issue at most one DDR command.
func (c *Controller) Tick(now sim.Cycle) {
	c.deliverReads(now)

	if !c.cfg.DisableRefresh && (c.refreshing || now >= c.refreshDue) {
		if c.tickRefresh(now) {
			return // refresh sequence consumed the command slot
		}
	}

	c.updateDrainMode(now)
	c.issueOne(now)
}

// deliverReads moves reads whose data transfer has completed to the
// completion queue.
func (c *Controller) deliverReads(now sim.Cycle) {
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.readyAt <= now && !c.completions.Full() {
			c.completions.Push(Completion{
				ID:         p.req.ID,
				Tag:        p.req.Tag,
				Addr:       p.req.Addr,
				IsWrite:    false,
				Data:       p.data,
				DoneAt:     p.readyAt,
				EnqueuedAt: p.req.enqueuedAt,
			})
			c.stats.ReadLatencyTotal += p.readyAt - p.req.enqueuedAt
			c.stats.ReadsCompleted++
			continue
		}
		kept = append(kept, p)
	}
	c.pending = kept
}

// tickRefresh drives the refresh sequence. It returns true when it issued
// a command (or is waiting on one), claiming this cycle's command slot.
func (c *Controller) tickRefresh(now sim.Cycle) bool {
	c.refreshing = true
	if c.dev.CanIssue(dram.CmdRefresh, dram.Addr{}) {
		c.dev.Refresh()
		c.stats.Refreshes++
		c.refreshing = false
		c.refreshDue += sim.Cycle(c.dev.Timing().TREFI)
		return true
	}
	if c.dev.CanIssue(dram.CmdPrechargeAll, dram.Addr{}) {
		c.dev.PrechargeAll()
		return true
	}
	// Waiting for tRAS/tWR of some bank before PrechargeAll is legal; hold
	// the command bus so no new row gets opened under the refresh.
	return true
}

// updateDrainMode flips between read-preferred and write-drain scheduling.
func (c *Controller) updateDrainMode(now sim.Cycle) {
	unissuedWrites := 0
	var oldest *request
	for _, w := range c.writeQ {
		if w.issued {
			continue
		}
		unissuedWrites++
		if oldest == nil {
			oldest = w
		}
	}
	if c.drainMode {
		if unissuedWrites <= c.cfg.WriteLowWatermark {
			c.drainMode = false
		}
		return
	}
	timedOut := oldest != nil && now-oldest.enqueuedAt >= c.cfg.WriteTimeout
	unissuedReads := 0
	for _, r := range c.readQ {
		if !r.issued {
			unissuedReads++
		}
	}
	if unissuedWrites >= c.cfg.WriteHighWatermark || timedOut ||
		(unissuedReads == 0 && unissuedWrites > 0) {
		c.drainMode = true
		c.stats.DrainsEntered++
	}
}

// issueOne issues at most one DDR command, preferring the current mode's
// queue. The non-preferred queue normally only receives row-preparation
// commands (preserving read/write grouping), but when every unissued
// request in the preferred queue is dependency-blocked on the other queue,
// the other queue may issue a column command — otherwise a write waiting
// on an older read (or vice versa) would deadlock the drain-mode state
// machine.
func (c *Controller) issueOne(now sim.Cycle) {
	if c.issuePendingClose() {
		return
	}
	if c.cfg.StrictFIFO {
		c.issueFIFO(now)
		return
	}
	primary, secondary := c.readQ, c.writeQ
	if c.drainMode {
		primary, secondary = c.writeQ, c.readQ
	}

	// First-ready: oldest request in the preferred queue whose column
	// command is legal right now.
	if c.issueColumn(primary, now) {
		return
	}
	// Row preparation for the preferred queue (oldest-first): precharge a
	// conflicting row or activate a closed bank.
	if c.prepareRow(primary) {
		return
	}
	if !c.hasDispatchableWork(primary) && c.issueColumn(secondary, now) {
		return
	}
	// Don't let the command bus idle: prepare rows for the other queue.
	c.prepareRow(secondary)
}

// issueFIFO services the single oldest unissued request across both
// queues: its column command when legal, otherwise its row preparation.
func (c *Controller) issueFIFO(now sim.Cycle) {
	var oldest *request
	for _, q := range [][]*request{c.readQ, c.writeQ} {
		for _, r := range q {
			if !r.issued && (oldest == nil || r.ID < oldest.ID) {
				oldest = r
			}
		}
	}
	if oldest == nil {
		return
	}
	var single []*request
	single = append(single, oldest)
	if c.issueColumn(single, now) {
		return
	}
	c.prepareRow(single)
}

// hasDispatchableWork reports whether q holds any unissued request whose
// ordering dependency is satisfied (i.e. work that is merely
// timing-blocked, not dependency-blocked).
func (c *Controller) hasDispatchableWork(q []*request) bool {
	for _, r := range q {
		if !r.issued && c.depSatisfied(r) {
			return true
		}
	}
	return false
}

// issuePendingClose retires deferred close-page precharges as they become
// legal, consuming the command slot when one issues.
func (c *Controller) issuePendingClose() bool {
	for i, bank := range c.pendingClose {
		row := c.dev.OpenRow(bank)
		if row == -1 {
			// Already closed (e.g. by a row conflict); drop the entry.
			c.pendingClose = append(c.pendingClose[:i], c.pendingClose[i+1:]...)
			return false
		}
		a := dram.Addr{Bank: bank, Row: row}
		if c.dev.CanIssue(dram.CmdPrecharge, a) {
			c.dev.Precharge(a)
			c.pendingClose = append(c.pendingClose[:i], c.pendingClose[i+1:]...)
			return true
		}
	}
	return false
}

// issueColumn issues the column command of the oldest ready request in q.
func (c *Controller) issueColumn(q []*request, now sim.Cycle) bool {
	for _, r := range q {
		if r.issued || !c.depSatisfied(r) {
			continue
		}
		if !c.dev.RowOpen(r.Addr.Bank, r.Addr.Row) {
			continue
		}
		if r.IsWrite {
			if !c.dev.CanIssue(dram.CmdWrite, r.Addr) {
				continue
			}
			doneAt := c.dev.Write(r.Addr, r.Data)
			r.issued = true
			c.stats.RowHits++
			if !c.completions.Full() {
				c.completions.Push(Completion{
					ID: r.ID, Tag: r.Tag, Addr: r.Addr, IsWrite: true,
					DoneAt: doneAt, EnqueuedAt: r.enqueuedAt,
				})
			}
			c.writeQ = removeIssued(c.writeQ)
			c.maybeClosePage(r.Addr)
			return true
		}
		if !c.dev.CanIssue(dram.CmdRead, r.Addr) {
			continue
		}
		res := c.dev.Read(r.Addr)
		r.issued = true
		c.stats.RowHits++
		c.pending = append(c.pending, pendingRead{req: r, readyAt: res.ReadyAt, data: res.Data})
		c.readQ = removeIssued(c.readQ)
		c.maybeClosePage(r.Addr)
		return true
	}
	return false
}

// maybeClosePage schedules a precharge after a column access under the
// close-page ablation policy. The precharge is rarely legal in the same
// cycle (tRTP / write recovery), so the bank joins a deferred-close list
// serviced by issuePendingClose.
func (c *Controller) maybeClosePage(a dram.Addr) {
	if !c.cfg.ClosePagePolicy {
		return
	}
	for _, b := range c.pendingClose {
		if b == a.Bank {
			return
		}
	}
	c.pendingClose = append(c.pendingClose, a.Bank)
}

// prepareRow issues one ACT or PRE on behalf of the oldest request in q
// whose bank is not ready, scanning in age order so older requests get
// their rows first but younger requests can still exploit idle banks.
func (c *Controller) prepareRow(q []*request) bool {
	prepared := make(map[int]bool) // banks already being prepared this scan
	for _, r := range q {
		if r.issued || !c.depSatisfied(r) {
			continue
		}
		bank := r.Addr.Bank
		if prepared[bank] {
			continue
		}
		prepared[bank] = true
		open := c.dev.OpenRow(bank)
		switch {
		case open == r.Addr.Row:
			continue // row ready; column command was not legal this cycle
		case open == -1:
			if c.dev.CanIssue(dram.CmdActivate, r.Addr) {
				c.dev.Activate(r.Addr)
				c.stats.RowMisses++
				return true
			}
		default:
			if c.dev.CanIssue(dram.CmdPrecharge, r.Addr) {
				c.dev.Precharge(r.Addr)
				c.stats.RowConflicts++
				return true
			}
		}
	}
	return false
}

// depSatisfied reports whether r's same-address ordering dependency has
// issued.
func (c *Controller) depSatisfied(r *request) bool {
	return r.dep == nil || r.dep.issued
}

// removeIssued compacts a queue, dropping issued entries.
func removeIssued(q []*request) []*request {
	out := q[:0]
	for _, r := range q {
		if !r.issued {
			out = append(out, r)
		}
	}
	// Clear the tail so dropped requests are collectable.
	for i := len(out); i < len(q); i++ {
		q[i] = nil
	}
	return out
}
